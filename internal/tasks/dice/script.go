package dice

import (
	"fmt"
	"sort"

	"repro/internal/brat"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/lineage"
	"repro/internal/notebook"
	"repro/internal/raysim"
	"repro/internal/sim"
)

// Notebook cell sources (pseudo-Python). These are the script
// paradigm's user-facing implementation: what a data scientist would
// write in Jupyter, and what the lines-of-code experiment counts.

const srcImports = `import os
import ray
import pandas as pd
from collections import defaultdict
from preprocessing import split_sentences

ray.init(address="auto")
DATA_DIR = "maccrobat/"
`

const srcLoadFiles = `def list_pairs(data_dir):
    pairs = []
    for name in sorted(os.listdir(data_dir)):
        if not name.endswith(".txt"):
            continue
        base = name[:-len(".txt")]
        ann = os.path.join(data_dir, base + ".ann")
        txt = os.path.join(data_dir, name)
        if not os.path.exists(ann):
            raise FileNotFoundError(ann)
        pairs.append((base, txt, ann))
    return pairs

pairs = list_pairs(DATA_DIR)
print(f"found {len(pairs)} text/annotation pairs")
`

const srcWrangle = `def parse_annotation_file(case_id, path):
    entities, events = {}, []
    with open(path) as f:
        for line in f:
            line = line.rstrip("\n")
            if not line:
                continue
            key, body = line.split("\t", 1)
            if key.startswith("T"):
                header, text = body.split("\t", 1)
                etype, start, end = header.split(" ")
                entities[key] = {
                    "case": case_id, "id": key, "type": etype,
                    "start": int(start), "end": int(end), "text": text,
                }
            elif key.startswith("E"):
                fields = body.split(" ")
                etype, trigger = fields[0].split(":")
                theme = None
                for arg in fields[1:]:
                    role, ref = arg.split(":")
                    if role == "Theme":
                        theme = ref
                        break
                events.append({
                    "case": case_id, "id": key, "type": etype,
                    "trigger": trigger, "theme": theme,
                })
            else:
                raise ValueError(f"unknown annotation kind: {line}")
    return entities, events

def split_events_by_theme(events):
    with_theme, without_theme = [], []
    for ev in events:
        if ev["theme"] is not None:
            with_theme.append(ev)
        else:
            without_theme.append(ev)
    return with_theme, without_theme

def join_theme_entities(with_theme, entities):
    enriched = []
    for ev in with_theme:
        theme_ent = entities.get(ev["theme"])
        if theme_ent is None:
            raise KeyError(f"{ev['case']}: unresolved theme {ev['theme']}")
        row = dict(ev)
        row["theme_text"] = theme_ent["text"]
        enriched.append(row)
    return enriched

def rejoin_heldout(enriched, without_theme):
    merged = list(enriched)
    for ev in without_theme:
        row = dict(ev)
        row["theme_text"] = ""
        merged.append(row)
    return merged

def resolve_triggers(merged, entities):
    resolved = []
    for ev in merged:
        trig = entities.get(ev["trigger"])
        if trig is None:
            raise KeyError(f"{ev['case']}: unresolved trigger {ev['trigger']}")
        row = dict(ev)
        row["trigger_text"] = trig["text"]
        row["start"], row["end"] = trig["start"], trig["end"]
        resolved.append(row)
    return resolved

def link_sentences(resolved, text):
    sentences = split_sentences(text)
    linked = []
    for ev in resolved:
        sentence = None
        for s in sentences:
            if ev["start"] >= s.start and ev["end"] <= s.end:
                sentence = s.text
                break
        if sentence is None:
            raise ValueError(f"{ev['case']}: trigger outside every sentence")
        linked.append({
            "case": ev["case"], "event": ev["id"], "etype": ev["type"],
            "trigger": ev["trigger_text"], "theme": ev["theme_text"],
            "sentence": sentence,
        })
    return linked

@ray.remote
def wrangle_chunk(chunk):
    records = []
    for case_id, txt_path, ann_path in chunk:
        entities, events = parse_annotation_file(case_id, ann_path)
        with_theme, without_theme = split_events_by_theme(events)
        enriched = join_theme_entities(with_theme, entities)
        merged = rejoin_heldout(enriched, without_theme)
        resolved = resolve_triggers(merged, entities)
        with open(txt_path) as f:
            text = f.read()
        records.extend(link_sentences(resolved, text))
    return records

chunks = [pairs[i::NUM_CHUNKS] for i in range(NUM_CHUNKS)]
futures = [wrangle_chunk.remote(c) for c in chunks]
chunk_records = ray.get(futures)
`

const srcWrite = `records = [r for chunk in chunk_records for r in chunk]
records.sort(key=lambda r: (r["case"], r["event"]))
df = pd.DataFrame.from_records(records)
df.to_json("maccrobat_ee.jsonl", orient="records", lines=True)
print(f"wrote {len(df)} MACCROBAT-EE records")
`

// runScript executes DICE as a notebook scaled out with the Ray-style
// backend: pairs are wrangled in parallel chunk tasks, then aggregated
// and written on the driver.
func (t *Task) runScript(cfg core.RunConfig) (*core.Result, error) {
	nb := notebook.New("dice", cfg.Model)
	nb.SetTelemetry(cfg.Telemetry, "script:dice")
	nb.SetProgress(cfg.Progress, "dice")
	ray, err := raysim.NewClusterFor(cfg.Model, cfg.Topology(), cfg.Workers)
	if err != nil {
		return nil, err
	}

	var chunkRecords [][]Record
	parallelProcs := 1
	var recovery sim.Recovery
	var shuffleBytes int64

	nb.Add(&notebook.Cell{Name: "imports", Source: srcImports, Run: func(k *notebook.Kernel) error {
		k.Charge(cost.Work{Interp: 1.2, Mem: 0.3}) // import pandas, ray, init
		k.Set("pairs", t.cases)
		return nil
	}})
	nb.Add(&notebook.Cell{Name: "load_files", Source: srcLoadFiles, Run: func(k *notebook.Kernel) error {
		k.Charge(cost.Work{Interp: 0.05}.Scale(1)) // directory listing
		return nil
	}})
	nb.Add(&notebook.Cell{Name: "wrangle_chunks", Source: srcWrangle, Run: func(k *notebook.Kernel) error {
		return k.Call("wrangle_chunk", func() error {
			// Partition pairs round-robin into chunks, one per CPU
			// slot times four for load balancing.
			nChunks := cfg.Workers * 4
			if nChunks > len(t.cases) {
				nChunks = len(t.cases)
			}
			job := ray.NewJob()
			if !k.Replaying() {
				// A replayed cell rebuilds chunkRecords but must not
				// re-emit spans for work that was served from cache.
				job.SetTelemetry(cfg.Telemetry, "script:dice")
				job.SetProgress(cfg.Progress, "dice")
			}
			job.SetFaults(cfg.Faults)
			chunkRecords = make([][]Record, nChunks)
			for ci := 0; ci < nChunks; ci++ {
				var work cost.Work
				var recs []Record
				for i := ci; i < len(t.cases); i += nChunks {
					c := t.cases[i]
					work = work.Add(workScan.Scale(2)) // .txt + .ann
					parsed, err := parseAnnotationFile(c.ID, renderAnn(c))
					if err != nil {
						return err
					}
					work = work.Add(workParse.Scale(float64(len(parsed))))
					nEvents := 0
					for _, pa := range parsed {
						if pa.kind == "E" {
							nEvents++
						}
					}
					work = work.Add(workFilter.Scale(float64(nEvents)))
					work = work.Add(workJoin.Scale(2 * float64(nEvents))) // theme + trigger joins
					sents := splitCaseSentences(c.Text)
					work = work.Add(workSplit.Scale(float64(len(sents))))
					work = work.Add(workLink.Scale(float64(nEvents * len(sents))))
					sub, err := Oracle([]datagen.ClinicalCase{c})
					if err != nil {
						return err
					}
					recs = append(recs, sub...)
				}
				chunkRecords[ci] = recs
				job.Submit(raysim.TaskSpec{Name: fmt.Sprintf("wrangle-%d", ci), Work: work})
			}
			res, err := job.Run()
			if err != nil {
				return err
			}
			k.ChargeSeconds(res.Makespan)
			parallelProcs = res.ParallelTasks
			recovery = res.Recovery
			shuffleBytes = res.ShuffleBytes
			return nil
		})
	}})
	var out []Record
	nb.Add(&notebook.Cell{Name: "aggregate_write", Source: srcWrite, Run: func(k *notebook.Kernel) error {
		for _, recs := range chunkRecords {
			out = append(out, recs...)
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Case != out[j].Case {
				return out[i].Case < out[j].Case
			}
			return out[i].Event < out[j].Event
		})
		k.Charge(workWrite.Scale(float64(len(out))))
		return nil
	}})

	var linRep *lineage.RunReport
	if cfg.Lineage != nil {
		scope := fmt.Sprintf("script:dice[pairs=%d,seed=%d,workers=%d]", t.params.Pairs, t.params.Seed, cfg.Workers)
		linRep, err = lineage.RunNotebook(cfg.Lineage, nb, lineage.NotebookSpec{
			Scope: scope,
			Revs: map[string]int{
				"wrangle_chunks":  t.rev("parse") + t.rev("split"),
				"aggregate_write": t.rev("write"),
			},
		}, cfg.Telemetry)
		if err != nil {
			return nil, err
		}
	} else if err := nb.RunAll(); err != nil {
		return nil, err
	}
	return &core.Result{
		Task:          t.Name(),
		Paradigm:      core.Script,
		SimSeconds:    nb.Elapsed(),
		LinesOfCode:   nb.LinesOfCode(),
		Operators:     nb.NumCells(),
		ParallelProcs: parallelProcs,
		Output:        RecordsToTable(out),
		Trace: core.TraceTotals{
			ShuffleBytes: shuffleBytes,
			SpillBytes:   ray.Store().Stats().SpilledBytes,
		},
		Recovery: core.RecoveryTotals{
			Kills:              recovery.Kills,
			LostSeconds:        recovery.LostSeconds,
			DelaySeconds:       recovery.DelaySeconds,
			RestoreSeconds:     recovery.ExtraCostSeconds,
			ReconstructedBytes: ray.Store().Stats().ReconstructedBytes,
		},
		Lineage: linRep,
	}, nil
}

// renderAnn re-renders a case's annotation document — the script reads
// annotation files from disk, so the parse step consumes real text.
func renderAnn(c datagen.ClinicalCase) string {
	return brat.Render(c.Ann)
}
