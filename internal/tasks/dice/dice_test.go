package dice

import (
	"testing"

	"repro/internal/core"
)

func newTask(t *testing.T, pairs int) *Task {
	t.Helper()
	task, err := New(Params{Pairs: pairs, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Params{Pairs: 0}); err == nil {
		t.Fatal("expected error for zero pairs")
	}
}

func TestOracleProducesRecords(t *testing.T) {
	task := newTask(t, 10)
	recs, err := Oracle(task.Cases())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("oracle produced no records")
	}
	for _, r := range recs {
		if r.Case == "" || r.Event == "" || r.Trigger == "" || r.Sentence == "" {
			t.Fatalf("degenerate record %+v", r)
		}
	}
	// Some records must carry themes and some must not (the DICE
	// filter split).
	withTheme, withoutTheme := 0, 0
	for _, r := range recs {
		if r.Theme != "" {
			withTheme++
		} else {
			withoutTheme++
		}
	}
	if withTheme == 0 || withoutTheme == 0 {
		t.Fatalf("theme split degenerate: %d/%d", withTheme, withoutTheme)
	}
}

func TestScriptMatchesOracle(t *testing.T) {
	task := newTask(t, 15)
	res, err := task.Run(core.Script, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := Oracle(task.Cases())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(RecordsToTable(recs)) {
		t.Fatal("script output differs from oracle")
	}
	if res.SimSeconds <= 0 || res.LinesOfCode <= 0 || res.Operators <= 0 {
		t.Fatalf("metrics degenerate: %+v", res)
	}
}

func TestWorkflowMatchesOracle(t *testing.T) {
	task := newTask(t, 15)
	res, err := task.Run(core.Workflow, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := Oracle(task.Cases())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(RecordsToTable(recs)) {
		t.Fatal("workflow output differs from oracle")
	}
}

func TestParadigmsAgree(t *testing.T) {
	task := newTask(t, 25)
	s, w, err := core.RunBoth(task, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Output.Equal(w.Output) {
		t.Fatal("paradigms disagree on output")
	}
}

func TestParallelWorkflowMatchesOracle(t *testing.T) {
	task := newTask(t, 25)
	res, err := task.Run(core.Workflow, core.RunConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := Oracle(task.Cases())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(RecordsToTable(recs)) {
		t.Fatal("parallel workflow output differs from oracle")
	}
}

func TestMoreWorkersFasterBothParadigms(t *testing.T) {
	task := newTask(t, 60)
	for _, p := range []core.Paradigm{core.Script, core.Workflow} {
		r1, err := task.Run(p, core.RunConfig{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		r4, err := task.Run(p, core.RunConfig{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if r4.SimSeconds >= r1.SimSeconds {
			t.Fatalf("%s: 4 workers (%v) not faster than 1 (%v)", p, r4.SimSeconds, r1.SimSeconds)
		}
	}
}

func TestTimesDeterministic(t *testing.T) {
	task := newTask(t, 20)
	a, err := task.Run(core.Workflow, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := task.Run(core.Workflow, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if a.SimSeconds != b.SimSeconds {
		t.Fatalf("workflow time not deterministic: %v vs %v", a.SimSeconds, b.SimSeconds)
	}
}

func TestScriptLoCExceedsWorkflow(t *testing.T) {
	task := newTask(t, 5)
	s, w, err := core.RunBoth(task, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if s.LinesOfCode <= w.LinesOfCode {
		t.Fatalf("paper shape violated: script LoC %d <= workflow LoC %d", s.LinesOfCode, w.LinesOfCode)
	}
}
