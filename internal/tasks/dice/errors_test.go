package dice

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/notebook"
)

// The paper's Aspect #1: both paradigms let the user isolate a fault,
// but the script reports it at cell granularity with a stack trace and
// the workflow at operator granularity. Inject the same corrupt
// annotation into both and check each paradigm's attribution.

func corruptTask(t *testing.T) *Task {
	t.Helper()
	task := newTask(t, 8)
	// Invert an entity span: the annotation file no longer parses.
	ent := &task.Cases()[3].Ann.Entities[0]
	ent.End = ent.Start
	return task
}

func TestScriptReportsCellLevelError(t *testing.T) {
	task := corruptTask(t)
	_, err := task.Run(core.Script, core.RunConfig{})
	if err == nil {
		t.Fatal("expected the corrupt annotation to fail the run")
	}
	var cellErr *notebook.CellError
	if !errors.As(err, &cellErr) {
		t.Fatalf("script error is %T, want *notebook.CellError: %v", err, err)
	}
	if cellErr.Cell != "wrangle_chunks" {
		t.Fatalf("error attributed to cell %q", cellErr.Cell)
	}
	// The synthetic traceback names the failing function frame.
	if len(cellErr.Stack) == 0 || cellErr.Stack[0] != "wrangle_chunk" {
		t.Fatalf("stack = %v", cellErr.Stack)
	}
	if !strings.Contains(cellErr.Error(), "In[") {
		t.Fatalf("cell error should carry the execution counter: %q", cellErr.Error())
	}
}

func TestWorkflowReportsOperatorLevelError(t *testing.T) {
	task := corruptTask(t)
	_, err := task.Run(core.Workflow, core.RunConfig{})
	if err == nil {
		t.Fatal("expected the corrupt annotation to fail the run")
	}
	var opErr *dataflow.OpError
	if !errors.As(err, &opErr) {
		t.Fatalf("workflow error is %T, want *dataflow.OpError: %v", err, err)
	}
	// Exactly the parsing operator is blamed — operator-level
	// attribution.
	if opErr.Op != "parse-annotations" {
		t.Fatalf("error attributed to operator %q", opErr.Op)
	}
	if opErr.Worker < 0 {
		t.Fatalf("operator error should name the failing worker: %+v", opErr)
	}
}
