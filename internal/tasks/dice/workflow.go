package dice

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dataflow"
	"repro/internal/planopt"
	"repro/internal/relation"
	"repro/internal/textproc"
)

// Texera-style Python UDF bodies for the workflow's map operators —
// the code a user types into the operator dialogs; the rest of the
// workflow is configuration. Together with the operator configs these
// are what the lines-of-code experiment counts for the workflow
// paradigm.

const udfParse = `class ParseAnnotationsOp(UDFOperator):
    def process_tuple(self, tuple_, port):
        case_id, ann = tuple_["case"], tuple_["ann"]
        for line in ann.split("\n"):
            if not line:
                continue
            key, body = line.split("\t", 1)
            if key.startswith("T"):
                header, text = body.split("\t", 1)
                etype, start, end = header.split(" ")
                yield {"case": case_id, "kind": "T", "id": key,
                       "etype": etype, "start": int(start), "end": int(end),
                       "text": text, "trigkey": "", "themekey": "",
                       "ekey": case_id + "|" + key}
            else:
                fields = body.split(" ")
                etype, trigger = fields[0].split(":")
                theme = ""
                for arg in fields[1:]:
                    role, ref = arg.split(":")
                    if role == "Theme":
                        theme = ref
                        break
                themekey = case_id + "|" + theme if theme else ""
                yield {"case": case_id, "kind": "E", "id": key,
                       "etype": etype, "start": 0, "end": 0, "text": "",
                       "trigkey": case_id + "|" + trigger,
                       "themekey": themekey, "ekey": ""}
`

const udfSplit = `class SplitSentencesOp(UDFOperator):
    def process_tuple(self, tuple_, port):
        for s in split_sentences(tuple_["text"]):
            yield {"case": tuple_["case"], "sentence": s.text,
                   "sstart": s.start, "send": s.end}
`

const udfShapeOutput = `class ShapeOutputOp(UDFOperator):
    def process_tuple(self, tuple_, port):
        yield {"case": tuple_["case"], "event": tuple_["id"],
               "etype": tuple_["etype"], "trigger": tuple_["text"],
               "theme": tuple_["theme_text"], "sentence": tuple_["sentence"]}
`

// schemas used between the workflow operators.
var (
	parsedSchema = relation.MustSchema(
		relation.Field{Name: "case", Type: relation.String},
		relation.Field{Name: "kind", Type: relation.String},
		relation.Field{Name: "id", Type: relation.String},
		relation.Field{Name: "etype", Type: relation.String},
		relation.Field{Name: "start", Type: relation.Int},
		relation.Field{Name: "end", Type: relation.Int},
		relation.Field{Name: "text", Type: relation.String},
		relation.Field{Name: "trigkey", Type: relation.String},
		relation.Field{Name: "themekey", Type: relation.String},
		relation.Field{Name: "ekey", Type: relation.String},
	)
	entitySchema = relation.MustSchema(
		relation.Field{Name: "ekey", Type: relation.String},
		relation.Field{Name: "start", Type: relation.Int},
		relation.Field{Name: "end", Type: relation.Int},
		relation.Field{Name: "text", Type: relation.String},
	)
	eventSchema = relation.MustSchema(
		relation.Field{Name: "case", Type: relation.String},
		relation.Field{Name: "id", Type: relation.String},
		relation.Field{Name: "etype", Type: relation.String},
		relation.Field{Name: "trigkey", Type: relation.String},
		relation.Field{Name: "themekey", Type: relation.String},
	)
	mergedSchema = relation.MustSchema(
		relation.Field{Name: "case", Type: relation.String},
		relation.Field{Name: "id", Type: relation.String},
		relation.Field{Name: "etype", Type: relation.String},
		relation.Field{Name: "trigkey", Type: relation.String},
		relation.Field{Name: "theme_text", Type: relation.String},
	)
	sentenceSchema = relation.MustSchema(
		relation.Field{Name: "case", Type: relation.String},
		relation.Field{Name: "sentence", Type: relation.String},
		relation.Field{Name: "sstart", Type: relation.Int},
		relation.Field{Name: "send", Type: relation.Int},
	)
)

// buildWorkflow assembles the DICE dataflow graph (paper Figure 4).
func (t *Task) buildWorkflow(workers int) *dataflow.Workflow {
	w := dataflow.New("dice")
	lang := cost.Python

	annSrc := w.Source("ann-files", t.annFileTable(), dataflow.WithScanWork(workScan))
	textSrc := w.Source("text-files", t.textFileTable(), dataflow.WithScanWork(workScan))

	// Parse annotation files into flat annotation rows.
	parse := dataflow.NewMap("parse-annotations", lang, parsedSchema, func(r relation.Tuple) ([]relation.Tuple, error) {
		parsed, err := parseAnnotationFile(r.MustStr(0), r.MustStr(1))
		if err != nil {
			return nil, err
		}
		out := make([]relation.Tuple, 0, len(parsed))
		for _, pa := range parsed {
			trigkey, themekey, ekey := "", "", ""
			if pa.kind == "T" {
				ekey = compositeKey(pa.caseID, pa.id)
			} else {
				trigkey = compositeKey(pa.caseID, pa.trigger)
				if pa.theme != "" {
					themekey = compositeKey(pa.caseID, pa.theme)
				}
			}
			out = append(out, relation.Tuple{
				pa.caseID, pa.kind, pa.id, pa.typ, pa.start, pa.end,
				pa.text, trigkey, themekey, ekey,
			})
		}
		return out, nil
	})
	parse.Work = cost.Work{}
	parse.ExtraWork = func(r relation.Tuple) cost.Work {
		lines := strings.Count(r.MustStr(1), "\n")
		return workParse.Scale(float64(lines))
	}
	parseID := w.Op(parse, dataflow.WithParallelism(workers),
		dataflow.WithSignature(fmt.Sprintf("rev=%d", t.rev("parse"))))
	w.Connect(annSrc, parseID, 0, dataflow.RoundRobin())

	// Entity and event extraction (selective maps).
	extractEnt := dataflow.NewMap("extract-entities", lang, entitySchema, func(r relation.Tuple) ([]relation.Tuple, error) {
		if r.MustStr(1) != "T" {
			return nil, nil
		}
		return []relation.Tuple{{r.MustStr(9), r.MustInt(4), r.MustInt(5), r.MustStr(6)}}, nil
	})
	extractEnt.Work = cost.Work{Interp: 1.5e-3}
	entID := w.Op(extractEnt, dataflow.WithParallelism(workers))
	w.Connect(parseID, entID, 0, dataflow.RoundRobin())

	extractEv := dataflow.NewMap("extract-events", lang, eventSchema, func(r relation.Tuple) ([]relation.Tuple, error) {
		if r.MustStr(1) != "E" {
			return nil, nil
		}
		return []relation.Tuple{{r.MustStr(0), r.MustStr(2), r.MustStr(3), r.MustStr(7), r.MustStr(8)}}, nil
	})
	extractEv.Work = cost.Work{Interp: 1.5e-3}
	evID := w.Op(extractEv, dataflow.WithParallelism(workers))
	w.Connect(parseID, evID, 0, dataflow.RoundRobin())

	// Theme-based event split (the Figure 4 filter).
	withTheme := dataflow.NewFilter("events-with-theme", lang, func(r relation.Tuple) bool {
		return r.MustStr(4) != ""
	})
	withTheme.Work = workFilter
	withThemeID := w.Op(withTheme, dataflow.WithParallelism(workers))
	w.Connect(evID, withThemeID, 0, dataflow.RoundRobin())

	noTheme := dataflow.NewFilter("events-without-theme", lang, func(r relation.Tuple) bool {
		return r.MustStr(4) == ""
	})
	noTheme.Work = workFilter
	noThemeID := w.Op(noTheme, dataflow.WithParallelism(workers))
	w.Connect(evID, noThemeID, 0, dataflow.RoundRobin())

	// Join the Theme subset with entities.
	joinTheme := dataflow.NewHashJoin("join-theme-entities", lang, "ekey", "themekey", relation.Inner)
	joinTheme.ProbeWork = workJoin
	joinThemeID := w.Op(joinTheme, dataflow.WithParallelism(workers))
	w.Connect(entID, joinThemeID, 0, dataflow.HashPartition("ekey"))
	w.Connect(withThemeID, joinThemeID, 1, dataflow.HashPartition("themekey"))

	// Reshape both branches to the merged schema.
	shapeTheme := dataflow.NewMap("shape-theme", lang, mergedSchema, func(r relation.Tuple) ([]relation.Tuple, error) {
		// join output: case,id,etype,trigkey,themekey, start,end,text
		return []relation.Tuple{{r.MustStr(0), r.MustStr(1), r.MustStr(2), r.MustStr(3), r.MustStr(7)}}, nil
	})
	shapeTheme.Work = cost.Work{Interp: 1.5e-3}
	shapeThemeID := w.Op(shapeTheme, dataflow.WithParallelism(workers))
	w.Connect(joinThemeID, shapeThemeID, 0, dataflow.RoundRobin())

	shapeNoTheme := dataflow.NewMap("shape-heldout", lang, mergedSchema, func(r relation.Tuple) ([]relation.Tuple, error) {
		return []relation.Tuple{{r.MustStr(0), r.MustStr(1), r.MustStr(2), r.MustStr(3), ""}}, nil
	})
	shapeNoTheme.Work = cost.Work{Interp: 1.5e-3}
	shapeNoThemeID := w.Op(shapeNoTheme, dataflow.WithParallelism(workers))
	w.Connect(noThemeID, shapeNoThemeID, 0, dataflow.RoundRobin())

	// Rejoin with the held-out subset.
	union := dataflow.NewUnion("rejoin-heldout", lang)
	unionID := w.Op(union, dataflow.WithParallelism(workers))
	w.Connect(shapeThemeID, unionID, 0, dataflow.RoundRobin())
	w.Connect(shapeNoThemeID, unionID, 1, dataflow.RoundRobin())

	// Resolve trigger spans.
	joinTrig := dataflow.NewHashJoin("join-trigger-entities", lang, "ekey", "trigkey", relation.Inner)
	joinTrig.ProbeWork = workJoin
	joinTrigID := w.Op(joinTrig, dataflow.WithParallelism(workers))
	w.Connect(entID, joinTrigID, 0, dataflow.HashPartition("ekey"))
	w.Connect(unionID, joinTrigID, 1, dataflow.HashPartition("trigkey"))

	// Sentence splitting.
	split := dataflow.NewMap("split-sentences", lang, sentenceSchema, func(r relation.Tuple) ([]relation.Tuple, error) {
		var out []relation.Tuple
		for _, s := range splitCaseSentences(r.MustStr(1)) {
			out = append(out, relation.Tuple{r.MustStr(0), s.Text, int64(s.Start), int64(s.End)})
		}
		return out, nil
	})
	split.Work = cost.Work{}
	split.ExtraWork = func(r relation.Tuple) cost.Work {
		n := len(textproc.SplitSentences(r.MustStr(1)))
		return workSplit.Scale(float64(n))
	}
	splitID := w.Op(split, dataflow.WithParallelism(workers),
		dataflow.WithSignature(fmt.Sprintf("rev=%d", t.rev("split"))))
	w.Connect(textSrc, splitID, 0, dataflow.RoundRobin())

	// Link events to their sentence: join on case, then keep the
	// containing sentence.
	linkJoin := dataflow.NewHashJoin("join-sentences", lang, "case", "case", relation.Inner)
	linkJoin.ProbeWork = cost.Work{Interp: 1.5e-3}
	linkJoinID := w.Op(linkJoin, dataflow.WithParallelism(workers))
	w.Connect(splitID, linkJoinID, 0, dataflow.HashPartition("case"))
	w.Connect(joinTrigID, linkJoinID, 1, dataflow.HashPartition("case"))

	contain := dataflow.NewFilter("filter-containing", lang, func(r relation.Tuple) bool {
		// joined row: case,id,etype,trigkey,theme_text,start,end,text, sentence,sstart,send
		start, end := r.MustInt(5), r.MustInt(6)
		return start >= r.MustInt(9) && end <= r.MustInt(10)
	})
	contain.Work = workLink
	containID := w.Op(contain, dataflow.WithParallelism(workers))
	w.Connect(linkJoinID, containID, 0, dataflow.RoundRobin())

	// Final shaping and the result sink.
	shapeOut := dataflow.NewMap("shape-output", lang, OutputSchema, func(r relation.Tuple) ([]relation.Tuple, error) {
		return []relation.Tuple{{r.MustStr(0), r.MustStr(1), r.MustStr(2), r.MustStr(7), r.MustStr(4), r.MustStr(8)}}, nil
	})
	shapeOut.Work = workWrite
	shapeOutID := w.Op(shapeOut, dataflow.WithParallelism(workers),
		dataflow.WithSignature(fmt.Sprintf("rev=%d", t.rev("write"))))
	w.Connect(containID, shapeOutID, 0, dataflow.RoundRobin())

	sink := w.Sink("maccrobat-ee")
	w.Connect(shapeOutID, sink, 0, dataflow.RoundRobin())
	return w
}

// runWorkflow executes DICE as a dataflow workflow.
func (t *Task) runWorkflow(cfg core.RunConfig) (*core.Result, error) {
	return t.RunWorkflowWithBatch(cfg, 0)
}

// ProfileWorkflow runs the DICE workflow once and returns its cost
// trace — the input the engine's auto-tuner plans worker allocations
// from.
func (t *Task) ProfileWorkflow(cfg core.RunConfig) (*dataflow.Trace, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	w := t.buildWorkflow(cfg.Workers)
	res, err := w.Run(context.Background(), dataflow.Config{Model: cfg.Model, Cluster: cfg.Cluster(), Shard: cfg.Topology(), Telemetry: cfg.Telemetry, Faults: cfg.Faults, Progress: cfg.Progress})
	if err != nil {
		return nil, err
	}
	return res.Trace, nil
}

// RunWorkflowWithBatch executes the DICE workflow with an explicit
// source batch size (0 = engine auto-tuning) — the knob the batching
// ablation sweeps.
func (t *Task) RunWorkflowWithBatch(cfg core.RunConfig, batchSize int) (*core.Result, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	w := t.buildWorkflow(cfg.Workers)
	if cfg.Optimize {
		opts := planopt.ConfigOptions(cfg)
		opts.FixedBatch = batchSize > 0
		if _, err := planopt.Optimize(w, opts); err != nil {
			return nil, fmt.Errorf("dice: optimize: %w", err)
		}
	}
	res, err := w.Run(context.Background(), dataflow.Config{
		Model: cfg.Model, BatchSize: batchSize, Cluster: cfg.Cluster(), Shard: cfg.Topology(),
		Telemetry: cfg.Telemetry, Faults: cfg.Faults, Progress: cfg.Progress,
		Lineage:      cfg.Lineage,
		LineageScope: fmt.Sprintf("workflow:dice[pairs=%d,seed=%d,workers=%d]", t.params.Pairs, t.params.Seed, cfg.Workers),
	})
	if err != nil {
		return nil, err
	}
	out := res.Tables["maccrobat-ee"]
	recs := make([]Record, 0, out.Len())
	for _, r := range out.Rows() {
		recs = append(recs, Record{
			Case: r.MustStr(0), Event: r.MustStr(1), Type: r.MustStr(2),
			Trigger: r.MustStr(3), Theme: r.MustStr(4), Sentence: r.MustStr(5),
		})
	}
	return &core.Result{
		Task:          t.Name(),
		Paradigm:      core.Workflow,
		SimSeconds:    res.SimSeconds,
		Trace:         res.Trace.Totals(),
		LinesOfCode:   t.workflowLoC(),
		Operators:     w.NumOperators(),
		ParallelProcs: cfg.Workers,
		Output:        RecordsToTable(recs),
		Recovery:      res.Recovery.Totals(),
		Lineage:       res.Lineage,
	}, nil
}

// workflowLoC counts the workflow implementation size: each operator's
// configuration lines plus the UDF bodies typed into map operators.
func (t *Task) workflowLoC() int {
	total := 0
	for _, udf := range []string{udfParse, udfSplit, udfShapeOutput} {
		total += loc(udf)
	}
	total += len(workflowConfig())
	return total
}

// workflowConfig renders the operator configuration the user fills in
// through the GUI — the non-UDF part of the workflow implementation.
func workflowConfig() []string {
	ops := []struct {
		typ, params string
	}{
		{"FileScan", `path=maccrobat/*.ann, format=text, output=[case, ann]`},
		{"FileScan", `path=maccrobat/*.txt, format=text, output=[case, text]`},
		{"PythonUDF", `class=ParseAnnotationsOp, workers=N`},
		{"PythonUDF", `class=ExtractEntitiesOp, keep=kind==T, output=[ekey, start, end, text]`},
		{"PythonUDF", `class=ExtractEventsOp, keep=kind==E, output=[case, id, etype, trigkey, themekey]`},
		{"Filter", `condition=themekey != ""`},
		{"Filter", `condition=themekey == ""`},
		{"HashJoin", `build=entities.ekey, probe=events.themekey, type=inner`},
		{"Projection", `output=[case, id, etype, trigkey, theme_text]`},
		{"Projection", `output=[case, id, etype, trigkey, theme_text=""]`},
		{"Union", `inputs=2`},
		{"HashJoin", `build=entities.ekey, probe=merged.trigkey, type=inner`},
		{"PythonUDF", `class=SplitSentencesOp, workers=N`},
		{"HashJoin", `build=sentences.case, probe=resolved.case, type=inner`},
		{"Filter", `condition=start >= sstart and end <= send`},
		{"PythonUDF", `class=ShapeOutputOp`},
		{"ViewResults", `name=maccrobat-ee`},
	}
	lines := make([]string, 0, len(ops)*2)
	for i, o := range ops {
		lines = append(lines, fmt.Sprintf("operator %d: type=%s", i+1, o.typ))
		lines = append(lines, "  "+o.params)
	}
	return lines
}

// WorkflowPlan assembles the workflow DAG without executing it, so
// plan-time validation (repro -validate) can inspect the graph.
func (t *Task) WorkflowPlan(workers int) (*dataflow.Workflow, error) {
	return t.buildWorkflow(workers), nil
}
