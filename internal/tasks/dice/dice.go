// Package dice implements Task 1 of the reproduced paper: the DICE
// data-wrangling pipeline over MACCROBAT-style clinical case reports
// (paper Figure 4). Annotation files are parsed into entity and event
// streams; events are filtered by whether they carry a Theme argument;
// the Theme subset is joined with entities, rejoined with the held-out
// subset, resolved to trigger spans, and finally linked to the
// sentence containing each trigger — producing MACCROBAT-EE records.
//
// The task is implemented twice: as a notebook script (scaled out with
// the Ray-style backend) and as a dataflow workflow, per the paper's
// comparison design.
package dice

import (
	"fmt"
	"strings"

	"repro/internal/brat"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/relation"
	"repro/internal/textproc"
)

// Params sizes the task.
type Params struct {
	// Pairs is the number of (text, annotation) file pairs; the paper
	// scales from 10 to the full 200.
	Pairs int
	// Seed drives the synthetic MACCROBAT generator.
	Seed uint64
}

// Task is the DICE workload bound to a generated dataset.
type Task struct {
	params Params
	cases  []datagen.ClinicalCase
	// edits carries per-stage revision counters modeling
	// semantics-preserving re-parameterizations of the pipeline (the
	// iterate workload). A bumped rev changes the stage's lineage
	// signature without changing its output.
	edits map[string]int
}

// SetEdits installs per-stage edit revisions (stage names: parse,
// split, write). The map is copied.
func (t *Task) SetEdits(m map[string]int) {
	t.edits = make(map[string]int, len(m))
	for k, v := range m {
		t.edits[k] = v
	}
}

// rev returns the current edit revision of a stage.
func (t *Task) rev(stage string) int { return t.edits[stage] }

// The registry entry makes the task runnable by name from the CLI and
// the experiment harness; the default size is the paper's full scale.
func init() {
	core.RegisterTask("dice", 200, func(size int, seed uint64) (core.Task, error) {
		return New(Params{Pairs: size, Seed: seed})
	})
}

// New generates the dataset and returns the task.
func New(p Params) (*Task, error) {
	if p.Pairs <= 0 {
		return nil, fmt.Errorf("dice: pairs must be positive, got %d", p.Pairs)
	}
	return &Task{params: p, cases: datagen.GenerateClinicalCases(p.Pairs, p.Seed)}, nil
}

// Name implements core.Task.
func (t *Task) Name() string { return "dice" }

// Cases exposes the generated dataset (read-only by convention).
func (t *Task) Cases() []datagen.ClinicalCase { return t.cases }

// Calibrated per-record work constants (Python-seconds). They are
// chosen so the end-to-end simulated times land near the paper's
// Figure 13a/14a measurements; see EXPERIMENTS.md.
var (
	// workParse is charged per annotation line parsed.
	workParse = cost.Work{Interp: 15e-3, Mem: 1e-3}
	// workFilter is charged per event classified by Theme presence.
	workFilter = cost.Work{Interp: 4e-3, Mem: 0.5e-3}
	// workJoin is charged per event joined against the entity table.
	workJoin = cost.Work{Interp: 24e-3, Mem: 3e-3}
	// workSplit is charged per sentence produced by the splitter.
	workSplit = cost.Work{Interp: 24e-3, Mem: 2e-3}
	// workLink is charged per (event, sentence) pair examined by the
	// sentence-linking join.
	workLink = cost.Work{Interp: 6e-3, Mem: 0.6e-3}
	// workWrite is charged per output record written by the driver (a
	// serial step, which is part of why the script paradigm's speedup
	// flattens as workers grow in Figure 14a).
	workWrite = cost.Work{Interp: 16e-3, Mem: 1e-3}
	// workScan is charged per source file read from disk.
	workScan = cost.Work{Interp: 48e-3, Mem: 8e-3}
)

// OutputSchema is the MACCROBAT-EE record layout.
var OutputSchema = relation.MustSchema(
	relation.Field{Name: "case", Type: relation.String},
	relation.Field{Name: "event", Type: relation.String},
	relation.Field{Name: "etype", Type: relation.String},
	relation.Field{Name: "trigger", Type: relation.String},
	relation.Field{Name: "theme", Type: relation.String},
	relation.Field{Name: "sentence", Type: relation.String},
)

// Record is one MACCROBAT-EE output row in struct form.
type Record struct {
	Case     string
	Event    string
	Type     string
	Trigger  string
	Theme    string
	Sentence string
}

// Oracle computes the expected output directly, as the testing
// reference both paradigm implementations must reproduce.
func Oracle(cases []datagen.ClinicalCase) ([]Record, error) {
	var out []Record
	for _, c := range cases {
		ents := make(map[string]brat.Entity, len(c.Ann.Entities))
		for _, e := range c.Ann.Entities {
			ents[e.ID] = e
		}
		sents := textproc.SplitSentences(c.Text)
		for _, ev := range c.Ann.Events {
			trig, ok := ents[ev.Trigger]
			if !ok {
				return nil, fmt.Errorf("dice: case %s event %s: unresolved trigger %s", c.ID, ev.ID, ev.Trigger)
			}
			theme := ""
			for _, a := range ev.Args {
				if a.Role == "Theme" {
					th, ok := ents[a.Ref]
					if !ok {
						return nil, fmt.Errorf("dice: case %s event %s: unresolved theme %s", c.ID, ev.ID, a.Ref)
					}
					theme = th.Text
					break
				}
			}
			sentence := ""
			for _, s := range sents {
				if trig.Start >= s.Start && trig.End <= s.End {
					sentence = s.Text
					break
				}
			}
			if sentence == "" {
				return nil, fmt.Errorf("dice: case %s event %s: trigger outside every sentence", c.ID, ev.ID)
			}
			out = append(out, Record{
				Case: c.ID, Event: ev.ID, Type: ev.Type,
				Trigger: trig.Text, Theme: theme, Sentence: sentence,
			})
		}
	}
	return out, nil
}

// RecordsToTable converts records to the canonical output table,
// sorted for order-independent comparison.
func RecordsToTable(recs []Record) *relation.Table {
	t := relation.NewTable(OutputSchema)
	for _, r := range recs {
		t.AppendUnchecked(relation.Tuple{r.Case, r.Event, r.Type, r.Trigger, r.Theme, r.Sentence})
	}
	if err := t.SortBy("case", "event"); err != nil {
		panic(err) // schema is static; cannot fail
	}
	return t
}

// Run implements core.Task.
func (t *Task) Run(p core.Paradigm, cfg core.RunConfig) (*core.Result, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	switch p {
	case core.Script:
		return t.runScript(cfg)
	case core.Workflow:
		return t.runWorkflow(cfg)
	default:
		return nil, fmt.Errorf("dice: unknown paradigm %v", p)
	}
}

// annFileTable renders the annotation files as a relational source
// {case, ann}.
func (t *Task) annFileTable() *relation.Table {
	s := relation.MustSchema(
		relation.Field{Name: "case", Type: relation.String},
		relation.Field{Name: "ann", Type: relation.String},
	)
	tbl := relation.NewTable(s)
	for _, c := range t.cases {
		tbl.AppendUnchecked(relation.Tuple{c.ID, brat.Render(c.Ann)})
	}
	return tbl
}

// textFileTable renders the text files as a relational source
// {case, text}.
func (t *Task) textFileTable() *relation.Table {
	s := relation.MustSchema(
		relation.Field{Name: "case", Type: relation.String},
		relation.Field{Name: "text", Type: relation.String},
	)
	tbl := relation.NewTable(s)
	for _, c := range t.cases {
		tbl.AppendUnchecked(relation.Tuple{c.ID, c.Text})
	}
	return tbl
}

// parsedAnnotation is the flattened row produced by parsing one
// annotation line under either paradigm.
type parsedAnnotation struct {
	caseID  string
	kind    string // "T" or "E"
	id      string
	typ     string
	start   int64
	end     int64
	text    string
	trigger string
	theme   string
}

// parseAnnotationFile flattens one rendered BRAT document.
func parseAnnotationFile(caseID, ann string) ([]parsedAnnotation, error) {
	doc, err := brat.ParseString(ann)
	if err != nil {
		return nil, fmt.Errorf("dice: case %s: %w", caseID, err)
	}
	var out []parsedAnnotation
	for _, e := range doc.Entities {
		out = append(out, parsedAnnotation{
			caseID: caseID, kind: "T", id: e.ID, typ: e.Type,
			start: int64(e.Start), end: int64(e.End), text: e.Text,
		})
	}
	for _, ev := range doc.Events {
		pa := parsedAnnotation{caseID: caseID, kind: "E", id: ev.ID, typ: ev.Type, trigger: ev.Trigger}
		for _, a := range ev.Args {
			if a.Role == "Theme" {
				pa.theme = a.Ref
				break
			}
		}
		out = append(out, pa)
	}
	return out, nil
}

// compositeKey builds the cross-file join key "case|id".
func compositeKey(caseID, id string) string {
	return caseID + "|" + id
}

// splitCaseSentences splits one case text into (sentence, span) rows.
func splitCaseSentences(text string) []textproc.Sentence {
	return textproc.SplitSentences(text)
}

// countAnnotations tallies dataset shape numbers used by cost charges.
func (t *Task) countAnnotations() (entities, events, sentences int) {
	for _, c := range t.cases {
		entities += len(c.Ann.Entities)
		events += len(c.Ann.Events)
		sentences += len(textproc.SplitSentences(c.Text))
	}
	return
}

// loc counts non-blank non-comment lines in a source string.
func loc(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		s := strings.TrimSpace(line)
		if s != "" && !strings.HasPrefix(s, "#") {
			n++
		}
	}
	return n
}
