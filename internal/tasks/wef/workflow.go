package wef

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dataflow"
	"repro/internal/datagen"
	"repro/internal/ml/linear"
	"repro/internal/ml/textclf"
	"repro/internal/planopt"
	"repro/internal/relation"
)

// The workflow's single Python UDF: a fine-tune-and-predict operator
// instantiated once per framing. The rest of the workflow is operator
// configuration.

const udfTrain = `class FinetuneFramingOp(UDFOperator):
    def __init__(self, framing):
        self.framing = framing
        self.rows = []

    def process_tuple(self, tuple_, port):
        self.rows.append(tuple_)

    def on_finish(self, port):
        model = BertForSequenceClassification.from_pretrained(
            "bert-base-uncased", num_labels=1)
        train = self.rows[: int(len(self.rows) * 0.8)]
        model = finetune(model, [r["text"] for r in train],
                         [r["g_" + self.framing] for r in train],
                         epochs=EPOCHS)
        for r in self.rows:
            r["p_" + self.framing] = predict(model, r["text"]) > 0
            yield r
`

// trainOp is the blocking fine-tune-and-predict operator for one
// framing.
type trainOp struct {
	desc    dataflow.Desc
	task    *Task
	framing int
	in      *relation.Schema
	out     *relation.Schema
}

func newTrainOp(t *Task, framing int, in *relation.Schema) (*trainOp, error) {
	out, err := in.Concat(relation.MustSchema(
		relation.Field{Name: "p_" + datagen.FramingNames[framing], Type: relation.Bool},
	), "dup_")
	if err != nil {
		return nil, err
	}
	return &trainOp{
		desc: dataflow.Desc{
			Name:          "finetune-" + datagen.FramingNames[framing],
			Language:      cost.Python,
			Ports:         1,
			BlockingPorts: []bool{true},
		},
		task:    t,
		framing: framing,
		in:      in,
		out:     out,
	}, nil
}

func (o *trainOp) Desc() dataflow.Desc { return o.desc }

func (o *trainOp) OutputSchema(in []*relation.Schema) (*relation.Schema, error) {
	if len(in) != 1 || !in[0].Equal(o.in) {
		return nil, fmt.Errorf("wef: %s: unexpected input schema", o.desc.Name)
	}
	return o.out, nil
}

func (o *trainOp) NewInstance() dataflow.Instance {
	return &trainInstance{op: o}
}

type trainInstance struct {
	op   *trainOp
	rows []relation.Tuple
}

func (ti *trainInstance) Open(dataflow.ExecCtx) error { return nil }

func (ti *trainInstance) Process(ec dataflow.ExecCtx, _ int, rows []relation.Tuple) ([]relation.Tuple, error) {
	// Buffering/auto-batching cost is negligible; the engine batches
	// for us (no manual DataLoader, unlike the script).
	ec.AddWork(cost.Work{Interp: 0.2e-3}.Scale(float64(len(rows))))
	ti.rows = append(ti.rows, rows...)
	return nil, nil
}

func (ti *trainInstance) EndPort(ec dataflow.ExecCtx, _ int) ([]relation.Tuple, error) {
	t := ti.op.task
	model, err := textclf.Pretrained("bert-"+datagen.FramingNames[ti.op.framing], hashDim, embDim, hidden)
	if err != nil {
		return nil, err
	}
	cut := len(ti.rows) * 4 / 5
	if cut == 0 {
		cut = len(ti.rows)
	}
	texts := make([]string, cut)
	labels := make([]bool, cut)
	for i := 0; i < cut; i++ {
		texts[i] = ti.rows[i].MustStr(1)
		labels[i] = ti.rows[i].MustBool(2 + ti.op.framing)
	}
	seed := t.params.Seed*31 + uint64(ti.op.framing)
	if err := model.Finetune(texts, labels, textclf.Config{Epochs: t.params.Epochs, LR: finetuneLR, Seed: seed}); err != nil {
		return nil, err
	}
	ec.AddWork(workTrainPerExample.Scale(float64(cut * t.params.Epochs)))
	ec.AddWork(workPredict.Scale(float64(len(ti.rows))))
	out := make([]relation.Tuple, len(ti.rows))
	for i, r := range ti.rows {
		row := make(relation.Tuple, 0, len(r)+1)
		row = append(row, r...)
		row = append(row, model.Predict(r.MustStr(1)))
		out[i] = row
	}
	return out, nil
}

func (ti *trainInstance) Close(dataflow.ExecCtx) error { return nil }

// tweetTable renders the labeled tweets as the workflow source.
func (t *Task) tweetTable() *relation.Table {
	s := relation.MustSchema(
		relation.Field{Name: "id", Type: relation.Int},
		relation.Field{Name: "text", Type: relation.String},
		relation.Field{Name: "g_link", Type: relation.Bool},
		relation.Field{Name: "g_action", Type: relation.Bool},
		relation.Field{Name: "g_attribution", Type: relation.Bool},
		relation.Field{Name: "g_irrelevant", Type: relation.Bool},
	)
	tbl := relation.NewTable(s)
	for _, tw := range t.tweets {
		tbl.AppendUnchecked(relation.Tuple{
			tw.ID, tw.Text, tw.Framings[0], tw.Framings[1], tw.Framings[2], tw.Framings[3],
		})
	}
	return tbl
}

// buildWorkflow assembles the WEF chain of four blocking fine-tune
// operators — sequential, like the paper's measured configuration, so
// there is no worker knob to thread through.
func (t *Task) buildWorkflow() (*dataflow.Workflow, error) {
	w := dataflow.New("wef")
	src := w.Source("tweets", t.tweetTable(), dataflow.WithScanWork(workLoad))
	prev := src
	schema := t.tweetTable().Schema()
	for f := 0; f < datagen.NumFramings; f++ {
		op, err := newTrainOp(t, f, schema)
		if err != nil {
			return nil, err
		}
		id := w.Op(op, dataflow.WithSignature(fmt.Sprintf("rev=%d", t.rev("train"))))
		w.Connect(prev, id, 0, dataflow.RoundRobin())
		prev = id
		schema = op.out
	}
	shape := dataflow.NewMap("shape-predictions", cost.Python, OutputSchema, func(r relation.Tuple) ([]relation.Tuple, error) {
		return []relation.Tuple{{r.MustInt(0), r.MustBool(6), r.MustBool(7), r.MustBool(8), r.MustBool(9)}}, nil
	})
	shape.Work = cost.Work{Interp: 0.5e-3}
	shapeID := w.Op(shape, dataflow.WithSignature(fmt.Sprintf("rev=%d", t.rev("shape"))))
	w.Connect(prev, shapeID, 0, dataflow.RoundRobin())
	sink := w.Sink("predictions")
	w.Connect(shapeID, sink, 0, dataflow.RoundRobin())
	return w, nil
}

// WorkflowPlan assembles the workflow DAG without executing it, so
// plan-time validation (repro -validate) can inspect the graph. The
// chain is sequential regardless of workers.
func (t *Task) WorkflowPlan(int) (*dataflow.Workflow, error) {
	return t.buildWorkflow()
}

// runWorkflow executes WEF as a chain of four blocking fine-tune
// operators — sequential, like the paper's measured configuration.
func (t *Task) runWorkflow(cfg core.RunConfig) (*core.Result, error) {
	w, err := t.buildWorkflow()
	if err != nil {
		return nil, err
	}
	if cfg.Optimize {
		if _, err := planopt.Optimize(w, planopt.ConfigOptions(cfg)); err != nil {
			return nil, fmt.Errorf("wef: optimize: %w", err)
		}
	}
	res, err := w.Run(context.Background(), dataflow.Config{
		Model: cfg.Model, Cluster: cfg.Cluster(), Shard: cfg.Topology(), Telemetry: cfg.Telemetry, Faults: cfg.Faults,
		Progress:     cfg.Progress,
		Lineage:      cfg.Lineage,
		LineageScope: fmt.Sprintf("workflow:wef[tweets=%d,epochs=%d,seed=%d]", t.params.Tweets, t.params.Epochs, t.params.Seed),
	})
	if err != nil {
		return nil, err
	}

	// Quality on the eval split, mirroring the script path.
	out := res.Tables["predictions"]
	_, evalIdx := t.split()
	evalSet := make(map[int64]bool, len(evalIdx))
	for _, ei := range evalIdx {
		evalSet[t.tweets[ei].ID] = true
	}
	var pred, gold [][]bool
	byID := make(map[int64]datagen.Tweet, len(t.tweets))
	for _, tw := range t.tweets {
		byID[tw.ID] = tw
	}
	for _, r := range out.Rows() {
		if !evalSet[r.MustInt(0)] {
			continue
		}
		pred = append(pred, []bool{r.MustBool(1), r.MustBool(2), r.MustBool(3), r.MustBool(4)})
		tw := byID[r.MustInt(0)]
		gold = append(gold, append([]bool(nil), tw.Framings[:]...))
	}
	quality := map[string]float64{}
	if len(pred) > 0 {
		f1, err := linear.MacroF1(pred, gold)
		if err != nil {
			return nil, err
		}
		quality["macro_f1"] = f1
	}

	return &core.Result{
		Task:          t.Name(),
		Paradigm:      core.Workflow,
		SimSeconds:    res.SimSeconds,
		Trace:         res.Trace.Totals(),
		Recovery:      res.Recovery.Totals(),
		LinesOfCode:   t.workflowLoC(),
		Operators:     w.NumOperators(),
		ParallelProcs: 1,
		Output:        out,
		Quality:       quality,
		Lineage:       res.Lineage,
	}, nil
}

// workflowLoC counts the workflow implementation size.
func (t *Task) workflowLoC() int {
	return loc(udfTrain) + len(workflowConfig())
}

// workflowConfig renders the operator configuration.
func workflowConfig() []string {
	ops := []struct{ typ, params string }{
		{"FileScan", `path=wildfire_tweets.jsonl, format=jsonl`},
		{"PythonUDF", `class=FinetuneFramingOp, framing=link, epochs=3`},
		{"PythonUDF", `class=FinetuneFramingOp, framing=action, epochs=3`},
		{"PythonUDF", `class=FinetuneFramingOp, framing=attribution, epochs=3`},
		{"PythonUDF", `class=FinetuneFramingOp, framing=irrelevant, epochs=3`},
		{"Projection", `output=[id, p_link, p_action, p_attribution, p_irrelevant]`},
		{"ViewResults", `name=predictions`},
	}
	lines := make([]string, 0, len(ops)*2)
	for i, o := range ops {
		lines = append(lines, fmt.Sprintf("operator %d: type=%s", i+1, o.typ))
		lines = append(lines, "  "+o.params)
	}
	return lines
}
