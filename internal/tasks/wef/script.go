package wef

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/lineage"
	"repro/internal/ml/textclf"
	"repro/internal/notebook"
	"repro/internal/relation"
)

// Notebook cell sources (pseudo-Python): the Jupyter implementation of
// WEF, as counted by the lines-of-code experiment.

const srcImports = `import torch
import pandas as pd
from transformers import BertForSequenceClassification, BertTokenizer
from torch.utils.data import DataLoader, TensorDataset

FRAMINGS = ["link", "action", "attribution", "irrelevant"]
EPOCHS = 3
`

const srcLoad = `df = pd.read_json("wildfire_tweets.jsonl", lines=True)
tokenizer = BertTokenizer.from_pretrained("bert-base-uncased")
train_df = df.iloc[: int(len(df) * 0.8)]
eval_df = df.iloc[int(len(df) * 0.8):]
encodings = tokenizer(list(df.text), truncation=True, padding=True)
`

const srcTrain = `def make_loader(frame, frame_df):
    labels = torch.tensor(frame_df[frame].values, dtype=torch.float)
    ids = torch.tensor(encodings["input_ids"])[frame_df.index]
    mask = torch.tensor(encodings["attention_mask"])[frame_df.index]
    dataset = TensorDataset(ids, mask, labels)
    return DataLoader(dataset, batch_size=16, shuffle=True)

models = {}
for frame in FRAMINGS:
    model = BertForSequenceClassification.from_pretrained(
        "bert-base-uncased", num_labels=1)
    optimizer = torch.optim.AdamW(model.parameters(), lr=2e-5)
    loader = make_loader(frame, train_df)
    model.train()
    for epoch in range(EPOCHS):
        for ids, mask, labels in loader:
            optimizer.zero_grad()
            out = model(input_ids=ids, attention_mask=mask,
                        labels=labels.unsqueeze(1))
            out.loss.backward()
            optimizer.step()
    models[frame] = model
`

const srcEvaluate = `predictions = {}
for frame, model in models.items():
    model.eval()
    with torch.no_grad():
        logits = model(torch.tensor(encodings["input_ids"]),
                       torch.tensor(encodings["attention_mask"])).logits
    predictions[frame] = (logits.squeeze(1) > 0).tolist()

pred_df = pd.DataFrame(predictions, index=df.id)
f1 = macro_f1(pred_df.loc[eval_df.id], eval_df[FRAMINGS])
print(f"macro F1 = {f1:.3f}")
pred_df.to_json("wef_predictions.jsonl", orient="records", lines=True)
`

// runScript executes WEF as a notebook: sequential fine-tuning of the
// four framing models in one kernel.
func (t *Task) runScript(cfg core.RunConfig) (*core.Result, error) {
	nb := notebook.New("wef", cfg.Model)
	nb.SetTelemetry(cfg.Telemetry, "script:wef")
	nb.SetProgress(cfg.Progress, "wef")
	var ens *textclf.Ensemble
	var out *relation.Table
	var quality map[string]float64

	nb.Add(&notebook.Cell{Name: "imports", Source: srcImports, Run: func(k *notebook.Kernel) error {
		k.Charge(cost.Work{Interp: 2.0, Mem: 0.6}) // torch + transformers import
		return nil
	}})
	nb.Add(&notebook.Cell{Name: "load_tokenize", Source: srcLoad, Run: func(k *notebook.Kernel) error {
		k.Charge(workLoad.Scale(float64(len(t.tweets))))
		return nil
	}})
	nb.Add(&notebook.Cell{Name: "train_models", Source: srcTrain, Run: func(k *notebook.Kernel) error {
		return k.Call("finetune", func() error {
			var err error
			ens, err = t.trainEnsemble()
			if err != nil {
				return err
			}
			steps := float64(t.trainExamples() * t.params.Epochs * len(ens.Models))
			k.Charge(workTrainPerExample.Scale(steps))
			// Manual DataLoader batching overhead (paper Figure 10).
			k.Charge(workBatchOverhead.Scale(steps))
			return nil
		})
	}})
	nb.Add(&notebook.Cell{Name: "evaluate_write", Source: srcEvaluate, Run: func(k *notebook.Kernel) error {
		var err error
		out, quality, err = t.predictions(ens)
		if err != nil {
			return err
		}
		k.Charge(workPredict.Scale(float64(len(t.tweets) * len(ens.Models))))
		return nil
	}})

	var linRep *lineage.RunReport
	if cfg.Lineage != nil {
		scope := fmt.Sprintf("script:wef[tweets=%d,epochs=%d,seed=%d]", t.params.Tweets, t.params.Epochs, t.params.Seed)
		var err error
		linRep, err = lineage.RunNotebook(cfg.Lineage, nb, lineage.NotebookSpec{
			Scope: scope,
			Revs: map[string]int{
				"train_models":   t.rev("train"),
				"evaluate_write": t.rev("shape"),
			},
		}, cfg.Telemetry)
		if err != nil {
			return nil, err
		}
	} else if err := nb.RunAll(); err != nil {
		return nil, err
	}
	return &core.Result{
		Task:          t.Name(),
		Paradigm:      core.Script,
		SimSeconds:    nb.Elapsed(),
		LinesOfCode:   nb.LinesOfCode(),
		Operators:     nb.NumCells(),
		ParallelProcs: 1,
		Output:        out,
		Quality:       quality,
		Lineage:       linRep,
	}, nil
}
