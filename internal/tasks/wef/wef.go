// Package wef implements Task 2 of the reproduced paper: Wildfire
// Experience Framing — multi-label classification of climate-framing
// tweets by fine-tuning four binary "BERT" models, one per framing
// (paper Figure 5). The stand-in encoder is internal/ml/textclf; the
// BERT-scale fine-tuning cost is carried by the cost model.
//
// WEF is CPU-bound training with no distributed algorithm, so — as the
// paper observes — the two paradigms perform within a few percent of
// each other: the workflow chains the four training operators
// sequentially, and neither side parallelizes inside a model.
package wef

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/ml/linear"
	"repro/internal/ml/textclf"
	"repro/internal/relation"
)

// Params sizes the task.
type Params struct {
	// Tweets is the number of labeled tweets trained on; the paper
	// uses 200, 300 and 400 (from the 800-tweet corpus).
	Tweets int
	// Epochs is the number of fine-tuning passes (default 3).
	Epochs int
	// Seed drives the tweet generator and training shuffles.
	Seed uint64
}

// Task is the WEF workload bound to a generated dataset.
type Task struct {
	params Params
	tweets []datagen.Tweet
	// edits carries per-stage revision counters modeling
	// semantics-preserving re-parameterizations (the iterate workload).
	edits map[string]int
}

// SetEdits installs per-stage edit revisions (stage names: train,
// shape). The map is copied.
func (t *Task) SetEdits(m map[string]int) {
	t.edits = make(map[string]int, len(m))
	for k, v := range m {
		t.edits[k] = v
	}
}

// rev returns the current edit revision of a stage.
func (t *Task) rev(stage string) int { return t.edits[stage] }

// The registry entry makes the task runnable by name from the CLI and
// the experiment harness; the default size is the paper's full scale.
func init() {
	core.RegisterTask("wef", 200, func(size int, seed uint64) (core.Task, error) {
		return New(Params{Tweets: size, Seed: seed})
	})
}

// New generates the dataset and returns the task.
func New(p Params) (*Task, error) {
	if p.Tweets <= 0 {
		return nil, fmt.Errorf("wef: tweets must be positive, got %d", p.Tweets)
	}
	if p.Epochs == 0 {
		p.Epochs = 3
	}
	if p.Epochs < 0 {
		return nil, fmt.Errorf("wef: negative epochs %d", p.Epochs)
	}
	return &Task{params: p, tweets: datagen.GenerateTweets(p.Tweets, p.Seed)}, nil
}

// Name implements core.Task.
func (t *Task) Name() string { return "wef" }

// Tweets exposes the dataset.
func (t *Task) Tweets() []datagen.Tweet { return t.tweets }

// Calibrated cost constants. BERT-base fine-tuning on an 8-vCPU node
// runs at roughly half a second per example per epoch per model; the
// compute is dense matrix math (memory/BLAS bound), so it is charged
// as language-independent Mem work and is not subject to the Ray
// 1-CPU torch limit (the per-step kernels are too small to scale
// across cores, which is why the paper saw near-identical times).
var (
	// workTrainPerExample is one example through one epoch of one
	// framing model.
	workTrainPerExample = cost.Work{Interp: 0.02, Mem: 0.615}
	// workBatchOverhead is the script-side dataloader overhead per
	// example per epoch per model — the manual batching the workflow
	// paradigm's auto-batching avoids (paper Figure 10).
	workBatchOverhead = cost.Work{Interp: 0.009}
	// workPredict is one example through a forward pass of one model.
	workPredict = cost.Work{Interp: 0.002, Mem: 0.05}
	// workLoad is charged per tweet read and tokenized.
	workLoad = cost.Work{Interp: 1.5e-3, Mem: 0.2e-3}
)

// encoder hyperparameters of the stand-in models.
const (
	hashDim = 4096
	embDim  = 24
	hidden  = 12
	// finetuneLR compensates the short 3-epoch schedule.
	finetuneLR = 0.3
)

// OutputSchema is the prediction table layout: tweet id plus one
// predicted flag per framing.
var OutputSchema = relation.MustSchema(
	relation.Field{Name: "id", Type: relation.Int},
	relation.Field{Name: "link", Type: relation.Bool},
	relation.Field{Name: "action", Type: relation.Bool},
	relation.Field{Name: "attribution", Type: relation.Bool},
	relation.Field{Name: "irrelevant", Type: relation.Bool},
)

// split returns the train/eval split indices (80/20, deterministic).
func (t *Task) split() (train, eval []int) {
	n := len(t.tweets)
	cut := n * 4 / 5
	if cut == 0 {
		cut = n
	}
	for i := 0; i < n; i++ {
		if i < cut {
			train = append(train, i)
		} else {
			eval = append(eval, i)
		}
	}
	return
}

// trainEnsemble fine-tunes the four framing models exactly the same
// way under both paradigms, so outputs are comparable.
func (t *Task) trainEnsemble() (*textclf.Ensemble, error) {
	ens, err := textclf.NewEnsemble(datagen.FramingNames, hashDim, embDim, hidden)
	if err != nil {
		return nil, err
	}
	trainIdx, _ := t.split()
	texts := make([]string, len(trainIdx))
	golds := make([][]bool, len(trainIdx))
	for i, ti := range trainIdx {
		texts[i] = t.tweets[ti].Text
		golds[i] = append([]bool(nil), t.tweets[ti].Framings[:]...)
	}
	if err := ens.Finetune(texts, golds, textclf.Config{Epochs: t.params.Epochs, LR: finetuneLR, Seed: t.params.Seed}); err != nil {
		return nil, err
	}
	return ens, nil
}

// predictions runs the ensemble over every tweet, producing the
// canonical output table and quality metrics.
func (t *Task) predictions(ens *textclf.Ensemble) (*relation.Table, map[string]float64, error) {
	out := relation.NewTable(OutputSchema)
	_, evalIdx := t.split()
	var pred, gold [][]bool
	for i, tw := range t.tweets {
		p := ens.Predict(tw.Text)
		out.AppendUnchecked(relation.Tuple{tw.ID, p[0], p[1], p[2], p[3]})
		for _, ei := range evalIdx {
			if ei == i {
				pred = append(pred, p)
				gold = append(gold, append([]bool(nil), tw.Framings[:]...))
			}
		}
	}
	quality := map[string]float64{}
	if len(pred) > 0 {
		f1, err := linear.MacroF1(pred, gold)
		if err != nil {
			return nil, nil, err
		}
		quality["macro_f1"] = f1
	}
	return out, quality, nil
}

// Run implements core.Task.
func (t *Task) Run(p core.Paradigm, cfg core.RunConfig) (*core.Result, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	switch p {
	case core.Script:
		return t.runScript(cfg)
	case core.Workflow:
		return t.runWorkflow(cfg)
	default:
		return nil, fmt.Errorf("wef: unknown paradigm %v", p)
	}
}

// trainExamples returns the training-set size (cost basis).
func (t *Task) trainExamples() int {
	train, _ := t.split()
	return len(train)
}

// loc counts non-blank non-comment lines.
func loc(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		s := strings.TrimSpace(line)
		if s != "" && !strings.HasPrefix(s, "#") {
			n++
		}
	}
	return n
}
