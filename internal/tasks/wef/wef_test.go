package wef

import (
	"math"
	"testing"

	"repro/internal/core"
)

func newTask(t *testing.T, tweets int) *Task {
	t.Helper()
	task, err := New(Params{Tweets: tweets, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Params{Tweets: 0}); err == nil {
		t.Fatal("expected error for zero tweets")
	}
	if _, err := New(Params{Tweets: 10, Epochs: -1}); err == nil {
		t.Fatal("expected error for negative epochs")
	}
}

func TestParadigmsAgreeOnPredictions(t *testing.T) {
	task := newTask(t, 100)
	s, w, err := core.RunBoth(task, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Output.Equal(w.Output) {
		t.Fatal("paradigms disagree on predictions")
	}
	if s.Output.Len() != 100 {
		t.Fatalf("prediction rows = %d", s.Output.Len())
	}
}

func TestModelsLearnFramings(t *testing.T) {
	task := newTask(t, 300)
	res, err := task.Run(core.Script, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	f1 := res.Quality["macro_f1"]
	if f1 < 0.6 {
		t.Fatalf("macro F1 = %v, models failed to learn", f1)
	}
}

func TestParadigmsWithinFewPercent(t *testing.T) {
	// Paper Figure 13b: WEF times nearly identical between paradigms.
	task := newTask(t, 200)
	s, w, err := core.RunBoth(task, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(s.SimSeconds-w.SimSeconds) / s.SimSeconds
	if rel > 0.1 {
		t.Fatalf("paradigm gap = %.1f%% (script %v, workflow %v)", rel*100, s.SimSeconds, w.SimSeconds)
	}
	if w.SimSeconds >= s.SimSeconds {
		t.Fatalf("workflow (%v) should be slightly faster than script (%v)", w.SimSeconds, s.SimSeconds)
	}
}

func TestTrainingTimeLinearInTweets(t *testing.T) {
	t200, err := newTask(t, 200).Run(core.Script, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t400, err := newTask(t, 400).Run(core.Script, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := t400.SimSeconds / t200.SimSeconds
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("scaling ratio 400/200 = %v, want ~2 (linear)", ratio)
	}
}

func TestNoParallelism(t *testing.T) {
	task := newTask(t, 50)
	s, w, err := core.RunBoth(task, core.RunConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.ParallelProcs != 1 || w.ParallelProcs != 1 {
		t.Fatalf("WEF should not parallelize: %d/%d", s.ParallelProcs, w.ParallelProcs)
	}
}

func TestLoCComparable(t *testing.T) {
	task := newTask(t, 20)
	s, w, err := core.RunBoth(task, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if s.LinesOfCode <= 0 || w.LinesOfCode <= 0 {
		t.Fatal("LoC must be positive")
	}
	// Paper Figure 12a: WEF implementations are close in size, with
	// the workflow slightly smaller.
	if w.LinesOfCode >= s.LinesOfCode {
		t.Fatalf("workflow LoC %d should be below script LoC %d", w.LinesOfCode, s.LinesOfCode)
	}
}
