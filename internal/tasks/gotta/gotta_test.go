package gotta

import (
	"testing"

	"repro/internal/core"
)

func newTask(t *testing.T, paragraphs int) *Task {
	t.Helper()
	task, err := New(Params{Paragraphs: paragraphs, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Params{Paragraphs: 0}); err == nil {
		t.Fatal("expected error for zero paragraphs")
	}
	if _, err := New(Params{Paragraphs: 2, SentencesPer: -1}); err == nil {
		t.Fatal("expected error for negative sentences")
	}
}

func TestParadigmsAgreeOnAnswers(t *testing.T) {
	task := newTask(t, 4)
	s, w, err := core.RunBoth(task, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Output.Equal(w.Output) {
		t.Fatal("paradigms disagree on generated answers")
	}
	if s.Output.Len() != task.numQAs() {
		t.Fatalf("answers = %d, want %d", s.Output.Len(), task.numQAs())
	}
}

func TestGenerationQuality(t *testing.T) {
	task := newTask(t, 8)
	res, err := task.Run(core.Script, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality["exact_match"] < 0.8 {
		t.Fatalf("exact match = %v", res.Quality["exact_match"])
	}
	if res.Quality["f1"] < res.Quality["exact_match"] {
		t.Fatal("F1 cannot be below exact match")
	}
}

func TestWorkflowBeatsScript(t *testing.T) {
	// Figure 13d shape: the workflow wins GOTTA by 1.5-3x because the
	// script pays the object store and the 1-CPU torch pin.
	task := newTask(t, 4)
	s, w, err := core.RunBoth(task, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := s.SimSeconds / w.SimSeconds
	if ratio < 1.5 || ratio > 4 {
		t.Fatalf("script/workflow ratio = %v, want in the paper's 1.5-3 band", ratio)
	}
}

func TestScriptGapNarrowsWithWorkers(t *testing.T) {
	// Figure 14b shape: more workers shrink the script's deficit, but
	// the workflow stays ahead.
	task := newTask(t, 4)
	gap := func(workers int) float64 {
		s, w, err := core.RunBoth(task, core.RunConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if s.SimSeconds <= w.SimSeconds {
			t.Fatalf("workers=%d: workflow (%v) lost its lead (script %v)", workers, w.SimSeconds, s.SimSeconds)
		}
		return s.SimSeconds - w.SimSeconds
	}
	g1 := gap(1)
	g4 := gap(4)
	if g4 >= g1 {
		t.Fatalf("gap should narrow with workers: 1w=%v 4w=%v", g1, g4)
	}
}

func TestScalingSublinear(t *testing.T) {
	// Fixed model-loading costs amortize: 16 paragraphs cost less than
	// 16x one paragraph under both paradigms.
	t1 := newTask(t, 1)
	t16 := newTask(t, 16)
	for _, p := range []core.Paradigm{core.Script, core.Workflow} {
		r1, err := t1.Run(p, core.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		r16, err := t16.Run(p, core.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if r16.SimSeconds >= 16*r1.SimSeconds {
			t.Fatalf("%s: scaling superlinear: 1p=%v 16p=%v", p, r1.SimSeconds, r16.SimSeconds)
		}
		if r16.SimSeconds <= r1.SimSeconds {
			t.Fatalf("%s: more data should cost more", p)
		}
	}
}

func TestLoCComparable(t *testing.T) {
	task := newTask(t, 2)
	s, w, err := core.RunBoth(task, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if w.LinesOfCode >= s.LinesOfCode {
		t.Fatalf("paper shape violated: workflow LoC %d >= script LoC %d", w.LinesOfCode, s.LinesOfCode)
	}
}

func TestParallelProcsReported(t *testing.T) {
	task := newTask(t, 8)
	res, err := task.Run(core.Script, core.RunConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.ParallelProcs != 4 {
		t.Fatalf("parallel processes = %d, want 4", res.ParallelProcs)
	}
}
