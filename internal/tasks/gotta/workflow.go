package gotta

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dataflow"
	"repro/internal/ml/genqa"
	"repro/internal/planopt"
	"repro/internal/relation"
)

// The workflow's Python UDFs.

const udfPrompts = `class BuildPromptsOp(UDFOperator):
    def process_tuple(self, tuple_, port):
        for idx, qa in enumerate(load_qas(tuple_["text"])):
            yield {"passage": tuple_["id"], "qa": idx,
                   "cloze": qa["cloze"], "answer": qa["answer"],
                   "prompt": f"Question: {qa['cloze']} Context: {tuple_['text']}"}
`

const udfInference = `class BartGenerateOp(UDFOperator):
    def open(self):
        self.tokenizer = BartTokenizer.from_pretrained("gotta-bart-large")
        self.model = BartForConditionalGeneration.from_pretrained(
            "gotta-bart-large")
        self.model.eval()

    def process_tuple(self, tuple_, port):
        ids = self.tokenizer(tuple_["prompt"], return_tensors="pt")
        with torch.no_grad():
            gen = self.model.generate(**ids, max_new_tokens=16)
        tuple_["generated"] = self.tokenizer.decode(
            gen[0], skip_special_tokens=True)
        yield tuple_
`

const udfEvaluate = `class EvaluateOp(UDFOperator):
    def process_tuple(self, tuple_, port):
        tuple_["em"] = exact_match(tuple_["generated"], tuple_["answer"])
        yield tuple_
`

var promptSchema = relation.MustSchema(
	relation.Field{Name: "passage", Type: relation.String},
	relation.Field{Name: "qa", Type: relation.Int},
	relation.Field{Name: "cloze", Type: relation.String},
	relation.Field{Name: "answer", Type: relation.String},
	relation.Field{Name: "context", Type: relation.String},
)

var generatedSchema = relation.MustSchema(
	relation.Field{Name: "passage", Type: relation.String},
	relation.Field{Name: "qa", Type: relation.Int},
	relation.Field{Name: "cloze", Type: relation.String},
	relation.Field{Name: "answer", Type: relation.String},
	relation.Field{Name: "generated", Type: relation.String},
)

// passageTable renders the passages as the workflow source.
func (t *Task) passageTable() *relation.Table {
	s := relation.MustSchema(
		relation.Field{Name: "id", Type: relation.String},
		relation.Field{Name: "text", Type: relation.String},
	)
	tbl := relation.NewTable(s)
	for _, p := range t.passages {
		tbl.AppendUnchecked(relation.Tuple{p.ID, p.Text})
	}
	return tbl
}

// generateOp is the BART inference operator: each worker initializes
// its own model copy (shipped over the network) on first use, then
// streams tuples through the forward pass with the torch parallelism
// Texera permits.
type generateOp struct {
	task       *Task
	perQA      cost.Work // forward cost per cloze after torch speedup
	workerInit cost.Work // one-time per-worker model setup
}

func (o *generateOp) Desc() dataflow.Desc {
	return dataflow.Desc{
		Name:          "bart-generate",
		Language:      cost.Python,
		Ports:         1,
		BlockingPorts: []bool{false},
		// Each batch is a pure forward pass; the model loaded in Open
		// is read-only, so instances carry no cross-batch state.
		Stateless: true,
	}
}

func (o *generateOp) OutputSchema(in []*relation.Schema) (*relation.Schema, error) {
	if len(in) != 1 || !in[0].Equal(promptSchema) {
		return nil, fmt.Errorf("gotta: bart-generate: unexpected input schema")
	}
	return generatedSchema, nil
}

func (o *generateOp) NewInstance() dataflow.Instance {
	return &generateInstance{op: o}
}

type generateInstance struct {
	op *generateOp
}

// Open charges the per-worker model setup: the checkpoint arrives over
// the network and is initialized before the first tuple.
func (gi *generateInstance) Open(ec dataflow.ExecCtx) error {
	ec.AddWork(gi.op.workerInit)
	return nil
}

func (gi *generateInstance) Process(ec dataflow.ExecCtx, _ int, rows []relation.Tuple) ([]relation.Tuple, error) {
	ec.AddWork(gi.op.perQA.Scale(float64(len(rows))))
	out := make([]relation.Tuple, len(rows))
	for i, r := range rows {
		pred, _ := gi.op.task.generate(r.MustStr(4), r.MustStr(2), r.MustStr(3))
		out[i] = relation.Tuple{r.MustStr(0), r.MustInt(1), r.MustStr(2), r.MustStr(3), pred}
	}
	return out, nil
}

func (gi *generateInstance) EndPort(dataflow.ExecCtx, int) ([]relation.Tuple, error) {
	return nil, nil
}
func (gi *generateInstance) Close(dataflow.ExecCtx) error { return nil }

// buildWorkflow assembles the GOTTA dataflow graph: serial prompt
// construction feeding parallel BART inference and evaluation. The
// cost model sets only simulated work (torch speedup, model-transfer
// time), not the plan's shape.
func (t *Task) buildWorkflow(model *cost.Model, workers int) *dataflow.Workflow {
	w := dataflow.New("gotta")
	lang := cost.Python
	src := w.Source("passages", t.passageTable(), dataflow.WithScanWork(cost.Work{Interp: 0.08}))

	prompts := dataflow.NewMap("build-prompts", lang, promptSchema, func(r relation.Tuple) ([]relation.Tuple, error) {
		id := r.MustStr(0)
		for _, pass := range t.passages {
			if pass.ID != id {
				continue
			}
			out := make([]relation.Tuple, 0, len(pass.QAs))
			for qi, qa := range pass.QAs {
				out = append(out, relation.Tuple{pass.ID, int64(qi), qa.Cloze, qa.Answer, qa.Context})
			}
			return out, nil
		}
		return nil, fmt.Errorf("gotta: unknown passage %q", id)
	})
	prompts.Work = cost.Work{}
	prompts.ExtraWork = func(relation.Tuple) cost.Work {
		return workPrompt.Scale(float64(t.params.SentencesPer))
	}
	promptsID := w.Op(prompts, // prompt building is a serial stage
		dataflow.WithSignature(fmt.Sprintf("rev=%d", t.rev("prompts"))))
	w.Connect(src, promptsID, 0, dataflow.RoundRobin())

	speedup := cost.TorchSpeedup(model.TorchCoresTexera)
	infer := &generateOp{
		task:       t,
		perQA:      cost.Work{Mem: forwardSecondsPerQA / speedup},
		workerInit: workWorkerInit.Add(cost.Work{Mem: model.TransferSeconds(t.model.ModelBytes)}),
	}
	inferID := w.Op(infer, dataflow.WithParallelism(workers))
	w.Connect(promptsID, inferID, 0, dataflow.RoundRobin())

	eval := dataflow.NewMap("evaluate", lang, OutputSchema, func(r relation.Tuple) ([]relation.Tuple, error) {
		pred, gold := r.MustStr(4), r.MustStr(3)
		return []relation.Tuple{{r.MustStr(0), r.MustInt(1), r.MustStr(2), gold, pred, genqa.ExactMatch(pred, gold)}}, nil
	})
	eval.Work = workEval
	evalID := w.Op(eval, dataflow.WithParallelism(workers),
		dataflow.WithSignature(fmt.Sprintf("rev=%d", t.rev("evaluate"))))
	w.Connect(inferID, evalID, 0, dataflow.RoundRobin())

	sink := w.Sink("answers")
	w.Connect(evalID, sink, 0, dataflow.RoundRobin())
	return w
}

// WorkflowPlan assembles the workflow DAG without executing it, so
// plan-time validation (repro -validate) can inspect the graph.
func (t *Task) WorkflowPlan(workers int) (*dataflow.Workflow, error) {
	return t.buildWorkflow(cost.Default(), workers), nil
}

// runWorkflow executes GOTTA as a dataflow: prompts are constructed by
// one operator and streamed to the generator in engine-tuned batches.
func (t *Task) runWorkflow(cfg core.RunConfig) (*core.Result, error) {
	w := t.buildWorkflow(cfg.Model, cfg.Workers)
	if cfg.Optimize {
		if _, err := planopt.Optimize(w, planopt.ConfigOptions(cfg)); err != nil {
			return nil, fmt.Errorf("gotta: optimize: %w", err)
		}
	}
	res, err := w.Run(context.Background(), dataflow.Config{
		Model: cfg.Model, Cluster: cfg.Cluster(), Shard: cfg.Topology(), Telemetry: cfg.Telemetry, Faults: cfg.Faults,
		Progress: cfg.Progress,
		Lineage:  cfg.Lineage,
		LineageScope: fmt.Sprintf("workflow:gotta[paragraphs=%d,sentences=%d,seed=%d,workers=%d]",
			t.params.Paragraphs, t.params.SentencesPer, t.params.Seed, cfg.Workers),
	})
	if err != nil {
		return nil, err
	}

	out := res.Tables["answers"]
	answers := make([]Answer, 0, out.Len())
	for _, r := range out.Rows() {
		answers = append(answers, Answer{
			Passage: r.MustStr(0), QA: int(r.MustInt(1)), Cloze: r.MustStr(2),
			Gold: r.MustStr(3), Generated: r.MustStr(4), EM: r.MustBool(5),
		})
	}
	return &core.Result{
		Task:          t.Name(),
		Paradigm:      core.Workflow,
		SimSeconds:    res.SimSeconds,
		Trace:         res.Trace.Totals(),
		Recovery:      res.Recovery.Totals(),
		LinesOfCode:   t.workflowLoC(),
		Operators:     w.NumOperators(),
		ParallelProcs: cfg.Workers,
		Output:        AnswersToTable(answers),
		Quality:       quality(answers),
		Lineage:       res.Lineage,
	}, nil
}

// workflowLoC counts the workflow implementation size.
func (t *Task) workflowLoC() int {
	total := 0
	for _, udf := range []string{udfPrompts, udfInference, udfEvaluate} {
		total += loc(udf)
	}
	return total + len(workflowConfig())
}

// workflowConfig renders the operator configuration.
func workflowConfig() []string {
	ops := []struct{ typ, params string }{
		{"FileScan", `path=passages.jsonl, format=jsonl`},
		{"PythonUDF", `class=BuildPromptsOp`},
		{"PythonUDF", `class=BartGenerateOp, workers=N, model=gotta-bart-large`},
		{"PythonUDF", `class=EvaluateOp`},
		{"ViewResults", `name=answers`},
	}
	lines := make([]string, 0, len(ops)*2)
	for i, o := range ops {
		lines = append(lines, fmt.Sprintf("operator %d: type=%s", i+1, o.typ))
		lines = append(lines, "  "+o.params)
	}
	return lines
}
