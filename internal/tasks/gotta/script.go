package gotta

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lineage"
	"repro/internal/notebook"
	"repro/internal/objstore"
	"repro/internal/raysim"
	"repro/internal/sim"
)

// Notebook cell sources (pseudo-Python).

const srcImports = `import ray
import torch
from transformers import BartForConditionalGeneration, BartTokenizer
from gotta.evaluation import exact_match, token_f1

ray.init(address="auto")
`

const srcLoadModel = `tokenizer = BartTokenizer.from_pretrained("gotta-bart-large")
model = BartForConditionalGeneration.from_pretrained("gotta-bart-large")
model.eval()
model_ref = ray.put(model)
`

const srcBuildPrompts = `passages = load_passages("passages.jsonl")
prompt_batches = []
for passage in passages:
    batch = []
    for qa in passage.qas:
        question = qa["cloze"]
        answers = qa["answer"]
        prompt = f"Question: {question} Context: {passage.text}"
        batch.append({"passage": passage.id, "qa": qa["idx"],
                      "prompt": prompt, "answer": answers})
    prompt_batches.append(batch)
`

const srcInference = `@ray.remote
def run_batch(model_ref, batch):
    model = ray.get(model_ref)
    outputs = []
    for item in batch:
        ids = tokenizer(item["prompt"], return_tensors="pt")
        with torch.no_grad():
            gen = model.generate(**ids, max_new_tokens=16)
        text = tokenizer.decode(gen[0], skip_special_tokens=True)
        outputs.append({**item, "generated": text})
    return outputs

futures = [run_batch.remote(model_ref, b) for b in prompt_batches]
results = ray.get(futures)
`

const srcEvaluate = `answers = [a for batch in results for a in batch]
em = sum(exact_match(a["generated"], a["answer"]) for a in answers)
f1 = sum(token_f1(a["generated"], a["answer"]) for a in answers)
print(f"EM = {em / len(answers):.3f}  F1 = {f1 / len(answers):.3f}")
save_jsonl("gotta_answers.jsonl", answers)
`

// runScript executes GOTTA as a Ray-scaled notebook: the model is put
// into the shared object store once, then one task per paragraph
// fetches it and runs the forward pass pinned to a single CPU.
func (t *Task) runScript(cfg core.RunConfig) (*core.Result, error) {
	nb := notebook.New("gotta", cfg.Model)
	nb.SetTelemetry(cfg.Telemetry, "script:gotta")
	nb.SetProgress(cfg.Progress, "gotta")
	ray, err := raysim.NewClusterFor(cfg.Model, cfg.Topology(), cfg.Workers)
	if err != nil {
		return nil, err
	}
	const modelID = objstore.ID("gotta-bart")

	var answers []Answer
	parallel := 1
	var recovery sim.Recovery
	var shuffleBytes int64

	nb.Add(&notebook.Cell{Name: "imports", Source: srcImports, Run: func(k *notebook.Kernel) error {
		k.Charge(workImports)
		return nil
	}})
	nb.Add(&notebook.Cell{Name: "load_model", Source: srcLoadModel, Run: func(k *notebook.Kernel) error {
		k.Charge(workModelInit)
		secs, err := ray.Store().Put(modelID, t.model.ModelBytes)
		if err != nil {
			return err
		}
		k.ChargeSeconds(secs)
		return nil
	}})
	nb.Add(&notebook.Cell{Name: "build_prompts", Source: srcBuildPrompts, Run: func(k *notebook.Kernel) error {
		k.Charge(workPrompt.Scale(float64(t.numQAs())))
		return nil
	}})
	nb.Add(&notebook.Cell{Name: "inference", Source: srcInference, Run: func(k *notebook.Kernel) error {
		return k.Call("run_batch", func() error {
			job := ray.NewJob()
			if !k.Replaying() {
				// A replayed cell rebuilds the answers but must not
				// re-emit spans for work that was served from cache.
				job.SetTelemetry(cfg.Telemetry, "script:gotta")
				job.SetProgress(cfg.Progress, "gotta")
			}
			job.SetFaults(cfg.Faults)
			for _, p := range t.passages {
				job.Submit(raysim.TaskSpec{
					Name:             "batch-" + p.ID,
					Gets:             []objstore.ID{modelID},
					FrameworkSeconds: forwardSecondsPerQA * float64(len(p.QAs)),
				})
				for qi, qa := range p.QAs {
					pred, em := t.generate(qa.Context, qa.Cloze, qa.Answer)
					answers = append(answers, Answer{
						Passage: p.ID, QA: qi, Cloze: qa.Cloze,
						Gold: qa.Answer, Generated: pred, EM: em,
					})
				}
			}
			res, err := job.Run()
			if err != nil {
				return err
			}
			k.ChargeSeconds(res.Makespan)
			parallel = res.ParallelTasks
			recovery = res.Recovery
			shuffleBytes = res.ShuffleBytes
			return nil
		})
	}})
	var out map[string]float64
	nb.Add(&notebook.Cell{Name: "evaluate", Source: srcEvaluate, Run: func(k *notebook.Kernel) error {
		k.Charge(workEval.Scale(float64(len(answers))))
		out = quality(answers)
		return nil
	}})

	var linRep *lineage.RunReport
	if cfg.Lineage != nil {
		scope := fmt.Sprintf("script:gotta[paragraphs=%d,sentences=%d,seed=%d,workers=%d]",
			t.params.Paragraphs, t.params.SentencesPer, t.params.Seed, cfg.Workers)
		linRep, err = lineage.RunNotebook(cfg.Lineage, nb, lineage.NotebookSpec{
			Scope: scope,
			Revs: map[string]int{
				"build_prompts": t.rev("prompts"),
				"evaluate":      t.rev("evaluate"),
			},
		}, cfg.Telemetry)
		if err != nil {
			return nil, err
		}
	} else if err := nb.RunAll(); err != nil {
		return nil, err
	}
	if len(answers) == 0 {
		return nil, fmt.Errorf("gotta: no answers generated")
	}
	return &core.Result{
		Task:          t.Name(),
		Paradigm:      core.Script,
		SimSeconds:    nb.Elapsed(),
		LinesOfCode:   nb.LinesOfCode(),
		Operators:     nb.NumCells(),
		ParallelProcs: parallel,
		Output:        AnswersToTable(answers),
		Quality:       out,
		Trace: core.TraceTotals{
			ShuffleBytes: shuffleBytes,
			SpillBytes:   ray.Store().Stats().SpilledBytes,
		},
		Recovery: core.RecoveryTotals{
			Kills:              recovery.Kills,
			LostSeconds:        recovery.LostSeconds,
			DelaySeconds:       recovery.DelaySeconds,
			RestoreSeconds:     recovery.ExtraCostSeconds,
			ReconstructedBytes: ray.Store().Stats().ReconstructedBytes,
		},
		Lineage: linRep,
	}, nil
}
