// Package gotta implements Task 3 of the reproduced paper: GOTTA
// one-step inference — generative prompt-based cloze question
// answering with a fine-tuned BART model (paper Figure 6). Prompts are
// built from passages, batched, pushed through a forward pass of the
// model, and the generated answers are evaluated against the gold
// spans.
//
// The stand-in generator is internal/ml/genqa; the 1.59 GB checkpoint
// footprint and BART-scale forward-pass cost are carried by the cost
// model. The paper's script-paradigm slowdown comes from Ray's object
// store (every task fetches the model) and its num_cpus=1 PyTorch
// pinning; both mechanisms are reproduced here.
package gotta

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/ml/genqa"
	"repro/internal/relation"
)

// Params sizes the task.
type Params struct {
	// Paragraphs is the passage count; the paper uses 1, 4 and 16.
	Paragraphs int
	// SentencesPer controls passage length (default 5; each sentence
	// yields one cloze question).
	SentencesPer int
	// Seed drives the passage generator.
	Seed uint64
}

// Task is the GOTTA workload bound to a generated dataset.
type Task struct {
	params   Params
	passages []datagen.Passage
	model    *genqa.Model
	// edits carries per-stage revision counters modeling
	// semantics-preserving re-parameterizations (the iterate workload).
	edits map[string]int
}

// SetEdits installs per-stage edit revisions (stage names: prompts,
// evaluate). The map is copied.
func (t *Task) SetEdits(m map[string]int) {
	t.edits = make(map[string]int, len(m))
	for k, v := range m {
		t.edits[k] = v
	}
}

// rev returns the current edit revision of a stage.
func (t *Task) rev(stage string) int { return t.edits[stage] }

// The registry entry makes the task runnable by name from the CLI and
// the experiment harness; the default size is the paper's full scale.
func init() {
	core.RegisterTask("gotta", 16, func(size int, seed uint64) (core.Task, error) {
		return New(Params{Paragraphs: size, Seed: seed})
	})
}

// New generates the dataset and returns the task.
func New(p Params) (*Task, error) {
	if p.Paragraphs <= 0 {
		return nil, fmt.Errorf("gotta: paragraphs must be positive, got %d", p.Paragraphs)
	}
	if p.SentencesPer == 0 {
		p.SentencesPer = 5
	}
	if p.SentencesPer < 0 {
		return nil, fmt.Errorf("gotta: negative sentences per paragraph %d", p.SentencesPer)
	}
	return &Task{
		params:   p,
		passages: datagen.GeneratePassages(p.Paragraphs, p.SentencesPer, p.Seed),
		model:    genqa.NewModel(),
	}, nil
}

// Name implements core.Task.
func (t *Task) Name() string { return "gotta" }

// Passages exposes the dataset.
func (t *Task) Passages() []datagen.Passage { return t.passages }

// Calibrated cost constants.
var (
	// workImports is the torch+transformers import cost.
	workImports = cost.Work{Interp: 2.4, Mem: 0.6}
	// workModelInit is loading and initializing the 1.59 GB BART
	// checkpoint in one Python process.
	workModelInit = cost.Work{Interp: 38, Mem: 24}
	// workWorkerInit is a workflow UDF worker initializing its model
	// copy (the checkpoint arrives over the network, not the object
	// store, and initialization overlaps across workers).
	workWorkerInit = cost.Work{Interp: 20, Mem: 13}
	// workPrompt is building one (question, masked answer, paragraph)
	// prompt.
	workPrompt = cost.Work{Interp: 0.55, Mem: 0.05}
	// forwardSecondsPerQA is one cloze through the generator at a
	// single CPU core; paradigms divide it by their permitted torch
	// parallelism.
	forwardSecondsPerQA = 18.0
	// workEval scores one generated answer.
	workEval = cost.Work{Interp: 0.18, Mem: 0.02}
)

// OutputSchema is the answer table layout.
var OutputSchema = relation.MustSchema(
	relation.Field{Name: "passage", Type: relation.String},
	relation.Field{Name: "qa", Type: relation.Int},
	relation.Field{Name: "cloze", Type: relation.String},
	relation.Field{Name: "answer", Type: relation.String},
	relation.Field{Name: "generated", Type: relation.String},
	relation.Field{Name: "em", Type: relation.Bool},
)

// Answer is one generated result.
type Answer struct {
	Passage   string
	QA        int
	Cloze     string
	Gold      string
	Generated string
	EM        bool
}

// Generate answers one cloze — the shared inference kernel both
// paradigms call.
func (t *Task) generate(ctx, cloze, gold string) (string, bool) {
	pred := t.model.Generate(ctx, cloze)
	return pred, genqa.ExactMatch(pred, gold)
}

// AnswersToTable converts answers to the canonical output table,
// sorted for comparison.
func AnswersToTable(as []Answer) *relation.Table {
	tbl := relation.NewTable(OutputSchema)
	for _, a := range as {
		tbl.AppendUnchecked(relation.Tuple{a.Passage, int64(a.QA), a.Cloze, a.Gold, a.Generated, a.EM})
	}
	if err := tbl.SortBy("passage", "qa"); err != nil {
		panic(err) // static schema
	}
	return tbl
}

// quality aggregates EM and F1 over answers.
func quality(as []Answer) map[string]float64 {
	if len(as) == 0 {
		return map[string]float64{}
	}
	em, f1 := 0.0, 0.0
	for _, a := range as {
		if a.EM {
			em++
		}
		f1 += genqa.F1(a.Generated, a.Gold)
	}
	return map[string]float64{
		"exact_match": em / float64(len(as)),
		"f1":          f1 / float64(len(as)),
	}
}

// numQAs counts the cloze questions in the dataset.
func (t *Task) numQAs() int {
	n := 0
	for _, p := range t.passages {
		n += len(p.QAs)
	}
	return n
}

// Run implements core.Task.
func (t *Task) Run(p core.Paradigm, cfg core.RunConfig) (*core.Result, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	switch p {
	case core.Script:
		return t.runScript(cfg)
	case core.Workflow:
		return t.runWorkflow(cfg)
	default:
		return nil, fmt.Errorf("gotta: unknown paradigm %v", p)
	}
}

// loc counts non-blank non-comment lines.
func loc(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		s := strings.TrimSpace(line)
		if s != "" && !strings.HasPrefix(s, "#") {
			n++
		}
	}
	return n
}
