package kge

import (
	"testing"

	"repro/internal/core"
)

func newTask(t *testing.T, products int, v Variant) *Task {
	t.Helper()
	task, err := New(Params{Products: products, Seed: 2, Variant: v})
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Params{Products: 0}); err == nil {
		t.Fatal("expected error for zero products")
	}
	if _, err := New(Params{Products: 10, Users: -1}); err == nil {
		t.Fatal("expected error for negative users")
	}
	if _, err := New(Params{Products: 10, TopK: -1}); err == nil {
		t.Fatal("expected error for negative top-k")
	}
	if _, err := New(Params{Products: 10, Variant: Variant{Ops: 7}}); err == nil {
		t.Fatal("expected error for 7 ops")
	}
}

func TestOracleRecommendsUserCategory(t *testing.T) {
	task := newTask(t, 800, Variant{})
	recs, err := task.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("recommendations = %d", len(recs))
	}
	q := task.quality(recs)
	if q["hit_rate"] < 0.6 {
		t.Fatalf("hit rate = %v, embeddings failed to rank the user's category", q["hit_rate"])
	}
}

func TestOracleSkipsOutOfStock(t *testing.T) {
	task := newTask(t, 500, Variant{})
	recs, err := task.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		p := task.World().ProductByASIN(r.ASIN)
		if p == nil || !p.InStock {
			t.Fatalf("recommended unavailable product %s", r.ASIN)
		}
	}
}

func TestScriptMatchesOracle(t *testing.T) {
	task := newTask(t, 600, Variant{})
	res, err := task.Run(core.Script, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := task.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(RecommendationsToTable(recs)) {
		t.Fatal("script output differs from oracle")
	}
}

func TestAllVariantsMatchOracle(t *testing.T) {
	for ops := 1; ops <= 6; ops++ {
		task := newTask(t, 400, Variant{Ops: ops})
		res, err := task.Run(core.Workflow, core.RunConfig{})
		if err != nil {
			t.Fatalf("ops=%d: %v", ops, err)
		}
		recs, err := task.Oracle()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Output.Equal(RecommendationsToTable(recs)) {
			t.Fatalf("ops=%d: workflow output differs from oracle", ops)
		}
	}
}

func TestScalaVariantMatchesOracle(t *testing.T) {
	task := newTask(t, 400, Variant{Ops: 3, ScalaJoin: true})
	res, err := task.Run(core.Workflow, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := task.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(RecommendationsToTable(recs)) {
		t.Fatal("scala workflow output differs from oracle")
	}
	// The nine-operator decomposition must show in the operator count.
	py := newTask(t, 400, Variant{Ops: 3})
	pyRes, err := py.Run(core.Workflow, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Operators <= pyRes.Operators {
		t.Fatalf("scala variant has %d operators, python %d", res.Operators, pyRes.Operators)
	}
}

func TestScalaJoinRequiresCompatibleLayout(t *testing.T) {
	task := newTask(t, 100, Variant{Ops: 1, ScalaJoin: true})
	if _, err := task.Run(core.Workflow, core.RunConfig{}); err == nil {
		t.Fatal("expected error for Scala join inside a fully fused operator")
	}
}

func TestScalaFasterAtSmallScaleOnly(t *testing.T) {
	// Table I shape: a clear Scala advantage at 6.8k-scale inputs, a
	// vanishing relative advantage at 10x the data.
	small := 3000
	py := newTask(t, small, Variant{Ops: 3})
	sc := newTask(t, small, Variant{Ops: 3, ScalaJoin: true})
	rp, err := py.Run(core.Workflow, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sc.Run(core.Workflow, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	smallGain := (rp.SimSeconds - rs.SimSeconds) / rp.SimSeconds
	if smallGain < 0.1 {
		t.Fatalf("small-scale Scala gain = %.1f%%, want > 10%%", smallGain*100)
	}
	big := 30000
	pyB := newTask(t, big, Variant{Ops: 3})
	scB := newTask(t, big, Variant{Ops: 3, ScalaJoin: true})
	rpb, err := pyB.Run(core.Workflow, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rsb, err := scB.Run(core.Workflow, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	bigGain := (rpb.SimSeconds - rsb.SimSeconds) / rpb.SimSeconds
	if bigGain >= smallGain {
		t.Fatalf("Scala gain should shrink with scale: small %.1f%%, big %.1f%%", smallGain*100, bigGain*100)
	}
	if bigGain > 0.08 {
		t.Fatalf("large-scale Scala gain = %.1f%%, want < 8%%", bigGain*100)
	}
}

func TestScriptBeatsWorkflow(t *testing.T) {
	// Figure 13c shape: the notebook wins KGE at every scale.
	task := newTask(t, 3000, Variant{})
	s, w, err := core.RunBoth(task, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if s.SimSeconds >= w.SimSeconds {
		t.Fatalf("script (%v) should beat workflow (%v) on KGE", s.SimSeconds, w.SimSeconds)
	}
	ratio := w.SimSeconds / s.SimSeconds
	if ratio < 1.1 || ratio > 1.9 {
		t.Fatalf("workflow/script ratio = %v, want in the paper's 1.25-1.5 band", ratio)
	}
}

func TestModularitySweepShape(t *testing.T) {
	// Figure 12b shape: splitting the pipeline speeds it up with
	// diminishing returns; 6 ops is not better than 5.
	times := make([]float64, 7)
	for ops := 1; ops <= 6; ops++ {
		task := newTask(t, 3000, Variant{Ops: ops})
		res, err := task.Run(core.Workflow, core.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		times[ops] = res.SimSeconds
	}
	if times[5] >= times[1] {
		t.Fatalf("5 ops (%v) should beat 1 op (%v)", times[5], times[1])
	}
	if times[3] > times[1]+1e-9 {
		t.Fatalf("3 ops (%v) should not be slower than 1 op (%v)", times[3], times[1])
	}
	// Diminishing returns: the 5->6 step is no longer an improvement.
	if times[6] < times[5]-0.05*times[5] {
		t.Fatalf("6 ops (%v) improved noticeably over 5 (%v)", times[6], times[5])
	}
}

func TestWorkersSpeedUpBothParadigms(t *testing.T) {
	task := newTask(t, 8000, Variant{})
	for _, p := range []core.Paradigm{core.Script, core.Workflow} {
		r1, err := task.Run(p, core.RunConfig{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		r4, err := task.Run(p, core.RunConfig{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if r4.SimSeconds >= r1.SimSeconds {
			t.Fatalf("%s: 4 workers (%v) not faster than 1 (%v)", p, r4.SimSeconds, r1.SimSeconds)
		}
	}
}

func TestParallelWorkflowMatchesOracle(t *testing.T) {
	task := newTask(t, 2000, Variant{})
	res, err := task.Run(core.Workflow, core.RunConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := task.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(RecommendationsToTable(recs)) {
		t.Fatal("parallel workflow output differs from oracle")
	}
}

func TestWorkflowLoCExceedsScript(t *testing.T) {
	// Figure 12a shape: KGE is the one task where the workflow needs
	// slightly more lines than the notebook.
	task := newTask(t, 200, Variant{})
	s, w, err := core.RunBoth(task, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if w.LinesOfCode <= s.LinesOfCode {
		t.Fatalf("paper shape violated: workflow LoC %d <= script LoC %d", w.LinesOfCode, s.LinesOfCode)
	}
}

func TestSpreadsheetMatchesOracle(t *testing.T) {
	task := newTask(t, 300, Variant{})
	res, err := task.RunSpreadsheet(core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := task.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(RecommendationsToTable(recs)) {
		t.Fatalf("spreadsheet output differs from oracle:\n%v\nvs\n%v", res.Output.Rows(), recs)
	}
	if res.SimSeconds <= 0 {
		t.Fatal("no simulated time")
	}
}

func TestSpreadsheetQuadraticScaling(t *testing.T) {
	// The extension finding: the spreadsheet's RANK column makes the
	// task superlinear, unlike the other two paradigms.
	t1, err := newTask(t, 800, Variant{}).RunSpreadsheet(core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := newTask(t, 3200, Variant{}).RunSpreadsheet(core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	growth := t2.SimSeconds / t1.SimSeconds
	if growth < 5 {
		t.Fatalf("4x data grew time only %.1fx; expected superlinear (>5x)", growth)
	}
}
