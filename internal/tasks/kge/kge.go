// Package kge implements Task 4 of the reproduced paper: multi-step
// inference with knowledge-graph embeddings (paper Figure 7).
// Candidate Amazon products are filtered for availability, matched
// with their embeddings from a pre-trained TransE table, scored
// against a target user, ranked, and mapped back to products through a
// reverse lookup.
//
// The task's logic is decomposed into six fuseable stages so the same
// implementation yields every configuration the paper measures: the
// operator-count sweep of Figure 12b, the Python-versus-Scala join of
// Table I, the data-scale sweep of Figure 13c and the worker sweep of
// Figure 14c.
package kge

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/ml/kge"
	"repro/internal/relation"
)

// Params sizes the task.
type Params struct {
	// Products is the candidate count; the paper uses 6.8k and 68k.
	Products int
	// Users in the purchase graph (default 8); the task recommends for
	// user 0.
	Users int
	// TopK is the recommendation count (default 10).
	TopK int
	// Seed drives generation and the pre-trained embeddings.
	Seed uint64
	// Variant selects the workflow configuration.
	Variant Variant
}

// Variant selects the workflow decomposition.
type Variant struct {
	// Ops is the number of workflow operators the pipeline is split
	// into, 1..6 (default 3, the paper's standard layout; Figure 12b
	// sweeps the full range).
	Ops int
	// ScalaJoin replaces the Python operator performing the embedding
	// join with nine native Scala operators implementing the same
	// logic — the Table I comparison.
	ScalaJoin bool
}

// Task is the KGE workload bound to a generated world and pre-trained
// model.
type Task struct {
	params Params
	world  *datagen.ProductWorld
	model  *kge.Model
	user   string
	relVec []float64 // "buys" relation embedding
	userV  []float64 // target user embedding
	// edits carries per-stage revision counters modeling
	// semantics-preserving re-parameterizations (the iterate workload);
	// stage names are the Figure 7 stageNames values.
	edits map[string]int
}

// SetEdits installs per-stage edit revisions (stage names:
// filter-instock, embedding-join, compute-delta, compute-distance,
// rank-topk, reverse-lookup). The map is copied.
func (t *Task) SetEdits(m map[string]int) {
	t.edits = make(map[string]int, len(m))
	for k, v := range m {
		t.edits[k] = v
	}
}

// rev returns the current edit revision of a stage.
func (t *Task) rev(stage string) int { return t.edits[stage] }

// embedding dimensionality of the synthetic pre-trained model.
const embDim = 16

// The registry entry makes the task runnable by name from the CLI and
// the experiment harness; the default size is the paper's full scale.
func init() {
	core.RegisterTask("kge", 6800, func(size int, seed uint64) (core.Task, error) {
		return New(Params{Products: size, Seed: seed})
	})
}

// New generates the world, pre-trains the embedding model and returns
// the task.
func New(p Params) (*Task, error) {
	if p.Products <= 0 {
		return nil, fmt.Errorf("kge: products must be positive, got %d", p.Products)
	}
	if p.Users == 0 {
		p.Users = 8
	}
	if p.Users < 0 {
		return nil, fmt.Errorf("kge: negative users %d", p.Users)
	}
	if p.TopK == 0 {
		p.TopK = 10
	}
	if p.TopK < 0 {
		return nil, fmt.Errorf("kge: negative top-k %d", p.TopK)
	}
	if p.Variant.Ops == 0 {
		// The paper's standard KGE workflow has three Python
		// operators (Table I); Figures 13c/14c measure it.
		p.Variant.Ops = 3
	}
	if p.Variant.Ops < 1 || p.Variant.Ops > 6 {
		return nil, fmt.Errorf("kge: variant ops must be in 1..6, got %d", p.Variant.Ops)
	}
	world := datagen.GenerateProducts(p.Products, p.Users, 0.1, p.Seed)
	model, err := kge.New(world.EntityNames(), []string{"buys"}, embDim, p.Seed+1)
	if err != nil {
		return nil, err
	}
	// "Pre-trained": fit the embeddings to the purchase graph once at
	// task construction; the measured pipelines only load and use it.
	if err := model.Train(world.Purchases, kge.TrainConfig{Epochs: 60, Seed: p.Seed + 2, Negatives: 2}); err != nil {
		return nil, err
	}
	t := &Task{params: p, world: world, model: model, user: world.Users[0]}
	t.relVec, err = model.RelationEmbedding("buys")
	if err != nil {
		return nil, err
	}
	t.userV, err = model.Embedding(t.user)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Name implements core.Task.
func (t *Task) Name() string { return "kge" }

// World exposes the generated product world.
func (t *Task) World() *datagen.ProductWorld { return t.world }

// Model exposes the pre-trained embedding model.
func (t *Task) Model() *kge.Model { return t.model }

// Calibrated cost constants.
var (
	// workFilter is the availability check per candidate (vectorized
	// in pandas; cheap everywhere).
	workFilter = cost.Work{Interp: 0.08e-3, Mem: 0.02e-3}
	// workMerge is attaching one embedding row. The script uses
	// pandas' C merge; the workflow's Python operator pays
	// workOpOverhead on top.
	workMerge = cost.Work{Interp: 0.9e-3, Mem: 0.3e-3}
	// workDelta computes u + r - t for one candidate.
	workDelta = cost.Work{Interp: 4.4e-3, Mem: 0.7e-3}
	// workNorm reduces the delta to a distance for one candidate.
	workNorm = cost.Work{Interp: 5.6e-3, Mem: 0.8e-3}
	// workSortCmp is one comparison of the ranking sort.
	workSortCmp = cost.Work{Interp: 0.016e-3, Mem: 0.004e-3}
	// workReverse is one reverse lookup of a top-k embedding.
	workReverse = cost.Work{Interp: 14e-3, Mem: 5e-3}
	// workScan is reading one candidate row from storage.
	workScan = cost.Work{Interp: 0.35e-3, Mem: 0.1e-3}
	// workOpOverhead is the workflow's per-tuple operator cost —
	// pickling the tuple across the engine/Python bridge and UDF
	// dispatch — added to every Python operator a row passes through.
	// It is the mechanism behind the workflow paradigm's KGE deficit
	// in Figure 13c (the script's pandas merge touches rows in C).
	workOpOverhead = cost.Work{Interp: 4.2e-3, Mem: 0.7e-3}
	// workScalaOpOverhead is the same for native Scala operators.
	workScalaOpOverhead = cost.Work{Interp: 1.0e-3, Mem: 0.15e-3}
	// workTableLoadScript is loading the 375 MB embedding table with
	// pandas/numpy (C readers).
	workTableLoadScript = cost.Work{Interp: 3.2, Mem: 1.6}
	// workTableLoadUDF is building the same table inside a Python
	// operator (dict of arrays, interpreter-bound) — what the Scala
	// join replaces.
	workTableLoadUDF = cost.Work{Interp: 30, Mem: 2.5}
)

// OutputSchema is the recommendation table layout.
var OutputSchema = relation.MustSchema(
	relation.Field{Name: "rank", Type: relation.Int},
	relation.Field{Name: "asin", Type: relation.String},
	relation.Field{Name: "title", Type: relation.String},
	relation.Field{Name: "dist", Type: relation.Float},
)

// Recommendation is one ranked result.
type Recommendation struct {
	Rank  int
	ASIN  string
	Title string
	Dist  float64
}

// --- Shared stage logic -----------------------------------------------

// stage2Embedding attaches a candidate's embedding.
func (t *Task) stage2Embedding(asin string) ([]float64, error) {
	return t.model.Embedding(asin)
}

// stage3Delta computes u + r - t.
func (t *Task) stage3Delta(emb []float64) []float64 {
	d := make([]float64, len(emb))
	for i := range emb {
		d[i] = t.userV[i] + t.relVec[i] - emb[i]
	}
	return d
}

// stage4Dist reduces a delta to its L2 norm.
func stage4Dist(delta []float64) float64 {
	var s float64
	for _, x := range delta {
		s += x * x
	}
	return math.Sqrt(s)
}

// scored is a candidate with its distance, pre-ranking.
type scored struct {
	asin  string
	title string
	emb   []float64
	dist  float64
}

// rankAndReverse sorts scored candidates ascending by distance (ties
// by ASIN), keeps the top K, and reverse-looks-up each embedding.
func (t *Task) rankAndReverse(rows []scored) ([]Recommendation, error) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].dist != rows[j].dist {
			return rows[i].dist < rows[j].dist
		}
		return rows[i].asin < rows[j].asin
	})
	k := t.params.TopK
	if k > len(rows) {
		k = len(rows)
	}
	out := make([]Recommendation, 0, k)
	for i := 0; i < k; i++ {
		entity, err := t.model.ReverseLookup(rows[i].emb)
		if err != nil {
			return nil, err
		}
		if entity != rows[i].asin {
			return nil, fmt.Errorf("kge: reverse lookup of %s returned %s", rows[i].asin, entity)
		}
		p := t.world.ProductByASIN(entity)
		if p == nil {
			return nil, fmt.Errorf("kge: unknown product %s", entity)
		}
		out = append(out, Recommendation{Rank: i + 1, ASIN: entity, Title: p.Title, Dist: rows[i].dist})
	}
	return out, nil
}

// Oracle computes the expected recommendations directly.
func (t *Task) Oracle() ([]Recommendation, error) {
	var rows []scored
	for _, p := range t.world.Products {
		if !p.InStock {
			continue
		}
		emb, err := t.stage2Embedding(p.ASIN)
		if err != nil {
			return nil, err
		}
		rows = append(rows, scored{
			asin: p.ASIN, title: p.Title, emb: emb,
			dist: stage4Dist(t.stage3Delta(emb)),
		})
	}
	return t.rankAndReverse(rows)
}

// RecommendationsToTable converts results to the canonical table.
func RecommendationsToTable(recs []Recommendation) *relation.Table {
	tbl := relation.NewTable(OutputSchema)
	for _, r := range recs {
		tbl.AppendUnchecked(relation.Tuple{int64(r.Rank), r.ASIN, r.Title, r.Dist})
	}
	return tbl
}

// candidateTable renders the candidate products as the pipeline input.
func (t *Task) candidateTable() *relation.Table {
	s := relation.MustSchema(
		relation.Field{Name: "asin", Type: relation.String},
		relation.Field{Name: "title", Type: relation.String},
		relation.Field{Name: "instock", Type: relation.Bool},
	)
	tbl := relation.NewTable(s)
	for _, p := range t.world.Products {
		tbl.AppendUnchecked(relation.Tuple{p.ASIN, p.Title, p.InStock})
	}
	return tbl
}

// Run implements core.Task.
func (t *Task) Run(p core.Paradigm, cfg core.RunConfig) (*core.Result, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	switch p {
	case core.Script:
		return t.runScript(cfg)
	case core.Workflow:
		return t.runWorkflow(cfg)
	default:
		return nil, fmt.Errorf("kge: unknown paradigm %v", p)
	}
}

// loc counts non-blank non-comment lines.
func loc(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		s := strings.TrimSpace(line)
		if s != "" && !strings.HasPrefix(s, "#") {
			n++
		}
	}
	return n
}
