package kge

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/sheet"
)

// This file implements KGE under the *spreadsheet* paradigm — the
// third platform family the paper's introduction names ("scripts,
// GUI-based workflows, and spreadsheets") and leaves to future work.
// The layout mirrors what a spreadsheet user would build:
//
//	row 1:  the user's embedding, one dimension per column (C1..R1)
//	row 2:  the "buys" relation embedding (C2..R2)
//	row 4+: one row per candidate — ASIN (A), in-stock (B), the
//	        embedding dimensions (C..R), a distance formula (S) and a
//	        RANK formula (T)
//
// The distance formula reproduces u + r - t per dimension in the same
// operation order as the other paradigms, so the computed floats are
// bit-identical. The RANK column is the paradigm's scaling wall: each
// RANK reads the whole distance column, making ranking quadratic.

// spreadsheet column indexes of the layout.
const (
	colASIN  = 1 // A
	colStock = 2 // B
	colEmb0  = 3 // C..(C+dim-1)
)

// sheetLayoutRows is the first candidate row (rows 1-2 hold vectors,
// row 3 is a header gap).
const sheetLayoutRows = 4

// distFormula builds the per-candidate distance formula for a row.
func distFormula(row, dim int) string {
	var b strings.Builder
	b.WriteString("=IF(B")
	fmt.Fprintf(&b, "%d, SQRT(", row)
	for d := 0; d < dim; d++ {
		col := sheet.Ref{Col: colEmb0 + d, Row: row}
		u := sheet.Ref{Col: colEmb0 + d, Row: 1}
		r := sheet.Ref{Col: colEmb0 + d, Row: 2}
		if d > 0 {
			b.WriteString(" + ")
		}
		term := fmt.Sprintf("(%s+%s-%s)", u, r, col)
		b.WriteString(term + "*" + term)
	}
	b.WriteString(`), "")`)
	return b.String()
}

// RunSpreadsheet executes KGE on the spreadsheet engine and returns a
// result comparable with the other paradigms. Workers are ignored — a
// spreadsheet is single-threaded, which is part of the comparison.
func (t *Task) RunSpreadsheet(cfg core.RunConfig) (*core.Result, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	s := sheet.New(cfg.Model)
	dim := t.model.Dim

	// Vectors in rows 1 and 2 (pasted, like the candidates).
	entries := map[string]any{}
	for d := 0; d < dim; d++ {
		entries[sheet.Ref{Col: colEmb0 + d, Row: 1}.String()] = t.userV[d]
		entries[sheet.Ref{Col: colEmb0 + d, Row: 2}.String()] = t.relVec[d]
	}
	// Candidate rows: ASIN, stock flag and the embedding table pasted
	// in bulk (the spreadsheet user's import step).
	for i, p := range t.world.Products {
		row := sheetLayoutRows + i
		entries[sheet.Ref{Col: colASIN, Row: row}.String()] = p.ASIN
		entries[sheet.Ref{Col: colStock, Row: row}.String()] = p.InStock
		emb, err := t.stage2Embedding(p.ASIN)
		if err != nil {
			return nil, err
		}
		for d := 0; d < dim; d++ {
			entries[sheet.Ref{Col: colEmb0 + d, Row: row}.String()] = emb[d]
		}
	}
	if err := s.SetBulk(entries); err != nil {
		return nil, err
	}

	// Distance column, then the rank column over it.
	n := len(t.world.Products)
	lastRow := sheetLayoutRows + n - 1
	distCol := sheet.Ref{Col: colEmb0 + dim, Row: 0}.Col
	rankCol := distCol + 1
	for i := 0; i < n; i++ {
		row := sheetLayoutRows + i
		if err := s.SetFormula(sheet.Ref{Col: distCol, Row: row}.String(), distFormula(row, dim)); err != nil {
			return nil, err
		}
	}
	distRange := fmt.Sprintf("%s:%s",
		sheet.Ref{Col: distCol, Row: sheetLayoutRows},
		sheet.Ref{Col: distCol, Row: lastRow})
	for i := 0; i < n; i++ {
		row := sheetLayoutRows + i
		f := fmt.Sprintf(`=IF(B%d, RANK(%s, %s), "")`,
			row, sheet.Ref{Col: distCol, Row: row}, distRange)
		if err := s.SetFormula(sheet.Ref{Col: rankCol, Row: row}.String(), f); err != nil {
			return nil, err
		}
	}

	// The user reads off the top-K rows.
	type hit struct {
		rank int
		rec  Recommendation
	}
	var hits []hit
	for i, p := range t.world.Products {
		row := sheetLayoutRows + i
		rv, err := s.Get(sheet.Ref{Col: rankCol, Row: row}.String())
		if err != nil {
			return nil, err
		}
		if rv.Kind != sheet.Number {
			continue // out of stock
		}
		if int(rv.Num) > t.params.TopK {
			continue
		}
		dv, err := s.Get(sheet.Ref{Col: distCol, Row: row}.String())
		if err != nil {
			return nil, err
		}
		hits = append(hits, hit{
			rank: int(rv.Num),
			rec: Recommendation{
				ASIN: p.ASIN, Title: p.Title, Dist: dv.Num,
			},
		})
	}
	// RANK ties share a number; break them by ASIN like the other
	// paradigms, then truncate to K.
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].rank != hits[j].rank {
			return hits[i].rank < hits[j].rank
		}
		return hits[i].rec.ASIN < hits[j].rec.ASIN
	})
	if len(hits) > t.params.TopK {
		hits = hits[:t.params.TopK]
	}
	recs := make([]Recommendation, len(hits))
	for i, h := range hits {
		recs[i] = h.rec
		recs[i].Rank = i + 1
	}

	return &core.Result{
		Task:          t.Name(),
		Paradigm:      core.Paradigm(-1), // extension paradigm, see ParadigmName
		SimSeconds:    s.Elapsed(),
		LinesOfCode:   2, // the two formula templates the user authors
		Operators:     0,
		ParallelProcs: 1,
		Output:        RecommendationsToTable(recs),
		Quality:       t.quality(recs),
	}, nil
}
