package kge

import "fmt"

// The workflow's Python UDF bodies (the operator dialogs' code) and the
// per-operator configuration, counted by the lines-of-code experiment.
// The paper measured the KGE workflow slightly *larger* than the
// notebook (134 vs 128 lines): the GUI saves little here because most
// steps are custom UDFs whose configuration is itself verbose.

const udfPipeline = `class FilterInStockOp(UDFOperator):
    def process_tuple(self, tuple_, port):
        if tuple_["instock"]:
            yield tuple_

class EmbeddingJoinOp(UDFOperator):
    def open(self):
        self.table = load_embedding_table("kge_embeddings.parquet")

    def process_tuple(self, tuple_, port):
        vec = self.table.get(tuple_["asin"])
        if vec is None:
            raise KeyError(tuple_["asin"])
        tuple_["emb"] = vec
        yield tuple_

class ComputeDeltaOp(UDFOperator):
    def open(self):
        self.user_vec = load_user_vector(USER)
        self.rel_vec = load_relation_vector(RELATION)

    def process_tuple(self, tuple_, port):
        tuple_["delta"] = self.user_vec + self.rel_vec - tuple_["emb"]
        yield tuple_

class ComputeDistanceOp(UDFOperator):
    def process_tuple(self, tuple_, port):
        delta = tuple_.pop("delta")
        tuple_["dist"] = float(np.sqrt((delta * delta).sum()))
        yield tuple_

class ReverseLookupOp(UDFOperator):
    def __init__(self):
        self.rank = 0

    def open(self):
        self.table = load_embedding_table("kge_embeddings.parquet")

    def process_tuple(self, tuple_, port):
        self.rank += 1
        entity = nearest_entity(self.table, tuple_["emb"])
        yield {"rank": self.rank, "asin": entity,
               "title": tuple_["title"], "dist": tuple_["dist"]}
`

// workflowLoC counts the workflow implementation size for the task's
// variant.
func (t *Task) workflowLoC() int {
	total := loc(udfPipeline)
	total += len(t.workflowConfig())
	return total
}

// workflowConfig renders the operator configuration for the variant.
func (t *Task) workflowConfig() []string {
	type opCfg struct{ typ, params, extra string }
	var ops []opCfg
	ops = append(ops, opCfg{"FileScan", `path=candidates.jsonl, format=jsonl`, `schema=[asin, title, instock]`})
	layout := variantStages(t.params.Variant.Ops)
	for _, stages := range layout {
		hasJoin := false
		for _, s := range stages {
			if s == stJoin {
				hasJoin = true
			}
		}
		if hasJoin && t.params.Variant.ScalaJoin {
			scala := []opCfg{
				{"Filter", `condition=instock == true`, `language=scala`},
				{"Projection", `output=[asin, title]`, `language=scala`},
				{"HashPartition", `key=asin, partitions=N`, `language=scala`},
				{"BuildPrepare", `side=embeddings`, `language=scala`},
				{"HashBuild", `table=kge_embeddings.parquet, key=entity`, `language=scala`},
				{"HashProbe", `probe=asin, output=emb`, `language=scala`},
				{"Validate", `non_null=[emb]`, `language=scala`},
				{"RenameColumns", `emb=embedding_vector`, `language=scala`},
				{"Materialize", `format=columnar`, `language=scala`},
			}
			ops = append(ops, scala...)
			continue
		}
		classes := ""
		for i, s := range stages {
			if i > 0 {
				classes += "+"
			}
			classes += stageNames[s]
		}
		ops = append(ops, opCfg{"PythonUDF", "class=" + classes, "workers=N"})
	}
	ops = append(ops, opCfg{"ViewResults", `name=recommendations`, `limit=10`})
	lines := make([]string, 0, len(ops)*3)
	for i, o := range ops {
		lines = append(lines, fmt.Sprintf("operator %d: type=%s", i+1, o.typ))
		lines = append(lines, "  "+o.params)
		lines = append(lines, "  "+o.extra)
	}
	return lines
}
