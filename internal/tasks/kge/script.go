package kge

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/lineage"
	"repro/internal/notebook"
	"repro/internal/objstore"
	"repro/internal/raysim"
	"repro/internal/sim"
)

// Notebook cell sources (pseudo-Python).

const srcImports = `import ray
import numpy as np
import pandas as pd

ray.init(address="auto")
USER, RELATION, TOP_K = "user-000", "buys", 10
`

const srcLoadModel = `emb = pd.read_parquet("kge_embeddings.parquet")  # 375 MB table
user_vec = emb.loc[USER].values
rel_vec = pd.read_parquet("kge_relations.parquet").loc[RELATION].values
emb_ref = ray.put(emb)
`

const srcFilterCandidates = `candidates = pd.read_json("candidates.jsonl", lines=True)
candidates = candidates[candidates.instock]
print(f"{len(candidates)} candidates in stock")
`

const srcScore = `@ray.remote
def score_chunk(emb_ref, chunk):
    emb = ray.get(emb_ref)
    merged = chunk.merge(emb, left_on="asin", right_index=True)
    out = []
    for row in merged.itertuples():
        delta = user_vec + rel_vec - np.asarray(row.embedding)
        dist = float(np.sqrt((delta * delta).sum()))
        out.append((row.asin, row.title, row.embedding, dist))
    return out

chunks = np.array_split(candidates, NUM_CHUNKS)
futures = [score_chunk.remote(emb_ref, c) for c in chunks]
scored = [r for chunk in ray.get(futures) for r in chunk]
`

const srcRank = `scored.sort(key=lambda r: (r[3], r[0]))
top = scored[:TOP_K]
`

const srcReverse = `results = []
for rank, (asin, title, embedding, dist) in enumerate(top, start=1):
    entity = reverse_lookup(emb, embedding)  # nearest-neighbour scan
    assert entity == asin
    results.append({"rank": rank, "asin": entity,
                    "title": title, "dist": dist})
pd.DataFrame(results).to_json("recommendations.jsonl",
                              orient="records", lines=True)
`

// runScript executes KGE as a Ray-scaled notebook: the embedding table
// is put into the object store, candidate chunks are filtered, merged
// (pandas, C speed) and scored in parallel tasks, and the driver ranks
// and reverse-looks-up the winners.
func (t *Task) runScript(cfg core.RunConfig) (*core.Result, error) {
	nb := notebook.New("kge", cfg.Model)
	nb.SetTelemetry(cfg.Telemetry, "script:kge")
	nb.SetProgress(cfg.Progress, "kge")
	ray, err := raysim.NewClusterFor(cfg.Model, cfg.Topology(), cfg.Workers)
	if err != nil {
		return nil, err
	}
	const tableID = objstore.ID("kge-embeddings")

	var rows []scored
	var recs []Recommendation
	parallel := 1
	var recovery sim.Recovery
	var shuffleBytes int64

	nb.Add(&notebook.Cell{Name: "imports", Source: srcImports, Run: func(k *notebook.Kernel) error {
		k.Charge(cost.Work{Interp: 1.0, Mem: 0.3})
		return nil
	}})
	nb.Add(&notebook.Cell{Name: "load_model", Source: srcLoadModel, Run: func(k *notebook.Kernel) error {
		k.Charge(workTableLoadScript)
		secs, err := ray.Store().Put(tableID, t.model.SizeBytes())
		if err != nil {
			return err
		}
		k.ChargeSeconds(secs)
		return nil
	}})
	nb.Add(&notebook.Cell{Name: "filter_candidates", Source: srcFilterCandidates, Run: func(k *notebook.Kernel) error {
		k.Charge(workScan.Scale(float64(len(t.world.Products))))
		k.Charge(workFilter.Scale(float64(len(t.world.Products))))
		return nil
	}})
	nb.Add(&notebook.Cell{Name: "score_chunks", Source: srcScore, Run: func(k *notebook.Kernel) error {
		return k.Call("score_chunk", func() error {
			inStock := make([]int, 0, len(t.world.Products))
			for i, p := range t.world.Products {
				if p.InStock {
					inStock = append(inStock, i)
				}
			}
			nChunks := cfg.Workers * 4
			if nChunks > len(inStock) {
				nChunks = len(inStock)
			}
			if nChunks == 0 {
				return fmt.Errorf("kge: no in-stock candidates")
			}
			job := ray.NewJob()
			if !k.Replaying() {
				// A replayed cell rebuilds the scored rows but must not
				// re-emit spans for work that was served from cache.
				job.SetTelemetry(cfg.Telemetry, "script:kge")
				job.SetProgress(cfg.Progress, "kge")
			}
			job.SetFaults(cfg.Faults)
			for ci := 0; ci < nChunks; ci++ {
				n := 0
				for idx := ci; idx < len(inStock); idx += nChunks {
					p := t.world.Products[inStock[idx]]
					emb, err := t.stage2Embedding(p.ASIN)
					if err != nil {
						return err
					}
					rows = append(rows, scored{
						asin: p.ASIN, title: p.Title, emb: emb,
						dist: stage4Dist(t.stage3Delta(emb)),
					})
					n++
				}
				work := workMerge.Add(workDelta).Add(workNorm).Scale(float64(n))
				job.Submit(raysim.TaskSpec{
					Name: fmt.Sprintf("score-%d", ci),
					Work: work,
					Gets: []objstore.ID{tableID},
				})
			}
			res, err := job.Run()
			if err != nil {
				return err
			}
			k.ChargeSeconds(res.Makespan)
			parallel = res.ParallelTasks
			recovery = res.Recovery
			shuffleBytes = res.ShuffleBytes
			return nil
		})
	}})
	nb.Add(&notebook.Cell{Name: "rank", Source: srcRank, Run: func(k *notebook.Kernel) error {
		n := float64(len(rows))
		if n > 1 {
			k.Charge(workSortCmp.Scale(n * math.Log2(n)))
		}
		return nil
	}})
	nb.Add(&notebook.Cell{Name: "reverse_lookup", Source: srcReverse, Run: func(k *notebook.Kernel) error {
		var err error
		recs, err = t.rankAndReverse(rows)
		if err != nil {
			return err
		}
		k.Charge(workReverse.Scale(float64(len(recs))))
		return nil
	}})

	var linRep *lineage.RunReport
	if cfg.Lineage != nil {
		scope := fmt.Sprintf("script:kge[products=%d,seed=%d,workers=%d]", t.params.Products, t.params.Seed, cfg.Workers)
		linRep, err = lineage.RunNotebook(cfg.Lineage, nb, lineage.NotebookSpec{
			Scope: scope,
			Revs: map[string]int{
				"filter_candidates": t.rev("filter-instock"),
				"score_chunks":      t.rev("embedding-join") + t.rev("compute-delta") + t.rev("compute-distance"),
				"rank":              t.rev("rank-topk"),
				"reverse_lookup":    t.rev("reverse-lookup"),
			},
		}, cfg.Telemetry)
		if err != nil {
			return nil, err
		}
	} else if err := nb.RunAll(); err != nil {
		return nil, err
	}
	return &core.Result{
		Task:          t.Name(),
		Paradigm:      core.Script,
		SimSeconds:    nb.Elapsed(),
		LinesOfCode:   nb.LinesOfCode(),
		Operators:     nb.NumCells(),
		ParallelProcs: parallel,
		Output:        RecommendationsToTable(recs),
		Trace: core.TraceTotals{
			ShuffleBytes: shuffleBytes,
			SpillBytes:   ray.Store().Stats().SpilledBytes,
		},
		Recovery: core.RecoveryTotals{
			Kills:              recovery.Kills,
			LostSeconds:        recovery.LostSeconds,
			DelaySeconds:       recovery.DelaySeconds,
			RestoreSeconds:     recovery.ExtraCostSeconds,
			ReconstructedBytes: ray.Store().Stats().ReconstructedBytes,
		},
		Quality: t.quality(recs),
		Lineage: linRep,
	}, nil
}

// quality computes the in-category hit rate of the recommendations —
// the fraction of top-k products in the target user's preferred
// category.
func (t *Task) quality(recs []Recommendation) map[string]float64 {
	if len(recs) == 0 {
		return map[string]float64{}
	}
	cat := t.world.UserCategory[t.user]
	hits := 0
	for _, r := range recs {
		if p := t.world.ProductByASIN(r.ASIN); p != nil && p.Category == cat {
			hits++
		}
	}
	return map[string]float64{"hit_rate": float64(hits) / float64(len(recs))}
}
