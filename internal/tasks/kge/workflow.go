package kge

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dataflow"
	"repro/internal/ml/kge"
	"repro/internal/planopt"
	"repro/internal/relation"
)

// stage identifies one logical step of the Figure 7 pipeline.
type stage int

const (
	stFilter  stage = iota // drop out-of-stock candidates
	stJoin                 // attach the candidate's embedding
	stDelta                // compute u + r - t
	stNorm                 // reduce the delta to a distance
	stRank                 // sort ascending, keep top K (blocking)
	stReverse              // reverse lookup and output shaping
)

var stageNames = map[stage]string{
	stFilter: "filter-instock", stJoin: "embedding-join", stDelta: "compute-delta",
	stNorm: "compute-distance", stRank: "rank-topk", stReverse: "reverse-lookup",
}

// variantStages returns the fused operator layout for an operator
// count in 1..6 — the Figure 12b sweep.
func variantStages(ops int) [][]stage {
	switch ops {
	case 1:
		return [][]stage{{stFilter, stJoin, stDelta, stNorm, stRank, stReverse}}
	case 2:
		return [][]stage{{stFilter, stJoin, stDelta, stNorm}, {stRank, stReverse}}
	case 3:
		return [][]stage{{stFilter, stJoin}, {stDelta, stNorm}, {stRank, stReverse}}
	case 4:
		return [][]stage{{stFilter}, {stJoin}, {stDelta, stNorm}, {stRank, stReverse}}
	case 5:
		return [][]stage{{stFilter}, {stJoin}, {stDelta}, {stNorm}, {stRank, stReverse}}
	default:
		return [][]stage{{stFilter}, {stJoin}, {stDelta}, {stNorm}, {stRank}, {stReverse}}
	}
}

// Schemas at each stage boundary.
var (
	schemaBase = relation.MustSchema(
		relation.Field{Name: "asin", Type: relation.String},
		relation.Field{Name: "title", Type: relation.String},
		relation.Field{Name: "instock", Type: relation.Bool},
	)
	schemaJoined = relation.MustSchema(
		relation.Field{Name: "asin", Type: relation.String},
		relation.Field{Name: "title", Type: relation.String},
		relation.Field{Name: "instock", Type: relation.Bool},
		relation.Field{Name: "emb", Type: relation.String},
	)
	schemaDelta = relation.MustSchema(
		relation.Field{Name: "asin", Type: relation.String},
		relation.Field{Name: "title", Type: relation.String},
		relation.Field{Name: "emb", Type: relation.String},
		relation.Field{Name: "delta", Type: relation.String},
	)
	schemaScored = relation.MustSchema(
		relation.Field{Name: "asin", Type: relation.String},
		relation.Field{Name: "title", Type: relation.String},
		relation.Field{Name: "emb", Type: relation.String},
		relation.Field{Name: "dist", Type: relation.Float},
	)
)

// schemaAfter returns the row schema after a stage.
func schemaAfter(s stage) *relation.Schema {
	switch s {
	case stFilter:
		return schemaBase
	case stJoin:
		return schemaJoined
	case stDelta:
		return schemaDelta
	case stNorm, stRank:
		return schemaScored
	default:
		return OutputSchema
	}
}

// pipeOp is one workflow operator executing a fused run of stages.
type pipeOp struct {
	task   *Task
	name   string
	lang   cost.Language
	stages []stage
	in     *relation.Schema
	out    *relation.Schema
	// overhead is the per-tuple operator cost (UDF dispatch / tuple
	// wrapping) charged once per row regardless of fused stage count.
	overhead cost.Work
	// tableLoad, when non-zero, is charged once per worker before the
	// first row (the embedding-table build of the join stage).
	tableLoad cost.Work
	// probeOnly restricts a Scala-chain member to pass-through with
	// overhead only (the real join work happens in its probe member).
	probeOnly bool
}

// Desc implements dataflow.Operator.
func (o *pipeOp) Desc() dataflow.Desc {
	blocking := false
	stateless := true
	for _, s := range o.stages {
		if s == stRank {
			blocking = true
		}
		// Rank buffers rows across batches; reverse numbers its output
		// with a per-instance counter. Everything else is row-local.
		if s == stRank || s == stReverse {
			stateless = false
		}
	}
	return dataflow.Desc{
		Name:          o.name,
		Language:      o.lang,
		Ports:         1,
		BlockingPorts: []bool{blocking},
		Stateless:     stateless,
	}
}

// OutputSchema implements dataflow.Operator.
func (o *pipeOp) OutputSchema(in []*relation.Schema) (*relation.Schema, error) {
	if len(in) != 1 || !in[0].Equal(o.in) {
		return nil, fmt.Errorf("kge: %s: unexpected input schema", o.name)
	}
	return o.out, nil
}

// NewInstance implements dataflow.Operator.
func (o *pipeOp) NewInstance() dataflow.Instance {
	return &pipeInstance{op: o}
}

type pipeInstance struct {
	op     *pipeOp
	buffer []scored // only for rank stages
	rankN  int      // rows seen by rank (for sort cost)
	emit   int      // output counter for reverse-stage ranks
}

// Open charges the embedding-table build (when this operator joins):
// every worker loads its own copy before the first tuple, gating the
// stream — the behaviour the Table I Scala swap attacks.
func (pi *pipeInstance) Open(ec dataflow.ExecCtx) error {
	if pi.op.tableLoad != (cost.Work{}) {
		ec.AddWork(pi.op.tableLoad)
	}
	return nil
}

// hasStage reports whether the op runs stage s.
func (pi *pipeInstance) hasStage(s stage) bool {
	for _, st := range pi.op.stages {
		if st == s {
			return true
		}
	}
	return false
}

func (pi *pipeInstance) Process(ec dataflow.ExecCtx, _ int, rows []relation.Tuple) ([]relation.Tuple, error) {
	ec.AddWork(pi.op.overhead.Scale(float64(len(rows))))
	t := pi.op.task
	var out []relation.Tuple
	for _, r := range rows {
		row := r
		keep := true
		for _, s := range pi.op.stages {
			if !keep {
				break
			}
			switch s {
			case stFilter:
				ec.AddWork(workFilter)
				keep = row.MustBool(2)
			case stJoin:
				if pi.op.probeOnly {
					break
				}
				ec.AddWork(workMerge)
				emb, err := t.stage2Embedding(row.MustStr(0))
				if err != nil {
					return nil, err
				}
				row = relation.Tuple{row[0], row[1], row[2], kge.EncodeVec(emb)}
			case stDelta:
				ec.AddWork(workDelta)
				emb, err := kge.DecodeVec(row.MustStr(3))
				if err != nil {
					return nil, err
				}
				row = relation.Tuple{row[0], row[1], row[3], kge.EncodeVec(t.stage3Delta(emb))}
			case stNorm:
				ec.AddWork(workNorm)
				delta, err := kge.DecodeVec(row.MustStr(3))
				if err != nil {
					return nil, err
				}
				row = relation.Tuple{row[0], row[1], row[2], stage4Dist(delta)}
			case stRank:
				emb, err := kge.DecodeVec(row.MustStr(2))
				if err != nil {
					return nil, err
				}
				pi.buffer = append(pi.buffer, scored{
					asin: row.MustStr(0), title: row.MustStr(1),
					emb: emb, dist: row.MustFloat(3),
				})
				pi.rankN++
				keep = false // emitted at EndPort
			case stReverse:
				ec.AddWork(workReverse)
				emb, err := kge.DecodeVec(row.MustStr(2))
				if err != nil {
					return nil, err
				}
				entity, err := t.model.ReverseLookup(emb)
				if err != nil {
					return nil, err
				}
				pi.emit++
				row = relation.Tuple{int64(pi.emit), entity, row[1], row.MustFloat(3)}
			}
		}
		if keep {
			out = append(out, row)
		}
	}
	return out, nil
}

func (pi *pipeInstance) EndPort(ec dataflow.ExecCtx, _ int) ([]relation.Tuple, error) {
	if !pi.hasStage(stRank) {
		return nil, nil
	}
	n := float64(pi.rankN)
	if n > 1 {
		ec.AddWork(workSortCmp.Scale(n * math.Log2(n)))
	}
	sort.Slice(pi.buffer, func(i, j int) bool {
		if pi.buffer[i].dist != pi.buffer[j].dist {
			return pi.buffer[i].dist < pi.buffer[j].dist
		}
		return pi.buffer[i].asin < pi.buffer[j].asin
	})
	k := pi.op.task.params.TopK
	if k > len(pi.buffer) {
		k = len(pi.buffer)
	}
	var out []relation.Tuple
	for i := 0; i < k; i++ {
		s := pi.buffer[i]
		if pi.hasStage(stReverse) {
			ec.AddWork(workReverse)
			entity, err := pi.op.task.model.ReverseLookup(s.emb)
			if err != nil {
				return nil, err
			}
			out = append(out, relation.Tuple{int64(i + 1), entity, s.title, s.dist})
			continue
		}
		out = append(out, relation.Tuple{s.asin, s.title, kge.EncodeVec(s.emb), s.dist})
	}
	return out, nil
}

func (pi *pipeInstance) Close(dataflow.ExecCtx) error { return nil }

// scalaJoinChain builds the nine native Scala operators that replace
// the Python join operator in the Table I comparison. The probe member
// performs the actual join; the others are the engine's real
// decomposition (projection, partitioning, build, validation, ...)
// each adding its per-tuple pass.
func (t *Task) scalaJoinChain(withFilter bool) []*pipeOp {
	mk := func(name string, stages []stage, probeOnly bool) *pipeOp {
		in := schemaBase
		out := schemaBase
		for _, s := range stages {
			if s == stJoin && !probeOnly {
				out = schemaJoined
			}
		}
		return &pipeOp{
			task: t, name: "scala-" + name, lang: cost.Scala,
			stages: stages, in: in, out: out,
			overhead: workScalaOpOverhead, probeOnly: probeOnly,
		}
	}
	var chain []*pipeOp
	if withFilter {
		chain = append(chain, mk("filter", []stage{stFilter}, false))
	}
	passNames := []string{"project-keys", "partition", "build-prepare"}
	for _, n := range passNames {
		chain = append(chain, mk(n, nil, false))
	}
	// The build member loads the 375 MB table (Scala-speed) and the
	// probe member attaches embeddings.
	build := mk("hash-build", nil, false)
	build.tableLoad = workTableLoadUDF
	chain = append(chain, build)
	probe := mk("hash-probe", []stage{stJoin}, false)
	probe.in = schemaBase
	probe.out = schemaJoined
	chain = append(chain, probe)
	tailNames := []string{"validate", "rename-columns", "materialize"}
	for _, n := range tailNames {
		op := mk(n, nil, false)
		op.in = schemaJoined
		op.out = schemaJoined
		chain = append(chain, op)
	}
	return chain
}

// buildWorkflow assembles the KGE workflow for the task's variant.
func (t *Task) buildWorkflow(workers int) (*dataflow.Workflow, error) {
	w := dataflow.New("kge")
	src := w.Source("candidates", t.candidateTable(), dataflow.WithScanWork(workScan))
	prev := src

	layout := variantStages(t.params.Variant.Ops)
	// A fused operator's lineage signature sums its member stages' edit
	// revisions: editing any fused-in stage re-parameterizes the whole
	// operator, which is exactly the reuse granularity the GUI exposes.
	sigFor := func(stages []stage) dataflow.NodeOpt {
		sum := 0
		for _, s := range stages {
			sum += t.rev(stageNames[s])
		}
		return dataflow.WithSignature(fmt.Sprintf("rev=%d", sum))
	}
	in := schemaBase
	for _, stages := range layout {
		last := stages[len(stages)-1]
		out := schemaAfter(last)
		hasJoin := false
		hasRank := false
		hasReverse := false
		for _, s := range stages {
			switch s {
			case stJoin:
				hasJoin = true
			case stRank:
				hasRank = true
			case stReverse:
				hasReverse = true
			}
		}

		if hasJoin && t.params.Variant.ScalaJoin {
			// Replace this operator with the nine-op Scala chain; any
			// other fused stages in it must be Python-only, which the
			// paper's three-operator layout guarantees (filter+join).
			for _, s := range stages {
				if s != stFilter && s != stJoin {
					return nil, fmt.Errorf("kge: Scala join variant requires a filter+join operator, got extra stage %v", s)
				}
			}
			withFilter := len(stages) > 1
			for _, op := range t.scalaJoinChain(withFilter) {
				id := w.Op(op, dataflow.WithParallelism(workers), sigFor(stages))
				w.Connect(prev, id, 0, dataflow.RoundRobin())
				prev = id
			}
			in = schemaJoined
			continue
		}

		name := stageNames[stages[0]]
		if len(stages) > 1 {
			name = "kge-" + stageNames[stages[0]] + "+" + fmt.Sprint(len(stages)-1)
		}
		op := &pipeOp{
			task: t, name: name, lang: cost.Python,
			stages: stages, in: in, out: out, overhead: workOpOverhead,
		}
		if hasJoin {
			op.tableLoad = workTableLoadUDF
		}
		par := workers
		if hasRank || hasReverse {
			par = 1 // global sort and ordered output
		}
		id := w.Op(op, dataflow.WithParallelism(par), sigFor(stages))
		w.Connect(prev, id, 0, dataflow.RoundRobin())
		prev = id
		in = out
	}

	sink := w.Sink("recommendations")
	w.Connect(prev, sink, 0, dataflow.RoundRobin())
	return w, nil
}

// runWorkflow executes KGE as a dataflow workflow.
func (t *Task) runWorkflow(cfg core.RunConfig) (*core.Result, error) {
	w, err := t.buildWorkflow(cfg.Workers)
	if err != nil {
		return nil, err
	}
	if cfg.Optimize {
		if _, err := planopt.Optimize(w, planopt.ConfigOptions(cfg)); err != nil {
			return nil, fmt.Errorf("kge: optimize: %w", err)
		}
	}
	res, err := w.Run(context.Background(), dataflow.Config{
		Model: cfg.Model, Cluster: cfg.Cluster(), Shard: cfg.Topology(), Telemetry: cfg.Telemetry, Faults: cfg.Faults,
		Progress: cfg.Progress,
		Lineage:  cfg.Lineage,
		LineageScope: fmt.Sprintf("workflow:kge[products=%d,seed=%d,workers=%d,ops=%d,scala=%t]",
			t.params.Products, t.params.Seed, cfg.Workers, t.params.Variant.Ops, t.params.Variant.ScalaJoin),
	})
	if err != nil {
		return nil, err
	}
	out := res.Tables["recommendations"]
	recs := make([]Recommendation, 0, out.Len())
	for _, r := range out.Rows() {
		recs = append(recs, Recommendation{
			Rank: int(r.MustInt(0)), ASIN: r.MustStr(1), Title: r.MustStr(2), Dist: r.MustFloat(3),
		})
	}
	return &core.Result{
		Task:          t.Name(),
		Paradigm:      core.Workflow,
		SimSeconds:    res.SimSeconds,
		Trace:         res.Trace.Totals(),
		Recovery:      res.Recovery.Totals(),
		LinesOfCode:   t.workflowLoC(),
		Operators:     w.NumOperators(),
		ParallelProcs: cfg.Workers,
		Output:        RecommendationsToTable(recs),
		Quality:       t.quality(recs),
		Lineage:       res.Lineage,
	}, nil
}

// WorkflowPlan assembles the workflow DAG without executing it, so
// plan-time validation (repro -validate) can inspect the graph.
func (t *Task) WorkflowPlan(workers int) (*dataflow.Workflow, error) {
	return t.buildWorkflow(workers)
}
