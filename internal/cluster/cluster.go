// Package cluster describes the simulated compute cluster the
// experiments run on. It mirrors the paper's setup: two four-node
// Google Cloud clusters, each node with 8 vCPUs, 64 GB RAM and a
// 100 GB HDD, one extra node hosting the controller (Texera) or the
// Ray head.
package cluster

import "fmt"

// Node is one virtual machine.
type Node struct {
	Name     string
	VCPUs    int
	RAMBytes int64
}

// Cluster is a set of worker nodes plus a head/controller node.
type Cluster struct {
	Head    Node
	Workers []Node
}

// GB is a convenience constant for sizing nodes.
const GB = int64(1) << 30

// Node shape shared by every simulated cluster: the paper's worker VMs
// (n2-standard-8 class) and the sharded tier's nodes are the same
// machine, so scaling out means more nodes, never bigger ones.
const (
	// NodeVCPUs is the vCPU count of one worker node.
	NodeVCPUs = 8
	// NodeRAM is the RAM of one worker node.
	NodeRAM = 64 * GB
	// PaperWorkerNodes is the paper cluster's worker-node count.
	PaperWorkerNodes = 4
	// PaperWorkerVCPUs is the paper cluster's total worker vCPUs — the
	// parallelism ceiling for single-cluster (nodes <= 1) runs, reused
	// by core.Normalize and the service scheduler's default budget.
	PaperWorkerVCPUs = PaperWorkerNodes * NodeVCPUs
)

// Paper returns the cluster used throughout the paper's evaluation:
// four workers with 8 vCPUs and 64 GB each, plus a head node.
func Paper() *Cluster {
	return Sized(PaperWorkerNodes)
}

// Sized returns a cluster of n paper-shaped worker nodes (8 vCPUs,
// 64 GB each) plus a head node — the multi-node tier's topology
// constructor. Sized(PaperWorkerNodes) is exactly Paper().
func Sized(n int) *Cluster {
	if n < 1 {
		n = 1
	}
	c := &Cluster{Head: Node{Name: "head", VCPUs: NodeVCPUs, RAMBytes: NodeRAM}}
	for i := 0; i < n; i++ {
		c.Workers = append(c.Workers, Node{
			Name:     fmt.Sprintf("worker-%d", i+1),
			VCPUs:    NodeVCPUs,
			RAMBytes: NodeRAM,
		})
	}
	return c
}

// TotalWorkerCPUs returns the number of vCPUs across worker nodes.
func (c *Cluster) TotalWorkerCPUs() int {
	n := 0
	for _, w := range c.Workers {
		n += w.VCPUs
	}
	return n
}

// TotalWorkerRAM returns the bytes of RAM across worker nodes.
func (c *Cluster) TotalWorkerRAM() int64 {
	var n int64
	for _, w := range c.Workers {
		n += w.RAMBytes
	}
	return n
}

// Validate reports an error for empty or malformed clusters.
func (c *Cluster) Validate() error {
	if len(c.Workers) == 0 {
		return fmt.Errorf("cluster: no worker nodes")
	}
	all := append([]Node{c.Head}, c.Workers...)
	seen := make(map[string]bool, len(all))
	for _, n := range all {
		if n.Name == "" {
			return fmt.Errorf("cluster: node with empty name")
		}
		if seen[n.Name] {
			return fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
		if n.VCPUs <= 0 {
			return fmt.Errorf("cluster: node %q has %d vCPUs", n.Name, n.VCPUs)
		}
		if n.RAMBytes <= 0 {
			return fmt.Errorf("cluster: node %q has %d bytes of RAM", n.Name, n.RAMBytes)
		}
	}
	return nil
}
