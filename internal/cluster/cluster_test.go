package cluster

import "testing"

func TestPaperCluster(t *testing.T) {
	c := Paper()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Workers) != 4 {
		t.Fatalf("workers = %d, want 4", len(c.Workers))
	}
	if c.TotalWorkerCPUs() != 32 {
		t.Fatalf("total vCPUs = %d, want 32", c.TotalWorkerCPUs())
	}
	if c.TotalWorkerRAM() != 4*64*GB {
		t.Fatalf("total RAM = %d", c.TotalWorkerRAM())
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		c    Cluster
	}{
		{"no workers", Cluster{Head: Node{Name: "h", VCPUs: 1, RAMBytes: 1}}},
		{"empty name", Cluster{Head: Node{Name: "h", VCPUs: 1, RAMBytes: 1}, Workers: []Node{{Name: "", VCPUs: 1, RAMBytes: 1}}}},
		{"duplicate name", Cluster{Head: Node{Name: "h", VCPUs: 1, RAMBytes: 1}, Workers: []Node{{Name: "h", VCPUs: 1, RAMBytes: 1}}}},
		{"zero cpus", Cluster{Head: Node{Name: "h", VCPUs: 1, RAMBytes: 1}, Workers: []Node{{Name: "w", VCPUs: 0, RAMBytes: 1}}}},
		{"zero ram", Cluster{Head: Node{Name: "h", VCPUs: 1, RAMBytes: 1}, Workers: []Node{{Name: "w", VCPUs: 1, RAMBytes: 0}}}},
	}
	for _, tc := range cases {
		if err := tc.c.Validate(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}
