package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/planopt"
)

// PlanProvider is the capability a task exposes for plan-time
// validation: build the workflow DAG it would execute, without
// executing it. All four paper tasks implement it.
type PlanProvider interface {
	WorkflowPlan(workers int) (*dataflow.Workflow, error)
}

// PlanReport is one task's static plan-validation result.
type PlanReport struct {
	Task      string          `json:"task"`
	Workers   int             `json:"workers"`
	Operators int             `json:"operators"`
	Edges     int             `json:"edges"`
	Diags     []dataflow.Diag `json:"diags,omitempty"`
	// Rewrites holds the optimizer's OPT0xx decision diagnostics when
	// the config runs with Optimize set; they explain the plan, they
	// are not failures. Applied counts the rewrites actually made.
	Rewrites []dataflow.Diag `json:"rewrites,omitempty"`
	Applied  int             `json:"applied,omitempty"`
}

// ValidatePlans builds every registered task's workflow DAG at the
// config's scale and runs the static plan validator over each — the
// editor-side composition check Texera performs before a workflow may
// execute, applied to all four reproduction tasks at once. Workers is
// forced above one so the partitioning and checkpoint rules are
// exercised. The error return covers harness problems (a task that
// cannot be built); plan problems land in the per-task Diags.
func ValidatePlans(cfg Config) ([]PlanReport, error) {
	cfg = cfg.normalize()
	workers := cfg.Workers
	if workers < 2 {
		workers = 2
	}
	var out []PlanReport
	for _, name := range core.TaskNames() {
		task, err := traceTask(name, cfg)
		if err != nil {
			return nil, err
		}
		p, ok := task.(PlanProvider)
		if !ok {
			return nil, fmt.Errorf("experiments: task %q does not expose a workflow plan", name)
		}
		w, err := p.WorkflowPlan(workers)
		if err != nil {
			return nil, fmt.Errorf("experiments: task %q: building plan: %w", name, err)
		}
		rep := PlanReport{
			Task:      name,
			Workers:   workers,
			Operators: w.NumOperators(),
			Edges:     w.NumEdges(),
			Diags:     dataflow.Validate(w),
		}
		if cfg.RunConfig.Optimize && len(rep.Diags) == 0 {
			// Static optimize of the plan being validated: the rewrites
			// and their explanations are part of the plan inspection.
			opt, err := planopt.Optimize(w, planopt.ConfigOptions(cfg.RunConfig))
			if err != nil {
				return nil, fmt.Errorf("experiments: task %q: optimizing plan: %w", name, err)
			}
			rep.Rewrites = opt.Diags
			rep.Applied = opt.Applied
			rep.Operators = w.NumOperators()
			rep.Edges = w.NumEdges()
		}
		out = append(out, rep)
	}
	return out, nil
}
