package experiments

import "testing"

func TestAblationTorchPin(t *testing.T) {
	rows, err := AblationTorchPin(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	pinned, unpinned := rows[0].Seconds, rows[1].Seconds
	if unpinned >= pinned {
		t.Fatalf("removing the torch pin should help: pinned=%v unpinned=%v", pinned, unpinned)
	}
	// The pin is a major mechanism: unpinning should cut a large chunk
	// of the script's GOTTA time.
	if (pinned-unpinned)/pinned < 0.3 {
		t.Fatalf("pin accounts for only %.0f%%, expected a dominant effect", 100*(pinned-unpinned)/pinned)
	}
}

func TestAblationObjectStore(t *testing.T) {
	rows, err := AblationObjectStore(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	base, slow, free := rows[0].Seconds, rows[1].Seconds, rows[2].Seconds
	if slow <= base {
		t.Fatalf("a slower store should hurt: base=%v slow=%v", base, slow)
	}
	if free >= base {
		t.Fatalf("a near-free store should help: base=%v free=%v", base, free)
	}
}

func TestAblationSerde(t *testing.T) {
	rows, err := AblationSerde(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	slow, base, free := rows[0].Seconds, rows[1].Seconds, rows[2].Seconds
	// Pipelining overlaps the per-edge serde across stages, so even a
	// 10x slowdown shows up damped — but it must still be a clearly
	// visible hit (>25%).
	if (slow-base)/base < 0.25 {
		t.Fatalf("10x slower serde should visibly hurt a data-heavy chain: slow=%v base=%v", slow, base)
	}
	if free > base {
		t.Fatalf("free serde cannot be slower than baseline: free=%v base=%v", free, base)
	}
}

func TestAblationBatching(t *testing.T) {
	rows, err := AblationBatching(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	auto, whole := rows[0].Seconds, rows[1].Seconds
	if whole <= auto {
		t.Fatalf("whole-table batching should destroy pipelining: auto=%v whole=%v", auto, whole)
	}
}

func TestAutoTuneDICE(t *testing.T) {
	out, err := AutoTuneDICE(quick)
	if err != nil {
		t.Fatal(err)
	}
	if out.TunedSeconds >= out.BaselineSeconds {
		t.Fatalf("tuning did not help: %v vs %v", out.TunedSeconds, out.BaselineSeconds)
	}
	if out.CoresUsed > 16 {
		t.Fatalf("budget exceeded: %d", out.CoresUsed)
	}
	if len(out.Rows) == 0 {
		t.Fatal("no operator recommendations")
	}
	grew := false
	for _, r := range out.Rows {
		if r.Workers < 1 {
			t.Fatalf("operator %s got %d workers", r.Operator, r.Workers)
		}
		if r.Workers > 1 {
			grew = true
		}
	}
	if !grew {
		t.Fatal("tuner never scaled any operator out")
	}
}

func TestExtSpreadsheetKGE(t *testing.T) {
	// A gentler shrink than the rest of the suite: the quadratic RANK
	// term this experiment demonstrates needs a few hundred rows to
	// rise above the fixed startup costs.
	pts, err := ExtSpreadsheetKGE(Config{Scale: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if !p.AllAgree {
			t.Fatalf("paradigms disagree at %d", p.Size)
		}
	}
	// Superlinear spreadsheet growth vs. roughly linear script growth.
	first, last := pts[0], pts[len(pts)-1]
	dataGrowth := float64(last.Size) / float64(first.Size)
	sheetGrowth := last.Spreadsheet / first.Spreadsheet
	scriptGrowth := last.Script / first.Script
	if sheetGrowth <= scriptGrowth {
		t.Fatalf("spreadsheet growth %.1fx should exceed script growth %.1fx over %.0fx data",
			sheetGrowth, scriptGrowth, dataGrowth)
	}
}
