package experiments

import "testing"

// quick is a reduced-size config so the whole suite runs in seconds.
var quick = Config{Scale: 20, Seed: 1}

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	small := rows[0]
	if !small.OutputsAgree {
		t.Fatal("Python and Scala variants disagree")
	}
	if small.ScalaSecs >= small.PythonSecs {
		t.Fatalf("Scala (%v) should beat Python (%v) at small scale", small.ScalaSecs, small.PythonSecs)
	}
	big := rows[1]
	smallGain := (small.PythonSecs - small.ScalaSecs) / small.PythonSecs
	bigGain := (big.PythonSecs - big.ScalaSecs) / big.PythonSecs
	if bigGain >= smallGain {
		t.Fatalf("Scala gain should shrink with scale: %v -> %v", smallGain, bigGain)
	}
}

func TestFig12aShape(t *testing.T) {
	rows, err := Fig12a(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byTask := map[string]LoCRow{}
	for _, r := range rows {
		byTask[r.Task] = r
		if r.ScriptLoC <= 0 || r.WorkflowLoC <= 0 {
			t.Fatalf("degenerate LoC for %s: %+v", r.Task, r)
		}
	}
	// DICE is by far the largest implementation.
	for _, other := range []string{"wef", "gotta", "kge"} {
		if byTask["dice"].ScriptLoC <= byTask[other].ScriptLoC {
			t.Fatalf("dice script (%d) should exceed %s (%d)", byTask["dice"].ScriptLoC, other, byTask[other].ScriptLoC)
		}
	}
	// Workflow is smaller except for KGE.
	for _, task := range []string{"dice", "wef", "gotta"} {
		if byTask[task].WorkflowLoC >= byTask[task].ScriptLoC {
			t.Fatalf("%s workflow LoC should be below script", task)
		}
	}
	if byTask["kge"].WorkflowLoC <= byTask["kge"].ScriptLoC {
		t.Fatal("kge workflow LoC should exceed script (paper shape)")
	}
}

func TestFig12bShape(t *testing.T) {
	res, err := Fig12b(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Points[4].Seconds >= res.Points[0].Seconds {
		t.Fatal("5 operators should beat 1")
	}
	if res.ScriptRef <= 0 {
		t.Fatal("script reference missing")
	}
	if res.ScriptRef >= res.Points[0].Seconds {
		t.Fatal("script should beat the single-operator workflow on KGE")
	}
}

func TestFig13Shapes(t *testing.T) {
	dicePts, err := Fig13aDICE(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range dicePts {
		if !p.OutputsAgree {
			t.Fatalf("DICE paradigms disagree at %d", p.Size)
		}
		if p.Workflow >= p.Script {
			t.Fatalf("DICE workflow (%v) should beat script (%v) at %d", p.Workflow, p.Script, p.Size)
		}
	}
	kgePts, err := Fig13cKGE(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range kgePts {
		if p.Script >= p.Workflow {
			t.Fatalf("KGE script (%v) should beat workflow (%v) at %d", p.Script, p.Workflow, p.Size)
		}
	}
}

func TestFig13bAndDShapes(t *testing.T) {
	wefPts, err := Fig13bWEF(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range wefPts {
		gap := (p.Script - p.Workflow) / p.Script
		if gap < 0 || gap > 0.1 {
			t.Fatalf("WEF paradigms should be near-equal, gap %v at %d", gap, p.Size)
		}
	}
	gottaPts, err := Fig13dGOTTA(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range gottaPts {
		if p.Script/p.Workflow < 1.5 {
			t.Fatalf("GOTTA workflow should win by 1.5x+, got %v at %d", p.Script/p.Workflow, p.Size)
		}
	}
}

func TestFig14Shapes(t *testing.T) {
	for name, fn := range map[string]func(Config) ([]WorkerPoint, error){
		"dice": Fig14aDICE, "gotta": Fig14bGOTTA, "kge": Fig14cKGE,
	} {
		pts, err := fn(quick)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(pts) != 3 {
			t.Fatalf("%s: points = %d", name, len(pts))
		}
		if pts[2].Script >= pts[0].Script {
			t.Fatalf("%s: script should speed up with workers", name)
		}
		if pts[2].Workflow >= pts[0].Workflow {
			t.Fatalf("%s: workflow should speed up with workers", name)
		}
	}
}

func TestDescribe(t *testing.T) {
	for _, id := range IDs {
		d, err := Describe(id)
		if err != nil || d == "" {
			t.Fatalf("Describe(%s) = %q, %v", id, d, err)
		}
	}
	if _, err := Describe("nope"); err == nil {
		t.Fatal("expected error for unknown id")
	}
}
