package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dataflow"
	"repro/internal/relation"
	"repro/internal/tasks/dice"
	"repro/internal/tasks/gotta"
	"repro/internal/tasks/kge"
)

// Ablations isolate the cost-model mechanisms DESIGN.md credits for
// each headline result, by re-running an experiment with one mechanism
// switched off or swept. They answer "is the reproduced gap really
// caused by what the paper says causes it?".

// AblationRow is one configuration's measurement.
type AblationRow struct {
	Config  string
	Seconds float64
	Note    string
}

// AblationTorchPin re-runs GOTTA's script paradigm with and without
// Ray's num_cpus=1 torch pinning — the mechanism the paper blames for
// most of the script's Figure 13d deficit.
func AblationTorchPin(cfg Config) ([]AblationRow, error) {
	cfg = cfg.normalize()
	task, err := gotta.New(gotta.Params{Paragraphs: 4, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	var out []AblationRow
	for _, c := range []struct {
		name  string
		cores int
		note  string
	}{
		{"pinned (num_cpus=1)", 1, "the paper's measured configuration"},
		{"unpinned (8 cores)", 8, "counterfactual: Ray without the pin"},
	} {
		m := cost.Default()
		m.TorchCoresRay = c.cores
		rc := cfg.RunConfig
		rc.Model = m
		res, err := task.Run(core.Script, rc)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationRow{Config: c.name, Seconds: res.SimSeconds, Note: c.note})
	}
	return out, nil
}

// AblationObjectStore re-runs GOTTA's script paradigm with the object
// store's transfer rates swept, isolating the model-fetch cost from
// the torch pin.
func AblationObjectStore(cfg Config) ([]AblationRow, error) {
	cfg = cfg.normalize()
	task, err := gotta.New(gotta.Params{Paragraphs: 4, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	var out []AblationRow
	for _, c := range []struct {
		name string
		mult float64
		note string
	}{
		{"baseline store", 1, "calibrated plasma rates"},
		{"4x slower store", 0.25, "e.g. contended shared memory"},
		{"near-free store", 100, "counterfactual: zero-copy fetches"},
	} {
		m := cost.Default()
		m.ObjectStorePutBytesPerSec *= c.mult
		m.ObjectStoreGetBytesPerSec *= c.mult
		rc := cfg.RunConfig
		rc.Model = m
		res, err := task.Run(core.Script, rc)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationRow{Config: c.name, Seconds: res.SimSeconds, Note: c.note})
	}
	return out, nil
}

// AblationSerde sweeps the workflow engine's serialization throughput
// on a data-heavy, compute-light document chain — Aspect #4's claim
// that serde at operator boundaries is the workflow paradigm's
// intrinsic overhead. The four tasks keep serde hidden behind CPU work
// and pipelining (a finding in itself, noted in EXPERIMENTS.md), so
// the mechanism is isolated on a dedicated workflow that shuffles
// ~2 KB documents through four pass-through operators.
func AblationSerde(cfg Config) ([]AblationRow, error) {
	cfg = cfg.normalize()
	rows := cfg.scaled(20000)
	// Below a few thousand documents the fixed submission/startup
	// costs drown the mechanism being isolated; keep a floor.
	if rows < 5000 {
		rows = 5000
	}
	var out []AblationRow
	for _, c := range []struct {
		name string
		mult float64
		note string
	}{
		{"serde 10x slower", 0.1, "pickle-grade serialization"},
		{"baseline serde", 1, "calibrated Arrow-grade rate"},
		{"near-free serde", 1000, "counterfactual: shared-memory tuples"},
	} {
		m := cost.Default()
		m.SerdeBytesPerSec *= c.mult
		secs, err := runDocumentChain(rows, m)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationRow{Config: c.name, Seconds: secs, Note: c.note})
	}
	return out, nil
}

// runDocumentChain pushes rows ~2 KB documents through a four-operator
// pass-through workflow and returns the simulated time.
func runDocumentChain(rows int, m *cost.Model) (float64, error) {
	schema := relation.MustSchema(
		relation.Field{Name: "id", Type: relation.Int},
		relation.Field{Name: "doc", Type: relation.String},
	)
	tbl := relation.NewTable(schema)
	blob := strings.Repeat("the quick brown fox jumps over the lazy dog. ", 44) // ~2 KB
	for i := 0; i < rows; i++ {
		tbl.AppendUnchecked(relation.Tuple{int64(i), blob})
	}
	w := dataflow.New("document-chain")
	prev := w.Source("docs", tbl)
	for i := 0; i < 4; i++ {
		op := dataflow.NewMap(fmt.Sprintf("pass-%d", i), cost.Python, schema,
			func(r relation.Tuple) ([]relation.Tuple, error) {
				return []relation.Tuple{r}, nil
			})
		op.Work = cost.Work{Interp: 0.02e-3} // compute-light
		id := w.Op(op)
		w.Connect(prev, id, 0, dataflow.RoundRobin())
		prev = id
	}
	sink := w.Sink("out")
	w.Connect(prev, sink, 0, dataflow.RoundRobin())
	res, err := w.Run(context.Background(), dataflow.Config{Model: m})
	if err != nil {
		return 0, err
	}
	return res.SimSeconds, nil
}

// AblationBatching compares the workflow engine's auto-tuned batch
// size against single-tuple and whole-table batching on DICE — the
// "engine-managed batching" advantage of Aspect #2. Whole-table
// batches destroy pipelining (each operator gets all input at once);
// single-tuple batches maximize overlap but multiply per-batch
// scheduling in the simulator.
func AblationBatching(cfg Config) ([]AblationRow, error) {
	cfg = cfg.normalize()
	pairs := cfg.scaled(200)
	task, err := dice.New(dice.Params{Pairs: pairs, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	// The batching knob lives on the dataflow config; tasks expose it
	// through the model-independent RunConfig, so we reach it via the
	// task's workflow with explicit batch sizes.
	var out []AblationRow
	for _, c := range []struct {
		name  string
		batch int
		note  string
	}{
		{"auto-tuned", 0, "engine-managed batching (paper's Texera)"},
		{"whole-table batches", pairs, "no pipelining across operators"},
	} {
		res, err := task.RunWorkflowWithBatch(cfg.RunConfig, c.batch)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationRow{Config: c.name, Seconds: res.SimSeconds, Note: c.note})
	}
	return out, nil
}

// TuneRow is one operator's recommended worker count.
type TuneRow struct {
	Operator string
	Workers  int
}

// TuneOutcome is the auto-tuner demonstration result.
type TuneOutcome struct {
	Rows            []TuneRow
	BaselineSeconds float64
	TunedSeconds    float64
	CoresUsed       int
}

// AutoTuneDICE demonstrates the engine-side resource tuning of Aspect
// #2: profile the DICE workflow once at one worker per operator, then
// let the tuner allocate a 16-core budget across its operators on the
// simulator.
func AutoTuneDICE(cfg Config) (*TuneOutcome, error) {
	cfg = cfg.normalize()
	task, err := dice.New(dice.Params{Pairs: cfg.scaled(200), Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	rc, err := cfg.RunConfig.Normalize()
	if err != nil {
		return nil, err
	}
	rc.Workers = 1 // profile at one worker per operator
	profile, err := task.ProfileWorkflow(rc)
	if err != nil {
		return nil, err
	}
	res, err := dataflow.AutoTune(profile, rc.Model, 16)
	if err != nil {
		return nil, err
	}
	out := &TuneOutcome{
		BaselineSeconds: res.BaselineSeconds,
		TunedSeconds:    res.Seconds,
		CoresUsed:       res.CoresUsed,
	}
	for _, n := range profile.Nodes {
		if n.Kind != "operator" {
			continue
		}
		out.Rows = append(out.Rows, TuneRow{Operator: n.Name, Workers: res.Workers[n.ID]})
	}
	return out, nil
}

// ThreeWayPoint is one dataset size measured under all three platform
// paradigms the paper's introduction names.
type ThreeWayPoint struct {
	Size        int
	Script      float64
	Workflow    float64
	Spreadsheet float64
	AllAgree    bool
}

// ExtSpreadsheetKGE is this reproduction's extension experiment: the
// KGE task under the third paradigm — spreadsheets — next to the
// paper's two. The spreadsheet matches the other paradigms'
// recommendations bit-for-bit but scales quadratically, because every
// RANK cell re-reads the whole distance column; the other two grow
// linearly. Sizes stop at 6.8k: the paradigm's wall is the result.
func ExtSpreadsheetKGE(cfg Config) ([]ThreeWayPoint, error) {
	cfg = cfg.normalize()
	var out []ThreeWayPoint
	for _, size := range []int{850, 1700, 3400, 6800, 13600} {
		n := cfg.scaled(size)
		task, err := kge.New(kge.Params{Products: n, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		s, w, err := core.RunBoth(task, cfg.RunConfig)
		if err != nil {
			return nil, err
		}
		sp, err := task.RunSpreadsheet(cfg.RunConfig)
		if err != nil {
			return nil, err
		}
		out = append(out, ThreeWayPoint{
			Size:        n,
			Script:      s.SimSeconds,
			Workflow:    w.SimSeconds,
			Spreadsheet: sp.SimSeconds,
			AllAgree:    s.Output.Equal(w.Output) && s.Output.Equal(sp.Output),
		})
	}
	return out, nil
}
