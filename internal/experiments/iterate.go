package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lineage"
	"repro/internal/relation"
	"repro/internal/tasks/dice"
	"repro/internal/tasks/gotta"
	"repro/internal/tasks/kge"
	"repro/internal/tasks/wef"
)

// The iterate experiment models the edit-and-rerun loop that dominates
// real data-science work: a pipeline is built once, then repeatedly
// re-run after small semantics-preserving edits. With a versioned
// artifact store attached, each re-run executes only what the edit
// dirtied — at operator granularity for the workflow paradigm
// (Texera-style result reuse), at cell granularity with
// suffix-invalidation for the script paradigm (a stateful Jupyter
// kernel cannot prove later cells independent of an earlier edit).

// IteratePoint is one edit step of one task: cold (no store) and
// incremental (store-backed) makespans per paradigm plus reuse
// accounting.
type IteratePoint struct {
	Task  string
	Step  int    // 0 = initial build, 1.. = successive edits
	Stage string // the stage edited at this step ("" for step 0)

	ScriptCold   float64
	ScriptInc    float64
	WorkflowCold float64
	WorkflowInc  float64

	// Reused/Units count cache-served units (cells or operators) out of
	// the pipeline total.
	ScriptReused   int
	ScriptUnits    int
	WorkflowReused int
	WorkflowUnits  int
	// WorkflowHitBytes is the artifact bytes served from the store; the
	// script paradigm's cache is metadata-only, so it has no analogue.
	WorkflowHitBytes int64

	// OutputsMatch asserts the incremental run's output is bit-identical
	// to a cold run of the same (edited) pipeline, for both paradigms.
	OutputsMatch bool
}

// editable is a task that accepts per-stage edit revisions.
type editable interface {
	core.Task
	SetEdits(map[string]int)
}

// iterateStages is the edit script per task: the stage touched at each
// step, chosen to exercise late, early and repeated edits.
var iterateStages = map[string][]string{
	"dice":  {"split", "parse", "write"},
	"kge":   {"compute-distance", "embedding-join", "rank-topk"},
	"wef":   {"shape", "train", "shape"},
	"gotta": {"evaluate", "prompts", "evaluate"},
}

// Iterate runs the K-edit loop for every task under both paradigms,
// once cold and once against a persistent artifact store.
func Iterate(cfg Config) ([]IteratePoint, error) {
	cfg = cfg.normalize()
	rc, err := cfg.RunConfig.Normalize()
	if err != nil {
		return nil, err
	}
	tasks := []struct {
		name string
		mk   func() (core.Task, error)
	}{
		{"dice", func() (core.Task, error) { return dice.New(dice.Params{Pairs: cfg.scaled(200), Seed: cfg.Seed}) }},
		{"wef", func() (core.Task, error) { return wef.New(wef.Params{Tweets: cfg.scaled(200), Seed: cfg.Seed}) }},
		{"gotta", func() (core.Task, error) { return gotta.New(gotta.Params{Paragraphs: 2, Seed: cfg.Seed}) }},
		{"kge", func() (core.Task, error) { return kge.New(kge.Params{Products: cfg.scaled(6800), Seed: cfg.Seed}) }},
	}

	var out []IteratePoint
	for _, spec := range tasks {
		task, err := spec.mk()
		if err != nil {
			return nil, err
		}
		ed, ok := task.(editable)
		if !ok {
			return nil, fmt.Errorf("experiments: task %s does not accept edits", spec.name)
		}
		store, err := lineage.NewStore(rc.Model, 0)
		if err != nil {
			return nil, err
		}
		revs := map[string]int{}
		stages := iterateStages[spec.name]
		for step := 0; step <= len(stages); step++ {
			stage := ""
			if step > 0 {
				stage = stages[step-1]
				revs[stage]++
			}
			ed.SetEdits(revs)

			incCfg := rc
			incCfg.Lineage = store
			sInc, err := task.Run(core.Script, incCfg)
			if err != nil {
				return nil, err
			}
			wInc, err := task.Run(core.Workflow, incCfg)
			if err != nil {
				return nil, err
			}
			sCold, err := task.Run(core.Script, rc)
			if err != nil {
				return nil, err
			}
			wCold, err := task.Run(core.Workflow, rc)
			if err != nil {
				return nil, err
			}

			p := IteratePoint{
				Task: spec.name, Step: step, Stage: stage,
				ScriptCold: sCold.SimSeconds, ScriptInc: sInc.SimSeconds,
				WorkflowCold: wCold.SimSeconds, WorkflowInc: wInc.SimSeconds,
				OutputsMatch: relation.Digest(sInc.Output) == relation.Digest(sCold.Output) &&
					relation.Digest(wInc.Output) == relation.Digest(wCold.Output),
			}
			if sInc.Lineage != nil {
				p.ScriptReused = sInc.Lineage.Reused
				p.ScriptUnits = sInc.Lineage.Units
			}
			if wInc.Lineage != nil {
				p.WorkflowReused = wInc.Lineage.Reused
				p.WorkflowUnits = wInc.Lineage.Units
				p.WorkflowHitBytes = wInc.Lineage.HitBytes
			}
			out = append(out, p)
		}
	}
	return out, nil
}
