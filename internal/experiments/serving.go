package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/service"
)

// ---------------------------------------------------------------------------
// E13 — serving: latency, goodput and fairness versus offered load.
//
// The paper's workloads run once per invocation; a production workflow
// service runs thousands of them concurrently for many users. This
// experiment puts the fair-share scheduler in front of the measured
// engines: a synthetic open-loop traffic stream (Poisson arrivals,
// heavy-tailed task and worker mix over the four registered tasks,
// four equal-weight tenants) is swept across offered loads, and each
// point reports p50/p99 sojourn latency, goodput, admission rejections
// and Jain's fairness index over per-tenant served vCPU-seconds.
// Per-job service times are measured by running each (task, paradigm,
// workers) combination once through core — the simulation schedules
// real makespans, not guesses.

// ServingPoint is one offered-load measurement.
type ServingPoint struct {
	// Load is offered demand over the vCPU budget (1.0 = saturation).
	Load float64
	// RateJobsPerSec is the Poisson arrival rate realizing Load.
	RateJobsPerSec float64
	Arrivals       int
	Admitted       int
	Rejected       int
	Completed      int
	// P50/P99/Mean summarize sojourn time in sim seconds.
	P50Latency  float64
	P99Latency  float64
	MeanLatency float64
	// Goodput is completed admitted vCPU-seconds per sim second;
	// Utilization divides it by the budget.
	Goodput     float64
	Utilization float64
	// Jain is the fairness index over weight-normalized per-tenant
	// served vCPU-seconds (1 = perfectly fair).
	Jain float64
}

// ServingLoads is the experiment's offered-load sweep, as fractions of
// the admitted vCPU budget.
var ServingLoads = []float64{0.25, 0.5, 0.75, 1.0, 1.5, 2.0}

// servingJobs is the arrivals per sweep point. One job sequence is
// generated once and re-timed per load, so points differ only in
// arrival tempo.
const servingJobs = 320

// Serving sweeps offered load over the fair-share scheduler with
// measured per-job service times.
func Serving(cfg Config) ([]ServingPoint, error) {
	cfg = cfg.normalize()
	mix := service.DefaultMix()
	for i := range mix {
		size, err := core.TaskDefaultSize(mix[i].Task)
		if err != nil {
			return nil, err
		}
		mix[i].Size = cfg.scaled(size)
	}
	base, err := service.GenerateTraffic(service.TrafficConfig{
		Seed: cfg.Seed,
		Jobs: servingJobs,
		Rate: 1,
		Mix:  mix,
	})
	if err != nil {
		return nil, err
	}

	// Measure service times once per distinct (task, size, paradigm,
	// workers) the stream uses; the sim then schedules real makespans.
	costs := make(map[string]float64)
	cost := func(j *service.Job) float64 { return costs[costKey(j.Spec)] }
	var meanDemand float64
	for _, a := range base {
		c, err := measureCost(costs, a.Spec, cfg)
		if err != nil {
			return nil, err
		}
		meanDemand += c * float64(a.Spec.Workers)
	}
	meanDemand /= float64(len(base))

	svcCfg := service.Config{}
	budget := service.NewScheduler(svcCfg).Budget()
	var out []ServingPoint
	for _, load := range ServingLoads {
		rate := load * float64(budget) / meanDemand
		arrivals := service.RescaleRate(base, 1, rate)
		rep, err := service.Simulate(svcCfg, arrivals, cost)
		if err != nil {
			return nil, err
		}
		goodput := 0.0
		if rep.Makespan > 0 {
			goodput = rep.GoodputVCPUSeconds / rep.Makespan
		}
		out = append(out, ServingPoint{
			Load:           load,
			RateJobsPerSec: rate,
			Arrivals:       rep.Arrivals,
			Admitted:       rep.Admitted,
			Rejected:       rep.Rejected,
			Completed:      rep.Completed,
			P50Latency:     rep.P50Latency,
			P99Latency:     rep.P99Latency,
			MeanLatency:    rep.MeanLatency,
			Goodput:        goodput,
			Utilization:    rep.Utilization,
			Jain:           rep.Jain,
		})
	}
	return out, nil
}

func costKey(s core.RunSpec) string {
	return fmt.Sprintf("%s/%d/%s/%d", s.Task, s.Size, s.Paradigm, s.Workers)
}

// measureCost runs the spec's (task, paradigm, workers) combination
// through core once, memoized, and returns its simulated makespan.
func measureCost(costs map[string]float64, spec core.RunSpec, cfg Config) (float64, error) {
	key := costKey(spec)
	if c, ok := costs[key]; ok {
		return c, nil
	}
	task, err := spec.NewTask()
	if err != nil {
		return 0, err
	}
	rc, err := spec.Config(core.WithModel(cfg.Model))
	if err != nil {
		return 0, err
	}
	var total float64
	for _, p := range spec.Paradigms() {
		res, err := task.Run(p, rc)
		if err != nil {
			return 0, err
		}
		total += res.SimSeconds
	}
	costs[key] = total
	return total, nil
}
