package experiments

import (
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/relation"
)

// ---------------------------------------------------------------------------
// E11 — recovery overhead: makespan versus fault rate, per paradigm.
//
// The paper's Aspect #5 contrasts the paradigms' failure handling:
// scripts restart from lineage (free until a fault strikes, then whole
// tasks re-run), workflows checkpoint continuously (a steady tax, but
// cheap replay). This experiment makes that trade quantitative: DICE
// is run under both paradigms across a sweep of fault rates, with the
// workflow's epoch checkpointing armed at every point — the rate-0
// point therefore isolates the pure checkpoint write tax. Every run's
// output digest is asserted against the failure-free baseline: fault
// injection happens on the simulated schedule, so recovery must never
// change what is computed.

// RecoveryPoint is one fault rate's measurements.
type RecoveryPoint struct {
	// Rate is faults per 100 simulated seconds.
	Rate float64
	// Script and Workflow are makespans under the plan; ScriptClean
	// and WorkflowClean the failure-free references.
	Script, Workflow           float64
	ScriptClean, WorkflowClean float64
	// Kills per paradigm, and the workflow's continuous checkpoint tax.
	ScriptKills, WorkflowKills int
	CheckpointSeconds          float64
	// DigestsMatch reports whether both paradigms' outputs were
	// bit-identical to the failure-free baseline.
	DigestsMatch bool
}

// RecoveryRates is the experiment's fault-rate sweep, in faults per
// 100 simulated seconds.
var RecoveryRates = []float64{0, 1, 2, 4, 8}

// RecoveryOverhead sweeps fault rates over DICE under both paradigms.
func RecoveryOverhead(cfg Config) ([]RecoveryPoint, error) {
	cfg = cfg.normalize()

	baseline := func() (*core.Result, *core.Result, error) {
		task, err := core.NewTask("dice", cfg.scaled(200), cfg.Seed)
		if err != nil {
			return nil, nil, err
		}
		return core.RunBoth(task, cfg.RunConfig)
	}
	cleanS, cleanW, err := baseline()
	if err != nil {
		return nil, err
	}
	wantS, wantW := relation.Digest(cleanS.Output), relation.Digest(cleanW.Output)

	var out []RecoveryPoint
	for _, rate := range RecoveryRates {
		plan := faults.Plan{
			Seed:            cfg.Seed,
			Rate:            rate,
			NodeFraction:    0.25,
			CheckpointEvery: 4, // armed even at rate 0: the pure write tax
		}
		rc, err := cfg.RunConfig.With(core.WithFaults(plan))
		if err != nil {
			return nil, err
		}
		task, err := core.NewTask("dice", cfg.scaled(200), cfg.Seed)
		if err != nil {
			return nil, err
		}
		s, w, err := core.RunBoth(task, rc)
		if err != nil {
			return nil, err
		}
		out = append(out, RecoveryPoint{
			Rate:              rate,
			Script:            s.SimSeconds,
			Workflow:          w.SimSeconds,
			ScriptClean:       cleanS.SimSeconds,
			WorkflowClean:     cleanW.SimSeconds,
			ScriptKills:       s.Recovery.Kills,
			WorkflowKills:     w.Recovery.Kills,
			CheckpointSeconds: w.Recovery.CheckpointSeconds,
			DigestsMatch: relation.Digest(s.Output) == wantS &&
				relation.Digest(w.Output) == wantW,
		})
	}
	return out, nil
}
