package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/relation"
)

// Golden determinism under faults: the same fault-plan seed must
// reproduce a run bit-for-bit (SimSeconds, trace totals, recovery
// totals, output digest), and any plan must leave the output digest
// identical to the failure-free run — recovery replays work, it never
// changes what the work computes.

func assertGoldenFaults(t *testing.T, name string, mk func() (core.Task, error)) {
	t.Helper()
	plan := faults.Plan{Seed: 7, Rate: 30, NodeFraction: 0.25, CheckpointEvery: 4}
	run := func(p core.Paradigm, plan faults.Plan) *core.Result {
		task, err := mk()
		if err != nil {
			t.Fatalf("%s: build task: %v", name, err)
		}
		cfg, err := core.NewRunConfig(core.WithFaults(plan))
		if err != nil {
			t.Fatalf("%s: config: %v", name, err)
		}
		res, err := task.Run(p, cfg)
		if err != nil {
			t.Fatalf("%s: run: %v", name, err)
		}
		return res
	}
	for _, p := range []core.Paradigm{core.Script, core.Workflow} {
		a, b := run(p, plan), run(p, plan)
		if a.SimSeconds != b.SimSeconds {
			t.Errorf("%s/%s: SimSeconds differ: %v vs %v", name, p, a.SimSeconds, b.SimSeconds)
		}
		if a.Trace != b.Trace {
			t.Errorf("%s/%s: trace totals differ:\n  %+v\n  %+v", name, p, a.Trace, b.Trace)
		}
		if a.Recovery != b.Recovery {
			t.Errorf("%s/%s: recovery totals differ:\n  %+v\n  %+v", name, p, a.Recovery, b.Recovery)
		}
		if da, db := relation.Digest(a.Output), relation.Digest(b.Output); da != db {
			t.Errorf("%s/%s: output digests differ: %#x vs %#x", name, p, da, db)
		}
		// And against the failure-free run: same digest, slower or equal
		// clock.
		clean := run(p, faults.Plan{})
		if dc, da := relation.Digest(clean.Output), relation.Digest(a.Output); dc != da {
			t.Errorf("%s/%s: faults changed the output digest: %#x vs %#x", name, p, da, dc)
		}
		if a.SimSeconds < clean.SimSeconds {
			t.Errorf("%s/%s: faulty run faster than clean: %v < %v", name, p, a.SimSeconds, clean.SimSeconds)
		}
	}
}

func TestGoldenDICEDeterministicUnderFaults(t *testing.T) {
	assertGoldenFaults(t, "dice", func() (core.Task, error) {
		return core.NewTask("dice", 10, 1)
	})
}

func TestGoldenKGEDeterministicUnderFaults(t *testing.T) {
	assertGoldenFaults(t, "kge", func() (core.Task, error) {
		return core.NewTask("kge", 340, 1)
	})
}

// The zero plan is inert: a config carrying faults.Plan{} must cost
// exactly nothing over one without it.
func TestZeroFaultPlanIsFree(t *testing.T) {
	for _, p := range []core.Paradigm{core.Script, core.Workflow} {
		run := func(cfg core.RunConfig) *core.Result {
			task, err := core.NewTask("dice", 10, 1)
			if err != nil {
				t.Fatal(err)
			}
			res, err := task.Run(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		bare := run(core.RunConfig{})
		zero := run(core.MustRunConfig(core.WithFaults(faults.Plan{})))
		if bare.SimSeconds != zero.SimSeconds {
			t.Errorf("%s: zero plan changed SimSeconds: %v vs %v", p, bare.SimSeconds, zero.SimSeconds)
		}
		if zero.Recovery != (core.RecoveryTotals{}) {
			t.Errorf("%s: zero plan produced recovery work: %+v", p, zero.Recovery)
		}
		if relation.Digest(bare.Output) != relation.Digest(zero.Output) {
			t.Errorf("%s: zero plan changed the output", p)
		}
	}
}

// The recovery experiment itself must be deterministic: two sweeps are
// bit-equal, digests always match, and the workflow's rate-0 point
// carries the checkpoint tax.
func TestRecoveryOverheadDeterministic(t *testing.T) {
	cfg := Config{Scale: 20, Seed: 1}
	a, err := RecoveryOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RecoveryOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(RecoveryRates) || len(b) != len(a) {
		t.Fatalf("sweep lengths: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("point %d differs:\n  %+v\n  %+v", i, a[i], b[i])
		}
		if !a[i].DigestsMatch {
			t.Errorf("point %d (rate %v): digests diverged from baseline", i, a[i].Rate)
		}
	}
	p0 := a[0]
	if p0.Rate != 0 || p0.ScriptKills != 0 || p0.WorkflowKills != 0 {
		t.Fatalf("rate-0 point has kills: %+v", p0)
	}
	if p0.CheckpointSeconds <= 0 {
		t.Errorf("rate-0 point carries no checkpoint tax: %+v", p0)
	}
	if p0.Workflow <= p0.WorkflowClean {
		t.Errorf("rate-0 workflow not slower than clean: %v <= %v", p0.Workflow, p0.WorkflowClean)
	}
	if p0.Script != p0.ScriptClean {
		t.Errorf("rate-0 script should match clean exactly (lineage recovery is free): %v vs %v", p0.Script, p0.ScriptClean)
	}
}
