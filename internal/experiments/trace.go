package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lineage"
	"repro/internal/telemetry"

	// The four task packages register themselves with the core task
	// registry; importing them here is what makes them runnable by
	// name throughout the experiment harness and the CLI.
	_ "repro/internal/tasks/dice"
	_ "repro/internal/tasks/gotta"
	_ "repro/internal/tasks/kge"
	_ "repro/internal/tasks/wef"
)

// TraceTasks lists the task names Trace accepts, from the registry.
func TraceTasks() []string { return core.TaskNames() }

// traceTask builds the named task at the config's scale, using each
// task's registered paper-scale baseline size (the largest Figure 13
// point).
func traceTask(name string, cfg Config) (core.Task, error) {
	size, err := core.TaskDefaultSize(name)
	if err != nil {
		return nil, err
	}
	return core.NewTask(name, cfg.scaled(size), cfg.Seed)
}

// Trace runs one task under both paradigms with telemetry attached and
// returns the recorder holding both runs' spans and metrics, so the
// script and workflow executions of the same workload can be compared
// side by side in one Chrome trace. The recorder's virtual-clock data
// is deterministic; wall-clock data varies run to run.
func Trace(name string, cfg Config) (*telemetry.Recorder, error) {
	return trace(name, cfg, false)
}

// TraceLineage is Trace with a versioned artifact store armed: each
// paradigm runs twice against the same store, so the second pass's
// cache hits, commits and invalidation events show up as lineage spans
// and counters in the recorder.
func TraceLineage(name string, cfg Config) (*telemetry.Recorder, error) {
	return trace(name, cfg, true)
}

func trace(name string, cfg Config, withLineage bool) (*telemetry.Recorder, error) {
	cfg = cfg.normalize()
	task, err := traceTask(name, cfg)
	if err != nil {
		return nil, err
	}
	rec := telemetry.New()
	opts := []core.Option{core.WithTelemetry(rec)}
	if withLineage {
		store, err := lineage.NewStore(cfg.Model, 0)
		if err != nil {
			return nil, err
		}
		opts = append(opts, core.WithLineage(store))
	}
	rc, err := cfg.RunConfig.With(opts...)
	if err != nil {
		return nil, err
	}
	if withLineage {
		// Populate pass: the runs that matter are the warm ones below.
		if _, _, err := core.RunBoth(task, rc); err != nil {
			return nil, err
		}
	}
	s, w, err := core.RunBoth(task, rc)
	if err != nil {
		return nil, err
	}
	rec.SetMeta("task", name)
	rec.SetMeta("script.sim_seconds", fmt.Sprintf("%.6f", s.SimSeconds))
	rec.SetMeta("workflow.sim_seconds", fmt.Sprintf("%.6f", w.SimSeconds))
	rec.SetMeta("outputs_agree", fmt.Sprintf("%v", s.Output.Equal(w.Output)))
	return rec, nil
}
