package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/tasks/dice"
	"repro/internal/tasks/gotta"
	"repro/internal/tasks/kge"
	"repro/internal/tasks/wef"
	"repro/internal/telemetry"
)

// TraceTasks lists the task names Trace accepts.
var TraceTasks = []string{"dice", "wef", "gotta", "kge"}

// traceTask builds the named task at the config's scale, using each
// task's paper-scale baseline size (the largest Figure 13 point).
func traceTask(name string, cfg Config) (core.Task, error) {
	switch name {
	case "dice":
		return dice.New(dice.Params{Pairs: cfg.scaled(200), Seed: cfg.Seed})
	case "wef":
		return wef.New(wef.Params{Tweets: cfg.scaled(200), Seed: cfg.Seed})
	case "gotta":
		return gotta.New(gotta.Params{Paragraphs: cfg.scaled(16), Seed: cfg.Seed})
	case "kge":
		return kge.New(kge.Params{Products: cfg.scaled(6800), Seed: cfg.Seed})
	default:
		return nil, fmt.Errorf("experiments: unknown trace task %q (have %v)", name, TraceTasks)
	}
}

// Trace runs one task under both paradigms with telemetry attached and
// returns the recorder holding both runs' spans and metrics, so the
// script and workflow executions of the same workload can be compared
// side by side in one Chrome trace. The recorder's virtual-clock data
// is deterministic; wall-clock data varies run to run.
func Trace(name string, cfg Config) (*telemetry.Recorder, error) {
	cfg = cfg.normalize()
	task, err := traceTask(name, cfg)
	if err != nil {
		return nil, err
	}
	rec := telemetry.New()
	rc := cfg.RunConfig
	rc.Telemetry = rec
	s, w, err := core.RunBoth(task, rc)
	if err != nil {
		return nil, err
	}
	rec.SetMeta("task", name)
	rec.SetMeta("script.sim_seconds", fmt.Sprintf("%.6f", s.SimSeconds))
	rec.SetMeta("workflow.sim_seconds", fmt.Sprintf("%.6f", w.SimSeconds))
	rec.SetMeta("outputs_agree", fmt.Sprintf("%v", s.Output.Equal(w.Output)))
	return rec, nil
}
