package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/planopt"
	"repro/internal/relation"
)

// ---------------------------------------------------------------------------
// E15 — optimizer on/off sweep: the cost-based plan rewriter as a pure
// performance knob.
//
// Every task's workflow runs twice per topology — hand-authored plan
// versus the same plan after `-optimize` — and the experiment asserts
// the optimizer's contract the hard way: the two output digests must be
// bit-identical, at the legacy tier and on a sharded topology, or the
// sweep fails. What may legitimately differ is the schedule, so each
// row reports both makespans plus how many rewrites the optimizer
// applied and rejected (each one carries an OPT0xx diagnostic naming
// the operator and the reason).

// OptimizeNodes is the node-count sweep: the legacy paper cluster and
// one sharded topology, so the exchange-choice pass has a tier to act
// on.
var OptimizeNodes = []int{1, 4}

// OptimizeRow is one (task, nodes) cell of the optimizer sweep.
type OptimizeRow struct {
	Task    string `json:"task"`
	Nodes   int    `json:"nodes"`
	Workers int    `json:"workers"`
	// Off and On are workflow makespans in simulated seconds without
	// and with the optimizer.
	Off float64 `json:"off_seconds"`
	On  float64 `json:"on_seconds"`
	// Applied and Rejected count the optimizer's rewrite decisions.
	Applied  int `json:"applied"`
	Rejected int `json:"rejected"`
	// Digest is the (shared) output digest; DigestsEqual records the
	// bit-equality assertion that already gated this row's existence.
	Digest       uint64 `json:"digest"`
	DigestsEqual bool   `json:"digests_equal"`
	// Rewrites holds the applied rewrites' diagnostics (rejections are
	// elided here; `repro validate -optimize` shows everything).
	Rewrites []dataflow.Diag `json:"rewrites,omitempty"`
}

// OptimizerSweep runs E15: all four tasks at each node count, workflow
// paradigm, optimizer off versus on. A digest mismatch is a hard error,
// not a row annotation — the optimizer is allowed to change schedules,
// never bytes.
func OptimizerSweep(cfg Config) ([]OptimizeRow, error) {
	cfg = cfg.normalize()
	var out []OptimizeRow
	for _, name := range core.TaskNames() {
		for _, nodes := range OptimizeNodes {
			workers := 8
			rcOff, err := cfg.RunConfig.With(
				core.WithWorkers(workers),
				core.WithNodes(nodes),
				core.WithOptimize(false),
			)
			if err != nil {
				return nil, err
			}
			rcOn, err := rcOff.With(core.WithOptimize(true))
			if err != nil {
				return nil, err
			}

			taskOff, err := traceTask(name, cfg)
			if err != nil {
				return nil, err
			}
			off, err := taskOff.Run(core.Workflow, rcOff)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s optimizer off: %w", name, err)
			}
			taskOn, err := traceTask(name, cfg)
			if err != nil {
				return nil, err
			}
			on, err := taskOn.Run(core.Workflow, rcOn)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s optimizer on: %w", name, err)
			}

			dOff, dOn := relation.Digest(off.Output), relation.Digest(on.Output)
			if dOff != dOn {
				return nil, fmt.Errorf(
					"experiments: %s nodes=%d: optimizer changed the output (digest %x off, %x on)",
					name, nodes, dOff, dOn)
			}

			// Re-derive the decision report from a fresh plan: the run
			// path discards it, and the plan builder is deterministic.
			rep, err := optimizeReport(taskOn, rcOn)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s plan report: %w", name, err)
			}
			applied := make([]dataflow.Diag, 0, rep.Applied)
			for _, d := range rep.Diags {
				if len(d.Msg) >= 8 && d.Msg[:8] == "applied:" {
					applied = append(applied, d)
				}
			}
			out = append(out, OptimizeRow{
				Task:    name,
				Nodes:   nodes,
				Workers: workers,
				Off:     off.SimSeconds,
				On:      on.SimSeconds,
				Applied: rep.Applied, Rejected: rep.Rejected,
				Digest: dOff, DigestsEqual: true,
				Rewrites: applied,
			})
		}
	}
	return out, nil
}

// optimizeReport rebuilds the task's workflow plan and optimizes it
// statically, returning the decision report the run path produced.
func optimizeReport(task core.Task, rc core.RunConfig) (*planopt.Report, error) {
	p, ok := task.(PlanProvider)
	if !ok {
		return nil, fmt.Errorf("task %q does not expose a workflow plan", task.Name())
	}
	w, err := p.WorkflowPlan(rc.Workers)
	if err != nil {
		return nil, err
	}
	return planopt.Optimize(w, planopt.ConfigOptions(rc))
}
