package experiments

import "testing"

// TestValidatePlansClean is the plan-level acceptance gate: every
// registered task's workflow DAG must pass the static validator with
// zero diagnostics at a parallel worker count.
func TestValidatePlansClean(t *testing.T) {
	reports, err := ValidatePlans(Config{Scale: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("expected 4 task reports, got %d", len(reports))
	}
	for _, r := range reports {
		if r.Operators < 2 || r.Edges < 2 {
			t.Errorf("%s: implausible plan size (%d operators, %d edges)", r.Task, r.Operators, r.Edges)
		}
		if r.Workers < 2 {
			t.Errorf("%s: validated at workers=%d; partitioning rules need > 1", r.Task, r.Workers)
		}
		for _, d := range r.Diags {
			t.Errorf("%s: %s", r.Task, d)
		}
	}
}
