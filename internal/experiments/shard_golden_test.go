package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/relation"
	"repro/internal/tasks/dice"
	"repro/internal/tasks/kge"
)

// The sharded-tier golden tests pin the tier's core invariant: node
// topology, exchange pricing, spill planning and whole-node loss act
// only on the schedule/cost plane, so the output digest of any
// topology — nodes=1, nodes=4, nodes=4 plus node loss, spilling or
// in-memory — is bit-identical to the legacy single-cluster run.

func shardTasks(t *testing.T) map[string]func() (core.Task, error) {
	t.Helper()
	return map[string]func() (core.Task, error){
		"dice": func() (core.Task, error) { return dice.New(dice.Params{Pairs: 20, Seed: 1}) },
		"kge":  func() (core.Task, error) { return kge.New(kge.Params{Products: 340, Seed: 1}) },
	}
}

func runAt(t *testing.T, mk func() (core.Task, error), p core.Paradigm, opts ...core.Option) *core.Result {
	t.Helper()
	task, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := core.NewRunConfig(opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := task.Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGoldenTopologyBitEqual(t *testing.T) {
	for name, mk := range shardTasks(t) {
		for _, p := range []core.Paradigm{core.Script, core.Workflow} {
			base := runAt(t, mk, p, core.WithWorkers(8))
			want := relation.Digest(base.Output)

			sharded := runAt(t, mk, p, core.WithWorkers(8), core.WithNodes(4))
			if got := relation.Digest(sharded.Output); got != want {
				t.Errorf("%s/%s: nodes=4 digest %#x != nodes=1 digest %#x", name, p, got, want)
			}

			// Whole-node loss: every fault is node-level.
			plan := faults.Plan{Seed: 7, Rate: 4, NodeFraction: 1, MaxFaults: 3}
			lossy := runAt(t, mk, p, core.WithWorkers(8), core.WithNodes(4), core.WithFaults(plan))
			if got := relation.Digest(lossy.Output); got != want {
				t.Errorf("%s/%s: nodes=4+node-loss digest %#x != baseline %#x", name, p, got, want)
			}
			if lossy.SimSeconds < sharded.SimSeconds {
				t.Errorf("%s/%s: node loss made the run faster (%.3f < %.3f)", name, p, lossy.SimSeconds, sharded.SimSeconds)
			}
		}
	}
}

func TestGoldenSpillBitEqual(t *testing.T) {
	for name, mk := range shardTasks(t) {
		inMem := runAt(t, mk, core.Workflow, core.WithWorkers(8), core.WithNodes(4))
		if inMem.Trace.SpillBytes != 0 {
			t.Fatalf("%s: default budget spilled %d bytes at test scale", name, inMem.Trace.SpillBytes)
		}
		// A one-byte budget forces every blocking operator through the
		// grace spill path.
		spilled := runAt(t, mk, core.Workflow, core.WithWorkers(8), core.WithNodes(4), core.WithShardMem(1))
		if spilled.Trace.SpillBytes == 0 {
			t.Fatalf("%s: 1-byte worker budget did not spill", name)
		}
		// Spill cost lands on the schedule plane; off the critical path
		// it can be absorbed by slack, but it may never help.
		if spilled.SimSeconds < inMem.SimSeconds {
			t.Errorf("%s: spilling made the run faster (%.3f < %.3f)", name, spilled.SimSeconds, inMem.SimSeconds)
		}
		if relation.Digest(spilled.Output) != relation.Digest(inMem.Output) {
			t.Errorf("%s: spilled output digest differs from in-memory digest", name)
		}
	}
}

func TestGoldenShardedScheduleDeterministic(t *testing.T) {
	mk := shardTasks(t)["dice"]
	run := func() *core.Result {
		return runAt(t, mk, core.Workflow, core.WithWorkers(16), core.WithNodes(4), core.WithShardMem(4<<10))
	}
	a, b := run(), run()
	if a.SimSeconds != b.SimSeconds {
		t.Errorf("sharded SimSeconds differ: %v vs %v", a.SimSeconds, b.SimSeconds)
	}
	if a.Trace != b.Trace {
		t.Errorf("sharded trace totals differ:\n  %+v\n  %+v", a.Trace, b.Trace)
	}
	if a.Trace.ShuffleBytes == 0 {
		t.Error("sharded run priced no exchange traffic")
	}
	if relation.Digest(a.Output) != relation.Digest(b.Output) {
		t.Error("sharded output digests differ between runs")
	}
}

// The legacy tier must be byte-for-byte the pre-shard path: no
// exchange pricing, no spill, and the same schedule as a config that
// never mentions nodes.
func TestLegacyTierUnchanged(t *testing.T) {
	mk := shardTasks(t)["dice"]
	plain := runAt(t, mk, core.Workflow, core.WithWorkers(8))
	explicit := runAt(t, mk, core.Workflow, core.WithWorkers(8), core.WithNodes(1))
	if plain.SimSeconds != explicit.SimSeconds {
		t.Errorf("nodes=1 changed the schedule: %v vs %v", explicit.SimSeconds, plain.SimSeconds)
	}
	if plain.Trace != explicit.Trace {
		t.Errorf("nodes=1 changed trace totals:\n  %+v\n  %+v", explicit.Trace, plain.Trace)
	}
	if explicit.Trace.ShuffleBytes != 0 || explicit.Trace.SpillBytes != 0 {
		t.Errorf("legacy tier priced shuffle/spill: %+v", explicit.Trace)
	}
}

func TestScaleExperimentShape(t *testing.T) {
	rows, err := Scale(Config{Scale: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(ScaleFactors) * len(ScaleNodes); len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if !r.OutputsAgree || !r.DigestsStable || !r.NodeLossStable {
			t.Fatalf("row %+v lost determinism", r)
		}
		if r.Nodes > 1 && r.ShuffleBytes == 0 {
			t.Errorf("sharded row (factor %d, nodes %d) priced no shuffle", r.Factor, r.Nodes)
		}
		if r.Nodes == 1 && (r.ShuffleBytes != 0 || r.SpillBytes != 0) {
			t.Errorf("legacy row (factor %d) priced shuffle/spill", r.Factor)
		}
	}
}
