// Package experiments implements the paper's evaluation section: one
// entry per table and figure, each regenerating the same rows or
// series the paper reports, next to the paper's published values for
// comparison. Experiment IDs follow DESIGN.md (E1..E10).
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/tasks/dice"
	"repro/internal/tasks/gotta"
	"repro/internal/tasks/kge"
	"repro/internal/tasks/wef"
)

// Config scales the experiment suite. The zero value runs at the
// paper's sizes; tests shrink it.
type Config struct {
	core.RunConfig
	// Scale divides dataset sizes (1 = paper size). Values > 1 shrink
	// every workload proportionally for quick runs.
	Scale int
	// Seed is the base dataset seed.
	Seed uint64
}

func (c Config) normalize() Config {
	if c.Scale < 1 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c Config) scaled(n int) int {
	v := n / c.Scale
	if v < 1 {
		v = 1
	}
	return v
}

// Pair is a (script, workflow) time measurement.
type Pair struct {
	Script   float64
	Workflow float64
}

// ---------------------------------------------------------------------------
// E1 — Table I: KGE operator-language comparison.

// Table1Row is one scale of the Table I comparison.
type Table1Row struct {
	Products     int
	PythonSecs   float64
	ScalaSecs    float64
	PaperPython  float64
	PaperScala   float64
	OutputsAgree bool
}

// Table1 reproduces Table I: the three-Python-operator KGE workflow
// against the variant whose join is nine Scala operators, at 6.8k and
// 68k product pairs.
func Table1(cfg Config) ([]Table1Row, error) {
	cfg = cfg.normalize()
	paper := map[int][2]float64{
		6800:  {126.28, 98.67},
		68000: {1170.57, 1159.82},
	}
	var out []Table1Row
	for _, products := range []int{6800, 68000} {
		n := cfg.scaled(products)
		py, err := kge.New(kge.Params{Products: n, Seed: cfg.Seed, Variant: kge.Variant{Ops: 3}})
		if err != nil {
			return nil, err
		}
		sc, err := kge.New(kge.Params{Products: n, Seed: cfg.Seed, Variant: kge.Variant{Ops: 3, ScalaJoin: true}})
		if err != nil {
			return nil, err
		}
		rp, err := py.Run(core.Workflow, cfg.RunConfig)
		if err != nil {
			return nil, err
		}
		rs, err := sc.Run(core.Workflow, cfg.RunConfig)
		if err != nil {
			return nil, err
		}
		out = append(out, Table1Row{
			Products:     n,
			PythonSecs:   rp.SimSeconds,
			ScalaSecs:    rs.SimSeconds,
			PaperPython:  paper[products][0],
			PaperScala:   paper[products][1],
			OutputsAgree: rp.Output.Equal(rs.Output),
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// E2 — Figure 12a: lines of code per task per paradigm.

// LoCRow is one task's implementation sizes.
type LoCRow struct {
	Task          string
	ScriptLoC     int
	WorkflowLoC   int
	PaperScript   int
	PaperWorkflow int
}

// Fig12a reproduces Figure 12a: implementation size of the four tasks
// under both paradigms.
func Fig12a(cfg Config) ([]LoCRow, error) {
	cfg = cfg.normalize()
	paper := map[string][2]int{
		"dice":  {377, 215},
		"wef":   {68, 62},
		"gotta": {120, 105},
		"kge":   {128, 134},
	}
	tasks, err := smallTasks(cfg)
	if err != nil {
		return nil, err
	}
	var out []LoCRow
	for _, t := range tasks {
		s, w, err := core.RunBoth(t, cfg.RunConfig)
		if err != nil {
			return nil, err
		}
		out = append(out, LoCRow{
			Task:          t.Name(),
			ScriptLoC:     s.LinesOfCode,
			WorkflowLoC:   w.LinesOfCode,
			PaperScript:   paper[t.Name()][0],
			PaperWorkflow: paper[t.Name()][1],
		})
	}
	return out, nil
}

// smallTasks builds the four tasks at modest sizes (LoC does not
// depend on data size).
func smallTasks(cfg Config) ([]core.Task, error) {
	d, err := dice.New(dice.Params{Pairs: 10, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	w, err := wef.New(wef.Params{Tweets: 40, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	g, err := gotta.New(gotta.Params{Paragraphs: 2, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	k, err := kge.New(kge.Params{Products: 200, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	return []core.Task{d, w, g, k}, nil
}

// ---------------------------------------------------------------------------
// E3 — Figure 12b: KGE execution time versus operator count.

// ModularityPoint is one operator-count measurement.
type ModularityPoint struct {
	Ops     int
	Seconds float64
	Paper   float64
}

// Fig12bResult is the modularity sweep plus the script reference line.
type Fig12bResult struct {
	Points      []ModularityPoint
	ScriptRef   float64
	PaperScript float64
}

// Fig12b reproduces Figure 12b: the KGE workflow at 6.8k products,
// decomposed into 1..6 operators, with the script time for reference.
func Fig12b(cfg Config) (*Fig12bResult, error) {
	cfg = cfg.normalize()
	paper := map[int]float64{1: 138.97, 5: 114.05, 6: 115.14}
	n := cfg.scaled(6800)
	res := &Fig12bResult{PaperScript: 90.69}
	for ops := 1; ops <= 6; ops++ {
		task, err := kge.New(kge.Params{Products: n, Seed: cfg.Seed, Variant: kge.Variant{Ops: ops}})
		if err != nil {
			return nil, err
		}
		r, err := task.Run(core.Workflow, cfg.RunConfig)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, ModularityPoint{Ops: ops, Seconds: r.SimSeconds, Paper: paper[ops]})
	}
	ref, err := kge.New(kge.Params{Products: n, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	sr, err := ref.Run(core.Script, cfg.RunConfig)
	if err != nil {
		return nil, err
	}
	res.ScriptRef = sr.SimSeconds
	return res, nil
}

// ---------------------------------------------------------------------------
// E4..E7 — Figure 13: execution time versus dataset size.

// ScalePoint is one dataset size's times under both paradigms.
type ScalePoint struct {
	Size          int
	Script        float64
	Workflow      float64
	PaperScript   float64
	PaperWorkflow float64
	OutputsAgree  bool
}

// runScale measures a constructor over sizes.
func runScale(cfg Config, sizes []int, paper map[int][2]float64, mk func(size int) (core.Task, error)) ([]ScalePoint, error) {
	var out []ScalePoint
	for _, size := range sizes {
		n := cfg.scaled(size)
		task, err := mk(n)
		if err != nil {
			return nil, err
		}
		s, w, err := core.RunBoth(task, cfg.RunConfig)
		if err != nil {
			return nil, err
		}
		p := paper[size]
		out = append(out, ScalePoint{
			Size: n, Script: s.SimSeconds, Workflow: w.SimSeconds,
			PaperScript: p[0], PaperWorkflow: p[1],
			OutputsAgree: s.Output.Equal(w.Output),
		})
	}
	return out, nil
}

// Fig13aDICE reproduces Figure 13a: DICE from 10 to 200 file pairs.
func Fig13aDICE(cfg Config) ([]ScalePoint, error) {
	cfg = cfg.normalize()
	paper := map[int][2]float64{10: {14.71, 10.73}, 200: {239.54, 107.83}}
	return runScale(cfg, []int{10, 50, 100, 200}, paper, func(n int) (core.Task, error) {
		return dice.New(dice.Params{Pairs: n, Seed: cfg.Seed})
	})
}

// Fig13bWEF reproduces Figure 13b: WEF training on 200-400 tweets.
func Fig13bWEF(cfg Config) ([]ScalePoint, error) {
	cfg = cfg.normalize()
	paper := map[int][2]float64{
		200: {1285.82, 1264.93}, 300: {1922.86, 1896.01}, 400: {2587.94, 2525.96},
	}
	return runScale(cfg, []int{200, 300, 400}, paper, func(n int) (core.Task, error) {
		return wef.New(wef.Params{Tweets: n, Seed: cfg.Seed})
	})
}

// Fig13cKGE reproduces Figure 13c: KGE at 6.8k and 68k products.
func Fig13cKGE(cfg Config) ([]ScalePoint, error) {
	cfg = cfg.normalize()
	paper := map[int][2]float64{6800: {90.69, 135.85}, 68000: {975.46, 1350.50}}
	return runScale(cfg, []int{6800, 68000}, paper, func(n int) (core.Task, error) {
		return kge.New(kge.Params{Products: n, Seed: cfg.Seed})
	})
}

// Fig13dGOTTA reproduces Figure 13d: GOTTA at 1, 4 and 16 paragraphs.
func Fig13dGOTTA(cfg Config) ([]ScalePoint, error) {
	cfg = cfg.normalize()
	paper := map[int][2]float64{1: {163.22, 64.14}, 4: {463.96, 149.45}, 16: {1389.93, 460.13}}
	// Paragraph counts are small already; do not scale them down.
	return runScale(Config{RunConfig: cfg.RunConfig, Scale: 1, Seed: cfg.Seed}, []int{1, 4, 16}, paper, func(n int) (core.Task, error) {
		return gotta.New(gotta.Params{Paragraphs: n, Seed: cfg.Seed})
	})
}

// ---------------------------------------------------------------------------
// E8..E10 — Figure 14: execution time versus worker count.

// WorkerPoint is one worker count's times under both paradigms,
// together with the paper's "number of parallel processes" metric.
type WorkerPoint struct {
	Workers       int
	Script        float64
	Workflow      float64
	PaperScript   float64
	PaperWorkflow float64
	// ScriptProcs is the peak number of concurrently running Ray
	// tasks; WorkflowProcs the per-operator worker count.
	ScriptProcs   int
	WorkflowProcs int
}

// runWorkers measures one task across worker counts.
func runWorkers(cfg Config, task core.Task, paper map[int][2]float64) ([]WorkerPoint, error) {
	var out []WorkerPoint
	for _, workers := range []int{1, 2, 4} {
		rc := cfg.RunConfig
		rc.Workers = workers
		s, w, err := core.RunBoth(task, rc)
		if err != nil {
			return nil, err
		}
		p := paper[workers]
		out = append(out, WorkerPoint{
			Workers: workers, Script: s.SimSeconds, Workflow: w.SimSeconds,
			PaperScript: p[0], PaperWorkflow: p[1],
			ScriptProcs: s.ParallelProcs, WorkflowProcs: w.ParallelProcs,
		})
	}
	return out, nil
}

// Fig14aDICE reproduces Figure 14a: DICE at 200 pairs with 1, 2 and 4
// workers.
func Fig14aDICE(cfg Config) ([]WorkerPoint, error) {
	cfg = cfg.normalize()
	task, err := dice.New(dice.Params{Pairs: cfg.scaled(200), Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	return runWorkers(cfg, task, map[int][2]float64{
		1: {239.54, 107.82}, 2: {148.04, 87.13}, 4: {85.65, 57.21},
	})
}

// Fig14bGOTTA reproduces Figure 14b: GOTTA at 4 paragraphs with 1, 2
// and 4 workers.
func Fig14bGOTTA(cfg Config) ([]WorkerPoint, error) {
	cfg = cfg.normalize()
	task, err := gotta.New(gotta.Params{Paragraphs: 4, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	return runWorkers(cfg, task, map[int][2]float64{
		1: {463.96, 149.45}, 2: {234.68, 104.16}, 4: {139.66, 83.37},
	})
}

// Fig14cKGE reproduces Figure 14c: KGE at 68k products with 1, 2 and 4
// workers.
func Fig14cKGE(cfg Config) ([]WorkerPoint, error) {
	cfg = cfg.normalize()
	task, err := kge.New(kge.Params{Products: cfg.scaled(68000), Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	return runWorkers(cfg, task, map[int][2]float64{
		1: {975.46, 1350.50}, 2: {459.46, 618.39}, 4: {273.89, 383.58},
	})
}

// ---------------------------------------------------------------------------

// IDs lists the experiment identifiers in run order. The ablations at
// the end are this reproduction's additions: they isolate the
// cost-model mechanisms behind each headline comparison.
var IDs = []string{
	"table1", "fig12a", "fig12b",
	"fig13a", "fig13b", "fig13c", "fig13d",
	"fig14a", "fig14b", "fig14c",
	"recovery", "iterate", "serving", "scale",
	"ablation-torch", "ablation-store", "ablation-serde", "ablation-batch",
	"autotune", "ext-spreadsheet", "optimize",
}

// Describe returns a one-line description of an experiment ID.
func Describe(id string) (string, error) {
	desc := map[string]string{
		"table1":          "Table I — KGE with Python vs. Scala join operators",
		"fig12a":          "Figure 12a — lines of code per task per paradigm",
		"fig12b":          "Figure 12b — KGE time vs. number of workflow operators",
		"fig13a":          "Figure 13a — DICE time vs. dataset size",
		"fig13b":          "Figure 13b — WEF time vs. dataset size",
		"fig13c":          "Figure 13c — KGE time vs. dataset size",
		"fig13d":          "Figure 13d — GOTTA time vs. dataset size",
		"fig14a":          "Figure 14a — DICE time vs. workers",
		"fig14b":          "Figure 14b — GOTTA time vs. workers",
		"fig14c":          "Figure 14c — KGE time vs. workers",
		"recovery":        "Recovery — DICE makespan vs. fault rate per paradigm (checkpointing armed)",
		"iterate":         "Iterate — edit-and-rerun makespan, cold vs. incremental, per paradigm (lineage store armed)",
		"serving":         "Serving — p50/p99 latency, goodput and per-tenant fairness vs offered load under the fair-share scheduler",
		"scale":           "Scale — DICE at 10-100x paper size across node counts: makespan, shuffle and spill, digests pinned to the single-cluster run",
		"ablation-torch":  "Ablation — GOTTA script with and without Ray's 1-CPU torch pin",
		"ablation-store":  "Ablation — GOTTA script under swept object-store rates",
		"ablation-serde":  "Ablation — DICE workflow under swept serde throughput",
		"ablation-batch":  "Ablation — DICE workflow batching: auto-tuned vs whole-table",
		"autotune":        "Aspect #2 demo — engine-side worker allocation on DICE (16-core budget)",
		"ext-spreadsheet": "Extension — KGE under the third paradigm (spreadsheet) vs. script and workflow",
		"optimize":        "Optimizer — cost-based plan rewriting on/off per task and topology: makespans, applied rewrites, output digests asserted bit-equal",
	}
	d, ok := desc[id]
	if !ok {
		return "", fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return d, nil
}
