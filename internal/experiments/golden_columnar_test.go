package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/tasks/dice"
	"repro/internal/tasks/gotta"
	"repro/internal/tasks/kge"
	"repro/internal/tasks/wef"
)

// The columnar execution layer is a pure representation change: every
// fast path it adds (vectorized join, group-by, digest, encode) must
// compute the same bytes the row path computes. These tests run all
// four tasks under both paradigms twice — once with the columnar fast
// paths disabled (the pre-columnar row engine) and once enabled — and
// assert the runs are bit-identical: same simulated seconds, same
// output digest. This is the cross-representation guard the golden
// determinism tests (which compare run to run within one engine
// configuration) cannot provide.

func assertColumnarBitEqual(t *testing.T, name string, mk func() (core.Task, error)) {
	t.Helper()
	run := func(paradigm core.Paradigm, columnar bool) (float64, uint64) {
		prev := relation.SetColumnarEnabled(columnar)
		defer relation.SetColumnarEnabled(prev)
		task, err := mk()
		if err != nil {
			t.Fatalf("%s: build task: %v", name, err)
		}
		res, err := task.Run(paradigm, core.RunConfig{})
		if err != nil {
			t.Fatalf("%s: run (columnar=%v): %v", name, columnar, err)
		}
		// Digest with the fast paths still toggled, so a columnar run
		// digests through colDigest and a row run through the encoder.
		return res.SimSeconds, relation.Digest(res.Output)
	}
	for _, p := range []core.Paradigm{core.Script, core.Workflow} {
		rowSecs, rowDigest := run(p, false)
		colSecs, colDigest := run(p, true)
		if rowSecs != colSecs {
			t.Errorf("%s/%v: SimSeconds differ row vs columnar: %v vs %v", name, p, rowSecs, colSecs)
		}
		if rowDigest != colDigest {
			t.Errorf("%s/%v: output digests differ row vs columnar: %#x vs %#x", name, p, rowDigest, colDigest)
		}
	}
}

func TestColumnarDICEBitEqual(t *testing.T) {
	assertColumnarBitEqual(t, "dice", func() (core.Task, error) {
		return dice.New(dice.Params{Pairs: 10, Seed: 1})
	})
}

func TestColumnarKGEBitEqual(t *testing.T) {
	assertColumnarBitEqual(t, "kge", func() (core.Task, error) {
		return kge.New(kge.Params{Products: 340, Seed: 1})
	})
}

func TestColumnarGOTTABitEqual(t *testing.T) {
	assertColumnarBitEqual(t, "gotta", func() (core.Task, error) {
		return gotta.New(gotta.Params{Paragraphs: 4, Seed: 1})
	})
}

func TestColumnarWEFBitEqual(t *testing.T) {
	assertColumnarBitEqual(t, "wef", func() (core.Task, error) {
		return wef.New(wef.Params{Tweets: 200, Seed: 1})
	})
}
