package experiments

import (
	"bytes"
	"testing"

	"repro/internal/telemetry"
)

// The telemetry golden tests extend the E4/E6 determinism guard to the
// observability layer: running the same task twice with tracing on
// must export bit-identical Chrome traces and metrics dumps. Virtual
// spans come from the sim schedule and counters from exact data
// volumes; if either export drifts between runs, nondeterminism (or a
// wall-clock value) has leaked into the deterministic path.

func assertTelemetryGolden(t *testing.T, task string, cfg Config) {
	t.Helper()
	export := func() (trace, metrics []byte) {
		rec, err := Trace(task, cfg)
		if err != nil {
			t.Fatalf("%s: trace run: %v", task, err)
		}
		var tb, mb bytes.Buffer
		if err := rec.WriteChromeTrace(&tb, telemetry.ExportOptions{}); err != nil {
			t.Fatalf("%s: chrome trace export: %v", task, err)
		}
		if err := rec.WriteMetrics(&mb, false); err != nil {
			t.Fatalf("%s: metrics export: %v", task, err)
		}
		if tb.Len() == 0 || mb.Len() == 0 {
			t.Fatalf("%s: empty telemetry export", task)
		}
		return tb.Bytes(), mb.Bytes()
	}
	t1, m1 := export()
	t2, m2 := export()
	if !bytes.Equal(t1, t2) {
		t.Errorf("%s: Chrome traces differ between identical runs (%d vs %d bytes)", task, len(t1), len(t2))
	}
	if !bytes.Equal(m1, m2) {
		t.Errorf("%s: metrics dumps differ between identical runs:\n--- run 1\n%s\n--- run 2\n%s", task, m1, m2)
	}
}

func TestGoldenDICETelemetryDeterministic(t *testing.T) {
	assertTelemetryGolden(t, "dice", Config{Scale: 20, Seed: 1})
}

func TestGoldenKGETelemetryDeterministic(t *testing.T) {
	assertTelemetryGolden(t, "kge", Config{Scale: 20, Seed: 1})
}
