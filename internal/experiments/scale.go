package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/relation"
)

// ---------------------------------------------------------------------------
// E14 — distributed scale-out: breaking the 32-vCPU ceiling.
//
// The paper's cluster is one machine's worth of workers; the sharded
// tier asks what happens when the same workloads grow 10–100× and the
// only way out is more nodes. DICE is run at multiples of its largest
// paper size across node counts, under both paradigms, with the
// topology's per-worker memory budget set low enough that the largest
// factor's blocking operators take the grace spill path. Each row
// reports makespan plus the two costs that exist only on the sharded
// tier — exchange bytes crossing the NIC and bytes spilled to disk —
// and asserts the tier's core invariant: sharding prices the schedule,
// never the data, so every topology's output digest is bit-identical
// to the single-cluster run, including under whole-node loss.

// ScaleFactors are the dataset multiples of the paper's largest DICE
// size (200 pairs) the experiment sweeps.
var ScaleFactors = []int{10, 100}

// ScaleNodes is the node-count sweep; 1 is the legacy single-cluster
// tier, the rest are sharded topologies of 8-vCPU nodes.
var ScaleNodes = []int{1, 4, 16}

// ScaleSpillBudget is the per-worker state budget (bytes) the sharded
// rows run under at paper scale — calibrated so the 10× factor stays
// in memory and the 100× factor's join build sides spill on the
// narrow topologies (more nodes bring more aggregate memory, so the
// spill recedes as the cluster widens). Config.Scale shrinks the
// budget with the datasets, preserving that shape in quick runs.
const ScaleSpillBudget = 128 << 10

// ScaleRow is one (factor, nodes) cell of the scale-out grid.
type ScaleRow struct {
	// Factor multiplies the 200-pair paper size; Pairs is the resulting
	// dataset size after Config.Scale shrinking.
	Factor int
	Pairs  int
	// Nodes and Workers describe the topology: 8 workers per node,
	// nodes=1 meaning the legacy paper cluster.
	Nodes   int
	Workers int
	// Script and Workflow are makespans in simulated seconds.
	Script   float64
	Workflow float64
	// ShuffleBytes totals exchange bytes crossing the NIC (workflow
	// trace; ScriptShuffleBytes the script paradigm's object-store
	// cross-node fetches). SpillBytes totals the workflow's grace-spill
	// writes. All three are zero on the legacy tier.
	ShuffleBytes       int64
	ScriptShuffleBytes int64
	SpillBytes         int64
	// OutputsAgree: script and workflow outputs match at this topology.
	// DigestsStable: both paradigms' outputs are bit-identical to the
	// nodes=1 baseline. NodeLossStable: the workflow output survives a
	// whole-node-loss fault plan bit-identically (checked on the
	// largest node count; vacuously true elsewhere).
	OutputsAgree   bool
	DigestsStable  bool
	NodeLossStable bool
}

// Scale runs the E14 grid: DICE at each factor across the node sweep.
func Scale(cfg Config) ([]ScaleRow, error) {
	cfg = cfg.normalize()
	budget := int64(ScaleSpillBudget / cfg.Scale)
	if budget < 1 {
		budget = 1
	}
	var out []ScaleRow
	for _, factor := range ScaleFactors {
		pairs := cfg.scaled(200 * factor)
		var wantS, wantW uint64
		for i, nodes := range ScaleNodes {
			workers := 8 * nodes
			if nodes <= 1 {
				workers = 8
			}
			rc, err := cfg.RunConfig.With(
				core.WithWorkers(workers),
				core.WithNodes(nodes),
				core.WithShardMem(budget),
			)
			if err != nil {
				return nil, err
			}
			task, err := core.NewTask("dice", pairs, cfg.Seed)
			if err != nil {
				return nil, err
			}
			s, w, err := core.RunBoth(task, rc)
			if err != nil {
				return nil, err
			}
			ds, dw := relation.Digest(s.Output), relation.Digest(w.Output)
			if i == 0 {
				wantS, wantW = ds, dw
			}
			row := ScaleRow{
				Factor:             factor,
				Pairs:              pairs,
				Nodes:              nodes,
				Workers:            workers,
				Script:             s.SimSeconds,
				Workflow:           w.SimSeconds,
				ShuffleBytes:       w.Trace.ShuffleBytes,
				ScriptShuffleBytes: s.Trace.ShuffleBytes,
				SpillBytes:         w.Trace.SpillBytes,
				OutputsAgree:       s.Output.Equal(w.Output),
				DigestsStable:      ds == wantS && dw == wantW,
				NodeLossStable:     true,
			}
			// On the widest topology, lose whole nodes mid-run and
			// require the recovered output bit-identical to the
			// fault-free baseline.
			if nodes == ScaleNodes[len(ScaleNodes)-1] {
				plan := faults.Plan{Seed: cfg.Seed, Rate: 2, NodeFraction: 1, MaxFaults: 4}
				frc, err := rc.With(core.WithFaults(plan))
				if err != nil {
					return nil, err
				}
				ftask, err := core.NewTask("dice", pairs, cfg.Seed)
				if err != nil {
					return nil, err
				}
				fs, fw, err := core.RunBoth(ftask, frc)
				if err != nil {
					return nil, err
				}
				row.NodeLossStable = relation.Digest(fs.Output) == wantS &&
					relation.Digest(fw.Output) == wantW
			}
			if !row.DigestsStable {
				return nil, fmt.Errorf("experiments: scale factor %d nodes %d changed the output digest", factor, nodes)
			}
			out = append(out, row)
		}
	}
	return out, nil
}
