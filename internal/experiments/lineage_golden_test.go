package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/lineage"
	"repro/internal/relation"
	"repro/internal/tasks/dice"
	"repro/internal/tasks/kge"
)

// The lineage golden tests extend the determinism guarantee to the
// edit-and-rerun loop: a task run against a persistent artifact store,
// edited and re-run, must produce outputs bit-identical to a cold run
// of the same edited pipeline — and the entire edit sequence must be
// bit-reproducible (same SimSeconds, same digests) when repeated from a
// fresh store. Incremental execution may only change how much work
// re-runs, never what the pipeline computes.

type editStep struct {
	revs map[string]int
}

// runEditSequence executes an edit sequence for one task under one
// paradigm against a fresh store, returning per-step (SimSeconds,
// output digest) pairs alongside the cold reference digests.
func runEditSequence(t *testing.T, name string, paradigm core.Paradigm, mk func() (core.Task, error), steps []editStep) (secs []float64, digests, coldDigests []uint64) {
	t.Helper()
	task, err := mk()
	if err != nil {
		t.Fatalf("%s: build task: %v", name, err)
	}
	ed, ok := task.(interface{ SetEdits(map[string]int) })
	if !ok {
		t.Fatalf("%s: task does not accept edits", name)
	}
	store, err := lineage.NewStore(nil, 0)
	if err != nil {
		t.Fatalf("%s: new store: %v", name, err)
	}
	for _, step := range steps {
		ed.SetEdits(step.revs)
		inc, err := task.Run(paradigm, core.RunConfig{Lineage: store})
		if err != nil {
			t.Fatalf("%s: incremental run: %v", name, err)
		}
		if inc.Lineage == nil {
			t.Fatalf("%s: incremental run has no lineage report", name)
		}
		cold, err := task.Run(paradigm, core.RunConfig{})
		if err != nil {
			t.Fatalf("%s: cold run: %v", name, err)
		}
		secs = append(secs, inc.SimSeconds)
		digests = append(digests, relation.Digest(inc.Output))
		coldDigests = append(coldDigests, relation.Digest(cold.Output))
	}
	return secs, digests, coldDigests
}

func assertLineageGolden(t *testing.T, name string, mk func() (core.Task, error), steps []editStep) {
	t.Helper()
	for _, paradigm := range []core.Paradigm{core.Script, core.Workflow} {
		s1, d1, cold := runEditSequence(t, name, paradigm, mk, steps)
		s2, d2, _ := runEditSequence(t, name, paradigm, mk, steps)
		for i := range steps {
			if d1[i] != cold[i] {
				t.Errorf("%s/%s step %d: incremental output %#x != cold output %#x",
					name, paradigm, i, d1[i], cold[i])
			}
			if d1[i] != d2[i] {
				t.Errorf("%s/%s step %d: output digests differ across sequence repeats: %#x vs %#x",
					name, paradigm, i, d1[i], d2[i])
			}
			if s1[i] != s2[i] {
				t.Errorf("%s/%s step %d: SimSeconds differ across sequence repeats: %v vs %v",
					name, paradigm, i, s1[i], s2[i])
			}
		}
	}
}

func TestGoldenDICELineageEditAndRerun(t *testing.T) {
	assertLineageGolden(t, "dice", func() (core.Task, error) {
		return dice.New(dice.Params{Pairs: 10, Seed: 1})
	}, []editStep{
		{revs: map[string]int{}},
		{revs: map[string]int{"split": 1}},
		{revs: map[string]int{"split": 1, "parse": 1}},
		{revs: map[string]int{"split": 1, "parse": 1, "write": 1}},
	})
}

func TestGoldenKGELineageEditAndRerun(t *testing.T) {
	assertLineageGolden(t, "kge", func() (core.Task, error) {
		return kge.New(kge.Params{Products: 340, Seed: 1})
	}, []editStep{
		{revs: map[string]int{}},
		{revs: map[string]int{"compute-distance": 1}},
		{revs: map[string]int{"compute-distance": 1, "embedding-join": 1}},
		{revs: map[string]int{"compute-distance": 1, "embedding-join": 1, "rank-topk": 1}},
	})
}
