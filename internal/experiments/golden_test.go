package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/tasks/dice"
	"repro/internal/tasks/kge"
)

// The golden-determinism tests run one small configuration of the E4
// (Fig13aDICE) and E6 (Fig13cKGE) workloads twice and assert the runs
// are bit-identical: same SimSeconds, same trace totals, same output
// digest. They are the regression guard for the executor's hot-path
// work — sharded work accounting, the partitioned join, the ring-buffer
// queues — none of which may change what a run computes, only how fast
// the wall clock ticks while it computes it.

func assertGolden(t *testing.T, name string, mk func() (core.Task, error)) {
	t.Helper()
	run := func() *core.Result {
		task, err := mk()
		if err != nil {
			t.Fatalf("%s: build task: %v", name, err)
		}
		res, err := task.Run(core.Workflow, core.RunConfig{})
		if err != nil {
			t.Fatalf("%s: run: %v", name, err)
		}
		return res
	}
	a, b := run(), run()
	if a.SimSeconds != b.SimSeconds {
		t.Errorf("%s: SimSeconds differ between runs: %v vs %v", name, a.SimSeconds, b.SimSeconds)
	}
	if a.Trace != b.Trace {
		t.Errorf("%s: trace totals differ between runs:\n  %+v\n  %+v", name, a.Trace, b.Trace)
	}
	if a.Trace.Nodes == 0 {
		t.Errorf("%s: workflow run has empty trace totals", name)
	}
	da, db := relation.Digest(a.Output), relation.Digest(b.Output)
	if da != db {
		t.Errorf("%s: output digests differ between runs: %#x vs %#x", name, da, db)
	}
}

func TestGoldenDICEWorkflowDeterministic(t *testing.T) {
	assertGolden(t, "dice", func() (core.Task, error) {
		return dice.New(dice.Params{Pairs: 10, Seed: 1})
	})
}

func TestGoldenKGEWorkflowDeterministic(t *testing.T) {
	assertGolden(t, "kge", func() (core.Task, error) {
		return kge.New(kge.Params{Products: 340, Seed: 1})
	})
}
