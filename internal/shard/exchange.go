package shard

import "repro/internal/cost"

// Exchange identifies how an edge repartitions data across nodes. It
// mirrors the dataflow partitioning kinds: hash and range exchanges
// scatter each producer's output across all nodes, broadcast replicates
// it to every other node, and a local exchange (round-robin within a
// node's worker pool, or a 1→1 pipe) never crosses the NIC.
type Exchange int

const (
	// ExLocal stays on-node: pipelined round-robin or direct edges.
	ExLocal Exchange = iota
	// ExHash scatters by key hash — the shuffle behind joins/group-bys.
	ExHash
	// ExRange scatters by key range — sort/merge style repartitioning.
	// Priced identically to hash (same expected cross-node fraction).
	ExRange
	// ExBroadcast replicates the full stream to every node.
	ExBroadcast
)

// String returns the exchange kind's name.
func (e Exchange) String() string {
	switch e {
	case ExLocal:
		return "local"
	case ExHash:
		return "hash"
	case ExRange:
		return "range"
	case ExBroadcast:
		return "broadcast"
	default:
		return "exchange(?)"
	}
}

// CrossBytes returns how many of bytes cross the NIC when an exchange
// of this kind runs over nodes nodes. Hash/range scatter uniformly, so
// the expected cross-node fraction is (nodes-1)/nodes — a producer
// keeps only its own shard local. Broadcast sends a full copy to each
// of the other nodes. With one node nothing leaves the machine.
func (e Exchange) CrossBytes(bytes int64, nodes int) int64 {
	if nodes <= 1 || bytes <= 0 {
		return 0
	}
	switch e {
	case ExHash, ExRange:
		return bytes * int64(nodes-1) / int64(nodes)
	case ExBroadcast:
		return bytes * int64(nodes-1)
	default:
		return 0
	}
}

// Seconds prices the exchange's cross-node traffic at the model's NIC
// rate via cost.Model.ShuffleSeconds.
func (e Exchange) Seconds(m *cost.Model, bytes int64, nodes int) float64 {
	return m.ShuffleSeconds(e.CrossBytes(bytes, nodes))
}

// BroadcastWins reports whether broadcasting a join's build side beats
// hash-repartitioning both sides on an n-node topology: replicating
// buildBytes to every other node versus scattering build and probe
// alike. A small build side against a large probe side is the classic
// broadcast-join case — the probe stream stays where it was produced
// and never crosses the NIC.
func BroadcastWins(m *cost.Model, buildBytes, probeBytes int64, nodes int) bool {
	if nodes <= 1 {
		return false
	}
	broadcast := ExBroadcast.Seconds(m, buildBytes, nodes)
	repartition := ExHash.Seconds(m, buildBytes, nodes) + ExHash.Seconds(m, probeBytes, nodes)
	return broadcast < repartition
}
