package shard

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/objstore"
)

// SpillFanout is the partition count of one grace-hash pass: state is
// hash-partitioned into this many spill files, each built and probed
// independently. Classic grace/hybrid hash joins use small two-digit
// fanouts so partition files stream sequentially on disk.
const SpillFanout = 8

// SpillPlan is the priced outcome of running one blocking operator's
// state (hash-join build side, group-by table) through the grace
// partition-wise build/probe path under a worker memory budget.
type SpillPlan struct {
	// StateBytes is the operator state the plan covered; BudgetBytes
	// the per-worker memory budget it had to fit into.
	StateBytes  int64
	BudgetBytes int64
	// Partitions is the total number of partition files created,
	// counting recursive sub-partitions.
	Partitions int
	// Passes counts build/probe passes over the data: 1 = fully
	// in-memory (no spill), 2 = one grace pass, 3 = at least one
	// skewed partition needed recursive repartitioning.
	Passes int
	// SpilledBytes totals bytes written to the disk spill path.
	SpilledBytes int64
	// Seconds is the simulated extra time the spill path cost: spill
	// writes, restore reads and repartition passes, beyond what the
	// in-memory build/probe already pays.
	Seconds float64
}

// Spilled reports whether the plan left memory at all.
func (p SpillPlan) Spilled() bool { return p.Passes > 1 }

// PlanSpill prices a grace hash build/probe of state bytes under a
// per-worker budget, with partition files held in an objstore whose
// capacity is the budget — LRU residency in that store decides which
// partitions stay hybrid-resident and which pay disk writes and
// restore reads.
//
// skew is the fraction of state landing in the hottest partition;
// values at or below the uniform share (1/SpillFanout) mean no skew.
// A skewed partition that alone exceeds the budget is recursively
// repartitioned: its file is read back, re-scattered into SpillFanout
// sub-files and re-written (the classic recursive-partitioning pass),
// raising Passes to 3.
//
// The plan is a pure function of its arguments — no randomness, no
// wall clock — so sharded schedules stay deterministic.
func PlanSpill(m *cost.Model, state, budget int64, skew float64) (SpillPlan, error) {
	if m == nil {
		m = cost.Default()
	}
	p := SpillPlan{StateBytes: state, BudgetBytes: budget, Passes: 1}
	if state <= 0 || budget <= 0 || state <= budget {
		return p, nil // fits in memory, or spill modeling disabled
	}
	store, err := objstore.New(m, budget)
	if err != nil {
		return p, err
	}

	// Partition sizes: the hottest partition takes the skewed share,
	// the rest split the remainder evenly. Integer remainders go to the
	// last partition so sizes always sum to state.
	sizes := make([]int64, SpillFanout)
	hot := int64(float64(state) * skew)
	if uniform := state / SpillFanout; hot < uniform {
		hot = uniform
	}
	if hot > state {
		hot = state
	}
	sizes[0] = hot
	rest := state - hot
	for i := 1; i < SpillFanout; i++ {
		sizes[i] = rest / int64(SpillFanout-1)
	}
	sizes[SpillFanout-1] += rest - rest/int64(SpillFanout-1)*int64(SpillFanout-1)

	// Build pass: write each partition file through the store. LRU
	// eviction prices hybrid residency — early partitions may stay in
	// memory until later ones push them out.
	for i, sz := range sizes {
		if sz <= 0 {
			continue
		}
		p.Partitions++
		secs, err := store.Put(objstore.ID(fmt.Sprintf("part-%d", i)), sz)
		if err != nil {
			return p, err
		}
		p.Seconds += secs
	}
	p.Passes = 2

	// Recursive repartitioning: a partition that alone exceeds the
	// budget cannot be probed in memory — read it back, re-scatter into
	// sub-files, re-write. One extra disk read + write of its bytes.
	for _, sz := range sizes {
		if sz <= budget {
			continue
		}
		p.Passes = 3
		p.Partitions += SpillFanout - 1 // the file becomes SpillFanout sub-files
		p.Seconds += m.GetSeconds(sz, true) + m.PutSeconds(sz, true)
		p.SpilledBytes += sz // the re-written copy
	}

	// Probe pass: read every partition back in order; restores from the
	// spill path pay the disk rate.
	for i, sz := range sizes {
		if sz <= 0 {
			continue
		}
		secs, err := store.Get(objstore.ID(fmt.Sprintf("part-%d", i)))
		if err != nil {
			return p, err
		}
		p.Seconds += secs
	}
	p.SpilledBytes += store.Stats().SpilledBytes
	return p, nil
}
