package shard

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/cost"
)

func TestTopologyTiers(t *testing.T) {
	legacy, err := Single().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Sharded() {
		t.Fatal("nodes=1 must be the legacy tier")
	}
	if got := legacy.TotalVCPUs(); got != cluster.PaperWorkerVCPUs {
		t.Fatalf("legacy vCPU ceiling = %d, want %d", got, cluster.PaperWorkerVCPUs)
	}
	if legacy.WorkerMem() != 0 {
		t.Fatal("legacy tier must never spill (WorkerMem 0)")
	}
	if c := legacy.Cluster(); c.TotalWorkerCPUs() != cluster.Paper().TotalWorkerCPUs() {
		t.Fatal("legacy tier must schedule onto the paper cluster")
	}

	wide, err := Of(16).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !wide.Sharded() {
		t.Fatal("nodes=16 must be sharded")
	}
	if got := wide.TotalVCPUs(); got != 16*cluster.NodeVCPUs {
		t.Fatalf("sharded vCPU ceiling = %d, want %d", got, 16*cluster.NodeVCPUs)
	}
	if wide.WorkerMem() <= 0 {
		t.Fatal("sharded tier must derive a positive worker budget")
	}
	if _, err := (Topology{Nodes: 2, WorkerMemBytes: -1}).Normalize(); err == nil {
		t.Fatal("negative budget normalized without error")
	}
}

func TestSplitOwnerInverse(t *testing.T) {
	for _, nodes := range []int{1, 2, 3, 4, 7, 16} {
		topo := Of(nodes)
		for _, n := range []int{0, 1, 5, 16, 97, 1000} {
			parts := topo.Split(n)
			if len(parts) != topo.NumNodes() {
				t.Fatalf("Split(%d) over %d nodes returned %d parts", n, nodes, len(parts))
			}
			sum, min, max := 0, n, 0
			for _, p := range parts {
				sum += p
				if p < min {
					min = p
				}
				if p > max {
					max = p
				}
			}
			if sum != n {
				t.Fatalf("Split(%d) over %d nodes sums to %d", n, nodes, sum)
			}
			if n > 0 && max-min > 1 {
				t.Fatalf("Split(%d) over %d nodes is unbalanced: %v", n, nodes, parts)
			}
			// Owner must agree with the contiguous ranges Split defines.
			i := 0
			for node, count := range parts {
				for k := 0; k < count; k++ {
					if got := topo.Owner(i, n); got != node {
						t.Fatalf("Owner(%d, %d) over %d nodes = %d, want %d", i, n, nodes, got, node)
					}
					i++
				}
			}
		}
	}
}

func TestCrossBytes(t *testing.T) {
	const b = 1000
	cases := []struct {
		ex    Exchange
		nodes int
		want  int64
	}{
		{ExLocal, 4, 0},
		{ExHash, 1, 0},
		{ExHash, 4, 750},
		{ExRange, 4, 750},
		{ExHash, 10, 900},
		{ExBroadcast, 4, 3000},
		{ExBroadcast, 1, 0},
	}
	for _, c := range cases {
		if got := c.ex.CrossBytes(b, c.nodes); got != c.want {
			t.Errorf("%s.CrossBytes(%d, %d) = %d, want %d", c.ex, b, c.nodes, got, c.want)
		}
	}
	// More nodes cross more bytes, approaching (never reaching) all of
	// them for hash exchanges.
	prev := int64(-1)
	for nodes := 1; nodes <= 64; nodes++ {
		got := ExHash.CrossBytes(1<<20, nodes)
		if got < prev {
			t.Fatalf("hash cross bytes decreased at %d nodes", nodes)
		}
		if got >= 1<<20 {
			t.Fatalf("hash exchange crossed all bytes at %d nodes", nodes)
		}
		prev = got
	}
}

func TestPlanSpill(t *testing.T) {
	m := cost.Default()
	skew := 2.0 / SpillFanout

	// Fits in memory: no spill, no cost.
	p, err := PlanSpill(m, 1<<20, 1<<21, skew)
	if err != nil {
		t.Fatal(err)
	}
	if p.Spilled() || p.Seconds != 0 || p.SpilledBytes != 0 {
		t.Fatalf("in-memory state produced a spill plan: %+v", p)
	}

	// Over budget: one grace pass, real cost. At 4x budget the hot
	// partition (2/8 of state) exactly fits, so no recursion.
	p, err = PlanSpill(m, 4<<20, 1<<20, skew)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Spilled() || p.Passes != 2 {
		t.Fatalf("4 MiB over a 1 MiB budget should take one grace pass: %+v", p)
	}
	if p.SpilledBytes == 0 || p.Seconds <= 0 {
		t.Fatalf("grace pass priced nothing: %+v", p)
	}

	// Heavy skew: the hot partition alone exceeds the budget and is
	// recursively repartitioned.
	pr, err := PlanSpill(m, 4<<20, 1<<20, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Passes != 3 {
		t.Fatalf("hot partition over budget should recurse: %+v", pr)
	}
	if pr.Seconds <= p.Seconds {
		t.Fatal("recursive repartitioning must cost more than one pass")
	}

	// Determinism: identical inputs, identical plans.
	again, err := PlanSpill(m, 4<<20, 1<<20, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if again != pr {
		t.Fatalf("PlanSpill is not deterministic: %+v != %+v", again, pr)
	}

	// Monotonicity: more state never costs less.
	prevSecs := -1.0
	for _, state := range []int64{2 << 20, 4 << 20, 8 << 20, 16 << 20, 32 << 20} {
		p, err := PlanSpill(m, state, 1<<20, skew)
		if err != nil {
			t.Fatal(err)
		}
		if p.Seconds < prevSecs {
			t.Fatalf("spill cost decreased at state %d", state)
		}
		prevSecs = p.Seconds
	}
}
