// Package shard models datum-sharded multi-node execution: the tier
// that breaks the paper cluster's 32-vCPU ceiling. A Topology describes
// N paper-shaped nodes; inputs are datum-sharded across them at plan
// time; repartitioning operators (hash/range/broadcast exchanges) are
// priced at the NIC rate through internal/cost; and larger-than-memory
// hash joins and group-bys take a grace-style partition-wise spill path
// through internal/objstore.
//
// Everything in this package acts on the schedule/cost plane only — the
// data plane still computes exact results in-process, so outputs are
// bit-identical across topologies (nodes=1, nodes=N, nodes=N with a
// node loss). That invariant is what the golden determinism tests pin.
package shard

import (
	"fmt"

	"repro/internal/cluster"
)

// Topology describes the simulated cluster a run schedules onto.
// The zero value (or Nodes <= 1) is the legacy single-cluster tier:
// the paper's flat 4×8-vCPU pool with no exchange pricing and no
// spill modeling.
type Topology struct {
	// Nodes is the worker-node count; <= 1 means the legacy paper tier.
	Nodes int
	// VCPUsPerNode and RAMPerNode are the node shape; zero means the
	// paper's node (8 vCPUs, 64 GB).
	VCPUsPerNode int
	RAMPerNode   int64
	// WorkerMemBytes is the per-worker operator-state budget before a
	// blocking operator (hash join build, group-by table) spills to
	// disk. Zero derives a default from the node shape: workers share
	// roughly 60% of node RAM, the rest belongs to the engine, OS page
	// cache and shuffle buffers.
	WorkerMemBytes int64
}

// Single returns the legacy single-cluster topology (the paper tier).
func Single() Topology { return Topology{Nodes: 1} }

// Of returns a topology of n paper-shaped nodes.
func Of(n int) Topology { return Topology{Nodes: n} }

// Normalize fills node-shape defaults and validates.
func (t Topology) Normalize() (Topology, error) {
	if t.Nodes <= 0 {
		t.Nodes = 1
	}
	if t.VCPUsPerNode == 0 {
		t.VCPUsPerNode = cluster.NodeVCPUs
	}
	if t.RAMPerNode == 0 {
		t.RAMPerNode = cluster.NodeRAM
	}
	if t.VCPUsPerNode < 0 || t.RAMPerNode < 0 || t.WorkerMemBytes < 0 {
		return t, fmt.Errorf("shard: negative topology dimension %+v", t)
	}
	return t, nil
}

// Sharded reports whether the topology is a genuine multi-node tier.
func (t Topology) Sharded() bool { return t.Nodes > 1 }

// NumNodes returns the worker-node count, treating the legacy tier as
// the paper's node count for placement purposes.
func (t Topology) NumNodes() int {
	if t.Nodes <= 0 {
		return 1
	}
	return t.Nodes
}

// TotalVCPUs returns the worker-vCPU ceiling of the topology: the
// paper budget for the legacy tier, nodes × per-node vCPUs beyond it.
func (t Topology) TotalVCPUs() int {
	if !t.Sharded() {
		return cluster.PaperWorkerVCPUs
	}
	per := t.VCPUsPerNode
	if per == 0 {
		per = cluster.NodeVCPUs
	}
	return t.Nodes * per
}

// Cluster materializes the topology as a cluster description. The
// legacy tier is exactly the paper cluster.
func (t Topology) Cluster() *cluster.Cluster {
	if !t.Sharded() {
		return cluster.Paper()
	}
	return cluster.Sized(t.Nodes)
}

// WorkerMem returns the per-worker state budget in bytes before spill,
// deriving the default when unset. The legacy tier never spills
// (returns 0 = unlimited): all state is assumed memory-resident, which
// is the pre-shard behaviour the golden tests pin.
func (t Topology) WorkerMem() int64 {
	if !t.Sharded() {
		return 0
	}
	if t.WorkerMemBytes > 0 {
		return t.WorkerMemBytes
	}
	ram := t.RAMPerNode
	if ram == 0 {
		ram = cluster.NodeRAM
	}
	vcpus := t.VCPUsPerNode
	if vcpus == 0 {
		vcpus = cluster.NodeVCPUs
	}
	return ram * 6 / 10 / int64(vcpus)
}

// Split datum-shards n items across the topology's nodes at plan time:
// contiguous ranges, remainder spread over the first nodes, so shard
// assignment is a pure function of (n, nodes) and every node's count
// differs by at most one. The returned slice has NumNodes entries
// summing to n.
func (t Topology) Split(n int) []int {
	nodes := t.NumNodes()
	out := make([]int, nodes)
	if n <= 0 {
		return out
	}
	base, rem := n/nodes, n%nodes
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// Owner returns the node owning datum i of n under contiguous-range
// sharding — the inverse of Split.
func (t Topology) Owner(i, n int) int {
	nodes := t.NumNodes()
	if n <= 0 || nodes <= 1 {
		return 0
	}
	base, rem := n/nodes, n%nodes
	// First rem nodes own base+1 datums each.
	cut := rem * (base + 1)
	if i < cut {
		return i / (base + 1)
	}
	if base == 0 {
		return nodes - 1
	}
	return rem + (i-cut)/base
}
