package lineage

import (
	"fmt"

	"repro/internal/notebook"
	"repro/internal/telemetry"
)

// NotebookSpec describes a notebook run to the store.
type NotebookSpec struct {
	// Scope identifies the notebook build ("script:dice[...]"); it is
	// part of every cell fingerprint.
	Scope string
	// Revs carries per-cell edit revisions: bumping Revs[cellName]
	// models editing that cell's source in a semantics-preserving way.
	Revs map[string]int
}

// RunNotebook executes a notebook top-down with cell-granularity reuse
// under stateful-kernel semantics. Each cell's fingerprint chains the
// previous cell's fingerprint (a Jupyter kernel is stateful: any
// earlier change can affect any later cell, whether or not data flows
// between them), so hits are always a prefix and an edit invalidates
// the edited cell plus everything after it in cell order.
//
// Hit cells are replayed with charges suppressed — their closures still
// run so the kernel state later cells read (variables, object-store
// contents) is rebuilt, but no simulated time accrues beyond the store
// fetch. Miss cells run normally and commit metadata-only artifacts:
// the script paradigm's cache remembers *that* a cell ran and how long
// it took, not a materialized table — the coarser reuse the paper
// describes.
func RunNotebook(s *Store, nb *notebook.Notebook, spec NotebookSpec, rec *telemetry.Recorder) (*RunReport, error) {
	run := s.Begin(spec.Scope, rec)
	cells := nb.Cells()
	run.SetUnits(len(cells))
	k := nb.Kernel()
	if run.rep.Warm {
		// The kernel from the previous iteration is still running; no
		// fresh interpreter launch to pay for.
		k.MarkWarm()
	}
	prev := uint64(NewHasher().Uint64(s.model.Digest()).String(spec.Scope).Sum())
	dirty := false
	for i, c := range cells {
		fp := NewHasher().
			Uint64(prev).
			Int(i).
			String(c.Name).
			String(c.Source).
			Int(spec.Revs[c.Name]).
			Sum()
		key := fmt.Sprintf("cell:%d:%s", i, c.Name)
		if !dirty {
			if a := run.Lookup(key, fp); a != nil {
				fetch := run.Fetch(a)
				if fetch > 0 {
					k.ChargeSeconds(fetch)
				}
				if err := nb.ReplayCell(i); err != nil {
					return run.Report(), err
				}
				prev = uint64(fp)
				continue
			}
			// First miss: everything after is dirty by kernel order —
			// later lookups would miss anyway (their chained fps moved),
			// but skipping them keeps invalidation counts meaningful:
			// only the frontier cell records the invalidation event.
			dirty = true
		} else {
			// Count the downstream re-runs the suffix rule forces.
			run.MissDownstream()
		}
		before := k.Elapsed()
		if err := nb.RunCell(i); err != nil {
			return run.Report(), err
		}
		run.CommitMeta(key, fp, k.Elapsed()-before)
		prev = uint64(fp)
	}
	return run.Report(), nil
}
