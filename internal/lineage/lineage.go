// Package lineage is a content-addressed, versioned artifact store with
// provenance-driven incremental re-execution — the mechanism behind the
// "iterate" workload. Every operator or notebook cell is identified by
// a deterministic fingerprint covering its identity, its parameters,
// the cost-model version, and the digests of its upstream artifacts
// (Pachyderm-style provenance with early cutoff: once an upstream is a
// hit, its output *digest* feeds the downstream fingerprint, so an edit
// whose recomputed output is bit-identical stops dirtying the DAG at
// that point). Materialized outputs are committed to a versioned repo
// backed by the simulated object store, with puts, gets, eviction and
// pinning all priced through the cost model.
//
// The two paradigms reuse at different granularities, faithfully to the
// paper: the workflow engine caches per operator and feeds cached
// results straight into downstream ports, while the script paradigm
// caches per cell under stateful-kernel semantics — an edited cell
// invalidates itself and every cell after it in cell order, even when
// the later cells are dataflow-independent of the edit.
//
// A Store is not safe for concurrent use; the executors consult it only
// from their single-threaded plan and finish phases.
package lineage

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/objstore"
	"repro/internal/relation"
	"repro/internal/telemetry"
)

// Fingerprint is the content address of one unit's output: a hash of
// the unit's identity, parameters, cost-model version and upstream
// provenance.
type Fingerprint uint64

// Hasher accumulates fingerprint components with FNV-1a, the same
// function relation.Digest uses, so table digests and identity strings
// mix consistently.
type Hasher struct{ h uint64 }

// NewHasher starts a fingerprint computation.
func NewHasher() *Hasher { return &Hasher{h: relation.FNVOffset64} }

// String folds a string component (length-prefixed via a separator so
// adjacent fields cannot alias).
func (h *Hasher) String(s string) *Hasher {
	h.h = relation.FNVMixUint64(h.h, uint64(len(s)))
	h.h = relation.FNVMixString(h.h, s)
	return h
}

// Uint64 folds a 64-bit component.
func (h *Hasher) Uint64(v uint64) *Hasher {
	h.h = relation.FNVMixUint64(h.h, v)
	return h
}

// Int folds an integer component.
func (h *Hasher) Int(v int) *Hasher { return h.Uint64(uint64(int64(v))) }

// Sum returns the accumulated fingerprint.
func (h *Hasher) Sum() Fingerprint { return Fingerprint(h.h) }

// Artifact is one committed, versioned output.
type Artifact struct {
	// Key is the stable unit name ("node:parse-annotations",
	// "cell:2:wrangle_chunks"); successive versions of a unit share it.
	Key string
	// FP is the content address this version was committed under.
	FP Fingerprint
	// Digest is relation.Digest of the materialized table (0 for
	// metadata-only artifacts).
	Digest uint64
	// Table is the materialized output; nil for metadata-only commits
	// (script cells publish results through kernel state, not tables).
	Table *relation.Table
	// Bytes is the encoded size priced through the object store.
	Bytes int64
	// Seconds is the simulated compute time the producing run spent on
	// this unit — what a cache hit saves.
	Seconds float64
}

// DefaultCapacity is the artifact repo's object-store budget.
const DefaultCapacity int64 = 512 << 20

// Stats aggregates store-lifetime activity across runs.
type Stats struct {
	Hits          int
	Misses        int
	Commits       int
	Invalidations int
	HitBytes      int64
	CommitBytes   int64
}

// Store is the versioned artifact repo. One Store spans many runs of
// (both paradigms of) one task; fingerprints keep the paradigms'
// entries from colliding because scope is part of every fingerprint.
type Store struct {
	model *cost.Model
	obj   *objstore.Store
	arts  map[Fingerprint]*Artifact
	// last maps a unit key to the fingerprint of its latest version,
	// so a miss can be classified as an invalidation (the unit existed,
	// its inputs changed) rather than first contact.
	last   map[string]Fingerprint
	seen   map[string]bool // scopes that have completed a run
	pinned []objstore.ID   // pins held for the current run
	stats  Stats
}

// NewStore creates a store backed by an object-store budget of
// capacity bytes (DefaultCapacity if <= 0). A nil model uses
// cost.Default().
func NewStore(model *cost.Model, capacity int64) (*Store, error) {
	if model == nil {
		model = cost.Default()
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	obj, err := objstore.New(model, capacity)
	if err != nil {
		return nil, err
	}
	return &Store{
		model: model,
		obj:   obj,
		arts:  make(map[Fingerprint]*Artifact),
		last:  make(map[string]Fingerprint),
		seen:  make(map[string]bool),
	}, nil
}

// Model returns the store's cost model.
func (s *Store) Model() *cost.Model { return s.model }

// Stats returns a copy of the lifetime counters.
func (s *Store) Stats() Stats { return s.stats }

// ObjectStats exposes the backing object store's activity (spills,
// restores, priced seconds).
func (s *Store) ObjectStats() objstore.Stats { return s.obj.Stats() }

// RunReport summarizes one run's interaction with the store.
type RunReport struct {
	// Scope identifies the run ("workflow:dice[...]", "script:kge[...]").
	Scope string
	// Units is the number of cacheable units the run planned over
	// (workflow nodes or notebook cells).
	Units int
	// Reused is the number of units served from the store.
	Reused int
	// Warm reports whether the scope had completed a run before, i.e.
	// whether start-up overhead was already paid.
	Warm          bool
	Hits          int
	Misses        int
	Commits       int
	Invalidations int
	// HitBytes is the artifact bytes fetched instead of recomputed.
	HitBytes int64
	// CommitBytes is the artifact bytes newly committed.
	CommitBytes int64
	// FetchSeconds and CommitSeconds are the simulated store taxes the
	// run paid; ReusedSeconds is the producing runs' compute time the
	// hits avoided re-spending.
	FetchSeconds  float64
	CommitSeconds float64
	ReusedSeconds float64
}

// ReuseRatio returns Reused/Units, or 0 for an empty run.
func (r *RunReport) ReuseRatio() float64 {
	if r == nil || r.Units == 0 {
		return 0
	}
	return float64(r.Reused) / float64(r.Units)
}

// Run is one executor's handle on the store for a single execution.
type Run struct {
	s     *Store
	rec   *telemetry.Recorder
	proc  string
	virt  float64 // run-local virtual cursor for span placement
	rep   RunReport
	begun bool
}

// Begin opens a run in the given scope. Pins held for the previous run
// are released first (a new iteration may evict the old one's
// artifacts if the budget demands it, but never its own). rec may be
// nil for an uninstrumented run.
func (s *Store) Begin(scope string, rec *telemetry.Recorder) *Run {
	for _, id := range s.pinned {
		// Unpin can only fail for missing IDs, which we put ourselves.
		_ = s.obj.Unpin(id) //lint:allow errdrop best-effort unpin of ids this store put itself
	}
	s.pinned = s.pinned[:0]
	r := &Run{
		s:    s,
		rec:  rec,
		proc: "lineage:" + scope,
		rep:  RunReport{Scope: scope, Warm: s.seen[scope]},
	}
	s.seen[scope] = true
	r.begun = true
	return r
}

// SetUnits records how many cacheable units the run plans over.
func (r *Run) SetUnits(n int) { r.rep.Units = n }

// Lookup consults the store for key at fingerprint fp. A miss on a key
// the store has seen before counts as an invalidation: the unit's
// provenance changed.
func (r *Run) Lookup(key string, fp Fingerprint) *Artifact {
	if a, ok := r.s.arts[fp]; ok {
		r.s.stats.Hits++
		r.rep.Hits++
		r.rep.Reused++
		r.rep.ReusedSeconds += a.Seconds
		r.count("hits", 1)
		return a
	}
	r.s.stats.Misses++
	r.rep.Misses++
	r.count("misses", 1)
	if prev, ok := r.s.last[key]; ok && prev != fp {
		r.s.stats.Invalidations++
		r.rep.Invalidations++
		r.count("invalidations", 1)
		r.span("invalidate:"+key, "invalidate", 0)
	}
	return nil
}

// Fetch prices reading a hit artifact out of the repo, pinning it for
// the remainder of the run. Metadata-only artifacts are free.
func (r *Run) Fetch(a *Artifact) float64 {
	if a.Bytes <= 0 {
		r.span("hit:"+a.Key, "hit", 0)
		return 0
	}
	id := artifactID(a.Key, a.FP)
	secs, err := r.s.obj.Get(id)
	if err != nil {
		// The artifact map and the object store are updated together;
		// a missing object means the store was corrupted externally.
		panic(fmt.Sprintf("lineage: artifact %s lost from object store: %v", id, err))
	}
	r.pin(id)
	r.rep.HitBytes += a.Bytes
	r.s.stats.HitBytes += a.Bytes
	r.rep.FetchSeconds += secs
	r.count("hit_bytes", a.Bytes)
	r.span("hit:"+a.Key, "hit", secs)
	return secs
}

// MissDownstream records a unit that must re-run because its
// provenance cannot be resolved against the store — an upstream is
// itself being recomputed. It counts as a miss without an invalidation
// event: only the frontier unit whose own provenance diverged records
// the invalidation.
func (r *Run) MissDownstream() {
	r.s.stats.Misses++
	r.rep.Misses++
	r.count("misses", 1)
}

// Commit materializes table as the new version of key under fp,
// returning the stored artifact and the simulated seconds the priced
// object-store put took. seconds is the compute time the producing run
// spent on the unit (what a future hit will save). Committing a
// fingerprint that is already present returns the existing version for
// free — re-deriving identical provenance yields the same artifact.
func (r *Run) Commit(key string, fp Fingerprint, table *relation.Table, seconds float64) (*Artifact, float64) {
	if a, ok := r.s.arts[fp]; ok {
		return a, 0
	}
	a := &Artifact{
		Key: key, FP: fp,
		Digest:  relation.Digest(table),
		Table:   table,
		Bytes:   relation.TableBytes(table),
		Seconds: seconds,
	}
	id := artifactID(key, fp)
	secs, err := r.s.obj.Put(id, a.Bytes)
	if err != nil {
		panic(fmt.Sprintf("lineage: commit %s: %v", id, err))
	}
	r.pin(id)
	r.record(a, secs)
	return a, secs
}

// CommitMeta commits a metadata-only version of key: the unit's result
// lives in kernel state rather than a table, so only its provenance and
// compute time are recorded. Script cells use this; their hits cost
// nothing to fetch and carry no bytes — which is exactly the coarser
// currency of the script paradigm's reuse.
func (r *Run) CommitMeta(key string, fp Fingerprint, seconds float64) {
	if _, ok := r.s.arts[fp]; ok {
		return
	}
	r.record(&Artifact{Key: key, FP: fp, Seconds: seconds}, 0)
}

func (r *Run) record(a *Artifact, putSecs float64) {
	r.s.arts[a.FP] = a
	r.s.last[a.Key] = a.FP
	r.s.stats.Commits++
	r.s.stats.CommitBytes += a.Bytes
	r.rep.Commits++
	r.rep.CommitBytes += a.Bytes
	r.rep.CommitSeconds += putSecs
	r.count("commits", 1)
	if a.Bytes > 0 {
		r.count("commit_bytes", a.Bytes)
	}
	r.span("commit:"+a.Key, "commit", putSecs)
}

func (r *Run) pin(id objstore.ID) {
	if err := r.s.obj.Pin(id); err == nil {
		r.s.pinned = append(r.s.pinned, id)
	}
}

// Report returns the run's summary.
func (r *Run) Report() *RunReport {
	rep := r.rep
	return &rep
}

func (r *Run) count(name string, v int64) {
	if r.rec == nil {
		return
	}
	r.rec.Metrics.Counter("lineage."+r.rep.Scope+"."+name).Add(0, v)
}

// span emits one store event on the run's lineage track. Store events
// have no placement on the executor's simulated timeline (fetch and
// commit taxes are folded into node/cell charges), so spans advance a
// run-local virtual cursor instead: ordering and durations are
// meaningful, absolute placement is not.
func (r *Run) span(name, cat string, secs float64) {
	if r.rec == nil {
		return
	}
	dur := secs
	if dur <= 0 {
		dur = 1e-6 // zero-cost events still need visible extent
	}
	r.rec.Record(telemetry.Span{
		Proc: r.proc, Track: "store",
		Name: name, Cat: "lineage-" + cat,
		HasVirt: true,
		Virtual: telemetry.Virt{Start: r.virt, Dur: dur},
	})
	r.virt += dur
}

func artifactID(key string, fp Fingerprint) objstore.ID {
	return objstore.ID(fmt.Sprintf("%s/%016x", key, uint64(fp)))
}
