package lineage

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/notebook"
	"repro/internal/relation"
)

func testTable(n int) *relation.Table {
	s := relation.MustSchema(
		relation.Field{Name: "k", Type: relation.Int},
		relation.Field{Name: "v", Type: relation.String},
	)
	t := relation.NewTable(s)
	for i := 0; i < n; i++ {
		t.AppendUnchecked(relation.Tuple{int64(i), "row"})
	}
	return t
}

func TestHasherDeterministicAndSeparating(t *testing.T) {
	fp := func() Fingerprint {
		return NewHasher().String("op").Int(3).Uint64(42).Sum()
	}
	if fp() != fp() {
		t.Fatal("hasher is not deterministic")
	}
	// Length-prefixing must keep adjacent strings from aliasing.
	a := NewHasher().String("ab").String("c").Sum()
	b := NewHasher().String("a").String("bc").Sum()
	if a == b {
		t.Fatal("adjacent string components alias")
	}
	if NewHasher().Int(1).Sum() == NewHasher().Int(2).Sum() {
		t.Fatal("distinct ints collide")
	}
}

func TestLookupCommitHitAndInvalidation(t *testing.T) {
	s, err := NewStore(cost.Default(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tbl := testTable(100)
	fp1 := NewHasher().String("v1").Sum()
	fp2 := NewHasher().String("v2").Sum()

	run := s.Begin("test", nil)
	if a := run.Lookup("node:x", fp1); a != nil {
		t.Fatal("lookup hit in empty store")
	}
	_, putSecs := run.Commit("node:x", fp1, tbl, 7.5)
	if putSecs <= 0 {
		t.Fatal("commit of a real table should cost put time")
	}
	rep := run.Report()
	if rep.Commits != 1 || rep.CommitBytes != relation.TableBytes(tbl) {
		t.Fatalf("commit accounting: %+v", rep)
	}
	if rep.Invalidations != 0 {
		t.Fatal("first contact must not count as invalidation")
	}

	// Second run: same fingerprint hits and fetches.
	run = s.Begin("test", nil)
	a := run.Lookup("node:x", fp1)
	if a == nil {
		t.Fatal("expected hit")
	}
	if a.Digest != relation.Digest(tbl) {
		t.Fatal("artifact digest mismatch")
	}
	if secs := run.Fetch(a); secs <= 0 {
		t.Fatal("fetching a real table should cost get time")
	}
	rep = run.Report()
	if rep.Hits != 1 || rep.Reused != 1 || rep.HitBytes != a.Bytes {
		t.Fatalf("hit accounting: %+v", rep)
	}
	if rep.ReusedSeconds != 7.5 {
		t.Fatalf("ReusedSeconds = %g, want 7.5", rep.ReusedSeconds)
	}
	if !rep.Warm {
		t.Fatal("second run of a scope should be warm")
	}

	// Third run: changed provenance on a known key = invalidation.
	run = s.Begin("test", nil)
	if a := run.Lookup("node:x", fp2); a != nil {
		t.Fatal("changed fingerprint must miss")
	}
	rep = run.Report()
	if rep.Invalidations != 1 {
		t.Fatalf("want 1 invalidation, got %+v", rep)
	}

	// Re-committing an existing fingerprint is a no-op.
	if a, secs := run.Commit("node:x", fp1, tbl, 1); secs != 0 || a == nil {
		t.Fatal("duplicate commit should return the existing version for free")
	}
}

func buildCountingNotebook(t *testing.T, ran *[]string) *notebook.Notebook {
	t.Helper()
	nb := notebook.New("nb", cost.Default())
	add := func(name string, w cost.Work) {
		nb.Add(&notebook.Cell{
			Name:   name,
			Source: name + " = work()",
			Run: func(k *notebook.Kernel) error {
				if !k.Replaying() {
					*ran = append(*ran, name)
				}
				k.Charge(w)
				k.Set(name, true)
				return nil
			},
		})
	}
	add("load", cost.Work{Interp: 10})
	add("clean", cost.Work{Interp: 20})
	add("train", cost.Work{Interp: 30})
	add("plot", cost.Work{Interp: 5})
	return nb
}

func TestNotebookPrefixReuseAndSuffixInvalidation(t *testing.T) {
	s, err := NewStore(cost.Default(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var ran []string

	// Cold run: everything executes and commits.
	nb := buildCountingNotebook(t, &ran)
	rep, err := RunNotebook(s, nb, NotebookSpec{Scope: "script:nb"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ran) != 4 || rep.Commits != 4 || rep.Reused != 0 {
		t.Fatalf("cold run: ran=%v report=%+v", ran, rep)
	}
	cold := nb.Elapsed()

	// Unchanged re-run: all cells replay, none execute fresh work, and
	// the warm kernel skips the interpreter launch entirely.
	ran = nil
	nb = buildCountingNotebook(t, &ran)
	rep, err = RunNotebook(s, nb, NotebookSpec{Scope: "script:nb"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ran) != 0 || rep.Reused != 4 {
		t.Fatalf("warm run: ran=%v report=%+v", ran, rep)
	}
	if nb.Elapsed() != 0 {
		t.Fatalf("all-hit warm run should cost 0, got %g", nb.Elapsed())
	}
	if !nb.Kernel().Defined("plot") {
		t.Fatal("replay did not rebuild kernel state")
	}

	// Edit "clean" (cell 1): the suffix rule re-runs clean, train AND
	// plot — even though plot is dataflow-independent of clean.
	ran = nil
	nb = buildCountingNotebook(t, &ran)
	rep, err = RunNotebook(s, nb, NotebookSpec{
		Scope: "script:nb",
		Revs:  map[string]int{"clean": 1},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"clean", "train", "plot"}
	if len(ran) != 3 || ran[0] != want[0] || ran[1] != want[1] || ran[2] != want[2] {
		t.Fatalf("suffix invalidation: ran %v, want %v", ran, want)
	}
	if rep.Reused != 1 || rep.Invalidations != 1 {
		t.Fatalf("edit run report: %+v", rep)
	}
	if nb.Elapsed() >= cold {
		t.Fatalf("incremental (%g) not cheaper than cold (%g)", nb.Elapsed(), cold)
	}
	if !nb.Kernel().Defined("load") {
		t.Fatal("replayed prefix did not rebuild kernel state")
	}
}

func TestNotebookScriptHitsCarryNoBytes(t *testing.T) {
	s, err := NewStore(cost.Default(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var ran []string
	if _, err := RunNotebook(s, buildCountingNotebook(t, &ran), NotebookSpec{Scope: "s"}, nil); err != nil {
		t.Fatal(err)
	}
	rep, err := RunNotebook(s, buildCountingNotebook(t, &ran), NotebookSpec{Scope: "s"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HitBytes != 0 || rep.CommitBytes != 0 {
		t.Fatalf("script artifacts must be metadata-only: %+v", rep)
	}
}
