// Package genqa implements the generative cloze question-answering
// model used by the GOTTA task. The paper's GOTTA uses a fine-tuned
// BART; here the generator answers a cloze question by scoring
// candidate spans from the context against the words surrounding the
// mask — the same black-box contract (context + cloze in, generated
// answer out, exact-match/F1 evaluated), with the paper-scale compute
// and the 1.59 GB model footprint carried by the cost model.
package genqa

import (
	"fmt"
	"strings"

	"repro/internal/textproc"
)

// MaskToken marks the blank in a cloze question.
const MaskToken = "<mask>"

// Example is one evaluation item: a context passage, a cloze question
// derived from it, and the gold answer.
type Example struct {
	Context string
	Cloze   string
	Answer  string
}

// MakeCloze masks the first occurrence of answer in sentence, or
// returns an error if the answer does not occur.
func MakeCloze(sentence, answer string) (string, error) {
	idx := strings.Index(sentence, answer)
	if idx < 0 {
		return "", fmt.Errorf("genqa: answer %q not found in sentence", answer)
	}
	return sentence[:idx] + MaskToken + sentence[idx+len(answer):], nil
}

// Model is the generative QA model.
type Model struct {
	// MaxSpan is the longest answer span (in tokens) the model will
	// generate; default 5 when zero.
	MaxSpan int
	// ModelBytes is the simulated checkpoint footprint; the paper's
	// GOTTA BART is 1.59 GB.
	ModelBytes int64
}

// NewModel returns a model with the paper's checkpoint size.
func NewModel() *Model {
	gb := float64(int64(1) << 30)
	return &Model{MaxSpan: 5, ModelBytes: int64(1.59 * gb)}
}

// tokenizeKeepMask splits a cloze into tokens while preserving the
// mask token's position. Returns the tokens and the mask index, or -1.
func tokenizeKeepMask(cloze string) ([]string, int) {
	idx := strings.Index(cloze, MaskToken)
	if idx < 0 {
		return textproc.Tokenize(cloze), -1
	}
	left := textproc.Tokenize(cloze[:idx])
	right := textproc.Tokenize(cloze[idx+len(MaskToken):])
	tokens := make([]string, 0, len(left)+1+len(right))
	tokens = append(tokens, left...)
	maskPos := len(tokens)
	tokens = append(tokens, MaskToken)
	tokens = append(tokens, right...)
	return tokens, maskPos
}

// Generate answers a cloze question from a context. It slides every
// candidate span (1..MaxSpan tokens) of the context past the mask and
// scores how well the span's neighbourhood matches the cloze's
// neighbourhood; the best-scoring span is returned. An empty string
// means the model abstained (no mask, or empty context).
func (m *Model) Generate(context, cloze string) string {
	maxSpan := m.MaxSpan
	if maxSpan <= 0 {
		maxSpan = 5
	}
	clozeToks, maskPos := tokenizeKeepMask(cloze)
	if maskPos < 0 {
		return ""
	}
	sentences := textproc.SplitSentences(context)
	if len(sentences) == 0 {
		return ""
	}
	// Neighbourhood windows around the mask.
	const window = 4
	left := clozeToks[max(0, maskPos-window):maskPos]
	right := clozeToks[maskPos+1 : min(len(clozeToks), maskPos+1+window)]

	best := ""
	bestScore := -1.0
	// Candidates never cross sentence boundaries — the decoder's
	// stand-in for syntactic coherence — and a span that reaches a
	// boundary the cloze also reaches earns an alignment bonus, which
	// resolves sentence-final answers with no right context.
	for _, sent := range sentences {
		ctxToks := textproc.Tokenize(sent.Text)
		for start := 0; start < len(ctxToks); start++ {
			for span := 1; span <= maxSpan && start+span <= len(ctxToks); span++ {
				score := 0.0
				// Match left context right-to-left, weighting adjacency.
				for k := 1; k <= len(left); k++ {
					ci := start - k
					if ci < 0 {
						break
					}
					if ctxToks[ci] == left[len(left)-k] {
						score += 1.0 / float64(k)
					}
				}
				for k := 0; k < len(right); k++ {
					ci := start + span + k
					if ci >= len(ctxToks) {
						break
					}
					if ctxToks[ci] == right[k] {
						score += 1.0 / float64(k+1)
					}
				}
				if len(right) == 0 && start+span == len(ctxToks) {
					score += 0.5 // both end at a sentence boundary
				}
				if len(left) == 0 && start == 0 {
					score += 0.5 // both start at a sentence boundary
				}
				// Prefer shorter spans on ties (generation brevity
				// prior).
				score -= 0.01 * float64(span-1)
				if score > bestScore {
					bestScore = score
					best = strings.Join(ctxToks[start:start+span], " ")
				}
			}
		}
	}
	return best
}

// normalize lowercases and tokenizes an answer for comparison, the
// standard SQuAD-style normalization.
func normalize(s string) []string {
	return textproc.Tokenize(s)
}

// ExactMatch reports whether the prediction equals the gold answer
// after normalization.
func ExactMatch(pred, gold string) bool {
	p, g := normalize(pred), normalize(gold)
	if len(p) != len(g) {
		return false
	}
	for i := range p {
		if p[i] != g[i] {
			return false
		}
	}
	return len(p) > 0
}

// F1 returns the token-overlap F1 between prediction and gold.
func F1(pred, gold string) float64 {
	p, g := normalize(pred), normalize(gold)
	if len(p) == 0 || len(g) == 0 {
		if len(p) == len(g) {
			return 1
		}
		return 0
	}
	counts := make(map[string]int, len(g))
	for _, t := range g {
		counts[t]++
	}
	common := 0
	for _, t := range p {
		if counts[t] > 0 {
			counts[t]--
			common++
		}
	}
	if common == 0 {
		return 0
	}
	precision := float64(common) / float64(len(p))
	recall := float64(common) / float64(len(g))
	return 2 * precision * recall / (precision + recall)
}

// EvalResult aggregates generation quality over a set of examples.
type EvalResult struct {
	N  int
	EM float64
	F1 float64
}

// Evaluate runs the model over examples and aggregates EM and F1.
func (m *Model) Evaluate(examples []Example) (EvalResult, error) {
	if len(examples) == 0 {
		return EvalResult{}, fmt.Errorf("genqa: empty evaluation set")
	}
	var res EvalResult
	res.N = len(examples)
	for _, ex := range examples {
		pred := m.Generate(ex.Context, ex.Cloze)
		if ExactMatch(pred, ex.Answer) {
			res.EM++
		}
		res.F1 += F1(pred, ex.Answer)
	}
	res.EM /= float64(res.N)
	res.F1 /= float64(res.N)
	return res, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
