package genqa

import (
	"math"
	"strings"
	"testing"
)

const passage = "The patient was admitted with severe dehydration. Doctors prescribed intravenous fluids immediately. " +
	"A chest radiograph revealed bilateral infiltrates. The treatment continued for five days."

func TestMakeCloze(t *testing.T) {
	c, err := MakeCloze("Doctors prescribed intravenous fluids immediately.", "intravenous fluids")
	if err != nil {
		t.Fatal(err)
	}
	if c != "Doctors prescribed "+MaskToken+" immediately." {
		t.Fatalf("cloze = %q", c)
	}
	if _, err := MakeCloze("no answer here", "missing"); err == nil {
		t.Fatal("expected error for absent answer")
	}
}

func TestGenerateRecoversMaskedSpan(t *testing.T) {
	m := NewModel()
	cases := []string{"severe dehydration", "intravenous fluids", "bilateral infiltrates", "five days"}
	for _, answer := range cases {
		sentence := ""
		for _, s := range strings.Split(passage, ". ") {
			if strings.Contains(s, answer) {
				sentence = s
				break
			}
		}
		cloze, err := MakeCloze(sentence, answer)
		if err != nil {
			t.Fatal(err)
		}
		pred := m.Generate(passage, cloze)
		if !ExactMatch(pred, answer) {
			t.Fatalf("answer %q: generated %q", answer, pred)
		}
	}
}

func TestGenerateAbstains(t *testing.T) {
	m := NewModel()
	if got := m.Generate(passage, "no mask here"); got != "" {
		t.Fatalf("no-mask cloze generated %q", got)
	}
	if got := m.Generate("", "a "+MaskToken+" b"); got != "" {
		t.Fatalf("empty context generated %q", got)
	}
}

func TestGenerateMaskAtEdges(t *testing.T) {
	m := NewModel()
	if got := m.Generate("alpha beta gamma", MaskToken+" beta gamma"); !ExactMatch(got, "alpha") {
		t.Fatalf("leading mask -> %q", got)
	}
	if got := m.Generate("alpha beta gamma", "alpha beta "+MaskToken); !ExactMatch(got, "gamma") {
		t.Fatalf("trailing mask -> %q", got)
	}
}

func TestExactMatchNormalization(t *testing.T) {
	if !ExactMatch("Intravenous Fluids", "intravenous fluids") {
		t.Fatal("case should not matter")
	}
	if !ExactMatch("five days.", "five days") {
		t.Fatal("punctuation should not matter")
	}
	if ExactMatch("five", "five days") {
		t.Fatal("partial span should not match")
	}
	if ExactMatch("", "") {
		t.Fatal("empty strings should not count as a match")
	}
}

func TestF1(t *testing.T) {
	if F1("five days", "five days") != 1 {
		t.Fatal("perfect overlap should be 1")
	}
	if F1("wrong", "five days") != 0 {
		t.Fatal("no overlap should be 0")
	}
	got := F1("five", "five days")
	want := 2 * (1.0 * 0.5) / (1.0 + 0.5)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("partial F1 = %v, want %v", got, want)
	}
	if F1("", "") != 1 {
		t.Fatal("two abstentions count as agreement")
	}
	if F1("x", "") != 0 || F1("", "x") != 0 {
		t.Fatal("one-sided abstention is 0")
	}
}

func TestEvaluate(t *testing.T) {
	m := NewModel()
	sentence := "Doctors prescribed intravenous fluids immediately"
	cloze, _ := MakeCloze(sentence, "intravenous fluids")
	res, err := m.Evaluate([]Example{
		{Context: passage, Cloze: cloze, Answer: "intravenous fluids"},
		{Context: passage, Cloze: "unanswerable " + MaskToken + " question", Answer: "zebra"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 2 {
		t.Fatalf("N = %d", res.N)
	}
	if res.EM != 0.5 {
		t.Fatalf("EM = %v", res.EM)
	}
	if res.F1 < 0.5 || res.F1 > 1 {
		t.Fatalf("F1 = %v", res.F1)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	if _, err := NewModel().Evaluate(nil); err == nil {
		t.Fatal("expected error for empty set")
	}
}

func TestModelBytes(t *testing.T) {
	m := NewModel()
	gb := float64(int64(1) << 30)
	low := int64(1.5 * gb)
	high := int64(1.7 * gb)
	if m.ModelBytes < low || m.ModelBytes > high {
		t.Fatalf("model bytes = %d, want ~1.59 GB", m.ModelBytes)
	}
}
