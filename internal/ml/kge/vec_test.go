package kge

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestEncodeDecodeVecRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(32)
		v := make([]float64, n)
		for i := range v {
			v[i] = r.Norm() * 100
		}
		dec, err := DecodeVec(EncodeVec(v))
		if err != nil || len(dec) != n {
			return false
		}
		for i := range v {
			if dec[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeVecRejectsBadLength(t *testing.T) {
	if _, err := DecodeVec("short"); err == nil {
		t.Fatal("expected error for non-multiple-of-8 length")
	}
	out, err := DecodeVec("")
	if err != nil || len(out) != 0 {
		t.Fatalf("empty vector should decode: %v %v", out, err)
	}
}

func TestEncodeVecSpecialValues(t *testing.T) {
	v := []float64{0, -0, math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64}
	dec, err := DecodeVec(EncodeVec(v))
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if dec[i] != v[i] {
			t.Fatalf("value %d: %v != %v", i, dec[i], v[i])
		}
	}
	// NaN round-trips bit-exactly.
	nan, err := DecodeVec(EncodeVec([]float64{math.NaN()}))
	if err != nil || !math.IsNaN(nan[0]) {
		t.Fatal("NaN did not round trip")
	}
}

func TestDistanceTo(t *testing.T) {
	h := []float64{1, 0}
	r := []float64{0, 1}
	tail := []float64{1, 1}
	d, err := DistanceTo(h, r, tail)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("distance = %v, want 0", d)
	}
	d, err = DistanceTo(h, r, []float64{1, 0})
	if err != nil || d != 1 {
		t.Fatalf("distance = %v, want 1", d)
	}
	if _, err := DistanceTo(h, r, []float64{1}); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
	if _, err := DistanceTo([]float64{1}, r, tail); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestRelationEmbedding(t *testing.T) {
	m, _ := New([]string{"a"}, []string{"buys"}, 4, 1)
	v, err := m.RelationEmbedding("buys")
	if err != nil || len(v) != 4 {
		t.Fatalf("relation embedding: %v %v", v, err)
	}
	v[0] = 999
	v2, _ := m.RelationEmbedding("buys")
	if v2[0] == 999 {
		t.Fatal("RelationEmbedding exposed internal storage")
	}
	if _, err := m.RelationEmbedding("zz"); err == nil {
		t.Fatal("expected unknown relation error")
	}
}

func TestCounts(t *testing.T) {
	m, _ := New([]string{"a", "b", "c"}, []string{"r1", "r2"}, 4, 1)
	if m.NumEntities() != 3 || m.NumRelations() != 2 {
		t.Fatalf("counts = %d/%d", m.NumEntities(), m.NumRelations())
	}
	if !m.HasEntity("b") || m.HasEntity("zz") {
		t.Fatal("HasEntity wrong")
	}
}
