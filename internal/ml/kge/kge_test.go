package kge

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/xrand"
)

// trainingWorld builds a small graph where each user purchases
// products from one category; the model should learn to rank
// same-category products higher.
func trainingWorld() (entities, relations []string, triples []Triple) {
	for u := 0; u < 8; u++ {
		entities = append(entities, fmt.Sprintf("user%d", u))
	}
	for p := 0; p < 40; p++ {
		entities = append(entities, fmt.Sprintf("prod%d", p))
	}
	relations = []string{"buys"}
	for u := 0; u < 8; u++ {
		cat := u % 4
		for p := 0; p < 40; p++ {
			if p%4 == cat {
				triples = append(triples, Triple{
					Head: fmt.Sprintf("user%d", u),
					Rel:  "buys",
					Tail: fmt.Sprintf("prod%d", p),
				})
			}
		}
	}
	return
}

func trainedModel(t *testing.T) *Model {
	t.Helper()
	ents, rels, triples := trainingWorld()
	m, err := New(ents, rels, 16, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Train(triples, TrainConfig{Epochs: 80, Seed: 7, Negatives: 2}); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidates(t *testing.T) {
	if _, err := New(nil, []string{"r"}, 8, 1); err == nil {
		t.Fatal("expected error for no entities")
	}
	if _, err := New([]string{"e"}, nil, 8, 1); err == nil {
		t.Fatal("expected error for no relations")
	}
	if _, err := New([]string{"e"}, []string{"r"}, 0, 1); err == nil {
		t.Fatal("expected error for zero dim")
	}
	if _, err := New([]string{"e", "e"}, []string{"r"}, 8, 1); err == nil {
		t.Fatal("expected error for duplicate entity")
	}
	if _, err := New([]string{"e"}, []string{"r", "r"}, 8, 1); err == nil {
		t.Fatal("expected error for duplicate relation")
	}
}

func TestScoreErrors(t *testing.T) {
	m, _ := New([]string{"a", "b"}, []string{"r"}, 8, 1)
	if _, err := m.Score("zz", "r", "b"); err == nil {
		t.Fatal("expected unknown head error")
	}
	if _, err := m.Score("a", "zz", "b"); err == nil {
		t.Fatal("expected unknown relation error")
	}
	if _, err := m.Score("a", "r", "zz"); err == nil {
		t.Fatal("expected unknown tail error")
	}
}

func TestTrainSeparatesPositives(t *testing.T) {
	m := trainedModel(t)
	r := xrand.New(3)
	better := 0
	total := 0
	for u := 0; u < 8; u++ {
		cat := u % 4
		user := fmt.Sprintf("user%d", u)
		for trial := 0; trial < 20; trial++ {
			pos := fmt.Sprintf("prod%d", cat+4*r.Intn(10))
			negP := r.Intn(40)
			if negP%4 == cat {
				continue
			}
			neg := fmt.Sprintf("prod%d", negP)
			sp, err := m.Score(user, "buys", pos)
			if err != nil {
				t.Fatal(err)
			}
			sn, err := m.Score(user, "buys", neg)
			if err != nil {
				t.Fatal(err)
			}
			total++
			if sp > sn {
				better++
			}
		}
	}
	if ratio := float64(better) / float64(total); ratio < 0.9 {
		t.Fatalf("positive-over-negative ratio = %v", ratio)
	}
}

func TestTopKOrderingAndDeterminism(t *testing.T) {
	m := trainedModel(t)
	var candidates []string
	for p := 0; p < 40; p++ {
		candidates = append(candidates, fmt.Sprintf("prod%d", p))
	}
	top, err := m.TopK("user0", "buys", candidates, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 10 {
		t.Fatalf("topk len = %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Fatal("topk not sorted")
		}
	}
	// Majority of top-10 should be user0's category (p % 4 == 0).
	inCat := 0
	for _, s := range top {
		var p int
		fmt.Sscanf(s.Entity, "prod%d", &p)
		if p%4 == 0 {
			inCat++
		}
	}
	if inCat < 7 {
		t.Fatalf("only %d of top-10 in user's category", inCat)
	}
	top2, _ := m.TopK("user0", "buys", candidates, 10)
	for i := range top {
		if top[i] != top2[i] {
			t.Fatal("TopK not deterministic")
		}
	}
}

func TestTopKErrors(t *testing.T) {
	m, _ := New([]string{"a"}, []string{"r"}, 4, 1)
	if _, err := m.TopK("a", "r", []string{"a"}, 0); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, err := m.TopK("a", "r", []string{"zz"}, 1); err == nil {
		t.Fatal("expected error for unknown candidate")
	}
	top, err := m.TopK("a", "r", []string{"a"}, 5)
	if err != nil || len(top) != 1 {
		t.Fatalf("oversized k: %v %v", top, err)
	}
}

func TestEmbeddingAndReverseLookup(t *testing.T) {
	m := trainedModel(t)
	for _, e := range []string{"user3", "prod17"} {
		v, err := m.Embedding(e)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.ReverseLookup(v)
		if err != nil {
			t.Fatal(err)
		}
		if got != e {
			t.Fatalf("reverse lookup of %q gave %q", e, got)
		}
	}
	if _, err := m.Embedding("missing"); err == nil {
		t.Fatal("expected unknown entity error")
	}
	if _, err := m.ReverseLookup(make([]float64, 3)); err == nil {
		t.Fatal("expected dim mismatch error")
	}
}

func TestEmbeddingReturnsCopy(t *testing.T) {
	m, _ := New([]string{"a"}, []string{"r"}, 4, 1)
	v, _ := m.Embedding("a")
	v[0] = 999
	v2, _ := m.Embedding("a")
	if v2[0] == 999 {
		t.Fatal("Embedding exposed internal storage")
	}
}

func TestTrainErrors(t *testing.T) {
	m, _ := New([]string{"a", "b"}, []string{"r"}, 4, 1)
	if err := m.Train(nil, TrainConfig{}); err == nil {
		t.Fatal("expected empty-set error")
	}
	if err := m.Train([]Triple{{Head: "zz", Rel: "r", Tail: "a"}}, TrainConfig{}); err == nil {
		t.Fatal("expected unknown head error")
	}
	if err := m.Train([]Triple{{Head: "a", Rel: "zz", Tail: "b"}}, TrainConfig{}); err == nil {
		t.Fatal("expected unknown relation error")
	}
	if err := m.Train([]Triple{{Head: "a", Rel: "r", Tail: "zz"}}, TrainConfig{}); err == nil {
		t.Fatal("expected unknown tail error")
	}
}

func TestSizeBytesFloor(t *testing.T) {
	m, _ := New([]string{"a"}, []string{"r"}, 4, 1)
	if m.SizeBytes() != 375<<20 {
		t.Fatalf("small model should report the paper's 375 MB floor, got %d", m.SizeBytes())
	}
}

func TestEmbeddingsStayBounded(t *testing.T) {
	m := trainedModel(t)
	for i, e := range m.ent {
		var n float64
		for _, x := range e {
			n += x * x
		}
		if math.Sqrt(n) > 1+1e-9 {
			t.Fatalf("entity %d norm = %v exceeds 1", i, math.Sqrt(n))
		}
	}
}
