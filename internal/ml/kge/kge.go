// Package kge implements TransE-style knowledge-graph embeddings: an
// embedding table over entities and relations, margin-based training
// with negative sampling, triple scoring, top-k candidate ranking and
// reverse lookup from an embedding back to its entity. It is the
// substrate of the KGE multi-step inference task (the paper's
// Figure 7); the pre-trained Amazon model's 375 MB footprint is carried
// as a size constant for the cost model.
package kge

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/xrand"
)

// Triple is one (head, relation, tail) fact.
type Triple struct {
	Head, Rel, Tail string
}

// Model holds entity and relation embeddings.
type Model struct {
	Dim int

	entIndex map[string]int
	entNames []string
	ent      [][]float64

	relIndex map[string]int
	relNames []string
	rel      [][]float64
}

// New creates a model with random unit-ball embeddings for the given
// entities and relations.
func New(entities, relations []string, dim int, seed uint64) (*Model, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("kge: dimension must be positive, got %d", dim)
	}
	if len(entities) == 0 || len(relations) == 0 {
		return nil, fmt.Errorf("kge: need at least one entity and one relation")
	}
	m := &Model{
		Dim:      dim,
		entIndex: make(map[string]int, len(entities)),
		relIndex: make(map[string]int, len(relations)),
	}
	r := xrand.New(seed)
	for _, e := range entities {
		if _, dup := m.entIndex[e]; dup {
			return nil, fmt.Errorf("kge: duplicate entity %q", e)
		}
		m.entIndex[e] = len(m.entNames)
		m.entNames = append(m.entNames, e)
		m.ent = append(m.ent, randUnit(r, dim))
	}
	for _, rl := range relations {
		if _, dup := m.relIndex[rl]; dup {
			return nil, fmt.Errorf("kge: duplicate relation %q", rl)
		}
		m.relIndex[rl] = len(m.relNames)
		m.relNames = append(m.relNames, rl)
		m.rel = append(m.rel, randUnit(r, dim))
	}
	return m, nil
}

func randUnit(r *xrand.Rand, dim int) []float64 {
	v := make([]float64, dim)
	var n float64
	for i := range v {
		v[i] = r.Norm()
		n += v[i] * v[i]
	}
	n = math.Sqrt(n)
	if n > 0 {
		for i := range v {
			v[i] /= n
		}
	}
	return v
}

// NumEntities returns the entity count.
func (m *Model) NumEntities() int { return len(m.entNames) }

// NumRelations returns the relation count.
func (m *Model) NumRelations() int { return len(m.relNames) }

// HasEntity reports whether the entity is known.
func (m *Model) HasEntity(e string) bool {
	_, ok := m.entIndex[e]
	return ok
}

// Embedding returns a copy of an entity's embedding.
func (m *Model) Embedding(entity string) ([]float64, error) {
	i, ok := m.entIndex[entity]
	if !ok {
		return nil, fmt.Errorf("kge: unknown entity %q", entity)
	}
	out := make([]float64, m.Dim)
	copy(out, m.ent[i])
	return out, nil
}

// SizeBytes returns the simulated footprint of the embedding table,
// calibrated so the paper's Amazon model lands at 375 MB: real float64
// storage scaled to paper scale.
func (m *Model) SizeBytes() int64 {
	const paperBytes = 375 << 20
	// Paper-scale reference: ~1.2M entities at dim 400 in float32.
	real := int64((len(m.ent) + len(m.rel)) * m.Dim * 8)
	if real > paperBytes {
		return real
	}
	return paperBytes
}

// Score returns -||h + r - t||_2: higher is more plausible.
func (m *Model) Score(head, rel, tail string) (float64, error) {
	hi, ok := m.entIndex[head]
	if !ok {
		return 0, fmt.Errorf("kge: unknown head %q", head)
	}
	ri, ok := m.relIndex[rel]
	if !ok {
		return 0, fmt.Errorf("kge: unknown relation %q", rel)
	}
	ti, ok := m.entIndex[tail]
	if !ok {
		return 0, fmt.Errorf("kge: unknown tail %q", tail)
	}
	return -dist(m.ent[hi], m.rel[ri], m.ent[ti]), nil
}

func dist(h, r, t []float64) float64 {
	var s float64
	for i := range h {
		d := h[i] + r[i] - t[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// TrainConfig controls TransE training.
type TrainConfig struct {
	Epochs    int     // default 50
	LR        float64 // default 0.05
	Margin    float64 // default 1.0
	Negatives int     // corrupted samples per positive, default 1
	Seed      uint64
}

// Train fits the embeddings to the triples with margin ranking loss
// and tail-corruption negative sampling.
func (m *Model) Train(triples []Triple, cfg TrainConfig) error {
	if len(triples) == 0 {
		return fmt.Errorf("kge: empty training set")
	}
	epochs := cfg.Epochs
	if epochs == 0 {
		epochs = 50
	}
	lr := cfg.LR
	if lr == 0 {
		lr = 0.05
	}
	margin := cfg.Margin
	if margin == 0 {
		margin = 1.0
	}
	negs := cfg.Negatives
	if negs == 0 {
		negs = 1
	}
	type idxTriple struct{ h, r, t int }
	idx := make([]idxTriple, len(triples))
	for i, tr := range triples {
		h, ok := m.entIndex[tr.Head]
		if !ok {
			return fmt.Errorf("kge: triple %d: unknown head %q", i, tr.Head)
		}
		rl, ok := m.relIndex[tr.Rel]
		if !ok {
			return fmt.Errorf("kge: triple %d: unknown relation %q", i, tr.Rel)
		}
		t, ok := m.entIndex[tr.Tail]
		if !ok {
			return fmt.Errorf("kge: triple %d: unknown tail %q", i, tr.Tail)
		}
		idx[i] = idxTriple{h, rl, t}
	}
	r := xrand.New(cfg.Seed)
	order := make([]int, len(idx))
	for i := range order {
		order[i] = i
	}
	for e := 0; e < epochs; e++ {
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, oi := range order {
			tr := idx[oi]
			for n := 0; n < negs; n++ {
				corrupt := r.Intn(len(m.ent))
				if corrupt == tr.t {
					continue
				}
				m.marginStep(tr.h, tr.r, tr.t, corrupt, lr, margin)
			}
		}
	}
	return nil
}

// marginStep applies one margin-loss gradient step for a positive
// (h,r,t) against a corrupted tail t'.
func (m *Model) marginStep(h, r, t, tNeg int, lr, margin float64) {
	dPos := dist(m.ent[h], m.rel[r], m.ent[t])
	dNeg := dist(m.ent[h], m.rel[r], m.ent[tNeg])
	if dPos+margin <= dNeg {
		return // already satisfied
	}
	// Gradient of dPos - dNeg w.r.t. embeddings (L2 distance).
	eh, er, et, en := m.ent[h], m.rel[r], m.ent[t], m.ent[tNeg]
	for i := range eh {
		var gp, gn float64
		if dPos > 0 {
			gp = (eh[i] + er[i] - et[i]) / dPos
		}
		if dNeg > 0 {
			gn = (eh[i] + er[i] - en[i]) / dNeg
		}
		g := gp - gn
		eh[i] -= lr * g
		er[i] -= lr * g
		et[i] += lr * gp
		en[i] -= lr * gn
	}
	normalizeRow(eh)
	normalizeRow(et)
	normalizeRow(en)
}

func normalizeRow(v []float64) {
	var n float64
	for _, x := range v {
		n += x * x
	}
	n = math.Sqrt(n)
	if n > 1 {
		for i := range v {
			v[i] /= n
		}
	}
}

// Scored pairs an entity with its plausibility score.
type Scored struct {
	Entity string
	Score  float64
}

// TopK ranks candidate tail entities for (head, rel) and returns the k
// best, ties broken by entity name for determinism.
func (m *Model) TopK(head, rel string, candidates []string, k int) ([]Scored, error) {
	if k <= 0 {
		return nil, fmt.Errorf("kge: k must be positive, got %d", k)
	}
	out := make([]Scored, 0, len(candidates))
	for _, c := range candidates {
		s, err := m.Score(head, rel, c)
		if err != nil {
			return nil, err
		}
		out = append(out, Scored{Entity: c, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Entity < out[j].Entity
	})
	if k > len(out) {
		k = len(out)
	}
	return out[:k], nil
}

// EncodeVec serializes an embedding into a compact string so vectors
// can travel through relational tuples between workflow operators —
// which is how the real data volume of the KGE embedding join shows up
// in the engines' serde accounting.
func EncodeVec(v []float64) string {
	buf := make([]byte, 8*len(v))
	for i, x := range v {
		bits := math.Float64bits(x)
		for b := 0; b < 8; b++ {
			buf[i*8+b] = byte(bits >> (8 * b))
		}
	}
	return string(buf)
}

// DecodeVec parses a string produced by EncodeVec.
func DecodeVec(s string) ([]float64, error) {
	if len(s)%8 != 0 {
		return nil, fmt.Errorf("kge: encoded vector length %d not a multiple of 8", len(s))
	}
	v := make([]float64, len(s)/8)
	for i := range v {
		var bits uint64
		for b := 0; b < 8; b++ {
			bits |= uint64(s[i*8+b]) << (8 * b)
		}
		v[i] = math.Float64frombits(bits)
	}
	return v, nil
}

// DistanceTo returns ||h + r - t||_2 given raw vectors — the scoring
// primitive workflow operators use on decoded embeddings.
func DistanceTo(head, rel, tail []float64) (float64, error) {
	if len(head) != len(rel) || len(head) != len(tail) {
		return 0, fmt.Errorf("kge: dimension mismatch (%d/%d/%d)", len(head), len(rel), len(tail))
	}
	return dist(head, rel, tail), nil
}

// RelationEmbedding returns a copy of a relation's embedding.
func (m *Model) RelationEmbedding(rel string) ([]float64, error) {
	i, ok := m.relIndex[rel]
	if !ok {
		return nil, fmt.Errorf("kge: unknown relation %q", rel)
	}
	out := make([]float64, m.Dim)
	copy(out, m.rel[i])
	return out, nil
}

// ReverseLookup returns the entity whose embedding is nearest (L2) to
// the query vector — the KGE task's final step mapping ranked
// embeddings back to product names.
func (m *Model) ReverseLookup(vec []float64) (string, error) {
	if len(vec) != m.Dim {
		return "", fmt.Errorf("kge: query dim %d, model dim %d", len(vec), m.Dim)
	}
	best := -1
	bestD := math.Inf(1)
	for i, e := range m.ent {
		var d float64
		for j := range e {
			x := e[j] - vec[j]
			d += x * x
		}
		if d < bestD || (d == bestD && best >= 0 && m.entNames[i] < m.entNames[best]) {
			bestD = d
			best = i
		}
	}
	return m.entNames[best], nil
}
