// Package ml_test holds cross-cutting micro-benchmarks of the ML
// substrates: feature hashing, classifier training, cloze generation
// and embedding ranking.
package ml_test

import (
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/ml/feature"
	"repro/internal/ml/genqa"
	"repro/internal/ml/kge"
	"repro/internal/ml/textclf"
)

func BenchmarkHashingVectorizer(b *testing.B) {
	h, err := feature.NewHashingVectorizer(1 << 16)
	if err != nil {
		b.Fatal(err)
	}
	doc := "climate change made this fire season explosive stay safe everyone #wildfire"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(h.Transform(doc)) == 0 {
			b.Fatal("empty vector")
		}
	}
}

func BenchmarkTextclfFinetune(b *testing.B) {
	tweets := datagen.GenerateTweets(200, 1)
	texts := datagen.Texts(tweets)
	labels := make([]bool, len(tweets))
	for i, t := range tweets {
		labels[i] = t.Framings[datagen.FramingLink]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := textclf.Pretrained("bench", 2048, 16, 8)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Finetune(texts, labels, textclf.Config{Epochs: 2, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenqaGenerate(b *testing.B) {
	ps := datagen.GeneratePassages(1, 6, 3)
	m := genqa.NewModel()
	qa := ps[0].QAs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Generate(qa.Context, qa.Cloze) == "" {
			b.Fatal("abstained")
		}
	}
}

func BenchmarkKGETopK(b *testing.B) {
	world := datagen.GenerateProducts(5000, 8, 0, 5)
	model, err := kge.New(world.EntityNames(), []string{"buys"}, 16, 9)
	if err != nil {
		b.Fatal(err)
	}
	candidates := make([]string, len(world.Products))
	for i, p := range world.Products {
		candidates[i] = p.ASIN
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.TopK(world.Users[0], "buys", candidates, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKGETrainEpoch(b *testing.B) {
	world := datagen.GenerateProducts(500, 8, 0, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model, err := kge.New(world.EntityNames(), []string{"buys"}, 16, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if err := model.Train(world.Purchases, kge.TrainConfig{Epochs: 1, Seed: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReverseLookup(b *testing.B) {
	world := datagen.GenerateProducts(5000, 8, 0, 5)
	model, err := kge.New(world.EntityNames(), []string{"buys"}, 16, 9)
	if err != nil {
		b.Fatal(err)
	}
	vec, err := model.Embedding(world.Products[1234].ASIN)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := model.ReverseLookup(vec)
		if err != nil || got != world.Products[1234].ASIN {
			b.Fatalf("lookup failed: %v %v", got, err)
		}
	}
}

var benchSink int

func BenchmarkTweetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tweets := datagen.GenerateTweets(100, uint64(i))
		benchSink += len(tweets)
	}
	_ = fmt.Sprint(benchSink)
}
