package feature

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewHashingVectorizerValidates(t *testing.T) {
	if _, err := NewHashingVectorizer(0); err == nil {
		t.Fatal("expected error for zero dim")
	}
	if _, err := NewHashingVectorizer(1024); err != nil {
		t.Fatal(err)
	}
}

func TestTransformDeterministic(t *testing.T) {
	h, _ := NewHashingVectorizer(256)
	a := h.Transform("the cat sat on the mat")
	b := h.Transform("the cat sat on the mat")
	if len(a) != len(b) {
		t.Fatal("non-deterministic transform")
	}
	for i, x := range a {
		if b[i] != x {
			t.Fatal("non-deterministic transform values")
		}
	}
}

func TestTransformBucketsInRange(t *testing.T) {
	h, _ := NewHashingVectorizer(64)
	v := h.Transform("alpha beta gamma delta epsilon zeta eta theta iota kappa")
	for b := range v {
		if b < 0 || b >= 64 {
			t.Fatalf("bucket %d out of range", b)
		}
	}
}

func TestTransformStopwordsAndBigrams(t *testing.T) {
	plain, _ := NewHashingVectorizer(512)
	noStop := &HashingVectorizer{Dim: 512, DropStopwords: true}
	doc := "the cat and the dog"
	if len(noStop.Transform(doc)) >= len(plain.Transform(doc)) {
		t.Fatal("stopword removal should shrink the vector")
	}
	bigram := &HashingVectorizer{Dim: 512, Bigrams: true}
	if len(bigram.Transform("red green blue")) <= len(plain.Transform("red green blue")) {
		t.Fatal("bigrams should grow the vector")
	}
}

func TestVectorOps(t *testing.T) {
	a := Vector{0: 1, 1: 2}
	b := Vector{1: 3, 2: 5}
	if a.Dot(b) != 6 {
		t.Fatalf("dot = %v", a.Dot(b))
	}
	if b.Dot(a) != 6 {
		t.Fatal("dot not symmetric")
	}
	c := a.Clone()
	c.AddScaled(b, 2)
	if c[1] != 8 || c[2] != 10 || c[0] != 1 {
		t.Fatalf("addscaled = %v", c)
	}
	if a[1] != 2 {
		t.Fatal("clone aliased")
	}
	n := Vector{3: 3, 4: 4}.Norm()
	if math.Abs(n-5) > 1e-12 {
		t.Fatalf("norm = %v", n)
	}
	s := Vector{0: 2}
	s.Scale(3)
	if s[0] != 6 {
		t.Fatal("scale wrong")
	}
}

func TestTFIDF(t *testing.T) {
	h, _ := NewHashingVectorizer(1 << 16)
	docs := []string{
		"wildfire smoke covers the city",
		"wildfire evacuation ordered",
		"the city holds a festival",
	}
	counts := h.TransformAll(docs)
	tfidf := FitTFIDF(counts)
	out := tfidf.TransformAll(counts)
	for i, v := range out {
		if n := v.Norm(); math.Abs(n-1) > 1e-9 {
			t.Fatalf("doc %d norm = %v, want 1", i, n)
		}
	}
	// "wildfire" (2 docs) must get a lower idf than "festival" (1 doc).
	wb, _ := h.hashToken("wildfire")
	fb, _ := h.hashToken("festival")
	if tfidf.idf[wb] >= tfidf.idf[fb] {
		t.Fatalf("idf(wildfire)=%v should be < idf(festival)=%v", tfidf.idf[wb], tfidf.idf[fb])
	}
}

func TestTFIDFUnseenFeature(t *testing.T) {
	h, _ := NewHashingVectorizer(1 << 16)
	tfidf := FitTFIDF(h.TransformAll([]string{"alpha beta"}))
	out := tfidf.Transform(h.Transform("gamma"))
	if len(out) == 0 {
		t.Fatal("unseen tokens should still map to features")
	}
	if n := out.Norm(); math.Abs(n-1) > 1e-9 {
		t.Fatalf("norm = %v", n)
	}
}

func TestPropertyDotCommutes(t *testing.T) {
	f := func(ai, bi []uint8, av, bv []int8) bool {
		a, b := Vector{}, Vector{}
		for i := 0; i < len(ai) && i < len(av); i++ {
			a[int(ai[i])] = float64(av[i])
		}
		for i := 0; i < len(bi) && i < len(bv); i++ {
			b[int(bi[i])] = float64(bv[i])
		}
		return math.Abs(a.Dot(b)-b.Dot(a)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
