// Package feature implements text feature extraction: a hashing
// vectorizer and a TF-IDF transformer — the CountVectorizer →
// TfidfTransformer stages of the paper's Figure 1 example pipeline.
package feature

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/textproc"
)

// Vector is a sparse feature vector.
type Vector map[int]float64

// Dot returns the dot product of two sparse vectors. The fold runs
// over sorted indices: float addition does not commute under rounding,
// so accumulating in map order would change the result's last ULPs
// run to run.
func (v Vector) Dot(o Vector) float64 {
	a, b := v, o
	if len(b) < len(a) {
		a, b = b, a
	}
	idx := make([]int, 0, len(a))
	for i := range a {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	var s float64
	for _, i := range idx {
		s += a[i] * b[i]
	}
	return s
}

// AddScaled adds k*o into v in place.
func (v Vector) AddScaled(o Vector, k float64) {
	for i, x := range o {
		v[i] += k * x
	}
}

// Norm returns the L2 norm, folding over sorted indices for a
// bit-stable sum (see Dot).
func (v Vector) Norm() float64 {
	idx := make([]int, 0, len(v))
	for i := range v {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	var s float64
	for _, i := range idx {
		s += v[i] * v[i]
	}
	return math.Sqrt(s)
}

// Scale multiplies every component in place.
func (v Vector) Scale(k float64) {
	for i := range v {
		v[i] *= k
	}
}

// Clone returns a copy of the vector.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	for i, x := range v {
		c[i] = x
	}
	return c
}

// HashingVectorizer maps token counts into a fixed-dimension sparse
// vector using the hashing trick, so no vocabulary needs to be stored.
type HashingVectorizer struct {
	// Dim is the feature-space size; must be positive.
	Dim int
	// Bigrams adds token bigrams as features when true.
	Bigrams bool
	// DropStopwords removes common English stopwords when true.
	DropStopwords bool
}

// NewHashingVectorizer returns a vectorizer with the given dimension.
func NewHashingVectorizer(dim int) (*HashingVectorizer, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("feature: dimension must be positive, got %d", dim)
	}
	return &HashingVectorizer{Dim: dim}, nil
}

// hashToken maps a token to a bucket and a deterministic sign (the
// signed hashing trick reduces collision bias).
func (h *HashingVectorizer) hashToken(tok string) (int, float64) {
	x := uint32(2166136261)
	for i := 0; i < len(tok); i++ {
		x ^= uint32(tok[i])
		x *= 16777619
	}
	sign := 1.0
	if x&1 == 1 {
		sign = -1.0
	}
	return int(x>>1) % h.Dim, sign
}

// Transform converts a document into a term-count sparse vector.
func (h *HashingVectorizer) Transform(doc string) Vector {
	tokens := textproc.Tokenize(doc)
	v := make(Vector)
	kept := tokens[:0:0]
	for _, t := range tokens {
		if h.DropStopwords && textproc.Stopwords[t] {
			continue
		}
		kept = append(kept, t)
		b, s := h.hashToken(t)
		v[b] += s
	}
	if h.Bigrams {
		for _, g := range textproc.NGrams(kept, 2) {
			b, s := h.hashToken(g)
			v[b] += s
		}
	}
	return v
}

// TransformAll vectorizes a corpus.
func (h *HashingVectorizer) TransformAll(docs []string) []Vector {
	out := make([]Vector, len(docs))
	for i, d := range docs {
		out[i] = h.Transform(d)
	}
	return out
}

// TFIDF rescales count vectors by inverse document frequency. Fit it
// on a training corpus, then transform any count vector.
type TFIDF struct {
	idf  map[int]float64
	docs int
}

// FitTFIDF computes smoothed IDF weights from count vectors.
func FitTFIDF(counts []Vector) *TFIDF {
	df := make(map[int]int)
	for _, v := range counts {
		for i, x := range v {
			if x != 0 {
				df[i]++
			}
		}
	}
	t := &TFIDF{idf: make(map[int]float64, len(df)), docs: len(counts)}
	for i, d := range df {
		t.idf[i] = math.Log(float64(1+t.docs)/float64(1+d)) + 1
	}
	return t
}

// Transform returns the L2-normalized TF-IDF weighting of a count
// vector. Unseen features get the maximum IDF.
func (t *TFIDF) Transform(counts Vector) Vector {
	maxIDF := math.Log(float64(1+t.docs)) + 1
	out := make(Vector, len(counts))
	for i, c := range counts {
		idf, ok := t.idf[i]
		if !ok {
			idf = maxIDF
		}
		out[i] = c * idf
	}
	if n := out.Norm(); n > 0 {
		out.Scale(1 / n)
	}
	return out
}

// TransformAll applies Transform to a corpus.
func (t *TFIDF) TransformAll(counts []Vector) []Vector {
	out := make([]Vector, len(counts))
	for i, v := range counts {
		out[i] = t.Transform(v)
	}
	return out
}
