package textclf

import (
	"fmt"
	"testing"

	"repro/internal/xrand"
)

// framingData generates synthetic tweets where the label is decided by
// marker words, mimicking the WEF framings.
func framingData(n int, seed uint64) ([]string, []bool) {
	r := xrand.New(seed)
	pos := []string{"climate change caused this wildfire", "global warming fuels these fires", "carbon emissions made the fire season worse"}
	neg := []string{"traffic is closed near the fire", "sending support to firefighters", "smoke photos from my window"}
	fillers := []string{"today", "so sad", "please stay safe", "breaking", "again"}
	texts := make([]string, n)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		labels[i] = r.Bool(0.5)
		base := xrand.Choice(r, neg)
		if labels[i] {
			base = xrand.Choice(r, pos)
		}
		texts[i] = base + " " + xrand.Choice(r, fillers)
	}
	return texts, labels
}

func TestPretrainedValidates(t *testing.T) {
	if _, err := Pretrained("x", 0, 8, 4); err == nil {
		t.Fatal("expected error for zero hashD")
	}
	if _, err := Pretrained("x", 64, 0, 4); err == nil {
		t.Fatal("expected error for zero dim")
	}
	if _, err := Pretrained("x", 64, 8, 0); err == nil {
		t.Fatal("expected error for zero hidden")
	}
}

func TestPretrainedDeterministicByName(t *testing.T) {
	a, _ := Pretrained("bert-base", 256, 16, 8)
	b, _ := Pretrained("bert-base", 256, 16, 8)
	c, _ := Pretrained("bert-other", 256, 16, 8)
	if a.emb[0][0] != b.emb[0][0] {
		t.Fatal("same name should give identical checkpoints")
	}
	if a.emb[0][0] == c.emb[0][0] {
		t.Fatal("different names should give different checkpoints")
	}
}

func TestFinetuneLearnsMarkers(t *testing.T) {
	texts, labels := framingData(600, 11)
	m, err := Pretrained("bert-framing", 4096, 24, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Finetune(texts, labels, Config{Epochs: 8, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	testTexts, testLabels := framingData(200, 99)
	correct := 0
	for i, tx := range testTexts {
		if m.Predict(tx) == testLabels[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(testTexts))
	if acc < 0.9 {
		t.Fatalf("fine-tuned accuracy = %v", acc)
	}
}

func TestFinetuneErrors(t *testing.T) {
	m, _ := Pretrained("x", 64, 8, 4)
	if err := m.Finetune(nil, nil, Config{}); err == nil {
		t.Fatal("expected empty-set error")
	}
	if err := m.Finetune([]string{"a"}, []bool{true, false}, Config{}); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestProbaRangeAndEmptyText(t *testing.T) {
	m, _ := Pretrained("x", 64, 8, 4)
	for _, s := range []string{"", "hello world", "the the the"} {
		p := m.Proba(s)
		if p < 0 || p > 1 {
			t.Fatalf("proba(%q) = %v", s, p)
		}
	}
}

func TestSizeBytesScale(t *testing.T) {
	m, _ := Pretrained("bert-base", 65536, 32, 16)
	size := m.SizeBytes()
	// The reference config is calibrated to BERT-base's ~440 MB.
	if size < 400<<20 || size > 480<<20 {
		t.Fatalf("reference model size = %d MB", size>>20)
	}
	small, _ := Pretrained("tiny", 1024, 8, 4)
	if small.SizeBytes() >= size {
		t.Fatal("smaller model should have smaller footprint")
	}
}

func TestEnsembleMultiLabel(t *testing.T) {
	labels := []string{"link", "action", "attribution", "irrelevant"}
	e, err := NewEnsemble(labels, 2048, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(5)
	markers := []string{"climate link here", "take climate action", "blame climate change", "nothing relevant"}
	var texts []string
	var golds [][]bool
	for i := 0; i < 400; i++ {
		k := r.Intn(4)
		texts = append(texts, fmt.Sprintf("%s tweet %d", markers[k], i%7))
		row := make([]bool, 4)
		row[k] = true
		golds = append(golds, row)
	}
	if err := e.Finetune(texts, golds, Config{Epochs: 6, Seed: 21}); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, tx := range texts {
		pred := e.Predict(tx)
		ok := true
		for k := range pred {
			if pred[k] != golds[i][k] {
				ok = false
			}
		}
		if ok {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(texts)); acc < 0.85 {
		t.Fatalf("ensemble exact-match accuracy = %v", acc)
	}
	if e.SizeBytes() <= 0 {
		t.Fatal("ensemble size must be positive")
	}
}

func TestEnsembleErrors(t *testing.T) {
	if _, err := NewEnsemble(nil, 64, 8, 4); err == nil {
		t.Fatal("expected error for no labels")
	}
	e, _ := NewEnsemble([]string{"a", "b"}, 64, 8, 4)
	if err := e.Finetune([]string{"x"}, [][]bool{{true}}, Config{}); err == nil {
		t.Fatal("expected ragged labels error")
	}
}
