// Package textclf implements a small fine-tunable text classifier: a
// hashed embedding bag feeding a one-hidden-layer MLP trained with
// backpropagation. It is the reproduction's stand-in for the
// pre-trained BERT models the WEF task fine-tunes — same pipeline shape
// (load a pre-trained encoder, fine-tune on labeled tweets, predict),
// at laptop scale. The paper-scale compute cost is carried by the cost
// model, not by this implementation.
package textclf

import (
	"fmt"
	"math"

	"repro/internal/textproc"
	"repro/internal/xrand"
)

// Config controls fine-tuning.
type Config struct {
	Epochs int     // default 5
	LR     float64 // default 0.05
	Seed   uint64
}

// Model is one binary classifier.
type Model struct {
	name   string
	hashD  int // embedding table rows
	dim    int // embedding width
	hidden int

	emb [][]float64 // hashD x dim
	w1  [][]float64 // dim x hidden
	b1  []float64
	w2  []float64 // hidden
	b2  float64
}

// Pretrained builds a model whose embedding table is deterministically
// initialized from name — the stand-in for downloading a pre-trained
// checkpoint. hashD is the embedding-table size, dim the embedding
// width, hidden the MLP width.
func Pretrained(name string, hashD, dim, hidden int) (*Model, error) {
	if hashD <= 0 || dim <= 0 || hidden <= 0 {
		return nil, fmt.Errorf("textclf: sizes must be positive (hashD=%d dim=%d hidden=%d)", hashD, dim, hidden)
	}
	seed := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		seed ^= uint64(name[i])
		seed *= 1099511628211
	}
	r := xrand.New(seed)
	m := &Model{name: name, hashD: hashD, dim: dim, hidden: hidden}
	m.emb = randMatrix(r, hashD, dim, 0.5/math.Sqrt(float64(dim)))
	m.w1 = randMatrix(r, dim, hidden, 1/math.Sqrt(float64(dim)))
	m.b1 = make([]float64, hidden)
	m.w2 = make([]float64, hidden)
	for i := range m.w2 {
		m.w2[i] = r.Norm() / math.Sqrt(float64(hidden))
	}
	return m, nil
}

func randMatrix(r *xrand.Rand, rows, cols int, scale float64) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
		for j := range m[i] {
			m[i][j] = r.Norm() * scale
		}
	}
	return m
}

// Name returns the checkpoint name.
func (m *Model) Name() string { return m.name }

// SizeBytes returns the simulated parameter footprint — used when the
// model is shipped through the object store or the network. It scales
// with the real parameter count but is calibrated to BERT-base's
// ~440 MB footprint via a fixed multiplier.
func (m *Model) SizeBytes() int64 {
	params := int64(m.hashD*m.dim + m.dim*m.hidden + m.hidden + m.hidden + 1)
	const bertBase = 440 << 20
	// Scale a 64k x 32 reference config to bertBase.
	ref := int64(65536*32 + 32*16 + 16 + 16 + 1)
	return params * bertBase / ref
}

// bucket hashes a token into the embedding table.
func (m *Model) bucket(tok string) int {
	h := uint32(2166136261)
	for i := 0; i < len(tok); i++ {
		h ^= uint32(tok[i])
		h *= 16777619
	}
	return int(h>>1) % m.hashD
}

// embed returns the mean embedding of the document's tokens and the
// bucket list (for the backward pass). Empty documents embed to zero.
func (m *Model) embed(text string) ([]float64, []int) {
	toks := textproc.Tokenize(text)
	x := make([]float64, m.dim)
	var buckets []int
	for _, t := range toks {
		if textproc.Stopwords[t] {
			continue
		}
		b := m.bucket(t)
		buckets = append(buckets, b)
		for j, v := range m.emb[b] {
			x[j] += v
		}
	}
	if len(buckets) > 0 {
		inv := 1 / float64(len(buckets))
		for j := range x {
			x[j] *= inv
		}
	}
	return x, buckets
}

// forward computes the hidden activations and output probability.
func (m *Model) forward(x []float64) (h []float64, p float64) {
	h = make([]float64, m.hidden)
	for j := 0; j < m.hidden; j++ {
		s := m.b1[j]
		for i := 0; i < m.dim; i++ {
			s += m.w1[i][j] * x[i]
		}
		if s > 0 {
			h[j] = s
		}
	}
	z := m.b2
	for j, v := range h {
		z += m.w2[j] * v
	}
	return h, stableSigmoid(z)
}

func stableSigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Finetune trains the model on labeled texts with SGD backprop,
// updating the MLP and the touched embedding rows (true fine-tuning).
func (m *Model) Finetune(texts []string, labels []bool, cfg Config) error {
	if len(texts) == 0 {
		return fmt.Errorf("textclf: empty training set")
	}
	if len(texts) != len(labels) {
		return fmt.Errorf("textclf: %d texts, %d labels", len(texts), len(labels))
	}
	epochs := cfg.Epochs
	if epochs == 0 {
		epochs = 5
	}
	lr := cfg.LR
	if lr == 0 {
		lr = 0.05
	}
	r := xrand.New(cfg.Seed)
	idx := make([]int, len(texts))
	for i := range idx {
		idx[i] = i
	}
	for e := 0; e < epochs; e++ {
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			m.step(texts[i], labels[i], lr)
		}
	}
	return nil
}

// step performs one SGD update.
func (m *Model) step(text string, label bool, lr float64) {
	x, buckets := m.embed(text)
	h, p := m.forward(x)
	y := 0.0
	if label {
		y = 1.0
	}
	dz := p - y

	// Output layer.
	dh := make([]float64, m.hidden)
	for j := range h {
		if h[j] > 0 {
			dh[j] = dz * m.w2[j]
		}
		m.w2[j] -= lr * dz * h[j]
	}
	m.b2 -= lr * dz

	// Hidden layer and input gradient.
	dx := make([]float64, m.dim)
	for i := 0; i < m.dim; i++ {
		for j := 0; j < m.hidden; j++ {
			if dh[j] != 0 {
				dx[i] += m.w1[i][j] * dh[j]
				m.w1[i][j] -= lr * dh[j] * x[i]
			}
		}
	}
	for j := 0; j < m.hidden; j++ {
		m.b1[j] -= lr * dh[j]
	}

	// Embedding rows (mean pooling spreads the gradient).
	if len(buckets) > 0 {
		inv := 1 / float64(len(buckets))
		for _, b := range buckets {
			row := m.emb[b]
			for i := range row {
				row[i] -= lr * dx[i] * inv
			}
		}
	}
}

// Proba returns P(label=true) for a text.
func (m *Model) Proba(text string) float64 {
	x, _ := m.embed(text)
	_, p := m.forward(x)
	return p
}

// Predict thresholds Proba at 0.5.
func (m *Model) Predict(text string) bool { return m.Proba(text) >= 0.5 }

// Ensemble is a set of independently fine-tuned binary models used for
// multi-label classification — the WEF pipeline's four framing models.
type Ensemble struct {
	Labels []string
	Models []*Model
}

// NewEnsemble creates one pretrained model per label.
func NewEnsemble(labels []string, hashD, dim, hidden int) (*Ensemble, error) {
	if len(labels) == 0 {
		return nil, fmt.Errorf("textclf: ensemble needs at least one label")
	}
	e := &Ensemble{Labels: append([]string(nil), labels...)}
	for _, l := range labels {
		m, err := Pretrained("bert-"+l, hashD, dim, hidden)
		if err != nil {
			return nil, err
		}
		e.Models = append(e.Models, m)
	}
	return e, nil
}

// Finetune trains each model on its label column. golds[i][k] is
// whether example i carries label k.
func (e *Ensemble) Finetune(texts []string, golds [][]bool, cfg Config) error {
	for k, m := range e.Models {
		col := make([]bool, len(texts))
		for i := range texts {
			if len(golds[i]) != len(e.Models) {
				return fmt.Errorf("textclf: example %d has %d labels, ensemble has %d", i, len(golds[i]), len(e.Models))
			}
			col[i] = golds[i][k]
		}
		sub := cfg
		sub.Seed = cfg.Seed*31 + uint64(k)
		if err := m.Finetune(texts, col, sub); err != nil {
			return err
		}
	}
	return nil
}

// Predict returns the multi-label prediction for a text.
func (e *Ensemble) Predict(text string) []bool {
	out := make([]bool, len(e.Models))
	for k, m := range e.Models {
		out[k] = m.Predict(text)
	}
	return out
}

// SizeBytes sums the member models' footprints.
func (e *Ensemble) SizeBytes() int64 {
	var n int64
	for _, m := range e.Models {
		n += m.SizeBytes()
	}
	return n
}
