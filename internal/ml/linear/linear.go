// Package linear implements logistic regression trained with
// stochastic gradient descent, plus the binary and multi-label
// classification metrics the evaluation tasks report. It is the
// SGDClassifier of the paper's Figure 1 pipeline.
package linear

import (
	"fmt"
	"math"

	"repro/internal/ml/feature"
	"repro/internal/xrand"
)

// SGDClassifier is a binary logistic-regression model.
type SGDClassifier struct {
	// LR is the learning rate (default 0.1 when zero).
	LR float64
	// L2 is the ridge penalty (default 1e-4 when zero).
	L2 float64
	// Epochs is the number of passes over the data (default 5 when
	// zero).
	Epochs int
	// Seed drives example shuffling.
	Seed uint64

	w feature.Vector
	b float64
}

// sigmoid is the logistic function.
func sigmoid(z float64) float64 {
	if z >= 0 {
		e := math.Exp(-z)
		return 1 / (1 + e)
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Fit trains on sparse vectors with boolean labels. It returns an
// error on empty or mismatched input.
func (c *SGDClassifier) Fit(x []feature.Vector, y []bool) error {
	if len(x) == 0 {
		return fmt.Errorf("linear: empty training set")
	}
	if len(x) != len(y) {
		return fmt.Errorf("linear: %d examples, %d labels", len(x), len(y))
	}
	lr := c.LR
	if lr == 0 {
		lr = 0.1
	}
	l2 := c.L2
	if l2 == 0 {
		l2 = 1e-4
	}
	epochs := c.Epochs
	if epochs == 0 {
		epochs = 5
	}
	c.w = make(feature.Vector)
	c.b = 0
	r := xrand.New(c.Seed)
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	for e := 0; e < epochs; e++ {
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			target := 0.0
			if y[i] {
				target = 1.0
			}
			p := sigmoid(c.w.Dot(x[i]) + c.b)
			g := p - target
			// L2 shrink applied lazily only to touched features keeps
			// the update sparse.
			for f, v := range x[i] {
				c.w[f] -= lr * (g*v + l2*c.w[f])
			}
			c.b -= lr * g
		}
	}
	return nil
}

// DecisionFunction returns the raw margin for one example.
func (c *SGDClassifier) DecisionFunction(x feature.Vector) float64 {
	return c.w.Dot(x) + c.b
}

// PredictProba returns P(label=true).
func (c *SGDClassifier) PredictProba(x feature.Vector) float64 {
	return sigmoid(c.DecisionFunction(x))
}

// Predict returns the thresholded label.
func (c *SGDClassifier) Predict(x feature.Vector) bool {
	return c.DecisionFunction(x) >= 0
}

// PredictAll predicts a batch.
func (c *SGDClassifier) PredictAll(x []feature.Vector) []bool {
	out := make([]bool, len(x))
	for i, v := range x {
		out[i] = c.Predict(v)
	}
	return out
}

// Weights exposes the learned weight vector (read-only by convention).
func (c *SGDClassifier) Weights() feature.Vector { return c.w }

// Metrics holds binary classification quality numbers.
type Metrics struct {
	Accuracy  float64
	Precision float64
	Recall    float64
	F1        float64
	TP        int
	FP        int
	TN        int
	FN        int
}

// Evaluate computes metrics of predictions against gold labels.
func Evaluate(pred, gold []bool) (Metrics, error) {
	if len(pred) != len(gold) {
		return Metrics{}, fmt.Errorf("linear: %d predictions, %d labels", len(pred), len(gold))
	}
	if len(pred) == 0 {
		return Metrics{}, fmt.Errorf("linear: empty evaluation set")
	}
	var m Metrics
	for i := range pred {
		switch {
		case pred[i] && gold[i]:
			m.TP++
		case pred[i] && !gold[i]:
			m.FP++
		case !pred[i] && gold[i]:
			m.FN++
		default:
			m.TN++
		}
	}
	m.Accuracy = float64(m.TP+m.TN) / float64(len(pred))
	if m.TP+m.FP > 0 {
		m.Precision = float64(m.TP) / float64(m.TP+m.FP)
	}
	if m.TP+m.FN > 0 {
		m.Recall = float64(m.TP) / float64(m.TP+m.FN)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m, nil
}

// MacroF1 averages F1 across the label columns of a multi-label
// problem (rows are examples).
func MacroF1(pred, gold [][]bool) (float64, error) {
	if len(pred) != len(gold) {
		return 0, fmt.Errorf("linear: %d predictions, %d labels", len(pred), len(gold))
	}
	if len(pred) == 0 {
		return 0, fmt.Errorf("linear: empty evaluation set")
	}
	labels := len(gold[0])
	var sum float64
	for l := 0; l < labels; l++ {
		p := make([]bool, len(pred))
		g := make([]bool, len(gold))
		for i := range pred {
			if len(pred[i]) != labels || len(gold[i]) != labels {
				return 0, fmt.Errorf("linear: ragged multi-label matrix at row %d", i)
			}
			p[i] = pred[i][l]
			g[i] = gold[i][l]
		}
		m, err := Evaluate(p, g)
		if err != nil {
			return 0, err
		}
		sum += m.F1
	}
	return sum / float64(labels), nil
}
