package linear

import (
	"math"
	"testing"

	"repro/internal/ml/feature"
	"repro/internal/xrand"
)

// separableData builds a linearly separable sparse dataset.
func separableData(n int, seed uint64) ([]feature.Vector, []bool) {
	r := xrand.New(seed)
	x := make([]feature.Vector, n)
	y := make([]bool, n)
	for i := 0; i < n; i++ {
		pos := r.Bool(0.5)
		v := make(feature.Vector)
		if pos {
			v[0] = 1 + r.Float64()
			v[1] = r.Float64() * 0.2
		} else {
			v[0] = r.Float64() * 0.2
			v[1] = 1 + r.Float64()
		}
		v[2+r.Intn(20)] = r.Float64() * 0.1 // noise feature
		x[i] = v
		y[i] = pos
	}
	return x, y
}

func TestFitSeparable(t *testing.T) {
	x, y := separableData(400, 1)
	c := &SGDClassifier{Epochs: 10, Seed: 7}
	if err := c.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred := c.PredictAll(x)
	m, err := Evaluate(pred, y)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy < 0.97 {
		t.Fatalf("train accuracy = %v on separable data", m.Accuracy)
	}
}

func TestFitGeneralizes(t *testing.T) {
	xTrain, yTrain := separableData(400, 2)
	xTest, yTest := separableData(200, 3)
	c := &SGDClassifier{Epochs: 10, Seed: 7}
	if err := c.Fit(xTrain, yTrain); err != nil {
		t.Fatal(err)
	}
	m, err := Evaluate(c.PredictAll(xTest), yTest)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy < 0.95 {
		t.Fatalf("test accuracy = %v", m.Accuracy)
	}
}

func TestFitErrors(t *testing.T) {
	c := &SGDClassifier{}
	if err := c.Fit(nil, nil); err == nil {
		t.Fatal("expected error for empty set")
	}
	if err := c.Fit([]feature.Vector{{0: 1}}, []bool{true, false}); err == nil {
		t.Fatal("expected error for length mismatch")
	}
}

func TestFitDeterministic(t *testing.T) {
	x, y := separableData(100, 4)
	a := &SGDClassifier{Epochs: 3, Seed: 9}
	b := &SGDClassifier{Epochs: 3, Seed: 9}
	a.Fit(x, y)
	b.Fit(x, y)
	for f, w := range a.Weights() {
		if math.Abs(b.Weights()[f]-w) > 1e-12 {
			t.Fatal("training not deterministic")
		}
	}
}

func TestPredictProbaRange(t *testing.T) {
	x, y := separableData(100, 5)
	c := &SGDClassifier{Epochs: 3}
	c.Fit(x, y)
	for _, v := range x {
		p := c.PredictProba(v)
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
		if (p >= 0.5) != c.Predict(v) {
			t.Fatal("Predict inconsistent with PredictProba")
		}
	}
}

func TestSigmoidStable(t *testing.T) {
	if s := sigmoid(1000); s != 1 {
		t.Fatalf("sigmoid(1000) = %v", s)
	}
	if s := sigmoid(-1000); s != 0 {
		t.Fatalf("sigmoid(-1000) = %v", s)
	}
	if math.Abs(sigmoid(0)-0.5) > 1e-12 {
		t.Fatal("sigmoid(0) != 0.5")
	}
}

func TestEvaluateCounts(t *testing.T) {
	pred := []bool{true, true, false, false, true}
	gold := []bool{true, false, false, true, true}
	m, err := Evaluate(pred, gold)
	if err != nil {
		t.Fatal(err)
	}
	if m.TP != 2 || m.FP != 1 || m.FN != 1 || m.TN != 1 {
		t.Fatalf("confusion = %+v", m)
	}
	if math.Abs(m.Accuracy-0.6) > 1e-12 {
		t.Fatalf("accuracy = %v", m.Accuracy)
	}
	if math.Abs(m.Precision-2.0/3) > 1e-12 || math.Abs(m.Recall-2.0/3) > 1e-12 {
		t.Fatalf("p/r = %v/%v", m.Precision, m.Recall)
	}
	if math.Abs(m.F1-2.0/3) > 1e-12 {
		t.Fatalf("f1 = %v", m.F1)
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate([]bool{true}, []bool{}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := Evaluate(nil, nil); err == nil {
		t.Fatal("expected empty-set error")
	}
}

func TestEvaluateDegenerate(t *testing.T) {
	// All-negative predictions: precision undefined, reported as 0.
	m, err := Evaluate([]bool{false, false}, []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	if m.Precision != 0 || m.F1 != 0 {
		t.Fatalf("degenerate metrics = %+v", m)
	}
}

func TestMacroF1(t *testing.T) {
	pred := [][]bool{{true, false}, {false, true}, {true, true}}
	gold := [][]bool{{true, false}, {false, false}, {true, true}}
	f1, err := MacroF1(pred, gold)
	if err != nil {
		t.Fatal(err)
	}
	// Label 0 is perfect (f1=1); label 1 has tp=1 fp=1 fn=0 -> f1=2/3.
	want := (1 + 2.0/3) / 2
	if math.Abs(f1-want) > 1e-12 {
		t.Fatalf("macro f1 = %v, want %v", f1, want)
	}
}

func TestMacroF1Errors(t *testing.T) {
	if _, err := MacroF1(nil, nil); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := MacroF1([][]bool{{true}}, [][]bool{}); err == nil {
		t.Fatal("expected mismatch error")
	}
	if _, err := MacroF1([][]bool{{true, false}, {true}}, [][]bool{{true, false}, {true, false}}); err == nil {
		t.Fatal("expected ragged matrix error")
	}
}
