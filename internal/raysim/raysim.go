// Package raysim simulates the Ray-style task backend that the script
// paradigm uses to scale beyond one machine. A driver submits tasks
// with dependencies; the scheduler runs them on a CPU pool whose size
// is the `num_cpus` configuration — the paper's "number of workers" for
// the script paradigm. Tasks may fetch objects from the shared object
// store before running, and framework (PyTorch) work is throttled to
// the model's TorchCoresRay setting, both mechanisms the paper uses to
// explain the script paradigm's behaviour on GOTTA and KGE.
package raysim

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/faults"
	"repro/internal/objstore"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Cluster is a Ray head plus worker CPUs and an object store.
type Cluster struct {
	model   *cost.Model
	numCPUs int
	store   *objstore.Store
	topo    shard.Topology
}

// PaperStoreBytes is the plasma store size the paper's Ray setup used
// (Ray's default ~30% RAM share of one 64 GB node).
const PaperStoreBytes = int64(19) << 30

// NewClusterFor creates a Ray cluster for a shard topology: the paper
// cluster with the paper's 19 GB plasma store on the legacy tier, or a
// topology-sized cluster whose store grows with the node count on the
// sharded tier. Jobs created on it price cross-node object fetches
// automatically.
func NewClusterFor(model *cost.Model, topo shard.Topology, numCPUs int) (*Cluster, error) {
	topo, err := topo.Normalize()
	if err != nil {
		return nil, err
	}
	store := PaperStoreBytes
	if topo.Sharded() {
		store = PaperStoreBytes * int64(topo.NumNodes()) / cluster.PaperWorkerNodes
		if store < PaperStoreBytes {
			store = PaperStoreBytes
		}
	}
	c, err := NewClusterOn(model, topo.Cluster(), numCPUs, store)
	if err != nil {
		return nil, err
	}
	c.topo = topo
	return c, nil
}

// NewClusterOn creates a Ray cluster on an explicit machine topology,
// rejecting configurations the hardware cannot honour: num_cpus beyond
// the worker nodes' vCPUs, or an object store larger than Ray's 30%
// share of cluster RAM.
func NewClusterOn(model *cost.Model, topo *cluster.Cluster, numCPUs int, storeBytes int64) (*Cluster, error) {
	if topo == nil {
		return nil, fmt.Errorf("raysim: nil cluster topology")
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if numCPUs > topo.TotalWorkerCPUs() {
		return nil, fmt.Errorf("raysim: num_cpus=%d exceeds the cluster's %d worker vCPUs", numCPUs, topo.TotalWorkerCPUs())
	}
	if maxStore := topo.TotalWorkerRAM() * 3 / 10; storeBytes > maxStore {
		return nil, fmt.Errorf("raysim: object store of %d bytes exceeds Ray's 30%% RAM share (%d bytes)", storeBytes, maxStore)
	}
	return NewCluster(model, numCPUs, storeBytes)
}

// NewCluster creates a cluster with numCPUs schedulable CPUs and an
// object store of storeBytes capacity. A nil model uses cost.Default().
func NewCluster(model *cost.Model, numCPUs int, storeBytes int64) (*Cluster, error) {
	if model == nil {
		model = cost.Default()
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if numCPUs < 1 {
		return nil, fmt.Errorf("raysim: num_cpus must be at least 1, got %d", numCPUs)
	}
	store, err := objstore.New(model, storeBytes)
	if err != nil {
		return nil, err
	}
	return &Cluster{model: model, numCPUs: numCPUs, store: store}, nil
}

// Model returns the cluster's cost model.
func (c *Cluster) Model() *cost.Model { return c.model }

// NumCPUs returns the configured CPU count.
func (c *Cluster) NumCPUs() int { return c.numCPUs }

// Store returns the shared object store.
func (c *Cluster) Store() *objstore.Store { return c.store }

// TaskID identifies a task within one Job.
type TaskID int

// TaskSpec describes one remote task.
type TaskSpec struct {
	// Name labels the task in errors and traces.
	Name string
	// Work is interpreter-level work (runs at Python speed on one CPU).
	Work cost.Work
	// FrameworkSeconds is ML-framework work measured at one core; it is
	// scaled by the Torch parallelism Ray permits (num_cpus=1 pins it
	// to a single core, per the paper's worker-configuration note).
	FrameworkSeconds float64
	// Gets lists objects fetched from the object store before the task
	// body runs.
	Gets []objstore.ID
	// Deps lists tasks that must finish first.
	Deps []TaskID
}

// Job is a DAG of tasks under construction for one driver submission.
type Job struct {
	cluster  *Cluster
	tasks    []TaskSpec
	err      error
	rec      *telemetry.Recorder
	proc     string
	plan     faults.Plan
	topo     shard.Topology
	progress core.ProgressSink
	progTask string
}

// SetShard prices the sharded tier onto the job. On a multi-node
// topology a task's object fetches are no longer node-local: the store
// is datum-sharded, so the expected (N-1)/N fraction of each fetched
// object rides the NIC on top of the plasma access. Like faults, this
// touches only the schedule — task bodies and outputs are unchanged.
func (j *Job) SetShard(topo shard.Topology) { j.topo = topo }

// SetFaults arms a deterministic fault plan for Run. Recovery follows
// Ray's lineage semantics: a killed task is re-executed whole after a
// capped exponential backoff, and a node-level fault additionally
// reconstructs the objects the task was fetching. The task bodies
// themselves are untouched, so outputs are bit-identical to the
// failure-free run.
func (j *Job) SetFaults(plan faults.Plan) { j.plan = plan }

// SetTelemetry attaches a recorder; Run then emits one span per task on
// the "ray-cpus" track of process proc, stamped with the sim virtual
// clock, plus a critical-path breakdown. A nil recorder (the default)
// keeps Run uninstrumented.
func (j *Job) SetTelemetry(rec *telemetry.Recorder, proc string) {
	j.rec = rec
	j.proc = proc
}

// SetProgress attaches a live progress sink for Run. The script
// paradigm cannot stream truly live per-task state the way the
// dataflow engine does — virtual task times do not exist until the
// schedule is computed — so Run publishes one completion event per
// task after scheduling, stamped with the task's virtual finish time
// and ordered by it. That post-hoc cadence is the paper's visibility
// asymmetry, reproduced rather than papered over.
func (j *Job) SetProgress(sink core.ProgressSink, task string) {
	j.progress = sink
	j.progTask = task
}

// NewJob starts an empty task graph on the cluster's topology.
func (c *Cluster) NewJob() *Job {
	return &Job{cluster: c, topo: c.topo}
}

// Submit adds a task and returns its ID.
func (j *Job) Submit(spec TaskSpec) TaskID {
	id := TaskID(len(j.tasks))
	if spec.Name == "" {
		spec.Name = fmt.Sprintf("task-%d", id)
	}
	for _, d := range spec.Deps {
		if int(d) < 0 || int(d) >= len(j.tasks) {
			if j.err == nil {
				j.err = fmt.Errorf("raysim: task %q depends on unknown task %d", spec.Name, d)
			}
		}
	}
	if spec.FrameworkSeconds < 0 && j.err == nil {
		j.err = fmt.Errorf("raysim: task %q has negative framework seconds", spec.Name)
	}
	j.tasks = append(j.tasks, spec)
	return id
}

// Len returns the number of submitted tasks.
func (j *Job) Len() int { return len(j.tasks) }

// Result reports a completed job.
type Result struct {
	// Makespan is the simulated seconds from submission to the last
	// task finishing.
	Makespan float64
	// Schedule is the underlying simulator timeline.
	Schedule *sim.Result
	// ParallelTasks is the peak number of concurrently running tasks —
	// the paper's "number of parallel processes" metric.
	ParallelTasks int
	// Recovery aggregates fault-recovery work (zero without a fault
	// plan); per-object reconstruction detail is in Store().Stats().
	Recovery sim.Recovery
	// ShuffleBytes totals the cross-node share of object fetches on a
	// sharded topology (zero on the legacy single-cluster tier).
	ShuffleBytes int64
}

// Run schedules the job on the cluster and returns its simulated
// timeline. Object fetches are priced against the store's current
// state; torch work is scaled by the Ray core limit.
func (j *Job) Run() (*Result, error) {
	if j.err != nil {
		return nil, j.err
	}
	if len(j.tasks) == 0 {
		return nil, fmt.Errorf("raysim: empty job")
	}
	m := j.cluster.model
	torch := cost.TorchSpeedup(m.TorchCoresRay)

	const pool = "ray-cpus"
	topo, err := j.topo.Normalize()
	if err != nil {
		return nil, err
	}
	nodes := topo.NumNodes()
	var shuffleBytes int64
	jobs := make([]sim.Job, 0, len(j.tasks))
	for i, t := range j.tasks {
		var getSecs float64
		for _, id := range t.Gets {
			s, err := j.cluster.store.AccessSeconds(id)
			if err != nil {
				return nil, fmt.Errorf("raysim: task %q: %w", t.Name, err)
			}
			getSecs += s
			if topo.Sharded() {
				// The store is datum-sharded: an expected (N-1)/N of the
				// object lives on other nodes and rides the NIC.
				cross := shard.ExHash.CrossBytes(j.cluster.store.Size(id), nodes)
				shuffleBytes += cross
				getSecs += m.ShuffleSeconds(cross)
			}
		}
		deps := make([]sim.JobID, len(t.Deps))
		for k, d := range t.Deps {
			deps[k] = sim.JobID(d)
		}
		jobs = append(jobs, sim.Job{
			ID:   sim.JobID(i),
			Name: t.Name,
			Pool: pool,
			// The object-store fetch happens inside the task body (it
			// holds the CPU while deserializing), so it is cost, not
			// latency; the fixed task overhead covers scheduling.
			Cost:    m.TaskOverhead + t.Work.Seconds(cost.Python) + t.FrameworkSeconds/torch + getSecs,
			Deps:    deps,
			Latency: 0,
		})
	}
	pools := []sim.Pool{{Name: pool, Slots: j.cluster.numCPUs}}
	var sched *sim.Result
	if !j.plan.Injecting() {
		sched, err = sim.Schedule(jobs, pools)
	} else {
		sched, err = j.scheduleFaulty(jobs, pools)
	}
	if err != nil {
		return nil, err
	}
	j.recordTelemetry(jobs, sched)
	j.publishProgress(sched)
	return &Result{
		Makespan:      sched.Makespan,
		Schedule:      sched,
		ParallelTasks: peakConcurrency(sched),
		Recovery:      sched.Recovery,
		ShuffleBytes:  shuffleBytes,
	}, nil
}

// scheduleFaulty runs the job under its fault plan: the failure-free
// schedule fixes the fault horizon, the plan expands into kill events
// over it, and the faulty schedule retries killed tasks from lineage
// with capped exponential backoff, pricing object reconstruction for
// node-level faults.
func (j *Job) scheduleFaulty(jobs []sim.Job, pools []sim.Pool) (*sim.Result, error) {
	clean, err := sim.Schedule(jobs, pools)
	if err != nil {
		return nil, err
	}
	evs := j.plan.Events(clean.Makespan)
	if len(evs) == 0 {
		return clean, nil
	}
	simFaults := make([]sim.FaultEvent, len(evs))
	for i, e := range evs {
		simFaults[i] = sim.FaultEvent{
			At: e.At, Pool: jobs[0].Pool, Salt: e.Salt,
			LoseObjects: e.Kind == faults.KillNode,
		}
	}
	store := j.cluster.store
	retry := sim.RetryPolicy{
		Delay: func(_ sim.JobID, r int) float64 { return j.plan.Backoff(r) },
		ExtraCost: func(id sim.JobID, _ int, lost bool) float64 {
			if !lost {
				return 0
			}
			// Job IDs are task indices: rebuild the killed task's
			// object fetches from lineage.
			var secs float64
			for _, obj := range j.tasks[int(id)].Gets {
				s, err := store.ReconstructSeconds(obj)
				if err != nil {
					continue // object deleted since submission
				}
				secs += s
			}
			return secs
		},
	}
	return sim.ScheduleFaulty(jobs, pools, simFaults, retry)
}

// recordTelemetry emits one virtual-clock span per scheduled task plus
// a critical-path row and per-job counters. Spans are stamped from the
// deterministic sim schedule, so instrumented runs export bit-equal.
func (j *Job) recordTelemetry(jobs []sim.Job, sched *sim.Result) {
	if j.rec == nil {
		return
	}
	proc := j.proc
	if proc == "" {
		proc = "script:ray"
	}
	spans := make([]telemetry.Span, 0, len(jobs))
	var totalCost float64
	for i := range jobs {
		jb := &jobs[i]
		sp, ok := sched.Spans[jb.ID]
		if !ok || jb.Cost <= 0 {
			continue
		}
		totalCost += jb.Cost
		spans = append(spans, telemetry.Span{
			Proc: proc, Track: "ray-cpus", Name: jb.Name, Cat: "task",
			HasVirt: true,
			Virtual: telemetry.Virt{Start: sp.Start, Dur: sp.Finish - sp.Start},
		})
	}
	// Aborted attempts, tagged as recovery work: the time each killed
	// attempt held a CPU before the fault struck.
	for _, ab := range sched.Aborts {
		spans = append(spans, telemetry.Span{
			Proc: proc, Track: "ray-cpus",
			Name:    fmt.Sprintf("%s:killed#%d", jobs[int(ab.Job)].Name, ab.Attempt),
			Cat:     "recovery",
			HasVirt: true,
			Virtual: telemetry.Virt{Start: ab.Start, Dur: ab.Killed - ab.Start},
		})
	}
	j.rec.Record(spans...)
	reg := j.rec.Metrics
	reg.Counter("ray."+proc+".tasks").Add(0, int64(len(jobs)))
	if rec := sched.Recovery; rec.Kills > 0 {
		reg.Counter("ray."+proc+".recovery.kills").Add(0, int64(rec.Kills))
		reg.Counter("ray."+proc+".recovery.node_kills").Add(0, int64(rec.NodeKills))
		j.rec.SetMeta("ray."+proc+".recovery.lost_seconds", fmt.Sprintf("%.6f", rec.LostSeconds))
		j.rec.SetMeta("ray."+proc+".recovery.backoff_seconds", fmt.Sprintf("%.6f", rec.DelaySeconds))
		j.rec.SetMeta("ray."+proc+".recovery.reconstruct_seconds", fmt.Sprintf("%.6f", rec.ExtraCostSeconds))
	}
	if chain, err := sim.CriticalChain(jobs); err == nil {
		row := telemetry.CriticalRow{Proc: proc, Track: "ray-cpus"}
		for _, id := range chain {
			row.Jobs++
			row.Seconds += jobs[id].Cost + jobs[id].Latency
		}
		j.rec.AddCritical(row)
	}
	j.rec.SetMeta("ray."+proc+".makespan", fmt.Sprintf("%.6f", sched.Makespan))
	j.rec.SetMeta("ray."+proc+".cpu_seconds", fmt.Sprintf("%.6f", totalCost))
}

// publishProgress emits one virtual-stamped completion event per
// scheduled task, in deterministic (finish time, task id) order.
func (j *Job) publishProgress(sched *sim.Result) {
	if j.progress == nil {
		return
	}
	ids := make([]sim.JobID, 0, len(sched.Spans))
	for id := range sched.Spans {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		sa, sb := sched.Spans[ids[a]], sched.Spans[ids[b]]
		if sa.Finish != sb.Finish {
			return sa.Finish < sb.Finish
		}
		return ids[a] < ids[b]
	})
	for _, id := range ids {
		sp := sched.Spans[id]
		j.progress.Publish(core.ProgressEvent{
			Task:        j.progTask,
			Paradigm:    "script",
			Op:          j.tasks[int(id)].Name,
			Kind:        "task",
			State:       "completed",
			VirtSeconds: sp.Finish,
		})
	}
}

// peakConcurrency computes the maximum number of overlapping spans.
func peakConcurrency(s *sim.Result) int {
	type ev struct {
		at    float64
		delta int
	}
	var evs []ev
	for _, sp := range s.Spans {
		if sp.Finish > sp.Start {
			evs = append(evs, ev{sp.Start, 1}, ev{sp.Finish, -1})
		}
	}
	// Sort by time; ends before starts at the same instant.
	for i := 1; i < len(evs); i++ {
		for k := i; k > 0; k-- {
			if evs[k].at < evs[k-1].at || (evs[k].at == evs[k-1].at && evs[k].delta < evs[k-1].delta) {
				evs[k], evs[k-1] = evs[k-1], evs[k]
			} else {
				break
			}
		}
	}
	cur, peak := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// MapReduce is a convenience for the common fan-out/fan-in shape: n
// parallel map tasks (each optionally fetching shared objects) followed
// by one reduce task.
func (j *Job) MapReduce(name string, n int, mapSpec TaskSpec, reduceWork cost.Work) TaskID {
	deps := make([]TaskID, 0, n)
	for i := 0; i < n; i++ {
		spec := mapSpec
		spec.Name = fmt.Sprintf("%s-map-%d", name, i)
		deps = append(deps, j.Submit(spec))
	}
	return j.Submit(TaskSpec{
		Name: name + "-reduce",
		Work: reduceWork,
		Deps: deps,
	})
}
