package raysim

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/faults"
)

// buildJob submits a small fan-out/fan-in graph with an object fetch,
// fresh on each call so runs are independent.
func buildFaultJob(t *testing.T) *Job {
	t.Helper()
	c := newCluster(t, 4)
	if _, err := c.Store().Put("shared", 64<<20); err != nil {
		t.Fatal(err)
	}
	j := c.NewJob()
	var deps []TaskID
	for i := 0; i < 8; i++ {
		deps = append(deps, j.Submit(TaskSpec{
			Work: cost.Work{Interp: 2}, Gets: objstoreID("shared"),
		}))
	}
	j.Submit(TaskSpec{Work: cost.Work{Interp: 1}, Deps: deps})
	return j
}

func TestFaultPlanDeterministic(t *testing.T) {
	plan := faults.Plan{Seed: 7, Rate: 40, NodeFraction: 0.5}
	run := func() *Result {
		j := buildFaultJob(t)
		j.SetFaults(plan)
		res, err := j.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan {
		t.Fatalf("makespans differ: %v vs %v", a.Makespan, b.Makespan)
	}
	if a.Recovery != b.Recovery {
		t.Fatalf("recovery differs: %+v vs %+v", a.Recovery, b.Recovery)
	}
	if a.Recovery.Kills == 0 {
		t.Fatalf("expected kills at rate 40/100s, got %+v", a.Recovery)
	}
}

func TestZeroPlanMatchesCleanRun(t *testing.T) {
	clean := buildFaultJob(t)
	res, err := clean.Run()
	if err != nil {
		t.Fatal(err)
	}
	armed := buildFaultJob(t)
	armed.SetFaults(faults.Plan{})
	got, err := armed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != res.Makespan || got.Recovery != res.Recovery {
		t.Fatalf("zero plan changed the run: %v/%+v vs %v/%+v",
			got.Makespan, got.Recovery, res.Makespan, res.Recovery)
	}
	if got.Recovery.Kills != 0 {
		t.Fatalf("zero plan reported kills: %+v", got.Recovery)
	}
}

func TestFaultsSlowDownButNeverSpeedUp(t *testing.T) {
	clean := buildFaultJob(t)
	res, err := clean.Run()
	if err != nil {
		t.Fatal(err)
	}
	faulty := buildFaultJob(t)
	faulty.SetFaults(faults.Plan{Seed: 3, Rate: 60})
	got, err := faulty.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.Recovery.Kills > 0 && got.Makespan <= res.Makespan {
		t.Fatalf("faulty makespan %v not above clean %v despite %d kills",
			got.Makespan, res.Makespan, got.Recovery.Kills)
	}
}

func TestNodeFaultReconstructsObjects(t *testing.T) {
	j := buildFaultJob(t)
	// All faults are node-level; at this rate some will strike while a
	// task holding the shared object runs.
	j.SetFaults(faults.Plan{Seed: 11, Rate: 80, NodeFraction: 1})
	res, err := j.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery.NodeKills == 0 {
		t.Skip("no node kill landed on a running task at this seed")
	}
	st := j.cluster.store.Stats()
	if st.Reconstructions == 0 || st.ReconstructSeconds <= 0 {
		t.Fatalf("node kills without reconstruction accounting: %+v", st)
	}
	if res.Recovery.ExtraCostSeconds <= 0 {
		t.Fatalf("node kills added no extra cost: %+v", res.Recovery)
	}
}
