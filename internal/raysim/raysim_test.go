package raysim

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/cost"
	"repro/internal/objstore"
	"repro/internal/sim"
)

// objstoreID wraps a string as a single-element object ID list.
func objstoreID(s string) []objstore.ID { return []objstore.ID{objstore.ID(s)} }

// simJobID converts a task ID to the simulator job ID it maps to.
func simJobID(t TaskID) sim.JobID { return sim.JobID(t) }

func newCluster(t *testing.T, cpus int) *Cluster {
	t.Helper()
	c, err := NewCluster(nil, cpus, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClusterValidates(t *testing.T) {
	if _, err := NewCluster(nil, 0, 1<<20); err == nil {
		t.Fatal("expected error for zero CPUs")
	}
	if _, err := NewCluster(nil, 1, 0); err == nil {
		t.Fatal("expected error for zero store")
	}
	bad := cost.Default()
	bad.NetworkBytesPerSec = -1
	if _, err := NewCluster(bad, 1, 1<<20); err == nil {
		t.Fatal("expected error for invalid model")
	}
}

func TestEmptyJobRejected(t *testing.T) {
	c := newCluster(t, 2)
	if _, err := c.NewJob().Run(); err == nil {
		t.Fatal("expected error for empty job")
	}
}

func TestBadDepRejected(t *testing.T) {
	c := newCluster(t, 2)
	j := c.NewJob()
	j.Submit(TaskSpec{Name: "t", Deps: []TaskID{5}})
	if _, err := j.Run(); err == nil {
		t.Fatal("expected error for unknown dependency")
	}
}

func TestNegativeFrameworkRejected(t *testing.T) {
	c := newCluster(t, 2)
	j := c.NewJob()
	j.Submit(TaskSpec{Name: "t", FrameworkSeconds: -1})
	if _, err := j.Run(); err == nil {
		t.Fatal("expected error for negative framework seconds")
	}
}

func TestParallelSpeedup(t *testing.T) {
	run := func(cpus int) float64 {
		c := newCluster(t, cpus)
		j := c.NewJob()
		for i := 0; i < 16; i++ {
			j.Submit(TaskSpec{Work: cost.Work{Interp: 1}})
		}
		res, err := j.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	t1, t4 := run(1), run(4)
	if t4 >= t1 {
		t.Fatalf("4 cpus (%v) not faster than 1 (%v)", t4, t1)
	}
	if math.Abs(t4-t1/4) > 0.2*t1 {
		t.Fatalf("speedup not near 4x: t1=%v t4=%v", t1, t4)
	}
}

func TestParallelTasksMetric(t *testing.T) {
	c := newCluster(t, 3)
	j := c.NewJob()
	for i := 0; i < 10; i++ {
		j.Submit(TaskSpec{Work: cost.Work{Interp: 1}})
	}
	res, err := j.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ParallelTasks != 3 {
		t.Fatalf("peak parallelism = %d, want 3", res.ParallelTasks)
	}
}

func TestDependencyChainSequential(t *testing.T) {
	c := newCluster(t, 8)
	j := c.NewJob()
	a := j.Submit(TaskSpec{Work: cost.Work{Interp: 1}})
	b := j.Submit(TaskSpec{Work: cost.Work{Interp: 1}, Deps: []TaskID{a}})
	j.Submit(TaskSpec{Work: cost.Work{Interp: 1}, Deps: []TaskID{b}})
	res, err := j.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < 3 {
		t.Fatalf("chained makespan = %v, want >= 3", res.Makespan)
	}
	if res.ParallelTasks != 1 {
		t.Fatalf("chain peak parallelism = %d", res.ParallelTasks)
	}
}

func TestObjectGetsAddTime(t *testing.T) {
	c := newCluster(t, 1)
	if _, err := c.Store().Put("model", 1<<28); err != nil {
		t.Fatal(err)
	}
	without := func() float64 {
		j := c.NewJob()
		j.Submit(TaskSpec{Work: cost.Work{Interp: 1}})
		res, _ := j.Run()
		return res.Makespan
	}()
	with := func() float64 {
		j := c.NewJob()
		j.Submit(TaskSpec{Work: cost.Work{Interp: 1}, Gets: objstoreID("model")})
		res, _ := j.Run()
		return res.Makespan
	}()
	if with <= without {
		t.Fatalf("object fetch added no time: %v vs %v", with, without)
	}
}

func TestMissingObjectRejected(t *testing.T) {
	c := newCluster(t, 1)
	j := c.NewJob()
	j.Submit(TaskSpec{Gets: objstoreID("missing")})
	if _, err := j.Run(); err == nil {
		t.Fatal("expected error for missing object")
	}
}

func TestTorchThrottling(t *testing.T) {
	// With the default model Ray pins torch to 1 core: framework work
	// runs at face value. A model allowing 8 cores must be faster.
	slow := cost.Default() // TorchCoresRay = 1
	fast := cost.Default()
	fast.TorchCoresRay = 8
	run := func(m *cost.Model) float64 {
		c, err := NewCluster(m, 1, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		j := c.NewJob()
		j.Submit(TaskSpec{FrameworkSeconds: 100})
		res, err := j.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	ts, tf := run(slow), run(fast)
	if tf >= ts {
		t.Fatalf("8-core torch (%v) should beat 1-core (%v)", tf, ts)
	}
	if ts/tf < 3 {
		t.Fatalf("torch speedup only %vx", ts/tf)
	}
}

func TestSpilledModelFetchSlower(t *testing.T) {
	// The GOTTA mechanism: a model larger than the store budget spills,
	// and every task's fetch pays the disk rate.
	small, err := NewCluster(nil, 1, 1<<20) // 1 MB store
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewCluster(nil, 1, 4<<30) // 4 GB store
	if err != nil {
		t.Fatal(err)
	}
	gb := float64(int64(1) << 30)
	model := int64(1.59 * gb)
	run := func(c *Cluster) float64 {
		if _, err := c.Store().Put("bart", model); err != nil {
			t.Fatal(err)
		}
		j := c.NewJob()
		for i := 0; i < 4; i++ {
			j.Submit(TaskSpec{Gets: objstoreID("bart"), Work: cost.Work{Interp: 1}})
		}
		res, err := j.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	spilled, resident := run(small), run(big)
	if spilled <= resident {
		t.Fatalf("spilled fetches (%v) should be slower than resident (%v)", spilled, resident)
	}
}

func TestMapReduce(t *testing.T) {
	c := newCluster(t, 4)
	j := c.NewJob()
	reduce := j.MapReduce("wordcount", 8, TaskSpec{Work: cost.Work{Interp: 1}}, cost.Work{Interp: 0.5})
	if j.Len() != 9 {
		t.Fatalf("tasks = %d", j.Len())
	}
	res, err := j.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Reduce must finish last.
	span := res.Schedule.Spans[simJobID(reduce)]
	if span.Finish != res.Makespan {
		t.Fatalf("reduce finished at %v, makespan %v", span.Finish, res.Makespan)
	}
}

func TestNewClusterOnBounds(t *testing.T) {
	topo := cluster.Paper()
	if _, err := NewClusterOn(nil, topo, 4, 19<<30); err != nil {
		t.Fatal(err)
	}
	if _, err := NewClusterOn(nil, nil, 4, 19<<30); err == nil {
		t.Fatal("expected error for nil topology")
	}
	if _, err := NewClusterOn(nil, topo, 33, 19<<30); err == nil {
		t.Fatal("expected error for num_cpus beyond the cluster")
	}
	if _, err := NewClusterOn(nil, topo, 4, topo.TotalWorkerRAM()); err == nil {
		t.Fatal("expected error for an object store beyond Ray's RAM share")
	}
	bad := &cluster.Cluster{}
	if _, err := NewClusterOn(nil, bad, 1, 1<<20); err == nil {
		t.Fatal("expected error for invalid topology")
	}
}
