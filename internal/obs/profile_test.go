package obs_test

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/obs"
	"repro/internal/report"

	_ "repro/internal/tasks/dice"
	_ "repro/internal/tasks/gotta"
	_ "repro/internal/tasks/kge"
	_ "repro/internal/tasks/wef"
)

// collectSelf sums SelfVirt over the expanded (non-Ref) tree.
func collectSelf(roots []*obs.ProfileNode) float64 {
	var sum float64
	var walk func(n *obs.ProfileNode)
	walk = func(n *obs.ProfileNode) {
		if n.Ref {
			return
		}
		sum += n.SelfVirt
		for _, c := range n.Inputs {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return sum
}

func renderProfile(t *testing.T, task string, size int) (string, *obs.Profile) {
	t.Helper()
	p, err := obs.BuildProfile(task, obs.ProfileOptions{Size: size, Workers: 2})
	if err != nil {
		t.Fatalf("BuildProfile(%s): %v", task, err)
	}
	var buf bytes.Buffer
	report.Explain(&buf, p)
	return buf.String(), p
}

// TestExplainDeterministicAndReconciled is the -explain acceptance
// test: DICE and KGE profiles render bit-identically across two
// independent runs, and the exclusive self-times plus controller and
// wait time reconstruct the virtual makespan exactly.
func TestExplainDeterministicAndReconciled(t *testing.T) {
	for _, tc := range []struct {
		task string
		size int
	}{
		{"dice", 400}, {"kge", 600},
	} {
		first, p := renderProfile(t, tc.task, tc.size)
		second, _ := renderProfile(t, tc.task, tc.size)
		if first != second {
			t.Errorf("%s: explain output differs between runs:\n--- first ---\n%s\n--- second ---\n%s", tc.task, first, second)
		}
		sum := collectSelf(p.Roots) + p.ControllerVirt + p.WaitVirt
		if diff := math.Abs(sum - p.Makespan); diff > 1e-6*math.Max(1, p.Makespan) {
			t.Errorf("%s: self times do not reconcile: Σself+controller+wait = %.9f, makespan = %.9f (diff %.3g)",
				tc.task, sum, p.Makespan, diff)
		}
		if p.Makespan <= 0 {
			t.Errorf("%s: non-positive makespan %f", tc.task, p.Makespan)
		}
		if p.Totals.Nodes == 0 {
			t.Errorf("%s: profile totals missing trace", tc.task)
		}
	}
}
