package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// RunRequest is the body of POST /runs and /v1/runs.
//
// Deprecated: RunRequest is an alias for core.RunSpec, the unified
// request shape shared by the HTTP API, the CLI and the experiment
// drivers. New code should say core.RunSpec; the alias remains for one
// release.
type RunRequest = core.RunSpec

// Server is the HTTP surface over the run registry and the
// multi-tenant service: submissions queue through fair-share
// scheduling with admission control, while the observability endpoints
// (SSE progress, Prometheus metrics, Chrome traces, pprof) read the
// registry directly. The API is versioned under /v1/; the original
// unversioned paths remain as a legacy passthrough for one release.
// One shared telemetry recorder backs /metrics (its counters are
// monotonic across runs, which is what Prometheus scrapes expect) and
// the Chrome-trace endpoint.
type Server struct {
	reg *Registry
	rec *telemetry.Recorder
	svc *service.Service
	mux *http.ServeMux
}

// NewServer builds the server with default scheduler sizing (the
// paper cluster's 32 worker vCPUs, 64-deep tenant queues).
func NewServer(reg *Registry, rec *telemetry.Recorder) *Server {
	return NewServerWith(reg, rec, service.Config{})
}

// NewServerWith builds the server around an explicitly sized
// scheduler. Pass a fresh NewRegistry()/telemetry.New() pair for a
// standalone server.
func NewServerWith(reg *Registry, rec *telemetry.Recorder, cfg service.Config) *Server {
	s := &Server{reg: reg, rec: rec, mux: http.NewServeMux()}
	s.svc = service.New(cfg, s.runJob)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	// The run API is versioned under /v1/; the unversioned spellings
	// are the deprecated legacy passthrough.
	for _, prefix := range []string{"", "/v1"} {
		s.mux.HandleFunc("GET "+prefix+"/runs", s.handleRuns)
		s.mux.HandleFunc("POST "+prefix+"/runs", s.handleStartRun)
		s.mux.HandleFunc("GET "+prefix+"/runs/{id}", s.handleRun)
		s.mux.HandleFunc("GET "+prefix+"/runs/{id}/events", s.handleEvents)
		s.mux.HandleFunc("GET "+prefix+"/runs/{id}/trace", s.handleTrace)
	}
	s.mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	// pprof must be wired explicitly: the package's init only touches
	// http.DefaultServeMux, which this server deliberately avoids.
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Registry returns the server's run registry.
func (s *Server) Registry() *Registry { return s.reg }

// Service returns the scheduling tier, for stats and tests.
func (s *Server) Service() *service.Service { return s.svc }

// Close stops accepting submissions and waits for queued and
// in-flight runs to finish.
func (s *Server) Close() { s.svc.Close() }

// Launch validates the spec, registers a queued run and submits it to
// the fair-share scheduler; the run executes when the scheduler
// dispatches it. The spec is validated up front so callers get
// "unknown task" (and admission rejections) synchronously.
func (s *Server) Launch(spec core.RunSpec) (*Run, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	if _, err := core.NewTask(spec.Task, spec.Size, spec.Seed); err != nil {
		return nil, err
	}
	run := s.reg.StartQueued(spec.Task, spec.Paradigm, spec.Tenant, s.rec)
	_, err = s.svc.Submit(service.Job{
		ID:       run.ID,
		Tenant:   spec.Tenant,
		Priority: spec.Priority,
		VCPUs:    spec.Workers,
		Spec:     spec,
	})
	if err != nil {
		s.reg.Remove(run.ID)
		return nil, err
	}
	return run, nil
}

// runJob is the service Runner: it marks the registered run live,
// executes the spec and finishes the run. Scheduler bookkeeping
// (releasing vCPUs, re-pumping the queue) happens in the service once
// this returns.
func (s *Server) runJob(job *service.Job) error {
	run, ok := s.reg.Run(job.ID)
	if !ok {
		return fmt.Errorf("obs: dispatched job %q has no registered run", job.ID)
	}
	run.MarkRunning()
	summary, err := executeRun(job.Spec, run, s.rec)
	run.Finish(summary, err)
	return err
}

// executeRun runs the spec with the run handle attached as its live
// progress sink and folds the results into the run summary. Each
// paradigm's output digest is recorded as a run note, so clients (and
// the golden tests) can check service-path runs against direct core
// runs bit-for-bit.
func executeRun(spec core.RunSpec, run *Run, rec *telemetry.Recorder) (map[string]float64, error) {
	task, err := spec.NewTask()
	if err != nil {
		return nil, err
	}
	rc, err := spec.Config(
		core.WithTelemetry(rec),
		core.WithProgress(run),
	)
	if err != nil {
		return nil, err
	}
	summary := make(map[string]float64)
	for _, p := range spec.Paradigms() {
		res, err := task.Run(p, rc)
		if err != nil {
			return nil, err
		}
		summary[p.String()+".sim_seconds"] = res.SimSeconds
		summary[p.String()+".parallel_procs"] = float64(res.ParallelProcs)
		summary[p.String()+".operators"] = float64(res.Operators)
		run.SetNote(p.String()+".output_digest", fmt.Sprintf("%016x", relation.Digest(res.Output)))
	}
	return summary, nil
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics renders the shared registry snapshot in Prometheus
// text format, then appends process-level families (registry run
// counts, scheduler budget and per-tenant queue/admission series,
// goroutines, heap, GC) that exist independently of any run.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := RenderProm(w, s.rec.Metrics.Snapshot(true)); err != nil {
		return
	}
	started, completed, failed := s.reg.Counts()
	fmt.Fprintf(w, "# HELP repro_obs_runs_started_total runs started\n# TYPE repro_obs_runs_started_total counter\nrepro_obs_runs_started_total %d\n", started)
	fmt.Fprintf(w, "# HELP repro_obs_runs_completed_total runs completed\n# TYPE repro_obs_runs_completed_total counter\nrepro_obs_runs_completed_total %d\n", completed)
	fmt.Fprintf(w, "# HELP repro_obs_runs_failed_total runs failed\n# TYPE repro_obs_runs_failed_total counter\nrepro_obs_runs_failed_total %d\n", failed)
	var droppedEvents int64
	for _, r := range s.reg.Runs() {
		droppedEvents += r.DroppedEvents()
	}
	fmt.Fprintf(w, "# HELP repro_obs_dropped_events_total events lost to SSE drop-oldest backpressure\n# TYPE repro_obs_dropped_events_total counter\nrepro_obs_dropped_events_total %d\n", droppedEvents)
	fmt.Fprintf(w, "# HELP repro_service_vcpus_budget admitted vCPU budget\n# TYPE repro_service_vcpus_budget gauge\nrepro_service_vcpus_budget %d\n", s.svc.Budget())
	fmt.Fprintf(w, "# HELP repro_service_vcpus_used dispatched vCPUs\n# TYPE repro_service_vcpus_used gauge\nrepro_service_vcpus_used %d\n", s.svc.UsedVCPUs())
	stats := s.svc.Stats()
	writeTenantFamily(w, "repro_service_queue_depth", "gauge", "queued runs per tenant", stats, func(t service.TenantStat) float64 { return float64(t.Queued) })
	writeTenantFamily(w, "repro_service_inflight_runs", "gauge", "dispatched runs per tenant", stats, func(t service.TenantStat) float64 { return float64(t.Inflight) })
	writeTenantFamily(w, "repro_service_submitted_total", "counter", "submissions per tenant", stats, func(t service.TenantStat) float64 { return float64(t.Submitted) })
	writeTenantFamily(w, "repro_service_rejected_total", "counter", "admission rejections per tenant", stats, func(t service.TenantStat) float64 { return float64(t.Rejected) })
	writeTenantFamily(w, "repro_service_served_vcpu_seconds_total", "counter", "completed admitted vCPU-seconds per tenant", stats, func(t service.TenantStat) float64 { return t.ServedVCPUSeconds })
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# HELP repro_go_goroutines current goroutines\n# TYPE repro_go_goroutines gauge\nrepro_go_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "# HELP repro_go_heap_alloc_bytes heap in use\n# TYPE repro_go_heap_alloc_bytes gauge\nrepro_go_heap_alloc_bytes %d\n", ms.HeapAlloc)
	fmt.Fprintf(w, "# HELP repro_go_gc_total completed GC cycles\n# TYPE repro_go_gc_total counter\nrepro_go_gc_total %d\n", ms.NumGC)
}

// writeTenantFamily renders one labelled per-tenant metric family.
// stats arrive sorted by tenant, keeping the exposition byte-stable.
func writeTenantFamily(w http.ResponseWriter, name, kind, help string, stats []service.TenantStat, value func(service.TenantStat) float64) {
	if len(stats) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
	for _, t := range stats {
		fmt.Fprintf(w, "%s{tenant=%q} %g\n", name, t.Tenant, value(t))
	}
}

// runsListing is the /runs response body.
type runsListing struct {
	Runs  []Info   `json:"runs"`
	Tasks []string `json:"tasks"`
}

func (s *Server) handleRuns(w http.ResponseWriter, _ *http.Request) {
	runs := s.reg.Runs()
	listing := runsListing{Runs: make([]Info, 0, len(runs)), Tasks: core.TaskNames()}
	for _, r := range runs {
		listing.Runs = append(listing.Runs, r.Info())
	}
	sort.Slice(listing.Runs, func(i, j int) bool { return listing.Runs[i].ID < listing.Runs[j].ID })
	writeJSON(w, http.StatusOK, listing)
}

// tenantsListing is the /v1/tenants response body.
type tenantsListing struct {
	BudgetVCPUs int                  `json:"budget_vcpus"`
	UsedVCPUs   int                  `json:"used_vcpus"`
	Tenants     []service.TenantStat `json:"tenants"`
}

func (s *Server) handleTenants(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, tenantsListing{
		BudgetVCPUs: s.svc.Budget(),
		UsedVCPUs:   s.svc.UsedVCPUs(),
		Tenants:     s.svc.Stats(),
	})
}

func (s *Server) handleStartRun(w http.ResponseWriter, r *http.Request) {
	var spec core.RunSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad_request", fmt.Errorf("obs: bad run spec: %w", err))
		return
	}
	run, err := s.Launch(spec)
	if err != nil {
		code, status := classifyLaunchErr(err)
		httpError(w, status, code, err)
		return
	}
	writeJSON(w, http.StatusAccepted, run.Info())
}

// classifyLaunchErr maps typed scheduling/validation errors onto the
// error envelope's code and the HTTP status.
func classifyLaunchErr(err error) (code string, status int) {
	var saturated *service.ErrTenantSaturated
	var tooLarge *service.ErrJobTooLarge
	var tooMany *core.ErrTooManyWorkers
	switch {
	case errors.As(err, &saturated):
		return "tenant_saturated", http.StatusTooManyRequests
	case errors.As(err, &tooLarge):
		return "job_too_large", http.StatusBadRequest
	case errors.As(err, &tooMany):
		return "too_many_workers", http.StatusBadRequest
	default:
		return "bad_request", http.StatusBadRequest
	}
}

func (s *Server) lookupRun(w http.ResponseWriter, r *http.Request) (*Run, bool) {
	id := r.PathValue("id")
	run, ok := s.reg.Run(id)
	if !ok {
		httpError(w, http.StatusNotFound, "not_found", fmt.Errorf("obs: no run %q", id))
		return nil, false
	}
	return run, true
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookupRun(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, run.Detail())
}

// handleEvents streams the run's progress events as SSE: one `data:`
// frame per event (the JSON Event), a final `event: done` frame once
// the run has finished and the stream has drained, heartbeat comments
// are unnecessary because every publish wakes the stream. A client
// attaching mid-run first receives the retained ring, then live
// events.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookupRun(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		httpError(w, http.StatusInternalServerError, "internal", fmt.Errorf("obs: response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	var cursor int64
	enc := json.NewEncoder(w)
	for {
		evs, next, dropped, wake, done := run.EventsSince(cursor)
		if dropped > 0 {
			// Drop-oldest backpressure: the ring outran this stream.
			// Tell the client how many events it lost rather than
			// silently skipping the gap.
			fmt.Fprintf(w, "event: dropped\ndata: %d\n\n", dropped)
		}
		for i := range evs {
			fmt.Fprintf(w, "id: %d\ndata: ", evs[i].Seq)
			if err := enc.Encode(evs[i]); err != nil {
				return
			}
			fmt.Fprint(w, "\n")
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		cursor = next
		if done {
			fmt.Fprintf(w, "event: done\ndata: %q\n\n", run.State())
			flusher.Flush()
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

// handleTrace serves the shared recorder's spans as Chrome trace-event
// JSON (the same export `repro -trace` writes). The recorder is shared
// across runs, so the trace shows every run this server has executed —
// the multi-run view is the point of a long-running surface.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookupRun(w, r)
	if !ok {
		return
	}
	rec := run.Recorder()
	if rec == nil {
		httpError(w, http.StatusNotFound, "not_found", fmt.Errorf("obs: run %s has no telemetry recorder", run.ID))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	includeWall := r.URL.Query().Get("wall") == "1"
	if err := rec.WriteChromeTrace(w, telemetry.ExportOptions{IncludeWall: includeWall}); err != nil {
		httpError(w, http.StatusInternalServerError, "internal", err)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing useful left to do for this response.
		return //lint:allow errdrop response already committed
	}
}

// errorEnvelope is the single JSON error shape every obs/service
// handler returns: {"error": {"code", "message"}}.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func httpError(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorEnvelope{Error: errorBody{Code: code, Message: err.Error()}}) //lint:allow errdrop best-effort error body
}
