package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// RunRequest asks the server to execute one task while serving — the
// body of POST /runs and the shape behind `repro -serve`'s initial
// task list.
type RunRequest struct {
	// Task names a registered task (dice, wef, gotta, kge).
	Task string `json:"task"`
	// Paradigm is "script", "workflow" or "both" (the default).
	Paradigm string `json:"paradigm,omitempty"`
	// Size is the input size; <= 0 uses the task's paper-scale default.
	Size int `json:"size,omitempty"`
	// Seed is the dataset seed; 0 means 1.
	Seed uint64 `json:"seed,omitempty"`
	// Workers is the parallelism knob; 0 means 1.
	Workers int `json:"workers,omitempty"`
}

// Server is the HTTP introspection surface over a run registry: the
// first long-running serving mode this reproduction has. One shared
// telemetry recorder backs /metrics (its counters are monotonic across
// runs, which is what Prometheus scrapes expect) and the Chrome-trace
// endpoint.
type Server struct {
	reg *Registry
	rec *telemetry.Recorder
	mux *http.ServeMux
}

// NewServer builds the introspection server around a registry and the
// shared recorder. Pass a fresh NewRegistry()/telemetry.New() pair for
// a standalone server.
func NewServer(reg *Registry, rec *telemetry.Recorder) *Server {
	s := &Server{reg: reg, rec: rec, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /runs", s.handleRuns)
	s.mux.HandleFunc("POST /runs", s.handleStartRun)
	s.mux.HandleFunc("GET /runs/{id}", s.handleRun)
	s.mux.HandleFunc("GET /runs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /runs/{id}/trace", s.handleTrace)
	// pprof must be wired explicitly: the package's init only touches
	// http.DefaultServeMux, which this server deliberately avoids.
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Registry returns the server's run registry.
func (s *Server) Registry() *Registry { return s.reg }

// Launch starts req executing in the background and returns its run
// handle immediately; progress is observable on the run while it
// executes and Finish fires when it completes. The request is
// validated up front so callers get "unknown task" synchronously.
func (s *Server) Launch(req RunRequest) (*Run, error) {
	if req.Seed == 0 {
		req.Seed = 1
	}
	if req.Paradigm == "" {
		req.Paradigm = "both"
	}
	switch req.Paradigm {
	case "script", "workflow", "both":
	default:
		return nil, fmt.Errorf("obs: unknown paradigm %q (want script, workflow or both)", req.Paradigm)
	}
	task, err := core.NewTask(req.Task, req.Size, req.Seed)
	if err != nil {
		return nil, err
	}
	run := s.reg.StartRun(req.Task, req.Paradigm, s.rec)
	go func() {
		summary, err := executeRun(task, req, run, s.rec)
		run.Finish(summary, err)
	}()
	return run, nil
}

// executeRun runs the task with the run handle attached as its live
// progress sink and folds the results into the run summary.
func executeRun(task core.Task, req RunRequest, run *Run, rec *telemetry.Recorder) (map[string]float64, error) {
	rc, err := core.NewRunConfig(
		core.WithTelemetry(rec),
		core.WithProgress(run),
		core.WithWorkers(req.Workers),
	)
	if err != nil {
		return nil, err
	}
	summary := make(map[string]float64)
	runOne := func(p core.Paradigm) error {
		res, err := task.Run(p, rc)
		if err != nil {
			return err
		}
		summary[p.String()+".sim_seconds"] = res.SimSeconds
		summary[p.String()+".parallel_procs"] = float64(res.ParallelProcs)
		summary[p.String()+".operators"] = float64(res.Operators)
		return nil
	}
	switch req.Paradigm {
	case "script":
		err = runOne(core.Script)
	case "workflow":
		err = runOne(core.Workflow)
	default:
		if err = runOne(core.Script); err == nil {
			err = runOne(core.Workflow)
		}
	}
	if err != nil {
		return nil, err
	}
	return summary, nil
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics renders the shared registry snapshot in Prometheus
// text format, then appends process-level families (registry run
// counts, goroutines, heap, GC) that exist independently of any run.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := RenderProm(w, s.rec.Metrics.Snapshot(true)); err != nil {
		return
	}
	started, completed, failed := s.reg.Counts()
	fmt.Fprintf(w, "# HELP repro_obs_runs_started_total runs started\n# TYPE repro_obs_runs_started_total counter\nrepro_obs_runs_started_total %d\n", started)
	fmt.Fprintf(w, "# HELP repro_obs_runs_completed_total runs completed\n# TYPE repro_obs_runs_completed_total counter\nrepro_obs_runs_completed_total %d\n", completed)
	fmt.Fprintf(w, "# HELP repro_obs_runs_failed_total runs failed\n# TYPE repro_obs_runs_failed_total counter\nrepro_obs_runs_failed_total %d\n", failed)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# HELP repro_go_goroutines current goroutines\n# TYPE repro_go_goroutines gauge\nrepro_go_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "# HELP repro_go_heap_alloc_bytes heap in use\n# TYPE repro_go_heap_alloc_bytes gauge\nrepro_go_heap_alloc_bytes %d\n", ms.HeapAlloc)
	fmt.Fprintf(w, "# HELP repro_go_gc_total completed GC cycles\n# TYPE repro_go_gc_total counter\nrepro_go_gc_total %d\n", ms.NumGC)
}

// runsListing is the /runs response body.
type runsListing struct {
	Runs  []Info   `json:"runs"`
	Tasks []string `json:"tasks"`
}

func (s *Server) handleRuns(w http.ResponseWriter, _ *http.Request) {
	runs := s.reg.Runs()
	listing := runsListing{Runs: make([]Info, 0, len(runs)), Tasks: core.TaskNames()}
	for _, r := range runs {
		listing.Runs = append(listing.Runs, r.Info())
	}
	sort.Slice(listing.Runs, func(i, j int) bool { return listing.Runs[i].ID < listing.Runs[j].ID })
	writeJSON(w, http.StatusOK, listing)
}

func (s *Server) handleStartRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("obs: bad run request: %w", err))
		return
	}
	run, err := s.Launch(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, run.Info())
}

func (s *Server) lookupRun(w http.ResponseWriter, r *http.Request) (*Run, bool) {
	id := r.PathValue("id")
	run, ok := s.reg.Run(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("obs: no run %q", id))
		return nil, false
	}
	return run, true
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookupRun(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, run.Detail())
}

// handleEvents streams the run's progress events as SSE: one `data:`
// frame per event (the JSON Event), a final `event: done` frame once
// the run has finished and the stream has drained, heartbeat comments
// are unnecessary because every publish wakes the stream. A client
// attaching mid-run first receives the retained ring, then live
// events.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookupRun(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("obs: response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	var cursor int64
	enc := json.NewEncoder(w)
	for {
		evs, next, wake, done := run.EventsSince(cursor)
		for i := range evs {
			fmt.Fprintf(w, "id: %d\ndata: ", evs[i].Seq)
			if err := enc.Encode(evs[i]); err != nil {
				return
			}
			fmt.Fprint(w, "\n")
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		cursor = next
		if done {
			fmt.Fprintf(w, "event: done\ndata: %q\n\n", run.State())
			flusher.Flush()
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

// handleTrace serves the shared recorder's spans as Chrome trace-event
// JSON (the same export `repro -trace` writes). The recorder is shared
// across runs, so the trace shows every run this server has executed —
// the multi-run view is the point of a long-running surface.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookupRun(w, r)
	if !ok {
		return
	}
	rec := run.Recorder()
	if rec == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("obs: run %s has no telemetry recorder", run.ID))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	includeWall := r.URL.Query().Get("wall") == "1"
	if err := rec.WriteChromeTrace(w, telemetry.ExportOptions{IncludeWall: includeWall}); err != nil {
		httpError(w, http.StatusInternalServerError, err)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing useful left to do for this response.
		return //lint:allow errdrop response already committed
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //lint:allow errdrop best-effort error body
}
