package obs_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/telemetry"
)

func newTestServer(t *testing.T) (*obs.Server, *httptest.Server) {
	t.Helper()
	srv := obs.NewServer(obs.NewRegistry(), telemetry.New())
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close() //lint:allow errdrop test teardown
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// waitFinished polls until the run leaves the running state. The tiny
// task sizes used here finish in well under a second.
func waitFinished(t *testing.T, run *obs.Run) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second) //lint:allow wallclock test timeout
	for run.State() == "running" {
		if time.Now().After(deadline) { //lint:allow wallclock test timeout
			t.Fatalf("run %s still running after 30s", run.ID)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHealthAndMetricsEndpoints(t *testing.T) {
	srv, ts := newTestServer(t)

	if code, body := get(t, ts.URL+"/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz: code %d body %q", code, body)
	}

	run, err := srv.Launch(obs.RunRequest{Task: "dice", Paradigm: "workflow", Size: 200})
	if err != nil {
		t.Fatal(err)
	}
	waitFinished(t, run)
	if run.State() != "completed" {
		t.Fatalf("run state %q, want completed", run.State())
	}

	code, body := get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics: code %d", code)
	}
	for _, want := range []string{
		"# TYPE repro_", // at least one exposition family
		"repro_obs_runs_started_total 1",
		"repro_obs_runs_completed_total 1",
		"repro_go_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body[:min(len(body), 2000)])
		}
	}
	// Exposition format sanity: every non-comment line is "name value".
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestRunsEndpointsAndSSE(t *testing.T) {
	_, ts := newTestServer(t)

	// Launch over HTTP while the server is up (the acceptance path).
	resp, err := http.Post(ts.URL+"/runs", "application/json",
		strings.NewReader(`{"task":"dice","paradigm":"workflow","size":200}`))
	if err != nil {
		t.Fatal(err)
	}
	var launched obs.Info
	if err := json.NewDecoder(resp.Body).Decode(&launched); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //lint:allow errdrop test teardown
	if resp.StatusCode != http.StatusAccepted || launched.ID == "" {
		t.Fatalf("POST /runs: code %d, info %+v", resp.StatusCode, launched)
	}

	// Stream SSE live: the run was just launched, so the stream starts
	// before the run finishes and must still drain to the done event.
	sse, err := http.Get(ts.URL + "/runs/" + launched.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sse.Body.Close() //lint:allow errdrop test teardown
	if got := sse.Header.Get("Content-Type"); !strings.HasPrefix(got, "text/event-stream") {
		t.Fatalf("SSE content type %q", got)
	}
	var events, doneSeen int
	scanner := bufio.NewScanner(sse.Body)
	scanner.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "data: {"):
			events++
			var ev obs.Event
			if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
				t.Fatalf("bad SSE payload %q: %v", line, err)
			}
		case strings.HasPrefix(line, "event: done"):
			doneSeen++
		}
	}
	if doneSeen != 1 {
		t.Fatalf("SSE stream ended without a done event (saw %d events)", events)
	}
	if events == 0 {
		t.Fatal("SSE stream carried no progress events")
	}

	// Listing and detail endpoints reflect the finished run.
	code, body := get(t, ts.URL+"/runs")
	if code != 200 {
		t.Fatalf("/runs: code %d", code)
	}
	var listing struct {
		Runs  []obs.Info `json:"runs"`
		Tasks []string   `json:"tasks"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatalf("/runs JSON: %v\n%s", err, body)
	}
	if len(listing.Runs) != 1 || listing.Runs[0].State != "completed" {
		t.Fatalf("/runs listing: %+v", listing.Runs)
	}
	if len(listing.Tasks) == 0 {
		t.Fatal("/runs listing has no registered tasks")
	}

	code, body = get(t, ts.URL+"/runs/"+launched.ID)
	if code != 200 {
		t.Fatalf("/runs/{id}: code %d", code)
	}
	var detail obs.Detail
	if err := json.Unmarshal([]byte(body), &detail); err != nil {
		t.Fatalf("/runs/{id} JSON: %v", err)
	}
	if len(detail.Ops) == 0 || detail.Events == 0 {
		t.Fatalf("/runs/{id} detail empty: ops=%d events=%d", len(detail.Ops), detail.Events)
	}
	if detail.Summary["workflow.sim_seconds"] <= 0 {
		t.Fatalf("missing sim_seconds summary: %+v", detail.Summary)
	}

	// Chrome trace is valid JSON with events.
	code, body = get(t, ts.URL+"/runs/"+launched.ID+"/trace")
	if code != 200 {
		t.Fatalf("/runs/{id}/trace: code %d", code)
	}
	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	if code, _ := get(t, ts.URL+"/runs/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown run id: code %d, want 404", code)
	}
}

func TestLaunchRejectsBadRequests(t *testing.T) {
	srv, ts := newTestServer(t)
	if _, err := srv.Launch(obs.RunRequest{Task: "no-such-task"}); err == nil {
		t.Error("unknown task accepted")
	}
	if _, err := srv.Launch(obs.RunRequest{Task: "dice", Paradigm: "gui"}); err == nil {
		t.Error("unknown paradigm accepted")
	}
	resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(`{"task":""}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //lint:allow errdrop test teardown
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty task: code %d, want 400", resp.StatusCode)
	}
}

// TestRenderPromStable pins the Prometheus renderer as a pure function
// of the snapshot: same snapshot, same bytes; names sanitized.
func TestRenderPromStable(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("wf.dice.node.join-sentences.out_tuples").Add(0, 42)
	reg.Gauge("queue.depth").Set(0, 7)
	reg.Histogram("batch.latency", "ns").Observe(0, 900)
	snap := reg.Snapshot(true)

	var a, b bytes.Buffer
	if err := obs.RenderProm(&a, snap); err != nil {
		t.Fatal(err)
	}
	if err := obs.RenderProm(&b, snap); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("RenderProm not byte-stable:\n--- a ---\n%s\n--- b ---\n%s", a.String(), b.String())
	}
	out := a.String()
	for _, want := range []string{
		"repro_wf_dice_node_join_sentences_out_tuples 42",
		"repro_queue_depth 7",
		"repro_queue_depth_max 7",
		`repro_batch_latency_bucket{le="1024"} 1`,
		`repro_batch_latency_bucket{le="+Inf"} 1`,
		"repro_batch_latency_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderProm missing %q:\n%s", want, out)
		}
	}
}
