package obs_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/service"
	"repro/internal/telemetry"
)

func newTestServer(t *testing.T) (*obs.Server, *httptest.Server) {
	t.Helper()
	srv := obs.NewServer(obs.NewRegistry(), telemetry.New())
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close() //lint:allow errdrop test teardown
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// waitFinished polls until the run leaves the queued/running states.
// The tiny task sizes used here finish in well under a second.
func waitFinished(t *testing.T, run *obs.Run) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second) //lint:allow wallclock test timeout
	for st := run.State(); st == "queued" || st == "running"; st = run.State() {
		if time.Now().After(deadline) { //lint:allow wallclock test timeout
			t.Fatalf("run %s still %s after 30s", run.ID, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHealthAndMetricsEndpoints(t *testing.T) {
	srv, ts := newTestServer(t)

	if code, body := get(t, ts.URL+"/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz: code %d body %q", code, body)
	}

	run, err := srv.Launch(obs.RunRequest{Task: "dice", Paradigm: "workflow", Size: 200})
	if err != nil {
		t.Fatal(err)
	}
	waitFinished(t, run)
	if run.State() != "completed" {
		t.Fatalf("run state %q, want completed", run.State())
	}

	code, body := get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics: code %d", code)
	}
	for _, want := range []string{
		"# TYPE repro_", // at least one exposition family
		"repro_obs_runs_started_total 1",
		"repro_obs_runs_completed_total 1",
		"repro_go_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body[:min(len(body), 2000)])
		}
	}
	// Exposition format sanity: every non-comment line is "name value".
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestRunsEndpointsAndSSE(t *testing.T) {
	_, ts := newTestServer(t)

	// Launch over HTTP while the server is up (the acceptance path).
	resp, err := http.Post(ts.URL+"/runs", "application/json",
		strings.NewReader(`{"task":"dice","paradigm":"workflow","size":200}`))
	if err != nil {
		t.Fatal(err)
	}
	var launched obs.Info
	if err := json.NewDecoder(resp.Body).Decode(&launched); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //lint:allow errdrop test teardown
	if resp.StatusCode != http.StatusAccepted || launched.ID == "" {
		t.Fatalf("POST /runs: code %d, info %+v", resp.StatusCode, launched)
	}

	// Stream SSE live: the run was just launched, so the stream starts
	// before the run finishes and must still drain to the done event.
	sse, err := http.Get(ts.URL + "/runs/" + launched.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sse.Body.Close() //lint:allow errdrop test teardown
	if got := sse.Header.Get("Content-Type"); !strings.HasPrefix(got, "text/event-stream") {
		t.Fatalf("SSE content type %q", got)
	}
	var events, doneSeen int
	scanner := bufio.NewScanner(sse.Body)
	scanner.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "data: {"):
			events++
			var ev obs.Event
			if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
				t.Fatalf("bad SSE payload %q: %v", line, err)
			}
		case strings.HasPrefix(line, "event: done"):
			doneSeen++
		}
	}
	if doneSeen != 1 {
		t.Fatalf("SSE stream ended without a done event (saw %d events)", events)
	}
	if events == 0 {
		t.Fatal("SSE stream carried no progress events")
	}

	// Listing and detail endpoints reflect the finished run.
	code, body := get(t, ts.URL+"/runs")
	if code != 200 {
		t.Fatalf("/runs: code %d", code)
	}
	var listing struct {
		Runs  []obs.Info `json:"runs"`
		Tasks []string   `json:"tasks"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatalf("/runs JSON: %v\n%s", err, body)
	}
	if len(listing.Runs) != 1 || listing.Runs[0].State != "completed" {
		t.Fatalf("/runs listing: %+v", listing.Runs)
	}
	if len(listing.Tasks) == 0 {
		t.Fatal("/runs listing has no registered tasks")
	}

	code, body = get(t, ts.URL+"/runs/"+launched.ID)
	if code != 200 {
		t.Fatalf("/runs/{id}: code %d", code)
	}
	var detail obs.Detail
	if err := json.Unmarshal([]byte(body), &detail); err != nil {
		t.Fatalf("/runs/{id} JSON: %v", err)
	}
	if len(detail.Ops) == 0 || detail.Events == 0 {
		t.Fatalf("/runs/{id} detail empty: ops=%d events=%d", len(detail.Ops), detail.Events)
	}
	if detail.Summary["workflow.sim_seconds"] <= 0 {
		t.Fatalf("missing sim_seconds summary: %+v", detail.Summary)
	}

	// Chrome trace is valid JSON with events.
	code, body = get(t, ts.URL+"/runs/"+launched.ID+"/trace")
	if code != 200 {
		t.Fatalf("/runs/{id}/trace: code %d", code)
	}
	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	if code, _ := get(t, ts.URL+"/runs/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown run id: code %d, want 404", code)
	}
}

func TestLaunchRejectsBadRequests(t *testing.T) {
	srv, ts := newTestServer(t)
	if _, err := srv.Launch(obs.RunRequest{Task: "no-such-task"}); err == nil {
		t.Error("unknown task accepted")
	}
	if _, err := srv.Launch(obs.RunRequest{Task: "dice", Paradigm: "gui"}); err == nil {
		t.Error("unknown paradigm accepted")
	}
	resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(`{"task":""}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //lint:allow errdrop test teardown
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty task: code %d, want 400", resp.StatusCode)
	}
}

// postRun posts a run spec and returns the status code and body.
func postRun(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //lint:allow errdrop test teardown
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

// envelope mirrors the single JSON error shape every handler returns.
type envelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func decodeEnvelope(t *testing.T, body string) envelope {
	t.Helper()
	var env envelope
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("error body is not the envelope shape: %v\n%s", err, body)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope missing code or message: %s", body)
	}
	return env
}

// TestV1APITenantsAndGoldenOutputs drives two tenants through the
// versioned API, checks the fair-share accounting surfaces (the
// /v1/tenants listing and the per-tenant metric families), and pins
// the golden property: the output digests recorded by service-path
// runs are bit-identical to direct core runs of the same spec.
func TestV1APITenantsAndGoldenOutputs(t *testing.T) {
	srv, ts := newTestServer(t)

	launches := []struct {
		body   string
		tenant string
	}{
		{`{"api_version":"v1","task":"dice","paradigm":"workflow","size":200,"tenant":"ds-team"}`, "ds-team"},
		{`{"api_version":"v1","task":"wef","paradigm":"script","size":120,"tenant":"ml-team","workers":2}`, "ml-team"},
	}
	ids := make([]string, 0, len(launches))
	for _, l := range launches {
		code, body := postRun(t, ts.URL+"/v1/runs", l.body)
		if code != http.StatusAccepted {
			t.Fatalf("POST /v1/runs: code %d body %s", code, body)
		}
		var info obs.Info
		if err := json.Unmarshal([]byte(body), &info); err != nil {
			t.Fatal(err)
		}
		if info.Tenant != l.tenant {
			t.Fatalf("launched tenant %q, want %q", info.Tenant, l.tenant)
		}
		ids = append(ids, info.ID)
	}
	for _, id := range ids {
		run, ok := srv.Registry().Run(id)
		if !ok {
			t.Fatalf("run %s not registered", id)
		}
		waitFinished(t, run)
		if run.State() != "completed" {
			t.Fatalf("run %s state %q, want completed", id, run.State())
		}
	}

	// Golden: the digests the service recorded must equal direct runs.
	for i, spec := range []core.RunSpec{
		{Task: "dice", Paradigm: "workflow", Size: 200},
		{Task: "wef", Paradigm: "script", Size: 120, Workers: 2},
	} {
		run, _ := srv.Registry().Run(ids[i])
		norm, err := spec.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		task, err := norm.NewTask()
		if err != nil {
			t.Fatal(err)
		}
		rc, err := norm.Config()
		if err != nil {
			t.Fatal(err)
		}
		res, err := task.Run(norm.Paradigms()[0], rc)
		if err != nil {
			t.Fatal(err)
		}
		direct := fmt.Sprintf("%016x", relation.Digest(res.Output))
		if got := run.Note(norm.Paradigm + ".output_digest"); got != direct {
			t.Fatalf("%s: service-path digest %q != direct core digest %q", norm.Task, got, direct)
		}
	}

	// The versioned and legacy listings serve the same runs.
	for _, path := range []string{"/runs", "/v1/runs"} {
		code, body := get(t, ts.URL+path)
		if code != 200 {
			t.Fatalf("%s: code %d", path, code)
		}
		var listing struct {
			Runs []obs.Info `json:"runs"`
		}
		if err := json.Unmarshal([]byte(body), &listing); err != nil {
			t.Fatal(err)
		}
		if len(listing.Runs) != 2 {
			t.Fatalf("%s listed %d runs, want 2", path, len(listing.Runs))
		}
	}

	// /v1/tenants reports both tenants' completed accounting.
	code, body := get(t, ts.URL+"/v1/tenants")
	if code != 200 {
		t.Fatalf("/v1/tenants: code %d", code)
	}
	var tl struct {
		BudgetVCPUs int                  `json:"budget_vcpus"`
		UsedVCPUs   int                  `json:"used_vcpus"`
		Tenants     []service.TenantStat `json:"tenants"`
	}
	if err := json.Unmarshal([]byte(body), &tl); err != nil {
		t.Fatal(err)
	}
	if tl.BudgetVCPUs <= 0 {
		t.Fatalf("budget %d", tl.BudgetVCPUs)
	}
	seen := map[string]service.TenantStat{}
	for _, st := range tl.Tenants {
		seen[st.Tenant] = st
	}
	for _, tenant := range []string{"ds-team", "ml-team"} {
		st, ok := seen[tenant]
		if !ok || st.Completed != 1 || st.ServedVCPUSeconds <= 0 {
			t.Fatalf("tenant %s accounting wrong: %+v (all %+v)", tenant, st, tl.Tenants)
		}
	}

	// Per-tenant metric families are exposed with tenant labels.
	code, body = get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics: code %d", code)
	}
	for _, want := range []string{
		"repro_service_vcpus_budget",
		`repro_service_submitted_total{tenant="ds-team"} 1`,
		`repro_service_submitted_total{tenant="ml-team"} 1`,
		`repro_service_queue_depth{tenant="ds-team"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestErrorEnvelopeAndStatusCodes pins the single error shape and the
// typed-error → status mapping of the versioned API.
func TestErrorEnvelopeAndStatusCodes(t *testing.T) {
	_, ts := newTestServer(t)

	code, body := postRun(t, ts.URL+"/v1/runs", `{"task":"dice","workers":4096}`)
	if code != http.StatusBadRequest {
		t.Fatalf("oversized workers: code %d, want 400", code)
	}
	if env := decodeEnvelope(t, body); env.Error.Code != "too_many_workers" {
		t.Fatalf("oversized workers: envelope code %q", env.Error.Code)
	}

	code, body = postRun(t, ts.URL+"/v1/runs", `{"task":"no-such-task"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown task: code %d, want 400", code)
	}
	decodeEnvelope(t, body)

	code, body = get(t, ts.URL+"/v1/runs/nope")
	if code != http.StatusNotFound {
		t.Fatalf("unknown run: code %d, want 404", code)
	}
	if env := decodeEnvelope(t, body); env.Error.Code != "not_found" {
		t.Fatalf("unknown run: envelope code %q", env.Error.Code)
	}
}

// TestAdmissionRejectionOverHTTP saturates a one-deep tenant queue
// with budget-wide jobs and checks the 429 + tenant_saturated mapping,
// and that the rejected submission leaves no run behind.
func TestAdmissionRejectionOverHTTP(t *testing.T) {
	srv := obs.NewServerWith(obs.NewRegistry(), telemetry.New(), service.Config{QueueCap: 1})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// Each job demands the whole budget, so the first occupies the
	// cluster, the second queues, and the third must be rejected.
	spec := fmt.Sprintf(`{"task":"dice","paradigm":"both","size":2000,"tenant":"burst","workers":%d}`, srv.Service().Budget())
	sawRejection := false
	for i := 0; i < 3; i++ {
		code, body := postRun(t, ts.URL+"/v1/runs", spec)
		switch code {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			sawRejection = true
			if env := decodeEnvelope(t, body); env.Error.Code != "tenant_saturated" {
				t.Fatalf("429 envelope code %q", env.Error.Code)
			}
		default:
			t.Fatalf("POST %d: code %d body %s", i, code, body)
		}
	}
	if !sawRejection {
		t.Fatal("three budget-wide submissions at queue cap 1 produced no 429")
	}

	// The rollback path removed the rejected run: only admitted runs
	// are listed, and they all drain to completion.
	runs := srv.Registry().Runs()
	if len(runs) != 2 {
		t.Fatalf("%d runs registered, want 2 (rejected one rolled back)", len(runs))
	}
	for _, run := range runs {
		waitFinished(t, run)
		if run.State() != "completed" {
			t.Fatalf("run %s state %q", run.ID, run.State())
		}
	}
}

// TestRenderPromStable pins the Prometheus renderer as a pure function
// of the snapshot: same snapshot, same bytes; names sanitized.
func TestRenderPromStable(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("wf.dice.node.join-sentences.out_tuples").Add(0, 42)
	reg.Gauge("queue.depth").Set(0, 7)
	reg.Histogram("batch.latency", "ns").Observe(0, 900)
	snap := reg.Snapshot(true)

	var a, b bytes.Buffer
	if err := obs.RenderProm(&a, snap); err != nil {
		t.Fatal(err)
	}
	if err := obs.RenderProm(&b, snap); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("RenderProm not byte-stable:\n--- a ---\n%s\n--- b ---\n%s", a.String(), b.String())
	}
	out := a.String()
	for _, want := range []string{
		"repro_wf_dice_node_join_sentences_out_tuples 42",
		"repro_queue_depth 7",
		"repro_queue_depth_max 7",
		`repro_batch_latency_bucket{le="1024"} 1`,
		`repro_batch_latency_bucket{le="+Inf"} 1`,
		"repro_batch_latency_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderProm missing %q:\n%s", want, out)
		}
	}
}
