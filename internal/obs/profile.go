package obs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/lineage"
	"repro/internal/relation"
	"repro/internal/telemetry"
)

// planProvider is the capability a task exposes for plan-time
// introspection (structurally identical to the experiment harness's
// validator interface): build the workflow DAG without executing it.
type planProvider interface {
	WorkflowPlan(workers int) (*dataflow.Workflow, error)
}

// ProfileOptions configures BuildProfile.
type ProfileOptions struct {
	// Size is the task input size; <= 0 uses the paper-scale default.
	Size int
	// Seed is the dataset seed; 0 means 1.
	Seed uint64
	// Workers is the per-operator parallelism; 0 means 1.
	Workers int
	// Lineage arms the versioned artifact store and runs the task twice,
	// so the profiled (second) run shows cache hits per operator.
	Lineage bool
	// Wall includes wall-clock busy time per operator. Wall numbers vary
	// run to run, so leave this false for deterministic output.
	Wall bool
}

// ProfileNode is one operator of the EXPLAIN tree. Children are the
// node's input producers, so a profile reads top-down from each sink
// the way a database EXPLAIN reads from the result operator.
type ProfileNode struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Workers int    `json:"workers"`
	// SelfVirt is the node's exclusive share of the virtual makespan:
	// elementary schedule intervals are split evenly among the tracks
	// active in them, so Σ SelfVirt over all nodes plus the controller
	// and wait rows reconstructs the makespan exactly.
	SelfVirt float64 `json:"self_virt_seconds"`
	// BusyVirt is the sum of the node's span durations (worker-seconds);
	// WindowVirt is its active window (last finish − first start).
	BusyVirt   float64 `json:"busy_virt_seconds"`
	WindowVirt float64 `json:"window_virt_seconds"`
	// QueueWait estimates input starvation: the part of the node's
	// window its average worker spent idle, window − busy/workers.
	QueueWait float64 `json:"queue_wait_seconds"`
	// WallBusyMS is the measured wall busy time across workers, present
	// only when ProfileOptions.Wall is set (it varies run to run).
	WallBusyMS float64 `json:"wall_busy_ms,omitempty"`
	InTuples   int64   `json:"in_tuples"`
	OutTuples  int64   `json:"out_tuples"`
	Batches    int64   `json:"batches"`
	OutBytes   int64   `json:"out_bytes"`
	// LineageHit marks a node served from the artifact store (replayed
	// or elided) instead of executed.
	LineageHit bool `json:"lineage_hit,omitempty"`
	// Ref marks a node already expanded under an earlier root; its
	// children are suppressed at this position.
	Ref    bool           `json:"ref,omitempty"`
	Inputs []*ProfileNode `json:"inputs,omitempty"`
}

// Profile is an EXPLAIN-ANALYZE-style hierarchical account of one
// workflow run: the plan tree annotated with measured per-operator
// time, data volume and cache behaviour. All virtual-clock fields are
// deterministic for a given task configuration.
type Profile struct {
	Task     string `json:"task"`
	Workflow string `json:"workflow"`
	Paradigm string `json:"paradigm"`
	Size     int    `json:"size"`
	Seed     uint64 `json:"seed"`
	Workers  int    `json:"workers"`

	// Makespan is the run's virtual execution time (the paper metric);
	// ControllerVirt and WaitVirt are the exclusive shares of the
	// controller track and of schedule gaps where no track was active.
	Makespan       float64 `json:"makespan_seconds"`
	ControllerVirt float64 `json:"controller_virt_seconds"`
	WaitVirt       float64 `json:"wait_virt_seconds"`

	Totals  core.TraceTotals     `json:"totals"`
	Kernels relation.KernelStats `json:"kernels"`
	// LineageHits / LineageNodes count cache-served nodes when the
	// profile ran with lineage armed.
	LineageHits  int `json:"lineage_hits,omitempty"`
	LineageNodes int `json:"lineage_nodes,omitempty"`

	Roots []*ProfileNode `json:"roots"`
}

// BuildProfile executes the named task's workflow once (twice with
// lineage armed: a cold populate pass, then the profiled warm pass)
// and folds the plan, the schedule spans and the telemetry counters
// into the EXPLAIN tree.
func BuildProfile(taskName string, opts ProfileOptions) (*Profile, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	task, err := core.NewTask(taskName, opts.Size, opts.Seed)
	if err != nil {
		return nil, err
	}
	pp, ok := task.(planProvider)
	if !ok {
		return nil, fmt.Errorf("obs: task %q does not expose a workflow plan", taskName)
	}
	wf, err := pp.WorkflowPlan(workers)
	if err != nil {
		return nil, err
	}
	plan := wf.PlanNodes()

	rec := telemetry.New()
	runOpts := []core.Option{core.WithTelemetry(rec), core.WithWorkers(workers)}
	if opts.Lineage {
		store, err := lineage.NewStore(nil, 0)
		if err != nil {
			return nil, err
		}
		cold, err := core.NewRunConfig(core.WithWorkers(workers), core.WithLineage(store))
		if err != nil {
			return nil, err
		}
		if _, err := task.Run(core.Workflow, cold); err != nil {
			return nil, err
		}
		runOpts = append(runOpts, core.WithLineage(store))
	}
	rc, err := core.NewRunConfig(runOpts...)
	if err != nil {
		return nil, err
	}
	k0 := relation.KernelCounts()
	res, err := task.Run(core.Workflow, rc)
	if err != nil {
		return nil, err
	}
	kern := relation.KernelCounts().Sub(k0)

	p := &Profile{
		Task:     taskName,
		Workflow: wf.Name(),
		Paradigm: "workflow",
		Size:     opts.Size,
		Seed:     opts.Seed,
		Workers:  workers,
		Makespan: res.SimSeconds,
		Totals:   res.Trace,
		Kernels:  kern,
	}

	proc := "workflow:" + wf.Name()
	nodes := buildNodes(plan, rec, "wf."+wf.Name()+".", opts.Wall)
	attributeSelfTime(p, nodes, rec.Spans(), proc)
	if opts.Lineage {
		for _, n := range nodes {
			p.LineageNodes++
			if n.LineageHit {
				p.LineageHits++
			}
		}
	}
	p.Roots = buildTree(plan, nodes)
	return p, nil
}

// buildNodes creates one ProfileNode per plan node, filling the
// counter-derived fields from the recorder's deterministic metrics.
func buildNodes(plan []dataflow.PlanNode, rec *telemetry.Recorder, prefix string, wall bool) map[string]*ProfileNode {
	counters := make(map[string]int64)
	for _, c := range rec.Metrics.Snapshot(true).Counters {
		counters[c.Name] = c.Value
	}
	nodes := make(map[string]*ProfileNode, len(plan))
	for _, pn := range plan {
		node := prefix + "node." + pn.Name + "."
		n := &ProfileNode{
			Name:       pn.Name,
			Kind:       pn.Kind,
			Workers:    pn.Parallelism,
			InTuples:   counters[node+"in_tuples"],
			OutTuples:  counters[node+"out_tuples"],
			Batches:    counters[node+"batches"],
			LineageHit: counters[node+"lineage_hit"] > 0,
		}
		edgePrefix := prefix + "edge." + pn.Name + "->"
		for name, v := range counters {
			if strings.HasPrefix(name, edgePrefix) && strings.HasSuffix(name, ".bytes") {
				n.OutBytes += v
			}
		}
		nodes[pn.Name] = n
	}
	if wall {
		for _, sp := range rec.Spans() {
			if sp.Cat == "wall" && sp.HasWall {
				if n, ok := nodes[sp.Track]; ok {
					n.WallBusyMS += float64(sp.Clock.DurNS) / 1e6
				}
			}
		}
	}
	return nodes
}

// interval is one closed-open span [start, end) on the virtual clock.
type interval struct{ start, end float64 }

// attributeSelfTime distributes the virtual makespan exclusively over
// the plan's tracks with a line sweep: every elementary interval
// between consecutive span boundaries is split evenly among the
// tracks active in it; intervals where nothing is active accrue to
// WaitVirt, and the controller track accrues to ControllerVirt. By
// construction Σ self + controller + wait equals the last span finish,
// and the remainder up to the run's makespan (if any) is wait — so
// the profile's totals reconcile with the paper's time metric exactly.
func attributeSelfTime(p *Profile, nodes map[string]*ProfileNode, spans []telemetry.Span, proc string) {
	perTrack := make(map[string][]interval)
	for _, sp := range spans {
		if sp.Proc != proc || !sp.HasVirt || sp.Virtual.Dur <= 0 {
			continue
		}
		iv := interval{sp.Virtual.Start, sp.Virtual.Start + sp.Virtual.Dur}
		perTrack[sp.Track] = append(perTrack[sp.Track], iv)
	}

	tracks := make([]string, 0, len(perTrack))
	for t := range perTrack {
		tracks = append(tracks, t)
	}
	sort.Strings(tracks)

	var bounds []float64
	unions := make([][]interval, len(tracks))
	for i, t := range tracks {
		ivs := perTrack[t]
		sort.Slice(ivs, func(a, b int) bool {
			if ivs[a].start != ivs[b].start {
				return ivs[a].start < ivs[b].start
			}
			return ivs[a].end < ivs[b].end
		})
		// Per-node accounting from the raw spans: total worker-seconds
		// and the node's active window.
		if n, ok := nodes[t]; ok {
			var busy float64
			for _, iv := range ivs {
				busy += iv.end - iv.start
			}
			n.BusyVirt = busy
			n.WindowVirt = ivs[len(ivs)-1].end - ivs[0].start
			// Window is computed before union-merge below, but the merge
			// keeps endpoints, so recompute after merge would be equal.
		}
		// Merge into a disjoint union for the sweep.
		var u []interval
		for _, iv := range ivs {
			if len(u) > 0 && iv.start <= u[len(u)-1].end {
				if iv.end > u[len(u)-1].end {
					u[len(u)-1].end = iv.end
				}
				continue
			}
			u = append(u, iv)
		}
		unions[i] = u
		for _, iv := range u {
			bounds = append(bounds, iv.start, iv.end)
		}
	}
	sort.Float64s(bounds)

	// Deduplicate boundary values.
	elem := bounds[:0]
	for _, b := range bounds {
		if len(elem) == 0 || b != elem[len(elem)-1] {
			elem = append(elem, b)
		}
	}

	cursors := make([]int, len(tracks))
	var lastEnd float64
	for k := 0; k+1 < len(elem); k++ {
		lo, hi := elem[k], elem[k+1]
		dt := hi - lo
		if dt <= 0 {
			continue
		}
		var active []int
		for i := range tracks {
			u := unions[i]
			for cursors[i] < len(u) && u[cursors[i]].end <= lo {
				cursors[i]++
			}
			if cursors[i] < len(u) && u[cursors[i]].start <= lo {
				active = append(active, i)
			}
		}
		if len(active) == 0 {
			p.WaitVirt += dt
			continue
		}
		share := dt / float64(len(active))
		for _, i := range active {
			switch t := tracks[i]; {
			case t == "controller":
				p.ControllerVirt += share
			default:
				if n, ok := nodes[t]; ok {
					n.SelfVirt += share
				} else {
					// Spans on tracks outside the plan (recovery lanes)
					// still have to land somewhere for the total to hold.
					p.ControllerVirt += share
				}
			}
		}
		lastEnd = hi
	}
	if len(elem) > 0 && elem[0] > 0 {
		p.WaitVirt += elem[0] // schedule lead-in before the first span
	}
	if p.Makespan > lastEnd {
		p.WaitVirt += p.Makespan - lastEnd
	}
	// Queue-wait estimate per node, now that busy and window are known.
	for _, n := range nodes {
		if n.Workers > 0 {
			w := n.WindowVirt - n.BusyVirt/float64(n.Workers)
			if w > 0 {
				n.QueueWait = w
			}
		}
	}
}

// buildTree links the per-node profiles into the EXPLAIN forest:
// sinks are roots, inputs are children, and a node reached twice (a
// shared subtree in the DAG) is expanded once and marked Ref at later
// positions.
func buildTree(plan []dataflow.PlanNode, nodes map[string]*ProfileNode) []*ProfileNode {
	byName := make(map[string]dataflow.PlanNode, len(plan))
	consumed := make(map[string]bool)
	for _, pn := range plan {
		byName[pn.Name] = pn
		for _, in := range pn.Inputs {
			consumed[in.From] = true
		}
	}
	expanded := make(map[string]bool)
	var expand func(name string) *ProfileNode
	expand = func(name string) *ProfileNode {
		n := nodes[name]
		if n == nil {
			return nil
		}
		if expanded[name] {
			// Shallow reference copy: same measurements, no children.
			ref := *n
			ref.Ref = true
			ref.Inputs = nil
			return &ref
		}
		expanded[name] = true
		for _, in := range byName[name].Inputs {
			if child := expand(in.From); child != nil {
				n.Inputs = append(n.Inputs, child)
			}
		}
		return n
	}
	var roots []*ProfileNode
	for _, pn := range plan { // plan is in ID order: deterministic
		if !consumed[pn.Name] {
			if r := expand(pn.Name); r != nil {
				roots = append(roots, r)
			}
		}
	}
	return roots
}
