// Package obs is the live observability plane: a run registry that
// watches core runs while they execute, and the HTTP introspection
// server plus EXPLAIN-style profiles built on top of it. The paper's
// central usability claim is that the GUI workflow paradigm shows its
// users what is happening while a job runs and the script paradigm
// does not; this package is the reproduction's version of that GUI
// surface, fed by the same progress events and telemetry instruments
// both engines already emit. Everything here is observer-side: a run
// with no registry attached pays nothing beyond a nil check.
package obs

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

const (
	// eventRingSize bounds the per-run progress-event ring. A DICE-size
	// workflow run emits a few thousand batch events; the ring keeps the
	// recent window and the totals keep the truth.
	eventRingSize = 8192
	// sampleRingSize bounds the per-run time-series ring.
	sampleRingSize = 512
	// sampleMinInterval is the minimum wall time between event-driven
	// samples, so a hot emit loop cannot turn sampling into the
	// bottleneck it is meant to watch.
	sampleMinInterval = 25 * time.Millisecond
	// keepCompleted bounds how many finished runs the registry retains.
	keepCompleted = 64
)

// Event is one progress event as stored by the registry: the engine's
// payload plus a monotonic sequence number and a wall stamp relative
// to the registry epoch.
type Event struct {
	Seq    int64 `json:"seq"`
	WallNS int64 `json:"wall_ns"`
	telemetry.ProgressEvent
}

// Sample is one point of a run's time series: process-level runtime
// stats plus aggregates folded from the run's telemetry registry
// (queue depths, tuple/batch throughput, lineage reuse, recovery).
// VirtSeconds carries the latest simulator stamp seen on the event
// stream, tying the wall-clock series back to the sim clock.
type Sample struct {
	WallNS        int64   `json:"wall_ns"`
	VirtSeconds   float64 `json:"virt_seconds,omitempty"`
	Events        int64   `json:"events"`
	Tuples        int64   `json:"tuples,omitempty"`
	Batches       int64   `json:"batches,omitempty"`
	QueueDepth    int64   `json:"queue_depth,omitempty"`
	QueueDepthMax int64   `json:"queue_depth_max,omitempty"`
	LineageHits   int64   `json:"lineage_hits,omitempty"`
	LineageMisses int64   `json:"lineage_misses,omitempty"`
	RecoveryKills int64   `json:"recovery_kills,omitempty"`
	Goroutines    int     `json:"goroutines"`
	HeapAlloc     uint64  `json:"heap_alloc"`
	HeapSys       uint64  `json:"heap_sys"`
	NumGC         uint32  `json:"num_gc"`
}

// OpStatus is the latest known state of one operator / cell / task,
// the per-operator row a workflow GUI keeps permanently on screen.
type OpStatus struct {
	Op        string  `json:"op"`
	Kind      string  `json:"kind,omitempty"`
	State     string  `json:"state"`
	InTuples  int64   `json:"in_tuples,omitempty"`
	OutTuples int64   `json:"out_tuples,omitempty"`
	Workers   int     `json:"workers,omitempty"`
	UpdatedNS int64   `json:"updated_ns"`
	VirtSec   float64 `json:"virt_seconds,omitempty"`
}

// Registry tracks every in-flight and completed run the process has
// started. It is safe for concurrent use; the HTTP server reads it
// while engines publish into it.
type Registry struct {
	epoch time.Time

	mu     sync.Mutex
	nextID int
	runs   map[string]*Run
	order  []string // insertion order, oldest first

	started   int64
	completed int64
	failed    int64
}

// NewRegistry creates an empty run registry whose wall epoch is now.
func NewRegistry() *Registry {
	return &Registry{
		epoch: telemetry.WallClock(),
		runs:  make(map[string]*Run),
	}
}

// nowNS is the registry's wall stamp: nanoseconds since its epoch.
func (g *Registry) nowNS() int64 { return int64(telemetry.WallSince(g.epoch)) }

// StartRun registers a new in-flight run and returns its handle, which
// implements telemetry.ProgressSink (== core.ProgressSink) so it can
// be attached directly to a RunConfig. rec is the run's telemetry
// recorder; it may be shared across runs and may be nil.
func (g *Registry) StartRun(task, paradigm string, rec *telemetry.Recorder) *Run {
	return g.start(task, paradigm, "", "running", rec)
}

// StartQueued registers a run waiting in the service queue; it turns
// live via MarkRunning when the scheduler dispatches it. tenant
// attributes it for fair-share accounting.
func (g *Registry) StartQueued(task, paradigm, tenant string, rec *telemetry.Recorder) *Run {
	return g.start(task, paradigm, tenant, "queued", rec)
}

func (g *Registry) start(task, paradigm, tenant, state string, rec *telemetry.Recorder) *Run {
	g.mu.Lock()
	g.nextID++
	g.started++
	r := &Run{
		ID:       fmt.Sprintf("r%04d", g.nextID),
		Task:     task,
		Paradigm: paradigm,
		Tenant:   tenant,
		reg:      g,
		rec:      rec,
		state:    state,
		startNS:  g.nowNS(),
		ops:      make(map[string]*OpStatus),
		notify:   make(chan struct{}),
	}
	g.runs[r.ID] = r
	g.order = append(g.order, r.ID)
	g.evict()
	g.mu.Unlock()
	r.sampleLocked(r.startNS) // seed the series with a starting point
	return r
}

// Remove forgets a run that never started executing — the rollback
// path when service admission rejects a just-registered submission. It
// declines to remove a run that has begun running.
func (g *Registry) Remove(id string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.runs[id]
	if !ok {
		return false
	}
	r.mu.Lock()
	queued := r.state == "queued"
	r.mu.Unlock()
	if !queued {
		return false
	}
	delete(g.runs, id)
	for i, oid := range g.order {
		if oid == id {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	g.started--
	return true
}

// evict drops the oldest finished runs beyond the retention cap.
// Callers hold g.mu.
func (g *Registry) evict() {
	finished := 0
	for _, id := range g.order {
		if g.runs[id].isFinished() {
			finished++
		}
	}
	if finished <= keepCompleted {
		return
	}
	kept := g.order[:0]
	for _, id := range g.order {
		if finished > keepCompleted && g.runs[id].isFinished() {
			delete(g.runs, id)
			finished--
			continue
		}
		kept = append(kept, id)
	}
	g.order = kept
}

// Run looks up a run by ID.
func (g *Registry) Run(id string) (*Run, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.runs[id]
	return r, ok
}

// Runs returns all known runs, oldest first.
func (g *Registry) Runs() []*Run {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*Run, 0, len(g.order))
	for _, id := range g.order {
		out = append(out, g.runs[id])
	}
	return out
}

// Counts reports lifetime run counts (started, completed, failed).
func (g *Registry) Counts() (started, completed, failed int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.started, g.completed, g.failed
}

// Run is one tracked execution. It implements telemetry.ProgressSink:
// the engines publish into it live, and HTTP handlers read events,
// operator status and the sampled time series out of it.
type Run struct {
	ID       string
	Task     string
	Paradigm string
	Tenant   string

	reg *Registry
	rec *telemetry.Recorder

	mu      sync.Mutex
	state   string // "queued", "running", "completed", "failed"
	errMsg  string
	notes   map[string]string
	startNS int64
	endNS   int64

	seq     int64 // total events ever published
	dropped int64 // events slow streamers lost to ring eviction
	events  [eventRingSize]Event
	ops     map[string]*OpStatus
	opOrder []string
	notify  chan struct{} // closed and replaced on every publish

	samples      [sampleRingSize]Sample
	nSamples     int64 // total samples ever taken
	lastSampleNS int64
	virtNow      float64

	summary map[string]float64 // final scalar results, set by Finish
}

// Publish implements telemetry.ProgressSink. It stamps the event,
// stores it in the ring, folds it into the per-operator status table,
// opportunistically samples the time series, and wakes SSE streams.
func (r *Run) Publish(ev telemetry.ProgressEvent) {
	now := r.reg.nowNS()
	r.mu.Lock()
	e := Event{Seq: r.seq, WallNS: now, ProgressEvent: ev}
	r.events[r.seq%eventRingSize] = e
	r.seq++
	if ev.VirtSeconds > r.virtNow {
		r.virtNow = ev.VirtSeconds
	}
	if ev.Op != "" {
		st, ok := r.ops[ev.Op]
		if !ok {
			st = &OpStatus{Op: ev.Op}
			r.ops[ev.Op] = st
			r.opOrder = append(r.opOrder, ev.Op)
		}
		if ev.Kind != "" {
			st.Kind = ev.Kind
		}
		if ev.State != "" {
			st.State = ev.State
		}
		if ev.InTuples > 0 {
			st.InTuples = ev.InTuples
		}
		if ev.OutTuples > 0 {
			st.OutTuples = ev.OutTuples
		}
		if ev.Workers > 0 {
			st.Workers = ev.Workers
		}
		if ev.VirtSeconds > 0 {
			st.VirtSec = ev.VirtSeconds
		}
		st.UpdatedNS = now
	}
	if now-r.lastSampleNS >= int64(sampleMinInterval) {
		r.sampleAt(now)
	}
	ch := r.notify
	r.notify = make(chan struct{})
	r.mu.Unlock()
	close(ch)
}

// sampleLocked takes a sample while acquiring the run lock itself.
func (r *Run) sampleLocked(now int64) {
	r.mu.Lock()
	r.sampleAt(now)
	ch := r.notify
	r.notify = make(chan struct{})
	r.mu.Unlock()
	close(ch)
}

// sampleAt appends one time-series point. Callers hold r.mu.
func (r *Run) sampleAt(now int64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := Sample{
		WallNS:      now,
		VirtSeconds: r.virtNow,
		Events:      r.seq,
		Goroutines:  runtime.NumGoroutine(),
		HeapAlloc:   ms.HeapAlloc,
		HeapSys:     ms.HeapSys,
		NumGC:       ms.NumGC,
	}
	if r.rec != nil {
		foldSnapshot(&s, r.rec.Metrics.Snapshot(true))
	}
	r.samples[r.nSamples%sampleRingSize] = s
	r.nSamples++
	r.lastSampleNS = now
}

// foldSnapshot aggregates the instrument snapshot into the sample's
// scalar series by name suffix, the naming scheme the engines use
// (wf.<wf>.exec.*, lineage.<scope>.*, *.recovery.kills).
func foldSnapshot(s *Sample, snap telemetry.MetricsSnapshot) {
	for _, c := range snap.Counters {
		switch {
		case strings.HasSuffix(c.Name, "exec.tuples"):
			s.Tuples += c.Value
		case strings.HasSuffix(c.Name, "exec.batches"):
			s.Batches += c.Value
		case strings.HasPrefix(c.Name, "lineage.") && strings.HasSuffix(c.Name, ".hits"):
			s.LineageHits += c.Value
		case strings.HasPrefix(c.Name, "lineage.") && strings.HasSuffix(c.Name, ".misses"):
			s.LineageMisses += c.Value
		case strings.HasSuffix(c.Name, "recovery.kills"):
			s.RecoveryKills += c.Value
		}
	}
	for _, gv := range snap.Gauges {
		if strings.HasSuffix(gv.Name, "exec.queue_depth") {
			s.QueueDepth += gv.Last
			if gv.Max > s.QueueDepthMax {
				s.QueueDepthMax = gv.Max
			}
		}
	}
}

// Finish marks the run done. summary carries final scalar results
// (sim_seconds, quality metrics); err marks the run failed.
func (r *Run) Finish(summary map[string]float64, err error) {
	now := r.reg.nowNS()
	r.mu.Lock()
	if r.isFinishedLocked() {
		r.mu.Unlock()
		return
	}
	if err != nil {
		r.state = "failed"
		r.errMsg = err.Error()
	} else {
		r.state = "completed"
	}
	r.endNS = now
	r.summary = summary
	r.sampleAt(now)
	ch := r.notify
	r.notify = make(chan struct{})
	r.mu.Unlock()
	close(ch)

	r.reg.mu.Lock()
	if err != nil {
		r.reg.failed++
	} else {
		r.reg.completed++
	}
	r.reg.mu.Unlock()
}

func (r *Run) isFinishedLocked() bool {
	return r.state == "completed" || r.state == "failed"
}

func (r *Run) isFinished() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.isFinishedLocked()
}

// State returns the run's lifecycle state.
func (r *Run) State() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// MarkRunning transitions a queued run to running — the scheduler's
// dispatch moment. It is a no-op for runs already live or finished.
func (r *Run) MarkRunning() {
	r.mu.Lock()
	if r.state != "queued" {
		r.mu.Unlock()
		return
	}
	r.state = "running"
	ch := r.notify
	r.notify = make(chan struct{})
	r.mu.Unlock()
	close(ch)
}

// SetNote attaches a small string fact to the run (output digests,
// scheduling stamps); notes appear in Info.
func (r *Run) SetNote(key, value string) {
	r.mu.Lock()
	if r.notes == nil {
		r.notes = make(map[string]string)
	}
	r.notes[key] = value
	r.mu.Unlock()
}

// Note reads one note back; empty when unset.
func (r *Run) Note(key string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.notes[key]
}

// Recorder returns the run's telemetry recorder (may be nil).
func (r *Run) Recorder() *telemetry.Recorder { return r.rec }

// EventsSince returns the buffered events with Seq >= cursor (older
// events may have been evicted from the ring — the returned slice
// starts at the oldest retained event), the next cursor, and a channel
// that is closed the next time anything is published. done reports
// whether the run has finished, so streamers know no further events
// will come once they have drained.
//
// dropped counts events the caller asked for that the ring had already
// overwritten — the drop-oldest backpressure a slow streamer pays
// instead of stalling publishers. A fresh attach (cursor 0) catches up
// from the retained tail without counting the history as drops; the
// per-run total accumulates into Info's dropped_events.
func (r *Run) EventsSince(cursor int64) (evs []Event, next, dropped int64, wake <-chan struct{}, done bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	lo := cursor
	if min := r.seq - eventRingSize; lo < min {
		lo = min
	}
	if lo < 0 {
		lo = 0
	}
	if cursor > 0 && lo > cursor {
		dropped = lo - cursor
		r.dropped += dropped
	}
	for i := lo; i < r.seq; i++ {
		evs = append(evs, r.events[i%eventRingSize])
	}
	return evs, r.seq, dropped, r.notify, r.isFinishedLocked()
}

// DroppedEvents returns the run's cumulative drop-oldest count across
// all event streams.
func (r *Run) DroppedEvents() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Ops returns the per-operator status table in first-seen order.
func (r *Run) Ops() []OpStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]OpStatus, 0, len(r.opOrder))
	for _, name := range r.opOrder {
		out = append(out, *r.ops[name])
	}
	return out
}

// Samples returns the retained time series, oldest first.
func (r *Run) Samples() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	lo := r.nSamples - sampleRingSize
	if lo < 0 {
		lo = 0
	}
	out := make([]Sample, 0, r.nSamples-lo)
	for i := lo; i < r.nSamples; i++ {
		out = append(out, r.samples[i%sampleRingSize])
	}
	return out
}

// Info is the JSON shape of one run in /runs listings.
type Info struct {
	ID            string             `json:"id"`
	Task          string             `json:"task"`
	Paradigm      string             `json:"paradigm,omitempty"`
	Tenant        string             `json:"tenant,omitempty"`
	State         string             `json:"state"`
	Error         string             `json:"error,omitempty"`
	StartWallNS   int64              `json:"start_wall_ns"`
	EndWallNS     int64              `json:"end_wall_ns,omitempty"`
	Events        int64              `json:"events"`
	DroppedEvents int64              `json:"dropped_events,omitempty"`
	Operators     int                `json:"operators"`
	VirtSeconds   float64            `json:"virt_seconds,omitempty"`
	Summary       map[string]float64 `json:"summary,omitempty"`
	Notes         map[string]string  `json:"notes,omitempty"`
}

// Info snapshots the run's listing row.
func (r *Run) Info() Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	in := Info{
		ID:            r.ID,
		Task:          r.Task,
		Paradigm:      r.Paradigm,
		Tenant:        r.Tenant,
		State:         r.state,
		Error:         r.errMsg,
		StartWallNS:   r.startNS,
		EndWallNS:     r.endNS,
		Events:        r.seq,
		DroppedEvents: r.dropped,
		Operators:     len(r.opOrder),
		VirtSeconds:   r.virtNow,
	}
	if len(r.summary) > 0 {
		in.Summary = make(map[string]float64, len(r.summary))
		for k, v := range r.summary {
			in.Summary[k] = v
		}
	}
	if len(r.notes) > 0 {
		in.Notes = make(map[string]string, len(r.notes))
		for k, v := range r.notes {
			in.Notes[k] = v
		}
	}
	return in
}

// Detail is the JSON shape of /runs/{id}: the listing row plus the
// operator table and sampled time series.
type Detail struct {
	Info
	Ops     []OpStatus `json:"ops,omitempty"`
	Samples []Sample   `json:"samples,omitempty"`
}

// Detail snapshots the run's full introspection view.
func (r *Run) Detail() Detail {
	d := Detail{Info: r.Info(), Ops: r.Ops(), Samples: r.Samples()}
	return d
}

// sortOps orders an operator table by name — used by deterministic
// renderings; the live table keeps first-seen order instead.
func sortOps(ops []OpStatus) {
	sort.Slice(ops, func(i, j int) bool { return ops[i].Op < ops[j].Op })
}
