package obs

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/telemetry"
)

// promName sanitizes an internal instrument name ("wf.dice.exec.tuples")
// into a Prometheus metric name ("repro_wf_dice_exec_tuples"). The
// internal scheme uses dots, arrows and brackets; everything outside
// the Prometheus alphabet becomes an underscore and runs of
// underscores collapse, so distinct internal names stay distinct in
// practice while every output name is valid exposition syntax.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 6)
	b.WriteString("repro_")
	prevUnderscore := false
	for _, r := range name {
		ok := r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
			prevUnderscore = false
			continue
		}
		if !prevUnderscore {
			b.WriteByte('_')
			prevUnderscore = true
		}
	}
	return strings.TrimRight(b.String(), "_")
}

// bucketHigh returns the exclusive upper bound of the power-of-two
// histogram bucket whose inclusive lower bound is low — the value the
// exposition's cumulative `le` label carries.
func bucketHigh(low int64) int64 {
	if low <= 0 {
		return 1
	}
	return low * 2
}

// RenderProm writes a telemetry metrics snapshot in Prometheus text
// exposition format (version 0.0.4). The output is a pure function of
// the snapshot: names are sorted by the snapshot itself and no clock
// or process state is consulted, so identical snapshots render to
// identical bytes — the property the scrape-stability test pins.
//
// Counters map to counter families, gauges to a pair of gauge families
// (`…` last value, `…_max` high-water mark), histograms to cumulative
// `_bucket`/`_count` families in the classic le scheme.
func RenderProm(w io.Writer, snap telemetry.MetricsSnapshot) error {
	for _, c := range snap.Counters {
		n := promName(c.Name)
		if _, err := fmt.Fprintf(w, "# HELP %s repro counter %s\n# TYPE %s counter\n%s %d\n", n, c.Name, n, n, c.Value); err != nil {
			return err
		}
	}
	for _, g := range snap.Gauges {
		n := promName(g.Name)
		if _, err := fmt.Fprintf(w, "# HELP %s repro gauge %s (last)\n# TYPE %s gauge\n%s %d\n", n, g.Name, n, n, g.Last); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# HELP %s_max repro gauge %s (max)\n# TYPE %s_max gauge\n%s_max %d\n", n, g.Name, n, n, g.Max); err != nil {
			return err
		}
	}
	for _, h := range snap.Histograms {
		n := promName(h.Name)
		if _, err := fmt.Fprintf(w, "# HELP %s repro histogram %s (%s)\n# TYPE %s histogram\n", n, h.Name, h.Unit, n); err != nil {
			return err
		}
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", n, bucketHigh(b.Low), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_count %d\n", n, h.Count, n, h.Count); err != nil {
			return err
		}
	}
	return nil
}
