// Package objstore simulates Ray's shared-memory object store
// ("plasma"). Drivers put large objects — datasets, models — into the
// store; tasks fetch them before running. The store has a memory
// budget; overflow evicts unpinned objects to a disk spill path whose
// much lower throughput is the mechanism behind the script paradigm's
// GOTTA slowdown in the reproduced paper (the 1.59 GB model is fetched
// by every worker).
package objstore

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/cost"
)

// ID names an object in the store.
type ID string

// Stats aggregates store activity.
type Stats struct {
	Puts       int
	Gets       int
	Spills     int
	Restores   int
	PutSeconds float64
	GetSeconds float64
	// SpilledBytes totals bytes written to the disk spill path, whether
	// by LRU eviction or by oversized puts landing there directly — the
	// number the scale experiment's spill curves report.
	SpilledBytes int64
	// Reconstructions counts objects rebuilt from lineage after node
	// faults; ReconstructedBytes and ReconstructSeconds total their
	// size and simulated cost.
	Reconstructions    int
	ReconstructedBytes int64
	ReconstructSeconds float64
}

type object struct {
	id      ID
	size    int64
	pinned  bool
	spilled bool
	pending bool          // reserved by BeginPut, invisible until CommitPut
	lruElem *list.Element // nil while spilled
}

// Store is a simulated object store with a memory budget and an LRU
// spill policy. All methods are goroutine-safe: concurrent spill
// writers from sharded executions share one store.
type Store struct {
	mu       sync.Mutex
	model    *cost.Model
	capacity int64
	used     int64
	objects  map[ID]*object
	lru      *list.List // front = most recently used; values are *object
	stats    Stats
}

// New creates a store with the given memory capacity in bytes. A nil
// model uses cost.Default().
func New(model *cost.Model, capacity int64) (*Store, error) {
	if model == nil {
		model = cost.Default()
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("objstore: capacity must be positive, got %d", capacity)
	}
	return &Store{
		model:    model,
		capacity: capacity,
		objects:  make(map[ID]*object),
		lru:      list.New(),
	}, nil
}

// Stats returns a copy of the activity counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Used returns the bytes currently resident in memory.
func (s *Store) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Capacity returns the memory budget.
func (s *Store) Capacity() int64 { return s.capacity }

// Contains reports whether the object exists (in memory or spilled).
// Pending (uncommitted) puts are invisible.
func (s *Store) Contains(id ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[id]
	return ok && !o.pending
}

// Spilled reports whether the object is currently on the spill path.
func (s *Store) Spilled(id ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[id]
	return ok && !o.pending && o.spilled
}

// Size returns an object's size, or 0 if absent.
func (s *Store) Size(id ID) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if o, ok := s.objects[id]; ok && !o.pending {
		return o.size
	}
	return 0
}

// evictFor spills unpinned LRU objects until need bytes fit, returning
// the simulated seconds spent spilling. It reports whether it
// succeeded. When the request is unsatisfiable — pinned residents alone
// leave less than need bytes of reclaimable headroom — it fails
// up front without spilling anything, so an oversized put does not
// pointlessly flush every unpinned bystander to disk on its way to the
// spill path. The caller must hold s.mu.
func (s *Store) evictFor(need int64) (float64, bool) {
	var pinned int64
	for e := s.lru.Front(); e != nil; e = e.Next() {
		if o := e.Value.(*object); o.pinned {
			pinned += o.size
		}
	}
	if pinned+need > s.capacity {
		return 0, false
	}
	var secs float64
	for s.used+need > s.capacity {
		e := s.lru.Back()
		var victim *object
		for e != nil {
			o := e.Value.(*object)
			if !o.pinned {
				victim = o
				break
			}
			e = e.Prev()
		}
		if victim == nil {
			return secs, false
		}
		s.lru.Remove(victim.lruElem)
		victim.lruElem = nil
		victim.spilled = true
		s.used -= victim.size
		s.stats.Spills++
		s.stats.SpilledBytes += victim.size
		secs += s.model.PutSeconds(victim.size, true)
	}
	return secs, true
}

// Put stores an object of the given size and returns the simulated
// seconds the put took. If the object does not fit even after evicting
// everything unpinned, it is created directly on the spill path.
// Putting an existing ID is an error.
func (s *Store) Put(id ID, size int64) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putLocked(id, size)
}

func (s *Store) putLocked(id ID, size int64) (float64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("objstore: object %q has size %d", id, size)
	}
	if _, dup := s.objects[id]; dup {
		return 0, fmt.Errorf("objstore: object %q already exists", id)
	}
	o := &object{id: id, size: size}
	s.objects[id] = o
	return s.placeLocked(o)
}

// placeLocked finds room for a freshly created (or committed) object,
// spilling residents or landing it directly on disk as needed. The
// caller must hold s.mu and have inserted o into s.objects.
func (s *Store) placeLocked(o *object) (float64, error) {
	secs, ok := s.evictFor(o.size)
	if !ok || o.size > s.capacity {
		o.spilled = true
		s.stats.Puts++
		s.stats.SpilledBytes += o.size
		secs += s.model.PutSeconds(o.size, true)
		s.stats.PutSeconds += secs
		return secs, nil
	}
	s.used += o.size
	o.lruElem = s.lru.PushFront(o)
	s.stats.Puts++
	secs += s.model.PutSeconds(o.size, false)
	s.stats.PutSeconds += secs
	return secs, nil
}

// BeginPut reserves an ID for a two-phase put: the reservation claims
// the name (a concurrent Put or BeginPut of the same ID fails) but
// holds no bytes and is invisible to readers until CommitPut. A writer
// that dies mid-spill leaves only a reservation; AbortPut (or the
// janitor that notices the writer is gone) cleans it up with no effect
// on residents.
func (s *Store) BeginPut(id ID, size int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if size <= 0 {
		return fmt.Errorf("objstore: object %q has size %d", id, size)
	}
	if _, dup := s.objects[id]; dup {
		return fmt.Errorf("objstore: object %q already exists", id)
	}
	s.objects[id] = &object{id: id, size: size, pending: true}
	return nil
}

// CommitPut completes a reservation made by BeginPut: the object
// becomes visible and the put is priced exactly as a direct Put.
func (s *Store) CommitPut(id ID) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[id]
	if !ok {
		return 0, fmt.Errorf("objstore: no pending put for %q", id)
	}
	if !o.pending {
		return 0, fmt.Errorf("objstore: object %q is not a pending put", id)
	}
	o.pending = false
	return s.placeLocked(o)
}

// AbortPut discards a reservation made by BeginPut — the crash-mid-
// spill cleanup path. Aborting a committed object is an error; use
// Delete for those.
func (s *Store) AbortPut(id ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[id]
	if !ok {
		return fmt.Errorf("objstore: no pending put for %q", id)
	}
	if !o.pending {
		return fmt.Errorf("objstore: object %q is not a pending put", id)
	}
	delete(s.objects, id)
	return nil
}

// Get fetches an object, restoring it from the spill path if needed,
// and returns the simulated seconds the access took.
func (s *Store) Get(id ID) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[id]
	if !ok || o.pending {
		return 0, fmt.Errorf("objstore: object %q not found", id)
	}
	if !o.spilled {
		s.lru.MoveToFront(o.lruElem)
		s.stats.Gets++
		secs := s.model.GetSeconds(o.size, false)
		s.stats.GetSeconds += secs
		return secs, nil
	}
	// Restore from spill; may evict others.
	secs, ok := s.evictFor(o.size)
	if !ok || o.size > s.capacity {
		// Cannot restore: serve directly from disk.
		s.stats.Gets++
		secs += s.model.GetSeconds(o.size, true)
		s.stats.GetSeconds += secs
		return secs, nil
	}
	o.spilled = false
	s.used += o.size
	o.lruElem = s.lru.PushFront(o)
	s.stats.Restores++
	s.stats.Gets++
	secs += s.model.GetSeconds(o.size, true) // restore reads from disk
	s.stats.GetSeconds += secs
	return secs, nil
}

// AccessSeconds prices a Get without mutating store state — used by
// the scheduler to cost many concurrent readers deterministically.
func (s *Store) AccessSeconds(id ID) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[id]
	if !ok || o.pending {
		return 0, fmt.Errorf("objstore: object %q not found", id)
	}
	return s.model.GetSeconds(o.size, o.spilled), nil
}

// ReconstructSeconds prices rebuilding a lost copy of an object after
// a node fault, the way Ray recovers plasma objects: the object is
// re-created from lineage (a fresh put at memory rate) and the
// retried task fetches it again. The store's contents are unchanged —
// the surviving copy is authoritative — but the reconstruction is
// recorded in the stats.
func (s *Store) ReconstructSeconds(id ID) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[id]
	if !ok || o.pending {
		return 0, fmt.Errorf("objstore: object %q not found", id)
	}
	secs := s.model.PutSeconds(o.size, false) + s.model.GetSeconds(o.size, o.spilled)
	s.stats.Reconstructions++
	s.stats.ReconstructedBytes += o.size
	s.stats.ReconstructSeconds += secs
	return secs, nil
}

// Pin protects an object from eviction.
func (s *Store) Pin(id ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[id]
	if !ok || o.pending {
		return fmt.Errorf("objstore: object %q not found", id)
	}
	o.pinned = true
	return nil
}

// Unpin releases an object for eviction.
func (s *Store) Unpin(id ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[id]
	if !ok || o.pending {
		return fmt.Errorf("objstore: object %q not found", id)
	}
	o.pinned = false
	return nil
}

// Delete removes an object entirely.
func (s *Store) Delete(id ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[id]
	if !ok || o.pending {
		return fmt.Errorf("objstore: object %q not found", id)
	}
	if o.lruElem != nil {
		s.lru.Remove(o.lruElem)
		s.used -= o.size
	}
	delete(s.objects, id)
	return nil
}
