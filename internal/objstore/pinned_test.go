package objstore

import "testing"

// When every resident object is pinned, an over-budget put must go
// straight to the spill path without evicting (there is nothing legal
// to evict) and without error.
func TestPutAllResidentsPinned(t *testing.T) {
	s, err := New(nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []ID{"a", "b"} {
		if _, err := s.Put(id, 50); err != nil {
			t.Fatal(err)
		}
		if err := s.Pin(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Put("c", 10); err != nil {
		t.Fatalf("put with all residents pinned: %v", err)
	}
	if !s.Spilled("c") {
		t.Fatal("object c should have been created on the spill path")
	}
	if s.Spilled("a") || s.Spilled("b") {
		t.Fatal("pinned residents must not be evicted")
	}
	if got := s.Stats().Spills; got != 0 {
		t.Fatalf("no eviction should have happened, got %d spills", got)
	}
	if s.Used() != 100 {
		t.Fatalf("used = %d, want 100", s.Used())
	}
}

// An unsatisfiable request (pinned bytes + need > capacity) must fail
// fast instead of first flushing every unpinned bystander to disk.
func TestUnsatisfiableEvictionSparesBystanders(t *testing.T) {
	s, err := New(nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("pinned", 60); err != nil {
		t.Fatal(err)
	}
	if err := s.Pin("pinned"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("bystander", 30); err != nil {
		t.Fatal(err)
	}
	// 60 pinned + 50 needed > 100: impossible even with "bystander" gone.
	if _, err := s.Put("big", 50); err != nil {
		t.Fatal(err)
	}
	if !s.Spilled("big") {
		t.Fatal("object big should have been created on the spill path")
	}
	if s.Spilled("bystander") {
		t.Fatal("bystander was pointlessly evicted on an unsatisfiable request")
	}
	if got := s.Stats().Spills; got != 0 {
		t.Fatalf("want 0 spill evictions, got %d", got)
	}
}

// Same edge case on the read side: restoring a spilled object that can
// never fit must serve from disk without evicting residents.
func TestUnsatisfiableRestoreSparesResidents(t *testing.T) {
	s, err := New(nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("huge", 200); err != nil { // lands spilled
		t.Fatal(err)
	}
	if _, err := s.Put("resident", 40); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("huge"); err != nil {
		t.Fatal(err)
	}
	if s.Spilled("resident") {
		t.Fatal("resident was evicted for an unrestorable object")
	}
	if s.Spilled("huge") != true {
		t.Fatal("huge cannot be restored into a 100-byte store")
	}
	if got := s.Stats().Restores; got != 0 {
		t.Fatalf("want 0 restores, got %d", got)
	}
}

// Delete of a pinned, resident entry must release its memory and LRU
// slot; a pin protects against eviction, not against explicit deletion.
func TestDeletePinnedEntry(t *testing.T) {
	s, err := New(nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("a", 70); err != nil {
		t.Fatal(err)
	}
	if err := s.Pin("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatalf("delete of pinned entry: %v", err)
	}
	if s.Contains("a") {
		t.Fatal("deleted object still present")
	}
	if s.Used() != 0 {
		t.Fatalf("used = %d after delete, want 0", s.Used())
	}
	// The freed space must be reusable in memory.
	if _, err := s.Put("b", 90); err != nil {
		t.Fatal(err)
	}
	if s.Spilled("b") {
		t.Fatal("store did not reclaim the deleted pinned entry's space")
	}
}
