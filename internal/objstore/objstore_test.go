package objstore

import (
	"testing"

	"repro/internal/cost"
)

func newStore(t *testing.T, capacity int64) *Store {
	t.Helper()
	s, err := New(nil, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidates(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Fatal("expected error for zero capacity")
	}
	bad := cost.Default()
	bad.SpillBytesPerSec = 0
	if _, err := New(bad, 100); err == nil {
		t.Fatal("expected error for invalid model")
	}
}

func TestPutGet(t *testing.T) {
	s := newStore(t, 1000)
	secs, err := s.Put("a", 100)
	if err != nil || secs <= 0 {
		t.Fatalf("put: %v %v", secs, err)
	}
	if !s.Contains("a") || s.Spilled("a") || s.Used() != 100 || s.Size("a") != 100 {
		t.Fatal("store state wrong after put")
	}
	gsecs, err := s.Get("a")
	if err != nil || gsecs <= 0 {
		t.Fatalf("get: %v %v", gsecs, err)
	}
	st := s.Stats()
	if st.Puts != 1 || st.Gets != 1 || st.Spills != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutErrors(t *testing.T) {
	s := newStore(t, 1000)
	if _, err := s.Put("a", 0); err == nil {
		t.Fatal("expected error for zero size")
	}
	if _, err := s.Put("a", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("a", 10); err == nil {
		t.Fatal("expected error for duplicate put")
	}
	if _, err := s.Get("missing"); err == nil {
		t.Fatal("expected error for missing get")
	}
	if _, err := s.AccessSeconds("missing"); err == nil {
		t.Fatal("expected error for missing access")
	}
}

func TestLRUSpillAndRestore(t *testing.T) {
	s := newStore(t, 250)
	s.Put("a", 100)
	s.Put("b", 100)
	// Touch a so that b is the LRU victim.
	s.Get("a")
	if _, err := s.Put("c", 100); err != nil {
		t.Fatal(err)
	}
	if !s.Spilled("b") {
		t.Fatal("b should have spilled")
	}
	if s.Spilled("a") || s.Spilled("c") {
		t.Fatal("wrong victim spilled")
	}
	if s.Stats().Spills != 1 {
		t.Fatalf("spills = %d", s.Stats().Spills)
	}
	// Restoring b evicts something else.
	if _, err := s.Get("b"); err != nil {
		t.Fatal(err)
	}
	if s.Spilled("b") {
		t.Fatal("b should be restored")
	}
	if s.Stats().Restores != 1 {
		t.Fatalf("restores = %d", s.Stats().Restores)
	}
	if s.Used() > s.Capacity() {
		t.Fatalf("used %d exceeds capacity %d", s.Used(), s.Capacity())
	}
}

func TestSpilledAccessSlower(t *testing.T) {
	s := newStore(t, 250)
	s.Put("a", 200)
	memCost, _ := s.AccessSeconds("a")
	s.Put("b", 200) // evicts a
	if !s.Spilled("a") {
		t.Fatal("a should have spilled")
	}
	diskCost, _ := s.AccessSeconds("a")
	if diskCost <= memCost {
		t.Fatalf("spilled access (%v) should cost more than memory (%v)", diskCost, memCost)
	}
}

func TestOversizedObjectGoesToDisk(t *testing.T) {
	s := newStore(t, 100)
	secs, err := s.Put("huge", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Spilled("huge") {
		t.Fatal("oversized object should live on the spill path")
	}
	if secs <= 0 {
		t.Fatal("oversized put should cost time")
	}
	// Get serves from disk without restoring.
	if _, err := s.Get("huge"); err != nil {
		t.Fatal(err)
	}
	if !s.Spilled("huge") {
		t.Fatal("oversized object cannot be restored")
	}
	if s.Used() != 0 {
		t.Fatalf("used = %d", s.Used())
	}
}

func TestPinPreventsEviction(t *testing.T) {
	s := newStore(t, 250)
	s.Put("model", 200)
	if err := s.Pin("model"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("data", 200); err != nil {
		t.Fatal(err)
	}
	if s.Spilled("model") {
		t.Fatal("pinned object evicted")
	}
	if !s.Spilled("data") {
		t.Fatal("new object should have gone to disk when pin blocks eviction")
	}
	if err := s.Unpin("model"); err != nil {
		t.Fatal(err)
	}
	if err := s.Pin("missing"); err == nil {
		t.Fatal("expected error pinning missing object")
	}
	if err := s.Unpin("missing"); err == nil {
		t.Fatal("expected error unpinning missing object")
	}
}

func TestDelete(t *testing.T) {
	s := newStore(t, 100)
	s.Put("a", 50)
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if s.Contains("a") || s.Used() != 0 {
		t.Fatal("delete did not remove object")
	}
	if err := s.Delete("a"); err == nil {
		t.Fatal("expected error deleting missing object")
	}
	// Deleting a spilled object works too.
	s.Put("big", 1000)
	if err := s.Delete("big"); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantUsedNeverExceedsCapacity(t *testing.T) {
	s := newStore(t, 500)
	sizes := []int64{120, 300, 80, 450, 60, 200, 10, 490}
	for i, sz := range sizes {
		id := ID(rune('a' + i))
		if _, err := s.Put(id, sz); err != nil {
			t.Fatal(err)
		}
		if s.Used() > s.Capacity() {
			t.Fatalf("after put %d: used %d > capacity %d", i, s.Used(), s.Capacity())
		}
	}
	for i := range sizes {
		id := ID(rune('a' + i))
		if _, err := s.Get(id); err != nil {
			t.Fatal(err)
		}
		if s.Used() > s.Capacity() {
			t.Fatalf("after get %d: used %d > capacity %d", i, s.Used(), s.Capacity())
		}
	}
}
