package objstore

import (
	"fmt"
	"sync"
	"testing"
)

// Concurrent spill writers share one store on the sharded tier: every
// worker of a grace join writes its partition files at once. The store
// must keep its books (residency, usage, spill totals) consistent
// under that contention.
func TestConcurrentSpillWriters(t *testing.T) {
	s, err := New(nil, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const perWriter = 16
	const size = 64 << 10 // 8 MiB total demand against a 1 MiB budget
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := ID(fmt.Sprintf("part-%d-%d", w, i))
				if _, err := s.Put(id, size); err != nil {
					t.Errorf("put %s: %v", id, err)
				}
			}
		}(w)
	}
	wg.Wait()

	if used := s.Used(); used > s.Capacity() {
		t.Fatalf("resident bytes %d exceed capacity %d", used, s.Capacity())
	}
	st := s.Stats()
	if st.Puts != writers*perWriter {
		t.Fatalf("puts = %d, want %d", st.Puts, writers*perWriter)
	}
	if st.SpilledBytes == 0 {
		t.Fatal("8 MiB of puts into a 1 MiB store spilled nothing")
	}
	var resident int64
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			id := ID(fmt.Sprintf("part-%d-%d", w, i))
			if !s.Contains(id) {
				t.Fatalf("object %s vanished", id)
			}
			if !s.Spilled(id) {
				resident += s.Size(id)
			}
		}
	}
	if resident != s.Used() {
		t.Fatalf("resident object bytes %d != Used() %d", resident, s.Used())
	}
}

// Pinned artifacts must survive a storm of racing puts: eviction may
// never choose a pinned resident, no matter how much concurrent demand
// lands on the store.
func TestPinnedEvictionRacingPuts(t *testing.T) {
	s, err := New(nil, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	pinned := []ID{"model-a", "model-b"}
	for _, id := range pinned {
		if _, err := s.Put(id, 256<<10); err != nil {
			t.Fatal(err)
		}
		if err := s.Pin(id); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				id := ID(fmt.Sprintf("spill-%d-%d", w, i))
				if _, err := s.Put(id, 128<<10); err != nil {
					t.Errorf("put %s: %v", id, err)
				}
				if _, err := s.Get(id); err != nil {
					t.Errorf("get %s: %v", id, err)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, id := range pinned {
		if s.Spilled(id) {
			t.Fatalf("pinned object %s was evicted to the spill path", id)
		}
	}
	if used := s.Used(); used > s.Capacity() {
		t.Fatalf("resident bytes %d exceed capacity %d", used, s.Capacity())
	}
}

// A writer that dies between BeginPut and CommitPut must leave no
// trace: the reservation is invisible to readers, blocks duplicate
// names, and AbortPut removes it without touching residents.
func TestCrashMidSpillCleanup(t *testing.T) {
	s, err := New(nil, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("resident", 512<<10); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()

	if err := s.BeginPut("wip", 256<<10); err != nil {
		t.Fatal(err)
	}
	// The reservation is invisible...
	if s.Contains("wip") || s.Spilled("wip") || s.Size("wip") != 0 {
		t.Fatal("pending put is visible to readers")
	}
	if _, err := s.Get("wip"); err == nil {
		t.Fatal("Get on a pending put succeeded")
	}
	// ...but owns the name.
	if err := s.BeginPut("wip", 1); err == nil {
		t.Fatal("duplicate BeginPut succeeded")
	}
	if _, err := s.Put("wip", 1); err == nil {
		t.Fatal("Put over a pending reservation succeeded")
	}

	// The crash: the writer never commits. Cleanup leaves the store
	// exactly as it was.
	if err := s.AbortPut("wip"); err != nil {
		t.Fatal(err)
	}
	if s.Stats() != before {
		t.Fatalf("abort changed the books: %+v != %+v", s.Stats(), before)
	}
	if !s.Contains("resident") || s.Spilled("resident") {
		t.Fatal("abort disturbed a resident object")
	}

	// The name is free again, and a committed two-phase put is priced
	// exactly like a direct one.
	if err := s.BeginPut("wip", 256<<10); err != nil {
		t.Fatal(err)
	}
	got, err := s.CommitPut("wip")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(nil, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Put("resident", 512<<10); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Put("wip", 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("committed put cost %g, direct put cost %g", got, want)
	}

	// Aborting a committed object is refused; CommitPut without a
	// reservation is refused.
	if err := s.AbortPut("wip"); err == nil {
		t.Fatal("AbortPut on a committed object succeeded")
	}
	if _, err := s.CommitPut("ghost"); err == nil {
		t.Fatal("CommitPut without a reservation succeeded")
	}
}
