package brat

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

const sample = "T1\tAge 18 27\t34-yr-old\n" +
	"T2\tSex 28 31\tman\n" +
	"T3\tClinical_event 36 45\tpresented\n" +
	"T4\tSign_symptom 65 70\tfever\n" +
	"E1\tClinical_event:T3 Theme:T4\n"

func TestParseSample(t *testing.T) {
	doc, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Entities) != 4 || len(doc.Events) != 1 {
		t.Fatalf("got %d entities, %d events", len(doc.Entities), len(doc.Events))
	}
	e := doc.Entities[0]
	if e.ID != "T1" || e.Type != "Age" || e.Start != 18 || e.End != 27 || e.Text != "34-yr-old" {
		t.Fatalf("entity = %+v", e)
	}
	ev := doc.Events[0]
	if ev.ID != "E1" || ev.Type != "Clinical_event" || ev.Trigger != "T3" {
		t.Fatalf("event = %+v", ev)
	}
	if len(ev.Args) != 1 || ev.Args[0].Role != "Theme" || ev.Args[0].Ref != "T4" {
		t.Fatalf("args = %+v", ev.Args)
	}
}

func TestParseSkipsBlankLines(t *testing.T) {
	doc, err := ParseString("T1\tAge 0 2\tab\n\n\nE1\tAge:T1\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Entities) != 1 || len(doc.Events) != 1 {
		t.Fatal("blank lines broke parsing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"X1\tWhat 0 1\tx",    // unknown kind
		"T1\tAge 0\tx",       // missing end offset
		"T1\tAge a b\tx",     // non-numeric offsets
		"T1\tAge 5 2\tx",     // inverted span
		"T1\tAge -1 2\tx",    // negative start
		"T1 Age 0 2 x",       // no tabs
		"E1\t",               // empty event body
		"E1\tTypeOnly",       // missing trigger
		"E1\tType:T1 BadArg", // malformed arg
		"E1\tType:T1 Role:",  // empty ref
		"E1\t:T1",            // empty type
	}
	for i, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("case %d (%q): expected error", i, c)
		}
	}
}

func TestRenderRoundTrip(t *testing.T) {
	doc, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	if Render(doc) != sample {
		t.Fatalf("render = %q, want %q", Render(doc), sample)
	}
}

func TestEntityByID(t *testing.T) {
	doc, _ := ParseString(sample)
	if e := doc.EntityByID("T2"); e == nil || e.Text != "man" {
		t.Fatalf("EntityByID(T2) = %+v", e)
	}
	if doc.EntityByID("T99") != nil {
		t.Fatal("missing ID should give nil")
	}
}

func TestValidate(t *testing.T) {
	doc, _ := ParseString(sample)
	if err := doc.Validate(100); err != nil {
		t.Fatal(err)
	}
	if err := doc.Validate(50); err == nil {
		t.Fatal("expected span-exceeds-text error")
	}
	dup := &Document{Entities: []Entity{{ID: "T1", Type: "A", Start: 0, End: 1}, {ID: "T1", Type: "B", Start: 0, End: 1}}}
	if err := dup.Validate(-1); err == nil {
		t.Fatal("expected duplicate id error")
	}
	badTrig := &Document{Events: []Event{{ID: "E1", Type: "X", Trigger: "T9"}}}
	if err := badTrig.Validate(-1); err == nil {
		t.Fatal("expected unresolved trigger error")
	}
	badArg := &Document{
		Entities: []Entity{{ID: "T1", Type: "A", Start: 0, End: 1}},
		Events:   []Event{{ID: "E1", Type: "X", Trigger: "T1", Args: []Arg{{Role: "Theme", Ref: "T7"}}}},
	}
	if err := badArg.Validate(-1); err == nil {
		t.Fatal("expected unresolved arg error")
	}
	dupEvent := &Document{
		Entities: []Entity{{ID: "T1", Type: "A", Start: 0, End: 1}},
		Events: []Event{
			{ID: "E1", Type: "X", Trigger: "T1"},
			{ID: "E1", Type: "Y", Trigger: "T1"},
		},
	}
	if err := dupEvent.Validate(-1); err == nil {
		t.Fatal("expected duplicate event id error")
	}
}

func randomDoc(r *xrand.Rand) *Document {
	types := []string{"Age", "Sex", "Sign_symptom", "Clinical_event", "Medication"}
	words := []string{"fever", "cough", "man", "presented", "34-yr-old"}
	doc := &Document{}
	n := 1 + r.Intn(10)
	for i := 0; i < n; i++ {
		start := r.Intn(500)
		doc.Entities = append(doc.Entities, Entity{
			ID:    "T" + itoa(i+1),
			Type:  xrand.Choice(r, types),
			Start: start,
			End:   start + 1 + r.Intn(20),
			Text:  xrand.Choice(r, words),
		})
	}
	m := r.Intn(6)
	for i := 0; i < m; i++ {
		ev := Event{
			ID:      "E" + itoa(i+1),
			Type:    xrand.Choice(r, types),
			Trigger: "T" + itoa(1+r.Intn(n)),
		}
		for a := 0; a < r.Intn(3); a++ {
			ev.Args = append(ev.Args, Arg{Role: "Theme", Ref: "T" + itoa(1+r.Intn(n))})
		}
		doc.Events = append(doc.Events, ev)
	}
	return doc
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestPropertyRenderParseRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		doc := randomDoc(xrand.New(seed))
		parsed, err := ParseString(Render(doc))
		if err != nil {
			return false
		}
		if len(parsed.Entities) != len(doc.Entities) || len(parsed.Events) != len(doc.Events) {
			return false
		}
		for i := range doc.Entities {
			if parsed.Entities[i] != doc.Entities[i] {
				return false
			}
		}
		for i := range doc.Events {
			a, b := parsed.Events[i], doc.Events[i]
			if a.ID != b.ID || a.Type != b.Type || a.Trigger != b.Trigger || len(a.Args) != len(b.Args) {
				return false
			}
			for j := range a.Args {
				if a.Args[j] != b.Args[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParseLongLines(t *testing.T) {
	long := "T1\tAge 0 100000\t" + strings.Repeat("x", 100000) + "\n"
	doc, err := ParseString(long)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Entities[0].Text) != 100000 {
		t.Fatal("long line truncated")
	}
}
