// Package brat reads and writes the standoff annotation format used by
// the MACCROBAT dataset (the BRAT rapid annotation tool format shown
// in the paper's Figure 3). An annotation file accompanies a plain
// text file; entity annotations ("T" lines) carry a type, a character
// span and the covered text, and event annotations ("E" lines) carry a
// type plus a reference to their trigger entity and optional role
// arguments.
package brat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Entity is a "T" annotation: a typed character span.
type Entity struct {
	ID    string // e.g. "T1"
	Type  string // e.g. "Sign_symptom"
	Start int    // byte offset, inclusive
	End   int    // byte offset, exclusive
	Text  string // the covered text
}

// Arg is one role argument of an event.
type Arg struct {
	Role string // e.g. "Theme"
	Ref  string // referenced annotation ID, e.g. "T5"
}

// Event is an "E" annotation: a typed event anchored to a trigger
// entity, optionally with role arguments.
type Event struct {
	ID      string // e.g. "E1"
	Type    string // e.g. "Clinical_event"
	Trigger string // trigger entity ID, e.g. "T3"
	Args    []Arg
}

// Document is the parsed content of one annotation file.
type Document struct {
	Entities []Entity
	Events   []Event
}

// EntityByID returns the entity with the given ID, or nil.
func (d *Document) EntityByID(id string) *Entity {
	for i := range d.Entities {
		if d.Entities[i].ID == id {
			return &d.Entities[i]
		}
	}
	return nil
}

// Parse reads a BRAT annotation file. Unknown line kinds are rejected;
// blank lines are skipped.
func Parse(r io.Reader) (*Document, error) {
	doc := &Document{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r\n")
		if strings.TrimSpace(line) == "" {
			continue
		}
		switch line[0] {
		case 'T':
			e, err := parseEntity(line)
			if err != nil {
				return nil, fmt.Errorf("brat: line %d: %w", lineNo, err)
			}
			doc.Entities = append(doc.Entities, e)
		case 'E':
			ev, err := parseEvent(line)
			if err != nil {
				return nil, fmt.Errorf("brat: line %d: %w", lineNo, err)
			}
			doc.Events = append(doc.Events, ev)
		default:
			return nil, fmt.Errorf("brat: line %d: unknown annotation kind %q", lineNo, line[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("brat: %w", err)
	}
	return doc, nil
}

// ParseString parses an annotation file held in a string.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// parseEntity parses "T1\tAge 18 27\t34-yr-old".
func parseEntity(line string) (Entity, error) {
	parts := strings.SplitN(line, "\t", 3)
	if len(parts) != 3 {
		return Entity{}, fmt.Errorf("entity needs 3 tab-separated fields, got %d", len(parts))
	}
	mid := strings.Fields(parts[1])
	if len(mid) != 3 {
		return Entity{}, fmt.Errorf("entity header needs `Type Start End`, got %q", parts[1])
	}
	start, err := strconv.Atoi(mid[1])
	if err != nil {
		return Entity{}, fmt.Errorf("bad start offset %q", mid[1])
	}
	end, err := strconv.Atoi(mid[2])
	if err != nil {
		return Entity{}, fmt.Errorf("bad end offset %q", mid[2])
	}
	if start < 0 || end <= start {
		return Entity{}, fmt.Errorf("invalid span [%d,%d)", start, end)
	}
	return Entity{ID: parts[0], Type: mid[0], Start: start, End: end, Text: parts[2]}, nil
}

// parseEvent parses "E1\tClinical_event:T3 Theme:T5".
func parseEvent(line string) (Event, error) {
	parts := strings.SplitN(line, "\t", 2)
	if len(parts) != 2 {
		return Event{}, fmt.Errorf("event needs 2 tab-separated fields, got %d", len(parts))
	}
	fields := strings.Fields(parts[1])
	if len(fields) == 0 {
		return Event{}, fmt.Errorf("event body is empty")
	}
	typeTrig := strings.SplitN(fields[0], ":", 2)
	if len(typeTrig) != 2 || typeTrig[0] == "" || typeTrig[1] == "" {
		return Event{}, fmt.Errorf("event head needs `Type:Trigger`, got %q", fields[0])
	}
	ev := Event{ID: parts[0], Type: typeTrig[0], Trigger: typeTrig[1]}
	for _, f := range fields[1:] {
		kv := strings.SplitN(f, ":", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return Event{}, fmt.Errorf("event arg needs `Role:Ref`, got %q", f)
		}
		ev.Args = append(ev.Args, Arg{Role: kv[0], Ref: kv[1]})
	}
	return ev, nil
}

// Render writes the document back in BRAT format, entities first then
// events, in slice order.
func Render(d *Document) string {
	var b strings.Builder
	for _, e := range d.Entities {
		fmt.Fprintf(&b, "%s\t%s %d %d\t%s\n", e.ID, e.Type, e.Start, e.End, e.Text)
	}
	for _, ev := range d.Events {
		fmt.Fprintf(&b, "%s\t%s:%s", ev.ID, ev.Type, ev.Trigger)
		for _, a := range ev.Args {
			fmt.Fprintf(&b, " %s:%s", a.Role, a.Ref)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Validate checks internal consistency: unique IDs, event triggers and
// argument references resolving to existing annotations, and entity
// spans lying inside a text of the given length (pass a negative
// length to skip the span check).
func (d *Document) Validate(textLen int) error {
	ids := make(map[string]bool, len(d.Entities)+len(d.Events))
	for _, e := range d.Entities {
		if ids[e.ID] {
			return fmt.Errorf("brat: duplicate id %s", e.ID)
		}
		ids[e.ID] = true
		if textLen >= 0 && e.End > textLen {
			return fmt.Errorf("brat: entity %s span [%d,%d) exceeds text length %d", e.ID, e.Start, e.End, textLen)
		}
	}
	for _, ev := range d.Events {
		if ids[ev.ID] {
			return fmt.Errorf("brat: duplicate id %s", ev.ID)
		}
		ids[ev.ID] = true
	}
	for _, ev := range d.Events {
		if !ids[ev.Trigger] {
			return fmt.Errorf("brat: event %s trigger %s not found", ev.ID, ev.Trigger)
		}
		for _, a := range ev.Args {
			if !ids[a.Ref] {
				return fmt.Errorf("brat: event %s argument %s:%s not found", ev.ID, a.Role, a.Ref)
			}
		}
	}
	return nil
}
