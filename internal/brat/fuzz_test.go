package brat

import (
	"strings"
	"testing"
)

// FuzzParse checks that arbitrary input never panics the parser and
// that everything it accepts survives a render/parse round trip.
func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add("T1\tAge 18 27\t34-yr-old\n")
	f.Add("E1\tClinical_event:T3 Theme:T4\n")
	f.Add("")
	f.Add("T1\tAge 0\tx\n")
	f.Add("garbage")
	f.Add("T1\tAge 18 27\t34\tyr\told\n")
	f.Fuzz(func(t *testing.T, input string) {
		doc, err := ParseString(input)
		if err != nil {
			return
		}
		rendered := Render(doc)
		doc2, err := ParseString(rendered)
		if err != nil {
			t.Fatalf("render output failed to parse: %v\nrendered: %q", err, rendered)
		}
		if len(doc2.Entities) != len(doc.Entities) || len(doc2.Events) != len(doc.Events) {
			t.Fatalf("round trip changed counts: %d/%d -> %d/%d",
				len(doc.Entities), len(doc.Events), len(doc2.Entities), len(doc2.Events))
		}
	})
}

// FuzzValidate checks Validate never panics on parsed documents.
func FuzzValidate(f *testing.F) {
	f.Add(sample, 100)
	f.Fuzz(func(t *testing.T, input string, textLen int) {
		doc, err := ParseString(input)
		if err != nil {
			return
		}
		_ = doc.Validate(textLen)
		_ = doc.EntityByID(strings.Repeat("T", 3))
	})
}
