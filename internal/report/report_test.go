package report

import (
	"strings"
	"testing"
)

func TestTable(t *testing.T) {
	var b strings.Builder
	Table(&b, [][]string{
		{"task", "script", "workflow"},
		{"dice", "239.54", "107.83"},
		{"wef", "1285.82", "1264.93"},
	})
	out := b.String()
	if !strings.Contains(out, "| dice") || !strings.Contains(out, "| 239.54 ") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	for _, l := range lines {
		if len(l) != len(lines[0]) {
			t.Fatalf("ragged table:\n%s", out)
		}
	}
}

func TestTableEmptyAndRagged(t *testing.T) {
	var b strings.Builder
	Table(&b, nil)
	if b.Len() != 0 {
		t.Fatal("empty table should render nothing")
	}
	Table(&b, [][]string{{"a", "b"}, {"only-one"}})
	if !strings.Contains(b.String(), "only-one") {
		t.Fatal("short rows should still render")
	}
}

func TestSecsAndDelta(t *testing.T) {
	if Secs(1.234) != "1.23" {
		t.Fatalf("Secs = %q", Secs(1.234))
	}
	if Delta(110, 100) != "+10%" {
		t.Fatalf("Delta = %q", Delta(110, 100))
	}
	if Delta(90, 100) != "-10%" {
		t.Fatalf("Delta = %q", Delta(90, 100))
	}
	if Delta(1, 0) != "-" {
		t.Fatalf("Delta with no reference = %q", Delta(1, 0))
	}
}

func TestChart(t *testing.T) {
	var b strings.Builder
	Chart(&b, "demo", []Series{
		{Name: "script", Points: []Point{{X: 1, Y: 10}, {X: 2, Y: 20}, {X: 4, Y: 40}}},
		{Name: "workflow", Points: []Point{{X: 1, Y: 5}, {X: 2, Y: 12}, {X: 4, Y: 22}}},
	}, 40, 10)
	out := b.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "*=script") || !strings.Contains(out, "o=workflow") {
		t.Fatalf("chart output:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("chart missing glyphs")
	}
}

func TestChartEmpty(t *testing.T) {
	var b strings.Builder
	Chart(&b, "empty", nil, 40, 10)
	if !strings.Contains(b.String(), "(no data)") {
		t.Fatal("empty chart should say so")
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	var b strings.Builder
	Chart(&b, "flat", []Series{{Name: "s", Points: []Point{{X: 1, Y: 5}, {X: 1, Y: 5}}}}, 20, 6)
	if b.Len() == 0 {
		t.Fatal("flat chart rendered nothing")
	}
}

func TestBar(t *testing.T) {
	var b strings.Builder
	Bar(&b, "loc", []string{"dice", "wef"}, []float64{377, 68}, 30)
	out := b.String()
	if !strings.Contains(out, "dice") || !strings.Contains(out, "####") {
		t.Fatalf("bar output:\n%s", out)
	}
	// dice's bar must be longer than wef's.
	var diceLen, wefLen int
	for _, l := range strings.Split(out, "\n") {
		n := strings.Count(l, "#")
		if strings.Contains(l, "dice") {
			diceLen = n
		}
		if strings.Contains(l, "wef") {
			wefLen = n
		}
	}
	if diceLen <= wefLen {
		t.Fatalf("bar lengths wrong: dice=%d wef=%d", diceLen, wefLen)
	}
}

func TestBarZeroValues(t *testing.T) {
	var b strings.Builder
	Bar(&b, "zeros", []string{"a"}, []float64{0}, 10)
	if b.Len() == 0 {
		t.Fatal("zero bar rendered nothing")
	}
}
