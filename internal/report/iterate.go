package report

import (
	"fmt"
	"io"

	"repro/internal/experiments"
)

// IterationTable renders the iterate experiment: per edit step and
// task, the cold and incremental makespans under both paradigms, the
// reuse ratios, and the artifact bytes served from the store. The
// asymmetry the experiment demonstrates reads off the reuse columns:
// the workflow caches at operator granularity, the script only at cell
// granularity with suffix invalidation.
func IterationTable(w io.Writer, points []experiments.IteratePoint, chart bool) {
	rows := [][]string{{
		"task", "step", "edited stage",
		"script cold", "script inc", "reuse",
		"wflow cold", "wflow inc", "reuse",
		"hit MB", "outputs ok",
	}}
	series := map[string][]Point{}
	for _, p := range points {
		stage := p.Stage
		if stage == "" {
			stage = "(initial build)"
		}
		rows = append(rows, []string{
			p.Task, fmt.Sprint(p.Step), stage,
			Secs(p.ScriptCold), Secs(p.ScriptInc),
			fmt.Sprintf("%d/%d", p.ScriptReused, p.ScriptUnits),
			Secs(p.WorkflowCold), Secs(p.WorkflowInc),
			fmt.Sprintf("%d/%d", p.WorkflowReused, p.WorkflowUnits),
			fmt.Sprintf("%.2f", float64(p.WorkflowHitBytes)/(1<<20)),
			fmt.Sprint(p.OutputsMatch),
		})
		series["script inc/cold"] = append(series["script inc/cold"],
			Point{X: float64(p.Step), Y: ratio(p.ScriptInc, p.ScriptCold)})
		series["workflow inc/cold"] = append(series["workflow inc/cold"],
			Point{X: float64(p.Step), Y: ratio(p.WorkflowInc, p.WorkflowCold)})
	}
	Table(w, rows)
	if chart {
		Chart(w, "incremental/cold makespan ratio vs edit step (all tasks)", []Series{
			{Name: "script (cell suffix reuse)", Points: series["script inc/cold"]},
			{Name: "workflow (operator reuse)", Points: series["workflow inc/cold"]},
		}, 48, 10)
	}
}

// ratio returns inc/cold, guarding a zero denominator.
func ratio(inc, cold float64) float64 {
	if cold <= 0 {
		return 0
	}
	return inc / cold
}
