package report

import (
	"fmt"
	"io"

	"repro/internal/experiments"
)

// ServingCurve renders the serving experiment's load sweep: a table of
// latency percentiles, goodput, admission rejections and Jain's
// fairness index per offered load, and optionally an ASCII chart of
// p50/p99 latency versus load (the saturation knee is the story).
func ServingCurve(w io.Writer, points []experiments.ServingPoint, chart bool) {
	rows := [][]string{{
		"load", "rate/s", "admitted", "rejected", "p50 s", "p99 s",
		"goodput vcpu-s/s", "util", "jain",
	}}
	var p50, p99 []Point
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", p.Load),
			fmt.Sprintf("%.3g", p.RateJobsPerSec),
			fmt.Sprintf("%d/%d", p.Admitted, p.Arrivals),
			fmt.Sprintf("%d", p.Rejected),
			Secs(p.P50Latency), Secs(p.P99Latency),
			fmt.Sprintf("%.3g", p.Goodput),
			fmt.Sprintf("%.2f", p.Utilization),
			fmt.Sprintf("%.3f", p.Jain),
		})
		p50 = append(p50, Point{X: p.Load, Y: p.P50Latency})
		p99 = append(p99, Point{X: p.Load, Y: p.P99Latency})
	}
	Table(w, rows)
	if chart {
		Chart(w, "sojourn latency vs offered load", []Series{
			{Name: "p50", Points: p50},
			{Name: "p99", Points: p99},
		}, 48, 10)
	}
}
