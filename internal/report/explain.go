package report

import (
	"fmt"
	"io"

	"repro/internal/obs"
)

// Explain renders an EXPLAIN-ANALYZE profile as an aligned text tree:
// each sink is a root, children are input producers, and every row
// carries the node's exclusive virtual self-time, its share of the
// makespan, data volume and queue-wait estimate. The output is a pure
// function of the profile, so deterministic profiles render to
// identical bytes — the property the golden test pins.
func Explain(w io.Writer, p *obs.Profile) {
	fmt.Fprintf(w, "EXPLAIN ANALYZE  task=%s  paradigm=%s  workers=%d  seed=%d\n",
		p.Task, p.Paradigm, p.Workers, p.Seed)
	fmt.Fprintf(w, "workflow %q  makespan %.6fs  nodes %d  edges %d\n\n",
		p.Workflow, p.Makespan, p.Totals.Nodes, p.Totals.Edges)

	type row struct {
		label string
		n     *obs.ProfileNode
	}
	var rows []row
	var walk func(n *obs.ProfileNode, prefix string, last bool, depth int)
	walk = func(n *obs.ProfileNode, prefix string, last bool, depth int) {
		label := n.Name
		if depth > 0 {
			branch := "├─ "
			if last {
				branch = "└─ "
			}
			label = prefix + branch + n.Name
		}
		if n.Ref {
			label += " (shown above)"
		}
		rows = append(rows, row{label: label, n: n})
		childPrefix := prefix
		if depth > 0 {
			if last {
				childPrefix += "   "
			} else {
				childPrefix += "│  "
			}
		}
		for i, c := range n.Inputs {
			walk(c, childPrefix, i == len(n.Inputs)-1, depth+1)
		}
	}
	for _, r := range p.Roots {
		walk(r, "", true, 0)
	}

	width := len("operator")
	for _, r := range rows {
		if len(r.label) > width {
			width = len(r.label)
		}
	}
	hasWall := false
	for _, r := range rows {
		if r.n.WallBusyMS > 0 {
			hasWall = true
			break
		}
	}

	fmt.Fprintf(w, "%-*s  %-8s  %3s  %12s  %6s  %10s  %10s  %8s  %10s  %10s",
		width, "operator", "kind", "wkr", "self(s)", "self%", "in", "out", "batches", "bytes", "wait(s)")
	if hasWall {
		fmt.Fprintf(w, "  %10s", "wall(ms)")
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		n := r.n
		if n.Ref {
			// Reference rows repeat no measurements; the subtree above
			// already carries them and double-printing invites
			// double-counting by eye.
			fmt.Fprintf(w, "%-*s  %-8s  %3d\n", width, r.label, n.Kind, n.Workers)
			continue
		}
		pct := 0.0
		if p.Makespan > 0 {
			pct = 100 * n.SelfVirt / p.Makespan
		}
		lin := ""
		if n.LineageHit {
			lin = "  [cache hit]"
		}
		fmt.Fprintf(w, "%-*s  %-8s  %3d  %12.6f  %5.1f%%  %10d  %10d  %8d  %10d  %10.6f",
			width, r.label, n.Kind, n.Workers, n.SelfVirt, pct,
			n.InTuples, n.OutTuples, n.Batches, n.OutBytes, n.QueueWait)
		if hasWall {
			fmt.Fprintf(w, "  %10.3f", n.WallBusyMS)
		}
		fmt.Fprint(w, lin)
		fmt.Fprintln(w)
	}

	var selfSum float64
	seen := make(map[*obs.ProfileNode]bool)
	for _, r := range rows {
		if !r.n.Ref && !seen[r.n] {
			seen[r.n] = true
			selfSum += r.n.SelfVirt
		}
	}
	fmt.Fprintf(w, "\ntotals: operators %.6fs + controller %.6fs + wait %.6fs = %.6fs (makespan %.6fs)\n",
		selfSum, p.ControllerVirt, p.WaitVirt,
		selfSum+p.ControllerVirt+p.WaitVirt, p.Makespan)
	fmt.Fprintf(w, "data: in %d tuples, out %d tuples, %d batches, %d edge bytes\n",
		p.Totals.InTuples, p.Totals.OutTuples, p.Totals.Batches, p.Totals.EdgeBytes)
	k := p.Kernels
	fmt.Fprintf(w, "kernels: columnar %d (project %d, group %d, join %d, encode %d) / row %d (project %d, group %d, join %d, encode %d)\n",
		k.Columnar(), k.ProjectCol, k.GroupCol, k.JoinCol, k.EncodeCol,
		k.Row(), k.ProjectRow, k.GroupRow, k.JoinRow, k.EncodeRow)
	if p.LineageNodes > 0 {
		fmt.Fprintf(w, "lineage: %d of %d nodes served from cache\n", p.LineageHits, p.LineageNodes)
	}
}
