package report

import (
	"fmt"
	"io"

	"repro/internal/experiments"
)

// ScaleCurve renders the E14 scale-out grid: a table of makespan,
// exchange and spill volume per (factor, nodes) cell, and optionally
// an ASCII chart of workflow makespan versus node count, one series
// per dataset factor (the scaling curve is the story).
func ScaleCurve(w io.Writer, rows []experiments.ScaleRow, chart bool) {
	out := [][]string{{
		"factor", "pairs", "nodes", "workers", "script s", "workflow s",
		"shuffle MB", "script shuffle MB", "spill MB", "agree", "stable", "node-loss",
	}}
	series := map[int][]Point{}
	var factors []int
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%dx", r.Factor),
			fmt.Sprintf("%d", r.Pairs),
			fmt.Sprintf("%d", r.Nodes),
			fmt.Sprintf("%d", r.Workers),
			Secs(r.Script), Secs(r.Workflow),
			MB(r.ShuffleBytes), MB(r.ScriptShuffleBytes), MB(r.SpillBytes),
			fmt.Sprint(r.OutputsAgree), fmt.Sprint(r.DigestsStable), fmt.Sprint(r.NodeLossStable),
		})
		if _, ok := series[r.Factor]; !ok {
			factors = append(factors, r.Factor)
		}
		series[r.Factor] = append(series[r.Factor], Point{X: float64(r.Nodes), Y: r.Workflow})
	}
	Table(w, out)
	if chart {
		var ss []Series
		for _, f := range factors {
			ss = append(ss, Series{Name: fmt.Sprintf("%dx", f), Points: series[f]})
		}
		Chart(w, "workflow makespan vs nodes", ss, 48, 10)
	}
}

// MB formats a byte count as megabytes with sensible precision.
func MB(bytes int64) string {
	return fmt.Sprintf("%.2f", float64(bytes)/(1<<20))
}
