package report

import (
	"fmt"
	"io"

	"repro/internal/telemetry"
)

// OperatorTable renders, for each paradigm process in the recorder, the
// top-5 tracks by self (busy) virtual time — the paper's per-operator
// cost breakdown, comparable across the script and workflow runs of
// the same task. Self time is summed from virtual-clock spans, so the
// table is deterministic.
func OperatorTable(w io.Writer, rec *telemetry.Recorder) {
	for _, proc := range rec.Procs() {
		totals := rec.TopSelfTime(proc, 0)
		var busy float64
		for _, t := range totals {
			busy += t.SelfSeconds
		}
		fmt.Fprintf(w, "top operators by self time — %s\n", proc)
		rows := [][]string{{"track", "spans", "self (s)", "share", "tuples"}}
		top := totals
		if len(top) > 5 {
			top = top[:5]
		}
		for _, t := range top {
			share := "-"
			if busy > 0 {
				share = fmt.Sprintf("%.1f%%", 100*t.SelfSeconds/busy)
			}
			rows = append(rows, []string{
				t.Track, fmt.Sprint(t.Spans), Secs(t.SelfSeconds), share, fmt.Sprint(t.Tuples),
			})
		}
		Table(w, rows)
	}
}
