// Package report renders experiment results as ASCII tables and
// simple line charts for the harness output.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table renders rows with aligned columns. The first row is the
// header.
func Table(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, 0)
	for _, r := range rows {
		for i, cell := range r {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(r []string) {
		parts := make([]string, len(widths))
		for i := range widths {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintln(w, "| "+strings.Join(parts, " | ")+" |")
	}
	sep := make([]string, len(widths))
	for i, wd := range widths {
		sep[i] = strings.Repeat("-", wd)
	}
	line(rows[0])
	fmt.Fprintln(w, "|-"+strings.Join(sep, "-|-")+"-|")
	for _, r := range rows[1:] {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Secs formats a simulated-seconds value compactly.
func Secs(v float64) string {
	return fmt.Sprintf("%.2f", v)
}

// Delta formats the relative difference of measured vs. reference as a
// signed percentage, or "-" when there is no reference.
func Delta(measured, reference float64) string {
	if reference == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.0f%%", 100*(measured-reference)/reference)
}

// Series is one named line of a chart.
type Series struct {
	Name   string
	Points []Point
}

// Point is one (x, y) chart value.
type Point struct {
	X float64
	Y float64
}

// Chart renders series as an ASCII line chart of the given size.
// Each series is drawn with its own glyph; overlapping points show the
// later series.
func Chart(w io.Writer, title string, series []Series, width, height int) {
	if width < 16 {
		width = 16
	}
	if height < 5 {
		height = 5
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1)
	count := 0
	for _, s := range series {
		for _, p := range s.Points {
			minX = math.Min(minX, p.X)
			maxX = math.Max(maxX, p.X)
			maxY = math.Max(maxY, p.Y)
			count++
		}
	}
	if count == 0 {
		fmt.Fprintf(w, "%s: (no data)\n", title)
		return
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#'}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for _, p := range s.Points {
			cx := int(math.Round((p.X - minX) / (maxX - minX) * float64(width-1)))
			cy := int(math.Round((p.Y - minY) / (maxY - minY) * float64(height-1)))
			grid[height-1-cy][cx] = g
		}
	}

	fmt.Fprintln(w, title)
	for i, row := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%7.1f ", maxY)
		case height - 1:
			label = fmt.Sprintf("%7.1f ", minY)
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(w, "        +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "         %-10.4g%s%10.4g\n", minX, strings.Repeat(" ", maxInt(0, width-20)), maxX)
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", glyphs[si%len(glyphs)], s.Name))
	}
	fmt.Fprintf(w, "         %s\n", strings.Join(legend, "  "))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Bar renders a horizontal bar chart of labeled values.
func Bar(w io.Writer, title string, labels []string, values []float64, width int) {
	if width < 10 {
		width = 10
	}
	fmt.Fprintln(w, title)
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	for i, v := range values {
		n := int(math.Round(v / maxV * float64(width)))
		fmt.Fprintf(w, "  %s %s %.5g\n", pad(labels[i], maxL), strings.Repeat("#", n), v)
	}
}
