package report

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestRecoveryCurve(t *testing.T) {
	pts := []experiments.RecoveryPoint{
		{Rate: 0, Script: 10, Workflow: 12, ScriptClean: 10, WorkflowClean: 11.5,
			CheckpointSeconds: 0.5, DigestsMatch: true},
		{Rate: 4, Script: 14, Workflow: 13, ScriptClean: 10, WorkflowClean: 11.5,
			ScriptKills: 2, WorkflowKills: 1, CheckpointSeconds: 0.5, DigestsMatch: true},
	}
	var b strings.Builder
	RecoveryCurve(&b, pts, true)
	out := b.String()
	for _, want := range []string{
		"faults/100s", "2/1", "+40%", "DICE makespan vs fault rate",
		"script (lineage replay)", "workflow (checkpoint/restore)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	RecoveryCurve(&b, pts, false)
	if strings.Contains(b.String(), "makespan vs fault rate") {
		t.Fatal("chart rendered with chart=false")
	}
}
