package report

import (
	"fmt"
	"io"

	"repro/internal/experiments"
)

// RecoveryCurve renders the recovery-overhead sweep: a table of
// makespans per fault rate with the overhead relative to the
// failure-free run, and optionally an ASCII chart of makespan versus
// fault rate for both paradigms.
func RecoveryCurve(w io.Writer, points []experiments.RecoveryPoint, chart bool) {
	rows := [][]string{{
		"faults/100s", "script s", "overhead", "workflow s", "overhead",
		"kills (s/w)", "ckpt write s", "digests ok",
	}}
	var sS, sW []Point
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%.4g", p.Rate),
			Secs(p.Script), Delta(p.Script, p.ScriptClean),
			Secs(p.Workflow), Delta(p.Workflow, p.WorkflowClean),
			fmt.Sprintf("%d/%d", p.ScriptKills, p.WorkflowKills),
			fmt.Sprintf("%.4g", p.CheckpointSeconds),
			fmt.Sprint(p.DigestsMatch),
		})
		sS = append(sS, Point{X: p.Rate, Y: p.Script})
		sW = append(sW, Point{X: p.Rate, Y: p.Workflow})
	}
	Table(w, rows)
	if chart {
		Chart(w, "DICE makespan vs fault rate", []Series{
			{Name: "script (lineage replay)", Points: sS},
			{Name: "workflow (checkpoint/restore)", Points: sW},
		}, 48, 10)
	}
}
