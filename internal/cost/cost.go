// Package cost defines the calibrated cost model that converts real
// work performed by the engines (tuples processed, bytes serialized,
// bytes moved, model parameters touched) into simulated seconds.
//
// The experiments in the reproduced paper were run on a 4-node Google
// Cloud cluster; we replace that hardware with this model plus the
// discrete-event simulator in internal/sim. Constants are calibrated so
// headline measurements land near the paper's reported values; the
// reproduction's claim is about the *shape* of each comparison (who
// wins, by what rough factor, where behaviour changes), which emerges
// from the mechanisms below rather than from the constants.
package cost

import (
	"fmt"
	"math"
)

// Language identifies the implementation language of an operator or
// script step. The paper contrasts Python operators against Scala
// operators (Texera's native language) and discusses Java support.
type Language int

const (
	// Python is the baseline language of both paradigms' user code.
	Python Language = iota
	// Scala is Texera's engine language; compiled and substantially
	// faster on interpreter-bound work.
	Scala
	// Java behaves like Scala for costing purposes.
	Java
	// R is accepted for completeness (Aspect #3 discusses R users); it
	// costs like Python.
	R
)

// String returns the language name.
func (l Language) String() string {
	switch l {
	case Python:
		return "Python"
	case Scala:
		return "Scala"
	case Java:
		return "Java"
	case R:
		return "R"
	default:
		return fmt.Sprintf("Language(%d)", int(l))
	}
}

// InterpFactor is the multiplier applied to interpreter-bound CPU work.
// Python is the 1.0 baseline: all per-tuple work constants in the task
// definitions are expressed in Python-seconds.
func (l Language) InterpFactor() float64 {
	switch l {
	case Scala, Java:
		// Compiled JVM code runs interpreter-bound inner loops roughly
		// an order of magnitude faster than CPython. The visible gap in
		// end-to-end workflows is smaller because memory-bound work
		// (hash probes over large tables) does not shrink; see Work.
		return 0.12
	default:
		return 1.0
	}
}

// Work is a language-decomposed amount of CPU time for one unit of
// data, expressed in Python-seconds. Interp scales with the language's
// interpreter factor; Mem is memory/cache-bound and language
// independent — the mechanism behind the paper's Table I observation
// that the Scala advantage fades as the KGE input grows.
type Work struct {
	Interp float64
	Mem    float64
}

// Seconds returns the simulated seconds this work takes in language l
// on a single CPU slot.
func (w Work) Seconds(l Language) float64 {
	return w.Interp*l.InterpFactor() + w.Mem
}

// Scale multiplies both components by k.
func (w Work) Scale(k float64) Work {
	return Work{Interp: w.Interp * k, Mem: w.Mem * k}
}

// Add sums two works componentwise.
func (w Work) Add(o Work) Work {
	return Work{Interp: w.Interp + o.Interp, Mem: w.Mem + o.Mem}
}

// Model holds the platform-level rate constants.
type Model struct {
	// SerdeBytesPerSec is the serialization (or deserialization)
	// throughput at operator boundaries that cross languages or
	// process boundaries. Texera pays this on every edge; the paper's
	// Aspect #4 calls it out as the workflow paradigm's main overhead.
	SerdeBytesPerSec float64

	// NetworkBytesPerSec is the point-to-point bandwidth between
	// cluster nodes, used for shuffles and model broadcast.
	NetworkBytesPerSec float64

	// ObjectStorePutBytesPerSec and ObjectStoreGetBytesPerSec model
	// Ray's shared object store ("plasma"). Large objects such as the
	// 1.59 GB GOTTA model are put once and fetched by each worker; the
	// paper attributes the notebook paradigm's GOTTA slowdown to these
	// accesses.
	ObjectStorePutBytesPerSec float64
	ObjectStoreGetBytesPerSec float64

	// SpillBytesPerSec is the throughput of the object store's disk
	// spill path once its memory cap is exceeded.
	SpillBytesPerSec float64

	// TaskOverhead is the fixed scheduling cost of one Ray task
	// submission (serialize closure, enqueue, dispatch).
	TaskOverhead float64

	// OperatorStartup is the fixed cost of initializing one workflow
	// operator worker (start the Python UDF process, open channels).
	OperatorStartup float64

	// ControlOverhead is the fixed cost of submitting a workflow or a
	// script for execution (compile the DAG / start the kernel).
	ControlOverhead float64

	// CheckpointPutBytesPerSec and CheckpointGetBytesPerSec model the
	// dataflow engine's epoch-checkpoint path: operator state written
	// to replicated storage at batch-boundary epochs, and read back
	// when a restarted worker restores. Writes are slower than the
	// object store (replication), restores read a single copy.
	CheckpointPutBytesPerSec float64
	CheckpointGetBytesPerSec float64

	// TorchCoresTexera and TorchCoresRay give the number of intra-op
	// threads the ML framework may use under each paradigm. The paper's
	// worker-configuration section explains that Ray pins PyTorch to a
	// single CPU (num_cpus=1) while Texera leaves it unconstrained, so
	// forward passes on an 8-vCPU node differ by this ratio.
	TorchCoresTexera int
	TorchCoresRay    int
}

// Default returns the calibrated model used by the experiment harness.
func Default() *Model {
	return &Model{
		SerdeBytesPerSec:          220e6, // ~220 MB/s Arrow-style serde
		NetworkBytesPerSec:        1.2e9, // ~10 Gbit intra-zone GCP
		ObjectStorePutBytesPerSec: 650e6,
		ObjectStoreGetBytesPerSec: 900e6,
		SpillBytesPerSec:          140e6, // HDD-backed spill
		TaskOverhead:              0.004,
		OperatorStartup:           0.35,
		ControlOverhead:           1.2,
		CheckpointPutBytesPerSec:  180e6, // replicated write path
		CheckpointGetBytesPerSec:  420e6, // single-copy restore read
		// Texera leaves PyTorch unconstrained, but a UDF worker shares
		// its 8-vCPU node with the engine's JVM and data channels, so
		// framework kernels see roughly six cores in practice.
		TorchCoresTexera: 6,
		TorchCoresRay:    1,
	}
}

// Digest returns a deterministic FNV-1a hash of every rate constant in
// the model. Lineage fingerprints fold it in so cached artifacts from a
// differently-calibrated model never satisfy a lookup: a recalibration
// is an edit, not a cache hit.
func (m *Model) Digest() uint64 {
	const (
		offset64 = 14695981039346269563
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, f := range []float64{
		m.SerdeBytesPerSec, m.NetworkBytesPerSec,
		m.ObjectStorePutBytesPerSec, m.ObjectStoreGetBytesPerSec,
		m.SpillBytesPerSec, m.TaskOverhead, m.OperatorStartup,
		m.ControlOverhead, m.CheckpointPutBytesPerSec, m.CheckpointGetBytesPerSec,
	} {
		mix(math.Float64bits(f))
	}
	mix(uint64(m.TorchCoresTexera))
	mix(uint64(m.TorchCoresRay))
	return h
}

// Validate reports an error if any rate is non-positive.
func (m *Model) Validate() error {
	checks := []struct {
		name string
		v    float64
	}{
		{"SerdeBytesPerSec", m.SerdeBytesPerSec},
		{"NetworkBytesPerSec", m.NetworkBytesPerSec},
		{"ObjectStorePutBytesPerSec", m.ObjectStorePutBytesPerSec},
		{"ObjectStoreGetBytesPerSec", m.ObjectStoreGetBytesPerSec},
		{"SpillBytesPerSec", m.SpillBytesPerSec},
		{"CheckpointPutBytesPerSec", m.CheckpointPutBytesPerSec},
		{"CheckpointGetBytesPerSec", m.CheckpointGetBytesPerSec},
	}
	for _, c := range checks {
		if c.v <= 0 {
			return fmt.Errorf("cost: %s must be positive, got %g", c.name, c.v)
		}
	}
	if m.TaskOverhead < 0 || m.OperatorStartup < 0 || m.ControlOverhead < 0 {
		return fmt.Errorf("cost: overheads must be non-negative")
	}
	if m.TorchCoresTexera <= 0 || m.TorchCoresRay <= 0 {
		return fmt.Errorf("cost: torch core counts must be positive")
	}
	return nil
}

// SerdeSeconds returns the time to serialize (or deserialize) n bytes.
func (m *Model) SerdeSeconds(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / m.SerdeBytesPerSec
}

// TransferSeconds returns the time to move n bytes across the network.
func (m *Model) TransferSeconds(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / m.NetworkBytesPerSec
}

// ShuffleSeconds prices an exchange operator's cross-node traffic: n
// bytes leaving their producing node over the NIC. It reuses the
// network rate (no new model field, so lineage fingerprints are
// unchanged); the name exists so shuffle cost is attributable at call
// sites and recalibratable in one place if shuffles ever diverge from
// point-to-point transfers.
func (m *Model) ShuffleSeconds(crossBytes int64) float64 {
	return m.TransferSeconds(crossBytes)
}

// EdgeCostSeconds prices one workflow edge carrying n bytes between
// two operators: serialize at the producer, deserialize at the
// consumer, and (at worst) one network hop in between. The plan
// optimizer uses it to compare rewrites — it reuses existing rates, so
// model digests (and therefore lineage fingerprints) are unchanged.
func (m *Model) EdgeCostSeconds(bytes int64) float64 {
	return 2*m.SerdeSeconds(bytes) + m.TransferSeconds(bytes)
}

// PutSeconds returns the time to store n bytes in the object store.
// spilled indicates the object exceeded the store's memory budget and
// took the disk path.
func (m *Model) PutSeconds(bytes int64, spilled bool) float64 {
	if bytes <= 0 {
		return 0
	}
	rate := m.ObjectStorePutBytesPerSec
	if spilled {
		rate = m.SpillBytesPerSec
	}
	return float64(bytes) / rate
}

// GetSeconds returns the time to fetch n bytes from the object store.
func (m *Model) GetSeconds(bytes int64, spilled bool) float64 {
	if bytes <= 0 {
		return 0
	}
	rate := m.ObjectStoreGetBytesPerSec
	if spilled {
		rate = m.SpillBytesPerSec
	}
	return float64(bytes) / rate
}

// CheckpointPutSeconds returns the time to write n bytes of operator
// state to the checkpoint store.
func (m *Model) CheckpointPutSeconds(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / m.CheckpointPutBytesPerSec
}

// CheckpointGetSeconds returns the time to read n bytes of checkpoint
// state back during recovery.
func (m *Model) CheckpointGetSeconds(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / m.CheckpointGetBytesPerSec
}

// TorchSpeedup returns the effective parallel speedup of a framework
// forward/backward pass allowed to use cores threads, following a
// diminishing-returns curve (Amdahl with a 12% serial fraction, which
// matches typical CPU-inference scaling).
func TorchSpeedup(cores int) float64 {
	if cores <= 1 {
		return 1
	}
	const serial = 0.12
	return 1 / (serial + (1-serial)/float64(cores))
}
