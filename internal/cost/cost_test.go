package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadRates(t *testing.T) {
	m := Default()
	m.SerdeBytesPerSec = 0
	if err := m.Validate(); err == nil {
		t.Fatal("expected error for zero serde rate")
	}
	m = Default()
	m.TaskOverhead = -1
	if err := m.Validate(); err == nil {
		t.Fatal("expected error for negative overhead")
	}
	m = Default()
	m.TorchCoresRay = 0
	if err := m.Validate(); err == nil {
		t.Fatal("expected error for zero torch cores")
	}
}

func TestLanguageFactors(t *testing.T) {
	if Python.InterpFactor() != 1.0 {
		t.Fatalf("Python factor = %v, want 1.0", Python.InterpFactor())
	}
	if f := Scala.InterpFactor(); f >= 1.0 || f <= 0 {
		t.Fatalf("Scala factor = %v, want in (0,1)", f)
	}
	if Scala.InterpFactor() != Java.InterpFactor() {
		t.Fatal("Scala and Java should cost identically")
	}
	if R.InterpFactor() != 1.0 {
		t.Fatal("R should cost like Python")
	}
}

func TestLanguageStrings(t *testing.T) {
	for l, want := range map[Language]string{Python: "Python", Scala: "Scala", Java: "Java", R: "R"} {
		if l.String() != want {
			t.Fatalf("String() = %q, want %q", l.String(), want)
		}
	}
	if got := Language(99).String(); got != "Language(99)" {
		t.Fatalf("unknown language String() = %q", got)
	}
}

func TestWorkSeconds(t *testing.T) {
	w := Work{Interp: 10, Mem: 5}
	py := w.Seconds(Python)
	sc := w.Seconds(Scala)
	if py != 15 {
		t.Fatalf("Python seconds = %v, want 15", py)
	}
	if sc >= py {
		t.Fatalf("Scala (%v) should beat Python (%v) on interp-heavy work", sc, py)
	}
	if sc <= 5 {
		t.Fatalf("Scala (%v) cannot beat the memory-bound floor of 5", sc)
	}
}

func TestWorkMemBoundConvergence(t *testing.T) {
	// As Mem dominates, the Python/Scala gap must vanish — the Table I
	// mechanism.
	small := Work{Interp: 1, Mem: 0.1}
	large := Work{Interp: 1, Mem: 50}
	gapSmall := small.Seconds(Python) / small.Seconds(Scala)
	gapLarge := large.Seconds(Python) / large.Seconds(Scala)
	if gapSmall <= gapLarge {
		t.Fatalf("gap should shrink with memory-bound work: small=%v large=%v", gapSmall, gapLarge)
	}
	if gapLarge > 1.05 {
		t.Fatalf("memory-dominated gap = %v, want near 1", gapLarge)
	}
}

func TestWorkScaleAdd(t *testing.T) {
	w := Work{Interp: 2, Mem: 3}.Scale(2).Add(Work{Interp: 1, Mem: 1})
	if w.Interp != 5 || w.Mem != 7 {
		t.Fatalf("got %+v", w)
	}
}

func TestRatesLinear(t *testing.T) {
	m := Default()
	f := func(kb uint16) bool {
		b := int64(kb) * 1024
		ok := true
		ok = ok && math.Abs(m.SerdeSeconds(2*b)-2*m.SerdeSeconds(b)) < 1e-9
		ok = ok && math.Abs(m.TransferSeconds(2*b)-2*m.TransferSeconds(b)) < 1e-9
		ok = ok && math.Abs(m.PutSeconds(2*b, false)-2*m.PutSeconds(b, false)) < 1e-9
		ok = ok && math.Abs(m.GetSeconds(2*b, true)-2*m.GetSeconds(b, true)) < 1e-9
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroAndNegativeBytesAreFree(t *testing.T) {
	m := Default()
	for _, b := range []int64{0, -10} {
		if m.SerdeSeconds(b) != 0 || m.TransferSeconds(b) != 0 ||
			m.PutSeconds(b, false) != 0 || m.GetSeconds(b, false) != 0 {
			t.Fatalf("bytes=%d should cost nothing", b)
		}
	}
}

func TestSpillSlowerThanMemory(t *testing.T) {
	m := Default()
	b := int64(1 << 30)
	if m.PutSeconds(b, true) <= m.PutSeconds(b, false) {
		t.Fatal("spilled put should be slower than in-memory put")
	}
	if m.GetSeconds(b, true) <= m.GetSeconds(b, false) {
		t.Fatal("spilled get should be slower than in-memory get")
	}
}

func TestTorchSpeedup(t *testing.T) {
	if TorchSpeedup(1) != 1 {
		t.Fatal("1 core must give speedup 1")
	}
	if TorchSpeedup(0) != 1 {
		t.Fatal("0 cores clamps to 1")
	}
	s8 := TorchSpeedup(8)
	if s8 <= 3 || s8 >= 8 {
		t.Fatalf("8-core speedup = %v, want sublinear in (3,8)", s8)
	}
	if TorchSpeedup(4) >= s8 {
		t.Fatal("speedup must increase with cores")
	}
}
