package faults

import (
	"math"
	"testing"
)

func TestZeroPlanIsDisabled(t *testing.T) {
	var p Plan
	if p.Enabled() || p.Injecting() {
		t.Fatalf("zero plan must be disabled: enabled=%v injecting=%v", p.Enabled(), p.Injecting())
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("zero plan must validate: %v", err)
	}
	if evs := p.Events(1000); evs != nil {
		t.Fatalf("zero plan produced %d events", len(evs))
	}
}

func TestEventsDeterministic(t *testing.T) {
	p := Plan{Seed: 42, Rate: 5, NodeFraction: 0.3}
	a, b := p.Events(500), p.Events(500)
	if len(a) == 0 {
		t.Fatalf("expected events over a 500s horizon at rate 5/100s")
	}
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed must give a different stream.
	c := Plan{Seed: 43, Rate: 5, NodeFraction: 0.3}.Events(500)
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("seeds 42 and 43 produced identical event streams")
		}
	}
}

func TestEventsRespectHorizonAndCap(t *testing.T) {
	p := Plan{Seed: 7, Rate: 20}
	for _, e := range p.Events(100) {
		if e.At < 0 || e.At >= 100 {
			t.Fatalf("event at %g outside [0, 100)", e.At)
		}
	}
	p.MaxFaults = 3
	if got := len(p.Events(1e6)); got != 3 {
		t.Fatalf("MaxFaults=3 produced %d events", got)
	}
}

func TestEventsMatchRateRoughly(t *testing.T) {
	p := Plan{Seed: 11, Rate: 10} // expect ~100 over 1000s
	n := len(p.Events(1000))
	if n < 60 || n > 150 {
		t.Fatalf("rate 10/100s over 1000s gave %d events, want ~100", n)
	}
}

func TestBackoffCapped(t *testing.T) {
	var p Plan // defaults: base 0.5, cap 8
	want := []float64{0.5, 1, 2, 4, 8, 8, 8}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Fatalf("Backoff(%d) = %g, want %g", i+1, got, w)
		}
	}
	custom := Plan{BackoffBase: 0.1, BackoffCap: 0.25}
	if got := custom.Backoff(3); got != 0.25 {
		t.Fatalf("custom Backoff(3) = %g, want cap 0.25", got)
	}
}

func TestValidateRejectsBadFields(t *testing.T) {
	bad := []Plan{
		{Rate: -1},
		{Rate: math.Inf(1)},
		{NodeFraction: 1.5},
		{NodeFraction: -0.1},
		{MaxFaults: -1},
		{CheckpointEvery: -2},
		{BackoffBase: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d (%+v) validated but should not", i, p)
		}
	}
	if err := (Plan{Seed: 1, Rate: 3, NodeFraction: 0.5, CheckpointEvery: 8}).Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}
