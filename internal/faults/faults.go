// Package faults defines deterministic fault plans for the simulated
// cluster. A Plan is seeded configuration, not state: expanding it
// against a schedule horizon yields a reproducible sequence of fault
// events on the sim virtual clock — task kills and node losses — that
// the two execution paradigms recover from in their own idiom (lineage
// re-execution with backoff for the Ray-style backend, checkpoint and
// restore for the dataflow engine).
//
// Faults act on the *schedule*, never on the data path: both engines
// compute their results in-process and deterministically, so a run
// under any fault plan produces output bit-identical to the
// failure-free run — only the simulated timeline (and the recovery
// work it contains) changes. The golden fault tests assert exactly
// that.
package faults

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// Kind classifies a fault event.
type Kind int

const (
	// KillTask kills one running task (script paradigm) or operator
	// worker (workflow paradigm); in-memory state of that attempt is
	// lost, everything else survives.
	KillTask Kind = iota
	// KillNode is a node-level fault: the killed work additionally
	// loses its node's object-store copies, so recovery pays
	// reconstruction on top of re-execution.
	KillNode
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KillTask:
		return "kill-task"
	case KillNode:
		return "kill-node"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one scheduled fault on the virtual clock.
type Event struct {
	// At is the virtual time the fault strikes.
	At float64
	// Kind distinguishes task kills from node losses.
	Kind Kind
	// Salt deterministically selects the victim among whatever happens
	// to be running when the fault strikes.
	Salt uint64
}

// VictimNode deterministically picks which of nodes cluster nodes a
// KillNode event takes down — the whole-node-loss plane of the sharded
// tier. The choice is a pure function of the event's salt, so the same
// plan kills the same node on every run; recovery re-shards that node's
// datum range across the survivors.
func (e Event) VictimNode(nodes int) int {
	if nodes <= 1 {
		return 0
	}
	return int(e.Salt % uint64(nodes))
}

// Plan is a deterministic fault environment: how often faults strike,
// what fraction are node-level, and how recovery is configured. The
// zero value is fully disabled and adds exactly zero cost to a run.
type Plan struct {
	// Seed derives the event stream. Two runs with equal plans see
	// identical fault sequences.
	Seed uint64
	// Rate is the expected number of faults per 100 simulated seconds;
	// 0 disables injection.
	Rate float64
	// NodeFraction is the probability a fault is node-level (KillNode)
	// rather than a single task kill. Must be in [0, 1].
	NodeFraction float64
	// MaxFaults caps the number of generated events; 0 means no cap
	// beyond the horizon.
	MaxFaults int

	// CheckpointEvery is the dataflow engine's checkpoint epoch length
	// in batches per operator; 0 uses the engine default when the plan
	// is armed. Setting it with Rate == 0 arms checkpointing alone,
	// which is how the recovery experiment measures the pure
	// checkpoint-write tax.
	CheckpointEvery int

	// BackoffBase and BackoffCap configure the script paradigm's capped
	// exponential retry backoff in seconds; zero values use the
	// defaults (0.5s base, 8s cap).
	BackoffBase float64
	BackoffCap  float64
}

// Default backoff constants, mirroring Ray's task-retry defaults in
// spirit: quick first retry, bounded worst case.
const (
	DefaultBackoffBase = 0.5
	DefaultBackoffCap  = 8.0
)

// Enabled reports whether the plan changes anything at all: either
// faults are injected or checkpointing is armed.
func (p Plan) Enabled() bool { return p.Rate > 0 || p.CheckpointEvery > 0 }

// Injecting reports whether the plan generates fault events.
func (p Plan) Injecting() bool { return p.Rate > 0 }

// Validate reports an error for out-of-range fields.
func (p Plan) Validate() error {
	if p.Rate < 0 || math.IsNaN(p.Rate) || math.IsInf(p.Rate, 0) {
		return fmt.Errorf("faults: rate must be a finite non-negative number, got %g", p.Rate)
	}
	if p.NodeFraction < 0 || p.NodeFraction > 1 || math.IsNaN(p.NodeFraction) {
		return fmt.Errorf("faults: node fraction must be in [0, 1], got %g", p.NodeFraction)
	}
	if p.MaxFaults < 0 {
		return fmt.Errorf("faults: negative max faults %d", p.MaxFaults)
	}
	if p.CheckpointEvery < 0 {
		return fmt.Errorf("faults: negative checkpoint epoch %d", p.CheckpointEvery)
	}
	if p.BackoffBase < 0 || p.BackoffCap < 0 {
		return fmt.Errorf("faults: negative backoff (base %g, cap %g)", p.BackoffBase, p.BackoffCap)
	}
	return nil
}

// Events expands the plan into its fault sequence over [0, horizon):
// a Poisson process with exponential inter-arrival times drawn from
// the plan's own SplitMix64 stream. The expansion is a pure function
// of (plan, horizon), which is what makes fault runs reproducible.
func (p Plan) Events(horizon float64) []Event {
	if !p.Injecting() || horizon <= 0 {
		return nil
	}
	rng := xrand.New(p.Seed ^ 0x6661756c74730a01) // domain-separate from data seeds
	mean := 100 / p.Rate
	var out []Event
	t := 0.0
	for {
		u := rng.Float64()
		for u == 0 { // guard log(0)
			u = rng.Float64()
		}
		t += -mean * math.Log(u)
		if t >= horizon {
			return out
		}
		kind := KillTask
		if rng.Float64() < p.NodeFraction {
			kind = KillNode
		}
		out = append(out, Event{At: t, Kind: kind, Salt: rng.Uint64()})
		if p.MaxFaults > 0 && len(out) >= p.MaxFaults {
			return out
		}
	}
}

// Backoff returns the delay before the retry-th re-execution
// (1-based): capped exponential growth from the plan's base.
func (p Plan) Backoff(retry int) float64 {
	base, cap := p.BackoffBase, p.BackoffCap
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if cap <= 0 {
		cap = DefaultBackoffCap
	}
	if retry < 1 {
		retry = 1
	}
	d := base * math.Pow(2, float64(retry-1))
	if d > cap {
		return cap
	}
	return d
}
