package core

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/lineage"
	"repro/internal/telemetry"
)

// SpecVersion is the current RunSpec wire version. Specs with an empty
// APIVersion are treated as current; unknown versions are rejected so a
// future v2 can change field semantics without silent misreads.
const SpecVersion = "v1"

// DefaultTenant is the tenant runs belong to when the spec names none.
const DefaultTenant = "default"

// RunSpec is the unified, serializable request shape for one task run:
// the single decode target of POST /v1/runs, the CLI's run mode, the
// traffic generator and the experiment drivers. It is deliberately
// plain data — every knob is a scalar field — and converts into the
// internal RunConfig (live objects: cost model, recorder, stores) via
// Config. RunConfig stays the normalized compiled form; RunSpec is the
// wire form in front of it.
type RunSpec struct {
	// APIVersion is the spec version ("v1"); empty means current.
	APIVersion string `json:"api_version,omitempty"`
	// Task names a registered task (dice, wef, gotta, kge).
	Task string `json:"task"`
	// Paradigm is "script", "workflow" or "both" (the default).
	Paradigm string `json:"paradigm,omitempty"`
	// Size is the input size; <= 0 uses the task's paper-scale default.
	Size int `json:"size,omitempty"`
	// Seed is the dataset seed; 0 means 1.
	Seed uint64 `json:"seed,omitempty"`
	// Workers is the parallelism knob; 0 means 1. Bounded by the
	// configured cluster's worker vCPUs (ErrTooManyWorkers beyond it).
	Workers int `json:"workers,omitempty"`
	// Nodes selects the cluster tier: <= 1 is the legacy paper cluster
	// (32-vCPU ceiling), > 1 datum-shards the run across that many
	// paper-shaped nodes and lifts the ceiling to nodes × 8 vCPUs.
	Nodes int `json:"nodes,omitempty"`
	// ShardMem overrides the sharded tier's per-worker memory budget in
	// bytes before spill; 0 keeps the node-shape default.
	ShardMem int64 `json:"shard_mem,omitempty"`

	// Tenant attributes the run for fair-share scheduling and
	// accounting; empty means DefaultTenant. One-shot runs ignore it.
	Tenant string `json:"tenant,omitempty"`
	// Priority orders runs within a tenant's queue: higher first,
	// FIFO among equals. It never lets one tenant preempt another.
	Priority int `json:"priority,omitempty"`

	// FaultRate arms deterministic fault injection, in kills per 100
	// simulated seconds; 0 leaves the plan inert.
	FaultRate float64 `json:"fault_rate,omitempty"`
	// FaultSeed seeds the fault event stream; 0 reuses Seed.
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// NodeFraction is the probability a fault is node-level; only
	// meaningful with FaultRate > 0.
	NodeFraction float64 `json:"node_fraction,omitempty"`
	// CheckpointEvery sets the workflow checkpoint epoch length in
	// batches; > 0 arms checkpointing even at FaultRate 0.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`

	// Optimize runs the cost-based plan optimizer over each workflow
	// plan before execution; outputs are bit-identical either way, so it
	// is purely a performance knob. Scripts ignore it.
	Optimize bool `json:"optimize,omitempty"`

	// Lineage arms a fresh versioned artifact store for the run. For a
	// store that persists across runs, attach one via extra options in
	// Config instead.
	Lineage bool `json:"lineage,omitempty"`
	// Telemetry requests span/metric collection. The recorder itself is
	// a live object, so servers attach theirs via extra options; when
	// none is supplied, Config creates a run-private recorder.
	Telemetry bool `json:"telemetry,omitempty"`
}

// Normalize fills defaults and validates every field that can be
// checked without the task registry (NewTask reports unknown tasks).
func (s RunSpec) Normalize() (RunSpec, error) {
	switch s.APIVersion {
	case "", SpecVersion:
		s.APIVersion = SpecVersion
	default:
		return s, fmt.Errorf("core: unsupported spec version %q (have %s)", s.APIVersion, SpecVersion)
	}
	if s.Task == "" {
		return s, fmt.Errorf("core: spec names no task")
	}
	if s.Paradigm == "" {
		s.Paradigm = "both"
	}
	switch s.Paradigm {
	case "script", "workflow", "both":
	default:
		return s, fmt.Errorf("core: unknown paradigm %q (want script, workflow or both)", s.Paradigm)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Workers == 0 {
		s.Workers = 1
	}
	if s.Tenant == "" {
		s.Tenant = DefaultTenant
	}
	if s.FaultSeed == 0 {
		s.FaultSeed = s.Seed
	}
	// Worker bounds (against the spec's own topology) and fault-plan
	// sanity are RunConfig.Normalize's rules; running them here means a
	// bad spec is rejected at the API edge instead of after queueing.
	if _, err := (RunConfig{Workers: s.Workers, Nodes: s.Nodes, ShardMemBytes: s.ShardMem}).Normalize(); err != nil {
		return s, err
	}
	if err := s.faultPlan().Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// faultPlan builds the spec's fault plan; the zero plan when inert.
func (s RunSpec) faultPlan() faults.Plan {
	if s.FaultRate <= 0 && s.CheckpointEvery <= 0 {
		return faults.Plan{}
	}
	return faults.Plan{
		Seed:            s.FaultSeed,
		Rate:            s.FaultRate,
		NodeFraction:    s.NodeFraction,
		CheckpointEvery: s.CheckpointEvery,
	}
}

// Paradigms lists the paradigms the spec asks for, in run order.
func (s RunSpec) Paradigms() []Paradigm {
	switch s.Paradigm {
	case "script":
		return []Paradigm{Script}
	case "workflow":
		return []Paradigm{Workflow}
	default:
		return []Paradigm{Script, Workflow}
	}
}

// Config converts the normalized spec into a RunConfig. extra options
// are applied after the spec's own, so servers can attach live objects
// (a shared telemetry recorder, a progress sink, a persistent lineage
// store) or override knobs the spec set.
func (s RunSpec) Config(extra ...Option) (RunConfig, error) {
	s, err := s.Normalize()
	if err != nil {
		return RunConfig{}, err
	}
	opts := []Option{WithWorkers(s.Workers)}
	if s.Optimize {
		opts = append(opts, WithOptimize(true))
	}
	if s.Nodes > 1 {
		opts = append(opts, WithNodes(s.Nodes))
		if s.ShardMem > 0 {
			opts = append(opts, WithShardMem(s.ShardMem))
		}
	}
	if plan := s.faultPlan(); plan.Rate > 0 || plan.CheckpointEvery > 0 {
		opts = append(opts, WithFaults(plan))
	}
	if s.Lineage {
		store, err := lineage.NewStore(nil, 0)
		if err != nil {
			return RunConfig{}, err
		}
		opts = append(opts, WithLineage(store))
	}
	if s.Telemetry {
		opts = append(opts, WithTelemetry(telemetry.New()))
	}
	opts = append(opts, extra...)
	return NewRunConfig(opts...)
}

// NewTask resolves the spec's task through the registry at the spec's
// size and seed.
func (s RunSpec) NewTask() (Task, error) {
	s, err := s.Normalize()
	if err != nil {
		return nil, err
	}
	return NewTask(s.Task, s.Size, s.Seed)
}
