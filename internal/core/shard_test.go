package core

import (
	"errors"
	"strings"
	"testing"
)

// The sharded tier lifts the 32-vCPU ceiling: nodes × 8 workers are
// admitted once Nodes > 1, and the limit error names whatever ceiling
// the configured topology actually has.
func TestShardedTierLiftsWorkerCeiling(t *testing.T) {
	if _, err := NewRunConfig(WithWorkers(64), WithNodes(8)); err != nil {
		t.Fatalf("64 workers rejected on an 8-node cluster: %v", err)
	}
	_, err := NewRunConfig(WithWorkers(65), WithNodes(8))
	var tooMany *ErrTooManyWorkers
	if !errors.As(err, &tooMany) {
		t.Fatalf("want ErrTooManyWorkers, got %v", err)
	}
	if tooMany.Limit != 64 {
		t.Fatalf("limit = %d, want the 8-node ceiling 64", tooMany.Limit)
	}
	if !strings.Contains(err.Error(), "64") {
		t.Fatalf("error does not name the configured limit: %v", err)
	}
	if _, err := NewRunConfig(WithNodes(-1)); err == nil {
		t.Fatal("negative node count accepted")
	}
	if _, err := NewRunConfig(WithShardMem(-1)); err == nil {
		t.Fatal("negative shard memory accepted")
	}
}

func TestRunSpecNodesRoundTrip(t *testing.T) {
	spec, err := RunSpec{Task: "dice", Workers: 48, Nodes: 8, ShardMem: 1 << 20}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	topo := cfg.Topology()
	if !topo.Sharded() || topo.NumNodes() != 8 {
		t.Fatalf("spec nodes did not reach the topology: %+v", topo)
	}
	if topo.WorkerMem() != 1<<20 {
		t.Fatalf("spec shard_mem did not reach the topology: %d", topo.WorkerMem())
	}
	// Beyond the legacy ceiling without nodes: rejected at the wire.
	if _, err := (RunSpec{Task: "dice", Workers: 48}).Normalize(); err == nil {
		t.Fatal("48 workers accepted without a sharded topology")
	}
}
