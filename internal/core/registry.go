package core

import (
	"fmt"
	"sort"
	"sync"
)

// TaskFactory builds one task instance at a given input size and data
// seed.
type TaskFactory func(size int, seed uint64) (Task, error)

type registryEntry struct {
	factory     TaskFactory
	defaultSize int
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]registryEntry)
)

// RegisterTask adds a named task constructor with its paper-scale
// default input size. Task packages call it from init, so importing a
// task package is what makes it runnable by name — the harness and CLI
// resolve tasks through this table instead of switch-casing. Duplicate
// names and nil factories panic: both are wiring bugs.
func RegisterTask(name string, defaultSize int, factory TaskFactory) {
	if name == "" || factory == nil {
		panic("core: RegisterTask needs a name and a factory")
	}
	if defaultSize <= 0 {
		panic(fmt.Sprintf("core: task %q registered with default size %d", name, defaultSize))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("core: task %q registered twice", name))
	}
	registry[name] = registryEntry{factory: factory, defaultSize: defaultSize}
}

// NewTask builds a registered task. size <= 0 uses the task's default.
func NewTask(name string, size int, seed uint64) (Task, error) {
	registryMu.RLock()
	e, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown task %q (have %v)", name, TaskNames())
	}
	if size <= 0 {
		size = e.defaultSize
	}
	return e.factory(size, seed)
}

// TaskNames lists the registered task names, sorted.
func TaskNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// TaskDefaultSize returns a registered task's paper-scale input size.
func TaskDefaultSize(name string) (int, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	e, ok := registry[name]
	if !ok {
		return 0, fmt.Errorf("core: unknown task %q", name)
	}
	return e.defaultSize, nil
}
