package core

import (
	"errors"
	"testing"

	"repro/internal/cost"
	"repro/internal/relation"
)

func TestParadigmString(t *testing.T) {
	if Script.String() != "script" || Workflow.String() != "workflow" {
		t.Fatal("paradigm names wrong")
	}
	if Paradigm(9).String() != "Paradigm(9)" {
		t.Fatal("unknown paradigm name wrong")
	}
}

func TestRunConfigNormalize(t *testing.T) {
	cfg, err := RunConfig{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Model == nil || cfg.Workers != 1 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if _, err := (RunConfig{Workers: -1}).Normalize(); err == nil {
		t.Fatal("expected error for negative workers")
	}
	bad := cost.Default()
	bad.SerdeBytesPerSec = -1
	if _, err := (RunConfig{Model: bad}).Normalize(); err == nil {
		t.Fatal("expected error for invalid model")
	}
}

// fakeTask lets RunBoth be tested without a real workload.
type fakeTask struct {
	fail Paradigm
	ok   bool
}

func (f *fakeTask) Name() string { return "fake" }
func (f *fakeTask) Run(p Paradigm, cfg RunConfig) (*Result, error) {
	if f.ok && p == f.fail {
		return nil, errors.New("boom")
	}
	return &Result{Task: "fake", Paradigm: p, SimSeconds: 1 + float64(p)}, nil
}

func TestRunBoth(t *testing.T) {
	s, w, err := RunBoth(&fakeTask{}, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Paradigm != Script || w.Paradigm != Workflow {
		t.Fatal("paradigms mixed up")
	}
}

func TestRunBothPropagatesErrors(t *testing.T) {
	if _, _, err := RunBoth(&fakeTask{ok: true, fail: Script}, RunConfig{}); err == nil {
		t.Fatal("expected script error")
	}
	if _, _, err := RunBoth(&fakeTask{ok: true, fail: Workflow}, RunConfig{}); err == nil {
		t.Fatal("expected workflow error")
	}
}

func TestSpeedupOver(t *testing.T) {
	a := &Result{SimSeconds: 50}
	b := &Result{SimSeconds: 100}
	if a.SpeedupOver(b) != 2 {
		t.Fatalf("speedup = %v", a.SpeedupOver(b))
	}
	zero := &Result{}
	if zero.SpeedupOver(b) != 0 {
		t.Fatal("zero-time result should report 0 speedup")
	}
}

func TestResultFieldsUsable(t *testing.T) {
	s := relation.MustSchema(relation.Field{Name: "x", Type: relation.Int})
	tbl := relation.NewTable(s)
	tbl.MustAppend(relation.Tuple{int64(1)})
	r := &Result{Output: tbl, Quality: map[string]float64{"f1": 0.9}}
	if r.Output.Len() != 1 || r.Quality["f1"] != 0.9 {
		t.Fatal("result plumbing broken")
	}
}
