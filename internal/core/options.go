package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/faults"
	"repro/internal/lineage"
	"repro/internal/telemetry"
)

// Option mutates a RunConfig under construction. RunConfig remains the
// normalized compiled form — options are the ergonomic front door, and
// NewRunConfig validates the combination once instead of every caller
// re-checking fields.
type Option func(*RunConfig)

// WithModel sets the cost model; nil keeps cost.Default().
func WithModel(m *cost.Model) Option {
	return func(c *RunConfig) { c.Model = m }
}

// WithWorkers sets the parallelism knob (per-operator workers for the
// workflow paradigm, Ray num_cpus for scripts).
func WithWorkers(n int) Option {
	return func(c *RunConfig) { c.Workers = n }
}

// WithNodes selects the cluster tier: n <= 1 is the legacy paper
// cluster, n > 1 datum-shards the run across n paper-shaped nodes,
// raising the worker ceiling to n × 8 vCPUs with NIC-priced exchanges
// and spill-to-disk for larger-than-memory operators.
func WithNodes(n int) Option {
	return func(c *RunConfig) { c.Nodes = n }
}

// WithShardMem overrides the sharded tier's per-worker state budget in
// bytes before blocking operators spill; 0 keeps the node-shape
// default. Ignored on the legacy tier.
func WithShardMem(bytes int64) Option {
	return func(c *RunConfig) { c.ShardMemBytes = bytes }
}

// WithTelemetry attaches a recorder to the run.
func WithTelemetry(rec *telemetry.Recorder) Option {
	return func(c *RunConfig) { c.Telemetry = rec }
}

// WithFaults arms a deterministic fault plan.
func WithFaults(plan faults.Plan) Option {
	return func(c *RunConfig) { c.Faults = plan }
}

// WithLineage attaches a versioned artifact store, arming incremental
// re-execution. Pass the same store across successive runs of a task to
// model the edit-and-rerun loop.
func WithLineage(s *lineage.Store) Option {
	return func(c *RunConfig) { c.Lineage = s }
}

// WithProgress attaches a live progress sink (typically an obs run
// registry handle); engines publish per-operator events into it while
// the run executes.
func WithProgress(sink ProgressSink) Option {
	return func(c *RunConfig) { c.Progress = sink }
}

// WithOptimize toggles the cost-based plan optimizer for workflow runs.
func WithOptimize(on bool) Option {
	return func(c *RunConfig) { c.Optimize = on }
}

// NewRunConfig builds and normalizes a RunConfig from options.
func NewRunConfig(opts ...Option) (RunConfig, error) {
	var c RunConfig
	for _, opt := range opts {
		opt(&c)
	}
	return c.Normalize()
}

// MustRunConfig is NewRunConfig for statically-known option sets;
// it panics on invalid combinations.
func MustRunConfig(opts ...Option) RunConfig {
	c, err := NewRunConfig(opts...)
	if err != nil {
		panic(fmt.Sprintf("core: invalid run config: %v", err))
	}
	return c
}

// With returns a copy of c with the options applied and re-normalized
// — the idiom for deriving a variant (more workers, a fault plan) from
// a base config.
func (c RunConfig) With(opts ...Option) (RunConfig, error) {
	for _, opt := range opts {
		opt(&c)
	}
	return c.Normalize()
}
