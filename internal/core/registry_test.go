package core

import (
	"testing"
)

type regTask struct{ name string }

func (f *regTask) Name() string                             { return f.name }
func (f *regTask) Run(Paradigm, RunConfig) (*Result, error) { return &Result{Task: f.name}, nil }

func TestRegistryRoundTrip(t *testing.T) {
	var gotSize int
	var gotSeed uint64
	RegisterTask("fake-rt", 42, func(size int, seed uint64) (Task, error) {
		gotSize, gotSeed = size, seed
		return &regTask{name: "fake-rt"}, nil
	})
	task, err := NewTask("fake-rt", 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if task.Name() != "fake-rt" || gotSize != 42 || gotSeed != 7 {
		t.Fatalf("factory saw size=%d seed=%d", gotSize, gotSeed)
	}
	if _, err := NewTask("fake-rt", 5, 1); err != nil {
		t.Fatal(err)
	}
	if gotSize != 5 {
		t.Fatalf("explicit size ignored: %d", gotSize)
	}
	if size, err := TaskDefaultSize("fake-rt"); err != nil || size != 42 {
		t.Fatalf("default size = %d, %v", size, err)
	}
	found := false
	for _, name := range TaskNames() {
		if name == "fake-rt" {
			found = true
		}
	}
	if !found {
		t.Fatalf("fake-rt missing from %v", TaskNames())
	}
}

func TestRegistryUnknownTask(t *testing.T) {
	if _, err := NewTask("no-such-task", 0, 0); err == nil {
		t.Fatal("unknown task accepted")
	}
	if _, err := TaskDefaultSize("no-such-task"); err == nil {
		t.Fatal("unknown task accepted")
	}
}

func TestRegistryRejectsDuplicatesAndBadEntries(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	RegisterTask("fake-dup", 1, func(int, uint64) (Task, error) { return &regTask{}, nil })
	mustPanic("duplicate", func() {
		RegisterTask("fake-dup", 1, func(int, uint64) (Task, error) { return &regTask{}, nil })
	})
	mustPanic("nil factory", func() { RegisterTask("fake-nil", 1, nil) })
	mustPanic("bad size", func() {
		RegisterTask("fake-size", 0, func(int, uint64) (Task, error) { return &regTask{}, nil })
	})
}
