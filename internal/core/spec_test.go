package core

import (
	"errors"
	"reflect"
	"testing"
)

func TestRunSpecNormalizeDefaults(t *testing.T) {
	s, err := RunSpec{Task: "dice"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	want := RunSpec{
		APIVersion: SpecVersion,
		Task:       "dice",
		Paradigm:   "both",
		Seed:       1,
		Workers:    1,
		Tenant:     DefaultTenant,
		FaultSeed:  1,
	}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("normalized spec %+v, want %+v", s, want)
	}
}

func TestRunSpecNormalizeRejects(t *testing.T) {
	for _, bad := range []RunSpec{
		{},                               // no task
		{Task: "dice", APIVersion: "v2"}, // future wire version
		{Task: "dice", Paradigm: "gui"},  // unknown paradigm
		{Task: "dice", Workers: -1},      // negative parallelism
		{Task: "dice", FaultRate: 1, NodeFraction: 2}, // bad fault plan
	} {
		if _, err := bad.Normalize(); err == nil {
			t.Errorf("spec %+v normalized without error", bad)
		}
	}
}

func TestRunSpecWorkerLimitTyped(t *testing.T) {
	_, err := RunSpec{Task: "dice", Workers: 1 << 10}.Normalize()
	var tooMany *ErrTooManyWorkers
	if !errors.As(err, &tooMany) {
		t.Fatalf("want ErrTooManyWorkers, got %v", err)
	}
	if tooMany.Workers != 1<<10 || tooMany.Limit <= 0 {
		t.Fatalf("error carries %+v, want the offending count and a positive limit", tooMany)
	}
}

func TestRunSpecParadigms(t *testing.T) {
	for _, c := range []struct {
		paradigm string
		want     []Paradigm
	}{
		{"script", []Paradigm{Script}},
		{"workflow", []Paradigm{Workflow}},
		{"both", []Paradigm{Script, Workflow}},
	} {
		if got := (RunSpec{Paradigm: c.paradigm}).Paradigms(); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Paradigms(%q) = %v, want %v", c.paradigm, got, c.want)
		}
	}
}

func TestRunSpecConfigConversion(t *testing.T) {
	spec := RunSpec{
		Task:            "dice",
		Workers:         4,
		FaultRate:       2,
		NodeFraction:    0.25,
		CheckpointEvery: 3,
		Lineage:         true,
		Telemetry:       true,
	}
	rc, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	if rc.Workers != 4 {
		t.Fatalf("workers = %d, want 4", rc.Workers)
	}
	if rc.Faults.Rate != 2 || rc.Faults.CheckpointEvery != 3 || rc.Faults.NodeFraction != 0.25 {
		t.Fatalf("fault plan not carried over: %+v", rc.Faults)
	}
	if rc.Faults.Seed != 1 {
		t.Fatalf("fault seed = %d, want the spec seed default 1", rc.Faults.Seed)
	}
	if rc.Lineage == nil {
		t.Fatal("lineage store not armed")
	}
	if rc.Telemetry == nil {
		t.Fatal("telemetry recorder not armed")
	}

	// Extra options run after the spec's own, so callers can override.
	rc, err = spec.Config(WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if rc.Workers != 2 {
		t.Fatalf("extra option did not override workers: %d", rc.Workers)
	}

	// A plain spec arms nothing.
	rc, err = (RunSpec{Task: "dice"}).Config()
	if err != nil {
		t.Fatal(err)
	}
	if rc.Faults.Rate != 0 || rc.Lineage != nil || rc.Telemetry != nil {
		t.Fatalf("plain spec armed extras: %+v", rc)
	}
}
