package core

import (
	"errors"
	"testing"

	"repro/internal/cluster"
)

// TestRunSpecNormalizeNodeBoundaries pins the nodes field's boundary
// semantics: 0 and 1 are both the legacy paper cluster (32-vCPU
// ceiling), 2 flips to the sharded tier (nodes × 8 vCPUs), and a
// negative count is rejected outright.
func TestRunSpecNormalizeNodeBoundaries(t *testing.T) {
	for _, c := range []struct {
		nodes   int
		workers int
		ok      bool
	}{
		{0, cluster.PaperWorkerVCPUs, true},      // legacy ceiling inclusive
		{0, cluster.PaperWorkerVCPUs + 1, false}, // one past it
		{1, cluster.PaperWorkerVCPUs, true},      // nodes=1 is still legacy
		{1, cluster.PaperWorkerVCPUs + 1, false},
		{2, 16, true},  // sharded: 2×8 vCPUs exactly
		{2, 17, false}, // one past the sharded budget
		{-1, 1, false}, // negative node count
	} {
		_, err := (RunSpec{Task: "dice", Nodes: c.nodes, Workers: c.workers}).Normalize()
		if c.ok && err != nil {
			t.Errorf("nodes=%d workers=%d: unexpected error %v", c.nodes, c.workers, err)
		}
		if !c.ok && err == nil {
			t.Errorf("nodes=%d workers=%d: normalized without error", c.nodes, c.workers)
		}
	}
}

// TestRunSpecNormalizeWorkerLimitLift pins the sharded tier's lift: at
// N nodes the ceiling is exactly N×8, so a worker count the legacy
// tier rejects becomes valid once enough nodes back it.
func TestRunSpecNormalizeWorkerLimitLift(t *testing.T) {
	const workers = 64 // over the legacy 32, exactly 8 nodes' worth
	if _, err := (RunSpec{Task: "dice", Workers: workers}).Normalize(); err == nil {
		t.Fatalf("workers=%d passed on the legacy tier", workers)
	}
	if _, err := (RunSpec{Task: "dice", Workers: workers, Nodes: 8}).Normalize(); err != nil {
		t.Fatalf("workers=%d nodes=8 rejected: %v", workers, err)
	}
	if _, err := (RunSpec{Task: "dice", Workers: workers, Nodes: 7}).Normalize(); err == nil {
		t.Fatalf("workers=%d nodes=7 passed above the 56-vCPU budget", workers)
	}
}

// TestRunSpecNormalizeShardMem pins shard_mem boundary handling: zero
// keeps the node-shape default, a positive budget passes, a negative
// one is rejected at the API edge.
func TestRunSpecNormalizeShardMem(t *testing.T) {
	if _, err := (RunSpec{Task: "dice", Nodes: 2, ShardMem: 0}).Normalize(); err != nil {
		t.Fatalf("shard_mem=0 (default) rejected: %v", err)
	}
	if _, err := (RunSpec{Task: "dice", Nodes: 2, ShardMem: 1 << 20}).Normalize(); err != nil {
		t.Fatalf("positive shard_mem rejected: %v", err)
	}
	if _, err := (RunSpec{Task: "dice", Nodes: 2, ShardMem: -1}).Normalize(); err == nil {
		t.Fatal("negative shard_mem normalized without error")
	}
}

// TestRunSpecWorkerLimitMessage pins the typed error's wire-facing
// message and fields — the serving tier maps it to a 4xx body, so its
// shape is API surface.
func TestRunSpecWorkerLimitMessage(t *testing.T) {
	_, err := (RunSpec{Task: "dice", Workers: 33}).Normalize()
	var tooMany *ErrTooManyWorkers
	if !errors.As(err, &tooMany) {
		t.Fatalf("want ErrTooManyWorkers, got %v", err)
	}
	if tooMany.Workers != 33 || tooMany.Limit != cluster.PaperWorkerVCPUs {
		t.Fatalf("error fields %+v, want workers 33 against the paper ceiling", tooMany)
	}
	const want = "core: worker count 33 exceeds the configured cluster's 32 worker vCPUs"
	if got := tooMany.Error(); got != want {
		t.Fatalf("message %q, want %q", got, want)
	}

	// The sharded tier reports its own lifted limit.
	_, err = (RunSpec{Task: "dice", Workers: 100, Nodes: 4}).Normalize()
	if !errors.As(err, &tooMany) {
		t.Fatalf("want ErrTooManyWorkers on the sharded tier, got %v", err)
	}
	if tooMany.Limit != 32 {
		t.Fatalf("sharded limit = %d, want 4 nodes x 8 vCPUs = 32", tooMany.Limit)
	}
}

// TestRunSpecNormalizeOptimizeCarried pins that the optimize knob
// survives Normalize and lands in the compiled RunConfig.
func TestRunSpecNormalizeOptimizeCarried(t *testing.T) {
	s, err := (RunSpec{Task: "dice", Optimize: true}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Optimize {
		t.Fatal("Normalize dropped the optimize flag")
	}
	rc, err := s.Config()
	if err != nil {
		t.Fatal(err)
	}
	if !rc.Optimize {
		t.Fatal("Config dropped the optimize flag")
	}
	rc, err = (RunSpec{Task: "dice"}).Config()
	if err != nil {
		t.Fatal(err)
	}
	if rc.Optimize {
		t.Fatal("plain spec armed the optimizer")
	}
}
