package core

import (
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/faults"
	"repro/internal/telemetry"
)

func TestNewRunConfigDefaults(t *testing.T) {
	cfg, err := NewRunConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Model == nil || cfg.Workers != 1 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
	if cfg.Faults.Enabled() {
		t.Fatal("default config has faults armed")
	}
}

func TestNewRunConfigOptions(t *testing.T) {
	rec := telemetry.New()
	m := cost.Default()
	plan := faults.Plan{Seed: 3, Rate: 2}
	cfg, err := NewRunConfig(WithModel(m), WithWorkers(8), WithTelemetry(rec), WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Model != m || cfg.Workers != 8 || cfg.Telemetry != rec || cfg.Faults != plan {
		t.Fatalf("options not applied: %+v", cfg)
	}
}

func TestWithDerivesVariant(t *testing.T) {
	base := MustRunConfig(WithWorkers(2))
	derived, err := base.With(WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if derived.Workers != 8 {
		t.Fatalf("derived workers = %d", derived.Workers)
	}
	if base.Workers != 2 {
		t.Fatalf("With mutated the base config: %+v", base)
	}
}

func TestNormalizeRejectsOversubscription(t *testing.T) {
	// The paper cluster has 4 workers x 8 vCPUs = 32.
	if _, err := NewRunConfig(WithWorkers(33)); err == nil {
		t.Fatal("33 workers accepted on a 32-vCPU cluster")
	} else if !strings.Contains(err.Error(), "32") {
		t.Fatalf("error does not name the limit: %v", err)
	}
	if cfg, err := NewRunConfig(WithWorkers(32)); err != nil || cfg.Workers != 32 {
		t.Fatalf("32 workers rejected: %v", err)
	}
}

func TestNormalizeRejectsBadFaultPlan(t *testing.T) {
	if _, err := NewRunConfig(WithFaults(faults.Plan{NodeFraction: 2})); err == nil {
		t.Fatal("invalid fault plan accepted")
	}
}

func TestMustRunConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRunConfig did not panic on invalid config")
		}
	}()
	MustRunConfig(WithWorkers(-1))
}
