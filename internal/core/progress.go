package core

import "repro/internal/telemetry"

// ProgressEvent and ProgressSink live in telemetry (a leaf package) so
// the engines below core — notebook, raysim, dataflow — can publish
// into them without an import cycle; core aliases them because the run
// configuration is where callers attach a sink.
type (
	ProgressEvent = telemetry.ProgressEvent
	ProgressSink  = telemetry.ProgressSink
)
