// Package core defines the comparison framework that is this
// reproduction's primary deliverable: the Paradigm and Task
// abstractions under which the four data-science workloads (DICE, WEF,
// GOTTA, KGE) are implemented twice — once as a notebook script scaled
// with the Ray-style backend, once as a dataflow workflow — and
// measured on the paper's four metrics: total execution time, number
// of parallel processes, lines of code, and number of operators.
package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/cost"
	"repro/internal/faults"
	"repro/internal/lineage"
	"repro/internal/relation"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// Paradigm identifies one of the two platform paradigms under
// comparison.
type Paradigm int

const (
	// Script is the Jupyter-Notebook-plus-Ray paradigm.
	Script Paradigm = iota
	// Workflow is the Texera-style GUI dataflow paradigm.
	Workflow
)

// String returns the paradigm name.
func (p Paradigm) String() string {
	switch p {
	case Script:
		return "script"
	case Workflow:
		return "workflow"
	default:
		return fmt.Sprintf("Paradigm(%d)", int(p))
	}
}

// RunConfig controls one task execution.
type RunConfig struct {
	// Model supplies cost constants; nil uses cost.Default().
	Model *cost.Model
	// Workers is the parallelism knob: per-operator worker count for
	// the workflow paradigm, Ray num_cpus for the script paradigm.
	// Zero means 1.
	Workers int
	// Nodes selects the cluster tier: <= 1 runs on the paper's flat
	// 4×8-vCPU cluster (the legacy path, no exchange pricing, no spill
	// modeling); > 1 runs datum-sharded across that many paper-shaped
	// nodes, raising the worker ceiling to Nodes × 8 vCPUs and pricing
	// cross-node shuffles and larger-than-memory operators.
	Nodes int
	// ShardMemBytes overrides the sharded tier's per-worker state
	// budget before blocking operators spill to disk; 0 derives the
	// default from the node shape. Ignored when Nodes <= 1.
	ShardMemBytes int64
	// Telemetry, when non-nil, collects per-operator/per-cell/per-task
	// spans, hot-path metrics and critical-path rows from the run. Nil
	// (the default) keeps every engine on its uninstrumented fast path.
	Telemetry *telemetry.Recorder
	// Faults arms deterministic fault injection and paradigm-faithful
	// recovery: lineage replay with backoff for scripts, epoch
	// checkpointing with restore for workflows. The zero plan is
	// entirely inert. Outputs are bit-identical under any plan.
	Faults faults.Plan
	// Lineage, when non-nil, arms versioned-artifact caching with
	// incremental re-execution: workflow runs reuse at operator
	// granularity, script runs at cell granularity with stateful-kernel
	// (suffix-invalidation) semantics. The store persists across runs of
	// the same task — that persistence is what makes iteration cheap.
	Lineage *lineage.Store
	// Progress, when non-nil, receives live per-operator progress
	// events from the engines (see ProgressEvent). Nil keeps every
	// engine on its unobserved fast path.
	Progress ProgressSink
	// Optimize runs the cost-based plan optimizer (internal/planopt)
	// over each workflow plan before execution: output-preserving
	// rewrites only, so results are bit-identical with or without it.
	// The script paradigm has no declarative plan and ignores the flag —
	// the paper's point about what tooling can see.
	Optimize bool
}

// ErrTooManyWorkers reports a worker count above the simulated
// cluster's vCPU budget. It is typed (and carries the limit) so the
// serving tier can map it to a clean 4xx response instead of a generic
// internal error.
type ErrTooManyWorkers struct {
	Workers int
	Limit   int
}

func (e *ErrTooManyWorkers) Error() string {
	return fmt.Sprintf("core: worker count %d exceeds the configured cluster's %d worker vCPUs", e.Workers, e.Limit)
}

// Topology returns the shard topology the config schedules onto: the
// legacy single-cluster tier for Nodes <= 1, a datum-sharded multi-node
// tier beyond it.
func (c RunConfig) Topology() shard.Topology {
	t := shard.Topology{Nodes: c.Nodes, WorkerMemBytes: c.ShardMemBytes}
	t, _ = t.Normalize() // negative dimensions are caught in Normalize
	return t
}

// Cluster materializes the config's topology as a cluster description;
// Nodes <= 1 yields exactly the paper cluster.
func (c RunConfig) Cluster() *cluster.Cluster {
	return c.Topology().Cluster()
}

// Normalize fills defaults and validates. Worker counts are bounded by
// the configured topology's worker vCPUs — the paper cluster's 32 on
// the legacy tier (cluster.PaperWorkerVCPUs), nodes × 8 on the sharded
// tier — because both paradigms schedule onto that hardware, and asking
// for more would simulate machines that don't exist.
func (c RunConfig) Normalize() (RunConfig, error) {
	if c.Model == nil {
		c.Model = cost.Default()
	}
	if err := c.Model.Validate(); err != nil {
		return c, err
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Workers < 0 {
		return c, fmt.Errorf("core: negative worker count %d", c.Workers)
	}
	if c.Nodes < 0 {
		return c, fmt.Errorf("core: negative node count %d", c.Nodes)
	}
	if c.ShardMemBytes < 0 {
		return c, fmt.Errorf("core: negative shard memory budget %d", c.ShardMemBytes)
	}
	if limit := c.Topology().TotalVCPUs(); c.Workers > limit {
		return c, &ErrTooManyWorkers{Workers: c.Workers, Limit: limit}
	}
	if err := c.Faults.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

// Result is the measured outcome of one task under one paradigm.
type Result struct {
	Task     string
	Paradigm Paradigm

	// SimSeconds is the paper's "total execution time" metric.
	SimSeconds float64
	// LinesOfCode is the paper's implementation-size metric.
	LinesOfCode int
	// Operators is the paper's subtask-count metric: workflow operator
	// count, or notebook cell count for scripts.
	Operators int
	// ParallelProcs is the paper's "number of parallel processes".
	ParallelProcs int

	// Output is the task's canonical result table, used to assert the
	// two paradigms compute the same thing.
	Output *relation.Table
	// Quality holds task-specific quality numbers (F1, exact match,
	// hit rate) keyed by metric name.
	Quality map[string]float64
	// Trace summarizes the execution's cost record. Workflow runs
	// populate it from the dataflow trace; script runs leave it zero
	// (Nodes == 0 means absent).
	Trace TraceTotals
	// Recovery summarizes fault-recovery work; zero without a fault
	// plan.
	Recovery RecoveryTotals
	// Lineage summarizes artifact-store reuse (hits, invalidations,
	// bytes served from cache); nil without a lineage store.
	Lineage *lineage.RunReport
}

// RecoveryTotals folds a run's fault-recovery work into comparable
// scalars, so golden tests can assert bit-equality across runs. The
// asymmetry between the paradigms shows up here: script runs report
// backoff and reconstruction, workflow runs report checkpoints and
// restores.
type RecoveryTotals struct {
	// Kills counts killed attempts; Checkpoints counts epoch snapshots
	// (workflow paradigm only).
	Kills       int
	Checkpoints int
	// LostSeconds is discarded partial work; DelaySeconds is retry wait
	// (backoff or worker respawn); RestoreSeconds is added recovery work
	// (object reconstruction or checkpoint read-back);
	// CheckpointSeconds is the continuous write tax (workflow only).
	LostSeconds       float64
	DelaySeconds      float64
	RestoreSeconds    float64
	CheckpointSeconds float64
	// ReconstructedBytes totals objects rebuilt from lineage (script
	// only).
	ReconstructedBytes int64
}

// TraceTotals folds an execution trace into scalar counters. Two runs
// of the same deterministic workflow must produce identical totals —
// the golden-determinism tests assert exactly that, alongside
// SimSeconds and the output digest.
type TraceTotals struct {
	Nodes      int
	Edges      int
	InTuples   int64
	OutTuples  int64
	Batches    int64 // batches emitted by all nodes
	EdgeTuples int64
	EdgeBytes  int64 // encoded bytes crossing all edges
	WorkInterp float64
	WorkMem    float64
	// ShuffleBytes counts bytes crossing the NIC through exchange
	// operators on the sharded tier (zero on the legacy single-cluster
	// path); SpillBytes counts bytes written to the disk spill path by
	// larger-than-memory joins and group-bys.
	ShuffleBytes int64
	SpillBytes   int64
}

// Task is one of the four benchmark workloads, runnable under both
// paradigms.
type Task interface {
	// Name returns the task's short name (dice, wef, gotta, kge).
	Name() string
	// Run executes the task under the given paradigm.
	Run(p Paradigm, cfg RunConfig) (*Result, error)
}

// RunBoth executes a task under both paradigms with the same config.
func RunBoth(t Task, cfg RunConfig) (script, workflow *Result, err error) {
	script, err = t.Run(Script, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("core: %s under %s: %w", t.Name(), Script, err)
	}
	workflow, err = t.Run(Workflow, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("core: %s under %s: %w", t.Name(), Workflow, err)
	}
	return script, workflow, nil
}

// SpeedupOver returns how much faster r is than other, as the ratio
// other/r of execution times (1.5 means 50% faster).
func (r *Result) SpeedupOver(other *Result) float64 {
	if r.SimSeconds <= 0 {
		return 0
	}
	return other.SimSeconds / r.SimSeconds
}
