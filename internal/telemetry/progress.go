package telemetry

// ProgressEvent is one live observation of a run's execution — the
// per-operator progress a GUI workflow surface shows for free and a
// script surface does not (the paper's visibility asymmetry, made
// concrete). The dataflow engine publishes events while operators are
// genuinely in flight; the script backend can only stamp its events
// after the Ray schedule is computed, because virtual task times do
// not exist until then. Observability consumers (the obs run registry,
// its SSE stream) receive both through the same interface.
type ProgressEvent struct {
	// Task and Paradigm identify the run the event belongs to. Engines
	// fill what they know; the run registry completes the rest.
	Task     string `json:"task,omitempty"`
	Paradigm string `json:"paradigm,omitempty"`
	// Op names the operator, notebook cell, or Ray task the event
	// describes; empty for run-level events.
	Op string `json:"op,omitempty"`
	// Kind classifies Op: "source", "operator", "sink", "cell", "task".
	Kind string `json:"kind,omitempty"`
	// State is the operator lifecycle state: "running", "progress",
	// "completed", "failed".
	State string `json:"state"`
	// InTuples and OutTuples are the operator's cumulative tuple
	// counters at the time of the event (the paper-Figure-9 numbers).
	InTuples  int64 `json:"in_tuples,omitempty"`
	OutTuples int64 `json:"out_tuples,omitempty"`
	// Workers is the operator's parallelism when known.
	Workers int `json:"workers,omitempty"`
	// VirtSeconds stamps the event on the simulator's virtual clock
	// when known. Live workflow events carry zero (the schedule that
	// assigns virtual times is computed at the end of the run); script
	// events are published post-schedule and carry their task's virtual
	// finish time.
	VirtSeconds float64 `json:"virt_seconds,omitempty"`
}

// ProgressSink receives live progress events from an executing run.
// Publish must be safe for concurrent use and must not block: engine
// workers call it inline. A nil sink (the default) keeps every engine
// on its unobserved fast path — the only cost is one nil check.
type ProgressSink interface {
	Publish(ev ProgressEvent)
}
