package telemetry

import (
	"sync"
	"testing"
)

func TestCounterShardsMerge(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for s := 0; s < 32; s++ { // more writers than shards: wraps modulo
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(s, 2)
			}
		}(s)
	}
	wg.Wait()
	if got := c.Value(); got != 32*1000*2 {
		t.Fatalf("counter = %d, want %d", got, 32*1000*2)
	}
}

func TestGaugeTracksMax(t *testing.T) {
	var g Gauge
	g.Set(0, 5)
	g.Set(1, 9)
	g.Set(0, 3)
	if got := g.Max(); got != 9 {
		t.Fatalf("max = %d, want 9", got)
	}
	if got := g.Last(); got != 9 { // largest of the per-shard last samples
		t.Fatalf("last = %d, want 9", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0, 0)    // bucket 0
	h.Observe(0, 1)    // bucket 1: [1,2)
	h.Observe(1, 3)    // bucket 2: [2,4)
	h.Observe(2, 1024) // bucket 11: [1024,2048)
	b := h.Buckets()
	if b[0] != 1 || b[1] != 1 || b[2] != 1 || b[11] != 1 {
		t.Fatalf("unexpected buckets: %v", b[:12])
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if BucketLow(11) != 1024 {
		t.Fatalf("BucketLow(11) = %d", BucketLow(11))
	}
}

func TestRegistryAllocFreeHotPath(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("tuples")
	h := reg.Histogram("latency", "ns")
	g := reg.Gauge("depth")
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(3, 1)
		h.Observe(3, 17)
		g.Set(3, 4)
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates %v per op, want 0", allocs)
	}
}

func TestSnapshotVolatileFiltering(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a.tuples").Add(0, 7)
	reg.Gauge("q.depth").Set(0, 3)
	reg.Histogram("lat", "ns").Observe(0, 5)

	det := reg.Snapshot(false)
	if len(det.Counters) != 1 || det.Counters[0].Value != 7 {
		t.Fatalf("deterministic counters = %+v", det.Counters)
	}
	if len(det.Gauges) != 0 || len(det.Histograms) != 0 {
		t.Fatalf("volatile instruments leaked into deterministic snapshot: %+v", det)
	}
	full := reg.Snapshot(true)
	if len(full.Gauges) != 1 || len(full.Histograms) != 1 {
		t.Fatalf("full snapshot missing volatile instruments: %+v", full)
	}
}

func TestTrackTotalsAndTopSelfTime(t *testing.T) {
	r := New()
	r.Record(
		Span{Proc: "workflow:x", Track: "join", Name: "join:p0:b0", HasVirt: true, Virtual: Virt{Start: 0, Dur: 2}},
		Span{Proc: "workflow:x", Track: "join", Name: "join:p0:b1", HasVirt: true, Virtual: Virt{Start: 2, Dur: 3}},
		Span{Proc: "workflow:x", Track: "scan", Name: "scan:gen:b0", HasVirt: true, Virtual: Virt{Start: 0, Dur: 1}},
		Span{Proc: "workflow:x", Track: "scan", Name: "wall-only", HasWall: true, Clock: Wall{StartNS: 5, DurNS: 10}},
	)
	totals := r.TrackTotals()
	if len(totals) != 2 {
		t.Fatalf("tracks = %+v", totals)
	}
	top := r.TopSelfTime("workflow:x", 1)
	if len(top) != 1 || top[0].Track != "join" || top[0].SelfSeconds != 5 {
		t.Fatalf("top = %+v", top)
	}
	if got := r.Procs(); len(got) != 1 || got[0] != "workflow:x" {
		t.Fatalf("procs = %v", got)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(Span{Name: "x"})
	r.SetMeta("k", "v")
	r.AddCritical(CriticalRow{Track: "t"})
}
