package telemetry

import "time"

// This file is the repository's only sanctioned wall-clock access: the
// telemetry recorder's dual-stamp epoch and the wall-clock benchmark
// harness both read through it, so the determinism linter's wallclock
// rule (see internal/analysis and DESIGN.md "Static analysis") has
// exactly two allowed call sites, both below. Everything that feeds
// digests, golden tests or deterministic exports must use virtual
// time; wall time is profiling data only.

// WallClock reads the host clock. The only legitimate consumers are
// profiling paths whose output is explicitly non-deterministic.
func WallClock() time.Time {
	return time.Now() //lint:allow wallclock the single sanctioned wall-clock read
}

// WallSince returns the wall time elapsed since t0.
func WallSince(t0 time.Time) time.Duration {
	return time.Since(t0) //lint:allow wallclock the single sanctioned elapsed-wall read
}
