package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// sampleRecorder builds a recorder with spans from two paradigms.
func sampleRecorder() *Recorder {
	r := New()
	r.SetMeta("task", "dice")
	r.Metrics.Counter("edge.src.op.p0.tuples").Add(0, 42)
	r.Metrics.Gauge("queue.depth").Set(1, 6)
	r.Metrics.Histogram("batch.latency", "ns").Observe(0, 1500)
	r.Record(
		Span{Proc: "script:dice", Track: "kernel", Name: "imports", Cat: "cell",
			HasVirt: true, Virtual: Virt{Start: 0, Dur: 1.5},
			HasWall: true, Clock: Wall{StartNS: 100, DurNS: 900}},
		Span{Proc: "workflow:dice", Track: "parse", Name: "parse:p0:b0", Cat: "operator",
			HasVirt: true, Virtual: Virt{Start: 0.5, Dur: 0.25}, Tuples: 10},
		// Overlapping span on the same track: must land on a second lane.
		Span{Proc: "workflow:dice", Track: "parse", Name: "parse:p0:b1", Cat: "operator",
			HasVirt: true, Virtual: Virt{Start: 0.6, Dur: 0.25}, Worker: 1},
		Span{Proc: "workflow:dice", Track: "parse", Name: "wall", Cat: "wall",
			HasWall: true, Clock: Wall{StartNS: 0, DurNS: 5000}},
	)
	r.AddCritical(CriticalRow{Proc: "workflow:dice", Track: "parse", Jobs: 2, Seconds: 0.5})
	return r
}

func TestChromeTraceShapeAndLanes(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleRecorder().WriteChromeTrace(&buf, ExportOptions{}); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var xEvents, wallEvents int
	tids := map[float64]bool{}
	for _, e := range tr.TraceEvents {
		if e["ph"] == "X" {
			xEvents++
			if e["name"] == "wall" {
				wallEvents++
			}
			if strings.HasPrefix(e["name"].(string), "parse:") {
				tids[e["tid"].(float64)] = true
			}
		}
	}
	if xEvents != 3 {
		t.Fatalf("span events = %d, want 3 (wall spans excluded by default)", xEvents)
	}
	if wallEvents != 0 {
		t.Fatalf("wall span leaked into deterministic export")
	}
	if len(tids) != 2 {
		t.Fatalf("overlapping spans share a lane: tids = %v", tids)
	}

	var withWall bytes.Buffer
	if err := sampleRecorder().WriteChromeTrace(&withWall, ExportOptions{IncludeWall: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(withWall.String(), "(wall)") {
		t.Fatal("IncludeWall did not add the wall process")
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := sampleRecorder().WriteChromeTrace(&a, ExportOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := sampleRecorder().WriteChromeTrace(&b, ExportOptions{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of identical data differ")
	}
}

func TestMetricsDumpModes(t *testing.T) {
	r := sampleRecorder()
	var det bytes.Buffer
	if err := r.WriteMetrics(&det, false); err != nil {
		t.Fatal(err)
	}
	s := det.String()
	if strings.Contains(s, "queue.depth") || strings.Contains(s, "batch.latency") || strings.Contains(s, "wall_tracks") {
		t.Fatalf("volatile data leaked into deterministic dump:\n%s", s)
	}
	if !strings.Contains(s, "edge.src.op.p0.tuples") || !strings.Contains(s, "critical_path") {
		t.Fatalf("deterministic dump missing expected sections:\n%s", s)
	}
	var full bytes.Buffer
	if err := r.WriteMetrics(&full, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(full.String(), "queue.depth") || !strings.Contains(full.String(), "wall_tracks") {
		t.Fatalf("volatile dump missing sections:\n%s", full.String())
	}
}

func TestWriteSummaryMentionsTracksAndCriticalPath(t *testing.T) {
	var buf bytes.Buffer
	sampleRecorder().WriteSummary(&buf)
	out := buf.String()
	for _, want := range []string{"workflow:dice", "script:dice", "critical path", "parse", "wall-clock profile"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
