// Package telemetry is the reproduction's observability layer: a
// zero-allocation-on-hot-path metrics registry plus a span recorder
// that stamps execution spans with both the simulator's virtual clock
// and the host's wall clock.
//
// Both paradigms — the dataflow executor and the notebook/Ray script
// backend — report into the same Recorder, so a script run and a
// workflow run of the same task emit directly comparable traces. The
// deterministic half of the data (counters derived from data volumes,
// virtual-clock spans, critical-path breakdowns) is exported bit-equal
// across runs; wall-clock profiling data (batch latency histograms,
// queue-depth gauges, per-node wall spans) is kept in a separate
// volatile section that deterministic exports omit. See DESIGN.md,
// "Telemetry" for the dual-stamping rule.
package telemetry

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// NumShards is the fixed shard count of every sharded metric. Hot-path
// callers pick a shard (typically hashed from node and worker IDs) and
// touch only that shard's cache line; readers merge all shards.
const NumShards = 16

// pad64 separates neighbouring atomics so two shards never share a
// cache line (the same false-sharing pad the executor's work shards
// use).
type pad64 struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing sharded counter. Add is
// wait-free and allocation-free; Value folds the shards.
type Counter struct {
	shards [NumShards]pad64
}

// Add increments the counter on one shard. Shard indices are taken
// modulo NumShards so callers may pass any non-negative worker ID.
func (c *Counter) Add(shard int, delta int64) {
	c.shards[shard%NumShards].v.Add(delta)
}

// Value returns the summed shard values.
func (c *Counter) Value() int64 {
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge tracks a sampled level (for example queue depth). Each shard
// remembers its last sample and its high-water mark; Last and Max fold
// the shards.
type Gauge struct {
	last [NumShards]pad64
	max  [NumShards]pad64
}

// Set records a sample on one shard, updating the shard maximum.
func (g *Gauge) Set(shard int, v int64) {
	s := shard % NumShards
	g.last[s].v.Store(v)
	for {
		cur := g.max[s].v.Load()
		if v <= cur || g.max[s].v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Last returns the largest of the shards' most recent samples.
func (g *Gauge) Last() int64 {
	var out int64
	for i := range g.last {
		if v := g.last[i].v.Load(); v > out {
			out = v
		}
	}
	return out
}

// Max returns the high-water mark across all shards.
func (g *Gauge) Max() int64 {
	var out int64
	for i := range g.max {
		if v := g.max[i].v.Load(); v > out {
			out = v
		}
	}
	return out
}

// HistBuckets is the fixed bucket count of every histogram: bucket i
// holds samples v with bits.Len64(v) == i, i.e. power-of-two ranges
// [2^(i-1), 2^i). Bucket 0 holds zero and negative samples; the last
// bucket absorbs everything larger.
const HistBuckets = 40

// histShard is one worker's private bucket array, padded to keep
// neighbouring shards apart.
type histShard struct {
	buckets [HistBuckets]atomic.Int64
	_       [64 - (HistBuckets*8)%64]byte
}

// Histogram is a fixed-bucket power-of-two histogram. Observe is
// wait-free and allocation-free.
type Histogram struct {
	shards [NumShards]histShard
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe records one sample on one shard.
func (h *Histogram) Observe(shard int, v int64) {
	h.shards[shard%NumShards].buckets[bucketOf(v)].Add(1)
}

// Buckets returns the merged bucket counts.
func (h *Histogram) Buckets() [HistBuckets]int64 {
	var out [HistBuckets]int64
	for s := range h.shards {
		for b := range out {
			out[b] += h.shards[s].buckets[b].Load()
		}
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var total int64
	for _, c := range h.Buckets() {
		total += c
	}
	return total
}

// BucketLow returns the inclusive lower bound of bucket i.
func BucketLow(i int) int64 {
	if i <= 0 {
		return 0
	}
	return 1 << (i - 1)
}

// metric is one registered instrument.
type metric struct {
	name     string
	unit     string
	volatile bool // excluded from deterministic exports
	counter  *Counter
	gauge    *Gauge
	hist     *Histogram
}

// Registry holds named instruments. Registration allocates; the
// returned instruments are then written without locks or allocations.
// Register instruments at setup time, not on the hot path.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Counter registers (or fetches) a deterministic counter: its value
// depends only on the data processed, so it appears in deterministic
// exports.
func (r *Registry) Counter(name string) *Counter {
	m := r.get(name, "count", false)
	if m.counter == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// Gauge registers (or fetches) a gauge. Gauges sample scheduler-timing
// dependent levels, so they are volatile: deterministic exports omit
// them.
func (r *Registry) Gauge(name string) *Gauge {
	m := r.get(name, "level", true)
	if m.gauge == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// Histogram registers (or fetches) a volatile histogram with the given
// unit label (for example "ns").
func (r *Registry) Histogram(name, unit string) *Histogram {
	m := r.get(name, unit, true)
	if m.hist == nil {
		m.hist = &Histogram{}
	}
	return m.hist
}

func (r *Registry) get(name, unit string, volatile bool) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := &metric{name: name, unit: unit, volatile: volatile}
	r.metrics[name] = m
	return m
}

// CounterValue is one counter's merged value in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge's merged state in a snapshot.
type GaugeValue struct {
	Name string `json:"name"`
	Last int64  `json:"last"`
	Max  int64  `json:"max"`
}

// HistogramValue is one histogram's merged, zero-suppressed buckets.
type HistogramValue struct {
	Name    string       `json:"name"`
	Unit    string       `json:"unit"`
	Count   int64        `json:"count"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// HistBucket is one non-empty histogram bucket.
type HistBucket struct {
	Low   int64 `json:"low"` // inclusive lower bound
	Count int64 `json:"count"`
}

// MetricsSnapshot is a point-in-time merge of every instrument, with
// names sorted so the encoding is deterministic for a given state.
type MetricsSnapshot struct {
	Counters   []CounterValue   `json:"counters,omitempty"`
	Gauges     []GaugeValue     `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// Snapshot merges all shards. When includeVolatile is false only
// deterministic counters are reported — the mode the golden tests and
// deterministic exports use.
func (r *Registry) Snapshot(includeVolatile bool) MetricsSnapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	ms := make([]*metric, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		ms = append(ms, r.metrics[name])
	}
	r.mu.Unlock()

	var snap MetricsSnapshot
	for _, m := range ms {
		if m.volatile && !includeVolatile {
			continue
		}
		switch {
		case m.counter != nil:
			snap.Counters = append(snap.Counters, CounterValue{Name: m.name, Value: m.counter.Value()})
		case m.gauge != nil:
			snap.Gauges = append(snap.Gauges, GaugeValue{Name: m.name, Last: m.gauge.Last(), Max: m.gauge.Max()})
		case m.hist != nil:
			hv := HistogramValue{Name: m.name, Unit: m.unit, Count: m.hist.Count()}
			for i, c := range m.hist.Buckets() {
				if c > 0 {
					hv.Buckets = append(hv.Buckets, HistBucket{Low: BucketLow(i), Count: c})
				}
			}
			snap.Histograms = append(snap.Histograms, hv)
		}
	}
	return snap
}
