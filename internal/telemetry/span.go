package telemetry

import (
	"sync"
	"time"
)

// Virt is a virtual-clock interval in simulated seconds. Virtual
// timestamps come from the discrete-event simulator (or the notebook
// kernel's virtual clock) and are deterministic for a deterministic
// run.
type Virt struct {
	Start float64 `json:"start"`
	Dur   float64 `json:"dur"`
}

// Wall is a wall-clock interval in nanoseconds since the recorder's
// epoch. Wall timestamps are profiling data only: they vary run to run
// and are omitted from deterministic exports.
type Wall struct {
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
}

// Span is one recorded execution interval, dual-stamped where both
// clocks are known. Dataflow operator invocations carry virtual stamps
// (from the schedule); notebook cells carry both; per-node wall spans
// carry only wall stamps.
type Span struct {
	// Proc groups spans into a trace process, conventionally
	// "<paradigm>:<task>" (for example "workflow:dice").
	Proc string
	// Track is the display lane group within the process: an operator
	// name, "ray-cpus", or "kernel".
	Track string
	// Name labels the individual span (for example "parse:p0:b3").
	Name string
	// Cat classifies the span: "source", "operator", "sink", "control",
	// "task", "cell", or "wall".
	Cat string
	// Worker is the worker/slot index when known, else 0.
	Worker int
	// Tuples is the data volume the span processed, 0 if unknown.
	Tuples int64

	Virtual Virt
	HasVirt bool
	Clock   Wall
	HasWall bool
}

// CriticalRow attributes a slice of the critical path to one track.
type CriticalRow struct {
	Proc    string  `json:"proc"`
	Track   string  `json:"track"`
	Jobs    int     `json:"jobs"`
	Seconds float64 `json:"seconds"`
}

// Recorder collects spans, metadata and critical-path rows alongside a
// metrics registry. All methods are safe for concurrent use; span
// recording takes one short mutex and is meant for bulk or per-cell
// recording, while the per-batch hot path goes through the registry's
// sharded instruments and per-caller wall accumulators instead.
type Recorder struct {
	// Metrics is the recorder's instrument registry.
	Metrics *Registry

	mu       sync.Mutex
	epoch    time.Time
	spans    []Span
	meta     map[string]string
	critical []CriticalRow
}

// New creates a Recorder whose wall epoch is "now", read through the
// wall-clock shim (wallclock.go) so span.go itself stays clean under
// the determinism linter.
func New() *Recorder {
	return &Recorder{Metrics: NewRegistry(), epoch: WallClock(), meta: make(map[string]string)}
}

// NowNS returns nanoseconds since the recorder's epoch — the wall
// stamp instrumented code records.
func (r *Recorder) NowNS() int64 {
	return int64(WallSince(r.epoch))
}

// Record appends spans in bulk.
func (r *Recorder) Record(spans ...Span) {
	if r == nil || len(spans) == 0 {
		return
	}
	r.mu.Lock()
	r.spans = append(r.spans, spans...)
	r.mu.Unlock()
}

// SetMeta stores one metadata key/value (task, paradigm, makespan…).
// Values must be deterministic: metadata appears in deterministic
// exports.
func (r *Recorder) SetMeta(key, value string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.meta[key] = value
	r.mu.Unlock()
}

// AddCritical appends critical-path attribution rows.
func (r *Recorder) AddCritical(rows ...CriticalRow) {
	if r == nil || len(rows) == 0 {
		return
	}
	r.mu.Lock()
	r.critical = append(r.critical, rows...)
	r.mu.Unlock()
}

// Spans returns a copy of the recorded spans.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// Critical returns a copy of the recorded critical-path rows.
func (r *Recorder) Critical() []CriticalRow {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]CriticalRow(nil), r.critical...)
}

// Meta returns a copy of the metadata map.
func (r *Recorder) Meta() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]string, len(r.meta))
	for k, v := range r.meta {
		out[k] = v
	}
	return out
}

// TrackTotal aggregates one track's virtual-clock spans.
type TrackTotal struct {
	Proc  string `json:"proc"`
	Track string `json:"track"`
	Spans int    `json:"spans"`
	// SelfSeconds is the summed virtual duration of the track's spans —
	// the operator's busy time on the simulated cluster.
	SelfSeconds float64 `json:"self_seconds"`
	Tuples      int64   `json:"tuples,omitempty"`
}

// TrackTotals folds the recorded virtual spans per (proc, track), in
// deterministic (proc, track) order. Wall-only spans are excluded.
func (r *Recorder) TrackTotals() []TrackTotal {
	spans := r.Spans()
	type key struct{ proc, track string }
	agg := make(map[key]*TrackTotal)
	var order []key
	for i := range spans {
		s := &spans[i]
		if !s.HasVirt {
			continue
		}
		k := key{s.Proc, s.Track}
		t, ok := agg[k]
		if !ok {
			t = &TrackTotal{Proc: s.Proc, Track: s.Track}
			agg[k] = t
			order = append(order, k)
		}
		t.Spans++
		t.SelfSeconds += s.Virtual.Dur
		t.Tuples += s.Tuples
	}
	// Sort keys, then re-fold in sorted span order so the float sums are
	// reproducible regardless of recording order. Spans were appended in
	// a deterministic order by each producer, but two producers may
	// interleave; summing per track keyed off the span slice keeps each
	// track's sum in its own append order, which is deterministic
	// per producer.
	out := make([]TrackTotal, 0, len(order))
	sortKeys(order, func(a, b key) bool {
		if a.proc != b.proc {
			return a.proc < b.proc
		}
		return a.track < b.track
	})
	for _, k := range order {
		out = append(out, *agg[k])
	}
	return out
}

// sortKeys is a tiny generic insertion sort (the slices are short and
// this avoids pulling in reflect-based sorting for a struct key).
func sortKeys[T any](s []T, less func(a, b T) bool) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TopSelfTime returns the n largest tracks of one process by self
// time, ties broken by track name.
func (r *Recorder) TopSelfTime(proc string, n int) []TrackTotal {
	totals := r.TrackTotals()
	var filtered []TrackTotal
	for _, t := range totals {
		if t.Proc == proc {
			filtered = append(filtered, t)
		}
	}
	sortKeys(filtered, func(a, b TrackTotal) bool {
		if a.SelfSeconds != b.SelfSeconds {
			return a.SelfSeconds > b.SelfSeconds
		}
		return a.Track < b.Track
	})
	if n > 0 && len(filtered) > n {
		filtered = filtered[:n]
	}
	return filtered
}

// Procs returns the sorted distinct process labels seen in spans.
func (r *Recorder) Procs() []string {
	spans := r.Spans()
	seen := make(map[string]bool)
	var out []string
	for i := range spans {
		if !seen[spans[i].Proc] {
			seen[spans[i].Proc] = true
			out = append(out, spans[i].Proc)
		}
	}
	sortKeys(out, func(a, b string) bool { return a < b })
	return out
}
