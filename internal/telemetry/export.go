package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one trace event in the Chrome trace-event format
// (loadable in chrome://tracing and Perfetto). Field order and map-key
// sorting are fixed by encoding/json, so identical span data encodes
// to identical bytes.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	Meta            map[string]string `json:"metadata,omitempty"`
}

// ExportOptions controls trace export.
type ExportOptions struct {
	// IncludeWall adds wall-clock spans and wall-derived args to the
	// export. Wall data varies run to run, so leave this false for
	// deterministic (golden-comparable) output.
	IncludeWall bool
}

// WriteChromeTrace writes the recorder's spans as Chrome trace-event
// JSON. The timeline is the simulator's virtual clock (microseconds),
// which makes the export deterministic; each paradigm's run is one
// trace process, each operator/actor track one or more thread lanes
// (overlapping spans within a track are unpacked onto extra lanes so
// Perfetto shows true concurrency).
func (r *Recorder) WriteChromeTrace(w io.Writer, opts ExportOptions) error {
	spans := r.Spans()

	// Deterministic global order: virtual spans by (proc, start, track,
	// name, worker); wall spans afterwards.
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := &spans[i], &spans[j]
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.HasVirt != b.HasVirt {
			return a.HasVirt
		}
		as, bs := a.Virtual.Start, b.Virtual.Start
		if !a.HasVirt {
			as, bs = float64(a.Clock.StartNS), float64(b.Clock.StartNS)
		}
		if as != bs {
			return as < bs
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Worker < b.Worker
	})

	type procKey struct {
		label string
		wall  bool
	}
	pidOf := make(map[procKey]int)
	nextPid := 1
	type trackKey struct {
		pid   int
		track string
	}
	// Lane state per track: end time of each assigned lane.
	laneEnds := make(map[trackKey][]float64)
	tidOf := make(map[trackKey]int) // base tid of the track's lane 0
	tidNames := make(map[int]map[int]string)
	nextTid := make(map[int]int)

	var events []chromeEvent
	procName := func(pk procKey) int {
		if pid, ok := pidOf[pk]; ok {
			return pid
		}
		pid := nextPid
		nextPid++
		pidOf[pk] = pid
		label := pk.label
		if pk.wall {
			label += " (wall)"
		}
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": label},
		}, chromeEvent{
			Name: "process_sort_index", Ph: "M", Pid: pid,
			Args: map[string]any{"sort_index": pid},
		})
		tidNames[pid] = make(map[int]string)
		nextTid[pid] = 1
		return pid
	}

	for i := range spans {
		s := &spans[i]
		isWall := !s.HasVirt
		if isWall && !opts.IncludeWall {
			continue
		}
		pid := procName(procKey{s.Proc, isWall})
		var start, dur float64 // microseconds
		if s.HasVirt {
			start, dur = s.Virtual.Start*1e6, s.Virtual.Dur*1e6
		} else {
			start, dur = float64(s.Clock.StartNS)/1e3, float64(s.Clock.DurNS)/1e3
		}
		tk := trackKey{pid, s.Track}
		ends, ok := laneEnds[tk]
		if !ok {
			tidOf[tk] = nextTid[pid]
		}
		lane := -1
		for li, end := range ends {
			if end <= start {
				lane = li
				break
			}
		}
		if lane < 0 {
			lane = len(ends)
			ends = append(ends, 0)
			name := s.Track
			if lane > 0 {
				name = fmt.Sprintf("%s #%d", s.Track, lane)
			}
			tid := tidOf[tk] + lane
			if tid >= nextTid[pid] {
				nextTid[pid] = tid + 1
			}
			tidNames[pid][tid] = name
		}
		ends[lane] = start + dur
		laneEnds[tk] = ends

		args := map[string]any{}
		if s.Worker > 0 {
			args["worker"] = s.Worker
		}
		if s.Tuples > 0 {
			args["tuples"] = s.Tuples
		}
		if opts.IncludeWall && s.HasWall && s.HasVirt {
			args["wall_us"] = float64(s.Clock.DurNS) / 1e3
		}
		if len(args) == 0 {
			args = nil
		}
		events = append(events, chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			TS: start, Dur: dur, Pid: pid, Tid: tidOf[tk] + lane,
			Args: args,
		})
	}

	// Thread-name metadata, emitted in sorted order.
	var pids []int
	for _, pid := range pidOf {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		var tids []int
		for tid := range tidNames[pid] {
			tids = append(tids, tid)
		}
		sort.Ints(tids)
		for _, tid := range tids {
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": tidNames[pid][tid]},
			}, chromeEvent{
				Name: "thread_sort_index", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"sort_index": tid},
			})
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		Meta:            r.Meta(),
	})
}

// MetaKV is one metadata entry in a metrics dump.
type MetaKV struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// WallTotal aggregates one track's wall-clock spans (volatile).
type WallTotal struct {
	Proc   string  `json:"proc"`
	Track  string  `json:"track"`
	Spans  int     `json:"spans"`
	BusyMS float64 `json:"busy_ms"`
}

// MetricsDump is the serializable metrics report. With Volatile nil
// (the deterministic mode) every field is a pure function of the data
// processed and the virtual schedule, so two runs of a deterministic
// workload dump byte-identical reports.
type MetricsDump struct {
	Meta         []MetaKV        `json:"meta,omitempty"`
	Tracks       []TrackTotal    `json:"tracks,omitempty"`
	CriticalPath []CriticalRow   `json:"critical_path,omitempty"`
	Metrics      MetricsSnapshot `json:"metrics"`
	Volatile     *VolatileDump   `json:"volatile,omitempty"`
}

// VolatileDump carries the wall-clock profiling data.
type VolatileDump struct {
	Gauges     []GaugeValue     `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
	WallTracks []WallTotal      `json:"wall_tracks,omitempty"`
}

// Dump assembles the metrics report. includeVolatile adds the
// wall-clock section; leave it false for deterministic output.
func (r *Recorder) Dump(includeVolatile bool) MetricsDump {
	d := MetricsDump{
		Tracks:  r.TrackTotals(),
		Metrics: r.Metrics.Snapshot(false),
	}
	meta := r.Meta()
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		d.Meta = append(d.Meta, MetaKV{Key: k, Value: meta[k]})
	}
	crit := r.Critical()
	sort.SliceStable(crit, func(i, j int) bool { return crit[i].Proc < crit[j].Proc })
	d.CriticalPath = crit

	if includeVolatile {
		vol := r.Metrics.Snapshot(true)
		v := &VolatileDump{Gauges: vol.Gauges, Histograms: vol.Histograms}
		type key struct{ proc, track string }
		agg := make(map[key]*WallTotal)
		var order []key
		for _, s := range r.Spans() {
			if !s.HasWall {
				continue
			}
			k := key{s.Proc, s.Track}
			t, ok := agg[k]
			if !ok {
				t = &WallTotal{Proc: s.Proc, Track: s.Track}
				agg[k] = t
				order = append(order, k)
			}
			t.Spans++
			t.BusyMS += float64(s.Clock.DurNS) / 1e6
		}
		sortKeys(order, func(a, b key) bool {
			if a.proc != b.proc {
				return a.proc < b.proc
			}
			return a.track < b.track
		})
		for _, k := range order {
			v.WallTracks = append(v.WallTracks, *agg[k])
		}
		d.Volatile = v
	}
	return d
}

// WriteMetrics writes the metrics dump as indented JSON.
func (r *Recorder) WriteMetrics(w io.Writer, includeVolatile bool) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r.Dump(includeVolatile))
}

// WriteSummary writes a human-readable per-run summary: metadata, each
// process's busiest tracks, the critical-path breakdown, and (marked
// as non-deterministic) the wall-clock profile.
func (r *Recorder) WriteSummary(w io.Writer) {
	meta := r.Meta()
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintln(w, "== telemetry summary")
	for _, k := range keys {
		fmt.Fprintf(w, "   %s = %s\n", k, meta[k])
	}

	crit := r.Critical()
	for _, proc := range r.Procs() {
		totals := r.TopSelfTime(proc, 0)
		var busy float64
		for _, t := range totals {
			busy += t.SelfSeconds
		}
		fmt.Fprintf(w, "-- %s: %d tracks, %.2f busy sim-seconds\n", proc, len(totals), busy)
		top := totals
		if len(top) > 5 {
			top = top[:5]
		}
		for _, t := range top {
			share := 0.0
			if busy > 0 {
				share = 100 * t.SelfSeconds / busy
			}
			fmt.Fprintf(w, "   %-28s %6d spans %10.3fs self %5.1f%%\n", t.Track, t.Spans, t.SelfSeconds, share)
		}
		var critTotal float64
		var rows []CriticalRow
		for _, c := range crit {
			if c.Proc == proc {
				rows = append(rows, c)
				critTotal += c.Seconds
			}
		}
		if len(rows) > 0 {
			fmt.Fprintf(w, "   critical path: %.2fs\n", critTotal)
			for _, c := range rows {
				share := 0.0
				if critTotal > 0 {
					share = 100 * c.Seconds / critTotal
				}
				fmt.Fprintf(w, "     %-26s %6d jobs  %10.3fs %5.1f%%\n", c.Track, c.Jobs, c.Seconds, share)
			}
		}
	}

	vol := r.Metrics.Snapshot(true)
	wallTracks := r.Dump(true).Volatile.WallTracks
	if len(vol.Gauges)+len(vol.Histograms)+len(wallTracks) > 0 {
		fmt.Fprintln(w, "-- wall-clock profile (non-deterministic)")
		for _, g := range vol.Gauges {
			fmt.Fprintf(w, "   gauge %-32s last=%d max=%d\n", g.Name, g.Last, g.Max)
		}
		for _, h := range vol.Histograms {
			if h.Count == 0 {
				continue
			}
			fmt.Fprintf(w, "   hist  %-32s n=%d p50<=%d%s p99<=%d%s\n",
				h.Name, h.Count, quantileHigh(h, 0.50), h.Unit, quantileHigh(h, 0.99), h.Unit)
		}
		for _, t := range wallTracks {
			fmt.Fprintf(w, "   wall  %s/%s: %d spans, %.2fms busy\n", t.Proc, t.Track, t.Spans, t.BusyMS)
		}
	}
}

// quantileHigh returns the upper bound of the bucket containing the
// q-quantile observation.
func quantileHigh(h HistogramValue, q float64) int64 {
	target := int64(q * float64(h.Count))
	var seen int64
	for _, b := range h.Buckets {
		seen += b.Count
		if seen > target {
			if b.Low == 0 {
				return 0
			}
			return b.Low*2 - 1
		}
	}
	if n := len(h.Buckets); n > 0 {
		return h.Buckets[n-1].Low*2 - 1
	}
	return 0
}
