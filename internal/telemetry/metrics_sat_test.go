package telemetry

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestShardedInstrumentsConcurrent hammers every sharded instrument
// from many goroutines (run under -race in CI) while a reader loops
// snapshots, then checks the folded values are exact: sharding must
// never lose or double-count a write.
func TestShardedInstrumentsConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h", "ns")

	const (
		writers = 8
		perGoro = 5000
	)
	stop := make(chan struct{})
	var readerDone sync.WaitGroup
	readerDone.Add(1)
	go func() {
		defer readerDone.Done()
		// Snapshot mid-write: must not race and counter sums must be
		// monotonically non-decreasing partial sums.
		var prev int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := reg.Snapshot(true)
			for _, cv := range snap.Counters {
				if cv.Name == "c" {
					if cv.Value < prev {
						t.Errorf("counter went backwards mid-write: %d -> %d", prev, cv.Value)
						return
					}
					prev = cv.Value
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				c.Add(shard, 1)
				g.Set(shard, int64(shard*perGoro+i))
				h.Observe(shard, int64(i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerDone.Wait()

	if got, want := c.Value(), int64(writers*perGoro); got != want {
		t.Errorf("counter lost writes: got %d, want %d", got, want)
	}
	if got, want := h.Count(), int64(writers*perGoro); got != want {
		t.Errorf("histogram lost observations: got %d, want %d", got, want)
	}
	// Every writer's final sample is shard*perGoro+perGoro-1; the
	// largest belongs to the last shard and is also the global max.
	want := int64((writers-1)*perGoro + perGoro - 1)
	if got := g.Max(); got != want {
		t.Errorf("gauge max: got %d, want %d", got, want)
	}
	if got := g.Last(); got != want {
		t.Errorf("gauge last (fold = max of shard lasts): got %d, want %d", got, want)
	}
}

// TestQuantileHighEdges pins quantileHigh on degenerate histograms.
func TestQuantileHighEdges(t *testing.T) {
	empty := HistogramValue{}
	if got := quantileHigh(empty, 0.5); got != 0 {
		t.Errorf("empty histogram p50: got %d, want 0", got)
	}

	single := HistogramValue{
		Count:   5,
		Buckets: []HistBucket{{Low: 4, Count: 5}},
	}
	// Every quantile of a one-bucket histogram is that bucket's upper
	// bound, 2*Low-1.
	for _, q := range []float64{0, 0.5, 1} {
		if got := quantileHigh(single, q); got != 7 {
			t.Errorf("single-bucket q=%g: got %d, want 7", q, got)
		}
	}

	zeroBucket := HistogramValue{
		Count:   3,
		Buckets: []HistBucket{{Low: 0, Count: 3}},
	}
	if got := quantileHigh(zeroBucket, 0.99); got != 0 {
		t.Errorf("zero-bucket q=0.99: got %d, want 0", got)
	}

	two := HistogramValue{
		Count:   10,
		Buckets: []HistBucket{{Low: 1, Count: 9}, {Low: 16, Count: 1}},
	}
	if got := quantileHigh(two, 0); got != 1 {
		t.Errorf("q=0 should land in the first bucket: got %d, want 1", got)
	}
	if got := quantileHigh(two, 1); got != 31 {
		t.Errorf("q=1 should land in the last bucket: got %d, want 31", got)
	}
}

// buildDeterministicRecorder assembles a recorder from fixed inputs,
// registering instruments in scrambled order so the test fails if
// export ordering ever starts tracking registration order.
func buildDeterministicRecorder() *Recorder {
	r := New()
	r.SetMeta("task", "golden")
	r.SetMeta("backend", "test")
	for _, name := range []string{"z.last", "a.first", "m.middle"} {
		for shard := 0; shard < 3; shard++ {
			r.Metrics.Counter(name).Add(shard, int64(len(name)))
		}
	}
	r.Record(
		Span{Proc: "workflow:golden", Track: "parse", Name: "parse:b0", Cat: "operator",
			Tuples: 10, Virtual: Virt{Start: 0, Dur: 2}, HasVirt: true},
		Span{Proc: "workflow:golden", Track: "join", Name: "join:b0", Cat: "operator",
			Tuples: 4, Virtual: Virt{Start: 2, Dur: 1.5}, HasVirt: true},
	)
	r.AddCritical(CriticalRow{Proc: "workflow:golden", Track: "parse", Jobs: 1, Seconds: 2})
	return r
}

// TestWriteMetricsDeterministicGolden pins the deterministic export
// ordering: two independently built recorders must serialize to
// byte-identical output, and that output must match the pinned golden
// (names sorted, meta sorted, no volatile section).
func TestWriteMetricsDeterministicGolden(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildDeterministicRecorder().WriteMetrics(&a, false); err != nil {
		t.Fatal(err)
	}
	if err := buildDeterministicRecorder().WriteMetrics(&b, false); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("WriteMetrics not deterministic:\n--- a ---\n%s\n--- b ---\n%s", a.String(), b.String())
	}

	out := a.String()
	// Ordering pins, cheaper to maintain than a full golden file: meta
	// keys sorted, counter names sorted, volatile section absent.
	iBackend := strings.Index(out, `"backend"`)
	iTask := strings.Index(out, `"task"`)
	if iBackend == -1 || iTask == -1 || iBackend > iTask {
		t.Errorf("meta keys not sorted in output:\n%s", out)
	}
	iA := strings.Index(out, `"a.first"`)
	iM := strings.Index(out, `"m.middle"`)
	iZ := strings.Index(out, `"z.last"`)
	if iA == -1 || iM == -1 || iZ == -1 || !(iA < iM && iM < iZ) {
		t.Errorf("counter names not sorted in output:\n%s", out)
	}
	if strings.Contains(out, `"volatile"`) {
		t.Errorf("deterministic dump leaked the volatile section:\n%s", out)
	}
	wantValues := []string{
		fmt.Sprintf(`"value": %d`, 3*len("a.first")),
		fmt.Sprintf(`"value": %d`, 3*len("m.middle")),
		fmt.Sprintf(`"value": %d`, 3*len("z.last")),
	}
	for _, wv := range wantValues {
		if !strings.Contains(out, wv) {
			t.Errorf("missing %s in output:\n%s", wv, out)
		}
	}
}

// TestWriteSummaryDeterministic pins WriteSummary's ordering on
// wall-free input: byte-identical across two builds, tracks listed by
// self-time, no non-deterministic wall section.
func TestWriteSummaryDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	buildDeterministicRecorder().WriteSummary(&a)
	buildDeterministicRecorder().WriteSummary(&b)
	if a.String() != b.String() {
		t.Fatalf("WriteSummary not deterministic:\n--- a ---\n%s\n--- b ---\n%s", a.String(), b.String())
	}
	out := a.String()
	if !strings.Contains(out, "== telemetry summary") {
		t.Errorf("missing header:\n%s", out)
	}
	iParse := strings.Index(out, "parse")
	iJoin := strings.Index(out, "join")
	if iParse == -1 || iJoin == -1 || iParse > iJoin {
		t.Errorf("tracks not ordered by self-time (parse 2s > join 1.5s):\n%s", out)
	}
	if strings.Contains(out, "wall-clock profile") {
		t.Errorf("wall-free input produced the wall section:\n%s", out)
	}
}
