package sheet

import (
	"fmt"
	"testing"
)

func BenchmarkParseFormula(b *testing.B) {
	const f = `=IF(B4, SQRT((C1+C2-C4)*(C1+C2-C4) + (D1+D2-D4)*(D1+D2-D4)), "")`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseFormula(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecalcChain(b *testing.B) {
	s := New(nil)
	if err := s.Set("A1", 1); err != nil {
		b.Fatal(err)
	}
	const depth = 200
	for i := 2; i <= depth; i++ {
		if err := s.SetFormula(fmt.Sprintf("A%d", i), fmt.Sprintf("=A%d+1", i-1)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Set("A1", i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRankColumn(b *testing.B) {
	const n = 500
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(nil)
		entries := map[string]any{}
		for r := 1; r <= n; r++ {
			entries[fmt.Sprintf("A%d", r)] = float64((r * 37) % n)
		}
		if err := s.SetBulk(entries); err != nil {
			b.Fatal(err)
		}
		for r := 1; r <= n; r++ {
			if err := s.SetFormula(fmt.Sprintf("B%d", r), fmt.Sprintf("=RANK(A%d, A1:A%d)", r, n)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkBigSum(b *testing.B) {
	s := New(nil)
	entries := map[string]any{}
	for r := 1; r <= 10000; r++ {
		entries[fmt.Sprintf("A%d", r)] = float64(r)
	}
	if err := s.SetBulk(entries); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.SetFormula("B1", "=SUM(A1:A10000)"); err != nil {
			b.Fatal(err)
		}
	}
}
