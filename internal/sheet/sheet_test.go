package sheet

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func newSheet(t *testing.T) *Sheet {
	t.Helper()
	return New(nil)
}

func mustSet(t *testing.T, s *Sheet, ref string, v any) {
	t.Helper()
	if err := s.Set(ref, v); err != nil {
		t.Fatal(err)
	}
}

func mustFormula(t *testing.T, s *Sheet, ref, f string) {
	t.Helper()
	if err := s.SetFormula(ref, f); err != nil {
		t.Fatalf("%s %s: %v", ref, f, err)
	}
}

func num(t *testing.T, s *Sheet, ref string) float64 {
	t.Helper()
	v, err := s.Get(ref)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != Number {
		t.Fatalf("%s = %v (%v), want a number", ref, v, v.Kind)
	}
	return v.Num
}

func TestRefParsing(t *testing.T) {
	cases := map[string]Ref{
		"A1":    {1, 1},
		"B12":   {2, 12},
		"Z9":    {26, 9},
		"AA1":   {27, 1},
		"AB3":   {28, 3},
		"$C$4":  {3, 4},
		" d7 ":  {4, 7},
		"BA100": {53, 100},
	}
	for in, want := range cases {
		got, err := ParseRef(in)
		if err != nil {
			t.Fatalf("ParseRef(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("ParseRef(%q) = %v, want %v", in, got, want)
		}
	}
	for _, bad := range []string{"", "1A", "A0", "A", "7", "A1B", "A-1"} {
		if _, err := ParseRef(bad); err == nil {
			t.Fatalf("ParseRef(%q): expected error", bad)
		}
	}
}

func TestRefStringRoundTrip(t *testing.T) {
	f := func(c, r uint8) bool {
		ref := Ref{Col: 1 + int(c)%100, Row: 1 + int(r)%1000}
		parsed, err := ParseRef(ref.String())
		return err == nil && parsed == ref
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRangeCells(t *testing.T) {
	rg := Range{From: MustRef("A1"), To: MustRef("B2")}
	cells := rg.Cells()
	if len(cells) != 4 || rg.Size() != 4 {
		t.Fatalf("cells = %v", cells)
	}
	// Reversed corners normalize.
	rev := Range{From: MustRef("B2"), To: MustRef("A1")}
	if rev.Size() != 4 {
		t.Fatal("reversed range wrong")
	}
}

func TestLiteralsAndArithmetic(t *testing.T) {
	s := newSheet(t)
	mustSet(t, s, "A1", 2)
	mustSet(t, s, "A2", 3.5)
	mustFormula(t, s, "A3", "=A1+A2*2")
	if got := num(t, s, "A3"); got != 9 {
		t.Fatalf("A3 = %v", got)
	}
	mustFormula(t, s, "A4", "=(A1+A2)*2")
	if got := num(t, s, "A4"); got != 11 {
		t.Fatalf("A4 = %v", got)
	}
	mustFormula(t, s, "A5", "=-A1")
	if got := num(t, s, "A5"); got != -2 {
		t.Fatalf("A5 = %v", got)
	}
}

func TestRecalcPropagates(t *testing.T) {
	s := newSheet(t)
	mustSet(t, s, "A1", 1)
	mustFormula(t, s, "B1", "=A1*10")
	mustFormula(t, s, "C1", "=B1+5")
	if got := num(t, s, "C1"); got != 15 {
		t.Fatalf("C1 = %v", got)
	}
	mustSet(t, s, "A1", 7)
	if got := num(t, s, "C1"); got != 75 {
		t.Fatalf("C1 after edit = %v", got)
	}
}

func TestAggregates(t *testing.T) {
	s := newSheet(t)
	for i := 1; i <= 10; i++ {
		mustSet(t, s, Ref{Col: 1, Row: i}.String(), i)
	}
	mustFormula(t, s, "B1", "=SUM(A1:A10)")
	mustFormula(t, s, "B2", "=COUNT(A1:A10)")
	mustFormula(t, s, "B3", "=AVERAGE(A1:A10)")
	mustFormula(t, s, "B4", "=MIN(A1:A10)")
	mustFormula(t, s, "B5", "=MAX(A1:A10)")
	mustFormula(t, s, "B6", "=MEDIAN(A1:A10)")
	want := map[string]float64{"B1": 55, "B2": 10, "B3": 5.5, "B4": 1, "B5": 10, "B6": 5.5}
	for ref, w := range want {
		if got := num(t, s, ref); got != w {
			t.Fatalf("%s = %v, want %v", ref, got, w)
		}
	}
}

func TestIfAndLogic(t *testing.T) {
	s := newSheet(t)
	mustSet(t, s, "A1", 5)
	mustFormula(t, s, "B1", `=IF(A1>3, "big", "small")`)
	v, _ := s.Get("B1")
	if v.Str != "big" {
		t.Fatalf("B1 = %v", v)
	}
	mustFormula(t, s, "B2", "=AND(A1>3, A1<10)")
	mustFormula(t, s, "B3", "=OR(A1>100, FALSE)")
	mustFormula(t, s, "B4", "=NOT(B3)")
	for ref, want := range map[string]bool{"B2": true, "B3": false, "B4": true} {
		v, _ := s.Get(ref)
		if v.Kind != Boolean || v.Bool != want {
			t.Fatalf("%s = %v", ref, v)
		}
	}
}

func TestStringsAndConcat(t *testing.T) {
	s := newSheet(t)
	mustSet(t, s, "A1", "fire")
	mustFormula(t, s, "B1", `=A1 & "-" & 2024`)
	v, _ := s.Get("B1")
	if v.Str != "fire-2024" {
		t.Fatalf("B1 = %v", v)
	}
	mustFormula(t, s, "B2", `=LEN(B1)`)
	if got := num(t, s, "B2"); got != 9 {
		t.Fatalf("LEN = %v", got)
	}
	mustFormula(t, s, "B3", `="a ""quoted"" word"`)
	v, _ = s.Get("B3")
	if v.Str != `a "quoted" word` {
		t.Fatalf("B3 = %q", v.Str)
	}
}

func TestComparisonsAndErrors(t *testing.T) {
	s := newSheet(t)
	mustSet(t, s, "A1", 4)
	mustFormula(t, s, "B1", "=A1/0")
	v, _ := s.Get("B1")
	if !v.IsErr() || !strings.Contains(v.Err, "#DIV/0!") {
		t.Fatalf("B1 = %v", v)
	}
	// Errors propagate.
	mustFormula(t, s, "B2", "=B1+1")
	v, _ = s.Get("B2")
	if !v.IsErr() {
		t.Fatalf("B2 = %v", v)
	}
	mustFormula(t, s, "B3", "=SQRT(-1)")
	v, _ = s.Get("B3")
	if !v.IsErr() || !strings.Contains(v.Err, "#NUM!") {
		t.Fatalf("B3 = %v", v)
	}
	mustFormula(t, s, "B4", `="text"+1`)
	v, _ = s.Get("B4")
	if !v.IsErr() {
		t.Fatalf("B4 = %v", v)
	}
}

func TestCycleDetection(t *testing.T) {
	s := newSheet(t)
	mustFormula(t, s, "A1", "=B1+1")
	mustFormula(t, s, "B1", "=A1+1")
	for _, ref := range []string{"A1", "B1"} {
		v, _ := s.Get(ref)
		if !v.IsErr() || !strings.Contains(v.Err, "#CYCLE!") {
			t.Fatalf("%s = %v", ref, v)
		}
	}
	// Breaking the cycle heals both cells.
	mustSet(t, s, "B1", 10)
	if got := num(t, s, "A1"); got != 11 {
		t.Fatalf("A1 after healing = %v", got)
	}
}

func TestSelfReferenceCycle(t *testing.T) {
	s := newSheet(t)
	mustFormula(t, s, "A1", "=A1+1")
	v, _ := s.Get("A1")
	if !v.IsErr() || !strings.Contains(v.Err, "#CYCLE!") {
		t.Fatalf("A1 = %v", v)
	}
}

func TestVlookup(t *testing.T) {
	s := newSheet(t)
	// A small two-column table: key in A, value in B.
	rows := map[string]any{
		"A1": "ann", "B1": 31,
		"A2": "bob", "B2": 42,
		"A3": "cat", "B3": 53,
	}
	if err := s.SetBulk(rows); err != nil {
		t.Fatal(err)
	}
	mustFormula(t, s, "D1", `=VLOOKUP("bob", A1:B3, 2)`)
	if got := num(t, s, "D1"); got != 42 {
		t.Fatalf("VLOOKUP = %v", got)
	}
	mustFormula(t, s, "D2", `=VLOOKUP("zed", A1:B3, 2)`)
	v, _ := s.Get("D2")
	if !v.IsErr() || !strings.Contains(v.Err, "#N/A") {
		t.Fatalf("D2 = %v", v)
	}
	mustFormula(t, s, "D3", `=VLOOKUP("ann", A1:B3, 5)`)
	v, _ = s.Get("D3")
	if !v.IsErr() || !strings.Contains(v.Err, "#REF!") {
		t.Fatalf("D3 = %v", v)
	}
}

func TestRank(t *testing.T) {
	s := newSheet(t)
	vals := []float64{7, 3, 9, 1}
	for i, v := range vals {
		mustSet(t, s, Ref{Col: 1, Row: i + 1}.String(), v)
	}
	for i := range vals {
		mustFormula(t, s, Ref{Col: 2, Row: i + 1}.String(),
			"=RANK("+Ref{Col: 1, Row: i + 1}.String()+", A1:A4)")
	}
	wants := []float64{3, 2, 4, 1}
	for i, w := range wants {
		if got := num(t, s, Ref{Col: 2, Row: i + 1}.String()); got != w {
			t.Fatalf("rank %d = %v, want %v", i+1, got, w)
		}
	}
	mustFormula(t, s, "C1", "=RANK(999, A1:A4)")
	v, _ := s.Get("C1")
	if !v.IsErr() {
		t.Fatalf("C1 = %v", v)
	}
}

func TestFormulaParseErrors(t *testing.T) {
	s := newSheet(t)
	bad := []string{
		"SUM(A1)",      // missing '='
		"=SUM(A1",      // missing ')'
		"=A1 +",        // dangling operator
		"=FOO(1)",      // unknown function evaluates to error value...
		`="unclosed`,   // unterminated string
		"=1 2",         // trailing token
		"=RANK(1, A1)", // non-range second arg
		"=#",           // bad character
	}
	for _, f := range bad {
		err := s.SetFormula("Z9", f)
		if err == nil {
			// Unknown functions and arity errors surface as error
			// values instead.
			v, _ := s.Get("Z9")
			if !v.IsErr() {
				t.Fatalf("formula %q neither failed nor produced an error value (got %v)", f, v)
			}
		}
	}
}

func TestClockAdvancesWithWork(t *testing.T) {
	s := newSheet(t)
	before := s.Elapsed()
	mustSet(t, s, "A1", 1)
	afterSet := s.Elapsed()
	if afterSet <= before {
		t.Fatal("Set charged nothing")
	}
	mustFormula(t, s, "B1", "=SUM(A1:A1000)")
	afterBig := s.Elapsed()
	mustFormula(t, s, "C1", "=A1+1")
	afterSmall := s.Elapsed()
	if (afterBig - afterSet) <= (afterSmall - afterBig) {
		t.Fatal("a 1000-cell SUM should cost more than a single addition")
	}
	if s.Evals() == 0 {
		t.Fatal("no evaluations counted")
	}
}

func TestSetBulkThenRecalcAll(t *testing.T) {
	s := newSheet(t)
	mustFormula(t, s, "B1", "=SUM(A1:A5)")
	entries := map[string]any{}
	for i := 1; i <= 5; i++ {
		entries[Ref{Col: 1, Row: i}.String()] = i
	}
	if err := s.SetBulk(entries); err != nil {
		t.Fatal(err)
	}
	// Bulk load does not recalc; the formula is stale until F9.
	s.RecalcAll()
	if got := num(t, s, "B1"); got != 15 {
		t.Fatalf("B1 after RecalcAll = %v", got)
	}
}

func TestFormulaSourcePreserved(t *testing.T) {
	s := newSheet(t)
	mustFormula(t, s, "A1", "=1+2")
	src, err := s.Formula("A1")
	if err != nil || src != "=1+2" {
		t.Fatalf("Formula = %q, %v", src, err)
	}
	if src, _ := s.Formula("Z99"); src != "" {
		t.Fatal("unset cell should have no formula")
	}
}

func TestPropertySumMatchesDirect(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		s := New(nil)
		n := 1 + r.Intn(50)
		var want float64
		entries := map[string]any{}
		for i := 1; i <= n; i++ {
			v := r.Range(-100, 100)
			entries[Ref{Col: 1, Row: i}.String()] = v
			want += v
		}
		if err := s.SetBulk(entries); err != nil {
			return false
		}
		if err := s.SetFormula("B1", "=SUM(A1:A"+Ref{Col: 1, Row: n}.String()[1:]+")"); err != nil {
			return false
		}
		v, err := s.Get("B1")
		if err != nil || v.Kind != Number {
			return false
		}
		diff := v.Num - want
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
