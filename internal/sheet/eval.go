package sheet

import (
	"fmt"
	"math"
	"sort"
)

// evalCtx supplies cell values and accounts evaluation effort.
type evalCtx struct {
	get   func(Ref) Value
	cells int // cell reads performed (drives the cost model)
	ops   int // AST nodes evaluated
}

// eval computes an expression. Spreadsheet error values propagate, Go
// errors signal malformed formulas (wrong arity etc.) and are turned
// into error values by the caller.
func (ec *evalCtx) eval(e Expr) (Value, error) {
	ec.ops++
	switch e := e.(type) {
	case litExpr:
		return e.v, nil
	case refExpr:
		ec.cells++
		return ec.get(e.r), nil
	case rangeExpr:
		return Value{}, fmt.Errorf("#VALUE! range used outside a function")
	case negExpr:
		v, err := ec.eval(e.e)
		if err != nil {
			return Value{}, err
		}
		if v.IsErr() {
			return v, nil
		}
		f, err := v.AsNumber()
		if err != nil {
			return Errf("%v", err), nil
		}
		return Num(-f), nil
	case binExpr:
		return ec.evalBinary(e)
	case callExpr:
		return ec.evalCall(e)
	default:
		return Value{}, fmt.Errorf("sheet: unknown expression %T", e)
	}
}

func (ec *evalCtx) evalBinary(e binExpr) (Value, error) {
	l, err := ec.eval(e.l)
	if err != nil {
		return Value{}, err
	}
	if l.IsErr() {
		return l, nil
	}
	r, err := ec.eval(e.r)
	if err != nil {
		return Value{}, err
	}
	if r.IsErr() {
		return r, nil
	}
	switch e.op {
	case "&":
		return Str(l.String() + r.String()), nil
	case "=":
		return Bool(l.Equal(r)), nil
	case "<>":
		return Bool(!l.Equal(r)), nil
	}
	// The remaining operators are numeric (comparisons compare text
	// lexicographically when both sides are text).
	if (e.op == "<" || e.op == "<=" || e.op == ">" || e.op == ">=") &&
		l.Kind == Text && r.Kind == Text {
		switch e.op {
		case "<":
			return Bool(l.Str < r.Str), nil
		case "<=":
			return Bool(l.Str <= r.Str), nil
		case ">":
			return Bool(l.Str > r.Str), nil
		default:
			return Bool(l.Str >= r.Str), nil
		}
	}
	lf, err := l.AsNumber()
	if err != nil {
		return Errf("%v", err), nil
	}
	rf, err := r.AsNumber()
	if err != nil {
		return Errf("%v", err), nil
	}
	switch e.op {
	case "+":
		return Num(lf + rf), nil
	case "-":
		return Num(lf - rf), nil
	case "*":
		return Num(lf * rf), nil
	case "/":
		if rf == 0 {
			return Errf("#DIV/0!"), nil
		}
		return Num(lf / rf), nil
	case "<":
		return Bool(lf < rf), nil
	case "<=":
		return Bool(lf <= rf), nil
	case ">":
		return Bool(lf > rf), nil
	case ">=":
		return Bool(lf >= rf), nil
	default:
		return Value{}, fmt.Errorf("sheet: unknown operator %q", e.op)
	}
}

// argValues evaluates non-range args, flattening ranges into the value
// list (the aggregation-function convention).
func (ec *evalCtx) argValues(args []Expr) ([]Value, Value, error) {
	var out []Value
	for _, a := range args {
		if rg, ok := a.(rangeExpr); ok {
			for _, ref := range rg.rg.Cells() {
				ec.cells++
				v := ec.get(ref)
				if v.IsErr() {
					return nil, v, nil
				}
				out = append(out, v)
			}
			continue
		}
		v, err := ec.eval(a)
		if err != nil {
			return nil, Value{}, err
		}
		if v.IsErr() {
			return nil, v, nil
		}
		out = append(out, v)
	}
	return out, Value{}, nil
}

// numbersOf filters values to numbers (skipping empties and text, as
// SUM does).
func numbersOf(vals []Value) []float64 {
	var out []float64
	for _, v := range vals {
		if v.Kind == Number {
			out = append(out, v.Num)
		}
	}
	return out
}

func (ec *evalCtx) evalCall(e callExpr) (Value, error) {
	switch e.name {
	case "IF":
		if len(e.args) != 3 {
			return Value{}, fmt.Errorf("sheet: IF takes 3 arguments, got %d", len(e.args))
		}
		cond, err := ec.eval(e.args[0])
		if err != nil {
			return Value{}, err
		}
		if cond.IsErr() {
			return cond, nil
		}
		truthy := false
		switch cond.Kind {
		case Boolean:
			truthy = cond.Bool
		case Number:
			truthy = cond.Num != 0
		case Empty:
		default:
			return Errf("#VALUE! IF condition is %s", cond.String()), nil
		}
		if truthy {
			return ec.eval(e.args[1])
		}
		return ec.eval(e.args[2])
	case "AND", "OR":
		vals, errv, err := ec.argValues(e.args)
		if err != nil {
			return Value{}, err
		}
		if errv.IsErr() {
			return errv, nil
		}
		res := e.name == "AND"
		for _, v := range vals {
			b := v.Kind == Boolean && v.Bool || v.Kind == Number && v.Num != 0
			if e.name == "AND" {
				res = res && b
			} else {
				res = res || b
			}
		}
		return Bool(res), nil
	case "NOT":
		if len(e.args) != 1 {
			return Value{}, fmt.Errorf("sheet: NOT takes 1 argument")
		}
		v, err := ec.eval(e.args[0])
		if err != nil {
			return Value{}, err
		}
		if v.IsErr() {
			return v, nil
		}
		return Bool(!(v.Kind == Boolean && v.Bool || v.Kind == Number && v.Num != 0)), nil
	case "SUM", "COUNT", "AVERAGE", "MIN", "MAX":
		vals, errv, err := ec.argValues(e.args)
		if err != nil {
			return Value{}, err
		}
		if errv.IsErr() {
			return errv, nil
		}
		nums := numbersOf(vals)
		switch e.name {
		case "SUM":
			s := 0.0
			for _, f := range nums {
				s += f
			}
			return Num(s), nil
		case "COUNT":
			return Num(float64(len(nums))), nil
		case "AVERAGE":
			if len(nums) == 0 {
				return Errf("#DIV/0!"), nil
			}
			s := 0.0
			for _, f := range nums {
				s += f
			}
			return Num(s / float64(len(nums))), nil
		case "MIN", "MAX":
			if len(nums) == 0 {
				return Num(0), nil
			}
			best := nums[0]
			for _, f := range nums[1:] {
				if e.name == "MIN" && f < best || e.name == "MAX" && f > best {
					best = f
				}
			}
			return Num(best), nil
		}
	case "ABS", "SQRT", "ROUND", "LEN":
		if len(e.args) < 1 {
			return Value{}, fmt.Errorf("sheet: %s needs an argument", e.name)
		}
		v, err := ec.eval(e.args[0])
		if err != nil {
			return Value{}, err
		}
		if v.IsErr() {
			return v, nil
		}
		if e.name == "LEN" {
			return Num(float64(len(v.String()))), nil
		}
		f, nerr := v.AsNumber()
		if nerr != nil {
			return Errf("%v", nerr), nil
		}
		switch e.name {
		case "ABS":
			return Num(math.Abs(f)), nil
		case "SQRT":
			if f < 0 {
				return Errf("#NUM! SQRT of negative"), nil
			}
			return Num(math.Sqrt(f)), nil
		case "ROUND":
			digits := 0.0
			if len(e.args) > 1 {
				d, err := ec.eval(e.args[1])
				if err != nil {
					return Value{}, err
				}
				if d.IsErr() {
					return d, nil
				}
				digits, nerr = d.AsNumber()
				if nerr != nil {
					return Errf("%v", nerr), nil
				}
			}
			scale := math.Pow(10, digits)
			return Num(math.Round(f*scale) / scale), nil
		}
	case "RANK":
		// RANK(value, range): 1-based rank of value among the range's
		// numbers, ascending (1 = smallest). Evaluating it reads the
		// whole range — the O(n) per cell that makes spreadsheet
		// ranking O(n^2) overall.
		if len(e.args) != 2 {
			return Value{}, fmt.Errorf("sheet: RANK takes 2 arguments")
		}
		target, err := ec.eval(e.args[0])
		if err != nil {
			return Value{}, err
		}
		if target.IsErr() {
			return target, nil
		}
		tf, nerr := target.AsNumber()
		if nerr != nil {
			return Errf("%v", nerr), nil
		}
		rg, ok := e.args[1].(rangeExpr)
		if !ok {
			return Value{}, fmt.Errorf("sheet: RANK's second argument must be a range")
		}
		rank := 1
		found := false
		for _, ref := range rg.rg.Cells() {
			ec.cells++
			v := ec.get(ref)
			if v.IsErr() {
				return v, nil
			}
			if v.Kind != Number {
				continue
			}
			if v.Num < tf {
				rank++
			}
			if v.Num == tf {
				found = true
			}
		}
		if !found {
			return Errf("#N/A RANK value not in range"), nil
		}
		return Num(float64(rank)), nil
	case "VLOOKUP":
		// VLOOKUP(key, range, colIndex): exact-match scan down the
		// range's first column, returning the colIndex-th column of
		// the matching row.
		if len(e.args) != 3 {
			return Value{}, fmt.Errorf("sheet: VLOOKUP takes 3 arguments")
		}
		key, err := ec.eval(e.args[0])
		if err != nil {
			return Value{}, err
		}
		if key.IsErr() {
			return key, nil
		}
		rg, ok := e.args[1].(rangeExpr)
		if !ok {
			return Value{}, fmt.Errorf("sheet: VLOOKUP's second argument must be a range")
		}
		ci, err := ec.eval(e.args[2])
		if err != nil {
			return Value{}, err
		}
		colOff, nerr := ci.AsNumber()
		if nerr != nil {
			return Errf("%v", nerr), nil
		}
		col := int(colOff)
		from, to := rg.rg.From, rg.rg.To
		if from.Row > to.Row {
			from, to = to, from
		}
		width := to.Col - from.Col + 1
		if col < 1 || col > width {
			return Errf("#REF! VLOOKUP column %d outside range width %d", col, width), nil
		}
		for row := from.Row; row <= to.Row; row++ {
			ec.cells++
			v := ec.get(Ref{Col: from.Col, Row: row})
			if v.Equal(key) {
				ec.cells++
				return ec.get(Ref{Col: from.Col + col - 1, Row: row}), nil
			}
		}
		return Errf("#N/A VLOOKUP key %s not found", key.String()), nil
	case "MEDIAN":
		vals, errv, err := ec.argValues(e.args)
		if err != nil {
			return Value{}, err
		}
		if errv.IsErr() {
			return errv, nil
		}
		nums := numbersOf(vals)
		if len(nums) == 0 {
			return Errf("#NUM! MEDIAN of nothing"), nil
		}
		sort.Float64s(nums)
		mid := len(nums) / 2
		if len(nums)%2 == 1 {
			return Num(nums[mid]), nil
		}
		return Num((nums[mid-1] + nums[mid]) / 2), nil
	}
	return Value{}, fmt.Errorf("sheet: unknown function %s", e.name)
}
