// Package sheet implements the third platform paradigm the paper's
// introduction names alongside scripts and GUI workflows: spreadsheets.
// It is a formula-evaluating spreadsheet engine — A1-style references,
// an expression language with ranges and built-in functions, a
// dependency graph with cycle detection, and eager recalculation —
// plus the same virtual-clock cost accounting as the other two
// engines, so the paradigm can join the comparison as an extension
// experiment (the paper's stated future work).
package sheet

import (
	"fmt"
	"strings"
)

// Ref addresses one cell: 1-based column and row ("A1" is {1,1}).
type Ref struct {
	Col int
	Row int
}

// ParseRef parses an A1-style reference such as "B12" or "$C$4"
// (dollar anchors are accepted and ignored — the engine has no
// fill/copy semantics).
func ParseRef(s string) (Ref, error) {
	orig := s
	s = strings.ReplaceAll(strings.ToUpper(strings.TrimSpace(s)), "$", "")
	i := 0
	col := 0
	for i < len(s) && s[i] >= 'A' && s[i] <= 'Z' {
		col = col*26 + int(s[i]-'A'+1)
		i++
	}
	if i == 0 {
		return Ref{}, fmt.Errorf("sheet: reference %q has no column letters", orig)
	}
	row := 0
	if i == len(s) {
		return Ref{}, fmt.Errorf("sheet: reference %q has no row number", orig)
	}
	for ; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return Ref{}, fmt.Errorf("sheet: bad reference %q", orig)
		}
		row = row*10 + int(s[i]-'0')
	}
	if row == 0 {
		return Ref{}, fmt.Errorf("sheet: row numbers start at 1 in %q", orig)
	}
	return Ref{Col: col, Row: row}, nil
}

// MustRef is ParseRef that panics; for statically known references.
func MustRef(s string) Ref {
	r, err := ParseRef(s)
	if err != nil {
		panic(err)
	}
	return r
}

// String renders the reference in A1 style.
func (r Ref) String() string {
	col := ""
	c := r.Col
	for c > 0 {
		c--
		col = string(rune('A'+c%26)) + col
		c /= 26
	}
	return fmt.Sprintf("%s%d", col, r.Row)
}

// Range is a rectangular block of cells, inclusive on both corners.
type Range struct {
	From, To Ref
}

// Cells enumerates the range's references in row-major order.
func (rg Range) Cells() []Ref {
	c1, c2 := rg.From.Col, rg.To.Col
	if c1 > c2 {
		c1, c2 = c2, c1
	}
	r1, r2 := rg.From.Row, rg.To.Row
	if r1 > r2 {
		r1, r2 = r2, r1
	}
	out := make([]Ref, 0, (c2-c1+1)*(r2-r1+1))
	for r := r1; r <= r2; r++ {
		for c := c1; c <= c2; c++ {
			out = append(out, Ref{Col: c, Row: r})
		}
	}
	return out
}

// Size returns the number of cells covered.
func (rg Range) Size() int {
	return len(rg.Cells())
}
