package sheet

import (
	"fmt"
	"sort"

	"repro/internal/cost"
)

// Calibrated evaluation costs: a spreadsheet engine's recalculation is
// native code, but each formula node still pays interpretation and
// each cell read a dependency-tracking overhead. Per-cell-read cost is
// what makes O(n)-per-formula constructs (RANK, VLOOKUP) quadratic
// over a column of them — the paradigm's scaling wall.
var (
	workPerNode     = cost.Work{Interp: 1.6e-6, Mem: 0.4e-6}
	workPerCellRead = cost.Work{Interp: 0.8e-6, Mem: 0.4e-6}
	workPerEntry    = cost.Work{Interp: 4e-6, Mem: 1e-6} // setting one cell
)

type cellState struct {
	formula Expr
	src     string
	value   Value
}

// rangeDep records that dep's formula reads the whole range. Keeping
// ranges intact (rather than exploding them into per-cell edges) keeps
// the dependency graph linear in the number of formulas even when a
// column of RANK formulas each reads the whole column.
type rangeDep struct {
	rg  Range
	dep Ref
}

// Sheet is one spreadsheet: cells, their formulas, a dependency graph
// and a virtual clock. The zero value is not usable; call New.
type Sheet struct {
	model *cost.Model
	cells map[Ref]*cellState
	// dependents maps a cell to the cells whose formulas read it via a
	// point reference.
	dependents map[Ref]map[Ref]bool
	// rangeDeps holds range reads (aggregations, lookups, ranks).
	rangeDeps []rangeDep
	elapsed   float64
	evals     int64
}

// New creates an empty sheet. A nil model uses cost.Default(). The
// application startup cost is charged immediately.
func New(model *cost.Model) *Sheet {
	if model == nil {
		model = cost.Default()
	}
	return &Sheet{
		model:      model,
		cells:      make(map[Ref]*cellState),
		dependents: make(map[Ref]map[Ref]bool),
		elapsed:    model.ControlOverhead,
	}
}

// Elapsed returns the simulated seconds spent so far.
func (s *Sheet) Elapsed() float64 { return s.elapsed }

// Evals returns the number of formula evaluations performed.
func (s *Sheet) Evals() int64 { return s.evals }

// charge adds work to the clock.
func (s *Sheet) charge(w cost.Work) {
	s.elapsed += w.Seconds(cost.Python) // formulas cost like interpreted code
}

// Set stores a literal value (number, string or bool) and eagerly
// recalculates everything downstream, as interactive spreadsheets do.
func (s *Sheet) Set(ref string, v any) error {
	r, err := ParseRef(ref)
	if err != nil {
		return err
	}
	var val Value
	switch v := v.(type) {
	case float64:
		val = Num(v)
	case int:
		val = Num(float64(v))
	case int64:
		val = Num(float64(v))
	case string:
		val = Str(v)
	case bool:
		val = Bool(v)
	default:
		return fmt.Errorf("sheet: unsupported literal type %T", v)
	}
	s.detach(r)
	s.cells[r] = &cellState{value: val}
	s.charge(workPerEntry)
	return s.recalcFrom(r)
}

// SetFormula parses and stores a formula ("=SUM(A1:A9)") and eagerly
// recalculates the cell and everything downstream.
func (s *Sheet) SetFormula(ref, formula string) error {
	r, err := ParseRef(ref)
	if err != nil {
		return err
	}
	e, err := ParseFormula(formula)
	if err != nil {
		return err
	}
	s.detach(r)
	s.cells[r] = &cellState{formula: e, src: formula}
	points, ranges := e.deps(nil, nil)
	for _, dep := range points {
		m := s.dependents[dep]
		if m == nil {
			m = make(map[Ref]bool)
			s.dependents[dep] = m
		}
		m[r] = true
	}
	for _, rg := range ranges {
		s.rangeDeps = append(s.rangeDeps, rangeDep{rg: rg, dep: r})
	}
	s.charge(workPerEntry)
	return s.recalcFrom(r)
}

// detach removes r's outgoing dependency edges before a rewrite.
func (s *Sheet) detach(r Ref) {
	old, ok := s.cells[r]
	if !ok || old.formula == nil {
		return
	}
	points, _ := old.formula.deps(nil, nil)
	for _, dep := range points {
		delete(s.dependents[dep], r)
	}
	kept := s.rangeDeps[:0]
	for _, rd := range s.rangeDeps {
		if rd.dep != r {
			kept = append(kept, rd)
		}
	}
	s.rangeDeps = kept
}

// dependentsOf returns the distinct cells whose formulas read r,
// through point references or covering ranges. Point dependents come
// out of a map, so they are sorted into (row, col) order before the
// deterministic range-dependency suffix — recalculation visits cells
// in the same order on every run.
func (s *Sheet) dependentsOf(r Ref) []Ref {
	seen := map[Ref]bool{}
	var out []Ref
	for d := range s.dependents[r] {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Row != out[j].Row {
			return out[i].Row < out[j].Row
		}
		return out[i].Col < out[j].Col
	})
	for _, rd := range s.rangeDeps {
		if rd.rg.contains(r) && !seen[rd.dep] {
			seen[rd.dep] = true
			out = append(out, rd.dep)
		}
	}
	return out
}

// Get returns a cell's current value (Empty for unset cells).
func (s *Sheet) Get(ref string) (Value, error) {
	r, err := ParseRef(ref)
	if err != nil {
		return Value{}, err
	}
	return s.valueOf(r), nil
}

func (s *Sheet) valueOf(r Ref) Value {
	if c, ok := s.cells[r]; ok {
		return c.value
	}
	return Value{}
}

// Formula returns the source of a cell's formula, or "" for literals
// and unset cells.
func (s *Sheet) Formula(ref string) (string, error) {
	r, err := ParseRef(ref)
	if err != nil {
		return "", err
	}
	if c, ok := s.cells[r]; ok {
		return c.src, nil
	}
	return "", nil
}

// affected returns r plus everything transitively downstream of it, in
// dependency order; cyclic cells are returned in the second list.
func (s *Sheet) affected(start Ref) (order []Ref, cyclic []Ref) {
	// Collect the downstream subgraph.
	sub := map[Ref]bool{start: true}
	queue := []Ref{start}
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		for _, d := range s.dependentsOf(r) {
			if !sub[d] {
				sub[d] = true
				queue = append(queue, d)
			}
		}
	}
	// Kahn's algorithm restricted to the subgraph; in-degree counts
	// only edges inside it.
	indeg := map[Ref]int{}
	for r := range sub {
		indeg[r] = 0
	}
	for r := range sub {
		for _, d := range s.dependentsOf(r) {
			if sub[d] {
				indeg[d]++
			}
		}
	}
	var ready []Ref
	for r, n := range indeg {
		if n == 0 {
			ready = append(ready, r)
		}
	}
	sortRefs(ready)
	for len(ready) > 0 {
		r := ready[0]
		ready = ready[1:]
		order = append(order, r)
		var next []Ref
		for _, d := range s.dependentsOf(r) {
			if !sub[d] {
				continue
			}
			indeg[d]--
			if indeg[d] == 0 {
				next = append(next, d)
			}
		}
		sortRefs(next)
		ready = append(ready, next...)
	}
	if len(order) < len(sub) {
		for r := range sub {
			if indeg[r] > 0 {
				cyclic = append(cyclic, r)
			}
		}
		sortRefs(cyclic)
	}
	return order, cyclic
}

func sortRefs(rs []Ref) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Row != rs[j].Row {
			return rs[i].Row < rs[j].Row
		}
		return rs[i].Col < rs[j].Col
	})
}

// recalcFrom re-evaluates start and its downstream cells. Cells on a
// dependency cycle get #CYCLE! error values instead of looping.
func (s *Sheet) recalcFrom(start Ref) error {
	order, cyclic := s.affected(start)
	for _, r := range cyclic {
		if c, ok := s.cells[r]; ok {
			c.value = Errf("#CYCLE!")
		}
	}
	for _, r := range order {
		c, ok := s.cells[r]
		if !ok || c.formula == nil {
			continue
		}
		ec := &evalCtx{get: s.valueOf}
		v, err := ec.eval(c.formula)
		if err != nil {
			// Malformed usage (bad arity, range misuse) becomes an
			// error value, like real spreadsheets.
			v = Errf("#ERROR! %v", err)
		}
		c.value = v
		s.evals++
		s.charge(workPerNode.Scale(float64(ec.ops)))
		s.charge(workPerCellRead.Scale(float64(ec.cells)))
	}
	return nil
}

// RecalcAll re-evaluates every formula on the sheet (the F9 key),
// useful after bulk loading with SetBulk.
func (s *Sheet) RecalcAll() {
	var roots []Ref
	for r, c := range s.cells {
		if c.formula != nil {
			roots = append(roots, r)
		}
	}
	sortRefs(roots)
	// A full pass: evaluate in dependency order by running affected()
	// from a virtual root — simply topo-order all formula cells.
	visited := map[Ref]bool{}
	for _, r := range roots {
		if visited[r] {
			continue
		}
		order, cyclic := s.affected(r)
		for _, c := range cyclic {
			if cs, ok := s.cells[c]; ok {
				cs.value = Errf("#CYCLE!")
				visited[c] = true
			}
		}
		for _, o := range order {
			visited[o] = true
		}
		if err := s.recalcFrom(r); err != nil {
			return
		}
	}
}

// SetBulk loads many literals without intermediate recalculation — the
// paste path. One RecalcAll afterwards brings formulas up to date.
func (s *Sheet) SetBulk(entries map[string]any) error {
	for ref, v := range entries {
		r, err := ParseRef(ref)
		if err != nil {
			return err
		}
		var val Value
		switch v := v.(type) {
		case float64:
			val = Num(v)
		case int:
			val = Num(float64(v))
		case int64:
			val = Num(float64(v))
		case string:
			val = Str(v)
		case bool:
			val = Bool(v)
		default:
			return fmt.Errorf("sheet: unsupported literal type %T", v)
		}
		s.detach(r)
		s.cells[r] = &cellState{value: val}
		s.charge(workPerEntry)
	}
	return nil
}
