package sheet

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// The property: a randomly generated arithmetic formula over literal
// cells evaluates to the same number as direct Go evaluation of the
// same expression tree.

type genExpr struct {
	text  string
	value float64
	ok    bool // false when the expression divides by zero somewhere
}

// genArith builds a random expression of the given depth over cells
// A1..A9 (pre-set to known values) and literals.
func genArith(r *xrand.Rand, depth int, cells []float64) genExpr {
	if depth == 0 || r.Bool(0.3) {
		if r.Bool(0.5) {
			i := r.Intn(len(cells))
			return genExpr{text: Ref{Col: 1, Row: i + 1}.String(), value: cells[i], ok: true}
		}
		v := float64(r.Intn(19) - 9)
		return genExpr{text: fmt.Sprintf("%g", v), value: v, ok: true}
	}
	l := genArith(r, depth-1, cells)
	rt := genArith(r, depth-1, cells)
	switch r.Intn(5) {
	case 0:
		return genExpr{text: "(" + l.text + "+" + rt.text + ")", value: l.value + rt.value, ok: l.ok && rt.ok}
	case 1:
		return genExpr{text: "(" + l.text + "-" + rt.text + ")", value: l.value - rt.value, ok: l.ok && rt.ok}
	case 2:
		return genExpr{text: "(" + l.text + "*" + rt.text + ")", value: l.value * rt.value, ok: l.ok && rt.ok}
	case 3:
		ok := l.ok && rt.ok && rt.value != 0
		var v float64
		if ok {
			v = l.value / rt.value
		}
		return genExpr{text: "(" + l.text + "/" + rt.text + ")", value: v, ok: ok}
	default:
		return genExpr{text: "-(" + l.text + ")", value: -l.value, ok: l.ok}
	}
}

func TestPropertyRandomArithmetic(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		s := New(nil)
		cells := make([]float64, 9)
		entries := map[string]any{}
		for i := range cells {
			cells[i] = float64(r.Intn(21) - 10)
			entries[Ref{Col: 1, Row: i + 1}.String()] = cells[i]
		}
		if err := s.SetBulk(entries); err != nil {
			return false
		}
		e := genArith(r, 1+r.Intn(4), cells)
		if err := s.SetFormula("Z1", "="+e.text); err != nil {
			t.Logf("seed %d: formula %q failed to parse: %v", seed, e.text, err)
			return false
		}
		v, err := s.Get("Z1")
		if err != nil {
			return false
		}
		if !e.ok {
			return v.IsErr() // division by zero must surface as an error value
		}
		if v.Kind != Number {
			t.Logf("seed %d: formula %q gave %v, want %g", seed, e.text, v, e.value)
			return false
		}
		if math.Abs(v.Num-e.value) > 1e-9*math.Max(1, math.Abs(e.value)) {
			t.Logf("seed %d: formula %q = %g, want %g", seed, e.text, v.Num, e.value)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEditPropagationConsistent(t *testing.T) {
	// Editing inputs after building a formula chain must give the same
	// values as building the chain on the final inputs directly.
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		build := func(a, b float64) (*Sheet, error) {
			s := New(nil)
			if err := s.Set("A1", a); err != nil {
				return nil, err
			}
			if err := s.Set("A2", b); err != nil {
				return nil, err
			}
			if err := s.SetFormula("B1", "=A1*2+A2"); err != nil {
				return nil, err
			}
			if err := s.SetFormula("B2", "=B1-A1"); err != nil {
				return nil, err
			}
			if err := s.SetFormula("B3", "=SUM(B1:B2)"); err != nil {
				return nil, err
			}
			return s, nil
		}
		a0, b0 := r.Range(-50, 50), r.Range(-50, 50)
		a1, b1 := r.Range(-50, 50), r.Range(-50, 50)
		edited, err := build(a0, b0)
		if err != nil {
			return false
		}
		if err := edited.Set("A1", a1); err != nil {
			return false
		}
		if err := edited.Set("A2", b1); err != nil {
			return false
		}
		fresh, err := build(a1, b1)
		if err != nil {
			return false
		}
		for _, ref := range []string{"B1", "B2", "B3"} {
			ev, _ := edited.Get(ref)
			fv, _ := fresh.Get(ref)
			if ev.Kind != Number || fv.Kind != Number || ev.Num != fv.Num {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
