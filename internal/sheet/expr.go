package sheet

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is a parsed formula expression.
type Expr interface {
	// refs appends the cell references the expression reads.
	refs(out []Ref) []Ref
	// deps appends the expression's point and range dependencies
	// separately, so the sheet can index range reads without exploding
	// them into per-cell graph edges.
	deps(points []Ref, ranges []Range) ([]Ref, []Range)
	// nodes counts AST nodes, the evaluator's base cost unit.
	nodes() int
}

type litExpr struct{ v Value }
type refExpr struct{ r Ref }
type rangeExpr struct{ rg Range }
type callExpr struct {
	name string
	args []Expr
}
type binExpr struct {
	op   string
	l, r Expr
}
type negExpr struct{ e Expr }

func (e litExpr) refs(out []Ref) []Ref { return out }
func (e refExpr) refs(out []Ref) []Ref { return append(out, e.r) }
func (e rangeExpr) refs(out []Ref) []Ref {
	return append(out, e.rg.Cells()...)
}
func (e callExpr) refs(out []Ref) []Ref {
	for _, a := range e.args {
		out = a.refs(out)
	}
	return out
}
func (e binExpr) refs(out []Ref) []Ref { return e.r.refs(e.l.refs(out)) }
func (e negExpr) refs(out []Ref) []Ref { return e.e.refs(out) }

func (e litExpr) deps(p []Ref, r []Range) ([]Ref, []Range) { return p, r }
func (e refExpr) deps(p []Ref, r []Range) ([]Ref, []Range) { return append(p, e.r), r }
func (e rangeExpr) deps(p []Ref, r []Range) ([]Ref, []Range) {
	return p, append(r, e.rg)
}
func (e callExpr) deps(p []Ref, r []Range) ([]Ref, []Range) {
	for _, a := range e.args {
		p, r = a.deps(p, r)
	}
	return p, r
}
func (e binExpr) deps(p []Ref, r []Range) ([]Ref, []Range) {
	p, r = e.l.deps(p, r)
	return e.r.deps(p, r)
}
func (e negExpr) deps(p []Ref, r []Range) ([]Ref, []Range) { return e.e.deps(p, r) }

// contains reports whether the range covers the reference.
func (rg Range) contains(r Ref) bool {
	c1, c2 := rg.From.Col, rg.To.Col
	if c1 > c2 {
		c1, c2 = c2, c1
	}
	r1, r2 := rg.From.Row, rg.To.Row
	if r1 > r2 {
		r1, r2 = r2, r1
	}
	return r.Col >= c1 && r.Col <= c2 && r.Row >= r1 && r.Row <= r2
}

func (e litExpr) nodes() int   { return 1 }
func (e refExpr) nodes() int   { return 1 }
func (e rangeExpr) nodes() int { return 1 }
func (e callExpr) nodes() int {
	n := 1
	for _, a := range e.args {
		n += a.nodes()
	}
	return n
}
func (e binExpr) nodes() int { return 1 + e.l.nodes() + e.r.nodes() }
func (e negExpr) nodes() int { return 1 + e.e.nodes() }

// --- tokenizer -------------------------------------------------------------

type tokKind int

const (
	tokEOF tokKind = iota
	tokNumber
	tokString
	tokIdent // cell ref, range, function name, TRUE/FALSE
	tokOp    // + - * / & = <> < <= > >= ( ) , :
)

type token struct {
	kind tokKind
	text string
}

type lexer struct {
	src string
	pos int
	tok token
}

func (lx *lexer) next() error {
	for lx.pos < len(lx.src) && lx.src[lx.pos] == ' ' {
		lx.pos++
	}
	if lx.pos >= len(lx.src) {
		lx.tok = token{kind: tokEOF}
		return nil
	}
	c := lx.src[lx.pos]
	switch {
	case c >= '0' && c <= '9' || c == '.':
		start := lx.pos
		for lx.pos < len(lx.src) && (isDigit(lx.src[lx.pos]) || lx.src[lx.pos] == '.' ||
			lx.src[lx.pos] == 'e' || lx.src[lx.pos] == 'E' ||
			((lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') && lx.pos > start &&
				(lx.src[lx.pos-1] == 'e' || lx.src[lx.pos-1] == 'E'))) {
			lx.pos++
		}
		lx.tok = token{kind: tokNumber, text: lx.src[start:lx.pos]}
	case c == '"':
		lx.pos++
		var b strings.Builder
		for lx.pos < len(lx.src) {
			if lx.src[lx.pos] == '"' {
				if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '"' {
					b.WriteByte('"') // doubled quote escapes
					lx.pos += 2
					continue
				}
				lx.pos++
				lx.tok = token{kind: tokString, text: b.String()}
				return nil
			}
			b.WriteByte(lx.src[lx.pos])
			lx.pos++
		}
		return fmt.Errorf("sheet: unterminated string literal")
	case isIdentByte(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentByte(lx.src[lx.pos]) {
			lx.pos++
		}
		lx.tok = token{kind: tokIdent, text: lx.src[start:lx.pos]}
	default:
		switch c {
		case '<':
			if lx.pos+1 < len(lx.src) && (lx.src[lx.pos+1] == '>' || lx.src[lx.pos+1] == '=') {
				lx.tok = token{kind: tokOp, text: lx.src[lx.pos : lx.pos+2]}
				lx.pos += 2
				return nil
			}
			lx.tok = token{kind: tokOp, text: "<"}
			lx.pos++
		case '>':
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '=' {
				lx.tok = token{kind: tokOp, text: ">="}
				lx.pos += 2
				return nil
			}
			lx.tok = token{kind: tokOp, text: ">"}
			lx.pos++
		case '+', '-', '*', '/', '&', '=', '(', ')', ',', ':':
			lx.tok = token{kind: tokOp, text: string(c)}
			lx.pos++
		default:
			return fmt.Errorf("sheet: unexpected character %q", c)
		}
	}
	return nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isIdentByte(c byte) bool {
	return c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z' || isDigit(c) || c == '$' || c == '_'
}

// --- parser ----------------------------------------------------------------

type parser struct {
	lx *lexer
}

// ParseFormula parses a formula string. A leading "=" is required (as
// in the cell-entry convention); everything after it is the
// expression.
func ParseFormula(src string) (Expr, error) {
	s := strings.TrimSpace(src)
	if !strings.HasPrefix(s, "=") {
		return nil, fmt.Errorf("sheet: formula %q must start with '='", src)
	}
	lx := &lexer{src: s[1:]}
	if err := lx.next(); err != nil {
		return nil, err
	}
	p := &parser{lx: lx}
	e, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	if lx.tok.kind != tokEOF {
		return nil, fmt.Errorf("sheet: trailing input %q in formula", lx.tok.text)
	}
	return e, nil
}

func (p *parser) accept(text string) (bool, error) {
	if p.lx.tok.kind == tokOp && p.lx.tok.text == text {
		return true, p.lx.next()
	}
	return false, nil
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"<=", ">=", "<>", "=", "<", ">"} {
		ok, err := p.accept(op)
		if err != nil {
			return nil, err
		}
		if ok {
			r, err := p.parseConcat()
			if err != nil {
				return nil, err
			}
			return binExpr{op: op, l: l, r: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseConcat() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for {
		ok, err := p.accept("&")
		if err != nil {
			return nil, err
		}
		if !ok {
			return l, nil
		}
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		l = binExpr{op: "&", l: l, r: r}
	}
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		if ok, err := p.accept("+"); err != nil {
			return nil, err
		} else if ok {
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = binExpr{op: "+", l: l, r: r}
			continue
		}
		if ok, err := p.accept("-"); err != nil {
			return nil, err
		} else if ok {
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = binExpr{op: "-", l: l, r: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		if ok, err := p.accept("*"); err != nil {
			return nil, err
		} else if ok {
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = binExpr{op: "*", l: l, r: r}
			continue
		}
		if ok, err := p.accept("/"); err != nil {
			return nil, err
		} else if ok {
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = binExpr{op: "/", l: l, r: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if ok, err := p.accept("-"); err != nil {
		return nil, err
	} else if ok {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return negExpr{e: e}, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (Expr, error) {
	tok := p.lx.tok
	switch tok.kind {
	case tokNumber:
		f, err := strconv.ParseFloat(tok.text, 64)
		if err != nil {
			return nil, fmt.Errorf("sheet: bad number %q", tok.text)
		}
		if err := p.lx.next(); err != nil {
			return nil, err
		}
		return litExpr{v: Num(f)}, nil
	case tokString:
		if err := p.lx.next(); err != nil {
			return nil, err
		}
		return litExpr{v: Str(tok.text)}, nil
	case tokIdent:
		if err := p.lx.next(); err != nil {
			return nil, err
		}
		upper := strings.ToUpper(strings.ReplaceAll(tok.text, "$", ""))
		switch upper {
		case "TRUE":
			return litExpr{v: Bool(true)}, nil
		case "FALSE":
			return litExpr{v: Bool(false)}, nil
		}
		// Function call?
		if p.lx.tok.kind == tokOp && p.lx.tok.text == "(" {
			if err := p.lx.next(); err != nil {
				return nil, err
			}
			var args []Expr
			if !(p.lx.tok.kind == tokOp && p.lx.tok.text == ")") {
				for {
					a, err := p.parseCmp()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					ok, err := p.accept(",")
					if err != nil {
						return nil, err
					}
					if !ok {
						break
					}
				}
			}
			if ok, err := p.accept(")"); err != nil {
				return nil, err
			} else if !ok {
				return nil, fmt.Errorf("sheet: missing ')' after %s(", upper)
			}
			return callExpr{name: upper, args: args}, nil
		}
		// Cell reference, possibly a range.
		from, err := ParseRef(tok.text)
		if err != nil {
			return nil, err
		}
		if ok, err := p.accept(":"); err != nil {
			return nil, err
		} else if ok {
			if p.lx.tok.kind != tokIdent {
				return nil, fmt.Errorf("sheet: expected reference after ':'")
			}
			to, err := ParseRef(p.lx.tok.text)
			if err != nil {
				return nil, err
			}
			if err := p.lx.next(); err != nil {
				return nil, err
			}
			return rangeExpr{rg: Range{From: from, To: to}}, nil
		}
		return refExpr{r: from}, nil
	case tokOp:
		if tok.text == "(" {
			if err := p.lx.next(); err != nil {
				return nil, err
			}
			e, err := p.parseCmp()
			if err != nil {
				return nil, err
			}
			if ok, err := p.accept(")"); err != nil {
				return nil, err
			} else if !ok {
				return nil, fmt.Errorf("sheet: missing ')'")
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("sheet: unexpected token %q", tok.text)
}
