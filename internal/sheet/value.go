package sheet

import (
	"fmt"
	"strconv"
)

// Kind enumerates value types a cell may hold.
type Kind int

const (
	// Empty is an unset cell; it behaves as 0 in arithmetic.
	Empty Kind = iota
	// Number is a float64.
	Number
	// Text is a string.
	Text
	// Boolean is a bool.
	Boolean
	// ErrorVal is a spreadsheet error such as #DIV/0! or #CYCLE!.
	ErrorVal
)

// Value is the result of evaluating a cell.
type Value struct {
	Kind Kind
	Num  float64
	Str  string
	Bool bool
	Err  string
}

// Num returns a numeric value.
func Num(f float64) Value { return Value{Kind: Number, Num: f} }

// Str returns a text value.
func Str(s string) Value { return Value{Kind: Text, Str: s} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{Kind: Boolean, Bool: b} }

// Errf returns a spreadsheet error value.
func Errf(format string, args ...any) Value {
	return Value{Kind: ErrorVal, Err: fmt.Sprintf(format, args...)}
}

// IsErr reports whether the value is an error.
func (v Value) IsErr() bool { return v.Kind == ErrorVal }

// AsNumber coerces the value to a number the way spreadsheets do:
// empty is 0, booleans are 0/1, numeric text parses, other text fails.
func (v Value) AsNumber() (float64, error) {
	switch v.Kind {
	case Empty:
		return 0, nil
	case Number:
		return v.Num, nil
	case Boolean:
		if v.Bool {
			return 1, nil
		}
		return 0, nil
	case Text:
		f, err := strconv.ParseFloat(v.Str, 64)
		if err != nil {
			return 0, fmt.Errorf("#VALUE! %q is not a number", v.Str)
		}
		return f, nil
	default:
		return 0, fmt.Errorf("%s", v.Err)
	}
}

// String renders the value the way a cell displays it.
func (v Value) String() string {
	switch v.Kind {
	case Empty:
		return ""
	case Number:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case Text:
		return v.Str
	case Boolean:
		if v.Bool {
			return "TRUE"
		}
		return "FALSE"
	default:
		return v.Err
	}
}

// Equal compares two values for the = operator's semantics: numbers
// numerically, text case-sensitively, booleans directly; mixed kinds
// are unequal (except Empty = 0 and Empty = "").
func (v Value) Equal(o Value) bool {
	a, b := v, o
	if a.Kind == Empty {
		a = normalizeEmptyFor(b)
	}
	if b.Kind == Empty {
		b = normalizeEmptyFor(a)
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case Number:
		return a.Num == b.Num
	case Text:
		return a.Str == b.Str
	case Boolean:
		return a.Bool == b.Bool
	case Empty:
		return true
	default:
		return false
	}
}

// normalizeEmptyFor maps Empty to the zero value of the other
// operand's kind.
func normalizeEmptyFor(other Value) Value {
	switch other.Kind {
	case Text:
		return Str("")
	case Boolean:
		return Bool(false)
	default:
		return Num(0)
	}
}
