// Package sim is a deterministic discrete-event simulator for job
// graphs executing on bounded resource pools.
//
// Both execution paradigms in this repository lower their work to the
// same representation: a directed acyclic graph of Jobs, each demanding
// one slot of a named Pool for a known amount of simulated time. The
// workflow engine lowers (operator, batch) pairs — which is what makes
// pipelining emerge naturally — and the Ray-style scheduler lowers
// tasks. Keeping one simulator for both paradigms confines their
// differences to the lowering, so measured contrasts between paradigms
// cannot be artifacts of two divergent clocks.
//
// Scheduling is non-preemptive greedy list scheduling: a job becomes
// ready when all of its dependencies have finished plus its extra
// latency, ready jobs queue per pool in (ready time, ID) order, and a
// freed slot immediately starts the head of its pool's queue. The
// simulation is fully deterministic.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// JobID identifies a job within one Schedule call.
type JobID int

// Job is one unit of simulated work.
type Job struct {
	ID   JobID   // unique within the job set
	Name string  // optional label for traces and error messages
	Cost float64 // simulated seconds of exclusive work on one slot
	Pool string  // resource pool the job runs on

	// Deps lists jobs that must finish before this job may start.
	Deps []JobID

	// Latency is extra delay (for example network transfer or
	// deserialization) between the last dependency finishing and the
	// job becoming ready. It does not occupy a slot.
	Latency float64
}

// Pool is a named resource with a fixed number of identical slots.
type Pool struct {
	Name  string
	Slots int
}

// Span records when one job ran.
type Span struct {
	Start  float64
	Finish float64
}

// Result reports the outcome of a Schedule call.
type Result struct {
	// Makespan is the finish time of the last job.
	Makespan float64
	// Spans maps each job to its execution interval (the final,
	// successful attempt under fault injection).
	Spans map[JobID]Span
	// BusyTime is the total slot-seconds consumed per pool, including
	// the partial work of attempts later killed by faults.
	BusyTime map[string]float64
	// Aborts lists killed attempts in kill order; empty without fault
	// injection.
	Aborts []Abort
	// Recovery aggregates fault-recovery work; zero without injection.
	Recovery Recovery
}

// Utilization returns the fraction of pool slot-time spent busy over
// the makespan, or 0 if the makespan is zero.
func (r *Result) Utilization(pool string, slots int) float64 {
	if r.Makespan <= 0 || slots <= 0 {
		return 0
	}
	return r.BusyTime[pool] / (r.Makespan * float64(slots))
}

// event is a job completion, (job == wakeupEvent) a dispatch wakeup at
// the moment a queued job's latency elapses, or (job <= faultBase) a
// fault strike, carrying the fault's index as faultBase-job. attempt
// tags completions so a killed attempt's stale completion event can be
// recognized and dropped.
type event struct {
	at      float64
	job     JobID
	attempt int
}

// wakeupEvent marks events that exist only to trigger a dispatch at a
// job's ready time. Without them, a job whose latency-delayed ready
// time falls while other jobs are still running would not start until
// the next completion, even with free slots.
const wakeupEvent = JobID(-1)

// faultBase encodes fault indices into event job IDs: fault i is
// job faultBase-i. All faults sort below wakeupEvent, so at equal
// times a fault is processed before dispatches and completions — a
// job finishing the instant a fault strikes is killed, the harsher
// (and still deterministic) reading.
const faultBase = JobID(-2)

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].job < h[j].job
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// readyEntry is a job waiting for a slot in its pool.
type readyEntry struct {
	at  float64 // time the job became ready
	job JobID
}

type readyQueue []readyEntry

func (q readyQueue) Len() int { return len(q) }
func (q readyQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].job < q[j].job
}
func (q readyQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *readyQueue) Push(x any)   { *q = append(*q, x.(readyEntry)) }
func (q *readyQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Schedule simulates the execution of jobs on pools and returns the
// resulting timeline. It returns an error for duplicate job IDs,
// references to unknown pools or jobs, non-positive pool sizes,
// negative costs, or dependency cycles.
func Schedule(jobs []Job, pools []Pool) (*Result, error) {
	return schedule(jobs, pools, nil, RetryPolicy{})
}

// schedule is the shared event loop behind Schedule and ScheduleFaulty.
// With an empty fault list the injection bookkeeping is skipped
// entirely, so the fault-free path is byte-identical to the original
// scheduler.
func schedule(jobs []Job, pools []Pool, faults []FaultEvent, retry RetryPolicy) (*Result, error) {
	byID := make(map[JobID]*Job, len(jobs))
	for i := range jobs {
		j := &jobs[i]
		if _, dup := byID[j.ID]; dup {
			return nil, fmt.Errorf("sim: duplicate job id %d", j.ID)
		}
		if j.Cost < 0 {
			return nil, fmt.Errorf("sim: job %d (%s) has negative cost %g", j.ID, j.Name, j.Cost)
		}
		if j.Latency < 0 {
			return nil, fmt.Errorf("sim: job %d (%s) has negative latency %g", j.ID, j.Name, j.Latency)
		}
		byID[j.ID] = j
	}
	slots := make(map[string]int, len(pools))
	free := make(map[string]int, len(pools))
	for _, p := range pools {
		if p.Slots <= 0 {
			return nil, fmt.Errorf("sim: pool %q has %d slots", p.Name, p.Slots)
		}
		if _, dup := slots[p.Name]; dup {
			return nil, fmt.Errorf("sim: duplicate pool %q", p.Name)
		}
		slots[p.Name] = p.Slots
		free[p.Name] = p.Slots
	}

	// Validate references and build dependent lists.
	pending := make(map[JobID]int, len(jobs)) // unfinished dep count
	dependents := make(map[JobID][]JobID, len(jobs))
	for i := range jobs {
		j := &jobs[i]
		if _, ok := slots[j.Pool]; !ok {
			return nil, fmt.Errorf("sim: job %d (%s) references unknown pool %q", j.ID, j.Name, j.Pool)
		}
		for _, d := range j.Deps {
			if _, ok := byID[d]; !ok {
				return nil, fmt.Errorf("sim: job %d (%s) depends on unknown job %d", j.ID, j.Name, d)
			}
			dependents[d] = append(dependents[d], j.ID)
		}
		pending[j.ID] = len(j.Deps)
	}

	res := &Result{
		Spans:    make(map[JobID]Span, len(jobs)),
		BusyTime: make(map[string]float64, len(pools)),
	}

	ready := make(map[string]*readyQueue, len(pools))
	for name := range slots {
		q := &readyQueue{}
		heap.Init(q)
		ready[name] = q
	}
	depFinish := make(map[JobID]float64, len(jobs)) // max finish among deps

	running := &eventHeap{}
	heap.Init(running)
	var now float64
	enqueue := func(id JobID, at float64) {
		j := byID[id]
		readyAt := at + j.Latency
		heap.Push(ready[j.Pool], readyEntry{at: readyAt, job: id})
		if readyAt > now {
			heap.Push(running, event{at: readyAt, job: wakeupEvent})
		}
	}

	// Fault-injection bookkeeping, touched only when faults exist.
	injecting := len(faults) > 0
	var (
		runningJobs map[JobID]runInfo
		curAttempt  map[JobID]int // attempts so far killed; 0 = first attempt
		extraCost   map[JobID]float64
	)
	if injecting {
		runningJobs = make(map[JobID]runInfo)
		curAttempt = make(map[JobID]int)
		extraCost = make(map[JobID]float64)
		for i := range faults {
			heap.Push(running, event{at: faults[i].At, job: faultBase - JobID(i)})
		}
	}

	// Jobs with no dependencies are ready at time 0 (plus latency).
	ids := make([]JobID, 0, len(jobs))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, k int) bool { return ids[i] < ids[k] })
	for _, id := range ids {
		if pending[id] == 0 {
			enqueue(id, 0)
		}
	}

	finished := 0

	start := func(id JobID, at float64) {
		j := byID[id]
		free[j.Pool]--
		c := j.Cost
		attempt := 0
		if injecting {
			c += extraCost[id]
			attempt = curAttempt[id]
			runningJobs[id] = runInfo{start: at, cost: c}
		}
		fin := at + c
		res.Spans[id] = Span{Start: at, Finish: fin}
		res.BusyTime[j.Pool] += c
		heap.Push(running, event{at: fin, job: id, attempt: attempt})
	}

	// dispatch starts every startable job at the current time. A job is
	// startable when it is ready (ready time <= now) and its pool has a
	// free slot.
	dispatch := func() {
		for name, q := range ready {
			for free[name] > 0 && q.Len() > 0 {
				head := (*q)[0]
				if head.at > now {
					break
				}
				heap.Pop(q)
				start(head.job, now)
			}
		}
	}

	dispatch()
	for finished < len(jobs) {
		// If no events are pending, advance time to the earliest ready
		// job.
		if running.Len() == 0 {
			next := math.Inf(1)
			for _, q := range ready {
				if q.Len() > 0 && (*q)[0].at < next {
					next = (*q)[0].at
				}
			}
			if math.IsInf(next, 1) {
				return nil, fmt.Errorf("sim: dependency cycle detected (%d of %d jobs stuck)", len(jobs)-finished, len(jobs))
			}
			now = next
			dispatch()
			continue
		}
		ev := heap.Pop(running).(event)
		now = ev.at
		if ev.job <= faultBase {
			if err := strike(&faultCtx{
				f: &faults[int(faultBase-ev.job)], now: now,
				byID: byID, free: free, res: res, retry: &retry,
				runningJobs: runningJobs, curAttempt: curAttempt, extraCost: extraCost,
				ready: ready, running: running,
			}); err != nil {
				return nil, err
			}
			dispatch()
			continue
		}
		if ev.job == wakeupEvent {
			dispatch()
			continue
		}
		if injecting {
			if ev.attempt != curAttempt[ev.job] {
				continue // stale completion of a killed attempt
			}
			delete(runningJobs, ev.job)
		}
		j := byID[ev.job]
		free[j.Pool]++
		finished++
		for _, dep := range dependents[ev.job] {
			if now > depFinish[dep] {
				depFinish[dep] = now
			}
			pending[dep]--
			if pending[dep] == 0 {
				enqueue(dep, depFinish[dep])
			}
		}
		dispatch()
	}
	res.Makespan = now
	return res, nil
}

// faultCtx carries the scheduler state a fault strike mutates.
type faultCtx struct {
	f           *FaultEvent
	now         float64
	byID        map[JobID]*Job
	free        map[string]int
	res         *Result
	retry       *RetryPolicy
	runningJobs map[JobID]runInfo
	curAttempt  map[JobID]int
	extraCost   map[JobID]float64
	ready       map[string]*readyQueue
	running     *eventHeap
}

// strike applies one fault: pick a deterministic victim among the
// running jobs, discard its in-flight attempt, and re-queue it under
// the retry policy. Faults on an idle (or non-matching) system are
// no-ops.
func strike(c *faultCtx) error {
	victims := make([]JobID, 0, len(c.runningJobs))
	for id := range c.runningJobs {
		if c.f.Pool == "" || c.byID[id].Pool == c.f.Pool {
			victims = append(victims, id)
		}
	}
	if len(victims) == 0 {
		return nil
	}
	sort.Slice(victims, func(i, k int) bool { return victims[i] < victims[k] })
	v := victims[int(c.f.Salt%uint64(len(victims)))]
	ri := c.runningJobs[v]
	delete(c.runningJobs, v)
	jv := c.byID[v]
	c.free[jv.Pool]++
	// Remove the unexecuted remainder of the attempt from busy time;
	// the part already executed stays, as genuinely wasted slot time.
	c.res.BusyTime[jv.Pool] -= (ri.start + ri.cost) - c.now
	c.curAttempt[v]++
	retryN := c.curAttempt[v]
	maxR := c.retry.MaxRetries
	if maxR == 0 {
		maxR = DefaultMaxRetries
	}
	if retryN > maxR {
		return fmt.Errorf("sim: job %d (%s) killed %d times, exceeding %d retries", v, jv.Name, retryN, maxR)
	}
	var delay, extra float64
	if c.retry.Delay != nil {
		delay = c.retry.Delay(v, retryN)
	}
	if c.retry.ExtraCost != nil {
		extra = c.retry.ExtraCost(v, retryN, c.f.LoseObjects)
	}
	if delay < 0 || extra < 0 {
		return fmt.Errorf("sim: retry policy returned negative delay/cost (%g, %g) for job %d", delay, extra, v)
	}
	c.extraCost[v] = extra

	rec := &c.res.Recovery
	rec.Kills++
	if c.f.LoseObjects {
		rec.NodeKills++
	}
	rec.LostSeconds += c.now - ri.start
	rec.DelaySeconds += delay
	rec.ExtraCostSeconds += extra
	c.res.Aborts = append(c.res.Aborts, Abort{
		Job: v, Attempt: retryN, Start: ri.start, Killed: c.now,
		LostObjects: c.f.LoseObjects,
	})

	// Re-queue: dependencies were satisfied before the first attempt,
	// so the job re-enters its pool's queue directly.
	readyAt := c.now + delay
	heap.Push(c.ready[jv.Pool], readyEntry{at: readyAt, job: v})
	if readyAt > c.now {
		heap.Push(c.running, event{at: readyAt, job: wakeupEvent})
	}
	return nil
}

// CriticalPath returns the length of the longest dependency chain
// (sum of costs and latencies), a lower bound on any schedule's
// makespan. It returns an error on cycles or unknown dependencies.
func CriticalPath(jobs []Job) (float64, error) {
	byID := make(map[JobID]*Job, len(jobs))
	for i := range jobs {
		byID[jobs[i].ID] = &jobs[i]
	}
	memo := make(map[JobID]float64, len(jobs))
	state := make(map[JobID]int, len(jobs)) // 0 unvisited, 1 visiting, 2 done
	var visit func(id JobID) (float64, error)
	visit = func(id JobID) (float64, error) {
		if state[id] == 2 {
			return memo[id], nil
		}
		if state[id] == 1 {
			return 0, fmt.Errorf("sim: dependency cycle through job %d", id)
		}
		state[id] = 1
		j, ok := byID[id]
		if !ok {
			return 0, fmt.Errorf("sim: unknown job %d", id)
		}
		longest := 0.0
		for _, d := range j.Deps {
			v, err := visit(d)
			if err != nil {
				return 0, err
			}
			if v > longest {
				longest = v
			}
		}
		state[id] = 2
		memo[id] = longest + j.Cost + j.Latency
		return memo[id], nil
	}
	best := 0.0
	for id := range byID {
		v, err := visit(id)
		if err != nil {
			return 0, err
		}
		if v > best {
			best = v
		}
	}
	return best, nil
}

// CriticalChain returns the jobs on one longest dependency chain, in
// execution order. Ties are broken toward the smaller job ID at every
// step, so the chain is deterministic for a given job set regardless
// of input or dependency order. It returns an error on cycles or
// unknown dependencies.
//
// The telemetry layer calls this after every instrumented run, so it
// stays allocation-light: lowered job IDs are dense, which lets the
// memo tables be flat slices indexed by ID instead of maps.
func CriticalChain(jobs []Job) ([]JobID, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	maxID := JobID(-1)
	for i := range jobs {
		if jobs[i].ID < 0 {
			return nil, fmt.Errorf("sim: negative job ID %d", jobs[i].ID)
		}
		if jobs[i].ID > maxID {
			maxID = jobs[i].ID
		}
	}
	// id -> job index, last definition winning. Dense IDs (the common
	// case: Lower numbers jobs 0..n-1) use a flat table; sparse sets
	// fall back to a map.
	var lookup func(JobID) int
	if int(maxID) < 4*len(jobs) {
		idx := make([]int32, maxID+1)
		for i := range idx {
			idx[i] = -1
		}
		for i := range jobs {
			idx[jobs[i].ID] = int32(i)
		}
		lookup = func(id JobID) int {
			if id < 0 || id > maxID {
				return -1
			}
			return int(idx[id])
		}
	} else {
		byID := make(map[JobID]int, len(jobs))
		for i := range jobs {
			byID[jobs[i].ID] = i
		}
		lookup = func(id JobID) int {
			if i, ok := byID[id]; ok {
				return i
			}
			return -1
		}
	}
	memo := make([]float64, len(jobs))
	best := make([]JobID, len(jobs)) // heaviest dependency, -1 if none
	state := make([]uint8, len(jobs))
	var visit func(ji int) (float64, error)
	visit = func(ji int) (float64, error) {
		if state[ji] == 2 {
			return memo[ji], nil
		}
		if state[ji] == 1 {
			return 0, fmt.Errorf("sim: dependency cycle through job %d", jobs[ji].ID)
		}
		state[ji] = 1
		j := &jobs[ji]
		longest, heaviest := 0.0, JobID(-1)
		for _, d := range j.Deps {
			di := lookup(d)
			if di < 0 {
				return 0, fmt.Errorf("sim: job %d depends on unknown job %d", j.ID, d)
			}
			v, err := visit(di)
			if err != nil {
				return 0, err
			}
			// Strictly longer wins; on a tie the smaller dependency ID
			// does, making the chain independent of Deps order.
			if v > longest || (v == longest && heaviest >= 0 && d < heaviest) {
				longest, heaviest = v, d
			}
		}
		state[ji] = 2
		memo[ji] = longest + j.Cost + j.Latency
		best[ji] = heaviest
		return memo[ji], nil
	}
	top, topLen := JobID(-1), -1.0
	for i := range jobs {
		ji := lookup(jobs[i].ID) // canonical index under duplicate IDs
		v, err := visit(ji)
		if err != nil {
			return nil, err
		}
		if v > topLen || (v == topLen && jobs[ji].ID < top) {
			top, topLen = jobs[ji].ID, v
		}
	}
	var chain []JobID
	for id := top; id >= 0; id = best[lookup(id)] {
		chain = append(chain, id)
	}
	// Reverse into execution order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain, nil
}

// TotalWork returns the sum of job costs grouped by pool.
func TotalWork(jobs []Job) map[string]float64 {
	m := make(map[string]float64)
	for _, j := range jobs {
		m[j.Pool] += j.Cost
	}
	return m
}

// LowerBound returns max(critical path, per-pool work / slots), a valid
// lower bound for any non-preemptive schedule of jobs on pools.
func LowerBound(jobs []Job, pools []Pool) (float64, error) {
	cp, err := CriticalPath(jobs)
	if err != nil {
		return 0, err
	}
	lb := cp
	work := TotalWork(jobs)
	for _, p := range pools {
		if p.Slots <= 0 {
			return 0, fmt.Errorf("sim: pool %q has %d slots", p.Name, p.Slots)
		}
		if v := work[p.Name] / float64(p.Slots); v > lb {
			lb = v
		}
	}
	return lb, nil
}
