package sim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func onePool(slots int) []Pool { return []Pool{{Name: "cpu", Slots: slots}} }

func TestSingleJob(t *testing.T) {
	res, err := Schedule([]Job{{ID: 1, Cost: 5, Pool: "cpu"}}, onePool(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 5 {
		t.Fatalf("makespan = %v, want 5", res.Makespan)
	}
	if s := res.Spans[1]; s.Start != 0 || s.Finish != 5 {
		t.Fatalf("span = %+v", s)
	}
}

func TestChainIsSequential(t *testing.T) {
	jobs := []Job{
		{ID: 1, Cost: 2, Pool: "cpu"},
		{ID: 2, Cost: 3, Pool: "cpu", Deps: []JobID{1}},
		{ID: 3, Cost: 4, Pool: "cpu", Deps: []JobID{2}},
	}
	res, err := Schedule(jobs, onePool(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 9 {
		t.Fatalf("makespan = %v, want 9", res.Makespan)
	}
}

func TestIndependentJobsRunInParallel(t *testing.T) {
	jobs := []Job{
		{ID: 1, Cost: 4, Pool: "cpu"},
		{ID: 2, Cost: 4, Pool: "cpu"},
	}
	res, err := Schedule(jobs, onePool(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 4 {
		t.Fatalf("makespan = %v, want 4 with 2 slots", res.Makespan)
	}
	res1, err := Schedule(jobs, onePool(1))
	if err != nil {
		t.Fatal(err)
	}
	if res1.Makespan != 8 {
		t.Fatalf("makespan = %v, want 8 with 1 slot", res1.Makespan)
	}
}

func TestLatencyDelaysStart(t *testing.T) {
	jobs := []Job{
		{ID: 1, Cost: 2, Pool: "cpu"},
		{ID: 2, Cost: 1, Pool: "cpu", Deps: []JobID{1}, Latency: 3},
	}
	res, err := Schedule(jobs, onePool(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 6 {
		t.Fatalf("makespan = %v, want 6 (2 work + 3 latency + 1 work)", res.Makespan)
	}
	if s := res.Spans[2]; s.Start != 5 {
		t.Fatalf("job 2 start = %v, want 5", s.Start)
	}
}

func TestLatencyDoesNotOccupySlot(t *testing.T) {
	// Job 2 waits on latency; job 3 should use the slot meanwhile.
	jobs := []Job{
		{ID: 1, Cost: 1, Pool: "cpu"},
		{ID: 2, Cost: 1, Pool: "cpu", Deps: []JobID{1}, Latency: 10},
		{ID: 3, Cost: 5, Pool: "cpu", Deps: []JobID{1}},
	}
	res, err := Schedule(jobs, onePool(1))
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Spans[3]; s.Start != 1 {
		t.Fatalf("job 3 start = %v, want 1 (slot free during job 2 latency)", s.Start)
	}
	if res.Makespan != 12 {
		t.Fatalf("makespan = %v, want 12", res.Makespan)
	}
}

func TestPipelineOverlapsStages(t *testing.T) {
	// Two-stage pipeline over 4 batches with separate pools per stage.
	// Stage costs are 1s per batch, so the pipelined makespan should be
	// 4 + 1 = 5 rather than the sequential 8.
	var jobs []Job
	var prevB JobID = -1
	for b := 0; b < 4; b++ {
		a := JobID(2*b + 1)
		c := JobID(2*b + 2)
		ja := Job{ID: a, Cost: 1, Pool: "op1"}
		if prevB >= 0 {
			// Source emits batches in order; keep op1 sequential.
		}
		jobs = append(jobs, ja)
		jobs = append(jobs, Job{ID: c, Cost: 1, Pool: "op2", Deps: []JobID{a}})
		prevB = c
	}
	pools := []Pool{{Name: "op1", Slots: 1}, {Name: "op2", Slots: 1}}
	res, err := Schedule(jobs, pools)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 5 {
		t.Fatalf("pipelined makespan = %v, want 5", res.Makespan)
	}
}

func TestCycleDetected(t *testing.T) {
	jobs := []Job{
		{ID: 1, Cost: 1, Pool: "cpu", Deps: []JobID{2}},
		{ID: 2, Cost: 1, Pool: "cpu", Deps: []JobID{1}},
	}
	if _, err := Schedule(jobs, onePool(1)); err == nil {
		t.Fatal("expected cycle error")
	}
	if _, err := CriticalPath(jobs); err == nil {
		t.Fatal("expected cycle error from CriticalPath")
	}
}

func TestErrorCases(t *testing.T) {
	cases := []struct {
		name  string
		jobs  []Job
		pools []Pool
	}{
		{"duplicate job", []Job{{ID: 1, Pool: "cpu"}, {ID: 1, Pool: "cpu"}}, onePool(1)},
		{"unknown pool", []Job{{ID: 1, Pool: "gpu"}}, onePool(1)},
		{"unknown dep", []Job{{ID: 1, Pool: "cpu", Deps: []JobID{9}}}, onePool(1)},
		{"zero slots", []Job{{ID: 1, Pool: "cpu"}}, []Pool{{Name: "cpu", Slots: 0}}},
		{"negative cost", []Job{{ID: 1, Pool: "cpu", Cost: -1}}, onePool(1)},
		{"negative latency", []Job{{ID: 1, Pool: "cpu", Latency: -1}}, onePool(1)},
		{"duplicate pool", []Job{{ID: 1, Pool: "cpu"}}, []Pool{{Name: "cpu", Slots: 1}, {Name: "cpu", Slots: 2}}},
	}
	for _, c := range cases {
		if _, err := Schedule(c.jobs, c.pools); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestCriticalPathChain(t *testing.T) {
	jobs := []Job{
		{ID: 1, Cost: 2, Pool: "cpu"},
		{ID: 2, Cost: 3, Pool: "cpu", Deps: []JobID{1}, Latency: 1},
		{ID: 3, Cost: 1, Pool: "cpu"},
	}
	cp, err := CriticalPath(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if cp != 6 {
		t.Fatalf("critical path = %v, want 6", cp)
	}
}

func TestBusyTimeAndUtilization(t *testing.T) {
	jobs := []Job{
		{ID: 1, Cost: 4, Pool: "cpu"},
		{ID: 2, Cost: 4, Pool: "cpu"},
	}
	res, err := Schedule(jobs, onePool(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.BusyTime["cpu"] != 8 {
		t.Fatalf("busy time = %v, want 8", res.BusyTime["cpu"])
	}
	if u := res.Utilization("cpu", 2); math.Abs(u-1) > 1e-12 {
		t.Fatalf("utilization = %v, want 1", u)
	}
}

// randomDAG builds a deterministic random layered DAG for property
// testing.
func randomDAG(seed uint64) ([]Job, []Pool) {
	r := xrand.New(seed)
	nPools := 1 + r.Intn(3)
	pools := make([]Pool, nPools)
	names := []string{"p0", "p1", "p2"}
	for i := range pools {
		pools[i] = Pool{Name: names[i], Slots: 1 + r.Intn(4)}
	}
	n := 1 + r.Intn(40)
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		j := Job{
			ID:   JobID(i),
			Cost: r.Range(0, 10),
			Pool: names[r.Intn(nPools)],
		}
		if r.Bool(0.2) {
			j.Latency = r.Range(0, 2)
		}
		// Depend only on lower IDs: guaranteed acyclic.
		for d := 0; d < i; d++ {
			if r.Bool(0.08) {
				j.Deps = append(j.Deps, JobID(d))
			}
		}
		jobs[i] = j
	}
	return jobs, pools
}

func TestPropertyMakespanBounds(t *testing.T) {
	f := func(seed uint64) bool {
		jobs, pools := randomDAG(seed)
		res, err := Schedule(jobs, pools)
		if err != nil {
			return false
		}
		lb, err := LowerBound(jobs, pools)
		if err != nil {
			return false
		}
		var total float64
		for _, j := range jobs {
			total += j.Cost + j.Latency
		}
		const eps = 1e-9
		return res.Makespan >= lb-eps && res.Makespan <= total+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySpansRespectDeps(t *testing.T) {
	f := func(seed uint64) bool {
		jobs, pools := randomDAG(seed)
		res, err := Schedule(jobs, pools)
		if err != nil {
			return false
		}
		const eps = 1e-9
		for _, j := range jobs {
			s := res.Spans[j.ID]
			if s.Finish-s.Start-j.Cost > eps || s.Finish-s.Start-j.Cost < -eps {
				return false
			}
			for _, d := range j.Deps {
				if s.Start < res.Spans[d].Finish+j.Latency-eps {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySlotCapacityNeverExceeded(t *testing.T) {
	f := func(seed uint64) bool {
		jobs, pools := randomDAG(seed)
		res, err := Schedule(jobs, pools)
		if err != nil {
			return false
		}
		slots := map[string]int{}
		for _, p := range pools {
			slots[p.Name] = p.Slots
		}
		// Check concurrency at every job start time.
		for _, j := range jobs {
			at := res.Spans[j.ID].Start
			counts := map[string]int{}
			for _, k := range jobs {
				s := res.Spans[k.ID]
				if s.Start <= at && at < s.Finish {
					counts[k.Pool]++
				}
			}
			for pool, c := range counts {
				if c > slots[pool] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMoreSlotsNeverSlower(t *testing.T) {
	f := func(seed uint64) bool {
		jobs, _ := randomDAG(seed)
		for i := range jobs {
			jobs[i].Pool = "cpu"
			// Zero latency: with a single pool and no latencies the
			// 1-slot makespan equals the total work, which upper-bounds
			// every greedy schedule, so monotonicity provably holds.
			// (With latencies Graham-style scheduling anomalies could
			// legitimately violate it.)
			jobs[i].Latency = 0
		}
		r1, err := Schedule(jobs, onePool(1))
		if err != nil {
			return false
		}
		r4, err := Schedule(jobs, onePool(4))
		if err != nil {
			return false
		}
		return r4.Makespan <= r1.Makespan+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicSchedules(t *testing.T) {
	jobs, pools := randomDAG(12345)
	r1, err := Schedule(jobs, pools)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Schedule(jobs, pools)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan {
		t.Fatalf("non-deterministic makespan: %v vs %v", r1.Makespan, r2.Makespan)
	}
	for id, s := range r1.Spans {
		if r2.Spans[id] != s {
			t.Fatalf("non-deterministic span for job %d", id)
		}
	}
}

func TestTotalWork(t *testing.T) {
	jobs := []Job{
		{ID: 1, Cost: 2, Pool: "a"},
		{ID: 2, Cost: 3, Pool: "a"},
		{ID: 3, Cost: 4, Pool: "b"},
	}
	w := TotalWork(jobs)
	if w["a"] != 5 || w["b"] != 4 {
		t.Fatalf("work = %v", w)
	}
}
