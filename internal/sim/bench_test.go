package sim

import (
	"fmt"
	"testing"
)

// layeredJobs builds a pipeline-shaped DAG: stages x batches jobs where
// batch b of stage s depends on batch b of stage s-1 — the shape the
// dataflow lowering produces.
func layeredJobs(stages, batches int) ([]Job, []Pool) {
	var jobs []Job
	var pools []Pool
	id := JobID(0)
	for s := 0; s < stages; s++ {
		pools = append(pools, Pool{Name: fmt.Sprintf("s%d", s), Slots: 2})
		for b := 0; b < batches; b++ {
			j := Job{ID: id, Cost: 0.01, Pool: fmt.Sprintf("s%d", s)}
			if s > 0 {
				j.Deps = []JobID{id - JobID(batches)}
			}
			jobs = append(jobs, j)
			id++
		}
	}
	return jobs, pools
}

func BenchmarkSchedulePipeline(b *testing.B) {
	jobs, pools := layeredJobs(8, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Schedule(jobs, pools); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleWide(b *testing.B) {
	var jobs []Job
	for i := 0; i < 4096; i++ {
		jobs = append(jobs, Job{ID: JobID(i), Cost: 0.5, Pool: "cpu"})
	}
	pools := []Pool{{Name: "cpu", Slots: 16}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Schedule(jobs, pools); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCriticalPath(b *testing.B) {
	jobs, _ := layeredJobs(8, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CriticalPath(jobs); err != nil {
			b.Fatal(err)
		}
	}
}
