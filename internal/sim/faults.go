package sim

import "fmt"

// FaultEvent kills one running job at a virtual time. The victim is
// chosen deterministically: the running jobs (optionally restricted to
// one pool) are ordered by ID and indexed by Salt, so a fault sequence
// plus a job set fully determines the schedule. A fault that strikes
// while nothing (matching) is running is a no-op, like a node crashing
// between tasks.
type FaultEvent struct {
	// At is the virtual time of the fault.
	At float64
	// Pool restricts victims to one pool; "" means any pool.
	Pool string
	// Salt selects among the running jobs.
	Salt uint64
	// LoseObjects marks a node-level fault: the retry policy may charge
	// object reconstruction on top of re-execution.
	LoseObjects bool
}

// RetryPolicy controls how a killed job is re-executed. Both paradigms
// express their recovery semantics through it: the Ray-style backend
// retries with capped exponential backoff and pays object
// reconstruction after node faults; the dataflow engine restarts the
// worker and replays from the last checkpoint.
type RetryPolicy struct {
	// Delay returns the wait in seconds before the retry-th re-execution
	// (1-based) of job id may re-enter its pool's queue. Nil means no
	// delay.
	Delay func(id JobID, retry int) float64
	// ExtraCost returns seconds added to the retried attempt's slot time
	// (checkpoint restore reads, object reconstruction). Nil means none.
	ExtraCost func(id JobID, retry int, objectsLost bool) float64
	// MaxRetries bounds retries per job; 0 means DefaultMaxRetries.
	// Exceeding it is an error: the run is declared unrecoverable.
	MaxRetries int
}

// DefaultMaxRetries is the per-job retry bound when RetryPolicy leaves
// MaxRetries zero.
const DefaultMaxRetries = 64

// runInfo tracks one in-flight attempt under fault injection: its
// start time and its slot cost (job cost plus retry extra).
type runInfo struct {
	start float64
	cost  float64
}

// Abort records one killed attempt.
type Abort struct {
	// Job is the killed job; Attempt is the 1-based attempt number that
	// died.
	Job     JobID
	Attempt int
	// Start and Killed bound the aborted attempt on the virtual clock.
	Start  float64
	Killed float64
	// LostObjects marks node-level faults.
	LostObjects bool
}

// Recovery aggregates the fault-recovery work of a schedule. It is
// zero for fault-free runs.
type Recovery struct {
	// Kills counts aborted attempts; NodeKills the subset that also
	// lost objects.
	Kills     int
	NodeKills int
	// LostSeconds is partial work discarded with killed attempts;
	// DelaySeconds is time spent waiting to retry (backoff, worker
	// respawn); ExtraCostSeconds is added restore/reconstruction work.
	LostSeconds      float64
	DelaySeconds     float64
	ExtraCostSeconds float64
}

// ScheduleFaulty simulates jobs on pools under a fault sequence.
// With no faults it behaves exactly like Schedule. Killed jobs are
// re-queued under the retry policy; their dependents only ever observe
// the completion of the final successful attempt, so the DAG semantics
// — and therefore everything the jobs compute — are unchanged. The
// result's Aborts and Recovery fields describe the recovery work.
func ScheduleFaulty(jobs []Job, pools []Pool, faults []FaultEvent, retry RetryPolicy) (*Result, error) {
	for i := range faults {
		if faults[i].At < 0 {
			return nil, fmt.Errorf("sim: fault %d at negative time %g", i, faults[i].At)
		}
	}
	return schedule(jobs, pools, faults, retry)
}
