package sim

import (
	"math"
	"testing"
)

func twoPoolJobs() ([]Job, []Pool) {
	jobs := []Job{
		{ID: 0, Name: "a", Cost: 2, Pool: "p"},
		{ID: 1, Name: "b", Cost: 3, Pool: "p", Deps: []JobID{0}},
		{ID: 2, Name: "c", Cost: 1, Pool: "p", Deps: []JobID{0}},
		{ID: 3, Name: "d", Cost: 2, Pool: "q", Deps: []JobID{1, 2}},
	}
	pools := []Pool{{Name: "p", Slots: 2}, {Name: "q", Slots: 1}}
	return jobs, pools
}

func TestScheduleFaultyNoFaultsMatchesSchedule(t *testing.T) {
	jobs, pools := twoPoolJobs()
	clean, err := Schedule(jobs, pools)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := ScheduleFaulty(jobs, pools, nil, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Makespan != faulty.Makespan {
		t.Fatalf("makespans differ: %v vs %v", clean.Makespan, faulty.Makespan)
	}
	for id, sp := range clean.Spans {
		if faulty.Spans[id] != sp {
			t.Fatalf("span %d differs: %+v vs %+v", id, sp, faulty.Spans[id])
		}
	}
	if faulty.Recovery != (Recovery{}) || len(faulty.Aborts) != 0 {
		t.Fatalf("no-fault run reported recovery %+v, %d aborts", faulty.Recovery, len(faulty.Aborts))
	}
}

func TestFaultKillsAndRetries(t *testing.T) {
	jobs := []Job{{ID: 0, Name: "only", Cost: 10, Pool: "p"}}
	pools := []Pool{{Name: "p", Slots: 1}}
	res, err := ScheduleFaulty(jobs, pools, []FaultEvent{{At: 4, Pool: "p"}}, RetryPolicy{
		Delay: func(JobID, int) float64 { return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Killed at t=4, retried at t=5, finishes at t=15.
	if res.Makespan != 15 {
		t.Fatalf("makespan = %v, want 15", res.Makespan)
	}
	if res.Recovery.Kills != 1 || res.Recovery.LostSeconds != 4 || res.Recovery.DelaySeconds != 1 {
		t.Fatalf("recovery = %+v", res.Recovery)
	}
	if len(res.Aborts) != 1 || res.Aborts[0] != (Abort{Job: 0, Attempt: 1, Start: 0, Killed: 4}) {
		t.Fatalf("aborts = %+v", res.Aborts)
	}
	// The final span is the successful attempt.
	if sp := res.Spans[0]; sp.Start != 5 || sp.Finish != 15 {
		t.Fatalf("span = %+v, want [5, 15]", sp)
	}
	// Busy time counts the wasted partial attempt (4s) plus the full
	// re-execution (10s).
	if got := res.BusyTime["p"]; math.Abs(got-14) > 1e-12 {
		t.Fatalf("busy time = %v, want 14", got)
	}
}

func TestFaultExtraCostAndObjectLoss(t *testing.T) {
	jobs := []Job{{ID: 0, Cost: 5, Pool: "p"}}
	pools := []Pool{{Name: "p", Slots: 1}}
	res, err := ScheduleFaulty(jobs, pools,
		[]FaultEvent{{At: 2, LoseObjects: true}},
		RetryPolicy{ExtraCost: func(_ JobID, _ int, lost bool) float64 {
			if lost {
				return 3
			}
			return 0
		}})
	if err != nil {
		t.Fatal(err)
	}
	// Killed at 2, restarted immediately with 3s reconstruction: 2+3+5.
	if res.Makespan != 10 {
		t.Fatalf("makespan = %v, want 10", res.Makespan)
	}
	if res.Recovery.NodeKills != 1 || res.Recovery.ExtraCostSeconds != 3 {
		t.Fatalf("recovery = %+v", res.Recovery)
	}
	if !res.Aborts[0].LostObjects {
		t.Fatalf("abort not marked as object loss: %+v", res.Aborts[0])
	}
}

func TestFaultOnIdleSystemIsNoOp(t *testing.T) {
	jobs := []Job{{ID: 0, Cost: 2, Pool: "p"}}
	pools := []Pool{{Name: "p", Slots: 1}}
	res, err := ScheduleFaulty(jobs, pools, []FaultEvent{{At: 100}, {At: 1, Pool: "other-pool"}}, RetryPolicy{})
	if err == nil {
		// Pool "other-pool" doesn't exist, so the second fault matches
		// nothing; the first strikes after completion.
		if res.Makespan != 2 || res.Recovery.Kills != 0 {
			t.Fatalf("idle faults changed the schedule: %+v", res)
		}
		return
	}
	t.Fatalf("unexpected error: %v", err)
}

func TestFaultDeterministicVictimSelection(t *testing.T) {
	jobs, pools := twoPoolJobs()
	faults := []FaultEvent{{At: 0.5, Salt: 12345}, {At: 2.5, Salt: 999}}
	a, err := ScheduleFaulty(jobs, pools, faults, RetryPolicy{Delay: func(_ JobID, r int) float64 { return 0.25 * float64(r) }})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScheduleFaulty(jobs, pools, faults, RetryPolicy{Delay: func(_ JobID, r int) float64 { return 0.25 * float64(r) }})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Recovery != b.Recovery || len(a.Aborts) != len(b.Aborts) {
		t.Fatalf("fault runs differ: %+v vs %+v", a.Recovery, b.Recovery)
	}
	for i := range a.Aborts {
		if a.Aborts[i] != b.Aborts[i] {
			t.Fatalf("abort %d differs: %+v vs %+v", i, a.Aborts[i], b.Aborts[i])
		}
	}
	if a.Recovery.Kills != 2 {
		t.Fatalf("expected both faults to kill, got %+v", a.Recovery)
	}
}

func TestFaultDependentsWaitForFinalAttempt(t *testing.T) {
	jobs := []Job{
		{ID: 0, Cost: 4, Pool: "p"},
		{ID: 1, Cost: 1, Pool: "p", Deps: []JobID{0}},
	}
	pools := []Pool{{Name: "p", Slots: 2}}
	res, err := ScheduleFaulty(jobs, pools, []FaultEvent{{At: 3}}, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// Job 0 killed at 3, reruns [3, 7]; job 1 must start at 7, not at
	// the killed attempt's original finish time (4).
	if sp := res.Spans[1]; sp.Start != 7 || sp.Finish != 8 {
		t.Fatalf("dependent span = %+v, want [7, 8]", sp)
	}
	if res.Makespan != 8 {
		t.Fatalf("makespan = %v, want 8", res.Makespan)
	}
}

func TestFaultExceedingRetriesErrors(t *testing.T) {
	jobs := []Job{{ID: 0, Cost: 100, Pool: "p"}}
	pools := []Pool{{Name: "p", Slots: 1}}
	faults := []FaultEvent{{At: 1}, {At: 2}, {At: 3}}
	_, err := ScheduleFaulty(jobs, pools, faults, RetryPolicy{MaxRetries: 2})
	if err == nil {
		t.Fatalf("expected retry-exhaustion error")
	}
}

func TestFaultNegativeTimeRejected(t *testing.T) {
	jobs := []Job{{ID: 0, Cost: 1, Pool: "p"}}
	pools := []Pool{{Name: "p", Slots: 1}}
	if _, err := ScheduleFaulty(jobs, pools, []FaultEvent{{At: -1}}, RetryPolicy{}); err == nil {
		t.Fatalf("expected error for negative fault time")
	}
}
