package datagen

import (
	"fmt"

	"repro/internal/ml/kge"
	"repro/internal/xrand"
)

// Product is one Amazon-style candidate item for the KGE task.
type Product struct {
	ASIN     string
	Title    string
	Category string
	Price    float64
	InStock  bool
}

// ProductWorld is the KGE task's input universe: candidate products, a
// target user, and the purchase history (triples) a recommendation
// model is trained on.
type ProductWorld struct {
	Products  []Product
	Users     []string
	Purchases []kge.Triple
	// UserCategory records each user's preferred category, the ground
	// truth the recommender should recover.
	UserCategory map[string]string
}

// ProductCategories lists the synthetic catalog's categories.
var ProductCategories = []string{
	"books", "electronics", "garden", "kitchen", "sports", "toys", "grooming", "office",
}

var productAdjectives = []string{"Premium", "Compact", "Wireless", "Classic", "Eco", "Deluxe", "Portable", "Smart"}
var productNouns = []string{"Speaker", "Novel", "Trowel", "Blender", "Racket", "Puzzle", "Trimmer", "Organizer"}

// GenerateProducts builds a product world with n candidate products,
// users purchase histories concentrated in one category per user, and
// roughly outOfStockFrac of candidates unavailable (the KGE task's
// first filter).
func GenerateProducts(n, users int, outOfStockFrac float64, seed uint64) *ProductWorld {
	r := xrand.New(seed)
	w := &ProductWorld{UserCategory: make(map[string]string)}
	for i := 0; i < n; i++ {
		cat := ProductCategories[i%len(ProductCategories)]
		w.Products = append(w.Products, Product{
			ASIN:     fmt.Sprintf("B%09d", i),
			Title:    fmt.Sprintf("%s %s %d", xrand.Choice(r, productAdjectives), xrand.Choice(r, productNouns), i),
			Category: cat,
			Price:    5 + r.Float64()*195,
			InStock:  !r.Bool(outOfStockFrac),
		})
	}
	for u := 0; u < users; u++ {
		name := fmt.Sprintf("user-%03d", u)
		cat := ProductCategories[u%len(ProductCategories)]
		w.Users = append(w.Users, name)
		w.UserCategory[name] = cat
		// Purchase history: overwhelmingly in-category with light noise.
		bought := 0
		for bought < 12 {
			p := w.Products[r.Intn(len(w.Products))]
			if p.Category != cat && !r.Bool(0.02) {
				continue
			}
			w.Purchases = append(w.Purchases, kge.Triple{Head: name, Rel: "buys", Tail: p.ASIN})
			bought++
		}
	}
	return w
}

// EntityNames returns all entity identifiers (users then products) for
// building a KGE model over the world.
func (w *ProductWorld) EntityNames() []string {
	out := make([]string, 0, len(w.Users)+len(w.Products))
	out = append(out, w.Users...)
	for _, p := range w.Products {
		out = append(out, p.ASIN)
	}
	return out
}

// ProductByASIN returns the product with the given ASIN, or nil.
func (w *ProductWorld) ProductByASIN(asin string) *Product {
	for i := range w.Products {
		if w.Products[i].ASIN == asin {
			return &w.Products[i]
		}
	}
	return nil
}
