// Package datagen generates the four synthetic datasets the
// experiments run on, shaped after the paper's workloads: MACCROBAT-
// style clinical case reports with standoff annotations (DICE),
// expert-labeled wildfire tweets (WEF), passages with cloze questions
// (GOTTA) and an Amazon-style product/user purchase graph (KGE). All
// generators are deterministic in their seed.
package datagen

import (
	"fmt"
	"strings"

	"repro/internal/brat"
	"repro/internal/xrand"
)

// ClinicalCase is one text file plus its annotation file — the unit of
// the MACCROBAT dataset (200 such pairs in the paper).
type ClinicalCase struct {
	ID   string
	Text string
	Ann  *brat.Document
}

var (
	ages     = []string{"34-yr-old", "58-yr-old", "7-yr-old", "81-yr-old", "25-yr-old"}
	sexes    = []string{"man", "woman", "boy", "girl"}
	symptoms = []string{
		"fever", "chronic cough", "chest pain", "shortness of breath",
		"abdominal pain", "severe headache", "fatigue", "night sweats",
		"joint swelling", "persistent nausea",
	}
	clinicalEvents = []string{"presented", "was admitted", "underwent surgery", "was discharged", "returned"}
	labs           = []string{"elevated white cell count", "low hemoglobin", "raised CRP", "abnormal liver enzymes"}
	medications    = []string{"intravenous antibiotics", "corticosteroids", "anticoagulants", "analgesics"}
	followups      = []string{
		"The remainder of the examination was unremarkable",
		"Vital signs were stable on arrival",
		"The family history was noncontributory",
		"No prior episodes were reported",
	}
)

// caseBuilder assembles text while tracking entity offsets.
type caseBuilder struct {
	text    strings.Builder
	doc     *brat.Document
	nextEnt int
	nextEv  int
}

func (b *caseBuilder) write(s string) {
	b.text.WriteString(s)
}

// entity appends text and records it as an entity of the given type,
// returning its ID.
func (b *caseBuilder) entity(typ, text string) string {
	start := b.text.Len()
	b.text.WriteString(text)
	b.nextEnt++
	id := fmt.Sprintf("T%d", b.nextEnt)
	b.doc.Entities = append(b.doc.Entities, brat.Entity{
		ID: id, Type: typ, Start: start, End: start + len(text), Text: text,
	})
	return id
}

// event records an event with the given trigger and optional theme.
func (b *caseBuilder) event(typ, trigger string, theme string) {
	b.nextEv++
	ev := brat.Event{ID: fmt.Sprintf("E%d", b.nextEv), Type: typ, Trigger: trigger}
	if theme != "" {
		ev.Args = append(ev.Args, brat.Arg{Role: "Theme", Ref: theme})
	}
	b.doc.Events = append(b.doc.Events, ev)
}

// GenerateClinicalCases builds n MACCROBAT-style (text, annotation)
// pairs. Each case mixes sentences carrying annotated events (some
// with Theme arguments, some without — the split the DICE wrangling
// filters on) with unannotated filler sentences.
func GenerateClinicalCases(n int, seed uint64) []ClinicalCase {
	r := xrand.New(seed)
	cases := make([]ClinicalCase, n)
	for i := 0; i < n; i++ {
		b := &caseBuilder{doc: &brat.Document{}}

		// Opening sentence with Age/Sex entities and a presentation
		// event whose Theme is the first symptom.
		b.write("The patient was a ")
		b.entity("Age", xrand.Choice(r, ages))
		b.write(" ")
		b.entity("Sex", xrand.Choice(r, sexes))
		b.write(" who ")
		trigger := b.entity("Clinical_event", xrand.Choice(r, clinicalEvents))
		b.write(" with complaints of ")
		theme := b.entity("Sign_symptom", xrand.Choice(r, symptoms))
		b.write(". ")
		b.event("Clinical_event", trigger, theme)

		// 3..9 further sentences of varied shapes.
		extra := 3 + r.Intn(7)
		for s := 0; s < extra; s++ {
			switch r.Intn(4) {
			case 0: // symptom event without a theme argument
				b.write("Examination revealed ")
				sym := b.entity("Sign_symptom", xrand.Choice(r, symptoms))
				b.write(". ")
				b.event("Sign_symptom", sym, "")
			case 1: // lab finding linked to a medication theme
				b.write("Laboratory tests showed ")
				lab := b.entity("Lab_value", xrand.Choice(r, labs))
				b.write(" and treatment with ")
				med := b.entity("Medication", xrand.Choice(r, medications))
				b.write(" was started. ")
				b.event("Therapeutic_procedure", lab, med)
			case 2: // clinical event without theme
				b.write("The patient subsequently ")
				ev := b.entity("Clinical_event", xrand.Choice(r, clinicalEvents))
				b.write(". ")
				b.event("Clinical_event", ev, "")
			default: // filler sentence with no annotations
				b.write(xrand.Choice(r, followups))
				b.write(". ")
			}
		}

		cases[i] = ClinicalCase{
			ID:   fmt.Sprintf("case-%04d", i),
			Text: strings.TrimRight(b.text.String(), " "),
			Ann:  b.doc,
		}
	}
	return cases
}
