package datagen

import (
	"fmt"
	"strings"

	"repro/internal/xrand"
)

// Framing indexes the four WEF climate framings.
type Framing int

const (
	// FramingLink: explicit links between wildfires and climate change.
	FramingLink Framing = iota
	// FramingAction: suggesting climate actions.
	FramingAction
	// FramingAttribution: attributing climate change to adversities
	// besides wildfires.
	FramingAttribution
	// FramingIrrelevant: not relevant to climate framing.
	FramingIrrelevant
	// NumFramings is the framing count.
	NumFramings = 4
)

// FramingNames lists the framing labels in index order.
var FramingNames = []string{"link", "action", "attribution", "irrelevant"}

// Tweet is one expert-labeled example: the text and its one-to-four
// framings.
type Tweet struct {
	ID       int64
	Text     string
	Framings [NumFramings]bool
}

var framingPhrases = [NumFramings][]string{
	{ // link
		"this wildfire is climate change in action",
		"fires like this are fueled by a warming climate",
		"climate change made this fire season explosive",
		"hotter and drier every year and now this fire",
	},
	{ // action
		"we need climate action now",
		"vote for leaders who will cut emissions",
		"invest in renewables before the next fire",
		"demand a real climate policy today",
	},
	{ // attribution
		"the drought ruining crops is climate change too",
		"heat waves and floods share the same climate cause",
		"our reservoirs are empty because the climate shifted",
		"storms keep getting worse as the planet warms",
	},
	{ // irrelevant
		"highway 50 closed near the fire line",
		"praying for the firefighters tonight",
		"smoke photos from my balcony",
		"school canceled again because of the smoke",
	},
}

var tweetFillers = []string{
	"#wildfire", "stay safe everyone", "unbelievable", "again",
	"share this", "2020 strikes again", "watching the news",
}

var fireNames = []string{"Caldor", "Dixie", "Camp", "Glass", "August Complex", "Creek"}

// GenerateTweets builds n labeled tweets. Each tweet carries one to
// four framings; its text contains one phrase per active framing plus
// noise, so the framing markers are learnable but not trivial.
func GenerateTweets(n int, seed uint64) []Tweet {
	r := xrand.New(seed)
	tweets := make([]Tweet, n)
	for i := 0; i < n; i++ {
		var t Tweet
		t.ID = int64(i)
		// Pick 1-4 framings; an irrelevant-only tweet is common.
		k := 1 + r.WeightedIndex([]float64{55, 25, 15, 5})
		perm := r.Perm(NumFramings)
		var parts []string
		for _, f := range perm[:k] {
			t.Framings[f] = true
			parts = append(parts, xrand.Choice(r, framingPhrases[f]))
		}
		parts = append(parts, fmt.Sprintf("%s fire", xrand.Choice(r, fireNames)))
		if r.Bool(0.7) {
			parts = append(parts, xrand.Choice(r, tweetFillers))
		}
		r.Shuffle(len(parts), func(a, b int) { parts[a], parts[b] = parts[b], parts[a] })
		t.Text = strings.Join(parts, " ")
		tweets[i] = t
	}
	return tweets
}

// Labels returns the framing matrix of a tweet slice (rows are
// tweets, columns framings).
func Labels(tweets []Tweet) [][]bool {
	out := make([][]bool, len(tweets))
	for i, t := range tweets {
		row := make([]bool, NumFramings)
		copy(row, t.Framings[:])
		out[i] = row
	}
	return out
}

// Texts returns the text column of a tweet slice.
func Texts(tweets []Tweet) []string {
	out := make([]string, len(tweets))
	for i, t := range tweets {
		out[i] = t.Text
	}
	return out
}
