package datagen

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ml/genqa"
	"repro/internal/textproc"
)

func TestClinicalCasesShape(t *testing.T) {
	cases := GenerateClinicalCases(20, 1)
	if len(cases) != 20 {
		t.Fatalf("cases = %d", len(cases))
	}
	for _, c := range cases {
		if c.Text == "" || len(c.Ann.Entities) == 0 || len(c.Ann.Events) == 0 {
			t.Fatalf("case %s degenerate", c.ID)
		}
	}
}

func TestClinicalAnnotationsValid(t *testing.T) {
	for _, c := range GenerateClinicalCases(50, 2) {
		if err := c.Ann.Validate(len(c.Text)); err != nil {
			t.Fatalf("case %s: %v", c.ID, err)
		}
	}
}

func TestClinicalSpansMatchText(t *testing.T) {
	for _, c := range GenerateClinicalCases(50, 3) {
		for _, e := range c.Ann.Entities {
			if c.Text[e.Start:e.End] != e.Text {
				t.Fatalf("case %s entity %s: span %q != text %q", c.ID, e.ID, c.Text[e.Start:e.End], e.Text)
			}
		}
	}
}

func TestClinicalEntitiesInsideSentences(t *testing.T) {
	// Every entity span must lie within exactly one sentence — the
	// property the DICE sentence-linking join depends on.
	for _, c := range GenerateClinicalCases(30, 4) {
		sents := textproc.SplitSentences(c.Text)
		for _, e := range c.Ann.Entities {
			found := 0
			for _, s := range sents {
				if e.Start >= s.Start && e.End <= s.End {
					found++
				}
			}
			if found != 1 {
				t.Fatalf("case %s entity %s in %d sentences", c.ID, e.ID, found)
			}
		}
	}
}

func TestClinicalEventMixIncludesThemes(t *testing.T) {
	withTheme, withoutTheme := 0, 0
	for _, c := range GenerateClinicalCases(100, 5) {
		for _, ev := range c.Ann.Events {
			if len(ev.Args) > 0 {
				withTheme++
			} else {
				withoutTheme++
			}
		}
	}
	if withTheme == 0 || withoutTheme == 0 {
		t.Fatalf("need both event kinds: with=%d without=%d", withTheme, withoutTheme)
	}
}

func TestClinicalDeterministic(t *testing.T) {
	a := GenerateClinicalCases(5, 9)
	b := GenerateClinicalCases(5, 9)
	for i := range a {
		if a[i].Text != b[i].Text {
			t.Fatal("generation not deterministic")
		}
	}
	c := GenerateClinicalCases(5, 10)
	same := 0
	for i := range a {
		if a[i].Text == c[i].Text {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds gave identical output")
	}
}

func TestTweetsShape(t *testing.T) {
	tweets := GenerateTweets(800, 1)
	if len(tweets) != 800 {
		t.Fatalf("tweets = %d", len(tweets))
	}
	counts := make([]int, NumFramings+1)
	for _, tw := range tweets {
		n := 0
		for _, f := range tw.Framings {
			if f {
				n++
			}
		}
		if n < 1 || n > 4 {
			t.Fatalf("tweet %d has %d framings", tw.ID, n)
		}
		counts[n]++
		if tw.Text == "" {
			t.Fatal("empty tweet text")
		}
	}
	if counts[1] == 0 || counts[2] == 0 {
		t.Fatalf("framing count distribution degenerate: %v", counts)
	}
}

func TestTweetLabelsAndTexts(t *testing.T) {
	tweets := GenerateTweets(10, 2)
	labels := Labels(tweets)
	texts := Texts(tweets)
	if len(labels) != 10 || len(texts) != 10 {
		t.Fatal("helper lengths wrong")
	}
	for i := range tweets {
		if texts[i] != tweets[i].Text {
			t.Fatal("texts mismatch")
		}
		for k := 0; k < NumFramings; k++ {
			if labels[i][k] != tweets[i].Framings[k] {
				t.Fatal("labels mismatch")
			}
		}
	}
}

func TestTweetFramingsLearnableMarkers(t *testing.T) {
	// Every active framing should be witnessed by one of its phrases.
	tweets := GenerateTweets(200, 3)
	for _, tw := range tweets {
		for f := 0; f < NumFramings; f++ {
			if !tw.Framings[f] {
				continue
			}
			found := false
			for _, p := range framingPhrases[f] {
				if strings.Contains(tw.Text, p) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("tweet %d lacks a phrase for framing %s: %q", tw.ID, FramingNames[f], tw.Text)
			}
		}
	}
}

func TestPassagesShape(t *testing.T) {
	ps := GeneratePassages(16, 5, 1)
	if len(ps) != 16 {
		t.Fatalf("passages = %d", len(ps))
	}
	for _, p := range ps {
		if p.Text == "" || len(p.QAs) == 0 {
			t.Fatalf("passage %s degenerate", p.ID)
		}
		for _, qa := range p.QAs {
			if qa.Context != p.Text {
				t.Fatal("cloze context not the passage text")
			}
			if !strings.Contains(qa.Context, qa.Answer) {
				t.Fatalf("answer %q not in context", qa.Answer)
			}
			if !strings.Contains(qa.Cloze, genqa.MaskToken) {
				t.Fatalf("cloze %q lacks mask", qa.Cloze)
			}
		}
	}
}

func TestPassagesAnswerable(t *testing.T) {
	// The generative model should answer most generated clozes — the
	// datasets must actually exercise the inference path.
	m := genqa.NewModel()
	ps := GeneratePassages(8, 5, 7)
	var res genqa.EvalResult
	total := 0
	for _, p := range ps {
		r, err := m.Evaluate(p.QAs)
		if err != nil {
			t.Fatal(err)
		}
		res.EM += r.EM * float64(r.N)
		total += r.N
	}
	em := res.EM / float64(total)
	if em < 0.8 {
		t.Fatalf("exact match on synthetic passages = %v", em)
	}
}

func TestProductWorldShape(t *testing.T) {
	w := GenerateProducts(1000, 8, 0.1, 1)
	if len(w.Products) != 1000 || len(w.Users) != 8 {
		t.Fatalf("world = %d products, %d users", len(w.Products), len(w.Users))
	}
	outOfStock := 0
	for _, p := range w.Products {
		if !p.InStock {
			outOfStock++
		}
		if p.ASIN == "" || p.Title == "" || p.Category == "" || p.Price <= 0 {
			t.Fatalf("degenerate product %+v", p)
		}
	}
	frac := float64(outOfStock) / 1000
	if frac < 0.05 || frac > 0.15 {
		t.Fatalf("out-of-stock fraction = %v", frac)
	}
	if len(w.Purchases) != 8*12 {
		t.Fatalf("purchases = %d", len(w.Purchases))
	}
}

func TestProductPurchasesMatchPreferences(t *testing.T) {
	w := GenerateProducts(800, 8, 0, 2)
	inCat := 0
	for _, tr := range w.Purchases {
		p := w.ProductByASIN(tr.Tail)
		if p == nil {
			t.Fatalf("purchase references unknown product %s", tr.Tail)
		}
		if p.Category == w.UserCategory[tr.Head] {
			inCat++
		}
	}
	if frac := float64(inCat) / float64(len(w.Purchases)); frac < 0.8 {
		t.Fatalf("in-category purchase fraction = %v", frac)
	}
}

func TestEntityNames(t *testing.T) {
	w := GenerateProducts(10, 2, 0, 3)
	names := w.EntityNames()
	if len(names) != 12 {
		t.Fatalf("entities = %d", len(names))
	}
	if names[0] != "user-000" || names[2] != "B000000000" {
		t.Fatalf("entity order wrong: %v", names[:3])
	}
}

func TestProductByASINMissing(t *testing.T) {
	w := GenerateProducts(5, 1, 0, 4)
	if w.ProductByASIN("nope") != nil {
		t.Fatal("missing ASIN should give nil")
	}
}

func TestPropertyGeneratorsDeterministic(t *testing.T) {
	f := func(seed uint64) bool {
		t1 := GenerateTweets(5, seed)
		t2 := GenerateTweets(5, seed)
		for i := range t1 {
			if t1[i].Text != t2[i].Text || t1[i].Framings != t2[i].Framings {
				return false
			}
		}
		p1 := GeneratePassages(2, 3, seed)
		p2 := GeneratePassages(2, 3, seed)
		for i := range p1 {
			if p1[i].Text != p2[i].Text {
				return false
			}
		}
		w1 := GenerateProducts(20, 2, 0.1, seed)
		w2 := GenerateProducts(20, 2, 0.1, seed)
		for i := range w1.Products {
			if w1.Products[i] != w2.Products[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
