package datagen

import (
	"fmt"
	"strings"

	"repro/internal/ml/genqa"
	"repro/internal/xrand"
)

// Passage is one GOTTA input paragraph with its cloze
// question/answer pairs.
type Passage struct {
	ID   string
	Text string
	QAs  []genqa.Example
}

var qaSubjects = []string{"the expedition", "the committee", "the laboratory", "the orchestra", "the museum"}
var qaVerbs = []string{"announced", "completed", "documented", "postponed", "rehearsed"}
var qaObjects = []string{
	"a new field survey", "the annual budget review", "an unusual mineral sample",
	"the winter concert series", "a restored medieval manuscript", "the coastal mapping project",
	"a joint research agreement", "the visitor education program",
}
var qaTails = []string{
	"after months of preparation", "despite the funding delays", "to wide public interest",
	"under difficult conditions", "earlier than planned",
}

// GeneratePassages builds n passages of sentsPer sentences each. Every
// sentence contributes one cloze question whose answer is the
// sentence's object phrase, matching GOTTA's cloze-augmentation input.
func GeneratePassages(n, sentsPer int, seed uint64) []Passage {
	r := xrand.New(seed)
	out := make([]Passage, n)
	for i := 0; i < n; i++ {
		var sentences []string
		var qas []genqa.Example
		used := map[string]bool{}
		for s := 0; s < sentsPer; s++ {
			obj := xrand.Choice(r, qaObjects)
			// Distinct objects per passage keep answers unambiguous.
			for used[obj] && len(used) < len(qaObjects) {
				obj = xrand.Choice(r, qaObjects)
			}
			used[obj] = true
			sentence := fmt.Sprintf("%s %s %s %s.",
				capitalize(xrand.Choice(r, qaSubjects)),
				xrand.Choice(r, qaVerbs),
				obj,
				xrand.Choice(r, qaTails))
			sentences = append(sentences, sentence)
			cloze, err := genqa.MakeCloze(sentence, obj)
			if err == nil {
				qas = append(qas, genqa.Example{Cloze: cloze, Answer: obj})
			}
		}
		text := strings.Join(sentences, " ")
		for q := range qas {
			qas[q].Context = text
		}
		out[i] = Passage{ID: fmt.Sprintf("passage-%03d", i), Text: text, QAs: qas}
	}
	return out
}

// capitalize uppercases the first byte of an ASCII sentence start.
func capitalize(s string) string {
	if s == "" || s[0] < 'a' || s[0] > 'z' {
		return s
	}
	return string(s[0]-'a'+'A') + s[1:]
}
