package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// pkgSrc is one parsed, partially type-checked package: the unit the
// lint rules walk.
type pkgSrc struct {
	// rel is the package directory relative to the module root,
	// slash-separated ("" when outside the module, e.g. fixtures).
	rel   string
	fset  *token.FileSet
	files []*ast.File
	info  *types.Info
}

// moduleImporter resolves same-module imports from source (signatures
// only) and stubs every other import with an empty package, so the
// linter never needs a build cache. Type errors are ignored: partial
// type information is enough for the rules, which all degrade safely
// when an expression's type is unknown.
type moduleImporter struct {
	cfg     Config
	fset    *token.FileSet
	cache   map[string]*types.Package
	loading map[string]bool
}

func newModuleImporter(cfg Config) *moduleImporter {
	return &moduleImporter{
		cfg:     cfg,
		fset:    token.NewFileSet(),
		cache:   make(map[string]*types.Package),
		loading: make(map[string]bool),
	}
}

// stub returns an empty, complete package for an unresolvable path.
func stub(path string) *types.Package {
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	return p
}

// Import implements types.Importer.
func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.cache[path]; ok {
		return p, nil
	}
	prefix := m.cfg.ModulePath + "/"
	if m.cfg.ModulePath == "" || !strings.HasPrefix(path, prefix) || m.loading[path] {
		p := stub(path)
		m.cache[path] = p
		return p, nil
	}
	m.loading[path] = true
	defer delete(m.loading, path)

	dir := filepath.Join(m.cfg.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(path, prefix)))
	files, _, err := parseGoDir(m.fset, dir)
	if err != nil || len(files) == 0 {
		p := stub(path)
		m.cache[path] = p
		return p, nil
	}
	conf := types.Config{
		Importer:         m,
		Error:            func(error) {},
		IgnoreFuncBodies: true,
		FakeImportC:      true,
	}
	p, _ := conf.Check(path, m.fset, files, nil)
	if p == nil {
		p = stub(path)
	}
	m.cache[path] = p
	return p, nil
}

// parseGoDir parses every non-test .go file in dir (sorted, so results
// are deterministic) with comments attached. The returned names are the
// paths handed to the parser, which the findings report.
func parseGoDir(fset *token.FileSet, dir string) ([]*ast.File, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, filepath.Join(dir, n))
	}
	sort.Strings(names)
	return parseGoFiles(fset, names)
}

// parseGoFiles parses the given files with comments attached.
func parseGoFiles(fset *token.FileSet, names []string) ([]*ast.File, []string, error) {
	var files []*ast.File
	var parsed []string
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
		parsed = append(parsed, name)
	}
	return files, parsed, nil
}

// checkPkg type-checks one package's files leniently and returns the
// collected (partial) type info.
func checkPkg(imp *moduleImporter, fset *token.FileSet, path string, files []*ast.File) *types.Info {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer:    imp,
		Error:       func(error) {},
		FakeImportC: true,
	}
	// The returned package is irrelevant here; only info matters, and
	// Check populates it even when type errors were ignored.
	conf.Check(path, fset, files, info) //lint:allow errdrop partial type info is expected; errors are collected by the Error hook
	return info
}

// loadPackage parses and leniently type-checks one directory.
func loadPackage(cfg Config, imp *moduleImporter, dir string) (*pkgSrc, error) {
	fset := token.NewFileSet()
	files, _, err := parseGoDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rootAbs, err := filepath.Abs(cfg.ModuleRoot)
	if err != nil {
		return nil, err
	}
	rel := ""
	if r, err := filepath.Rel(rootAbs, abs); err == nil && !strings.HasPrefix(r, "..") {
		rel = filepath.ToSlash(r)
		if rel == "." {
			rel = ""
		}
	}
	path := cfg.ModulePath
	if rel != "" {
		path = cfg.ModulePath + "/" + rel
	}
	return &pkgSrc{
		rel:   rel,
		fset:  fset,
		files: files,
		info:  checkPkg(imp, fset, path, files),
	}, nil
}

// LintPackages lints the packages in the given directories and returns
// findings sorted by position. Directories without non-test Go files
// are skipped.
func LintPackages(cfg Config, dirs []string) ([]Finding, error) {
	imp := newModuleImporter(cfg)
	var out []Finding
	for _, dir := range dirs {
		pkg, err := loadPackage(cfg, imp, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue
		}
		out = append(out, lintPkg(cfg, pkg)...)
	}
	sortFindings(out)
	return out, nil
}

// LintFiles lints the given files as one package, with every rule in
// scope regardless of path — the entry point the fixture tests use.
func LintFiles(cfg Config, names []string) ([]Finding, error) {
	fset := token.NewFileSet()
	files, _, err := parseGoFiles(fset, names)
	if err != nil {
		return nil, err
	}
	imp := newModuleImporter(cfg)
	pkg := &pkgSrc{
		rel:   "",
		fset:  fset,
		files: files,
		info:  checkPkg(imp, fset, "fixture", files),
	}
	all := Config{
		ModuleRoot:     cfg.ModuleRoot,
		ModulePath:     cfg.ModulePath,
		GoroutineScope: []string{""},
		ErrDropScope:   []string{""},
	}
	out := lintPkg(all, pkg)
	sortFindings(out)
	return out, nil
}

// ExpandPatterns resolves cmd/lint's package arguments: a literal
// directory, or a Go-style `dir/...` wildcard that walks for package
// directories, skipping testdata, hidden directories and vendor.
func ExpandPatterns(root string, patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, p := range patterns {
		base, recursive := p, false
		if p == "..." {
			base, recursive = ".", true
		} else if strings.HasSuffix(p, "/...") {
			base, recursive = strings.TrimSuffix(p, "/..."), true
		}
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, base)
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// ModulePathOf reads the module path from root/go.mod.
func ModulePathOf(root string) (string, error) {
	b, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", root)
}
