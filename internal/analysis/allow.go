package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Escape-comment grammar:
//
//	//lint:allow <rule> [reason...]
//
// The comment suppresses findings of <rule> on its own line (trailing
// form) and on the line immediately below (preceding form). The reason
// is free text; by convention it says why the hazard is intentional.

// allowSet records, per file, which (line, rule) pairs are suppressed.
type allowSet map[int]map[string]bool

// allowsOf scans a file's comments for escape comments.
func allowsOf(fset *token.FileSet, f *ast.File) allowSet {
	set := make(allowSet)
	add := func(line int, rule string) {
		if set[line] == nil {
			set[line] = make(map[string]bool)
		}
		set[line][rule] = true
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimPrefix(text, "/*")
			text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
			rest, ok := strings.CutPrefix(text, "lint:allow")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			line := fset.Position(c.Pos()).Line
			add(line, fields[0])
			add(line+1, fields[0])
		}
	}
	return set
}

// allowed reports whether a finding at pos for rule is suppressed.
func (a allowSet) allowed(fset *token.FileSet, pos token.Pos, rule string) bool {
	return a[fset.Position(pos).Line][rule]
}
