package analysis_test

import (
	"bufio"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// repoRoot locates the module root from the package directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", root, err)
	}
	return root
}

// wantMarkers extracts `// want <rule>` expectations: line -> rules.
func wantMarkers(t *testing.T, path string) map[int][]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	want := make(map[int][]string)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		_, rest, ok := strings.Cut(sc.Text(), "// want ")
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			t.Fatalf("%s:%d: empty want marker", path, line)
		}
		want[line] = append(want[line], fields[0])
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return want
}

// TestFixtures lints every fixture file and requires findings to match
// its `// want <rule>` markers exactly — each rule has at least one
// firing case and one clean/allowed case in the fixture set.
func TestFixtures(t *testing.T) {
	root := repoRoot(t)
	cfg := analysis.Config{ModuleRoot: root, ModulePath: "repro"}
	fixtures, err := filepath.Glob(filepath.Join("testdata", "src", "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) == 0 {
		t.Fatal("no fixtures under testdata/src")
	}
	seenRule := make(map[string]bool)
	for _, fx := range fixtures {
		fx := fx
		t.Run(filepath.Base(fx), func(t *testing.T) {
			want := wantMarkers(t, fx)
			finds, err := analysis.LintFiles(cfg, []string{fx})
			if err != nil {
				t.Fatal(err)
			}
			got := make(map[int][]string)
			for _, f := range finds {
				got[f.Line] = append(got[f.Line], f.Rule)
				seenRule[f.Rule] = true
			}
			for line, rules := range want {
				sort.Strings(rules)
				g := append([]string(nil), got[line]...)
				sort.Strings(g)
				if strings.Join(rules, ",") != strings.Join(g, ",") {
					t.Errorf("line %d: want rules %v, got %v", line, rules, g)
				}
			}
			for line, rules := range got {
				if len(want[line]) == 0 {
					t.Errorf("line %d: unexpected findings %v", line, rules)
				}
			}
		})
	}
	for _, rule := range analysis.Rules() {
		if !seenRule[rule] {
			t.Errorf("rule %s never fired across the fixtures", rule)
		}
	}
}

// TestRepositoryIsClean is the acceptance gate in test form: the
// determinism linter must report zero findings over the whole module.
func TestRepositoryIsClean(t *testing.T) {
	root := repoRoot(t)
	modPath, err := analysis.ModulePathOf(root)
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := analysis.ExpandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 20 {
		t.Fatalf("pattern expansion found only %d dirs; expected the whole tree", len(dirs))
	}
	finds, err := analysis.LintPackages(analysis.DefaultConfig(root, modPath), dirs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range finds {
		t.Errorf("%s", f)
	}
}

// TestScopedRules proves path scoping: a goroutine hazard outside the
// configured scope is not reported, while the same package under scope
// is.
func TestScopedRules(t *testing.T) {
	root := repoRoot(t)
	dir := t.TempDir()
	src := `package tmp

func Loose(work func()) {
	go work()
}
`
	if err := os.WriteFile(filepath.Join(dir, "tmp.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := analysis.Config{ModuleRoot: root, ModulePath: "repro"} // no scopes: rule off
	finds, err := analysis.LintPackages(out, []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range finds {
		if f.Rule == analysis.RuleGoroutine {
			t.Errorf("out-of-scope goroutine finding: %s", f)
		}
	}
	in := out
	in.GoroutineScope = []string{""} // match everything
	finds, err = analysis.LintPackages(in, []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range finds {
		if f.Rule == analysis.RuleGoroutine {
			found = true
		}
	}
	if !found {
		t.Error("in-scope goroutine hazard not reported")
	}
}
