// Fixture for the goroutine rule: launches in deterministic engine
// packages must join through a barrier in the same function.
package fixture

import "sync"

// FireAndForget launches with no barrier anywhere in the function.
func FireAndForget(work func()) {
	go work() // want goroutine
}

// TwoLoose launches twice with no barrier; both are flagged.
func TwoLoose(work func()) {
	go work() // want goroutine
	go work() // want goroutine
}

// Joined launches under a WaitGroup barrier.
func Joined(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// Signalled closes a completion channel the caller blocks on — the
// executor's done-channel pattern.
func Signalled(work func()) chan struct{} {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	return done
}

// Allowed is acknowledged with an escape comment.
func Allowed(work func()) {
	go work() //lint:allow goroutine fixture: detached by design
}
