// Fixture: map iteration order reaching serialized output directly.
package fixture

import (
	"fmt"
	"io"
	"sort"
)

// DumpUnsorted writes entries in map iteration order — every run
// serializes different bytes.
func DumpUnsorted(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want maporder
	}
}

// DumpSorted iterates sorted keys; the inner append is redeemed by the
// sort before any byte is written.
func DumpSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}
