// Fixture for the maporder rule: map iteration order must not reach
// returned slices without an intervening sort.
package fixture

import "sort"

// LeakKeys returns map keys in Go's randomized iteration order.
func LeakKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want maporder
	}
	return out
}

// LeakValuesNamed leaks through a named result.
func LeakValuesNamed(m map[string]int) (vals []int) {
	for _, v := range m {
		vals = append(vals, v) // want maporder
	}
	return
}

// SortedKeys collects then sorts — the clean idiom.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SortedSlice redeems the accumulator with sort.Slice.
func SortedSlice(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LocalOnly never returns the accumulated slice; its order is private.
func LocalOnly(m map[string]int) int {
	var tmp []string
	for k := range m {
		tmp = append(tmp, k)
	}
	n := len(tmp)
	return n
}

// Acknowledged leaks deliberately (say, into an order-insensitive
// consumer) and is escape-commented.
func Acknowledged(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //lint:allow maporder fixture: consumer sorts
	}
	return out
}
