// Fixture: the wallclock rule sees through import aliasing.
package fixture

import clock "time"

// AliasedNow hides the read behind an alias.
func AliasedNow() clock.Time {
	return clock.Now() // want wallclock
}
