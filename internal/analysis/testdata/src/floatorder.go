// Fixture for the floatorder rule: float accumulation must not happen
// in map iteration order — rounding makes the sum order-dependent.
package fixture

import "sort"

// SumValues accumulates floats in Go's randomized map order; the
// result's last ULPs change run to run.
func SumValues(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want floatorder
	}
	return sum
}

// MeanSpelledOut leaks the same way through the x = x + v form.
func MeanSpelledOut(m map[string]float64) (mean float64) {
	for _, v := range m {
		mean = mean + v // want floatorder
	}
	return mean / float64(len(m))
}

// SumInts is exact: integer addition commutes, order cannot change
// the result.
func SumInts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// SumSortedKeys is the deterministic idiom: fix the order, then fold.
func SumSortedKeys(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// ScaleInPlace updates each key's slot exactly once per iteration;
// per-key updates commute across iterations, so order cannot change
// the result. Only cross-key folds are hazardous.
func ScaleInPlace(m map[string]float64, k float64) {
	for key := range m {
		m[key] *= k
	}
}

// ToleratedSum deliberately accepts the ULP jitter and says so.
func ToleratedSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //lint:allow floatorder fixture: consumer rounds to 2 decimals
	}
	return sum
}
