// Fixture for the rand rule: math/rand draws from process-global,
// seed-uncontrolled state; deterministic code uses xrand.
package fixture

import "math/rand" // want rand

// Roll is nondeterministic across runs.
func Roll() int {
	return rand.Intn(6)
}
