// Fixture for the wallclock rule: host-clock reads must go through
// the telemetry shim. Parsed by the lint tests; never compiled into
// the module.
package fixture

import "time"

// Epoch reads the host clock directly — the hazard.
func Epoch() time.Time {
	return time.Now() // want wallclock
}

// Elapsed derives a duration from the host clock — same hazard.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want wallclock
}

// Deadline reads the clock through Until.
func Deadline(t0 time.Time) time.Duration {
	return time.Until(t0) // want wallclock
}

// Shimmed is the sanctioned form: the read carries an escape comment,
// as the real shim in internal/telemetry/wallclock.go does.
func Shimmed() time.Time {
	return time.Now() //lint:allow wallclock fixture shim
}

// Derived arithmetic on caller-supplied times is fine.
func Derived(t0 time.Time) time.Time {
	return t0.Add(3 * time.Second)
}
