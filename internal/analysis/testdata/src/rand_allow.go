// Fixture: an acknowledged math/rand import passes.
package fixture

import "math/rand" //lint:allow rand fixture: non-reproducible demo only

// Shuffle is acknowledged as nondeterministic.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
