// Fixture for the sleepsync rule: time.Sleep must not stand in for
// cross-goroutine synchronization.
package fixture

import (
	"sync"
	"time"
)

// SleepForWorker launches a goroutine and sleeps "long enough" for it
// to finish before reading the result — a race with the scheduler even
// though a real join exists later.
func SleepForWorker(work func()) {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	time.Sleep(50 * time.Millisecond) // want sleepsync
	<-done
}

// Backoff sleeps between retries; no goroutines are involved, so the
// sleep is pacing, not synchronization.
func Backoff(try func() error) error {
	var err error
	for i := 0; i < 3; i++ {
		if err = try(); err == nil {
			return nil
		}
		time.Sleep(time.Duration(i+1) * time.Millisecond)
	}
	return err
}

// JitterBeforeJoin sleeps deliberately (injected scheduling jitter in
// a stress harness) and acknowledges it; the WaitGroup is the join.
func JitterBeforeJoin(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	time.Sleep(time.Millisecond) //lint:allow sleepsync fixture: deliberate jitter before the join
	wg.Wait()
}
