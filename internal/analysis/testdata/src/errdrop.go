// Fixture for the errdrop rule: hot-path code may not discard error
// returns silently.
package fixture

import "errors"

func fallible() error { return errors.New("boom") }

func fallibleValue() (int, error) { return 0, errors.New("boom") }

type res struct{}

func (res) Close() error { return nil }

// DropStmt discards the error entirely.
func DropStmt() {
	fallible() // want errdrop
}

// DropBlank assigns the error to the blank identifier.
func DropBlank() {
	_ = fallible() // want errdrop
}

// DropTuple discards the tuple's error half.
func DropTuple() int {
	v, _ := fallibleValue() // want errdrop
	return v
}

// Handled propagates both forms.
func Handled() (int, error) {
	if err := fallible(); err != nil {
		return 0, err
	}
	return fallibleValue()
}

// DeferClose is exempt: the deferred-Close idiom.
func DeferClose(r res) {
	defer r.Close()
}

// Acknowledged discards deliberately with an escape comment.
func Acknowledged() {
	_ = fallible() //lint:allow errdrop fixture: best-effort cleanup
}
