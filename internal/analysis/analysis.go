// Package analysis is the reproduction's stdlib-only static-analysis
// suite. It hosts detlint, a determinism linter built on go/parser,
// go/ast and go/types that flags the nondeterminism hazards this
// repository's bit-equal golden tests depend on never creeping in:
// wall-clock reads outside the sanctioned telemetry shim, math/rand
// imports bypassing the seeded xrand generator, map-range iteration
// leaking Go's randomized map order into returned slices or serialized
// output, goroutine launches in the deterministic engine packages that
// do not join through a barrier, discarded error returns on the
// serde/objstore/lineage hot paths, float accumulation inside map-range
// loops (rounding makes the sum order-dependent), and time.Sleep used
// as cross-goroutine synchronization.
//
// The linter is deliberately self-contained: it resolves same-module
// imports from source and stubs everything else, so it needs neither a
// build cache nor third-party tooling. `go run ./cmd/lint ./...` runs
// it over the tree; findings are suppressed line-by-line with escape
// comments of the form
//
//	//lint:allow <rule> <reason>
//
// placed on (or immediately above) the offending line. The plan-time
// companion pass — validating workflow DAGs before execution — lives
// in dataflow.Validate; see DESIGN.md "Static analysis".
package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// Rule identifiers. The short names double as the escape-comment
// grammar's rule tokens (//lint:allow wallclock ...).
const (
	// RuleWallclock flags time.Now/time.Since/time.Until calls outside
	// the telemetry wall-clock shim.
	RuleWallclock = "wallclock"
	// RuleRand flags math/rand imports; deterministic code must draw
	// randomness from the seeded xrand generator.
	RuleRand = "rand"
	// RuleMapOrder flags map-range loops whose iteration order leaks
	// into a returned slice or serialized output without an intervening
	// sort.
	RuleMapOrder = "maporder"
	// RuleGoroutine flags goroutine launches in the deterministic
	// engine packages whose enclosing function wires no join barrier.
	RuleGoroutine = "goroutine"
	// RuleErrDrop flags discarded error returns on the hot paths that
	// feed digests and lineage fingerprints.
	RuleErrDrop = "errdrop"
	// RuleFloatOrder flags float accumulation inside a range over a map:
	// float addition does not commute under rounding, so the randomized
	// iteration order leaks into the final ULPs.
	RuleFloatOrder = "floatorder"
	// RuleSleepSync flags time.Sleep in functions that launch
	// goroutines — sleep-based synchronization races the scheduler.
	RuleSleepSync = "sleepsync"
)

// Rules lists every lint rule ID, sorted, for -rules output and docs.
func Rules() []string {
	return []string{RuleErrDrop, RuleFloatOrder, RuleGoroutine, RuleMapOrder, RuleRand, RuleSleepSync, RuleWallclock}
}

// Finding is one structured lint diagnostic.
type Finding struct {
	// File is the path as given to the loader (repo-relative when
	// invoked through cmd/lint).
	File string
	// Line and Col locate the offending token, 1-based.
	Line int
	Col  int
	// Rule is the rule ID (see the Rule* constants).
	Rule string
	// Msg explains the hazard.
	Msg string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Rule, f.Msg)
}

// Config scopes the linter. The zero value lints nothing; use
// DefaultConfig for the repository's policy.
type Config struct {
	// ModuleRoot is the directory containing go.mod; import paths under
	// ModulePath resolve to source below it.
	ModuleRoot string
	// ModulePath is the module's import path (from go.mod).
	ModulePath string
	// GoroutineScope lists package-directory prefixes (relative to
	// ModuleRoot, slash-separated) where RuleGoroutine applies. An
	// empty-string element matches every package.
	GoroutineScope []string
	// ErrDropScope is the same for RuleErrDrop.
	ErrDropScope []string
}

// DefaultConfig returns the repository policy: wallclock, rand and
// maporder everywhere; goroutine in the deterministic engine packages;
// errdrop on the serde/objstore/lineage hot paths.
func DefaultConfig(moduleRoot, modulePath string) Config {
	return Config{
		ModuleRoot:     moduleRoot,
		ModulePath:     modulePath,
		GoroutineScope: []string{"internal/sim", "internal/dataflow", "internal/lineage", "internal/relation"},
		ErrDropScope:   []string{"internal/relation", "internal/objstore", "internal/lineage"},
	}
}

// inScope reports whether the package directory (relative,
// slash-separated) falls under any of the prefixes.
func inScope(rel string, prefixes []string) bool {
	for _, p := range prefixes {
		if p == "" || rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// sortFindings orders findings by file, line, column, rule — the
// deterministic output order cmd/lint prints.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
}
