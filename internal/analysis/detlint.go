package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lintPkg applies every in-scope rule to one package.
func lintPkg(cfg Config, pkg *pkgSrc) []Finding {
	var out []Finding
	for _, f := range pkg.files {
		fl := &fileLinter{
			cfg:    cfg,
			pkg:    pkg,
			file:   f,
			allows: allowsOf(pkg.fset, f),
		}
		fl.run()
		out = append(out, fl.finds...)
	}
	return out
}

// fileLinter holds per-file lint state.
type fileLinter struct {
	cfg    Config
	pkg    *pkgSrc
	file   *ast.File
	allows allowSet
	finds  []Finding

	// timeNames are the local names binding the "time" import.
	timeNames map[string]bool
}

// report records a finding unless an escape comment suppresses it.
func (fl *fileLinter) report(pos token.Pos, rule, format string, args ...any) {
	if fl.allows.allowed(fl.pkg.fset, pos, rule) {
		return
	}
	p := fl.pkg.fset.Position(pos)
	fl.finds = append(fl.finds, Finding{
		File: p.Filename, Line: p.Line, Col: p.Column,
		Rule: rule, Msg: fmt.Sprintf(format, args...),
	})
}

func (fl *fileLinter) run() {
	fl.scanImports()
	fl.wallclockCalls()
	goroutineInScope := inScope(fl.pkg.rel, fl.cfg.GoroutineScope)
	errDropInScope := inScope(fl.pkg.rel, fl.cfg.ErrDropScope)
	for _, decl := range fl.file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		fl.mapOrder(fn)
		fl.floatOrder(fn)
		fl.sleepSync(fn)
		if goroutineInScope {
			fl.goroutines(fn)
		}
		if errDropInScope {
			fl.errDrops(fn)
		}
	}
}

// scanImports records the names binding "time" and flags math/rand.
func (fl *fileLinter) scanImports() {
	fl.timeNames = make(map[string]bool)
	for _, spec := range fl.file.Imports {
		path := strings.Trim(spec.Path.Value, `"`)
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if spec.Name != nil {
			name = spec.Name.Name
		}
		switch path {
		case "time":
			if name != "_" {
				fl.timeNames[name] = true
			}
		case "math/rand", "math/rand/v2":
			fl.report(spec.Pos(), RuleRand,
				"import of %s bypasses the seeded xrand generator; deterministic code must derive randomness from a run seed", path)
		}
	}
}

// wallclockCalls flags time.Now/Since/Until reads outside the shim.
func (fl *fileLinter) wallclockCalls() {
	if len(fl.timeNames) == 0 {
		return
	}
	ast.Inspect(fl.file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || !fl.timeNames[id.Name] {
			return true
		}
		switch sel.Sel.Name {
		case "Now", "Since", "Until":
			fl.report(call.Pos(), RuleWallclock,
				"call to time.%s outside the telemetry wall-clock shim; route wall reads through telemetry.WallClock/WallSince so determinism-sensitive code cannot observe the host clock", sel.Sel.Name)
		}
		return true
	})
}

// serializeSink reports whether a call writes to an output/encoder —
// the sinks whose byte order must not depend on map iteration.
func serializeSink(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if id, ok := sel.X.(*ast.Ident); ok && id.Name == "fmt" {
		if strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print") {
			return "fmt." + name, true
		}
		return "", false
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
		return types.ExprString(sel), true
	}
	return "", false
}

// mapOrder flags map-range loops whose iteration order escapes into a
// returned slice (without a later sort touching it) or directly into
// serialized output.
func (fl *fileLinter) mapOrder(fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !fl.isMapExpr(rs.X) {
			return true
		}
		fl.checkMapRange(fn, rs)
		return true
	})
}

// isMapExpr reports whether the (partially resolved) type of e is a
// map.
func (fl *fileLinter) isMapExpr(e ast.Expr) bool {
	t := fl.pkg.info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange analyzes one map-range statement.
func (fl *fileLinter) checkMapRange(fn *ast.FuncDecl, rs *ast.RangeStmt) {
	// Accumulators: names appended to inside the loop body.
	accs := make(map[string]token.Pos)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			if sink, ok := serializeSink(s); ok {
				fl.report(s.Pos(), RuleMapOrder,
					"map iteration order reaches serialized output via %s; iterate sorted keys instead", sink)
			}
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || i >= len(s.Lhs) {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
					continue
				}
				dst, ok := s.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if len(call.Args) > 0 {
					if src, ok := call.Args[0].(*ast.Ident); !ok || src.Name != dst.Name {
						continue
					}
				}
				accs[dst.Name] = s.Pos()
			}
		}
		return true
	})
	if len(accs) == 0 {
		return
	}
	for name, pos := range accs {
		if !fl.fnReturns(fn, name) {
			continue
		}
		if fl.sortedAfter(fn, name, rs.End()) {
			continue
		}
		fl.report(pos, RuleMapOrder,
			"iteration over map %s flows into returned slice %q with no intervening sort; the result order changes run to run", types.ExprString(rs.X), name)
	}
}

// fnReturns reports whether name is a named result of fn or is
// mentioned in any of fn's return statements.
func (fl *fileLinter) fnReturns(fn *ast.FuncDecl, name string) bool {
	if fn.Type.Results != nil {
		for _, f := range fn.Type.Results.List {
			for _, id := range f.Names {
				if id.Name == name {
					return true
				}
			}
		}
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			ast.Inspect(res, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && id.Name == name {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// sortedAfter reports whether a sorting call mentioning name appears
// after pos within fn — sort.X(name, ...), name.SortBy(...), or a
// helper whose name contains "sort".
func (fl *fileLinter) sortedAfter(fn *ast.FuncDecl, name string, pos token.Pos) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= pos || found {
			return !found
		}
		sortingCallee := false
		mentions := false
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			sortingCallee = strings.Contains(strings.ToLower(fun.Name), "sort")
		case *ast.SelectorExpr:
			if id, ok := fun.X.(*ast.Ident); ok {
				if id.Name == "sort" {
					sortingCallee = true
				}
				if id.Name == name && strings.Contains(strings.ToLower(fun.Sel.Name), "sort") {
					sortingCallee, mentions = true, true
				}
			}
		}
		if !sortingCallee {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && id.Name == name {
					mentions = true
				}
				return !mentions
			})
		}
		if mentions {
			found = true
		}
		return !found
	})
	return found
}

// isFloatExpr reports whether the (partially resolved) type of e is a
// floating-point type.
func (fl *fileLinter) isFloatExpr(e ast.Expr) bool {
	t := fl.pkg.info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// floatOrder flags float accumulation inside a range over a map.
// Float addition does not commute under rounding — (a+b)+c and
// (a+c)+b can differ in the last ULPs — so a sum built in Go's
// randomized map order changes bit pattern run to run even though the
// "same" values were added. Integer accumulation is exact and passes;
// the deterministic idiom is to sort the keys first.
func (fl *fileLinter) floatOrder(fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !fl.isMapExpr(rs.X) {
			return true
		}
		key := ""
		if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
			key = id.Name
		}
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			switch as.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range as.Lhs {
					// m[k] op= v with k the range key updates a distinct
					// slot each iteration; such per-key updates commute
					// across iterations, only cross-key folds do not.
					if ix, ok := lhs.(*ast.IndexExpr); ok && key != "" {
						if id, ok := ix.Index.(*ast.Ident); ok && id.Name == key {
							continue
						}
					}
					if fl.isFloatExpr(lhs) {
						fl.report(as.Pos(), RuleFloatOrder,
							"float accumulation into %s inside range over map %s; rounding makes the sum order-dependent — iterate sorted keys (or accumulate exactly)", types.ExprString(lhs), types.ExprString(rs.X))
					}
				}
			case token.ASSIGN:
				// The spelled-out form: x = x + v (and -, *, /).
				for i, lhs := range as.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || i >= len(as.Rhs) || !fl.isFloatExpr(lhs) {
						continue
					}
					bin, ok := as.Rhs[i].(*ast.BinaryExpr)
					if !ok {
						continue
					}
					switch bin.Op {
					case token.ADD, token.SUB, token.MUL, token.QUO:
					default:
						continue
					}
					mentions := false
					ast.Inspect(bin, func(e ast.Node) bool {
						if ref, ok := e.(*ast.Ident); ok && ref.Name == id.Name {
							mentions = true
						}
						return !mentions
					})
					if mentions {
						fl.report(as.Pos(), RuleFloatOrder,
							"float accumulation into %s inside range over map %s; rounding makes the sum order-dependent — iterate sorted keys (or accumulate exactly)", id.Name, types.ExprString(rs.X))
					}
				}
			}
			return true
		})
		return true
	})
}

// sleepSync flags time.Sleep calls in functions that also launch
// goroutines. Sleeping "long enough" for a goroutine to finish is a
// race with the scheduler, not synchronization: the sleep either
// wastes time or loses under load. Sleep as pacing (backoff loops,
// rate limiting) in goroutine-free functions passes.
func (fl *fileLinter) sleepSync(fn *ast.FuncDecl) {
	if len(fl.timeNames) == 0 {
		return
	}
	hasGo := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			hasGo = true
		}
		return !hasGo
	})
	if !hasGo {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Sleep" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && fl.timeNames[id.Name] {
			fl.report(call.Pos(), RuleSleepSync,
				"time.Sleep in %s, which launches goroutines — sleep-based synchronization races the scheduler; join through a WaitGroup, channel or done signal instead", fn.Name.Name)
		}
		return true
	})
}

// goroutines flags `go` statements in functions that wire no join
// barrier (no WaitGroup-style .Wait() call and no close of a
// completion channel anywhere in the function, nested closures
// included). The dataflow executor's launch sites pass because the
// same function closes the execution's done channel after the
// WaitGroup barrier.
func (fl *fileLinter) goroutines(fn *ast.FuncDecl) {
	hasBarrier := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
			hasBarrier = true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" {
			hasBarrier = true
		}
		return !hasBarrier
	})
	if hasBarrier {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			fl.report(g.Pos(), RuleGoroutine,
				"goroutine launched in a deterministic engine package with no join barrier in %s (no WaitGroup.Wait or close of a done channel); unjoined goroutines race the schedule", fn.Name.Name)
		}
		return true
	})
}

// errDrops flags discarded error returns: expression statements whose
// call result includes an error, and assignments of an error result to
// the blank identifier. Deferred calls are exempt (the deferred-Close
// idiom). Detection is type-driven and degrades safely: calls whose
// result type did not resolve are skipped.
func (fl *fileLinter) errDrops(fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && fl.returnsError(call) >= 0 {
				fl.report(s.Pos(), RuleErrDrop,
					"error result of %s is discarded on a hot path; handle it or acknowledge with an escape comment", calleeString(call))
			}
		case *ast.AssignStmt:
			if len(s.Rhs) != 1 {
				return true
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			errPos := fl.returnsError(call)
			if errPos < 0 {
				return true
			}
			// Single-value form: _ = f(); tuple form: x, _ := f().
			if len(s.Lhs) == 1 && errPos == 0 || errPos < len(s.Lhs) {
				if id, ok := s.Lhs[min(errPos, len(s.Lhs)-1)].(*ast.Ident); ok && id.Name == "_" {
					fl.report(s.Pos(), RuleErrDrop,
						"error result of %s is assigned to _ on a hot path; handle it or acknowledge with an escape comment", calleeString(call))
				}
			}
		}
		return true
	})
}

// returnsError returns the index of the error in the call's result
// tuple, or -1 when the call returns no error (or its type is
// unknown).
func (fl *fileLinter) returnsError(call *ast.CallExpr) int {
	t := fl.pkg.info.TypeOf(call)
	if t == nil {
		return -1
	}
	errType := types.Universe.Lookup("error").Type()
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if types.Identical(tup.At(i).Type(), errType) {
				return i
			}
		}
		return -1
	}
	if types.Identical(t, errType) {
		return 0
	}
	return -1
}

// calleeString renders a call's function expression for messages.
func calleeString(call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}
