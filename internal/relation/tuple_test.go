package relation

import "testing"

var testSchema = MustSchema(
	Field{"id", Int}, Field{"name", String}, Field{"score", Float}, Field{"ok", Bool},
)

func TestTupleValidate(t *testing.T) {
	good := Tuple{int64(1), "x", 2.5, true}
	if err := good.Validate(testSchema); err != nil {
		t.Fatal(err)
	}
	bad := []Tuple{
		{int64(1), "x", 2.5},                  // short
		{int64(1), "x", 2.5, true, false},     // long
		{1, "x", 2.5, true},                   // int not int64
		{int64(1), 5, 2.5, true},              // wrong type
		{int64(1), "x", "not a float", true},  // wrong type
		{int64(1), "x", 2.5, "not a boolean"}, // wrong type
	}
	for i, b := range bad {
		if err := b.Validate(testSchema); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestTupleCloneEqual(t *testing.T) {
	a := Tuple{int64(1), "x", 2.5, true}
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b[0] = int64(2)
	if a.Equal(b) {
		t.Fatal("mutated clone still equal")
	}
	if a[0] != int64(1) {
		t.Fatal("clone aliased original")
	}
	if a.Equal(Tuple{int64(1)}) {
		t.Fatal("length mismatch reported equal")
	}
}

func TestTupleKeyDistinguishesTypes(t *testing.T) {
	a := Tuple{int64(1)}
	b := Tuple{"1"}
	if a.Key(0) == b.Key(0) {
		t.Fatal("int64(1) and \"1\" keys collide")
	}
	c := Tuple{1.0}
	if a.Key(0) == c.Key(0) {
		t.Fatal("int64(1) and float64(1) keys collide")
	}
	d := Tuple{true}
	e := Tuple{false}
	if d.Key(0) == e.Key(0) {
		t.Fatal("bool keys collide")
	}
}

func TestTupleKeyNoConcatenationAmbiguity(t *testing.T) {
	// ("ab","c") must not collide with ("a","bc").
	a := Tuple{"ab", "c"}
	b := Tuple{"a", "bc"}
	if a.Key(0, 1) == b.Key(0, 1) {
		t.Fatal("string concatenation ambiguity in Key")
	}
}

func TestTupleAccessors(t *testing.T) {
	tp := Tuple{int64(7), "hi", 3.5, true}
	if v, err := tp.Int(0); err != nil || v != 7 {
		t.Fatalf("Int: %v %v", v, err)
	}
	if v, err := tp.Str(1); err != nil || v != "hi" {
		t.Fatalf("Str: %v %v", v, err)
	}
	if v, err := tp.Float(2); err != nil || v != 3.5 {
		t.Fatalf("Float: %v %v", v, err)
	}
	if v, err := tp.BoolAt(3); err != nil || v != true {
		t.Fatalf("BoolAt: %v %v", v, err)
	}
	if _, err := tp.Int(1); err == nil {
		t.Fatal("expected type error")
	}
	if _, err := tp.Float(0); err == nil {
		t.Fatal("expected type error")
	}
	if _, err := tp.Str(0); err == nil {
		t.Fatal("expected type error")
	}
	if _, err := tp.BoolAt(0); err == nil {
		t.Fatal("expected type error")
	}
}

func TestTupleMustAccessors(t *testing.T) {
	tp := Tuple{int64(7), "hi", 3.5, true}
	if tp.MustInt(0) != 7 || tp.MustStr(1) != "hi" || tp.MustFloat(2) != 3.5 || !tp.MustBool(3) {
		t.Fatal("must accessors wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tp.MustInt(1)
}
