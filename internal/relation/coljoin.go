package relation

import (
	"math"
	"runtime"
	"sync"
)

// Columnar equi-join kernel. The build side is hashed into an
// open-addressing table keyed by uint64 hashes of the typed key vector
// (no map, no canonical-string allocation); rows with equal keys form a
// chain in build order. The probe side scans its key vector, walks the
// matching chain per row, and emits (probe, build) index pairs; output
// columns are then gathered vector-at-a-time from both sides.
//
// With more than one partition the build side is radix-reorganized:
// hashes, keys and original row numbers are scattered into
// partition-contiguous arrays (perm maps the reorganized position back
// to the build row), so building and probing one partition touches a
// few hundred kilobytes of adjacent memory instead of random positions
// across the whole table — the cache-residency win the sharded row
// index aimed for, here made real because the probe side is scattered
// the same way and matches are then written back into probe order.
//
// Determinism contract (same as the row Joiner): output rows appear in
// probe order, with each probe row's matches in build order —
// bit-identical to the serial row-path HashJoin for every partition
// count, because partitions only re-bucket the build side (equal keys
// never split across partitions, and the scatter preserves build order
// within a partition) and match positions are restored from per-row
// match counts.
//
// Key equality matches the row path's typed index, which uses Go map
// semantics on the native key type: NaN keys never match anything
// (each NaN build row starts an unreachable chain) and -0.0 equals
// +0.0 (their hashes are normalized to collide).

// joinScratch holds the transient arrays of the radix build and the
// partition-at-a-time probe. Every element is overwritten before it is
// read (scatters fill each position exactly once, chain tails are
// written at insert before any read of that chain), so buffers are
// reused dirty; pooling them matters because the scratch for a 100k-row
// join is megabytes per call and its allocation plus zeroing showed up
// in profiles as GC time comparable to the probe loop itself.
type joinScratch struct {
	u64 []uint64
	i32 []int32
}

var joinScratchPool = sync.Pool{New: func() any { return new(joinScratch) }}

func (s *joinScratch) uint64s(n int) []uint64 {
	if cap(s.u64) < n {
		s.u64 = make([]uint64, n)
	}
	return s.u64[:n]
}

func (s *joinScratch) int32s(n int) []int32 {
	if cap(s.i32) < n {
		s.i32 = make([]int32, n)
	}
	return s.i32[:n]
}

// joinMix64 finalizes a 64-bit key hash (splitmix64 finalizer).
func joinMix64(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

// joinHashString hashes a string key with FNV-1a then finalizes.
func joinHashString(s string) uint64 {
	return joinMix64(FNVMixString(FNVOffset64, s))
}

// hashKeyCol hashes every row of a key column into dst.
func hashKeyCol(dst []uint64, cd *colData) {
	switch cd.typ {
	case Int:
		for i, v := range cd.ints {
			dst[i] = joinMix64(uint64(v))
		}
	case Float:
		for i, v := range cd.floats {
			b := math.Float64bits(v)
			if b == 0x8000000000000000 { // -0.0 must collide with +0.0
				b = 0
			}
			dst[i] = joinMix64(b)
		}
	case Bool:
		for i, v := range cd.bools {
			if v {
				dst[i] = joinMix64(1)
			} else {
				dst[i] = joinMix64(0)
			}
		}
	default:
		if cd.dict != nil {
			// Hash each distinct value once, then spread by code.
			dh := make([]uint64, len(cd.dict.vals))
			for i, v := range cd.dict.vals {
				dh[i] = joinHashString(v)
			}
			for i, code := range cd.codes {
				dst[i] = dh[code]
			}
		} else {
			for i, v := range cd.strs {
				dst[i] = joinHashString(v)
			}
		}
	}
}

// colJoiner is the built (right) side of a columnar join. With parts >
// 1, bhash, bkey, next and tails live in radix-reorganized order and
// perm maps a reorganized position to its original build row; with one
// partition they are in build order and perm is nil.
type colJoiner struct {
	plan  *joinPlan
	kind  JoinType
	build *ColTable
	bkey  colData // build key vectors, reorganized when parts > 1

	parts     int  // power of two; 1 = single table
	partShift uint // part = hash >> partShift
	heads     [][]int32
	masks     []uint32
	next      []int32
	bhash     []uint64
	perm      []int32 // reorganized position -> build row; nil if parts == 1
	offs      []int32 // partition boundaries in reorganized order
}

// nextPow2 returns the smallest power of two >= v (min 4).
func nextPow2(v int) int {
	n := 4
	for n < v {
		n <<= 1
	}
	return n
}

// eqBuild reports whether reorganized build rows i and j share a key.
// Called only on hash-equal pairs, so the string compare is rare.
func (cj *colJoiner) eqBuild(i, j int32) bool {
	cd := &cj.bkey
	switch cd.typ {
	case Int:
		return cd.ints[i] == cd.ints[j]
	case Float:
		return cd.floats[i] == cd.floats[j]
	case Bool:
		return cd.bools[i] == cd.bools[j]
	default:
		if cd.dict != nil {
			return cd.codes[i] == cd.codes[j]
		}
		return cd.strs[i] == cd.strs[j]
	}
}

// scatterByPart distributes hashes, keys and row numbers into
// partition-contiguous arrays: one sequential read pass with a handful
// of streaming write heads. fill must hold each partition's start
// offset and is consumed.
func scatterByPart[K comparable](hashes []uint64, keys []K, partShift uint, fill []int32, sh []uint64, sk []K, ord []int32) {
	for i, h := range hashes {
		p := h >> partShift
		s := fill[p]
		fill[p] = s + 1
		sh[s] = h
		sk[s] = keys[i]
		ord[s] = int32(i)
	}
}

// partOffsets counts rows per partition and returns the boundary
// offsets ([parts+1]) plus a working copy of the starts for scattering.
func partOffsets(hashes []uint64, parts int, partShift uint) (offs, fill []int32) {
	counts := make([]int32, parts)
	for _, h := range hashes {
		counts[h>>partShift]++
	}
	offs = make([]int32, parts+1)
	for p := 0; p < parts; p++ {
		offs[p+1] = offs[p] + counts[p]
	}
	fill = append([]int32(nil), offs[:parts]...)
	return offs, fill
}

// newColJoiner hashes and partitions the build side. parts is rounded
// up to a power of two; with parts > 1 the build rows are
// radix-reorganized by their high hash bits first (hash, key and row
// number each partition-contiguous), so each partition's
// open-addressing table is built and probed while cache-resident.
func newColJoiner(plan *joinPlan, kind JoinType, build *ColTable, parts int) *colJoiner {
	n := build.n
	key := &build.cols[plan.rk]
	cj := &colJoiner{plan: plan, kind: kind, build: build}
	if parts > maxJoinShards {
		parts = maxJoinShards
	}
	for parts > 1 && n < 2*parts {
		parts /= 2
	}
	if parts < 1 {
		parts = 1
	}
	// Round the fan-out up to a power of two so partition selection is a
	// shift of the high hash bits (the slot index uses the low bits).
	p := 1
	for p < parts {
		p <<= 1
	}
	cj.parts = p
	cj.partShift = 64 - uint(log2(p))
	if p == 1 {
		cj.partShift = 64 // unused
	}
	cj.next = make([]int32, n)
	cj.heads = make([][]int32, cj.parts)
	cj.masks = make([]uint32, cj.parts)
	sc := joinScratchPool.Get().(*joinScratch)
	tails := sc.int32s(n)
	if cj.parts == 1 {
		// The hash vector is retained as bhash, so it cannot come from
		// the scratch pool.
		cj.bhash = make([]uint64, n)
		hashKeyCol(cj.bhash, key)
		cj.bkey = *key
		cj.offs = []int32{0, int32(n)}
		cj.buildPart(0, 0, int32(n), tails)
		joinScratchPool.Put(sc)
		return cj
	}
	hashes := sc.uint64s(n)
	hashKeyCol(hashes, key)
	offs, fill := partOffsets(hashes, cj.parts, cj.partShift)
	cj.offs = offs
	cj.bhash = make([]uint64, n)
	cj.perm = make([]int32, n)
	cj.bkey.typ = key.typ
	switch key.typ {
	case Int:
		cj.bkey.ints = make([]int64, n)
		scatterByPart(hashes, key.ints, cj.partShift, fill, cj.bhash, cj.bkey.ints, cj.perm)
	case Float:
		cj.bkey.floats = make([]float64, n)
		scatterByPart(hashes, key.floats, cj.partShift, fill, cj.bhash, cj.bkey.floats, cj.perm)
	case Bool:
		cj.bkey.bools = make([]bool, n)
		scatterByPart(hashes, key.bools, cj.partShift, fill, cj.bhash, cj.bkey.bools, cj.perm)
	default:
		if key.dict != nil {
			cj.bkey.dict = key.dict
			cj.bkey.codes = make([]int32, n)
			scatterByPart(hashes, key.codes, cj.partShift, fill, cj.bhash, cj.bkey.codes, cj.perm)
		} else {
			cj.bkey.strs = make([]string, n)
			scatterByPart(hashes, key.strs, cj.partShift, fill, cj.bhash, cj.bkey.strs, cj.perm)
		}
	}
	for p := 0; p < cj.parts; p++ {
		cj.buildPart(p, offs[p], offs[p+1], tails)
	}
	joinScratchPool.Put(sc)
	return cj
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// buildPart inserts reorganized build rows [lo, hi) into partition p's
// open-addressing table. Ascending reorganized order is ascending build
// order within the partition (the scatter preserves it), so chains come
// out in build order.
func (cj *colJoiner) buildPart(p int, lo, hi int32, tails []int32) {
	count := int(hi - lo)
	size := nextPow2(2 * count)
	heads := make([]int32, size)
	for i := range heads {
		heads[i] = -1
	}
	mask := uint32(size - 1)
	for i := lo; i < hi; i++ {
		h := cj.bhash[i]
		slot := uint32(h) & mask
		for {
			j := heads[slot]
			if j < 0 {
				heads[slot] = i
				cj.next[i] = -1
				tails[i] = i
				break
			}
			if cj.bhash[j] == h && cj.eqBuild(i, j) {
				t := tails[j]
				cj.next[t] = i
				cj.next[i] = -1
				tails[j] = i
				break
			}
			slot = (slot + 1) & mask
		}
	}
	cj.heads[p] = heads
	cj.masks[p] = mask
}

// orig maps a reorganized build position to its original build row.
func (cj *colJoiner) orig(j int32) int32 {
	if cj.perm != nil {
		return cj.perm[j]
	}
	return j
}

// firstMatch returns the reorganized head build row whose key has hash
// h and satisfies eq, or -1.
func (cj *colJoiner) firstMatch(h uint64, eq func(int32) bool) int32 {
	p := 0
	if cj.parts > 1 {
		p = int(h >> cj.partShift)
	}
	heads := cj.heads[p]
	if len(heads) == 0 {
		return -1
	}
	mask := cj.masks[p]
	slot := uint32(h) & mask
	for {
		j := heads[slot]
		if j < 0 {
			return -1
		}
		if cj.bhash[j] == h && eq(j) {
			return j
		}
		slot = (slot + 1) & mask
	}
}

// probeScan scans probe rows [lo, hi) in order with a monomorphic
// typed inner loop (the compiler stamps one copy per key type; there is
// no per-candidate indirect call), appending (probe, build) match
// pairs; unmatched probes emit (probe, -1) under LeftOuter.
func probeScan[K comparable](cj *colJoiner, pkeys []K, bkeys []K, phash []uint64, lo, hi int, lsel, rsel []int32) ([]int32, []int32) {
	outer := cj.kind == LeftOuter
	perm := cj.perm
	multi := cj.parts > 1
	heads := cj.heads[0]
	mask := cj.masks[0]
	next := cj.next
	bhash := cj.bhash
	for i := lo; i < hi; i++ {
		h := phash[i]
		if multi {
			p := h >> cj.partShift
			heads = cj.heads[p]
			mask = cj.masks[p]
		}
		slot := uint32(h) & mask
		j := int32(-1)
		for {
			b := heads[slot]
			if b < 0 {
				break
			}
			if bhash[b] == h && pkeys[i] == bkeys[b] {
				j = b
				break
			}
			slot = (slot + 1) & mask
		}
		if j < 0 {
			if outer {
				lsel = append(lsel, int32(i))
				rsel = append(rsel, -1)
			}
			continue
		}
		if perm == nil {
			for ; j >= 0; j = next[j] {
				lsel = append(lsel, int32(i))
				rsel = append(rsel, j)
			}
		} else {
			for ; j >= 0; j = next[j] {
				lsel = append(lsel, int32(i))
				rsel = append(rsel, perm[j])
			}
		}
	}
	return lsel, rsel
}

// probeStrings is the string-key scan: dictionary-encoded probe columns
// resolve each distinct value to its build chain head once, raw string
// columns compare per row.
func (cj *colJoiner) probeStrings(left *ColTable, phash []uint64, lo, hi int, lsel, rsel []int32) ([]int32, []int32) {
	pk := &left.cols[cj.plan.lk]
	outer := cj.kind == LeftOuter
	bd := &cj.bkey
	if pk.dict != nil {
		d := pk.dict
		resolve := make([]int32, len(d.vals))
		for c, v := range d.vals {
			resolve[c] = cj.firstMatch(joinHashString(v), func(j int32) bool {
				return bd.strAt(int(j)) == v
			})
		}
		for i := lo; i < hi; i++ {
			j := resolve[pk.codes[i]]
			if j < 0 {
				if outer {
					lsel = append(lsel, int32(i))
					rsel = append(rsel, -1)
				}
				continue
			}
			for ; j >= 0; j = cj.next[j] {
				lsel = append(lsel, int32(i))
				rsel = append(rsel, cj.orig(j))
			}
		}
		return lsel, rsel
	}
	for i := lo; i < hi; i++ {
		h := phash[i]
		v := pk.strAt(i)
		j := cj.firstMatch(h, func(b int32) bool { return bd.strAt(int(b)) == v })
		if j < 0 {
			if outer {
				lsel = append(lsel, int32(i))
				rsel = append(rsel, -1)
			}
			continue
		}
		for ; j >= 0; j = cj.next[j] {
			lsel = append(lsel, int32(i))
			rsel = append(rsel, cj.orig(j))
		}
	}
	return lsel, rsel
}

// scanRange dispatches a probe scan over rows [lo, hi) to the typed
// loop for the probe key's type.
func (cj *colJoiner) scanRange(left *ColTable, phash []uint64, lo, hi int, lsel, rsel []int32) ([]int32, []int32) {
	pk := &left.cols[cj.plan.lk]
	switch pk.typ {
	case Int:
		return probeScan(cj, pk.ints, cj.bkey.ints, phash, lo, hi, lsel, rsel)
	case Float:
		return probeScan(cj, pk.floats, cj.bkey.floats, phash, lo, hi, lsel, rsel)
	case Bool:
		return probeScan(cj, pk.bools, cj.bkey.bools, phash, lo, hi, lsel, rsel)
	default:
		return cj.probeStrings(left, phash, lo, hi, lsel, rsel)
	}
}

// probePart probes with the probe side scattered by the same high hash
// bits as the build side: hashes and keys are gathered into
// partition-contiguous arrays, each partition is probed entirely within
// its own few hundred kilobytes (table, build hashes, build keys and
// probe rows all adjacent), and the match pairs are then written back
// into probe order — the position of row i's matches is the running sum
// of earlier rows' match counts — so the output is bit-identical to the
// straight scan.
func probePart[K comparable](cj *colJoiner, pkeys []K, bkeys []K, phash []uint64) (lsel, rsel []int32) {
	n := len(pkeys)
	offs, fill := partOffsets(phash, cj.parts, cj.partShift)
	sc := joinScratchPool.Get().(*joinScratch)
	sh := sc.uint64s(n)
	sk := make([]K, n)
	tri := sc.int32s(3 * n)
	ord := tri[:n]
	scatterByPart(phash, pkeys, cj.partShift, fill, sh, sk, ord)
	outer := cj.kind == LeftOuter
	perm := cj.perm
	next := cj.next
	bhash := cj.bhash
	// Pass one, partition at a time: resolve each probe row's chain head
	// and match count. No pair buffers grow here, so the second pass can
	// write the output exactly sized, straight into probe order.
	jhead := tri[n : 2*n] // chain head per scattered probe row
	nm := tri[2*n : 3*n]  // match count per original probe row
	for p := 0; p < cj.parts; p++ {
		lo, hi := offs[p], offs[p+1]
		heads := cj.heads[p]
		mask := cj.masks[p]
		for s := lo; s < hi; s++ {
			h := sh[s]
			slot := uint32(h) & mask
			j := int32(-1)
			for {
				b := heads[slot]
				if b < 0 {
					break
				}
				if bhash[b] == h && sk[s] == bkeys[b] {
					j = b
					break
				}
				slot = (slot + 1) & mask
			}
			jhead[s] = j
			c := int32(0)
			if j < 0 {
				if outer {
					c = 1
				}
			} else {
				for b := j; b >= 0; b = next[b] {
					c++
				}
			}
			nm[ord[s]] = c
		}
	}
	// Prefix-sum the counts in place: nm[i] becomes probe row i's first
	// output position.
	total := int32(0)
	for i, c := range nm {
		nm[i] = total
		total += c
	}
	lsel = make([]int32, total)
	rsel = make([]int32, total)
	// Pass two: walk each resolved chain again (still cache-resident)
	// and emit pairs at their probe-order positions.
	for p := 0; p < cj.parts; p++ {
		lo, hi := offs[p], offs[p+1]
		for s := lo; s < hi; s++ {
			j := jhead[s]
			i := ord[s]
			at := nm[i]
			if j < 0 {
				if outer {
					lsel[at] = i
					rsel[at] = -1
				}
				continue
			}
			for ; j >= 0; j = next[j] {
				lsel[at] = i
				rsel[at] = perm[j]
				at++
			}
		}
	}
	joinScratchPool.Put(sc)
	return lsel, rsel
}

// probeByPartition dispatches the partition-at-a-time probe to the
// typed loop for the probe key's type, or reports false for string
// keys (which take the dictionary-resolving scan instead).
func (cj *colJoiner) probeByPartition(left *ColTable, phash []uint64) (lsel, rsel []int32, ok bool) {
	pk := &left.cols[cj.plan.lk]
	switch pk.typ {
	case Int:
		lsel, rsel = probePart(cj, pk.ints, cj.bkey.ints, phash)
	case Float:
		lsel, rsel = probePart(cj, pk.floats, cj.bkey.floats, phash)
	case Bool:
		lsel, rsel = probePart(cj, pk.bools, cj.bkey.bools, phash)
	default:
		return nil, nil, false
	}
	return lsel, rsel, true
}

// probe joins a whole probe table, returning the columnar output. With
// more than one partition and spare processors the probe vector is
// split into contiguous chunks joined concurrently; chunk outputs
// concatenate in chunk order, so the result is bit-identical to a
// serial probe.
func (cj *colJoiner) probe(left *ColTable) *ColTable {
	pk := &left.cols[cj.plan.lk]
	var phash []uint64
	if !(pk.typ == String && pk.dict != nil) {
		phash = make([]uint64, left.n)
		hashKeyCol(phash, pk)
	}
	var lsel, rsel []int32
	workers := cj.parts
	if w := runtime.GOMAXPROCS(0); w < workers {
		workers = w
	}
	if workers == 1 && cj.parts > 1 && phash != nil && left.n >= 4096 {
		// Single processor, partitioned build: probe partition-by-
		// partition for cache residency instead of spawning goroutines.
		if ls, rs, ok := cj.probeByPartition(left, phash); ok {
			return cj.gatherOutput(left, ls, rs)
		}
	}
	if workers > 1 && left.n >= 4096 {
		chunk := (left.n + workers - 1) / workers
		lparts := make([][]int32, workers)
		rparts := make([][]int32, workers)
		var wg sync.WaitGroup
		slot := 0
		for lo := 0; lo < left.n; lo += chunk {
			hi := lo + chunk
			if hi > left.n {
				hi = left.n
			}
			wg.Add(1)
			go func(slot, lo, hi int) {
				defer wg.Done()
				ls := make([]int32, 0, hi-lo)
				rs := make([]int32, 0, hi-lo)
				lparts[slot], rparts[slot] = cj.scanRange(left, phash, lo, hi, ls, rs)
			}(slot, lo, hi)
			slot++
		}
		wg.Wait()
		n := 0
		for _, p := range lparts {
			n += len(p)
		}
		lsel = make([]int32, 0, n)
		rsel = make([]int32, 0, n)
		for s := range lparts {
			lsel = append(lsel, lparts[s]...)
			rsel = append(rsel, rparts[s]...)
		}
	} else {
		lsel = make([]int32, 0, left.n)
		rsel = make([]int32, 0, left.n)
		lsel, rsel = cj.scanRange(left, phash, 0, left.n, lsel, rsel)
	}
	return cj.gatherOutput(left, lsel, rsel)
}

// gatherOutput materializes the joined columns: left columns gathered
// by lsel, right columns (minus the key) gathered by rsel with -1
// yielding the LeftOuter zero padding.
func (cj *colJoiner) gatherOutput(left *ColTable, lsel, rsel []int32) *ColTable {
	w := cj.plan.out.Len()
	out := &ColTable{schema: cj.plan.out, n: len(lsel), cols: make([]colData, w)}
	lw := left.schema.Len()
	for p := 0; p < lw; p++ {
		gatherInto(&out.cols[p], &left.cols[p], lsel)
	}
	for k, rp := range cj.plan.rightPos {
		gatherNullable(&out.cols[lw+k], &cj.build.cols[rp], rsel)
	}
	return out
}

// gatherInto fills dst with src gathered by sel (no -1 entries).
func gatherInto(dst, src *colData, sel []int32) {
	dst.typ = src.typ
	switch src.typ {
	case Int:
		vs := make([]int64, len(sel))
		for i, s := range sel {
			vs[i] = src.ints[s]
		}
		dst.ints = vs
	case Float:
		vs := make([]float64, len(sel))
		for i, s := range sel {
			vs[i] = src.floats[s]
		}
		dst.floats = vs
	case Bool:
		vs := make([]bool, len(sel))
		for i, s := range sel {
			vs[i] = src.bools[s]
		}
		dst.bools = vs
	default:
		if src.dict != nil {
			codes := make([]int32, len(sel))
			for i, s := range sel {
				codes[i] = src.codes[s]
			}
			dst.codes = codes
			dst.dict = src.dict
		} else {
			vs := make([]string, len(sel))
			for i, s := range sel {
				vs[i] = src.strs[s]
			}
			dst.strs = vs
		}
	}
}

// gatherNullable is gatherInto where sel entries of -1 produce the
// column type's zero value (the LeftOuter padding).
func gatherNullable(dst, src *colData, sel []int32) {
	dst.typ = src.typ
	switch src.typ {
	case Int:
		vs := make([]int64, len(sel))
		for i, s := range sel {
			if s >= 0 {
				vs[i] = src.ints[s]
			}
		}
		dst.ints = vs
	case Float:
		vs := make([]float64, len(sel))
		for i, s := range sel {
			if s >= 0 {
				vs[i] = src.floats[s]
			}
		}
		dst.floats = vs
	case Bool:
		vs := make([]bool, len(sel))
		for i, s := range sel {
			if s >= 0 {
				vs[i] = src.bools[s]
			}
		}
		dst.bools = vs
	default:
		if src.dict != nil {
			d, emptyCode := src.dict.withEmpty()
			codes := make([]int32, len(sel))
			for i, s := range sel {
				if s >= 0 {
					codes[i] = src.codes[s]
				} else {
					codes[i] = emptyCode
				}
			}
			dst.codes = codes
			dst.dict = d
		} else {
			vs := make([]string, len(sel))
			for i, s := range sel {
				if s >= 0 {
					vs[i] = src.strs[s]
				}
			}
			dst.strs = vs
		}
	}
}
