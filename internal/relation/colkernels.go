package relation

import "fmt"

// Vectorized filter kernels. Each Select* scans one typed column vector
// with a tight per-type loop — no Tuple construction, no interface
// dispatch — and returns a selection vector of the qualifying row
// indices, in ascending row order. Passing a previous selection vector
// narrows it (conjunction), so multi-column predicates compose without
// materializing intermediate tables; Gather (or FilterCol) materializes
// the survivors once at the end.

// selAll returns the identity selection for n rows.
func selAll(n int) SelVec {
	sel := make(SelVec, n)
	for i := range sel {
		sel[i] = int32(i)
	}
	return sel
}

func (c *ColTable) colOf(name string, want Type, kernel string) (*colData, error) {
	p := c.schema.IndexOf(name)
	if p < 0 {
		return nil, fmt.Errorf("relation: %s: unknown column %q", kernel, name)
	}
	cd := &c.cols[p]
	if cd.typ != want {
		return nil, fmt.Errorf("relation: %s: column %q is %s, need %s", kernel, name, cd.typ, want)
	}
	return cd, nil
}

// SelectInt narrows in (nil means all rows) to rows whose named Int
// column satisfies keep.
func (c *ColTable) SelectInt(name string, keep func(int64) bool, in SelVec) (SelVec, error) {
	cd, err := c.colOf(name, Int, "select-int")
	if err != nil {
		return nil, err
	}
	vs := cd.ints
	if in == nil {
		out := SelVec{} // non-nil: an empty selection must not read as scan-all
		for i, v := range vs {
			if keep(v) {
				out = append(out, int32(i))
			}
		}
		return out, nil
	}
	out := in[:0:len(in)]
	for _, s := range in {
		if keep(vs[s]) {
			out = append(out, s)
		}
	}
	return out, nil
}

// SelectFloat narrows in to rows whose named Float column satisfies
// keep.
func (c *ColTable) SelectFloat(name string, keep func(float64) bool, in SelVec) (SelVec, error) {
	cd, err := c.colOf(name, Float, "select-float")
	if err != nil {
		return nil, err
	}
	vs := cd.floats
	if in == nil {
		out := SelVec{} // non-nil: an empty selection must not read as scan-all
		for i, v := range vs {
			if keep(v) {
				out = append(out, int32(i))
			}
		}
		return out, nil
	}
	out := in[:0:len(in)]
	for _, s := range in {
		if keep(vs[s]) {
			out = append(out, s)
		}
	}
	return out, nil
}

// SelectBool narrows in to rows whose named Bool column equals want.
func (c *ColTable) SelectBool(name string, want bool, in SelVec) (SelVec, error) {
	cd, err := c.colOf(name, Bool, "select-bool")
	if err != nil {
		return nil, err
	}
	vs := cd.bools
	if in == nil {
		out := SelVec{} // non-nil: an empty selection must not read as scan-all
		for i, v := range vs {
			if v == want {
				out = append(out, int32(i))
			}
		}
		return out, nil
	}
	out := in[:0:len(in)]
	for _, s := range in {
		if vs[s] == want {
			out = append(out, s)
		}
	}
	return out, nil
}

// SelectStr narrows in to rows whose named String column satisfies
// keep. On a dictionary-encoded column the predicate runs once per
// distinct value — the verdict is precomputed over the dictionary and
// the row scan is a pure int32 lookup.
func (c *ColTable) SelectStr(name string, keep func(string) bool, in SelVec) (SelVec, error) {
	cd, err := c.colOf(name, String, "select-str")
	if err != nil {
		return nil, err
	}
	if cd.dict != nil {
		verdict := make([]bool, len(cd.dict.vals))
		for i, v := range cd.dict.vals {
			verdict[i] = keep(v)
		}
		codes := cd.codes
		if in == nil {
			out := SelVec{} // non-nil: an empty selection must not read as scan-all
			for i, code := range codes {
				if verdict[code] {
					out = append(out, int32(i))
				}
			}
			return out, nil
		}
		out := in[:0:len(in)]
		for _, s := range in {
			if verdict[codes[s]] {
				out = append(out, s)
			}
		}
		return out, nil
	}
	vs := cd.strs
	if in == nil {
		out := SelVec{} // non-nil: an empty selection must not read as scan-all
		for i, v := range vs {
			if keep(v) {
				out = append(out, int32(i))
			}
		}
		return out, nil
	}
	out := in[:0:len(in)]
	for _, s := range in {
		if keep(vs[s]) {
			out = append(out, s)
		}
	}
	return out, nil
}

// FilterCol gathers a selection into a row-API Table backed by the
// gathered columns — the columnar counterpart of Filter.
func (c *ColTable) FilterCol(sel SelVec) *Table {
	return FromColumnar(c.Gather(sel))
}
