package relation

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// The binary encoding is a compact, self-describing row format:
// each value is a 1-byte type tag followed by a fixed 8-byte payload
// (Int, Float), a single byte (Bool), or a uvarint length plus bytes
// (String). It exists for two reasons: the engines account
// serialization costs in real encoded bytes rather than guesses, and a
// lossless round trip is an easily property-tested invariant.

const (
	tagInt    = 0x01
	tagFloat  = 0x02
	tagString = 0x03
	tagBool   = 0x04
)

// EncodeTuple appends the encoding of t to dst and returns the
// extended slice.
func EncodeTuple(dst []byte, t Tuple) ([]byte, error) {
	var scratch [binary.MaxVarintLen64]byte
	dst = binary.AppendUvarint(dst, uint64(len(t)))
	for i, v := range t {
		switch v := v.(type) {
		case int64:
			dst = append(dst, tagInt)
			binary.LittleEndian.PutUint64(scratch[:8], uint64(v))
			dst = append(dst, scratch[:8]...)
		case float64:
			dst = append(dst, tagFloat)
			binary.LittleEndian.PutUint64(scratch[:8], math.Float64bits(v))
			dst = append(dst, scratch[:8]...)
		case string:
			dst = append(dst, tagString)
			dst = binary.AppendUvarint(dst, uint64(len(v)))
			dst = append(dst, v...)
		case bool:
			dst = append(dst, tagBool)
			if v {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		default:
			return nil, fmt.Errorf("relation: encode: position %d has unsupported type %T", i, v)
		}
	}
	return dst, nil
}

// uvarintCanon decodes a uvarint, rejecting non-minimal encodings (the
// encoder only ever emits minimal ones, and accepting padded forms
// would let two different byte strings carry the same tuple — poison
// for digest-keyed lineage).
func uvarintCanon(src []byte) (uint64, int) {
	v, read := binary.Uvarint(src)
	if read > 0 && read != uvarintLen(v) {
		return 0, 0
	}
	return v, read
}

// DecodeTuple decodes one tuple from src, returning the tuple and the
// number of bytes consumed.
func DecodeTuple(src []byte) (Tuple, int, error) {
	n, read := uvarintCanon(src)
	if read <= 0 {
		return nil, 0, fmt.Errorf("relation: decode: bad tuple header")
	}
	off := read
	// Cap the preallocation by what the buffer can hold (every value
	// costs at least two bytes); a corrupt header must not allocate.
	capHint := n
	if max := uint64(len(src)-off) / 2; capHint > max {
		capHint = max
	}
	t := make(Tuple, 0, capHint)
	for i := uint64(0); i < n; i++ {
		if off >= len(src) {
			return nil, 0, fmt.Errorf("relation: decode: truncated at value %d", i)
		}
		tag := src[off]
		off++
		switch tag {
		case tagInt:
			if off+8 > len(src) {
				return nil, 0, fmt.Errorf("relation: decode: truncated int")
			}
			t = append(t, int64(binary.LittleEndian.Uint64(src[off:])))
			off += 8
		case tagFloat:
			if off+8 > len(src) {
				return nil, 0, fmt.Errorf("relation: decode: truncated float")
			}
			t = append(t, math.Float64frombits(binary.LittleEndian.Uint64(src[off:])))
			off += 8
		case tagString:
			l, r := uvarintCanon(src[off:])
			if r <= 0 {
				return nil, 0, fmt.Errorf("relation: decode: bad string length")
			}
			off += r
			// Compare in uint64 space: int(l) of a 64-bit length can wrap
			// negative and slip past an additive bounds check.
			if l > uint64(len(src)-off) {
				return nil, 0, fmt.Errorf("relation: decode: truncated string")
			}
			t = append(t, string(src[off:off+int(l)]))
			off += int(l)
		case tagBool:
			if off >= len(src) {
				return nil, 0, fmt.Errorf("relation: decode: truncated bool")
			}
			// The encoder emits exactly 0 or 1; accepting other bytes would
			// break the decode-reencode round trip.
			if src[off] > 1 {
				return nil, 0, fmt.Errorf("relation: decode: bad bool byte 0x%02x", src[off])
			}
			t = append(t, src[off] == 1)
			off++
		default:
			return nil, 0, fmt.Errorf("relation: decode: unknown tag 0x%02x", tag)
		}
	}
	return t, off, nil
}

// EncodedSize returns the number of bytes EncodeTuple would produce,
// without allocating the encoding.
func EncodedSize(t Tuple) int64 {
	size := int64(uvarintLen(uint64(len(t))))
	for _, v := range t {
		switch v := v.(type) {
		case int64, float64:
			size += 9
		case string:
			size += 1 + int64(uvarintLen(uint64(len(v)))) + int64(len(v))
		case bool:
			size += 2
		}
	}
	return size
}

// Encoder reuses one grow-once buffer across encode calls. Get one
// from GetEncoder and return it with Release; the pooling removes the
// per-tuple buffer allocation from hot byte-accounting loops.
type Encoder struct {
	buf []byte
}

var encoderPool = sync.Pool{
	New: func() any { return &Encoder{buf: make([]byte, 0, 1024)} },
}

// GetEncoder fetches a pooled encoder.
func GetEncoder() *Encoder { return encoderPool.Get().(*Encoder) }

// Release returns the encoder (and its buffer) to the pool. The slices
// returned by EncodeTuple become invalid.
func (e *Encoder) Release() {
	encoderPool.Put(e)
}

// EncodeTuple encodes one tuple into the encoder's buffer and returns
// the encoding, valid until the next call or Release.
func (e *Encoder) EncodeTuple(t Tuple) ([]byte, error) {
	b, err := EncodeTuple(e.buf[:0], t)
	if err != nil {
		return nil, err
	}
	e.buf = b[:0]
	return b, nil
}

// EncodeTable encodes all rows of a table, prefixed with a row count.
// The output buffer is sized exactly up front, so the call performs a
// single allocation however many rows the table has.
func EncodeTable(t *Table) ([]byte, error) {
	if c := t.colBacking(); c != nil {
		kstats.encodeCol.Add(1)
		return colEncodeTable(c), nil
	}
	kstats.encodeRow.Add(1)
	out := make([]byte, 0, TableBytes(t))
	out = binary.AppendUvarint(out, uint64(t.Len()))
	var err error
	for _, r := range t.Rows() {
		out, err = EncodeTuple(out, r)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Digest returns a deterministic FNV-1a hash over a table's schema and
// encoded rows — the cheap fingerprint the golden-determinism tests
// compare across runs. It uses a pooled encoder, so digesting does not
// allocate per row.
func Digest(t *Table) uint64 {
	if c := t.colBacking(); c != nil {
		return colDigest(c)
	}
	h := FNVMixString(FNVOffset64, t.Schema().String())
	enc := GetEncoder()
	defer enc.Release()
	for _, r := range t.Rows() {
		b, err := enc.EncodeTuple(r)
		if err != nil {
			// Unencodable values cannot occur in schema-conformant
			// tables; fold the error text so the digest still reflects it.
			h = FNVMixString(h, err.Error())
			continue
		}
		h = FNVMix(h, b)
	}
	return h
}

// DecodeTable decodes a table encoded by EncodeTable. The caller
// supplies the schema (the format is schema-less, like a batch body).
func DecodeTable(s *Schema, src []byte) (*Table, error) {
	n, read := uvarintCanon(src)
	if read <= 0 {
		return nil, fmt.Errorf("relation: decode table: bad header")
	}
	off := read
	t := NewTable(s)
	for i := uint64(0); i < n; i++ {
		row, consumed, err := DecodeTuple(src[off:])
		if err != nil {
			return nil, fmt.Errorf("relation: decode table row %d: %w", i, err)
		}
		if err := row.Validate(s); err != nil {
			return nil, fmt.Errorf("relation: decode table row %d: %w", i, err)
		}
		off += consumed
		t.AppendUnchecked(row)
	}
	return t, nil
}

// TableBytes returns the encoded size of the whole table without
// building the encoding.
func TableBytes(t *Table) int64 {
	if c := t.colBacking(); c != nil {
		return colTableBytes(c)
	}
	size := int64(uvarintLen(uint64(t.Len())))
	for _, r := range t.Rows() {
		size += EncodedSize(r)
	}
	return size
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
