// Package relation is the relational substrate shared by both
// execution paradigms: typed tuples, schemas, tables, a compact binary
// encoding (used to account serialization bytes at operator
// boundaries), and the core relational operations — filter, project,
// hash join, sort, group-by — that the data-science tasks are composed
// from.
package relation

import (
	"fmt"
	"strings"
)

// Type enumerates the value types a field may hold.
type Type int

const (
	// Int is a 64-bit signed integer (Go int64).
	Int Type = iota
	// Float is a 64-bit float (Go float64).
	Float
	// String is a UTF-8 string.
	String
	// Bool is a boolean.
	Bool
)

// String returns the type name.
func (t Type) String() string {
	switch t {
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// valid reports whether t is a known type.
func (t Type) valid() bool { return t >= Int && t <= Bool }

// Field is one named, typed column.
type Field struct {
	Name string
	Type Type
}

// Schema is an ordered list of fields. Schemas are immutable once
// built; all "modifying" methods return new schemas.
type Schema struct {
	fields []Field
	index  map[string]int
}

// NewSchema builds a schema from fields. It returns an error on empty
// or duplicate names and on unknown types.
func NewSchema(fields ...Field) (*Schema, error) {
	s := &Schema{
		fields: make([]Field, len(fields)),
		index:  make(map[string]int, len(fields)),
	}
	copy(s.fields, fields)
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("relation: field %d has empty name", i)
		}
		if !f.Type.valid() {
			return nil, fmt.Errorf("relation: field %q has unknown type %d", f.Name, int(f.Type))
		}
		if _, dup := s.index[f.Name]; dup {
			return nil, fmt.Errorf("relation: duplicate field %q", f.Name)
		}
		s.index[f.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for statically known
// schemas in task definitions and tests.
func MustSchema(fields ...Field) *Schema {
	s, err := NewSchema(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// Fields returns a copy of the field list.
func (s *Schema) Fields() []Field {
	out := make([]Field, len(s.fields))
	copy(out, s.fields)
	return out
}

// Len returns the number of fields.
func (s *Schema) Len() int { return len(s.fields) }

// Field returns the i-th field.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// IndexOf returns the position of the named field, or -1.
func (s *Schema) IndexOf(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Has reports whether the schema contains the named field.
func (s *Schema) Has(name string) bool { return s.IndexOf(name) >= 0 }

// Equal reports whether two schemas have identical fields in order.
func (s *Schema) Equal(o *Schema) bool {
	if s == nil || o == nil {
		return s == o
	}
	if len(s.fields) != len(o.fields) {
		return false
	}
	for i := range s.fields {
		if s.fields[i] != o.fields[i] {
			return false
		}
	}
	return true
}

// Project returns a new schema containing only the named fields, in
// the given order.
func (s *Schema) Project(names ...string) (*Schema, error) {
	fields := make([]Field, 0, len(names))
	for _, n := range names {
		i := s.IndexOf(n)
		if i < 0 {
			return nil, fmt.Errorf("relation: project: unknown field %q", n)
		}
		fields = append(fields, s.fields[i])
	}
	return NewSchema(fields...)
}

// Concat returns the concatenation of s and o. When a name collides,
// the field from o is renamed with the given prefix (for join outputs).
func (s *Schema) Concat(o *Schema, collisionPrefix string) (*Schema, error) {
	fields := s.Fields()
	for _, f := range o.fields {
		name := f.Name
		if s.Has(name) {
			name = collisionPrefix + name
		}
		fields = append(fields, Field{Name: name, Type: f.Type})
	}
	return NewSchema(fields...)
}

// String renders the schema as "name:type, ...".
func (s *Schema) String() string {
	parts := make([]string, len(s.fields))
	for i, f := range s.fields {
		parts[i] = f.Name + ":" + f.Type.String()
	}
	return strings.Join(parts, ", ")
}
