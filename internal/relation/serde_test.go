package relation

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func randomTuple(r *xrand.Rand) Tuple {
	n := 1 + r.Intn(8)
	t := make(Tuple, n)
	for i := range t {
		switch r.Intn(4) {
		case 0:
			t[i] = int64(r.Uint64())
		case 1:
			t[i] = r.Norm() * 1e6
		case 2:
			b := make([]byte, r.Intn(40))
			for j := range b {
				b[j] = byte(r.Intn(256))
			}
			t[i] = string(b)
		case 3:
			t[i] = r.Bool(0.5)
		}
	}
	return t
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		tp := randomTuple(r)
		enc, err := EncodeTuple(nil, tp)
		if err != nil {
			return false
		}
		dec, n, err := DecodeTuple(enc)
		if err != nil || n != len(enc) {
			return false
		}
		return tp.Equal(dec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodedSizeMatchesEncoding(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		tp := randomTuple(r)
		enc, err := EncodeTuple(nil, tp)
		if err != nil {
			return false
		}
		return EncodedSize(tp) == int64(len(enc))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsUnsupportedType(t *testing.T) {
	if _, err := EncodeTuple(nil, Tuple{[]int{1}}); err == nil {
		t.Fatal("expected error for unsupported value type")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		{},                   // empty
		{0x01, tagInt},       // truncated int
		{0x01, tagFloat, 1},  // truncated float
		{0x01, tagString},    // missing length
		{0x01, tagString, 5}, // truncated string body
		{0x01, tagBool},      // truncated bool
		{0x01, 0x7f},         // unknown tag
		{0x02, tagBool, 1},   // second value missing entirely
	}
	for i, c := range cases {
		if _, _, err := DecodeTuple(c); err == nil {
			t.Errorf("case %d: expected decode error", i)
		}
	}
}

func TestTableEncodeDecodeRoundTrip(t *testing.T) {
	s := MustSchema(Field{"id", Int}, Field{"name", String}, Field{"score", Float}, Field{"ok", Bool})
	r := xrand.New(77)
	tbl := NewTable(s)
	for i := 0; i < 100; i++ {
		tbl.MustAppend(Tuple{int64(i), "row", r.Float64(), r.Bool(0.5)})
	}
	enc, err := EncodeTable(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(enc)) != TableBytes(tbl) {
		t.Fatalf("TableBytes = %d, encoding = %d", TableBytes(tbl), len(enc))
	}
	dec, err := DecodeTable(s, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Equal(dec) {
		t.Fatal("table round trip mismatch")
	}
}

func TestDecodeTableValidatesAgainstSchema(t *testing.T) {
	s1 := MustSchema(Field{"id", Int})
	tbl := NewTable(s1)
	tbl.MustAppend(Tuple{int64(1)})
	enc, err := EncodeTable(tbl)
	if err != nil {
		t.Fatal(err)
	}
	s2 := MustSchema(Field{"name", String})
	if _, err := DecodeTable(s2, enc); err == nil {
		t.Fatal("expected schema validation error")
	}
}

func TestDecodeTableBadHeader(t *testing.T) {
	if _, err := DecodeTable(MustSchema(Field{"id", Int}), nil); err == nil {
		t.Fatal("expected error on empty input")
	}
}
