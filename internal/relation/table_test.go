package relation

import "testing"

func smallTable(t *testing.T) *Table {
	t.Helper()
	s := MustSchema(Field{"id", Int}, Field{"name", String})
	tbl, err := FromRows(s, []Tuple{
		{int64(3), "c"},
		{int64(1), "a"},
		{int64(2), "b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestFromRowsValidates(t *testing.T) {
	s := MustSchema(Field{"id", Int})
	if _, err := FromRows(s, []Tuple{{"not an int"}}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestAppendValidates(t *testing.T) {
	tbl := NewTable(MustSchema(Field{"id", Int}))
	if err := tbl.Append(Tuple{int64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Append(Tuple{"x"}); err == nil {
		t.Fatal("expected validation error")
	}
	if tbl.Len() != 1 {
		t.Fatalf("len = %d", tbl.Len())
	}
}

func TestCloneIndependence(t *testing.T) {
	a := smallTable(t)
	b := a.Clone()
	b.Row(0)[1] = "mutated"
	if a.Row(0)[1] == "mutated" {
		t.Fatal("clone aliases original rows")
	}
	if !a.EqualUnordered(a.Clone()) {
		t.Fatal("clone not equal")
	}
}

func TestEqualOrderSensitive(t *testing.T) {
	a := smallTable(t)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("identical tables unequal")
	}
	b.rows[0], b.rows[1] = b.rows[1], b.rows[0]
	if a.Equal(b) {
		t.Fatal("reordered tables equal under Equal")
	}
	if !a.EqualUnordered(b) {
		t.Fatal("reordered tables unequal under EqualUnordered")
	}
}

func TestEqualUnorderedMultiset(t *testing.T) {
	s := MustSchema(Field{"x", Int})
	a, _ := FromRows(s, []Tuple{{int64(1)}, {int64(1)}, {int64(2)}})
	b, _ := FromRows(s, []Tuple{{int64(1)}, {int64(2)}, {int64(2)}})
	if a.EqualUnordered(b) {
		t.Fatal("different multisets reported equal")
	}
}

func TestBatches(t *testing.T) {
	tbl := smallTable(t)
	b := tbl.Batches(2)
	if len(b) != 2 || len(b[0].Rows) != 2 || len(b[1].Rows) != 1 {
		t.Fatalf("batches = %v", b)
	}
	if got := tbl.Batches(0); len(got) != 1 || len(got[0].Rows) != 3 {
		t.Fatal("non-positive size should give one batch")
	}
	if got := tbl.Batches(100); len(got) != 1 {
		t.Fatal("oversized batch should give one batch")
	}
	empty := NewTable(tbl.Schema())
	if got := empty.Batches(2); got != nil {
		t.Fatal("empty table should give no batches")
	}
}

func TestConcat(t *testing.T) {
	a := smallTable(t)
	b := smallTable(t)
	if err := a.Concat(b); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 6 {
		t.Fatalf("len = %d", a.Len())
	}
	other := NewTable(MustSchema(Field{"z", Float}))
	if err := a.Concat(other); err == nil {
		t.Fatal("expected schema mismatch error")
	}
}

func TestSortBy(t *testing.T) {
	tbl := smallTable(t)
	if err := tbl.SortBy("id"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if tbl.Row(i).MustInt(0) != int64(i+1) {
			t.Fatalf("row %d id = %d", i, tbl.Row(i).MustInt(0))
		}
	}
	if err := tbl.SortBy("name"); err != nil {
		t.Fatal(err)
	}
	if tbl.Row(0).MustStr(1) != "a" {
		t.Fatal("sort by string failed")
	}
	if err := tbl.SortBy("missing"); err == nil {
		t.Fatal("expected error for unknown field")
	}
}

func TestSortByMultipleAndStability(t *testing.T) {
	s := MustSchema(Field{"g", Int}, Field{"v", String}, Field{"b", Bool}, Field{"f", Float})
	tbl, _ := FromRows(s, []Tuple{
		{int64(2), "x", true, 1.0},
		{int64(1), "y", false, 2.0},
		{int64(1), "x", true, 0.5},
		{int64(2), "x", false, 3.0},
	})
	if err := tbl.SortBy("g", "v"); err != nil {
		t.Fatal(err)
	}
	want := []struct {
		g int64
		v string
	}{{1, "x"}, {1, "y"}, {2, "x"}, {2, "x"}}
	for i, w := range want {
		if tbl.Row(i).MustInt(0) != w.g || tbl.Row(i).MustStr(1) != w.v {
			t.Fatalf("row %d = %v", i, tbl.Row(i))
		}
	}
	// Stability: the two (2,"x") rows keep input order (true before false).
	if !tbl.Row(2).MustBool(2) || tbl.Row(3).MustBool(2) {
		t.Fatal("sort not stable")
	}
	if err := tbl.SortBy("b"); err != nil {
		t.Fatal(err)
	}
	if tbl.Row(0).MustBool(2) {
		t.Fatal("false should sort before true")
	}
	if err := tbl.SortBy("f"); err != nil {
		t.Fatal(err)
	}
	if tbl.Row(0).MustFloat(3) != 0.5 {
		t.Fatal("float sort failed")
	}
}
