package relation

import (
	"fmt"
	"sort"
	"sync"
)

// Table is an in-memory relation: a schema plus rows, optionally backed
// by a columnar ColTable. The two representations coexist (the
// conversion boundary of the columnar engine): a table may hold rows,
// columns, or both. Row access on a columnar-only table materializes
// the rows once, lazily; the columnar fast paths (Digest, EncodeTable,
// HashJoin, GroupBy, Equal) read the vectors directly and never
// materialize. Mutation detaches the columnar backing first, since
// column vectors are immutable.
type Table struct {
	schema *Schema
	rows   []Tuple
	col    *ColTable  // optional columnar backing (immutable)
	mat    *sync.Once // guards lazy row materialization when rows == nil
}

// NewTable returns an empty table with the given schema.
func NewTable(s *Schema) *Table {
	return &Table{schema: s}
}

// FromColumnar wraps a columnar table in the row-level API. Rows are
// materialized lazily on first row access; columnar consumers never pay
// for them.
func FromColumnar(c *ColTable) *Table {
	return &Table{schema: c.schema, col: c, mat: new(sync.Once)}
}

// Columnar returns the table's columnar backing, if present.
func (t *Table) Columnar() (*ColTable, bool) {
	if t.col == nil {
		return nil, false
	}
	return t.col, true
}

// colBacking returns the columnar backing when the automatic fast
// paths are enabled, else nil.
func (t *Table) colBacking() *ColTable {
	if t.col != nil && colEnabled.Load() {
		return t.col
	}
	return nil
}

// Columnarize attempts an in-place conversion to the dual
// representation: the table keeps its rows and gains a columnar
// backing, so later digests, encodes, joins and group-bys take the
// vectorized paths. Tables that are too small, already backed, or hold
// schema-divergent values are returned unchanged. Returns t for
// chaining. Not safe for concurrent use (it writes the backing
// pointer); call it while the table still has a single owner.
func (t *Table) Columnarize() *Table {
	if t.col != nil || len(t.rows) < colConvertMin || !colEnabled.Load() {
		return t
	}
	if c, ok := ToColumnar(t); ok {
		t.col = c
	}
	return t
}

// materialize ensures t.rows is populated from the columnar backing.
func (t *Table) materialize() {
	if t.mat != nil {
		t.mat.Do(func() { t.rows = t.col.materializeRows() })
	}
}

// detachCol drops the columnar backing ahead of a mutation (column
// vectors are immutable; stale backings must not survive).
func (t *Table) detachCol() {
	if t.col != nil {
		t.materialize()
		t.col = nil
		t.mat = nil
	}
}

// FromRows builds a table and validates every row against the schema.
func FromRows(s *Schema, rows []Tuple) (*Table, error) {
	t := NewTable(s)
	for i, r := range rows {
		if err := r.Validate(s); err != nil {
			return nil, fmt.Errorf("relation: row %d: %w", i, err)
		}
		t.rows = append(t.rows, r)
	}
	return t, nil
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int {
	if t.col != nil {
		return t.col.n
	}
	return len(t.rows)
}

// Row returns the i-th row (not a copy).
func (t *Table) Row(i int) Tuple {
	t.materialize()
	return t.rows[i]
}

// Rows returns the backing row slice (not a copy); callers must not
// mutate it unless they own the table. On a columnar-backed table this
// materializes the rows once.
func (t *Table) Rows() []Tuple {
	t.materialize()
	return t.rows
}

// Append adds a row after validating it.
func (t *Table) Append(row Tuple) error {
	if err := row.Validate(t.schema); err != nil {
		return err
	}
	t.detachCol()
	t.rows = append(t.rows, row)
	return nil
}

// MustAppend is Append that panics; for rows of statically known shape.
func (t *Table) MustAppend(row Tuple) {
	if err := t.Append(row); err != nil {
		panic(err)
	}
}

// AppendUnchecked adds a row without validation; for hot paths where
// the producer guarantees the shape.
func (t *Table) AppendUnchecked(row Tuple) {
	t.detachCol()
	t.rows = append(t.rows, row)
}

// Clone deep-copies the table (rows are cloned; values are immutable).
// A columnar backing is shared — the vectors are immutable, and the
// clone materializes its own rows independently.
func (t *Table) Clone() *Table {
	if t.col != nil && t.rows == nil {
		return FromColumnar(t.col)
	}
	c := NewTable(t.schema)
	c.rows = make([]Tuple, len(t.rows))
	for i, r := range t.rows {
		c.rows[i] = r.Clone()
	}
	c.col = t.col
	return c
}

// Equal reports whether two tables have equal schemas and identical
// rows in order. When both sides carry columnar backings the vectors
// are compared directly, type by type.
func (t *Table) Equal(o *Table) bool {
	if tc, oc := t.colBacking(), o.colBacking(); tc != nil && oc != nil {
		return tc.Equal(oc)
	}
	if !t.schema.Equal(o.schema) || t.Len() != o.Len() {
		return false
	}
	tr, or := t.Rows(), o.Rows()
	for i := range tr {
		if !tr[i].Equal(or[i]) {
			return false
		}
	}
	return true
}

// EqualUnordered reports whether two tables contain the same multiset
// of rows regardless of order. Rows are bucketed by their canonical
// uint64 hash (no per-row key-string allocation) and compared by
// canonical value equality within buckets.
func (t *Table) EqualUnordered(o *Table) bool {
	if !t.schema.Equal(o.schema) || t.Len() != o.Len() {
		return false
	}
	all := make([]int, t.schema.Len())
	for i := range all {
		all[i] = i
	}
	type entry struct {
		row   Tuple
		count int
	}
	buckets := make(map[uint64][]entry, t.Len())
	find := func(b []entry, r Tuple) int {
		for i := range b {
			if equalTupleCanon(b[i].row, r, all) {
				return i
			}
		}
		return -1
	}
	for _, r := range t.Rows() {
		h := hashTupleCanon(r, all)
		b := buckets[h]
		if i := find(b, r); i >= 0 {
			b[i].count++
		} else {
			buckets[h] = append(b, entry{row: r, count: 1})
		}
	}
	for _, r := range o.Rows() {
		h := hashTupleCanon(r, all)
		b := buckets[h]
		i := find(b, r)
		if i < 0 {
			return false
		}
		b[i].count--
		if b[i].count < 0 {
			return false
		}
	}
	// Equal lengths + no count underflow means every count is zero.
	return true
}

// Batch is a contiguous chunk of rows flowing between operators.
type Batch struct {
	Schema *Schema
	Rows   []Tuple
}

// Batches splits the table into batches of at most size rows. A
// non-positive size yields a single batch. An empty table yields no
// batches.
func (t *Table) Batches(size int) []Batch {
	t.materialize()
	if len(t.rows) == 0 {
		return nil
	}
	if size <= 0 || size >= len(t.rows) {
		return []Batch{{Schema: t.schema, Rows: t.rows}}
	}
	var out []Batch
	for i := 0; i < len(t.rows); i += size {
		end := i + size
		if end > len(t.rows) {
			end = len(t.rows)
		}
		out = append(out, Batch{Schema: t.schema, Rows: t.rows[i:end]})
	}
	return out
}

// Concat appends all rows of o (which must share the schema).
func (t *Table) Concat(o *Table) error {
	if !t.schema.Equal(o.schema) {
		return fmt.Errorf("relation: concat schema mismatch: [%s] vs [%s]", t.schema, o.schema)
	}
	t.detachCol()
	t.rows = append(t.rows, o.Rows()...)
	return nil
}

// SortBy sorts rows in place by the named fields ascending. Fields of
// different types compare by their canonical key encoding.
func (t *Table) SortBy(names ...string) error {
	pos := make([]int, len(names))
	for i, n := range names {
		p := t.schema.IndexOf(n)
		if p < 0 {
			return fmt.Errorf("relation: sort: unknown field %q", n)
		}
		pos[i] = p
	}
	t.detachCol()
	sort.SliceStable(t.rows, func(a, b int) bool {
		return lessTuples(t.rows[a], t.rows[b], pos)
	})
	return nil
}

func lessTuples(a, b Tuple, pos []int) bool {
	for _, p := range pos {
		switch av := a[p].(type) {
		case int64:
			bv := b[p].(int64)
			if av != bv {
				return av < bv
			}
		case float64:
			bv := b[p].(float64)
			if av != bv {
				return av < bv
			}
		case string:
			bv := b[p].(string)
			if av != bv {
				return av < bv
			}
		case bool:
			bv := b[p].(bool)
			if av != bv {
				return !av
			}
		}
	}
	return false
}
