package relation

import (
	"fmt"
	"sort"
)

// Table is an in-memory relation: a schema plus rows.
type Table struct {
	schema *Schema
	rows   []Tuple
}

// NewTable returns an empty table with the given schema.
func NewTable(s *Schema) *Table {
	return &Table{schema: s}
}

// FromRows builds a table and validates every row against the schema.
func FromRows(s *Schema, rows []Tuple) (*Table, error) {
	t := NewTable(s)
	for i, r := range rows {
		if err := r.Validate(s); err != nil {
			return nil, fmt.Errorf("relation: row %d: %w", i, err)
		}
		t.rows = append(t.rows, r)
	}
	return t, nil
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Row returns the i-th row (not a copy).
func (t *Table) Row(i int) Tuple { return t.rows[i] }

// Rows returns the backing row slice (not a copy); callers must not
// mutate it unless they own the table.
func (t *Table) Rows() []Tuple { return t.rows }

// Append adds a row after validating it.
func (t *Table) Append(row Tuple) error {
	if err := row.Validate(t.schema); err != nil {
		return err
	}
	t.rows = append(t.rows, row)
	return nil
}

// MustAppend is Append that panics; for rows of statically known shape.
func (t *Table) MustAppend(row Tuple) {
	if err := t.Append(row); err != nil {
		panic(err)
	}
}

// AppendUnchecked adds a row without validation; for hot paths where
// the producer guarantees the shape.
func (t *Table) AppendUnchecked(row Tuple) {
	t.rows = append(t.rows, row)
}

// Clone deep-copies the table (rows are cloned; values are immutable).
func (t *Table) Clone() *Table {
	c := NewTable(t.schema)
	c.rows = make([]Tuple, len(t.rows))
	for i, r := range t.rows {
		c.rows[i] = r.Clone()
	}
	return c
}

// Equal reports whether two tables have equal schemas and identical
// rows in order.
func (t *Table) Equal(o *Table) bool {
	if !t.schema.Equal(o.schema) || len(t.rows) != len(o.rows) {
		return false
	}
	for i := range t.rows {
		if !t.rows[i].Equal(o.rows[i]) {
			return false
		}
	}
	return true
}

// EqualUnordered reports whether two tables contain the same multiset
// of rows regardless of order.
func (t *Table) EqualUnordered(o *Table) bool {
	if !t.schema.Equal(o.schema) || len(t.rows) != len(o.rows) {
		return false
	}
	all := make([]int, t.schema.Len())
	for i := range all {
		all[i] = i
	}
	counts := make(map[string]int, len(t.rows))
	for _, r := range t.rows {
		counts[r.Key(all...)]++
	}
	for _, r := range o.rows {
		counts[r.Key(all...)]--
	}
	for _, c := range counts {
		if c != 0 {
			return false
		}
	}
	return true
}

// Batch is a contiguous chunk of rows flowing between operators.
type Batch struct {
	Schema *Schema
	Rows   []Tuple
}

// Batches splits the table into batches of at most size rows. A
// non-positive size yields a single batch. An empty table yields no
// batches.
func (t *Table) Batches(size int) []Batch {
	if len(t.rows) == 0 {
		return nil
	}
	if size <= 0 || size >= len(t.rows) {
		return []Batch{{Schema: t.schema, Rows: t.rows}}
	}
	var out []Batch
	for i := 0; i < len(t.rows); i += size {
		end := i + size
		if end > len(t.rows) {
			end = len(t.rows)
		}
		out = append(out, Batch{Schema: t.schema, Rows: t.rows[i:end]})
	}
	return out
}

// Concat appends all rows of o (which must share the schema).
func (t *Table) Concat(o *Table) error {
	if !t.schema.Equal(o.schema) {
		return fmt.Errorf("relation: concat schema mismatch: [%s] vs [%s]", t.schema, o.schema)
	}
	t.rows = append(t.rows, o.rows...)
	return nil
}

// SortBy sorts rows in place by the named fields ascending. Fields of
// different types compare by their canonical key encoding.
func (t *Table) SortBy(names ...string) error {
	pos := make([]int, len(names))
	for i, n := range names {
		p := t.schema.IndexOf(n)
		if p < 0 {
			return fmt.Errorf("relation: sort: unknown field %q", n)
		}
		pos[i] = p
	}
	sort.SliceStable(t.rows, func(a, b int) bool {
		return lessTuples(t.rows[a], t.rows[b], pos)
	})
	return nil
}

func lessTuples(a, b Tuple, pos []int) bool {
	for _, p := range pos {
		switch av := a[p].(type) {
		case int64:
			bv := b[p].(int64)
			if av != bv {
				return av < bv
			}
		case float64:
			bv := b[p].(float64)
			if av != bv {
				return av < bv
			}
		case string:
			bv := b[p].(string)
			if av != bv {
				return av < bv
			}
		case bool:
			bv := b[p].(bool)
			if av != bv {
				return !av
			}
		}
	}
	return false
}
