package relation

import (
	"fmt"
	"strconv"
	"strings"
)

// Tuple is one row of values. Positions correspond to schema fields;
// values are int64, float64, string or bool.
type Tuple []any

// Validate checks that t conforms to schema s.
func (t Tuple) Validate(s *Schema) error {
	if len(t) != s.Len() {
		return fmt.Errorf("relation: tuple has %d values, schema has %d fields", len(t), s.Len())
	}
	for i, v := range t {
		f := s.Field(i)
		ok := false
		switch f.Type {
		case Int:
			_, ok = v.(int64)
		case Float:
			_, ok = v.(float64)
		case String:
			_, ok = v.(string)
		case Bool:
			_, ok = v.(bool)
		}
		if !ok {
			return fmt.Errorf("relation: field %q: value %v (%T) is not %s", f.Name, v, v, f.Type)
		}
	}
	return nil
}

// Clone returns a copy of the tuple. Values are immutable types, so a
// shallow copy suffices.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Equal reports value equality of two tuples.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if t[i] != o[i] {
			return false
		}
	}
	return true
}

// Key renders the values at the given positions into a canonical
// string, usable as a hash-map key for joins and grouping. Types are
// tagged so int64(1) and "1" cannot collide.
func (t Tuple) Key(positions ...int) string {
	var b strings.Builder
	for _, p := range positions {
		switch v := t[p].(type) {
		case int64:
			b.WriteByte('i')
			b.WriteString(strconv.FormatInt(v, 10))
		case float64:
			b.WriteByte('f')
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		case string:
			b.WriteByte('s')
			b.WriteString(strconv.Itoa(len(v)))
			b.WriteByte(':')
			b.WriteString(v)
		case bool:
			if v {
				b.WriteString("b1")
			} else {
				b.WriteString("b0")
			}
		default:
			b.WriteString(fmt.Sprintf("?%v", v))
		}
		b.WriteByte('|')
	}
	return b.String()
}

// Int returns the int64 at position i, or an error.
func (t Tuple) Int(i int) (int64, error) {
	v, ok := t[i].(int64)
	if !ok {
		return 0, fmt.Errorf("relation: position %d holds %T, not int64", i, t[i])
	}
	return v, nil
}

// Float returns the float64 at position i, or an error.
func (t Tuple) Float(i int) (float64, error) {
	v, ok := t[i].(float64)
	if !ok {
		return 0, fmt.Errorf("relation: position %d holds %T, not float64", i, t[i])
	}
	return v, nil
}

// Str returns the string at position i, or an error.
func (t Tuple) Str(i int) (string, error) {
	v, ok := t[i].(string)
	if !ok {
		return "", fmt.Errorf("relation: position %d holds %T, not string", i, t[i])
	}
	return v, nil
}

// BoolAt returns the bool at position i, or an error.
func (t Tuple) BoolAt(i int) (bool, error) {
	v, ok := t[i].(bool)
	if !ok {
		return false, fmt.Errorf("relation: position %d holds %T, not bool", i, t[i])
	}
	return v, nil
}

// MustInt is Int that panics; for positions whose type is guaranteed
// by a validated schema.
func (t Tuple) MustInt(i int) int64 {
	v, err := t.Int(i)
	if err != nil {
		panic(err)
	}
	return v
}

// MustFloat is Float that panics.
func (t Tuple) MustFloat(i int) float64 {
	v, err := t.Float(i)
	if err != nil {
		panic(err)
	}
	return v
}

// MustStr is Str that panics.
func (t Tuple) MustStr(i int) string {
	v, err := t.Str(i)
	if err != nil {
		panic(err)
	}
	return v
}

// MustBool is BoolAt that panics.
func (t Tuple) MustBool(i int) bool {
	v, err := t.BoolAt(i)
	if err != nil {
		panic(err)
	}
	return v
}
