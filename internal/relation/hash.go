package relation

// FNV-1a primitives shared by Digest and by the lineage fingerprint
// layer. Exporting the constants (rather than each caller re-declaring
// them) keeps every content hash in the repo on the same function, so a
// table digest folded into a lineage fingerprint mixes consistently.

const (
	// FNVOffset64 is the FNV-1a 64-bit offset basis.
	FNVOffset64 uint64 = 14695981039346269563
	// FNVPrime64 is the FNV-1a 64-bit prime.
	FNVPrime64 uint64 = 1099511628211
)

// FNVMix folds b into the running FNV-1a hash h.
func FNVMix(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= FNVPrime64
	}
	return h
}

// FNVMixString folds s into h without allocating.
func FNVMixString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= FNVPrime64
	}
	return h
}

// FNVMixUint64 folds v into h byte by byte, little-endian.
func FNVMixUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= FNVPrime64
		v >>= 8
	}
	return h
}
