package relation

import "math"

// FNV-1a primitives shared by Digest and by the lineage fingerprint
// layer. Exporting the constants (rather than each caller re-declaring
// them) keeps every content hash in the repo on the same function, so a
// table digest folded into a lineage fingerprint mixes consistently.

const (
	// FNVOffset64 is the FNV-1a 64-bit offset basis.
	FNVOffset64 uint64 = 14695981039346269563
	// FNVPrime64 is the FNV-1a 64-bit prime.
	FNVPrime64 uint64 = 1099511628211
)

// FNVMix folds b into the running FNV-1a hash h.
func FNVMix(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= FNVPrime64
	}
	return h
}

// FNVMixString folds s into h without allocating.
func FNVMixString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= FNVPrime64
	}
	return h
}

// FNVMixUint64 folds v into h byte by byte, little-endian.
func FNVMixUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= FNVPrime64
		v >>= 8
	}
	return h
}

// Canonical tuple hashing. hashTupleCanon/equalTupleCanon replace the
// Tuple.Key canonical-string encoding on the row-path hot spots
// (Distinct, GroupBy, EqualUnordered): rows bucket by a uint64 FNV hash
// instead of an allocated key string, and bucket collisions resolve by
// canonical value equality. "Canonical" mirrors Key's equivalence
// classes exactly — every NaN is one value (FormatFloat renders them
// all "NaN"), while +0 and -0 stay distinct ("0" vs "-0") — so the
// groups, the kept-first rows, and therefore the output bits are
// identical to the string-keyed implementation.

// canonNaNBits is the single bit pattern all NaNs hash as.
const canonNaNBits uint64 = 0x7ff8_dead_beef_0000

// canonFloatBits collapses every NaN to one pattern and otherwise
// returns the IEEE bits (keeping -0 distinct from +0, like FormatFloat).
func canonFloatBits(f float64) uint64 {
	if f != f {
		return canonNaNBits
	}
	return math.Float64bits(f)
}

// hashValueCanon folds one tagged value into h. Tags keep int64(1),
// "1" and true from colliding, mirroring Key's type prefixes.
func hashValueCanon(h uint64, v any) uint64 {
	switch v := v.(type) {
	case int64:
		h ^= 'i'
		h *= FNVPrime64
		return FNVMixUint64(h, uint64(v))
	case float64:
		h ^= 'f'
		h *= FNVPrime64
		return FNVMixUint64(h, canonFloatBits(v))
	case string:
		h ^= 's'
		h *= FNVPrime64
		h = FNVMixUint64(h, uint64(len(v)))
		return FNVMixString(h, v)
	case bool:
		h ^= 'b'
		h *= FNVPrime64
		if v {
			h ^= 1
			h *= FNVPrime64
		} else {
			h ^= 0
			h *= FNVPrime64
		}
		return h
	default:
		h ^= '?'
		h *= FNVPrime64
		return h
	}
}

// hashTupleCanon hashes the values at the given positions.
func hashTupleCanon(t Tuple, pos []int) uint64 {
	h := FNVOffset64
	for _, p := range pos {
		h = hashValueCanon(h, t[p])
	}
	return h
}

// equalValueCanon is the equality matching hashValueCanon: dynamic-type
// tagged, with all NaNs equal and -0 unequal to +0.
func equalValueCanon(a, b any) bool {
	switch av := a.(type) {
	case float64:
		bv, ok := b.(float64)
		return ok && canonFloatBits(av) == canonFloatBits(bv)
	default:
		return a == b
	}
}

// equalTupleCanon compares the values at the given positions.
func equalTupleCanon(a, b Tuple, pos []int) bool {
	for _, p := range pos {
		if !equalValueCanon(a[p], b[p]) {
			return false
		}
	}
	return true
}
