package relation

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Columnar serde. The wire format is the row format, byte for byte —
// EncodeTable on a columnar-backed table and on its materialized rows
// produce identical buffers, and Digest produces identical hashes, so
// artifact fingerprints and the golden determinism digests are
// representation-independent. The columnar encoders win by never
// touching boxed values: each column is a contiguous typed vector read
// with a tight per-type loop, where the row path chases one heap
// pointer per value through an interface.

// colTableBytes is TableBytes over the columnar representation. Column
// vectors are immutable, so the computed size is cached on the table;
// repeated size accounting (and the exact-fit allocation inside
// colEncodeTable) pays the column walk once.
func colTableBytes(c *ColTable) int64 {
	if sz := c.encSize.Load(); sz > 0 {
		return sz
	}
	size := int64(uvarintLen(uint64(c.n)))
	size += int64(c.n) * int64(uvarintLen(uint64(c.schema.Len())))
	for p := range c.cols {
		cd := &c.cols[p]
		switch cd.typ {
		case Int, Float:
			size += 9 * int64(c.n)
		case Bool:
			size += 2 * int64(c.n)
		default:
			if cd.dict != nil {
				es := make([]int64, len(cd.dict.vals))
				for i, v := range cd.dict.vals {
					es[i] = 1 + int64(uvarintLen(uint64(len(v)))) + int64(len(v))
				}
				for _, code := range cd.codes {
					size += es[code]
				}
			} else {
				for _, v := range cd.strs {
					size += 1 + int64(uvarintLen(uint64(len(v)))) + int64(len(v))
				}
			}
		}
	}
	c.encSize.Store(size)
	return size
}

// colEncodeTable is EncodeTable over the columnar representation: one
// exact-size allocation, then row-major emission straight from the
// typed vectors with direct index writes — the buffer length is known
// exactly up front, so there is no per-value append bookkeeping, and
// values come off contiguous vectors instead of boxed interfaces. (A
// column-at-a-time layout with per-row write cursors was measured
// slower: the cursor load/store traffic costs more than the predictable
// per-value type switch.)
func colEncodeTable(c *ColTable) []byte {
	out := make([]byte, colTableBytes(c))
	off := binary.PutUvarint(out, uint64(c.n))
	// The per-row width header is the same bytes for every row.
	var hdrBuf [binary.MaxVarintLen64]byte
	hdrN := binary.PutUvarint(hdrBuf[:], uint64(c.schema.Len()))
	hdr0 := hdrBuf[0]
	for i := 0; i < c.n; i++ {
		if hdrN == 1 {
			out[off] = hdr0
			off++
		} else {
			off += copy(out[off:], hdrBuf[:hdrN])
		}
		for p := range c.cols {
			cd := &c.cols[p]
			switch cd.typ {
			case Int:
				out[off] = tagInt
				binary.LittleEndian.PutUint64(out[off+1:], uint64(cd.ints[i]))
				off += 9
			case Float:
				out[off] = tagFloat
				binary.LittleEndian.PutUint64(out[off+1:], math.Float64bits(cd.floats[i]))
				off += 9
			case Bool:
				out[off] = tagBool
				if cd.bools[i] {
					out[off+1] = 1
				} else {
					out[off+1] = 0
				}
				off += 2
			default:
				v := cd.strAt(i)
				out[off] = tagString
				off++
				if len(v) < 0x80 {
					out[off] = byte(len(v))
					off++
				} else {
					off += binary.PutUvarint(out[off:], uint64(len(v)))
				}
				off += copy(out[off:], v)
			}
		}
	}
	return out
}

// colDigest is Digest over the columnar representation: it folds the
// exact bytes colEncodeTable's per-row encodings would contain into the
// running FNV-1a state without building them.
func colDigest(c *ColTable) uint64 {
	h := FNVMixString(FNVOffset64, c.schema.String())
	var scratch [binary.MaxVarintLen64]byte
	header := binary.AppendUvarint(scratch[:0], uint64(c.schema.Len()))
	var lenb [binary.MaxVarintLen64]byte
	for i := 0; i < c.n; i++ {
		h = FNVMix(h, header)
		for p := range c.cols {
			cd := &c.cols[p]
			switch cd.typ {
			case Int:
				h ^= tagInt
				h *= FNVPrime64
				h = FNVMixUint64(h, uint64(cd.ints[i]))
			case Float:
				h ^= tagFloat
				h *= FNVPrime64
				h = FNVMixUint64(h, math.Float64bits(cd.floats[i]))
			case Bool:
				h ^= tagBool
				h *= FNVPrime64
				if cd.bools[i] {
					h ^= 1
				}
				h *= FNVPrime64
			default:
				v := cd.strAt(i)
				h ^= tagString
				h *= FNVPrime64
				h = FNVMix(h, binary.AppendUvarint(lenb[:0], uint64(len(v))))
				h = FNVMixString(h, v)
			}
		}
	}
	return h
}

// DecodeTableColumnar decodes an EncodeTable buffer straight into
// columnar vectors — the inverse fast path, with no per-row Tuple or
// boxed values. The resulting table materializes rows lazily like any
// columnar-backed table. Value tags are validated against the schema as
// they stream past (the columnar layout cannot hold schema-divergent
// values).
func DecodeTableColumnar(s *Schema, src []byte) (*Table, error) {
	n, read := uvarintCanon(src)
	if read <= 0 {
		return nil, fmt.Errorf("relation: decode table: bad header")
	}
	off := read
	w := s.Len()
	// The typed vectors are preallocated from the claimed row count;
	// reject counts the buffer cannot possibly hold (every row costs at
	// least a width header plus a tag and one payload byte per value),
	// so corrupt headers fail instead of allocating.
	minRow := uvarintLen(uint64(w)) + 2*w
	if minRow < 1 {
		minRow = 1
	}
	if n > uint64((len(src)-off)/minRow) {
		return nil, fmt.Errorf("relation: decode table: row count %d exceeds buffer capacity", n)
	}
	c := &ColTable{schema: s, n: int(n), cols: make([]colData, w)}
	for p := 0; p < w; p++ {
		cd := &c.cols[p]
		cd.typ = s.Field(p).Type
		switch cd.typ {
		case Int:
			cd.ints = make([]int64, n)
		case Float:
			cd.floats = make([]float64, n)
		case Bool:
			cd.bools = make([]bool, n)
		default:
			cd.strs = make([]string, n)
		}
	}
	want := make([]byte, w)
	for p := 0; p < w; p++ {
		switch s.Field(p).Type {
		case Int:
			want[p] = tagInt
		case Float:
			want[p] = tagFloat
		case Bool:
			want[p] = tagBool
		default:
			want[p] = tagString
		}
	}
	for i := 0; i < int(n); i++ {
		vw, r := uvarintCanon(src[off:])
		if r <= 0 {
			return nil, fmt.Errorf("relation: decode table row %d: bad tuple header", i)
		}
		if int(vw) != w {
			return nil, fmt.Errorf("relation: decode table row %d: width %d, schema has %d", i, vw, w)
		}
		off += r
		for p := 0; p < w; p++ {
			cd := &c.cols[p]
			if off >= len(src) {
				return nil, fmt.Errorf("relation: decode table row %d: truncated at value %d", i, p)
			}
			tag := src[off]
			off++
			if tag != want[p] {
				return nil, fmt.Errorf("relation: decode table row %d: value %d has tag 0x%02x, schema wants %s", i, p, tag, cd.typ)
			}
			switch cd.typ {
			case Int:
				if off+8 > len(src) {
					return nil, fmt.Errorf("relation: decode table row %d: truncated int", i)
				}
				cd.ints[i] = int64(binary.LittleEndian.Uint64(src[off:]))
				off += 8
			case Float:
				if off+8 > len(src) {
					return nil, fmt.Errorf("relation: decode table row %d: truncated float", i)
				}
				cd.floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[off:]))
				off += 8
			case Bool:
				if off >= len(src) {
					return nil, fmt.Errorf("relation: decode table row %d: truncated bool", i)
				}
				if src[off] > 1 {
					return nil, fmt.Errorf("relation: decode table row %d: bad bool byte 0x%02x", i, src[off])
				}
				cd.bools[i] = src[off] == 1
				off++
			default:
				l, r := uvarintCanon(src[off:])
				if r <= 0 {
					return nil, fmt.Errorf("relation: decode table row %d: bad string length", i)
				}
				off += r
				if l > uint64(len(src)-off) {
					return nil, fmt.Errorf("relation: decode table row %d: truncated string", i)
				}
				cd.strs[i] = string(src[off : off+int(l)])
				off += int(l)
			}
		}
	}
	return FromColumnar(c), nil
}
