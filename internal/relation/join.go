package relation

import (
	"fmt"
	"math"
	"sync"
)

// This file holds the shared machinery behind the equi-join variants:
// a joinPlan (schema work done once), a typed, optionally
// hash-partitioned build index (no canonical-string key allocation on
// the hot path), and the Joiner, which separates the build phase from
// probing so streaming callers can build once and probe many batches.
//
// Determinism contract: every variant emits output rows in probe
// (left) order, with the matches of each probe row in build (right)
// order — bit-identical to the serial HashJoin regardless of shard
// count, because the build side is hash-partitioned (equal keys never
// split across shards, shard insertion preserves build order) and the
// probe side is range-partitioned into contiguous chunks whose outputs
// are concatenated in chunk order.

// maxJoinShards bounds the partition fan-out; shard ids are stored in
// a byte with 255 reserved for rows whose key needs the spill path.
const maxJoinShards = 128

// joinPlan is the schema-derived part of a join, computed once.
type joinPlan struct {
	lk, rk   int
	rightPos []int
	out      *Schema
	padding  Tuple // zero values for unmatched LeftOuter rows
}

// planJoin resolves key positions and derives the output schema:
// left's fields followed by right's fields with the right key column
// dropped; right-side name collisions are prefixed with "r_".
func planJoin(left, right *Schema, leftKey, rightKey string) (*joinPlan, error) {
	lk := left.IndexOf(leftKey)
	if lk < 0 {
		return nil, fmt.Errorf("relation: join: left key %q not found", leftKey)
	}
	rk := right.IndexOf(rightKey)
	if rk < 0 {
		return nil, fmt.Errorf("relation: join: right key %q not found", rightKey)
	}
	if lt, rt := left.Field(lk).Type, right.Field(rk).Type; lt != rt {
		return nil, fmt.Errorf("relation: join: key type mismatch %s vs %s", lt, rt)
	}
	rightNames := make([]string, 0, right.Len()-1)
	rightPos := make([]int, 0, right.Len()-1)
	for i := 0; i < right.Len(); i++ {
		if i == rk {
			continue
		}
		rightNames = append(rightNames, right.Field(i).Name)
		rightPos = append(rightPos, i)
	}
	rightProj, err := right.Project(rightNames...)
	if err != nil {
		return nil, err
	}
	out, err := left.Concat(rightProj, "r_")
	if err != nil {
		return nil, err
	}
	padding := make(Tuple, len(rightPos))
	for i, p := range rightPos {
		switch right.Field(p).Type {
		case Int:
			padding[i] = int64(0)
		case Float:
			padding[i] = float64(0)
		case String:
			padding[i] = ""
		case Bool:
			padding[i] = false
		}
	}
	return &joinPlan{lk: lk, rk: rk, rightPos: rightPos, out: out, padding: padding}, nil
}

// fnv32 hashes a string with FNV-1a; used to route spill keys and
// string keys to shards.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// mix64 is a cheap multiplicative bit mixer for fixed-width keys.
func mix64(v uint64) uint32 {
	return uint32((v * 0x9E3779B97F4A7C15) >> 32)
}

// keyIndex maps a probe row to the build-side row indices sharing its
// key, in build order.
type keyIndex interface {
	insert(rows []Tuple, pos, shards int, parallel bool)
	matches(row Tuple, pos int) []int32
}

// typedIndex is the generic key index: one map per shard keyed by the
// column's native Go type, plus a lazily allocated canonical-string
// spill map for rows whose dynamic type does not match the declared
// schema type (such rows can only ever match each other, exactly as
// under the canonical-key encoding the serial join used before).
type typedIndex[K comparable] struct {
	get    func(Tuple, int) (K, bool)
	hash   func(K) uint32
	shards []map[K][]int32
	spill  map[string][]int32
}

func (ix *typedIndex[K]) shardOf(k K) uint32 {
	if len(ix.shards) == 1 {
		return 0
	}
	return ix.hash(k) % uint32(len(ix.shards))
}

func (ix *typedIndex[K]) insertSpill(row Tuple, pos int, i int32) {
	if ix.spill == nil {
		ix.spill = make(map[string][]int32)
	}
	k := row.Key(pos)
	ix.spill[k] = append(ix.spill[k], i)
}

func (ix *typedIndex[K]) insert(rows []Tuple, pos, shards int, parallel bool) {
	ix.shards = make([]map[K][]int32, shards)
	sizeHint := len(rows)/shards + 1
	for s := range ix.shards {
		ix.shards[s] = make(map[K][]int32, sizeHint)
	}
	if !parallel || shards == 1 || len(rows) < 2*shards {
		for i, r := range rows {
			k, ok := ix.get(r, pos)
			if !ok {
				ix.insertSpill(r, pos, int32(i))
				continue
			}
			m := ix.shards[ix.shardOf(k)]
			m[k] = append(m[k], int32(i))
		}
		return
	}
	// Two-pass parallel build: pass 1 extracts keys and shard ids over
	// contiguous chunks, pass 2 lets each shard insert its rows in build
	// order (disjoint maps, no locking).
	keys := make([]K, len(rows))
	shardOf := make([]uint8, len(rows))
	var wg sync.WaitGroup
	chunk := (len(rows) + shards - 1) / shards
	for lo := 0; lo < len(rows); lo += chunk {
		hi := lo + chunk
		if hi > len(rows) {
			hi = len(rows)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				k, ok := ix.get(rows[i], pos)
				if !ok {
					shardOf[i] = spillShard
					continue
				}
				keys[i] = k
				shardOf[i] = uint8(ix.shardOf(k))
			}
		}(lo, hi)
	}
	wg.Wait()
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s uint8) {
			defer wg.Done()
			m := ix.shards[s]
			for i, sh := range shardOf {
				if sh == s {
					m[keys[i]] = append(m[keys[i]], int32(i))
				}
			}
		}(uint8(s))
	}
	wg.Wait()
	for i, sh := range shardOf {
		if sh == spillShard {
			ix.insertSpill(rows[i], pos, int32(i))
		}
	}
}

// spillShard marks rows routed to the canonical-string spill map.
const spillShard = 255

func (ix *typedIndex[K]) matches(row Tuple, pos int) []int32 {
	k, ok := ix.get(row, pos)
	if !ok {
		if ix.spill == nil {
			return nil
		}
		return ix.spill[row.Key(pos)]
	}
	return ix.shards[ix.shardOf(k)][k]
}

// newKeyIndex picks the typed index for the declared key type.
func newKeyIndex(t Type) keyIndex {
	switch t {
	case Int:
		return &typedIndex[int64]{
			get:  func(r Tuple, p int) (int64, bool) { v, ok := r[p].(int64); return v, ok },
			hash: func(v int64) uint32 { return mix64(uint64(v)) },
		}
	case Float:
		return &typedIndex[float64]{
			get:  func(r Tuple, p int) (float64, bool) { v, ok := r[p].(float64); return v, ok },
			hash: func(v float64) uint32 { return mix64(math.Float64bits(v)) },
		}
	case Bool:
		return &typedIndex[bool]{
			get: func(r Tuple, p int) (bool, bool) { v, ok := r[p].(bool); return v, ok },
			hash: func(v bool) uint32 {
				if v {
					return 1
				}
				return 0
			},
		}
	default:
		return &typedIndex[string]{
			get:  func(r Tuple, p int) (string, bool) { v, ok := r[p].(string); return v, ok },
			hash: fnv32,
		}
	}
}

// Joiner is a reusable equi-join with the build phase done once:
// construct it over the build (right) side, then probe whole tables or
// successive row batches. Streaming callers (the dataflow hash-join
// operator) avoid rebuilding the hash table per batch, which the
// per-batch HashJoin calls used to do.
//
// The Joiner holds up to two build indexes, each constructed lazily on
// first use: the row-path typed index (ProbeRows, and Probe fallback)
// and the columnar open-addressing index (Probe over tables that can go
// columnar). Whole-table probes that take the columnar path never pay
// for the row index, and streaming batch probes never pay for the
// columnar one.
type Joiner struct {
	plan   *joinPlan
	kind   JoinType
	right  *Table
	shards int

	rowOnce sync.Once
	ix      keyIndex
	build   []Tuple

	colOnce sync.Once
	cj      *colJoiner
}

// NewJoiner prepares a join of the right (build) table against probes
// whose rows follow leftSchema. shards controls the hash partitioning
// of the build side and the parallelism of Probe; values below 1 (and
// above 128) are clamped. Output is identical for every shard count.
func NewJoiner(leftSchema *Schema, right *Table, leftKey, rightKey string, kind JoinType, shards int) (*Joiner, error) {
	plan, err := planJoin(leftSchema, right.Schema(), leftKey, rightKey)
	if err != nil {
		return nil, err
	}
	if shards < 1 {
		shards = 1
	}
	if shards > maxJoinShards {
		shards = maxJoinShards
	}
	return &Joiner{plan: plan, kind: kind, right: right, shards: shards}, nil
}

// rowIndex builds (once) and returns the row-path typed index.
func (j *Joiner) rowIndex() keyIndex {
	j.rowOnce.Do(func() {
		j.build = j.right.Rows()
		ix := newKeyIndex(j.right.Schema().Field(j.plan.rk).Type)
		ix.insert(j.build, j.plan.rk, j.shards, j.shards > 1)
		j.ix = ix
	})
	return j.ix
}

// columnar builds (once) and returns the columnar join index, or nil
// when the build side is too small, cannot be represented columnar
// (schema-divergent values need the row spill path), or the columnar
// fast paths are disabled.
func (j *Joiner) columnar() *colJoiner {
	if !colEnabled.Load() {
		return nil
	}
	j.colOnce.Do(func() {
		if j.right.Len() < colConvertMin {
			return
		}
		rc, ok := j.right.Columnar()
		if !ok {
			rc, ok = ToColumnar(j.right)
		}
		if ok {
			j.cj = newColJoiner(j.plan, j.kind, rc, j.shards)
		}
	})
	return j.cj
}

// OutputSchema returns the join output schema.
func (j *Joiner) OutputSchema() *Schema { return j.plan.out }

// arenaRows is how many output rows each arena block holds. Joined
// rows all have the same width, so blocks never fragment.
const arenaRows = 1024

// tupleArena carves fixed-width output tuples out of block
// allocations, replacing one allocation per output row with one per
// arenaRows rows.
type tupleArena struct {
	buf  []any
	used int
}

func (a *tupleArena) alloc(width int) Tuple {
	if a.used+width > len(a.buf) {
		n := arenaRows * width
		if n < width {
			n = width
		}
		a.buf = make([]any, n)
		a.used = 0
	}
	t := a.buf[a.used : a.used : a.used+width]
	a.used += width
	return Tuple(t)
}

// emit appends one joined row (or a padded row when r is nil) to dst.
func (j *Joiner) emit(dst []Tuple, a *tupleArena, l, r Tuple) []Tuple {
	row := a.alloc(j.plan.out.Len())
	row = append(row, l...)
	if r == nil {
		row = append(row, j.plan.padding...)
	} else {
		for _, p := range j.plan.rightPos {
			row = append(row, r[p])
		}
	}
	return append(dst, row)
}

// ProbeRows joins a batch of probe rows against the built side,
// appending output rows to dst in probe order.
func (j *Joiner) ProbeRows(dst []Tuple, rows []Tuple) []Tuple {
	ix := j.rowIndex()
	var arena tupleArena
	for _, l := range rows {
		ms := ix.matches(l, j.plan.lk)
		if len(ms) == 0 {
			if j.kind == LeftOuter {
				dst = j.emit(dst, &arena, l, nil)
			}
			continue
		}
		for _, ri := range ms {
			dst = j.emit(dst, &arena, l, j.build[ri])
		}
	}
	return dst
}

// Probe joins an entire probe table. When both sides can go columnar
// the vectorized kernel runs (typed key vectors, open-addressing index,
// vector gathers); otherwise the row path runs. Both paths emit
// identical rows in identical order. With more than one shard the row
// path splits the probe side into contiguous chunks joined
// concurrently; chunk outputs are concatenated in chunk order, so the
// result is bit-identical to a serial probe.
func (j *Joiner) Probe(left *Table) *Table {
	if cj := j.columnar(); cj != nil {
		lc, ok := left.Columnar()
		if !ok {
			lc, ok = ToColumnar(left)
		}
		if ok {
			kstats.joinCol.Add(1)
			return FromColumnar(cj.probe(lc))
		}
	}
	kstats.joinRow.Add(1)
	j.rowIndex()
	out := NewTable(j.plan.out)
	rows := left.Rows()
	if j.shards == 1 || len(rows) < 2*j.shards {
		out.rows = j.ProbeRows(make([]Tuple, 0, len(rows)), rows)
		return out
	}
	chunk := (len(rows) + j.shards - 1) / j.shards
	parts := make([][]Tuple, j.shards)
	var wg sync.WaitGroup
	slot := 0
	for lo := 0; lo < len(rows); lo += chunk {
		hi := lo + chunk
		if hi > len(rows) {
			hi = len(rows)
		}
		wg.Add(1)
		go func(slot int, batch []Tuple) {
			defer wg.Done()
			parts[slot] = j.ProbeRows(make([]Tuple, 0, len(batch)), batch)
		}(slot, rows[lo:hi])
		slot++
	}
	wg.Wait()
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out.rows = make([]Tuple, 0, n)
	for _, p := range parts {
		out.rows = append(out.rows, p...)
	}
	return out
}

// HashJoinPar is HashJoin with the build side hash-partitioned into
// shards and the probe side processed by shards concurrent workers.
// Output rows, including their order, are identical to HashJoin for
// every shard count.
func HashJoinPar(left, right *Table, leftKey, rightKey string, kind JoinType, shards int) (*Table, error) {
	j, err := NewJoiner(left.Schema(), right, leftKey, rightKey, kind, shards)
	if err != nil {
		return nil, err
	}
	return j.Probe(left), nil
}
