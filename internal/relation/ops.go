package relation

import "fmt"

// Predicate decides whether a row is kept by Filter.
type Predicate func(Tuple) bool

// Filter returns a new table containing the rows of t that satisfy
// keep.
func Filter(t *Table, keep Predicate) *Table {
	out := NewTable(t.Schema())
	for _, r := range t.Rows() {
		if keep(r) {
			out.AppendUnchecked(r)
		}
	}
	return out
}

// Project returns a new table with only the named columns, in order.
// On a columnar-backed table projection is zero-copy: the output shares
// the selected column vectors.
func Project(t *Table, names ...string) (*Table, error) {
	if c := t.colBacking(); c != nil {
		kstats.projectCol.Add(1)
		out, err := c.Project(names...)
		if err != nil {
			return nil, err
		}
		return FromColumnar(out), nil
	}
	kstats.projectRow.Add(1)
	s, err := t.Schema().Project(names...)
	if err != nil {
		return nil, err
	}
	pos := make([]int, len(names))
	for i, n := range names {
		pos[i] = t.Schema().IndexOf(n)
	}
	out := NewTable(s)
	for _, r := range t.Rows() {
		row := make(Tuple, len(pos))
		for i, p := range pos {
			row[i] = r[p]
		}
		out.AppendUnchecked(row)
	}
	return out, nil
}

// Map applies fn to every row, producing rows of the given output
// schema. Output rows are validated.
func Map(t *Table, out *Schema, fn func(Tuple) (Tuple, error)) (*Table, error) {
	res := NewTable(out)
	for i, r := range t.Rows() {
		row, err := fn(r)
		if err != nil {
			return nil, fmt.Errorf("relation: map row %d: %w", i, err)
		}
		if err := row.Validate(out); err != nil {
			return nil, fmt.Errorf("relation: map row %d: %w", i, err)
		}
		res.AppendUnchecked(row)
	}
	return res, nil
}

// FlatMap applies fn to every row; fn may emit zero or more rows.
func FlatMap(t *Table, out *Schema, fn func(Tuple) ([]Tuple, error)) (*Table, error) {
	res := NewTable(out)
	for i, r := range t.Rows() {
		rows, err := fn(r)
		if err != nil {
			return nil, fmt.Errorf("relation: flatmap row %d: %w", i, err)
		}
		for _, row := range rows {
			if err := row.Validate(out); err != nil {
				return nil, fmt.Errorf("relation: flatmap row %d: %w", i, err)
			}
			res.AppendUnchecked(row)
		}
	}
	return res, nil
}

// JoinType selects inner or left-outer semantics for HashJoin.
type JoinType int

const (
	// Inner keeps only matching pairs.
	Inner JoinType = iota
	// LeftOuter keeps unmatched left rows, padding right columns with
	// zero values.
	LeftOuter
)

// HashJoin joins left and right on equality of leftKey and rightKey.
// The output schema is left's fields followed by right's fields with
// the join key column from the right side dropped; right-side name
// collisions are prefixed with "r_". Probe order follows the left
// table, so output order is deterministic.
func HashJoin(left, right *Table, leftKey, rightKey string, kind JoinType) (*Table, error) {
	j, err := NewJoiner(left.Schema(), right, leftKey, rightKey, kind, 1)
	if err != nil {
		return nil, err
	}
	return j.Probe(left), nil
}

// NestedLoopJoin is the O(n·m) reference implementation used as a
// testing oracle for HashJoin.
func NestedLoopJoin(left, right *Table, leftKey, rightKey string, kind JoinType) (*Table, error) {
	lk := left.Schema().IndexOf(leftKey)
	rk := right.Schema().IndexOf(rightKey)
	if lk < 0 || rk < 0 {
		return nil, fmt.Errorf("relation: nested loop join: key not found")
	}
	// Reuse HashJoin's schema computation by joining empty tables.
	proto, err := HashJoin(NewTable(left.Schema()), NewTable(right.Schema()), leftKey, rightKey, kind)
	if err != nil {
		return nil, err
	}
	out := NewTable(proto.Schema())
	rightPos := make([]int, 0, right.Schema().Len()-1)
	for i := 0; i < right.Schema().Len(); i++ {
		if i != rk {
			rightPos = append(rightPos, i)
		}
	}
	for _, l := range left.Rows() {
		matched := false
		for _, r := range right.Rows() {
			if l.Key(lk) == r.Key(rk) {
				matched = true
				row := make(Tuple, 0, out.Schema().Len())
				row = append(row, l...)
				for _, p := range rightPos {
					row = append(row, r[p])
				}
				out.AppendUnchecked(row)
			}
		}
		if !matched && kind == LeftOuter {
			row := make(Tuple, 0, out.Schema().Len())
			row = append(row, l...)
			for _, p := range rightPos {
				switch right.Schema().Field(p).Type {
				case Int:
					row = append(row, int64(0))
				case Float:
					row = append(row, float64(0))
				case String:
					row = append(row, "")
				case Bool:
					row = append(row, false)
				}
			}
			out.AppendUnchecked(row)
		}
	}
	return out, nil
}

// Distinct returns the table with duplicate rows removed, keeping the
// first occurrence of each. Rows bucket by their canonical uint64 hash
// (no per-row key-string allocation); hash collisions resolve by
// canonical value equality, so the kept rows match the old string-keyed
// implementation exactly.
func Distinct(t *Table) *Table {
	all := make([]int, t.Schema().Len())
	for i := range all {
		all[i] = i
	}
	seen := make(map[uint64][]Tuple, t.Len())
	out := NewTable(t.Schema())
rows:
	for _, r := range t.Rows() {
		h := hashTupleCanon(r, all)
		b := seen[h]
		for _, prev := range b {
			if equalTupleCanon(prev, r, all) {
				continue rows
			}
		}
		seen[h] = append(b, r)
		out.AppendUnchecked(r)
	}
	return out
}

// Limit returns the first n rows (or all rows if n exceeds the size).
func Limit(t *Table, n int) *Table {
	if n < 0 {
		n = 0
	}
	if n > t.Len() {
		n = t.Len()
	}
	out := NewTable(t.Schema())
	out.rows = append(out.rows, t.Rows()[:n]...)
	return out
}

// AggFunc identifies a group-by aggregate.
type AggFunc int

const (
	// Count counts rows per group.
	Count AggFunc = iota
	// Sum sums a numeric column per group.
	Sum
	// Avg averages a numeric column per group.
	Avg
	// Min takes the minimum of a numeric column per group.
	Min
	// Max takes the maximum of a numeric column per group.
	Max
)

// Aggregate describes one aggregation in a GroupBy.
type Aggregate struct {
	Func  AggFunc
	Field string // input column; ignored for Count
	As    string // output column name
}

// GroupBy groups rows by the named key columns and computes the given
// aggregates. Output columns are the key columns followed by the
// aggregates (Count as Int, others as Float). Group order follows
// first appearance.
func GroupBy(t *Table, keys []string, aggs []Aggregate) (*Table, error) {
	keyPos := make([]int, len(keys))
	for i, k := range keys {
		p := t.Schema().IndexOf(k)
		if p < 0 {
			return nil, fmt.Errorf("relation: groupby: unknown key %q", k)
		}
		keyPos[i] = p
	}
	aggPos := make([]int, len(aggs))
	fields := make([]Field, 0, len(keys)+len(aggs))
	for _, p := range keyPos {
		fields = append(fields, t.Schema().Field(p))
	}
	for i, a := range aggs {
		if a.As == "" {
			return nil, fmt.Errorf("relation: groupby: aggregate %d has empty output name", i)
		}
		if a.Func == Count {
			aggPos[i] = -1
			fields = append(fields, Field{Name: a.As, Type: Int})
			continue
		}
		p := t.Schema().IndexOf(a.Field)
		if p < 0 {
			return nil, fmt.Errorf("relation: groupby: unknown field %q", a.Field)
		}
		ft := t.Schema().Field(p).Type
		if ft != Int && ft != Float {
			return nil, fmt.Errorf("relation: groupby: field %q is %s, need numeric", a.Field, ft)
		}
		aggPos[i] = p
		fields = append(fields, Field{Name: a.As, Type: Float})
	}
	outSchema, err := NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	if c := t.colBacking(); c != nil {
		kstats.groupCol.Add(1)
		return colGroupBy(c, keyPos, aggs, aggPos, outSchema), nil
	}
	kstats.groupRow.Add(1)

	// Row path: groups bucket by canonical uint64 hash (no key-string
	// allocation), collisions resolve by canonical value equality —
	// same equivalence classes, first-appearance order, and row-order
	// float accumulation as the columnar kernel, so both paths emit
	// identical bytes.
	type acc struct {
		key   Tuple
		count int64
		sums  []float64
		mins  []float64
		maxs  []float64
	}
	groups := make(map[uint64][]*acc)
	var order []*acc
	numeric := func(v any) float64 {
		switch v := v.(type) {
		case int64:
			return float64(v)
		case float64:
			return v
		}
		return 0
	}
	for _, r := range t.Rows() {
		h := hashTupleCanon(r, keyPos)
		var g *acc
		for _, cand := range groups[h] {
			match := true
			for i, p := range keyPos {
				if !equalValueCanon(cand.key[i], r[p]) {
					match = false
					break
				}
			}
			if match {
				g = cand
				break
			}
		}
		if g == nil {
			key := make(Tuple, len(keyPos))
			for i, p := range keyPos {
				key[i] = r[p]
			}
			g = &acc{key: key, sums: make([]float64, len(aggs)), mins: make([]float64, len(aggs)), maxs: make([]float64, len(aggs))}
			groups[h] = append(groups[h], g)
			order = append(order, g)
		}
		first := g.count == 0
		g.count++
		for i, p := range aggPos {
			if p < 0 {
				continue
			}
			v := numeric(r[p])
			g.sums[i] += v
			if first || v < g.mins[i] {
				g.mins[i] = v
			}
			if first || v > g.maxs[i] {
				g.maxs[i] = v
			}
		}
	}

	out := NewTable(outSchema)
	for _, g := range order {
		row := make(Tuple, 0, outSchema.Len())
		row = append(row, g.key...)
		for i, a := range aggs {
			switch a.Func {
			case Count:
				row = append(row, g.count)
			case Sum:
				row = append(row, g.sums[i])
			case Avg:
				row = append(row, g.sums[i]/float64(g.count))
			case Min:
				row = append(row, g.mins[i])
			case Max:
				row = append(row, g.maxs[i])
			}
		}
		out.AppendUnchecked(row)
	}
	return out, nil
}
