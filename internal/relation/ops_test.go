package relation

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func usersTable(t *testing.T) *Table {
	t.Helper()
	s := MustSchema(Field{"uid", Int}, Field{"name", String})
	tbl, err := FromRows(s, []Tuple{
		{int64(1), "ann"},
		{int64(2), "bob"},
		{int64(3), "cat"},
		{int64(4), "dan"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func ordersTable(t *testing.T) *Table {
	t.Helper()
	s := MustSchema(Field{"oid", Int}, Field{"uid", Int}, Field{"amt", Float})
	tbl, err := FromRows(s, []Tuple{
		{int64(10), int64(1), 5.0},
		{int64(11), int64(1), 7.0},
		{int64(12), int64(3), 2.0},
		{int64(13), int64(9), 1.0}, // dangling uid
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestFilter(t *testing.T) {
	u := usersTable(t)
	out := Filter(u, func(r Tuple) bool { return r.MustInt(0)%2 == 0 })
	if out.Len() != 2 {
		t.Fatalf("filtered len = %d", out.Len())
	}
	for _, r := range out.Rows() {
		if r.MustInt(0)%2 != 0 {
			t.Fatalf("row %v escaped filter", r)
		}
	}
}

func TestProjectOp(t *testing.T) {
	u := usersTable(t)
	out, err := Project(u, "name")
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema().Len() != 1 || out.Len() != 4 {
		t.Fatalf("project shape wrong: %s, %d rows", out.Schema(), out.Len())
	}
	if out.Row(0).MustStr(0) != "ann" {
		t.Fatal("project values wrong")
	}
	if _, err := Project(u, "missing"); err == nil {
		t.Fatal("expected error")
	}
}

func TestMapOp(t *testing.T) {
	u := usersTable(t)
	out, err := Map(u, MustSchema(Field{"upper", String}), func(r Tuple) (Tuple, error) {
		return Tuple{r.MustStr(1) + "!"}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Row(0).MustStr(0) != "ann!" {
		t.Fatal("map wrong")
	}
	// Output validation catches bad rows.
	_, err = Map(u, MustSchema(Field{"x", Int}), func(r Tuple) (Tuple, error) {
		return Tuple{"not an int"}, nil
	})
	if err == nil {
		t.Fatal("expected validation error")
	}
}

func TestFlatMapOp(t *testing.T) {
	u := usersTable(t)
	out, err := FlatMap(u, MustSchema(Field{"uid", Int}), func(r Tuple) ([]Tuple, error) {
		id := r.MustInt(0)
		if id%2 == 0 {
			return nil, nil
		}
		return []Tuple{{id}, {id * 10}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 { // ids 1,3 emit two rows each
		t.Fatalf("flatmap len = %d", out.Len())
	}
}

func TestHashJoinInner(t *testing.T) {
	u := usersTable(t)
	o := ordersTable(t)
	out, err := HashJoin(o, u, "uid", "uid", Inner)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("inner join len = %d, want 3", out.Len())
	}
	// Schema: oid, uid, amt, name.
	if out.Schema().String() != "oid:int, uid:int, amt:float, name:string" {
		t.Fatalf("schema = %s", out.Schema())
	}
	if out.Row(0).MustStr(3) != "ann" {
		t.Fatalf("first joined row = %v", out.Row(0))
	}
}

func TestHashJoinLeftOuter(t *testing.T) {
	u := usersTable(t)
	o := ordersTable(t)
	out, err := HashJoin(o, u, "uid", "uid", LeftOuter)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 {
		t.Fatalf("left outer join len = %d, want 4", out.Len())
	}
	last := out.Row(3)
	if last.MustInt(1) != 9 || last.MustStr(3) != "" {
		t.Fatalf("unmatched row = %v", last)
	}
}

func TestHashJoinErrors(t *testing.T) {
	u := usersTable(t)
	o := ordersTable(t)
	if _, err := HashJoin(o, u, "nope", "uid", Inner); err == nil {
		t.Fatal("expected unknown left key error")
	}
	if _, err := HashJoin(o, u, "uid", "nope", Inner); err == nil {
		t.Fatal("expected unknown right key error")
	}
	if _, err := HashJoin(o, u, "amt", "uid", Inner); err == nil {
		t.Fatal("expected key type mismatch error")
	}
}

func randomJoinTables(seed uint64) (*Table, *Table) {
	r := xrand.New(seed)
	ls := MustSchema(Field{"k", Int}, Field{"lv", String})
	rs := MustSchema(Field{"k", Int}, Field{"rv", Float})
	left := NewTable(ls)
	right := NewTable(rs)
	nl, nr := r.Intn(30), r.Intn(30)
	for i := 0; i < nl; i++ {
		left.AppendUnchecked(Tuple{int64(r.Intn(10)), "l"})
	}
	for i := 0; i < nr; i++ {
		right.AppendUnchecked(Tuple{int64(r.Intn(10)), r.Float64()})
	}
	return left, right
}

func TestPropertyHashJoinMatchesNestedLoop(t *testing.T) {
	f := func(seed uint64) bool {
		left, right := randomJoinTables(seed)
		for _, kind := range []JoinType{Inner, LeftOuter} {
			h, err := HashJoin(left, right, "k", "k", kind)
			if err != nil {
				return false
			}
			n, err := NestedLoopJoin(left, right, "k", "k", kind)
			if err != nil {
				return false
			}
			if !h.EqualUnordered(n) {
				return false
			}
			// The partitioned join must produce the serial result — not
			// just the same multiset, the exact same row order — at any
			// shard count.
			for _, shards := range []int{1, 2, 8} {
				p, err := HashJoinPar(left, right, "k", "k", kind, shards)
				if err != nil {
					return false
				}
				if !p.Equal(h) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestHashJoinParDeterministic pins the partitioned join's ordering
// contract: repeated runs and different shard counts all yield
// bit-identical output (asserted via ordered Equal and the serde
// digest) on a table large enough to exercise every parallel path.
func TestHashJoinParDeterministic(t *testing.T) {
	ls := MustSchema(Field{"k", Int}, Field{"lv", String})
	rs := MustSchema(Field{"k", Int}, Field{"rv", Float})
	left, right := NewTable(ls), NewTable(rs)
	for i := 0; i < 5000; i++ {
		left.AppendUnchecked(Tuple{int64(i % 700), "l"})
		right.AppendUnchecked(Tuple{int64(i % 900), float64(i)})
	}
	for _, kind := range []JoinType{Inner, LeftOuter} {
		ref, err := HashJoin(left, right, "k", "k", kind)
		if err != nil {
			t.Fatal(err)
		}
		want := Digest(ref)
		for _, shards := range []int{1, 2, 3, 8, 32} {
			for run := 0; run < 3; run++ {
				got, err := HashJoinPar(left, right, "k", "k", kind, shards)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(ref) {
					t.Fatalf("kind=%v shards=%d run=%d: row order differs from serial join", kind, shards, run)
				}
				if d := Digest(got); d != want {
					t.Fatalf("kind=%v shards=%d run=%d: digest %#x, want %#x", kind, shards, run, d, want)
				}
			}
		}
	}
}

func TestDistinct(t *testing.T) {
	s := MustSchema(Field{"x", Int})
	tbl, _ := FromRows(s, []Tuple{{int64(1)}, {int64(2)}, {int64(1)}, {int64(3)}, {int64(2)}})
	out := Distinct(tbl)
	if out.Len() != 3 {
		t.Fatalf("distinct len = %d", out.Len())
	}
	if out.Row(0).MustInt(0) != 1 || out.Row(1).MustInt(0) != 2 || out.Row(2).MustInt(0) != 3 {
		t.Fatal("distinct should keep first occurrences in order")
	}
}

func TestLimit(t *testing.T) {
	u := usersTable(t)
	if Limit(u, 2).Len() != 2 {
		t.Fatal("limit 2 wrong")
	}
	if Limit(u, 100).Len() != 4 {
		t.Fatal("limit beyond size wrong")
	}
	if Limit(u, -5).Len() != 0 {
		t.Fatal("negative limit wrong")
	}
}

func TestGroupBy(t *testing.T) {
	o := ordersTable(t)
	out, err := GroupBy(o, []string{"uid"}, []Aggregate{
		{Func: Count, As: "n"},
		{Func: Sum, Field: "amt", As: "total"},
		{Func: Avg, Field: "amt", As: "mean"},
		{Func: Min, Field: "amt", As: "lo"},
		{Func: Max, Field: "amt", As: "hi"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("groups = %d, want 3", out.Len())
	}
	// First group is uid=1 with two orders of 5 and 7.
	g := out.Row(0)
	if g.MustInt(0) != 1 || g.MustInt(1) != 2 || g.MustFloat(2) != 12 || g.MustFloat(3) != 6 || g.MustFloat(4) != 5 || g.MustFloat(5) != 7 {
		t.Fatalf("group row = %v", g)
	}
}

func TestGroupByErrors(t *testing.T) {
	o := ordersTable(t)
	if _, err := GroupBy(o, []string{"zzz"}, nil); err == nil {
		t.Fatal("expected unknown key error")
	}
	if _, err := GroupBy(o, []string{"uid"}, []Aggregate{{Func: Sum, Field: "zzz", As: "s"}}); err == nil {
		t.Fatal("expected unknown field error")
	}
	if _, err := GroupBy(o, []string{"uid"}, []Aggregate{{Func: Sum, Field: "amt", As: ""}}); err == nil {
		t.Fatal("expected empty output name error")
	}
	withStr := usersTable(t)
	if _, err := GroupBy(withStr, []string{"uid"}, []Aggregate{{Func: Sum, Field: "name", As: "s"}}); err == nil {
		t.Fatal("expected non-numeric field error")
	}
}

func TestPropertyGroupByCountsSumToTotal(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		s := MustSchema(Field{"g", Int}, Field{"v", Float})
		tbl := NewTable(s)
		n := r.Intn(100)
		for i := 0; i < n; i++ {
			tbl.AppendUnchecked(Tuple{int64(r.Intn(7)), r.Float64()})
		}
		out, err := GroupBy(tbl, []string{"g"}, []Aggregate{{Func: Count, As: "n"}})
		if err != nil {
			return false
		}
		var total int64
		for _, row := range out.Rows() {
			total += row.MustInt(1)
		}
		return total == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
