package relation

import "sync/atomic"

// Kernel dispatch counters: every operator that has both a vectorized
// (columnar) kernel and a row fallback bumps one counter per call at
// its dispatch gate. The counts feed the EXPLAIN profile's
// columnar-vs-row breakdown; they are process-global and monotonic, so
// profile builders read a delta around the run they observe. One
// relaxed atomic add per table-level call is noise next to the kernel
// it counts.
var kstats struct {
	projectCol, projectRow atomic.Int64
	groupCol, groupRow     atomic.Int64
	joinCol, joinRow       atomic.Int64
	encodeCol, encodeRow   atomic.Int64
}

// KernelStats is a point-in-time reading of the kernel dispatch
// counters, split by operator and path.
type KernelStats struct {
	ProjectCol int64 `json:"project_col"`
	ProjectRow int64 `json:"project_row"`
	GroupCol   int64 `json:"group_col"`
	GroupRow   int64 `json:"group_row"`
	JoinCol    int64 `json:"join_col"`
	JoinRow    int64 `json:"join_row"`
	EncodeCol  int64 `json:"encode_col"`
	EncodeRow  int64 `json:"encode_row"`
}

// KernelCounts snapshots the process-global kernel dispatch counters.
func KernelCounts() KernelStats {
	return KernelStats{
		ProjectCol: kstats.projectCol.Load(),
		ProjectRow: kstats.projectRow.Load(),
		GroupCol:   kstats.groupCol.Load(),
		GroupRow:   kstats.groupRow.Load(),
		JoinCol:    kstats.joinCol.Load(),
		JoinRow:    kstats.joinRow.Load(),
		EncodeCol:  kstats.encodeCol.Load(),
		EncodeRow:  kstats.encodeRow.Load(),
	}
}

// Sub returns s minus t, the per-field delta between two readings.
func (s KernelStats) Sub(t KernelStats) KernelStats {
	return KernelStats{
		ProjectCol: s.ProjectCol - t.ProjectCol,
		ProjectRow: s.ProjectRow - t.ProjectRow,
		GroupCol:   s.GroupCol - t.GroupCol,
		GroupRow:   s.GroupRow - t.GroupRow,
		JoinCol:    s.JoinCol - t.JoinCol,
		JoinRow:    s.JoinRow - t.JoinRow,
		EncodeCol:  s.EncodeCol - t.EncodeCol,
		EncodeRow:  s.EncodeRow - t.EncodeRow,
	}
}

// Columnar and Row total the calls that took each path.
func (s KernelStats) Columnar() int64 {
	return s.ProjectCol + s.GroupCol + s.JoinCol + s.EncodeCol
}

// Row totals the calls that took the row fallback.
func (s KernelStats) Row() int64 {
	return s.ProjectRow + s.GroupRow + s.JoinRow + s.EncodeRow
}
