package relation

import (
	"fmt"
	"testing"
)

// Wall-clock benchmarks for the columnar hot paths, split by phase so
// build-vs-probe and partitioned-vs-serial regressions are visible in
// isolation (the bench harness's micros time the combined call).

func benchJoinFixture(n int) (*ColTable, *ColTable, *joinPlan) {
	ls := MustSchema(Field{Name: "k", Type: Int}, Field{Name: "payload", Type: String})
	rs := MustSchema(Field{Name: "k", Type: Int}, Field{Name: "weight", Type: Float})
	left, right := NewTable(ls), NewTable(rs)
	for i := 0; i < n; i++ {
		left.AppendUnchecked(Tuple{int64(i % (n / 4)), fmt.Sprintf("row-%d", i)})
		right.AppendUnchecked(Tuple{int64(i % (n / 2)), float64(i)})
	}
	lc, _ := ToColumnar(left)
	rc, _ := ToColumnar(right)
	plan, err := planJoin(ls, rs, "k", "k")
	if err != nil {
		panic(err)
	}
	return lc, rc, plan
}

func BenchmarkColJoinBuild(b *testing.B) {
	_, rc, plan := benchJoinFixture(100000)
	for _, parts := range []int{1, 8} {
		b.Run(fmt.Sprintf("parts%d", parts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				newColJoiner(plan, Inner, rc, parts)
			}
		})
	}
}

func BenchmarkColJoinProbe(b *testing.B) {
	lc, rc, plan := benchJoinFixture(100000)
	for _, parts := range []int{1, 8} {
		cj := newColJoiner(plan, Inner, rc, parts)
		b.Run(fmt.Sprintf("parts%d", parts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cj.probe(lc)
			}
		})
	}
}

func BenchmarkColEncodeTable(b *testing.B) {
	lc, _, _ := benchJoinFixture(10000)
	b.Run("columnar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			colEncodeTable(lc)
		}
	})
	rows := FromColumnar(lc)
	rows.Rows()
	b.Run("row", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			prev := SetColumnarEnabled(false)
			if _, err := EncodeTable(rows); err != nil {
				b.Fatal(err)
			}
			SetColumnarEnabled(prev)
		}
	})
}
