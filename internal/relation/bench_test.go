package relation

import (
	"fmt"
	"testing"
)

func benchTables(n int) (*Table, *Table) {
	ls := MustSchema(Field{"k", Int}, Field{"payload", String})
	rs := MustSchema(Field{"k", Int}, Field{"weight", Float})
	left, right := NewTable(ls), NewTable(rs)
	for i := 0; i < n; i++ {
		left.AppendUnchecked(Tuple{int64(i % (n / 4)), fmt.Sprintf("row-%d", i)})
		right.AppendUnchecked(Tuple{int64(i % (n / 2)), float64(i)})
	}
	return left, right
}

func BenchmarkHashJoin(b *testing.B) {
	left, right := benchTables(100000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HashJoin(left, right, "k", "k", Inner); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashJoinPar(b *testing.B) {
	left, right := benchTables(100000)
	for _, shards := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := HashJoinPar(left, right, "k", "k", Inner, shards); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJoinerProbe measures the steady-state cost the dataflow
// operator now pays per probe batch: the hash table is built once and
// reused, instead of rebuilt per batch as before.
func BenchmarkJoinerProbe(b *testing.B) {
	left, right := benchTables(100000)
	j, err := NewJoiner(left.Schema(), right, "k", "k", Inner, 1)
	if err != nil {
		b.Fatal(err)
	}
	batch := left.Rows()[:2048]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := j.ProbeRows(nil, batch); len(out) == 0 {
			b.Fatal("empty probe result")
		}
	}
}

func BenchmarkGroupBy(b *testing.B) {
	left, _ := benchTables(10000)
	aggs := []Aggregate{{Func: Count, As: "n"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GroupBy(left, []string{"k"}, aggs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeTuple(b *testing.B) {
	t := Tuple{int64(42), "a reasonably sized string payload", 3.14159, true}
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = EncodeTuple(buf[:0], t)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeTuple(b *testing.B) {
	t := Tuple{int64(42), "a reasonably sized string payload", 3.14159, true}
	enc, err := EncodeTuple(nil, t)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeTuple(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeTuplePooled(b *testing.B) {
	t := Tuple{int64(42), "a reasonably sized string payload", 3.14159, true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := GetEncoder()
		if _, err := enc.EncodeTuple(t); err != nil {
			b.Fatal(err)
		}
		enc.Release()
	}
}

func BenchmarkEncodeTable(b *testing.B) {
	left, _ := benchTables(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeTable(left); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDigest(b *testing.B) {
	left, _ := benchTables(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Digest(left) == 0 {
			b.Fatal("zero digest")
		}
	}
}

func BenchmarkEncodedSize(b *testing.B) {
	t := Tuple{int64(42), "a reasonably sized string payload", 3.14159, true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if EncodedSize(t) == 0 {
			b.Fatal("zero size")
		}
	}
}

func BenchmarkSortBy(b *testing.B) {
	left, _ := benchTables(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := left.Clone()
		b.StartTimer()
		if err := c.SortBy("payload", "k"); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
	}
}
