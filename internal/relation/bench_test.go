package relation

import (
	"fmt"
	"testing"
)

func benchTables(n int) (*Table, *Table) {
	ls := MustSchema(Field{"k", Int}, Field{"payload", String})
	rs := MustSchema(Field{"k", Int}, Field{"weight", Float})
	left, right := NewTable(ls), NewTable(rs)
	for i := 0; i < n; i++ {
		left.AppendUnchecked(Tuple{int64(i % (n / 4)), fmt.Sprintf("row-%d", i)})
		right.AppendUnchecked(Tuple{int64(i % (n / 2)), float64(i)})
	}
	return left, right
}

func BenchmarkHashJoin(b *testing.B) {
	left, right := benchTables(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HashJoin(left, right, "k", "k", Inner); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupBy(b *testing.B) {
	left, _ := benchTables(10000)
	aggs := []Aggregate{{Func: Count, As: "n"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GroupBy(left, []string{"k"}, aggs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeTuple(b *testing.B) {
	t := Tuple{int64(42), "a reasonably sized string payload", 3.14159, true}
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = EncodeTuple(buf[:0], t)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeTuple(b *testing.B) {
	t := Tuple{int64(42), "a reasonably sized string payload", 3.14159, true}
	enc, err := EncodeTuple(nil, t)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeTuple(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodedSize(b *testing.B) {
	t := Tuple{int64(42), "a reasonably sized string payload", 3.14159, true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if EncodedSize(t) == 0 {
			b.Fatal("zero size")
		}
	}
}

func BenchmarkSortBy(b *testing.B) {
	left, _ := benchTables(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := left.Clone()
		b.StartTimer()
		if err := c.SortBy("payload", "k"); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
	}
}
