package relation

// Columnar group-by kernel. Rows are assigned group ids through an
// open-addressing table keyed by the canonical uint64 hash of the typed
// key vectors (same equivalence classes as Tuple.Key: every NaN is one
// value, -0 and +0 are distinct), and aggregates accumulate into
// per-group arrays in a single row-order pass. Group ids are assigned
// in first-appearance order and float sums accumulate in row order, so
// the output is bit-identical to the row-path GroupBy.

// colGroups maps rows of c to dense group ids.
type colGroups struct {
	c      *ColTable
	keyPos []int
	gid    []int32  // per row: its group id
	reps   []int32  // per group: first row
	ghash  []uint64 // per group: key hash
	slots  []int32  // open addressing: group id or -1
	mask   uint32
}

// hashKeyRow canonically hashes row i's key columns.
func (g *colGroups) hashKeyRow(i int) uint64 {
	h := FNVOffset64
	for _, p := range g.keyPos {
		cd := &g.c.cols[p]
		switch cd.typ {
		case Int:
			h ^= 'i'
			h *= FNVPrime64
			h = FNVMixUint64(h, uint64(cd.ints[i]))
		case Float:
			h ^= 'f'
			h *= FNVPrime64
			h = FNVMixUint64(h, canonFloatBits(cd.floats[i]))
		case Bool:
			h ^= 'b'
			h *= FNVPrime64
			if cd.bools[i] {
				h ^= 1
			}
			h *= FNVPrime64
		default:
			s := cd.strAt(i)
			h ^= 's'
			h *= FNVPrime64
			h = FNVMixUint64(h, uint64(len(s)))
			h = FNVMixString(h, s)
		}
	}
	return h
}

// eqKeyRows reports whether rows i and j agree on every key column
// under canonical equality (NaNs equal, -0 != +0).
func (g *colGroups) eqKeyRows(i int, j int32) bool {
	for _, p := range g.keyPos {
		cd := &g.c.cols[p]
		switch cd.typ {
		case Int:
			if cd.ints[i] != cd.ints[j] {
				return false
			}
		case Float:
			if canonFloatBits(cd.floats[i]) != canonFloatBits(cd.floats[j]) {
				return false
			}
		case Bool:
			if cd.bools[i] != cd.bools[j] {
				return false
			}
		default:
			if cd.dict != nil {
				// Same column, same dictionary: codes are unique per value.
				if cd.codes[i] != cd.codes[j] {
					return false
				}
			} else if cd.strs[i] != cd.strs[j] {
				return false
			}
		}
	}
	return true
}

// grow doubles the slot table, rehashing group ids by their stored
// hashes.
func (g *colGroups) grow() {
	size := 2 * len(g.slots)
	slots := make([]int32, size)
	for i := range slots {
		slots[i] = -1
	}
	mask := uint32(size - 1)
	for gid, h := range g.ghash {
		slot := uint32(h) & mask
		for slots[slot] >= 0 {
			slot = (slot + 1) & mask
		}
		slots[slot] = int32(gid)
	}
	g.slots = slots
	g.mask = mask
}

// assign computes group ids for every row, in first-appearance order.
func (g *colGroups) assign() {
	n := g.c.n
	g.gid = make([]int32, n)
	size := nextPow2(1024)
	if est := nextPow2(n / 4); est > size {
		size = est
	}
	g.slots = make([]int32, size)
	for i := range g.slots {
		g.slots[i] = -1
	}
	g.mask = uint32(size - 1)
	for i := 0; i < n; i++ {
		h := g.hashKeyRow(i)
		slot := uint32(h) & g.mask
		for {
			id := g.slots[slot]
			if id < 0 {
				id = int32(len(g.reps))
				g.reps = append(g.reps, int32(i))
				g.ghash = append(g.ghash, h)
				g.slots[slot] = id
				g.gid[i] = id
				if 4*len(g.reps) > 3*len(g.slots) {
					g.grow()
				}
				break
			}
			if g.ghash[id] == h && g.eqKeyRows(i, g.reps[id]) {
				g.gid[i] = id
				break
			}
			slot = (slot + 1) & g.mask
		}
	}
}

// colGroupBy runs GroupBy over the columnar representation. keyPos,
// aggPos (input column per aggregate, -1 for Count) and outSchema come
// from the shared argument validation in GroupBy.
func colGroupBy(c *ColTable, keyPos []int, aggs []Aggregate, aggPos []int, outSchema *Schema) *Table {
	g := &colGroups{c: c, keyPos: keyPos}
	g.assign()
	ng := len(g.reps)
	counts := make([]int64, ng)
	for _, id := range g.gid {
		counts[id]++
	}
	sums := make([][]float64, len(aggs))
	mins := make([][]float64, len(aggs))
	maxs := make([][]float64, len(aggs))
	for a, p := range aggPos {
		if p < 0 {
			continue
		}
		sums[a] = make([]float64, ng)
		mins[a] = make([]float64, ng)
		maxs[a] = make([]float64, ng)
		cd := &c.cols[p]
		// seen tracks first-value initialization for min/max.
		seen := make([]bool, ng)
		switch cd.typ {
		case Int:
			for i, id := range g.gid {
				v := float64(cd.ints[i])
				sums[a][id] += v
				if !seen[id] || v < mins[a][id] {
					mins[a][id] = v
				}
				if !seen[id] || v > maxs[a][id] {
					maxs[a][id] = v
				}
				seen[id] = true
			}
		default: // Float; GroupBy validated the column as numeric
			for i, id := range g.gid {
				v := cd.floats[i]
				sums[a][id] += v
				if !seen[id] || v < mins[a][id] {
					mins[a][id] = v
				}
				if !seen[id] || v > maxs[a][id] {
					maxs[a][id] = v
				}
				seen[id] = true
			}
		}
	}
	out := NewTable(outSchema)
	out.rows = make([]Tuple, 0, ng)
	for id := 0; id < ng; id++ {
		rep := int(g.reps[id])
		row := make(Tuple, 0, outSchema.Len())
		for _, p := range keyPos {
			row = append(row, c.cols[p].value(rep))
		}
		for a, agg := range aggs {
			switch agg.Func {
			case Count:
				row = append(row, counts[id])
			case Sum:
				row = append(row, sums[a][id])
			case Avg:
				row = append(row, sums[a][id]/float64(counts[id]))
			case Min:
				row = append(row, mins[a][id])
			case Max:
				row = append(row, maxs[a][id])
			}
		}
		out.rows = append(out.rows, row)
	}
	return out
}
