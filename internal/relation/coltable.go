package relation

import "sync/atomic"

// Columnar storage. A ColTable holds the same relation as a row Table
// but column-major: one typed vector per field ([]int64, []float64,
// []bool) with string columns either raw ([]string) or
// dictionary-encoded (int32 codes into a shared value dictionary).
// Column vectors are immutable once built — every kernel that "changes"
// a ColTable produces a new one, usually sharing column slices (Project)
// or dictionaries (Gather, joins) with its input.
//
// The columnar layout is the fast half of the relation package's dual
// representation: Table can carry a ColTable backing next to (or
// instead of) its row slice, and the hot-path kernels — filter over
// selection vectors, hash join, group-by, serde, Digest — run tight
// per-type loops over the vectors with no interface dispatch, while
// every row-oriented caller still sees []Tuple through lazy
// materialization. Conversions in both directions are value-exact, so
// results are bit-identical whichever representation computed them.

// colEnabled globally gates the automatic columnar fast paths (the
// explicit kernels keep working regardless). The bench harness flips it
// to measure row-path vs columnar-path macro pairs.
var colEnabled atomic.Bool

func init() { colEnabled.Store(true) }

// SetColumnarEnabled toggles the automatic columnar fast paths inside
// the row-level API (HashJoin, GroupBy, Digest, EncodeTable, ...).
// Outputs are bit-identical either way; only speed changes. Returns the
// previous setting.
func SetColumnarEnabled(on bool) bool { return colEnabled.Swap(on) }

// ColumnarEnabled reports whether automatic columnar fast paths are on.
func ColumnarEnabled() bool { return colEnabled.Load() }

const (
	// colConvertMin is the minimum row count at which the automatic
	// fast paths bother converting a row table to columnar; below it the
	// conversion overhead exceeds any kernel win.
	colConvertMin = 128
	// dictSampleRows is how many rows the string-column converter
	// ingests before deciding between dictionary and raw encoding.
	dictSampleRows = 1024
	// dictEarlyCheck is the cadence at which the converter re-checks
	// cardinality mid-sample: a column that already looks near-unique
	// after 256 rows bails to raw immediately instead of paying map
	// inserts for the rest of the sample. On pipelines full of
	// small unique-keyed tables this sampling cost is the dominant
	// conversion overhead.
	dictEarlyCheck = 256
	// dictMaxRatio is the cardinality ratio (distinct/seen) above which
	// a string column abandons dictionary encoding: near-unique columns
	// pay map inserts for no reuse.
	dictMaxRatio = 0.75
)

// strDict is a string-column dictionary: values in first-appearance
// order. The index map exists only while building; derived dictionaries
// (gather outputs, padded copies) carry just the values.
type strDict struct {
	vals []string
	idx  map[string]int32
}

func newStrDict() *strDict {
	return &strDict{idx: make(map[string]int32)}
}

// code interns s, returning its dictionary code.
func (d *strDict) code(s string) int32 {
	if c, ok := d.idx[s]; ok {
		return c
	}
	c := int32(len(d.vals))
	d.vals = append(d.vals, s)
	d.idx[s] = c
	return c
}

// withEmpty returns a dictionary that contains "" (for outer-join
// padding), either d itself or a read-only extended copy.
func (d *strDict) withEmpty() (*strDict, int32) {
	if d.idx != nil {
		if c, ok := d.idx[""]; ok {
			return d, c
		}
	} else {
		for i, v := range d.vals {
			if v == "" {
				return d, int32(i)
			}
		}
	}
	ext := &strDict{vals: make([]string, len(d.vals)+1)}
	copy(ext.vals, d.vals)
	return ext, int32(len(d.vals))
}

// colData is one column vector. Exactly one of the payload slices is
// populated, selected by typ (strings use strs when dict == nil, else
// codes+dict).
type colData struct {
	typ    Type
	ints   []int64
	floats []float64
	bools  []bool
	strs   []string
	codes  []int32
	dict   *strDict
}

// strAt returns the string at row i of a string column.
func (c *colData) strAt(i int) string {
	if c.dict != nil {
		return c.dict.vals[c.codes[i]]
	}
	return c.strs[i]
}

// value boxes the value at row i.
func (c *colData) value(i int) any {
	switch c.typ {
	case Int:
		return c.ints[i]
	case Float:
		return c.floats[i]
	case Bool:
		return c.bools[i]
	default:
		return c.strAt(i)
	}
}

// ColTable is a column-major relation: a schema plus one typed vector
// per field, all of length Len.
type ColTable struct {
	schema *Schema
	n      int
	cols   []colData

	// encSize caches the encoded byte size (vectors are immutable, so
	// it never goes stale); 0 means not yet computed.
	encSize atomic.Int64
}

// Schema returns the table's schema.
func (c *ColTable) Schema() *Schema { return c.schema }

// Len returns the number of rows.
func (c *ColTable) Len() int { return c.n }

// Ints returns the backing vector of an Int column (not a copy; callers
// must not mutate it).
func (c *ColTable) Ints(col int) []int64 { return c.cols[col].ints }

// Floats returns the backing vector of a Float column.
func (c *ColTable) Floats(col int) []float64 { return c.cols[col].floats }

// Bools returns the backing vector of a Bool column.
func (c *ColTable) Bools(col int) []bool { return c.cols[col].bools }

// Str returns the string at (row, col) of a String column.
func (c *ColTable) Str(col, row int) string { return c.cols[col].strAt(row) }

// DictEncoded reports whether a String column is dictionary-encoded and
// the dictionary's cardinality (0 for raw or non-string columns).
func (c *ColTable) DictEncoded(col int) (bool, int) {
	d := c.cols[col].dict
	if d == nil {
		return false, 0
	}
	return true, len(d.vals)
}

// ToColumnar converts a row table to columnar form. It returns (nil,
// false) when any value's dynamic type disagrees with the declared
// schema (such rows are representable only in row form, where the join
// spill path handles them). The input table's rows are not retained.
func ToColumnar(t *Table) (*ColTable, bool) {
	if t.col != nil {
		return t.col, true
	}
	rows := t.Rows()
	c := &ColTable{schema: t.schema, n: len(rows), cols: make([]colData, t.schema.Len())}
	for p := 0; p < t.schema.Len(); p++ {
		if !convertColumn(&c.cols[p], t.schema.Field(p).Type, rows, p) {
			return nil, false
		}
	}
	return c, true
}

// convertColumn fills one column vector from row position p.
func convertColumn(cd *colData, typ Type, rows []Tuple, p int) bool {
	cd.typ = typ
	n := len(rows)
	switch typ {
	case Int:
		vs := make([]int64, n)
		for i, r := range rows {
			v, ok := r[p].(int64)
			if !ok {
				return false
			}
			vs[i] = v
		}
		cd.ints = vs
	case Float:
		vs := make([]float64, n)
		for i, r := range rows {
			v, ok := r[p].(float64)
			if !ok {
				return false
			}
			vs[i] = v
		}
		cd.floats = vs
	case Bool:
		vs := make([]bool, n)
		for i, r := range rows {
			v, ok := r[p].(bool)
			if !ok {
				return false
			}
			vs[i] = v
		}
		cd.bools = vs
	case String:
		return convertStringColumn(cd, rows, p)
	default:
		return false
	}
	return true
}

// convertStringColumn dictionary-encodes a string column, bailing to a
// raw []string column when an initial sample shows near-unique values
// (paying map inserts for a dictionary nobody reuses loses to plain
// header copies).
func convertStringColumn(cd *colData, rows []Tuple, p int) bool {
	n := len(rows)
	dict := newStrDict()
	codes := make([]int32, 0, n)
	sample := n
	if sample > dictSampleRows {
		sample = dictSampleRows
	}
	for i := 0; i < sample; i++ {
		v, ok := rows[i][p].(string)
		if !ok {
			return false
		}
		codes = append(codes, dict.code(v))
		if (i+1)%dictEarlyCheck == 0 && float64(len(dict.vals)) > dictMaxRatio*float64(i+1) {
			sample = i + 1
			break
		}
	}
	if sample >= dictEarlyCheck && float64(len(dict.vals)) > dictMaxRatio*float64(sample) {
		// High cardinality: decode what we have and continue raw.
		strs := make([]string, n)
		for i, code := range codes {
			strs[i] = dict.vals[code]
		}
		for i := sample; i < n; i++ {
			v, ok := rows[i][p].(string)
			if !ok {
				return false
			}
			strs[i] = v
		}
		cd.strs = strs
		return true
	}
	for i := sample; i < n; i++ {
		v, ok := rows[i][p].(string)
		if !ok {
			return false
		}
		codes = append(codes, dict.code(v))
	}
	cd.codes = codes
	cd.dict = dict
	return true
}

// materializeRows builds the row form. Values are boxed through a slab
// so a w-wide table costs one []any allocation per table rather than
// one per row; dictionary strings box each dictionary entry once.
func (c *ColTable) materializeRows() []Tuple {
	w := c.schema.Len()
	rows := make([]Tuple, c.n)
	slab := make([]any, c.n*w)
	boxed := make([][]any, len(c.cols))
	for p := range c.cols {
		if d := c.cols[p].dict; d != nil {
			bs := make([]any, len(d.vals))
			for i, v := range d.vals {
				bs[i] = v
			}
			boxed[p] = bs
		}
	}
	for i := 0; i < c.n; i++ {
		row := slab[i*w : (i+1)*w : (i+1)*w]
		for p := range c.cols {
			cd := &c.cols[p]
			switch cd.typ {
			case Int:
				row[p] = cd.ints[i]
			case Float:
				row[p] = cd.floats[i]
			case Bool:
				row[p] = cd.bools[i]
			default:
				if cd.dict != nil {
					row[p] = boxed[p][cd.codes[i]]
				} else {
					row[p] = cd.strs[i]
				}
			}
		}
		rows[i] = Tuple(row)
	}
	return rows
}

// SelVec is a selection vector: indices of selected rows, ascending
// when produced by the filter kernels.
type SelVec []int32

// Gather materializes the selected rows as a new ColTable. Dictionary
// columns share their dictionary with the input (codes are gathered,
// values are not copied).
func (c *ColTable) Gather(sel SelVec) *ColTable {
	out := &ColTable{schema: c.schema, n: len(sel), cols: make([]colData, len(c.cols))}
	for p := range c.cols {
		cd := &c.cols[p]
		oc := &out.cols[p]
		oc.typ = cd.typ
		switch cd.typ {
		case Int:
			vs := make([]int64, len(sel))
			for i, s := range sel {
				vs[i] = cd.ints[s]
			}
			oc.ints = vs
		case Float:
			vs := make([]float64, len(sel))
			for i, s := range sel {
				vs[i] = cd.floats[s]
			}
			oc.floats = vs
		case Bool:
			vs := make([]bool, len(sel))
			for i, s := range sel {
				vs[i] = cd.bools[s]
			}
			oc.bools = vs
		default:
			if cd.dict != nil {
				codes := make([]int32, len(sel))
				for i, s := range sel {
					codes[i] = cd.codes[s]
				}
				oc.codes = codes
				oc.dict = cd.dict
			} else {
				vs := make([]string, len(sel))
				for i, s := range sel {
					vs[i] = cd.strs[s]
				}
				oc.strs = vs
			}
		}
	}
	return out
}

// Project returns a ColTable with only the named columns, in order.
// Column vectors are shared, not copied: projection is zero-copy.
func (c *ColTable) Project(names ...string) (*ColTable, error) {
	s, err := c.schema.Project(names...)
	if err != nil {
		return nil, err
	}
	out := &ColTable{schema: s, n: c.n, cols: make([]colData, len(names))}
	for i, name := range names {
		out.cols[i] = c.cols[c.schema.IndexOf(name)]
	}
	return out, nil
}

// Equal reports whether two columnar tables hold equal schemas and
// identical rows in order, comparing vectors type by type (dictionary
// and raw string columns compare by value).
func (c *ColTable) Equal(o *ColTable) bool {
	if !c.schema.Equal(o.schema) || c.n != o.n {
		return false
	}
	for p := range c.cols {
		a, b := &c.cols[p], &o.cols[p]
		switch a.typ {
		case Int:
			for i := range a.ints {
				if a.ints[i] != b.ints[i] {
					return false
				}
			}
		case Float:
			for i := range a.floats {
				if a.floats[i] != b.floats[i] {
					return false
				}
			}
		case Bool:
			for i := range a.bools {
				if a.bools[i] != b.bools[i] {
					return false
				}
			}
		default:
			for i := 0; i < c.n; i++ {
				if a.strAt(i) != b.strAt(i) {
					return false
				}
			}
		}
	}
	return true
}
