package relation

import "testing"

func TestNewSchema(t *testing.T) {
	s, err := NewSchema(Field{"id", Int}, Field{"name", String}, Field{"score", Float}, Field{"ok", Bool})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.IndexOf("name") != 1 {
		t.Fatalf("IndexOf(name) = %d", s.IndexOf("name"))
	}
	if s.IndexOf("missing") != -1 {
		t.Fatal("IndexOf(missing) should be -1")
	}
	if !s.Has("ok") || s.Has("nope") {
		t.Fatal("Has misbehaves")
	}
}

func TestNewSchemaErrors(t *testing.T) {
	if _, err := NewSchema(Field{"", Int}); err == nil {
		t.Fatal("expected error for empty name")
	}
	if _, err := NewSchema(Field{"a", Int}, Field{"a", String}); err == nil {
		t.Fatal("expected error for duplicate name")
	}
	if _, err := NewSchema(Field{"a", Type(42)}); err == nil {
		t.Fatal("expected error for unknown type")
	}
}

func TestSchemaEqual(t *testing.T) {
	a := MustSchema(Field{"x", Int}, Field{"y", String})
	b := MustSchema(Field{"x", Int}, Field{"y", String})
	c := MustSchema(Field{"x", Int}, Field{"y", Float})
	d := MustSchema(Field{"x", Int})
	if !a.Equal(b) {
		t.Fatal("equal schemas reported unequal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Fatal("unequal schemas reported equal")
	}
}

func TestSchemaProject(t *testing.T) {
	s := MustSchema(Field{"a", Int}, Field{"b", String}, Field{"c", Float})
	p, err := s.Project("c", "a")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.Field(0).Name != "c" || p.Field(1).Name != "a" {
		t.Fatalf("project = %s", p)
	}
	if _, err := s.Project("zzz"); err == nil {
		t.Fatal("expected error for unknown field")
	}
}

func TestSchemaConcatRenamesCollisions(t *testing.T) {
	a := MustSchema(Field{"id", Int}, Field{"v", String})
	b := MustSchema(Field{"id", Int}, Field{"w", Float})
	c, err := a.Concat(b, "r_")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"id", "v", "r_id", "w"}
	for i, n := range want {
		if c.Field(i).Name != n {
			t.Fatalf("field %d = %q, want %q", i, c.Field(i).Name, n)
		}
	}
}

func TestSchemaString(t *testing.T) {
	s := MustSchema(Field{"a", Int}, Field{"b", Bool})
	if s.String() != "a:int, b:bool" {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestTypeString(t *testing.T) {
	if Int.String() != "int" || Float.String() != "float" || String.String() != "string" || Bool.String() != "bool" {
		t.Fatal("type names wrong")
	}
	if Type(9).String() != "Type(9)" {
		t.Fatal("unknown type name wrong")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustSchema(Field{"", Int})
}

func TestFieldsReturnsCopy(t *testing.T) {
	s := MustSchema(Field{"a", Int})
	f := s.Fields()
	f[0].Name = "mutated"
	if s.Field(0).Name != "a" {
		t.Fatal("Fields() exposed internal state")
	}
}
