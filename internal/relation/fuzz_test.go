package relation

import "testing"

// FuzzDecodeTuple checks the binary decoder never panics on arbitrary
// bytes and that whatever it accepts re-encodes to the same bytes it
// consumed.
func FuzzDecodeTuple(f *testing.F) {
	seedTuples := []Tuple{
		{int64(1), "hello", 3.14, true},
		{},
		{""},
		{int64(-1)},
	}
	for _, t := range seedTuples {
		enc, err := EncodeTuple(nil, t)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{0x01, 0x7f})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		tup, n, err := DecodeTuple(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re, err := EncodeTuple(nil, tup)
		if err != nil {
			t.Fatalf("decoded tuple failed to re-encode: %v", err)
		}
		if string(re) != string(data[:n]) {
			t.Fatalf("re-encoding differs from consumed bytes")
		}
	})
}
