package relation

import (
	"fmt"
	"math"
	"testing"
)

// FuzzDecodeTuple checks the binary decoder never panics on arbitrary
// bytes and that whatever it accepts re-encodes to the same bytes it
// consumed.
func FuzzDecodeTuple(f *testing.F) {
	seedTuples := []Tuple{
		{int64(1), "hello", 3.14, true},
		{},
		{""},
		{int64(-1)},
	}
	for _, t := range seedTuples {
		enc, err := EncodeTuple(nil, t)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{0x01, 0x7f})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		tup, n, err := DecodeTuple(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re, err := EncodeTuple(nil, tup)
		if err != nil {
			t.Fatalf("decoded tuple failed to re-encode: %v", err)
		}
		if string(re) != string(data[:n]) {
			t.Fatalf("re-encoding differs from consumed bytes")
		}
	})
}

// fuzzTable derives a deterministic table from fuzz bytes: a small-
// domain Int key (join/group collisions), a Float column seeded with
// the IEEE specials (NaN, ±0, ±Inf), a low-cardinality String column
// (dictionary encoding), a near-unique String column (raw encoding),
// and a Bool column. Four input bytes make one row.
func fuzzTable(data []byte) *Table {
	s := MustSchema(
		Field{Name: "k", Type: Int},
		Field{Name: "f", Type: Float},
		Field{Name: "s", Type: String},
		Field{Name: "u", Type: String},
		Field{Name: "b", Type: Bool},
	)
	cats := []string{"", "alpha", "beta", "gamma", "delta", "eps", "zeta", "eta"}
	t := NewTable(s)
	n := len(data) / 4
	if n > 2048 {
		n = 2048
	}
	for i := 0; i < n; i++ {
		b := data[i*4 : i*4+4]
		var f float64
		switch b[1] % 8 {
		case 0:
			f = math.NaN()
		case 1:
			f = math.Copysign(0, -1)
		case 2:
			f = 0
		case 3:
			f = math.Inf(1)
		case 4:
			f = math.Inf(-1)
		default:
			f = float64(b[1]) / 3
		}
		t.AppendUnchecked(Tuple{
			int64(b[0] % 16),
			f,
			cats[b[2]%8],
			fmt.Sprintf("u%d-%d", i, b[3]),
			b[3]&1 == 1,
		})
	}
	return t
}

// encodeOrFatal is EncodeTable with test plumbing.
func encodeOrFatal(t *testing.T, tbl *Table) string {
	t.Helper()
	b, err := EncodeTable(tbl)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return string(b)
}

// FuzzColKernels is the differential fuzz between the columnar kernels
// and their row-path counterparts: hash join (both kinds, partitioned
// and not), group-by, the selection-vector filter, projection, and
// Distinct against a canonical-key-string reference. Results are
// compared by encoded bytes, which is the bit-equality the golden
// determinism tests depend on (NaN-safe, unlike value comparison).
func FuzzColKernels(f *testing.F) {
	f.Add([]byte("seed-corpus-columnar-kernels-0123456789abcdef"), []byte("right-side-bytes-9876543210fedcba"))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, []byte{250, 1, 7, 3})
	f.Add([]byte{}, []byte{1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, ldata, rdata []byte) {
		prev := ColumnarEnabled()
		defer SetColumnarEnabled(prev)
		left, right := fuzzTable(ldata), fuzzTable(rdata)
		lc, ok := ToColumnar(left)
		if !ok {
			t.Fatal("fuzz table did not convert")
		}
		rc, _ := ToColumnar(right)

		// Joins: row path vs the columnar kernel at several partition
		// counts, inner and left-outer.
		for _, kind := range []JoinType{Inner, LeftOuter} {
			SetColumnarEnabled(false)
			rowRes, err := HashJoin(left, right, "k", "k", kind)
			if err != nil {
				t.Fatalf("row join: %v", err)
			}
			want := encodeOrFatal(t, rowRes)
			SetColumnarEnabled(true)
			plan, err := planJoin(left.Schema(), right.Schema(), "k", "k")
			if err != nil {
				t.Fatalf("plan: %v", err)
			}
			for _, parts := range []int{1, 4} {
				cj := newColJoiner(plan, kind, rc, parts)
				got := encodeOrFatal(t, FromColumnar(cj.probe(lc)))
				if got != want {
					t.Fatalf("join kind=%v parts=%d: columnar bytes differ from row path", kind, parts)
				}
			}
		}

		// Group-by on a float key (canonical NaN/±0 semantics) plus
		// every aggregate over both numeric column types.
		aggs := []Aggregate{
			{Func: Count, As: "n"},
			{Func: Sum, Field: "f", As: "sum_f"},
			{Func: Avg, Field: "f", As: "avg_f"},
			{Func: Min, Field: "k", As: "min_k"},
			{Func: Max, Field: "f", As: "max_f"},
		}
		for _, keys := range [][]string{{"f"}, {"s", "b"}, {"k", "f"}} {
			SetColumnarEnabled(false)
			rowG, err := GroupBy(left, keys, aggs)
			if err != nil {
				t.Fatalf("row groupby: %v", err)
			}
			SetColumnarEnabled(true)
			colG, err := GroupBy(FromColumnar(lc), keys, aggs)
			if err != nil {
				t.Fatalf("col groupby: %v", err)
			}
			if encodeOrFatal(t, rowG) != encodeOrFatal(t, colG) {
				t.Fatalf("groupby keys=%v: columnar bytes differ from row path", keys)
			}
		}

		// Selection-vector filter vs row Filter, narrowing across two
		// columns.
		SetColumnarEnabled(false)
		rowF := Filter(left, func(r Tuple) bool {
			return r[0].(int64) < 8 && r[4].(bool)
		})
		sel, err := lc.SelectInt("k", func(v int64) bool { return v < 8 }, nil)
		if err != nil {
			t.Fatalf("select int: %v", err)
		}
		sel, err = lc.SelectBool("b", true, sel)
		if err != nil {
			t.Fatalf("select bool: %v", err)
		}
		if encodeOrFatal(t, rowF) != encodeOrFatal(t, lc.FilterCol(sel)) {
			t.Fatal("filter: columnar bytes differ from row path")
		}

		// Projection (zero-copy columnar) vs row projection.
		rowP, err := Project(left, "s", "k")
		if err != nil {
			t.Fatalf("row project: %v", err)
		}
		SetColumnarEnabled(true)
		colP, err := Project(FromColumnar(lc), "s", "k")
		if err != nil {
			t.Fatalf("col project: %v", err)
		}
		if encodeOrFatal(t, rowP) != encodeOrFatal(t, colP) {
			t.Fatal("project: columnar bytes differ from row path")
		}

		// Distinct: the uint64-hash implementation against a canonical
		// key-string reference (the semantics it replaced).
		dist := Distinct(left)
		all := []int{0, 1, 2, 3, 4}
		seen := make(map[string]bool)
		ref := NewTable(left.Schema())
		for _, r := range left.Rows() {
			k := r.Key(all...)
			if !seen[k] {
				seen[k] = true
				ref.AppendUnchecked(r)
			}
		}
		if encodeOrFatal(t, dist) != encodeOrFatal(t, ref) {
			t.Fatal("distinct: hashed bytes differ from key-string reference")
		}
		if !dist.EqualUnordered(ref) || !ref.EqualUnordered(dist) {
			t.Fatal("distinct: EqualUnordered disagrees with key-string reference")
		}
	})
}

// FuzzColSerdeRoundTrip checks the columnar serde against the row
// serde: identical encoded bytes, identical digests and size
// accounting, and a lossless columnar decode.
func FuzzColSerdeRoundTrip(f *testing.F) {
	f.Add([]byte("serde-round-trip-seed-bytes-0123456789"))
	f.Add([]byte{7, 0, 255, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		prev := ColumnarEnabled()
		defer SetColumnarEnabled(prev)
		tbl := fuzzTable(data)
		c, ok := ToColumnar(tbl)
		if !ok {
			t.Fatal("fuzz table did not convert")
		}
		SetColumnarEnabled(false)
		rowBytes := encodeOrFatal(t, tbl)
		rowDigest := Digest(tbl)
		rowSize := TableBytes(tbl)
		SetColumnarEnabled(true)
		colBytes := string(colEncodeTable(c))
		if colBytes != rowBytes {
			t.Fatal("columnar encoding differs from row encoding")
		}
		if d := colDigest(c); d != rowDigest {
			t.Fatalf("columnar digest %#x differs from row digest %#x", d, rowDigest)
		}
		if sz := colTableBytes(c); sz != rowSize || sz != int64(len(colBytes)) {
			t.Fatalf("size accounting: col=%d row=%d actual=%d", sz, rowSize, len(colBytes))
		}
		dec, err := DecodeTableColumnar(tbl.Schema(), []byte(colBytes))
		if err != nil {
			t.Fatalf("columnar decode: %v", err)
		}
		if _, ok := dec.Columnar(); !ok {
			t.Fatal("columnar decode returned a table without columnar backing")
		}
		if encodeOrFatal(t, dec) != rowBytes {
			t.Fatal("columnar decode did not round-trip")
		}
		// The row decoder accepts the same buffer and agrees.
		rdec, err := DecodeTable(tbl.Schema(), []byte(colBytes))
		if err != nil {
			t.Fatalf("row decode: %v", err)
		}
		SetColumnarEnabled(false)
		if encodeOrFatal(t, rdec) != rowBytes {
			t.Fatal("row decode of columnar encoding did not round-trip")
		}
	})
}

// FuzzDecodeTableColumnar checks the columnar table decoder never
// panics or over-allocates on arbitrary bytes, and that whatever it
// accepts agrees with the row decoder.
func FuzzDecodeTableColumnar(f *testing.F) {
	good := fuzzTable([]byte("decoder-fuzz-seed-corpus-0123456789abcdef"))
	enc, err := EncodeTable(good)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	f.Add([]byte{0x05})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	schema := good.Schema()
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := DecodeTableColumnar(schema, data)
		if err != nil {
			return
		}
		rdec, rerr := DecodeTable(schema, data)
		if rerr != nil {
			// The row decoder tolerates width-divergent tuples that the
			// columnar layout cannot hold; it must not reject anything
			// the stricter columnar decoder accepted.
			t.Fatalf("row decoder rejected columnar-accepted bytes: %v", rerr)
		}
		if !dec.Equal(rdec) && Digest(dec) != Digest(rdec) {
			t.Fatal("columnar and row decoders disagree")
		}
	})
}
