package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first values")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		n := 1 + i%100
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %v too far from 0.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + int(seed%64)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedIndexRespectsZeroWeights(t *testing.T) {
	r := New(17)
	w := []float64{0, 3, 0, 1}
	counts := make([]int, len(w))
	for i := 0; i < 40000; i++ {
		counts[r.WeightedIndex(w)]++
	}
	if counts[0] != 0 || counts[2] != 0 {
		t.Fatalf("zero-weight indices chosen: %v", counts)
	}
	ratio := float64(counts[1]) / float64(counts[3])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("weight ratio %v too far from 3", ratio)
	}
}

func TestWeightedIndexPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for all-zero weights")
		}
	}()
	New(1).WeightedIndex([]float64{0, 0})
}

func TestSampleDistinct(t *testing.T) {
	r := New(23)
	items := []int{1, 2, 3, 4, 5, 6, 7, 8}
	s := Sample(r, items, 5)
	if len(s) != 5 {
		t.Fatalf("Sample returned %d items, want 5", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if seen[v] {
			t.Fatalf("duplicate element %d in sample", v)
		}
		seen[v] = true
	}
}

func TestSampleOversized(t *testing.T) {
	r := New(29)
	s := Sample(r, []int{1, 2, 3}, 10)
	if len(s) != 3 {
		t.Fatalf("oversized Sample returned %d items, want 3", len(s))
	}
}

func TestChoice(t *testing.T) {
	r := New(31)
	choices := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Choice(r, choices)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Choice never returned some elements: %v", seen)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(37)
	v := []int{1, 2, 2, 3, 3, 3}
	sum := 0
	for _, x := range v {
		sum += x
	}
	r.Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
	sum2 := 0
	for _, x := range v {
		sum2 += x
	}
	if sum != sum2 {
		t.Fatalf("shuffle changed contents: %v", v)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(41)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) observed probability %v", p)
	}
}

func TestRangeBounds(t *testing.T) {
	r := New(43)
	for i := 0; i < 1000; i++ {
		v := r.Range(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Range(-2,5) = %v out of bounds", v)
		}
	}
}
