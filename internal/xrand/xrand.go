// Package xrand provides a small, deterministic pseudo-random number
// generator used by every data generator and model in this repository.
//
// Reproducibility is a hard requirement for the experiment harness: the
// same seed must yield the same datasets, the same model initializations
// and therefore the same measured results on every run and platform.
// The generator is an implementation of SplitMix64 (Steele, Lea &
// Flood), which passes BigCrush, is allocation-free, and is trivially
// splittable so that independent subsystems can derive independent
// streams from one root seed.
package xrand

import "math"

// Rand is a deterministic pseudo-random number generator. The zero
// value is a valid generator seeded with 0; use New to seed it
// explicitly.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed. Distinct seeds give
// statistically independent streams.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Split derives a new independent generator from r. The parent stream
// advances by one step, so repeated Split calls yield distinct children.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns an int uniformly distributed in [0, n). It panics if
// n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded integers would be overkill
	// here; modulo bias is negligible for the n (< 2^32) we use.
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a float64 uniformly distributed in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a float64 uniformly distributed in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed float64 with mean 0 and standard
// deviation 1, computed with the Box-Muller transform.
func (r *Rand) Norm() float64 {
	// Guard against log(0).
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n) as a slice of n
// ints.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided
// swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Choice returns a uniformly chosen element of choices. It panics if
// choices is empty.
func Choice[T any](r *Rand, choices []T) T {
	return choices[r.Intn(len(choices))]
}

// WeightedIndex returns an index in [0, len(weights)) chosen with
// probability proportional to the weight. Non-positive weights are
// treated as zero. It panics if the total weight is not positive.
func (r *Rand) WeightedIndex(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("xrand: WeightedIndex requires a positive total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Sample returns k distinct elements drawn uniformly from items. If
// k >= len(items) a shuffled copy of all items is returned.
func Sample[T any](r *Rand, items []T, k int) []T {
	cp := make([]T, len(items))
	copy(cp, items)
	r.Shuffle(len(cp), func(i, j int) { cp[i], cp[j] = cp[j], cp[i] })
	if k > len(cp) {
		k = len(cp)
	}
	return cp[:k]
}
