package textproc

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"34-yr-old man", []string{"34", "yr", "old", "man"}},
		{"", nil},
		{"...", nil},
		{"UPPER lower MiXeD", []string{"upper", "lower", "mixed"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestSplitSentencesBasic(t *testing.T) {
	text := "The patient presented with fever. A chest X-ray was performed. Recovery was fast!"
	ss := SplitSentences(text)
	if len(ss) != 3 {
		t.Fatalf("got %d sentences: %v", len(ss), ss)
	}
	if ss[0].Text != "The patient presented with fever." {
		t.Fatalf("first sentence = %q", ss[0].Text)
	}
}

func TestSplitSentencesOffsetsSliceSource(t *testing.T) {
	text := "One sentence here. Another one? Yes."
	for _, s := range SplitSentences(text) {
		if text[s.Start:s.End] != s.Text {
			t.Fatalf("offsets wrong: %q vs %q", text[s.Start:s.End], s.Text)
		}
	}
}

func TestSplitSentencesDecimalsAndAbbreviations(t *testing.T) {
	text := "Temperature was 38.5 degrees. Dr. Smith reviewed the chart."
	ss := SplitSentences(text)
	if len(ss) != 2 {
		t.Fatalf("got %d sentences: %+v", len(ss), ss)
	}
	if !strings.HasPrefix(ss[1].Text, "Dr. Smith") {
		t.Fatalf("abbreviation split wrong: %q", ss[1].Text)
	}
}

func TestSplitSentencesEmptyAndWhitespace(t *testing.T) {
	if got := SplitSentences(""); got != nil {
		t.Fatalf("empty text gave %v", got)
	}
	if got := SplitSentences("   \n  "); got != nil {
		t.Fatalf("whitespace text gave %v", got)
	}
}

func TestSplitSentencesNoTrailingPeriod(t *testing.T) {
	ss := SplitSentences("First. Second without period")
	if len(ss) != 2 {
		t.Fatalf("got %d sentences", len(ss))
	}
	if ss[1].Text != "Second without period" {
		t.Fatalf("tail sentence = %q", ss[1].Text)
	}
}

func TestPropertySentencesCoverDisjointSpans(t *testing.T) {
	words := []string{"fever", "cough", "patient", "presented", "chronic", "severe", "acute", "38", "mg"}
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		var b strings.Builder
		n := 1 + r.Intn(8)
		for i := 0; i < n; i++ {
			m := 1 + r.Intn(6)
			for j := 0; j < m; j++ {
				if j > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(xrand.Choice(r, words))
			}
			b.WriteString(". ")
		}
		text := b.String()
		ss := SplitSentences(text)
		prevEnd := -1
		for _, s := range ss {
			if s.Start < 0 || s.End > len(text) || s.Start >= s.End {
				return false
			}
			if s.Start <= prevEnd {
				return false
			}
			if text[s.Start:s.End] != s.Text {
				return false
			}
			prevEnd = s.End
		}
		return len(ss) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVocabulary(t *testing.T) {
	v := BuildVocabulary([]string{"the cat sat", "the cat ran", "dog"}, 2)
	if v.ID("the") < 0 || v.ID("cat") < 0 {
		t.Fatal("frequent tokens missing")
	}
	if v.ID("dog") != -1 || v.ID("sat") != -1 {
		t.Fatal("rare tokens should be dropped at minCount=2")
	}
	if v.Len() != 2 {
		t.Fatalf("vocab size = %d", v.Len())
	}
	if v.Token(v.ID("the")) != "the" {
		t.Fatal("Token/ID mismatch")
	}
}

func TestVocabularyAddIdempotent(t *testing.T) {
	v := NewVocabulary()
	a := v.Add("x")
	b := v.Add("x")
	if a != b {
		t.Fatal("Add not idempotent")
	}
	if v.Len() != 1 {
		t.Fatal("duplicate add grew vocab")
	}
}

func TestVocabularyEncode(t *testing.T) {
	v := BuildVocabulary([]string{"alpha beta gamma"}, 1)
	ids := v.Encode("beta delta alpha")
	if len(ids) != 2 {
		t.Fatalf("encode = %v", ids)
	}
	if v.Token(ids[0]) != "beta" || v.Token(ids[1]) != "alpha" {
		t.Fatalf("encode = %v", ids)
	}
}

func TestNGrams(t *testing.T) {
	toks := []string{"a", "b", "c", "d"}
	bi := NGrams(toks, 2)
	want := []string{"a b", "b c", "c d"}
	if len(bi) != len(want) {
		t.Fatalf("bigrams = %v", bi)
	}
	for i := range bi {
		if bi[i] != want[i] {
			t.Fatalf("bigrams = %v", bi)
		}
	}
	if NGrams(toks, 0) != nil || NGrams(toks, 5) != nil {
		t.Fatal("degenerate n-grams should be nil")
	}
	uni := NGrams(toks, 4)
	if len(uni) != 1 || uni[0] != "a b c d" {
		t.Fatalf("4-gram = %v", uni)
	}
}
