// Package textproc provides the text-processing primitives shared by
// the data-science tasks: tokenization, sentence splitting with
// character offsets (required to link clinical annotations to their
// sentences in the DICE task), vocabularies and n-grams.
package textproc

import (
	"strings"
	"unicode"
)

// Tokenize lowercases s and splits it into alphanumeric tokens.
// Punctuation separates tokens; digits stay inside tokens ("34-yr-old"
// becomes ["34", "yr", "old"]).
func Tokenize(s string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r):
			b.WriteRune(unicode.ToLower(r))
		case unicode.IsDigit(r):
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// Sentence is a sentence with its character span in the source text.
// End is exclusive.
type Sentence struct {
	Text  string
	Start int
	End   int
}

// abbreviations that should not terminate a sentence. Clinical text is
// full of them.
var abbreviations = map[string]bool{
	"dr": true, "mr": true, "mrs": true, "ms": true, "vs": true,
	"e.g": true, "i.e": true, "etc": true, "fig": true, "approx": true,
	"no": true, "pt": true, "dx": true, "hx": true,
}

// SplitSentences splits text into sentences on '.', '!' and '?'
// boundaries followed by whitespace, skipping common abbreviations and
// decimal points. Offsets are byte offsets into text; the sentence text
// is trimmed but offsets cover the trimmed span.
func SplitSentences(text string) []Sentence {
	var out []Sentence
	start := 0
	bytes := []byte(text)
	n := len(bytes)
	for i := 0; i < n; i++ {
		c := bytes[i]
		if c != '.' && c != '!' && c != '?' {
			continue
		}
		// Decimal point: digit on both sides.
		if c == '.' && i > 0 && i+1 < n && isDigit(bytes[i-1]) && isDigit(bytes[i+1]) {
			continue
		}
		// Abbreviation before the period.
		if c == '.' && isAbbreviation(text[start:i]) {
			continue
		}
		// A boundary requires end-of-text or whitespace after the mark.
		if i+1 < n && !isSpace(bytes[i+1]) {
			continue
		}
		if s, ok := trimSpan(text, start, i+1); ok {
			out = append(out, s)
		}
		start = i + 1
	}
	if s, ok := trimSpan(text, start, n); ok {
		out = append(out, s)
	}
	return out
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }
func isSpace(b byte) bool { return b == ' ' || b == '\n' || b == '\t' || b == '\r' }

// isAbbreviation reports whether the text immediately before a period
// ends in a known abbreviation token.
func isAbbreviation(before string) bool {
	j := len(before)
	i := j
	for i > 0 {
		c := before[i-1]
		if c == ' ' || c == '\n' || c == '\t' {
			break
		}
		i--
	}
	word := strings.ToLower(before[i:j])
	word = strings.TrimSuffix(word, ".")
	return abbreviations[word]
}

// trimSpan trims whitespace from text[start:end] and returns the
// sentence with adjusted offsets; ok is false for all-whitespace spans.
func trimSpan(text string, start, end int) (Sentence, bool) {
	for start < end && isSpace(text[start]) {
		start++
	}
	for end > start && isSpace(text[end-1]) {
		end--
	}
	if start >= end {
		return Sentence{}, false
	}
	return Sentence{Text: text[start:end], Start: start, End: end}, true
}

// Vocabulary maps tokens to dense integer IDs.
type Vocabulary struct {
	ids    map[string]int
	tokens []string
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{ids: make(map[string]int)}
}

// BuildVocabulary creates a vocabulary from documents, keeping tokens
// that occur at least minCount times. Token IDs are assigned in order
// of first appearance for determinism.
func BuildVocabulary(docs []string, minCount int) *Vocabulary {
	counts := make(map[string]int)
	var order []string
	for _, d := range docs {
		for _, tok := range Tokenize(d) {
			if counts[tok] == 0 {
				order = append(order, tok)
			}
			counts[tok]++
		}
	}
	v := NewVocabulary()
	for _, tok := range order {
		if counts[tok] >= minCount {
			v.Add(tok)
		}
	}
	return v
}

// Add inserts a token if absent and returns its ID.
func (v *Vocabulary) Add(tok string) int {
	if id, ok := v.ids[tok]; ok {
		return id
	}
	id := len(v.tokens)
	v.ids[tok] = id
	v.tokens = append(v.tokens, tok)
	return id
}

// ID returns the token's ID, or -1 if unknown.
func (v *Vocabulary) ID(tok string) int {
	if id, ok := v.ids[tok]; ok {
		return id
	}
	return -1
}

// Token returns the token for an ID.
func (v *Vocabulary) Token(id int) string { return v.tokens[id] }

// Len returns the vocabulary size.
func (v *Vocabulary) Len() int { return len(v.tokens) }

// Encode maps a document to the IDs of its known tokens.
func (v *Vocabulary) Encode(doc string) []int {
	var out []int
	for _, tok := range Tokenize(doc) {
		if id, ok := v.ids[tok]; ok {
			out = append(out, id)
		}
	}
	return out
}

// NGrams returns the contiguous n-grams of tokens joined by spaces.
func NGrams(tokens []string, n int) []string {
	if n <= 0 || len(tokens) < n {
		return nil
	}
	out := make([]string, 0, len(tokens)-n+1)
	for i := 0; i+n <= len(tokens); i++ {
		out = append(out, strings.Join(tokens[i:i+n], " "))
	}
	return out
}

// Stopwords is a small English stopword set used by feature
// extraction.
var Stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "and": true, "or": true,
	"of": true, "to": true, "in": true, "on": true, "for": true,
	"with": true, "is": true, "was": true, "are": true, "were": true,
	"be": true, "been": true, "at": true, "by": true, "as": true,
	"that": true, "this": true, "it": true, "from": true, "his": true,
	"her": true, "had": true, "has": true, "have": true, "who": true,
}
