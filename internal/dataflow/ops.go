package dataflow

import (
	"fmt"
	"math"

	"repro/internal/cost"
	"repro/internal/relation"
)

// Default per-tuple work constants, in Python-seconds. These are the
// engine-level defaults; tasks calibrate their own operator costs where
// the paper's workloads demand it.
var (
	// DefaultScanWork is charged per tuple by sources.
	DefaultScanWork = cost.Work{Interp: 1.5e-6, Mem: 0.5e-6}
	// DefaultFilterWork is charged per input tuple by Filter.
	DefaultFilterWork = cost.Work{Interp: 2.0e-6, Mem: 0.3e-6}
	// DefaultProjectWork is charged per input tuple by Project.
	DefaultProjectWork = cost.Work{Interp: 1.2e-6, Mem: 0.3e-6}
	// DefaultMapWork is charged per input tuple by Map/FlatMap UDFs.
	DefaultMapWork = cost.Work{Interp: 4.0e-6, Mem: 0.5e-6}
	// DefaultBuildWork is charged per build-side tuple by HashJoin.
	DefaultBuildWork = cost.Work{Interp: 3.0e-6, Mem: 1.0e-6}
	// DefaultProbeWork is charged per probe-side tuple by HashJoin,
	// before the size-dependent memory term.
	DefaultProbeWork = cost.Work{Interp: 3.5e-6, Mem: 0.8e-6}
	// DefaultGroupWork is charged per input tuple by GroupBy.
	DefaultGroupWork = cost.Work{Interp: 3.0e-6, Mem: 0.8e-6}
	// DefaultSortWorkPerCmp is charged per comparison by Sort.
	DefaultSortWorkPerCmp = cost.Work{Interp: 0.4e-6, Mem: 0.1e-6}
)

// base provides Desc plumbing for the builtin operators.
type base struct {
	desc Desc
}

func (b base) Desc() Desc { return b.desc }

// ---------------------------------------------------------------------------
// Filter

// FilterOp keeps tuples satisfying a predicate.
type FilterOp struct {
	base
	Keep relation.Predicate
	Work cost.Work // per input tuple
}

// NewFilter returns a filter operator named name.
func NewFilter(name string, lang cost.Language, keep relation.Predicate) *FilterOp {
	return &FilterOp{
		base: base{Desc{Name: name, Language: lang, Ports: 1, BlockingPorts: []bool{false}, Stateless: true}},
		Keep: keep,
		Work: DefaultFilterWork,
	}
}

// OutputSchema passes the input schema through.
func (o *FilterOp) OutputSchema(in []*relation.Schema) (*relation.Schema, error) {
	if len(in) != 1 || in[0] == nil {
		return nil, fmt.Errorf("dataflow: %s: filter needs exactly one input", o.desc.Name)
	}
	return in[0], nil
}

// NewInstance returns a stateless filter worker.
func (o *FilterOp) NewInstance() Instance { return &filterInstance{op: o} }

type filterInstance struct{ op *FilterOp }

func (fi *filterInstance) Open(ExecCtx) error { return nil }
func (fi *filterInstance) Process(ec ExecCtx, _ int, rows []relation.Tuple) ([]relation.Tuple, error) {
	ec.AddWork(fi.op.Work.Scale(float64(len(rows))))
	var out []relation.Tuple
	for _, r := range rows {
		if fi.op.Keep(r) {
			out = append(out, r)
		}
	}
	return out, nil
}
func (fi *filterInstance) EndPort(ExecCtx, int) ([]relation.Tuple, error) { return nil, nil }
func (fi *filterInstance) Close(ExecCtx) error                            { return nil }

// ---------------------------------------------------------------------------
// Project

// ProjectOp keeps only the named columns.
type ProjectOp struct {
	base
	Names []string
	Work  cost.Work
}

// NewProject returns a projection operator.
func NewProject(name string, lang cost.Language, names ...string) *ProjectOp {
	return &ProjectOp{
		base:  base{Desc{Name: name, Language: lang, Ports: 1, BlockingPorts: []bool{false}, Stateless: true}},
		Names: names,
		Work:  DefaultProjectWork,
	}
}

// OutputSchema projects the input schema.
func (o *ProjectOp) OutputSchema(in []*relation.Schema) (*relation.Schema, error) {
	if len(in) != 1 || in[0] == nil {
		return nil, fmt.Errorf("dataflow: %s: project needs exactly one input", o.desc.Name)
	}
	return in[0].Project(o.Names...)
}

// NewInstance returns a projection worker.
func (o *ProjectOp) NewInstance() Instance { return &projectInstance{op: o} }

type projectInstance struct {
	op  *ProjectOp
	pos []int
}

func (pi *projectInstance) Open(ExecCtx) error { return nil }
func (pi *projectInstance) Process(ec ExecCtx, _ int, rows []relation.Tuple) ([]relation.Tuple, error) {
	ec.AddWork(pi.op.Work.Scale(float64(len(rows))))
	out := make([]relation.Tuple, len(rows))
	for i, r := range rows {
		if pi.pos == nil {
			// Positions are resolved lazily from the first row's width;
			// the workflow validated the schema, so the names exist.
			return nil, fmt.Errorf("dataflow: %s: positions not bound", pi.op.desc.Name)
		}
		row := make(relation.Tuple, len(pi.pos))
		for k, p := range pi.pos {
			row[k] = r[p]
		}
		out[i] = row
	}
	return out, nil
}
func (pi *projectInstance) EndPort(ExecCtx, int) ([]relation.Tuple, error) { return nil, nil }
func (pi *projectInstance) Close(ExecCtx) error                            { return nil }

// bindSchema lets the executor resolve column positions once the input
// schema is known. Operators that need positions implement it.
type schemaBinder interface {
	bindSchemas(in []*relation.Schema) error
}

func (pi *projectInstance) bindSchemas(in []*relation.Schema) error {
	pi.pos = make([]int, len(pi.op.Names))
	for i, n := range pi.op.Names {
		p := in[0].IndexOf(n)
		if p < 0 {
			return fmt.Errorf("dataflow: %s: unknown column %q", pi.op.desc.Name, n)
		}
		pi.pos[i] = p
	}
	return nil
}

// ---------------------------------------------------------------------------
// Map / FlatMap (UDF)

// MapFunc transforms one tuple into zero or more tuples.
type MapFunc func(relation.Tuple) ([]relation.Tuple, error)

// MapOp applies a user-defined function to every tuple — the engine's
// generic Python/Scala UDF operator.
type MapOp struct {
	base
	Out  *relation.Schema
	Fn   MapFunc
	Work cost.Work // per input tuple
	// ExtraWork, if non-nil, lets a UDF charge additional data-dependent
	// work per tuple (for example model inference cost).
	ExtraWork func(relation.Tuple) cost.Work
}

// NewMap returns a UDF operator with the given output schema.
func NewMap(name string, lang cost.Language, out *relation.Schema, fn MapFunc) *MapOp {
	return &MapOp{
		base: base{Desc{Name: name, Language: lang, Ports: 1, BlockingPorts: []bool{false}, Stateless: true}},
		Out:  out,
		Fn:   fn,
		Work: DefaultMapWork,
	}
}

// OutputSchema returns the declared output schema.
func (o *MapOp) OutputSchema(in []*relation.Schema) (*relation.Schema, error) {
	if len(in) != 1 || in[0] == nil {
		return nil, fmt.Errorf("dataflow: %s: map needs exactly one input", o.desc.Name)
	}
	return o.Out, nil
}

// NewInstance returns a UDF worker.
func (o *MapOp) NewInstance() Instance { return &mapInstance{op: o} }

type mapInstance struct{ op *MapOp }

func (mi *mapInstance) Open(ExecCtx) error { return nil }
func (mi *mapInstance) Process(ec ExecCtx, _ int, rows []relation.Tuple) ([]relation.Tuple, error) {
	ec.AddWork(mi.op.Work.Scale(float64(len(rows))))
	var out []relation.Tuple
	for _, r := range rows {
		if mi.op.ExtraWork != nil {
			ec.AddWork(mi.op.ExtraWork(r))
		}
		produced, err := mi.op.Fn(r)
		if err != nil {
			return nil, err
		}
		out = append(out, produced...)
	}
	return out, nil
}
func (mi *mapInstance) EndPort(ExecCtx, int) ([]relation.Tuple, error) { return nil, nil }
func (mi *mapInstance) Close(ExecCtx) error                            { return nil }

// ---------------------------------------------------------------------------
// HashJoin

// HashJoinOp joins a probe stream (port 1) against a built hash table
// of the build stream (port 0). The build port is blocking. Its probe
// cost includes a memory-bound term that grows with the logarithm of
// the build-side size — probing a table that outgrows the caches costs
// the same in every language, which is the mechanism behind the
// paper's Table I.
type HashJoinOp struct {
	base
	BuildKey, ProbeKey string
	Kind               relation.JoinType
	BuildWork          cost.Work // per build tuple
	ProbeWork          cost.Work // per probe tuple, before the memory term
	// ProbeMemLog is the Mem-seconds added per probe tuple per log2 of
	// the build-side row count.
	ProbeMemLog float64
	// outPerm and outSchema, when set by the optimizer's join-swap
	// rewrite, re-order the physical output columns back into the
	// pre-swap layout so downstream operators see the original schema.
	// outPerm[k] is the physical column emitted at logical position k.
	outPerm   []int
	outSchema *relation.Schema
}

// NewHashJoin returns a hash-join operator. Port 0 is the build side,
// port 1 the probe side.
func NewHashJoin(name string, lang cost.Language, buildKey, probeKey string, kind relation.JoinType) *HashJoinOp {
	return &HashJoinOp{
		base:        base{Desc{Name: name, Language: lang, Ports: 2, BlockingPorts: []bool{true, false}}},
		BuildKey:    buildKey,
		ProbeKey:    probeKey,
		Kind:        kind,
		BuildWork:   DefaultBuildWork,
		ProbeWork:   DefaultProbeWork,
		ProbeMemLog: 0.15e-6,
	}
}

// OutputSchema concatenates probe columns with build columns (minus the
// build key), matching relation.HashJoin with the probe side on the
// left.
func (o *HashJoinOp) OutputSchema(in []*relation.Schema) (*relation.Schema, error) {
	if len(in) != 2 || in[0] == nil || in[1] == nil {
		return nil, fmt.Errorf("dataflow: %s: hash join needs two inputs", o.desc.Name)
	}
	if o.outSchema != nil {
		return o.outSchema, nil
	}
	build, probe := in[0], in[1]
	empty := relation.NewTable(probe)
	emptyBuild := relation.NewTable(build)
	proto, err := relation.HashJoin(empty, emptyBuild, o.ProbeKey, o.BuildKey, o.Kind)
	if err != nil {
		return nil, fmt.Errorf("dataflow: %s: %w", o.desc.Name, err)
	}
	return proto.Schema(), nil
}

// NewInstance returns a join worker with its own hash table.
func (o *HashJoinOp) NewInstance() Instance { return &joinInstance{op: o} }

type joinInstance struct {
	op          *HashJoinOp
	buildSchema *relation.Schema
	probeSchema *relation.Schema
	buildRows   *relation.Table
	joiner      *relation.Joiner
}

func (ji *joinInstance) bindSchemas(in []*relation.Schema) error {
	if len(in) != 2 {
		return fmt.Errorf("dataflow: %s: expected two input schemas", ji.op.desc.Name)
	}
	ji.buildSchema, ji.probeSchema = in[0], in[1]
	ji.buildRows = relation.NewTable(in[0])
	return nil
}

func (ji *joinInstance) Open(ExecCtx) error { return nil }

func (ji *joinInstance) Process(ec ExecCtx, port int, rows []relation.Tuple) ([]relation.Tuple, error) {
	switch port {
	case 0:
		ec.AddWork(ji.op.BuildWork.Scale(float64(len(rows))))
		for _, r := range rows {
			ji.buildRows.AppendUnchecked(r)
		}
		return nil, nil
	case 1:
		w := ji.op.ProbeWork
		if n := ji.buildRows.Len(); n > 1 {
			w.Mem += ji.op.ProbeMemLog * math.Log2(float64(n))
		}
		ec.AddWork(w.Scale(float64(len(rows))))
		if ji.joiner == nil {
			// Port 1 with no port 0 at all (not even EndPort) cannot
			// happen under the executor's port-ordering guarantee, but
			// keep direct Process calls in tests working.
			if err := ji.buildJoiner(1); err != nil {
				return nil, err
			}
		}
		out := ji.joiner.ProbeRows(nil, rows)
		if perm := ji.op.outPerm; perm != nil {
			for i, row := range out {
				fixed := make(relation.Tuple, len(perm))
				for k, p := range perm {
					fixed[k] = row[p]
				}
				out[i] = fixed
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("dataflow: %s: unexpected port %d", ji.op.desc.Name, port)
	}
}

// buildJoiner constructs the reusable probe index once the build side
// is complete. Before this change every probe batch rebuilt the whole
// hash table; now EndPort(0) builds it a single time, partitioned
// across the operator's workers.
func (ji *joinInstance) buildJoiner(shards int) error {
	j, err := relation.NewJoiner(ji.probeSchema, ji.buildRows, ji.op.ProbeKey, ji.op.BuildKey, ji.op.Kind, shards)
	if err != nil {
		return err
	}
	ji.joiner = j
	return nil
}

func (ji *joinInstance) EndPort(ec ExecCtx, port int) ([]relation.Tuple, error) {
	if port == 0 && ji.joiner == nil {
		if err := ji.buildJoiner(ec.Workers()); err != nil {
			return nil, err
		}
	}
	return nil, nil
}
func (ji *joinInstance) Close(ExecCtx) error { return nil }

// ---------------------------------------------------------------------------
// GroupBy

// GroupByOp groups its single blocking port and emits aggregates when
// the input ends.
type GroupByOp struct {
	base
	Keys []string
	Aggs []relation.Aggregate
	Work cost.Work // per input tuple
}

// NewGroupBy returns a blocking group-by operator.
func NewGroupBy(name string, lang cost.Language, keys []string, aggs []relation.Aggregate) *GroupByOp {
	return &GroupByOp{
		base: base{Desc{Name: name, Language: lang, Ports: 1, BlockingPorts: []bool{true}}},
		Keys: keys,
		Aggs: aggs,
		Work: DefaultGroupWork,
	}
}

// OutputSchema derives the grouped schema.
func (o *GroupByOp) OutputSchema(in []*relation.Schema) (*relation.Schema, error) {
	if len(in) != 1 || in[0] == nil {
		return nil, fmt.Errorf("dataflow: %s: group-by needs exactly one input", o.desc.Name)
	}
	proto, err := relation.GroupBy(relation.NewTable(in[0]), o.Keys, o.Aggs)
	if err != nil {
		return nil, fmt.Errorf("dataflow: %s: %w", o.desc.Name, err)
	}
	return proto.Schema(), nil
}

// NewInstance returns a group-by worker.
func (o *GroupByOp) NewInstance() Instance { return &groupByInstance{op: o} }

type groupByInstance struct {
	op  *GroupByOp
	in  *relation.Table
	sch *relation.Schema
}

func (gi *groupByInstance) bindSchemas(in []*relation.Schema) error {
	gi.sch = in[0]
	gi.in = relation.NewTable(in[0])
	return nil
}
func (gi *groupByInstance) Open(ExecCtx) error { return nil }
func (gi *groupByInstance) Process(ec ExecCtx, _ int, rows []relation.Tuple) ([]relation.Tuple, error) {
	ec.AddWork(gi.op.Work.Scale(float64(len(rows))))
	for _, r := range rows {
		gi.in.AppendUnchecked(r)
	}
	return nil, nil
}
func (gi *groupByInstance) EndPort(ec ExecCtx, _ int) ([]relation.Tuple, error) {
	out, err := relation.GroupBy(gi.in, gi.op.Keys, gi.op.Aggs)
	if err != nil {
		return nil, err
	}
	return out.Rows(), nil
}
func (gi *groupByInstance) Close(ExecCtx) error { return nil }

// ---------------------------------------------------------------------------
// Sort

// SortOp buffers its blocking input and emits it sorted on EndPort.
type SortOp struct {
	base
	Fields []string
	Work   cost.Work // per comparison
}

// NewSort returns a blocking sort operator.
func NewSort(name string, lang cost.Language, fields ...string) *SortOp {
	return &SortOp{
		base:   base{Desc{Name: name, Language: lang, Ports: 1, BlockingPorts: []bool{true}}},
		Fields: fields,
		Work:   DefaultSortWorkPerCmp,
	}
}

// OutputSchema passes the input schema through.
func (o *SortOp) OutputSchema(in []*relation.Schema) (*relation.Schema, error) {
	if len(in) != 1 || in[0] == nil {
		return nil, fmt.Errorf("dataflow: %s: sort needs exactly one input", o.desc.Name)
	}
	return in[0], nil
}

// NewInstance returns a sort worker.
func (o *SortOp) NewInstance() Instance { return &sortInstance{op: o} }

type sortInstance struct {
	op *SortOp
	in *relation.Table
}

func (si *sortInstance) bindSchemas(in []*relation.Schema) error {
	si.in = relation.NewTable(in[0])
	return nil
}
func (si *sortInstance) Open(ExecCtx) error { return nil }
func (si *sortInstance) Process(_ ExecCtx, _ int, rows []relation.Tuple) ([]relation.Tuple, error) {
	for _, r := range rows {
		si.in.AppendUnchecked(r)
	}
	return nil, nil
}
func (si *sortInstance) EndPort(ec ExecCtx, _ int) ([]relation.Tuple, error) {
	n := float64(si.in.Len())
	if n > 1 {
		ec.AddWork(si.op.Work.Scale(n * math.Log2(n)))
	}
	if err := si.in.SortBy(si.op.Fields...); err != nil {
		return nil, err
	}
	return si.in.Rows(), nil
}
func (si *sortInstance) Close(ExecCtx) error { return nil }

// ---------------------------------------------------------------------------
// Limit

// LimitOp passes through at most N tuples (per workflow, so it should
// run with parallelism 1).
type LimitOp struct {
	base
	N int
}

// NewLimit returns a limit operator.
func NewLimit(name string, lang cost.Language, n int) *LimitOp {
	return &LimitOp{
		base: base{Desc{Name: name, Language: lang, Ports: 1, BlockingPorts: []bool{false}}},
		N:    n,
	}
}

// OutputSchema passes the input schema through.
func (o *LimitOp) OutputSchema(in []*relation.Schema) (*relation.Schema, error) {
	if len(in) != 1 || in[0] == nil {
		return nil, fmt.Errorf("dataflow: %s: limit needs exactly one input", o.desc.Name)
	}
	return in[0], nil
}

// NewInstance returns a limit worker.
func (o *LimitOp) NewInstance() Instance { return &limitInstance{op: o, left: o.N} }

type limitInstance struct {
	op   *LimitOp
	left int
}

func (li *limitInstance) Open(ExecCtx) error { return nil }
func (li *limitInstance) Process(ec ExecCtx, _ int, rows []relation.Tuple) ([]relation.Tuple, error) {
	ec.AddWork(DefaultProjectWork.Scale(float64(len(rows))))
	if li.left <= 0 {
		return nil, nil
	}
	if len(rows) > li.left {
		rows = rows[:li.left]
	}
	li.left -= len(rows)
	return rows, nil
}
func (li *limitInstance) EndPort(ExecCtx, int) ([]relation.Tuple, error) { return nil, nil }
func (li *limitInstance) Close(ExecCtx) error                            { return nil }
