package dataflow

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cost"
	"repro/internal/lineage"
	"repro/internal/relation"
)

func lineageTestWorkflow(t *testing.T, filterRev int) *Workflow {
	t.Helper()
	s := relation.MustSchema(
		relation.Field{Name: "k", Type: relation.Int},
		relation.Field{Name: "v", Type: relation.String},
	)
	src := relation.NewTable(s)
	for i := 0; i < 500; i++ {
		src.AppendUnchecked(relation.Tuple{int64(i), fmt.Sprintf("row-%d", i)})
	}
	w := New("lin-test")
	source := w.Source("numbers", src)
	keep := w.Op(NewFilter("keep-even", cost.Python, func(r relation.Tuple) bool {
		return r[0].(int64)%2 == 0
	}), WithSignature(fmt.Sprintf("rev=%d", filterRev)))
	double := w.Op(NewMap("double", cost.Python, s, func(r relation.Tuple) ([]relation.Tuple, error) {
		return []relation.Tuple{{r[0].(int64) * 2, r[1]}}, nil
	}))
	sink := w.Sink("out")
	w.Connect(source, keep, 0, RoundRobin())
	w.Connect(keep, double, 0, RoundRobin())
	w.Connect(double, sink, 0, RoundRobin())
	return w
}

func TestLineageWorkflowReuse(t *testing.T) {
	store, err := lineage.NewStore(cost.Default(), 0)
	if err != nil {
		t.Fatal(err)
	}
	run := func(rev int) *Result {
		res, err := lineageTestWorkflow(t, rev).Run(context.Background(), Config{Lineage: store})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	coldRes, err := lineageTestWorkflow(t, 0).Run(context.Background(), Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Populate.
	r1 := run(0)
	if r1.Lineage == nil || r1.Lineage.Commits != 4 || r1.Lineage.Reused != 0 {
		t.Fatalf("populate run report: %+v", r1.Lineage)
	}
	if relation.Digest(r1.Tables["out"]) != relation.Digest(coldRes.Tables["out"]) {
		t.Fatal("lineage-armed cold run changed the output")
	}

	// Unchanged re-run: everything is a hit, nothing executes, and the
	// incremental run is strictly cheaper than cold.
	r2 := run(0)
	if r2.Lineage.Reused != 4 || r2.Lineage.Commits != 0 {
		t.Fatalf("all-hit run report: %+v", r2.Lineage)
	}
	if relation.Digest(r2.Tables["out"]) != relation.Digest(r1.Tables["out"]) {
		t.Fatal("all-hit run changed the output")
	}
	if r2.SimSeconds >= r1.SimSeconds {
		t.Fatalf("all-hit run (%g s) not cheaper than populate run (%g s)", r2.SimSeconds, r1.SimSeconds)
	}
	// Only the skipped sink remains in the trace.
	if len(r2.Trace.Nodes) != 1 || r2.Trace.Nodes[0].Kind != "sink" {
		t.Fatalf("all-hit trace should contain only the cached sink view, got %d nodes", len(r2.Trace.Nodes))
	}

	// Edit the filter: it and its suffix re-run, the source is replayed
	// from cache, and the output is bit-equal to a cold run of the same
	// (semantics-preserving) edit.
	r3 := run(1)
	if r3.Lineage.Reused != 1 || r3.Lineage.Invalidations == 0 {
		t.Fatalf("edit run report: %+v", r3.Lineage)
	}
	if r3.Lineage.HitBytes == 0 {
		t.Fatal("workflow replay should fetch artifact bytes")
	}
	if relation.Digest(r3.Tables["out"]) != relation.Digest(coldRes.Tables["out"]) {
		t.Fatal("incremental edit run diverged from cold output")
	}
	if r3.SimSeconds >= coldRes.SimSeconds {
		t.Fatalf("incremental edit run (%g s) not cheaper than cold (%g s)", r3.SimSeconds, coldRes.SimSeconds)
	}
}

func TestLineageModelChangeInvalidates(t *testing.T) {
	store, err := lineage.NewStore(cost.Default(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lineageTestWorkflow(t, 0).Run(context.Background(), Config{Lineage: store}); err != nil {
		t.Fatal(err)
	}
	m := cost.Default()
	m.SerdeBytesPerSec *= 2 // recalibration = a different model version
	res, err := lineageTestWorkflow(t, 0).Run(context.Background(), Config{Lineage: store, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lineage.Reused != 0 {
		t.Fatalf("recalibrated model must not hit the old cache: %+v", res.Lineage)
	}
}
