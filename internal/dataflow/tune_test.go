package dataflow

import (
	"context"
	"testing"

	"repro/internal/cost"
	"repro/internal/relation"
)

// tuneTrace profiles a 3-stage workflow with one expensive stage.
func tuneTrace(t *testing.T) *Trace {
	t.Helper()
	in := intTable(20000)
	w := New("tune")
	src := w.Source("src", in)
	cheap := NewMap("cheap", cost.Python, in.Schema(), func(r relation.Tuple) ([]relation.Tuple, error) {
		return []relation.Tuple{r}, nil
	})
	cheap.Work = cost.Work{Interp: 1e-3}
	a := w.Op(cheap)
	heavy := NewMap("heavy", cost.Python, in.Schema(), func(r relation.Tuple) ([]relation.Tuple, error) {
		return []relation.Tuple{r}, nil
	})
	heavy.Work = cost.Work{Interp: 10e-3}
	b := w.Op(heavy)
	srt := w.Op(NewSort("tail-sort", cost.Python, "id"))
	snk := w.Sink("out")
	w.Connect(src, a, 0, RoundRobin())
	w.Connect(a, b, 0, RoundRobin())
	w.Connect(b, srt, 0, RoundRobin())
	w.Connect(srt, snk, 0, RoundRobin())
	res, err := w.Run(context.Background(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

func TestAutoTuneImprovesAndRespectsBudget(t *testing.T) {
	tr := tuneTrace(t)
	res, err := AutoTune(tr, cost.Default(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds >= res.BaselineSeconds {
		t.Fatalf("tuning did not help: %v vs baseline %v", res.Seconds, res.BaselineSeconds)
	}
	if res.CoresUsed > 8 {
		t.Fatalf("budget exceeded: %d", res.CoresUsed)
	}
	// The expensive stage should get the lion's share.
	var heavyID, cheapID, sortID NodeID
	for _, n := range tr.Nodes {
		switch n.Name {
		case "heavy":
			heavyID = n.ID
		case "cheap":
			cheapID = n.ID
		case "tail-sort":
			sortID = n.ID
		}
	}
	if res.Workers[heavyID] <= res.Workers[cheapID] {
		t.Fatalf("tuner gave heavy=%d, cheap=%d", res.Workers[heavyID], res.Workers[cheapID])
	}
	if res.Workers[sortID] != 1 {
		t.Fatalf("sort is not parallelizable but got %d workers", res.Workers[sortID])
	}
}

func TestAutoTuneMonotoneInBudget(t *testing.T) {
	tr := tuneTrace(t)
	small, err := AutoTune(tr, cost.Default(), 4)
	if err != nil {
		t.Fatal(err)
	}
	large, err := AutoTune(tr, cost.Default(), 12)
	if err != nil {
		t.Fatal(err)
	}
	if large.Seconds > small.Seconds+1e-9 {
		t.Fatalf("larger budget produced a worse plan: %v vs %v", large.Seconds, small.Seconds)
	}
}

func TestAutoTuneRecommendationMatchesRealRun(t *testing.T) {
	// Rebuild the workflow with the tuner's worker counts: the real
	// engine's simulated time should be close to the tuner's estimate.
	in := intTable(20000)
	mk := func(heavyWorkers int) float64 {
		w := New("verify")
		src := w.Source("src", in)
		heavy := NewMap("heavy", cost.Python, in.Schema(), func(r relation.Tuple) ([]relation.Tuple, error) {
			return []relation.Tuple{r}, nil
		})
		heavy.Work = cost.Work{Interp: 10e-3}
		b := w.Op(heavy, WithParallelism(heavyWorkers))
		snk := w.Sink("out")
		w.Connect(src, b, 0, RoundRobin())
		w.Connect(b, snk, 0, RoundRobin())
		res, err := w.Run(context.Background(), Config{})
		if err != nil {
			t.Fatal(err)
		}
		return res.SimSeconds
	}
	base := mk(1)
	// Profile at 1 worker, tune, then actually run at the recommended
	// parallelism.
	w := New("profile")
	src := w.Source("src", in)
	heavy := NewMap("heavy", cost.Python, in.Schema(), func(r relation.Tuple) ([]relation.Tuple, error) {
		return []relation.Tuple{r}, nil
	})
	heavy.Work = cost.Work{Interp: 10e-3}
	b := w.Op(heavy)
	snk := w.Sink("out")
	w.Connect(src, b, 0, RoundRobin())
	w.Connect(b, snk, 0, RoundRobin())
	res, err := w.Run(context.Background(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := AutoTune(res.Trace, cost.Default(), 6)
	if err != nil {
		t.Fatal(err)
	}
	var heavyID NodeID
	for _, n := range res.Trace.Nodes {
		if n.Name == "heavy" {
			heavyID = n.ID
		}
	}
	real := mk(tuned.Workers[heavyID])
	if real >= base {
		t.Fatalf("recommended parallelism (%d) did not beat baseline: %v vs %v", tuned.Workers[heavyID], real, base)
	}
	rel := (real - tuned.Seconds) / real
	if rel > 0.15 || rel < -0.15 {
		t.Fatalf("tuner estimate %v deviates %.0f%% from the real run %v", tuned.Seconds, rel*100, real)
	}
}

func TestAutoTuneErrors(t *testing.T) {
	if _, err := AutoTune(nil, cost.Default(), 4); err == nil {
		t.Fatal("expected error for nil trace")
	}
	tr := tuneTrace(t)
	if _, err := AutoTune(tr, cost.Default(), 0); err == nil {
		t.Fatal("expected error for zero budget")
	}
}

func TestRetunePreservesUntouchedNodes(t *testing.T) {
	tr := tuneTrace(t)
	out := Retune(tr, map[NodeID]int{tr.Nodes[1].ID: 4})
	if out.Nodes[1].Parallelism != 4 {
		t.Fatalf("retuned parallelism = %d", out.Nodes[1].Parallelism)
	}
	if out.Nodes[0].Parallelism != tr.Nodes[0].Parallelism {
		t.Fatal("untouched node changed")
	}
	// The original trace must be unmodified.
	if tr.Nodes[1].Parallelism == 4 && tr.Nodes[1].Parallelism != out.Nodes[1].Parallelism {
		t.Fatal("retune mutated the input")
	}
}
