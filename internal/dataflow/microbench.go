package dataflow

import (
	"context"

	"repro/internal/cost"
	"repro/internal/relation"
)

// Exported micro-benchmark loops over the executor's unexported hot
// paths (the ring-buffer queue and the sharded work accounting), so the
// wall-clock harness in internal/bench can time them from outside the
// package. Each runs the loop body the benchmark in bench_test.go runs;
// the caller supplies iteration counts and does the timing.

// QueuePushPopLoop performs iters bursts of burst pushes followed by
// burst pops on one queue (burst 1 is the ping-pong case).
func QueuePushPopLoop(iters, burst int) {
	q := newQueue()
	rows := make([]relation.Tuple, 16)
	for i := range rows {
		rows[i] = relation.Tuple{int64(i), "payload"}
	}
	m := batchMsg{rows: rows}
	ctx := context.Background()
	for i := 0; i < iters; i++ {
		for j := 0; j < burst; j++ {
			q.push(m)
		}
		for j := 0; j < burst; j++ {
			if _, ok, err := q.pop(ctx); !ok || err != nil {
				panic("dataflow: microbench queue underflow")
			}
		}
	}
}

// AddWorkLoop charges iters work items through a worker's ExecCtx,
// exercising the per-shard accounting path operators hit per batch.
func AddWorkLoop(iters int) {
	rt := &nodeRuntime{n: &node{parallelism: 1}}
	rt.shards = make([]workShard, 1)
	rt.shards[0].byPort = make([]cost.Work, 2)
	ec := &execCtx{rt: rt, shard: &rt.shards[0], phase: 0}
	w := cost.Work{Interp: 1e-6, Mem: 2e-7}
	for i := 0; i < iters; i++ {
		ec.AddWork(w)
	}
}
