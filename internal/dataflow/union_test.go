package dataflow

import (
	"context"
	"testing"

	"repro/internal/cost"
	"repro/internal/relation"
)

func TestUnionMergesStreams(t *testing.T) {
	a := intTable(100)
	b := intTable(50)
	w := New("union")
	sa := w.Source("a", a)
	sb := w.Source("b", b)
	u := w.Op(NewUnion("merge", cost.Python))
	snk := w.Sink("out")
	w.Connect(sa, u, 0, RoundRobin())
	w.Connect(sb, u, 1, RoundRobin())
	w.Connect(u, snk, 0, RoundRobin())

	res, err := w.Run(context.Background(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables["out"].Len() != 150 {
		t.Fatalf("union rows = %d", res.Tables["out"].Len())
	}
	want := a.Clone()
	if err := want.Concat(b); err != nil {
		t.Fatal(err)
	}
	if !res.Tables["out"].EqualUnordered(want) {
		t.Fatal("union output mismatch")
	}
}

func TestUnionSchemaMismatch(t *testing.T) {
	other := relation.NewTable(relation.MustSchema(relation.Field{Name: "z", Type: relation.Float}))
	other.MustAppend(relation.Tuple{1.5})
	w := New("union-bad")
	sa := w.Source("a", intTable(5))
	sb := w.Source("b", other)
	u := w.Op(NewUnion("merge", cost.Python))
	snk := w.Sink("out")
	w.Connect(sa, u, 0, RoundRobin())
	w.Connect(sb, u, 1, RoundRobin())
	w.Connect(u, snk, 0, RoundRobin())
	if err := w.Validate(); err == nil {
		t.Fatal("expected schema mismatch error")
	}
}

func TestUnionParallel(t *testing.T) {
	a := intTable(200)
	b := intTable(200)
	w := New("union-par")
	sa := w.Source("a", a)
	sb := w.Source("b", b)
	u := w.Op(NewUnion("merge", cost.Python), WithParallelism(3))
	snk := w.Sink("out")
	w.Connect(sa, u, 0, RoundRobin())
	w.Connect(sb, u, 1, RoundRobin())
	w.Connect(u, snk, 0, RoundRobin())

	res, err := w.Run(context.Background(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables["out"].Len() != 400 {
		t.Fatalf("parallel union rows = %d", res.Tables["out"].Len())
	}
}
