package dataflow

import (
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/faults"
	"repro/internal/shard"
	"repro/internal/sim"
)

// The dataflow engine recovers the way Texera-style workflow systems
// do: every operator writes its state to replicated checkpoint storage
// at epoch boundaries (every CheckpointEvery batches, aligned with the
// executor's batch-boundary pause gate), and when a worker is killed
// the controller respawns it, restores the last epoch's state, and
// replays the in-flight batch. Recovery therefore costs a continuous
// write tax even on failure-free runs — the opposite trade from the
// script paradigm's lineage replay, which is free until a fault
// strikes. Faults perturb only the simulated schedule; the data path
// has already completed when the schedule is built, so sink tables and
// their digests are bit-identical to the failure-free run.

// DefaultCheckpointEvery is the epoch length in batches when the fault
// plan arms checkpointing without choosing one.
const DefaultCheckpointEvery = 4

// sourceStateBytes approximates a source's checkpointed bookkeeping
// (scan offsets, batch cursors) — sources re-read their table rather
// than checkpointing it.
const sourceStateBytes = 64 << 10

// RecoveryInfo summarises the fault-tolerance work of one execution.
type RecoveryInfo struct {
	// CheckpointEvery is the epoch length in batches actually used.
	CheckpointEvery int
	// Checkpoints counts epoch snapshots across all nodes;
	// CheckpointBytes and CheckpointWriteSeconds total their size and
	// simulated write cost (paid even with zero faults).
	Checkpoints            int
	CheckpointBytes        int64
	CheckpointWriteSeconds float64
	// Kills counts aborted jobs; LostSeconds is discarded partial work,
	// DelaySeconds is worker-respawn wait, RestoreSeconds is checkpoint
	// read-back charged to retried batch jobs.
	Kills          int
	LostSeconds    float64
	DelaySeconds   float64
	RestoreSeconds float64
}

// scheduleWithFaults schedules lowered jobs under the execution's
// fault plan. It mutates jobs in place: each node's checkpoint write
// cost is spread as a tax over its batch jobs, so the same slice feeds
// telemetry with taxed costs. The failure-free (but taxed) schedule
// fixes the fault horizon; killed jobs retry after an OperatorStartup
// respawn delay, batch jobs additionally paying one epoch's restore
// read.
func scheduleWithFaults(jobs []sim.Job, pools []sim.Pool, meta []jobMeta, tr *Trace, m *cost.Model, plan faults.Plan, topo shard.Topology) (*sim.Result, *RecoveryInfo, error) {
	every := plan.CheckpointEvery
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	info := &RecoveryInfo{CheckpointEvery: every}
	topo, err := topo.Normalize()
	if err != nil {
		return nil, nil, err
	}

	// Per-node state size: the bytes that crossed into the node (its
	// accumulated operator state); sources checkpoint bookkeeping only.
	stateBytes := make(map[NodeID]int64, len(tr.Nodes))
	for i := range tr.Nodes {
		stateBytes[tr.Nodes[i].ID] = 0
	}
	for i := range tr.Edges {
		stateBytes[tr.Edges[i].To] += tr.Edges[i].Bytes
	}
	for i := range tr.Nodes {
		n := &tr.Nodes[i]
		if stateBytes[n.ID] == 0 {
			stateBytes[n.ID] = sourceStateBytes
		}
	}

	// Batch jobs per node, in job order.
	batchJobs := make(map[NodeID][]sim.JobID)
	for i := range meta {
		if meta[i].Batch {
			batchJobs[meta[i].Node] = append(batchJobs[meta[i].Node], sim.JobID(i))
		}
	}

	// Tax each node's batch jobs with its checkpoint writes and price
	// its per-retry restore (one epoch's state delta read back).
	restoreSecs := make(map[NodeID]float64, len(batchJobs))
	for i := range tr.Nodes {
		nid := tr.Nodes[i].ID
		ids := batchJobs[nid]
		if len(ids) == 0 {
			continue
		}
		epochs := (len(ids) + every - 1) / every
		bytes := stateBytes[nid]
		writeSecs := m.CheckpointPutSeconds(bytes)
		tax := writeSecs / float64(len(ids))
		for _, id := range ids {
			jobs[int(id)].Cost += tax
		}
		epochBytes := bytes / int64(epochs)
		restoreSecs[nid] = m.CheckpointGetSeconds(epochBytes)
		info.Checkpoints += epochs
		info.CheckpointBytes += bytes
		info.CheckpointWriteSeconds += writeSecs
	}

	// The failure-free schedule (with the checkpoint tax folded in)
	// fixes the fault horizon.
	clean, err := sim.Schedule(jobs, pools)
	if err != nil {
		return nil, nil, err
	}
	evs := plan.Events(clean.Makespan)
	if len(evs) == 0 {
		return clean, info, nil
	}

	simFaults := make([]sim.FaultEvent, len(evs))
	for i, e := range evs {
		// Pool "" lets a fault strike whichever operator's worker is
		// running; node-level faults are recorded but recover the same
		// way (state lives in the checkpoint store, not on the node).
		simFaults[i] = sim.FaultEvent{
			At: e.At, Salt: e.Salt,
			LoseObjects: e.Kind == faults.KillNode,
		}
	}
	retry := sim.RetryPolicy{
		// The controller respawns the worker before the retry runs; the
		// engine does not back off.
		Delay: func(sim.JobID, int) float64 { return m.OperatorStartup },
		ExtraCost: func(id sim.JobID, _ int, objectsLost bool) float64 {
			mt := meta[int(id)]
			if !mt.Batch {
				return 0
			}
			extra := restoreSecs[mt.Node]
			// Whole-node loss on the sharded tier re-shards the dead
			// node's datum range across the survivors: its 1/N share of
			// the operator's state re-crosses the NIC before the replayed
			// batch can run. On the legacy tier the checkpoint store
			// alone recovers it (no placement to rebuild).
			if objectsLost && topo.Sharded() {
				extra += m.ShuffleSeconds(stateBytes[mt.Node] / int64(topo.NumNodes()))
			}
			return extra
		},
	}
	sched, err := sim.ScheduleFaulty(jobs, pools, simFaults, retry)
	if err != nil {
		return nil, nil, err
	}
	info.Kills = sched.Recovery.Kills
	info.LostSeconds = sched.Recovery.LostSeconds
	info.DelaySeconds = sched.Recovery.DelaySeconds
	info.RestoreSeconds = sched.Recovery.ExtraCostSeconds
	return sched, info, nil
}

// Totals folds the recovery report into the framework's comparable
// scalars, mirroring Trace.Totals; a nil receiver (fault-free run)
// folds to zero.
func (ri *RecoveryInfo) Totals() core.RecoveryTotals {
	if ri == nil {
		return core.RecoveryTotals{}
	}
	return core.RecoveryTotals{
		Kills:             ri.Kills,
		Checkpoints:       ri.Checkpoints,
		LostSeconds:       ri.LostSeconds,
		DelaySeconds:      ri.DelaySeconds,
		RestoreSeconds:    ri.RestoreSeconds,
		CheckpointSeconds: ri.CheckpointWriteSeconds,
	}
}

// NodeCheckpoint is one node's share of a Checkpoint.
type NodeCheckpoint struct {
	Name       string
	StateBytes int64
}

// Checkpoint summarises one consistent snapshot of a running
// execution.
type Checkpoint struct {
	Nodes        []NodeCheckpoint
	TotalBytes   int64
	WriteSeconds float64
}

// CheckpointNow takes a consistent snapshot of a running execution at
// the next batch boundary: it pauses the execution through the same
// gate the Pause API uses (workers quiesce between batches, so no
// tuple is in flight), snapshots every node's accumulated state from
// the per-edge byte counters, prices the write, and resumes. An
// execution the caller already paused stays paused.
func (ex *Execution) CheckpointNow() Checkpoint {
	wasPaused := ex.gate.paused()
	if !wasPaused {
		ex.gate.pause()
	}
	inBytes := make([]int64, len(ex.rts))
	for _, rt := range ex.rts {
		for i, e := range rt.n.outEdges {
			inBytes[e.to.id] += rt.edgeStats[i].bytes.Load()
		}
	}
	cp := Checkpoint{Nodes: make([]NodeCheckpoint, 0, len(ex.rts))}
	for _, rt := range ex.rts {
		bytes := inBytes[rt.n.id]
		if len(rt.n.inEdges) == 0 {
			bytes = sourceStateBytes
		}
		cp.Nodes = append(cp.Nodes, NodeCheckpoint{Name: rt.n.name, StateBytes: bytes})
		cp.TotalBytes += bytes
	}
	cp.WriteSeconds = ex.model.CheckpointPutSeconds(cp.TotalBytes)
	if !wasPaused {
		ex.gate.resume()
	}
	return cp
}
