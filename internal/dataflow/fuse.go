package dataflow

import (
	"fmt"

	"repro/internal/relation"
)

// FusedOp runs two operators as one node: A's output batches are piped
// straight into B inside the same worker, eliminating the intermediate
// edge (its queueing, serde and per-batch latency) and B's startup.
// B must be unary; A may have any port shape. The fused node keeps A's
// input ports and blocking profile, and is stateless only when both
// halves are.
//
// Safety: within one worker, B sees exactly the batches A emits, in
// emission order — the same stream the intermediate edge would have
// carried to one of B's workers. When B is stateless its output does
// not depend on how that stream was split across workers, so fusing at
// A's parallelism (the optimizer's policy) preserves the operator's
// output exactly per worker and the workflow's output as a multiset.
type FusedOp struct {
	A, B Operator
}

// NewFused fuses a into b (a's output feeds b). It validates the port
// shapes; semantic eligibility (B stateless, languages, parallelism) is
// the optimizer's policy.
func NewFused(a, b Operator) (*FusedOp, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("dataflow: fuse: nil operator")
	}
	if b.Desc().Ports != 1 {
		return nil, fmt.Errorf("dataflow: fuse: %q has %d input ports; the downstream half must be unary", b.Desc().Name, b.Desc().Ports)
	}
	return &FusedOp{A: a, B: b}, nil
}

// Desc combines the halves: A's shape and language under a joint name.
func (f *FusedOp) Desc() Desc {
	da, db := f.A.Desc(), f.B.Desc()
	return Desc{
		Name:          da.Name + "+" + db.Name,
		Language:      da.Language,
		Ports:         da.Ports,
		BlockingPorts: da.BlockingPorts,
		Stateless:     da.Stateless && db.Stateless,
	}
}

// OutputSchema chains A's schema rule into B's.
func (f *FusedOp) OutputSchema(in []*relation.Schema) (*relation.Schema, error) {
	mid, err := f.A.OutputSchema(in)
	if err != nil {
		return nil, err
	}
	return f.B.OutputSchema([]*relation.Schema{mid})
}

// NewInstance returns a worker running both halves back to back.
func (f *FusedOp) NewInstance() Instance {
	return &fusedInstance{op: f, a: f.A.NewInstance(), b: f.B.NewInstance()}
}

type fusedInstance struct {
	op   *FusedOp
	a, b Instance
}

// bindSchemas binds A with the node's input schemas and B with A's
// output schema, so position-resolving instances (project, join) work
// unchanged inside a fusion.
func (fi *fusedInstance) bindSchemas(in []*relation.Schema) error {
	if sb, ok := fi.a.(schemaBinder); ok {
		if err := sb.bindSchemas(in); err != nil {
			return err
		}
	}
	if sb, ok := fi.b.(schemaBinder); ok {
		mid, err := fi.op.A.OutputSchema(in)
		if err != nil {
			return err
		}
		if err := sb.bindSchemas([]*relation.Schema{mid}); err != nil {
			return err
		}
	}
	return nil
}

func (fi *fusedInstance) Open(ec ExecCtx) error {
	if err := fi.a.Open(ec); err != nil {
		return err
	}
	return fi.b.Open(ec)
}

func (fi *fusedInstance) Process(ec ExecCtx, port int, rows []relation.Tuple) ([]relation.Tuple, error) {
	mid, err := fi.a.Process(ec, port, rows)
	if err != nil || len(mid) == 0 {
		return nil, err
	}
	return fi.b.Process(ec, 0, mid)
}

func (fi *fusedInstance) EndPort(ec ExecCtx, port int) ([]relation.Tuple, error) {
	mid, err := fi.a.EndPort(ec, port)
	if err != nil {
		return nil, err
	}
	var out []relation.Tuple
	if len(mid) > 0 {
		out, err = fi.b.Process(ec, 0, mid)
		if err != nil {
			return nil, err
		}
	}
	// Ports arrive in ascending order, so A is fully drained exactly
	// when its last port ends; only then may B's port end too.
	if port == fi.op.A.Desc().Ports-1 {
		tail, err := fi.b.EndPort(ec, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, tail...)
	}
	return out, nil
}

func (fi *fusedInstance) Close(ec ExecCtx) error {
	if err := fi.a.Close(ec); err != nil {
		return err
	}
	return fi.b.Close(ec)
}

// Fuse folds node b into node a, replacing a's operator with
// FusedOp{a.op, b.op} and re-pointing b's output edges to a. The edge
// a -> b disappears; node IDs are renumbered. Structural requirements:
// a and b are operators, a's only consumer is b (single edge), b is
// unary with a as its only producer.
func (w *Workflow) Fuse(a, b NodeID) error {
	na, nb := w.nodeAt(a), w.nodeAt(b)
	if na == nil || nb == nil || na.kind != kindOperator || nb.kind != kindOperator {
		return fmt.Errorf("dataflow: fuse: #%d and #%d must both be operators", a, b)
	}
	if len(na.outEdges) != 1 || na.outEdges[0].to != nb || len(nb.inEdges) != 1 {
		return fmt.Errorf("dataflow: fuse: %q must feed %q alone", na.name, nb.name)
	}
	fused, err := NewFused(na.op, nb.op)
	if err != nil {
		return err
	}
	na.op = fused
	na.name = fused.Desc().Name
	na.signature = mergeSignatures(na.signature, nb.signature)
	na.outEdges = nb.outEdges
	for _, e := range na.outEdges {
		e.from = na
	}
	nodes := w.nodes[:0]
	for _, n := range w.nodes {
		if n != nb {
			nodes = append(nodes, n)
		}
	}
	w.nodes = nodes
	for i, n := range w.nodes {
		n.id = NodeID(i)
	}
	w.validated = false
	return nil
}
