package dataflow

import (
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/relation"
)

// findDiag returns the first diagnostic with the given rule, or nil.
func findDiag(diags []Diag, rule string) *Diag {
	for i := range diags {
		if diags[i].Rule == rule {
			return &diags[i]
		}
	}
	return nil
}

func TestStaticValidateCleanPlan(t *testing.T) {
	w := New("clean")
	src := w.Source("src", intTable(100))
	f := w.Op(NewFilter("keep-even", cost.Python, func(r relation.Tuple) bool { return r.MustInt(1)%2 == 0 }),
		WithSignature("rev=3"))
	snk := w.Sink("out")
	w.Connect(src, f, 0, RoundRobin())
	w.Connect(f, snk, 0, RoundRobin())
	if diags := Validate(w); len(diags) != 0 {
		t.Fatalf("expected clean plan, got %v", diags)
	}
	if w.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", w.NumEdges())
	}
	// Validate must not have warmed the executor's schema cache.
	if w.validated {
		t.Fatal("static Validate mutated the workflow's validated flag")
	}
}

func TestStaticValidateCycle(t *testing.T) {
	w := New("cyclic")
	src := w.Source("src", intTable(10))
	u := w.Op(NewUnion("merge", cost.Python))
	f := w.Op(NewFilter("f", cost.Python, func(relation.Tuple) bool { return true }))
	snk := w.Sink("out")
	w.Connect(src, u, 0, RoundRobin())
	w.Connect(u, f, 0, RoundRobin())
	w.Connect(f, u, 1, RoundRobin()) // closes the merge <-> f loop
	w.Connect(f, snk, 0, RoundRobin())
	diags := Validate(w)
	d := findDiag(diags, RuleCycle)
	if d == nil {
		t.Fatalf("expected %s, got %v", RuleCycle, diags)
	}
	if !strings.Contains(d.Msg, "cycle") {
		t.Fatalf("cycle diag message = %q", d.Msg)
	}
}

func TestStaticValidateArityMismatch(t *testing.T) {
	w := New("arity")
	src := w.Source("src", intTable(10))
	j := w.Op(NewHashJoin("join", cost.Python, "id", "id", relation.Inner))
	snk := w.Sink("out")
	w.Connect(src, j, 1, RoundRobin()) // probe side only; build port 0 dangling
	w.Connect(j, snk, 0, RoundRobin())
	diags := Validate(w)
	d := findDiag(diags, RuleArity)
	if d == nil {
		t.Fatalf("expected %s, got %v", RuleArity, diags)
	}
	if d.Node != "join" {
		t.Fatalf("arity diag names node %q, want \"join\"", d.Node)
	}
	if !strings.Contains(d.Msg, "1 of 2") {
		t.Fatalf("arity diag message = %q", d.Msg)
	}
}

func TestStaticValidateSchemaClashAcrossJoin(t *testing.T) {
	// Probe key is an int column, build key a string column: schema
	// inference through the join must fail with a type clash.
	strTbl := relation.NewTable(relation.MustSchema(
		relation.Field{Name: "id", Type: relation.String},
		relation.Field{Name: "label", Type: relation.String},
	))
	strTbl.AppendUnchecked(relation.Tuple{"a", "x"})

	w := New("clash")
	probe := w.Source("probe", intTable(10))
	build := w.Source("build", strTbl)
	j := w.Op(NewHashJoin("join", cost.Python, "id", "id", relation.Inner))
	snk := w.Sink("out")
	w.Connect(build, j, 0, Broadcast())
	w.Connect(probe, j, 1, RoundRobin())
	w.Connect(j, snk, 0, RoundRobin())
	diags := Validate(w)
	d := findDiag(diags, RuleSchema)
	if d == nil {
		t.Fatalf("expected %s, got %v", RuleSchema, diags)
	}
	if d.Node != "join" {
		t.Fatalf("schema diag names node %q, want \"join\"", d.Node)
	}
	if !strings.Contains(d.Msg, "type mismatch") {
		t.Fatalf("schema diag message = %q", d.Msg)
	}
}

func TestStaticValidateHashKeyMissing(t *testing.T) {
	w := New("hashkey")
	src := w.Source("src", intTable(10))
	f := w.Op(NewFilter("f", cost.Python, func(relation.Tuple) bool { return true }))
	snk := w.Sink("out")
	w.Connect(src, f, 0, HashPartition("no_such_column"))
	w.Connect(f, snk, 0, RoundRobin())
	diags := Validate(w)
	d := findDiag(diags, RuleHashKey)
	if d == nil {
		t.Fatalf("expected %s, got %v", RuleHashKey, diags)
	}
	if !strings.Contains(d.Msg, "no_such_column") {
		t.Fatalf("hash key diag message = %q", d.Msg)
	}
}

func TestStaticValidateParallelSort(t *testing.T) {
	w := New("parsort")
	src := w.Source("src", intTable(10))
	s := w.Op(NewSort("sort", cost.Python, "v"), WithParallelism(4))
	snk := w.Sink("out")
	w.Connect(src, s, 0, RoundRobin())
	w.Connect(s, snk, 0, RoundRobin())
	diags := Validate(w)
	d := findDiag(diags, RuleParallel)
	if d == nil {
		t.Fatalf("expected %s, got %v", RuleParallel, diags)
	}
	if d.Node != "sort" {
		t.Fatalf("parallel diag names node %q, want \"sort\"", d.Node)
	}
}

func TestStaticValidateSignatureFormat(t *testing.T) {
	w := New("sig")
	src := w.Source("src", intTable(10))
	f := w.Op(NewFilter("f", cost.Python, func(relation.Tuple) bool { return true }),
		WithSignature("v1.2.3-beta"))
	snk := w.Sink("out")
	w.Connect(src, f, 0, RoundRobin())
	w.Connect(f, snk, 0, RoundRobin())
	diags := Validate(w)
	d := findDiag(diags, RuleSignature)
	if d == nil {
		t.Fatalf("expected %s, got %v", RuleSignature, diags)
	}
	if d.Node != "f" || !strings.Contains(d.Msg, "v1.2.3-beta") {
		t.Fatalf("signature diag = %+v", d)
	}
}

// blockingOp is a custom fully-blocking single-port operator used to
// exercise the checkpoint-compatibility rule; it never executes.
type blockingOp struct{}

func (blockingOp) Desc() Desc {
	return Desc{Name: "train", Language: cost.Python, Ports: 1, BlockingPorts: []bool{true}}
}
func (blockingOp) OutputSchema(in []*relation.Schema) (*relation.Schema, error) {
	return in[0], nil
}
func (blockingOp) NewInstance() Instance { return nil }

func TestStaticValidateCheckpointIncompatibility(t *testing.T) {
	w := New("ckpt")
	src := w.Source("src", intTable(10))
	b := w.Op(blockingOp{}, WithParallelism(2))
	snk := w.Sink("out")
	w.Connect(src, b, 0, RoundRobin())
	w.Connect(b, snk, 0, RoundRobin())
	diags := Validate(w)
	d := findDiag(diags, RuleCheckpoint)
	if d == nil {
		t.Fatalf("expected %s, got %v", RuleCheckpoint, diags)
	}
	if d.Node != "train" || !strings.Contains(d.Msg, "round-robin") {
		t.Fatalf("checkpoint diag = %+v", d)
	}

	// The same plan with a hash-partitioned feed is checkpoint-safe.
	w2 := New("ckpt-ok")
	src2 := w2.Source("src", intTable(10))
	b2 := w2.Op(blockingOp{}, WithParallelism(2))
	snk2 := w2.Sink("out")
	w2.Connect(src2, b2, 0, HashPartition("id"))
	w2.Connect(b2, snk2, 0, RoundRobin())
	if diags := Validate(w2); len(diags) != 0 {
		t.Fatalf("hash-partitioned blocking plan should be clean, got %v", diags)
	}
}

func TestStaticValidateBuilderError(t *testing.T) {
	w := New("builder")
	w.Op(nil) // nil operator records a builder error
	diags := Validate(w)
	if len(diags) != 1 || diags[0].Rule != RuleBuilder {
		t.Fatalf("expected a single %s, got %v", RuleBuilder, diags)
	}
}

func TestStaticValidateMultipleDiags(t *testing.T) {
	// One plan, two independent problems: a bad signature and a
	// dangling join port. The static checker reports both where the
	// executor's Validate would stop at the first.
	w := New("multi")
	src := w.Source("src", intTable(10))
	j := w.Op(NewHashJoin("join", cost.Python, "id", "id", relation.Inner),
		WithSignature("oops"))
	snk := w.Sink("out")
	w.Connect(src, j, 1, RoundRobin())
	w.Connect(j, snk, 0, RoundRobin())
	diags := Validate(w)
	if findDiag(diags, RuleArity) == nil || findDiag(diags, RuleSignature) == nil {
		t.Fatalf("expected both %s and %s, got %v", RuleArity, RuleSignature, diags)
	}
}
