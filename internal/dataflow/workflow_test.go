package dataflow

import (
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/relation"
)

func intTable(n int) *relation.Table {
	s := relation.MustSchema(relation.Field{Name: "id", Type: relation.Int}, relation.Field{Name: "v", Type: relation.Int})
	t := relation.NewTable(s)
	for i := 0; i < n; i++ {
		t.AppendUnchecked(relation.Tuple{int64(i), int64(i % 10)})
	}
	return t
}

func TestValidateEmptyWorkflow(t *testing.T) {
	if err := New("empty").Validate(); err == nil {
		t.Fatal("expected error for empty workflow")
	}
}

func TestValidateSimplePipeline(t *testing.T) {
	w := New("simple")
	src := w.Source("src", intTable(100))
	f := w.Op(NewFilter("keep-even", cost.Python, func(r relation.Tuple) bool { return r.MustInt(1)%2 == 0 }))
	snk := w.Sink("out")
	w.Connect(src, f, 0, RoundRobin())
	w.Connect(f, snk, 0, RoundRobin())
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.NumOperators() != 2 { // filter + sink
		t.Fatalf("NumOperators = %d", w.NumOperators())
	}
	if got := w.OutputSchemaOf(f); got == nil || got.IndexOf("id") != 0 {
		t.Fatalf("filter schema = %v", got)
	}
}

func TestValidateDanglingPort(t *testing.T) {
	w := New("dangling")
	w.Source("src", intTable(10))
	f := w.Op(NewFilter("f", cost.Python, func(relation.Tuple) bool { return true }))
	snk := w.Sink("out")
	w.Connect(f, snk, 0, RoundRobin())
	// Source never connected to filter; filter port 0 dangling... and
	// source has no consumers.
	if err := w.Validate(); err == nil {
		t.Fatal("expected error for dangling port")
	}
}

func TestValidateDuplicatePortConnection(t *testing.T) {
	w := New("dup")
	a := w.Source("a", intTable(10))
	b := w.Source("b", intTable(10))
	f := w.Op(NewFilter("f", cost.Python, func(relation.Tuple) bool { return true }))
	w.Connect(a, f, 0, RoundRobin())
	w.Connect(b, f, 0, RoundRobin())
	if err := w.Validate(); err == nil || !strings.Contains(err.Error(), "already connected") {
		t.Fatalf("expected duplicate-port error, got %v", err)
	}
}

func TestValidateBadConnections(t *testing.T) {
	w := New("bad")
	src := w.Source("src", intTable(10))
	snk := w.Sink("out")
	w.Connect(snk, src, 0, RoundRobin())
	if err := w.Validate(); err == nil {
		t.Fatal("expected error connecting sink -> source")
	}
	w2 := New("badport")
	s2 := w2.Source("src", intTable(10))
	f2 := w2.Op(NewFilter("f", cost.Python, func(relation.Tuple) bool { return true }))
	w2.Connect(s2, f2, 5, RoundRobin())
	if err := w2.Validate(); err == nil {
		t.Fatal("expected error for bad port index")
	}
	w3 := New("badid")
	s3 := w3.Source("src", intTable(10))
	w3.Connect(s3, NodeID(99), 0, RoundRobin())
	if err := w3.Validate(); err == nil {
		t.Fatal("expected error for out-of-range node id")
	}
}

func TestValidateUnknownHashKey(t *testing.T) {
	w := New("hashkey")
	src := w.Source("src", intTable(10))
	f := w.Op(NewFilter("f", cost.Python, func(relation.Tuple) bool { return true }), WithParallelism(2))
	snk := w.Sink("out")
	w.Connect(src, f, 0, HashPartition("missing"))
	w.Connect(f, snk, 0, RoundRobin())
	if err := w.Validate(); err == nil || !strings.Contains(err.Error(), "hash key") {
		t.Fatalf("expected hash key error, got %v", err)
	}
}

func TestValidateParallelSortRejected(t *testing.T) {
	w := New("psort")
	src := w.Source("src", intTable(10))
	s := w.Op(NewSort("sort", cost.Python, "id"), WithParallelism(2))
	snk := w.Sink("out")
	w.Connect(src, s, 0, RoundRobin())
	w.Connect(s, snk, 0, RoundRobin())
	if err := w.Validate(); err == nil {
		t.Fatal("expected error for parallel sort")
	}
}

func TestValidateParallelJoinNeedsHash(t *testing.T) {
	w := New("pjoin")
	a := w.Source("a", intTable(10))
	b := w.Source("b", intTable(10))
	j := w.Op(NewHashJoin("join", cost.Python, "id", "id", relation.Inner), WithParallelism(2))
	snk := w.Sink("out")
	w.Connect(a, j, 0, RoundRobin())
	w.Connect(b, j, 1, RoundRobin())
	w.Connect(j, snk, 0, RoundRobin())
	if err := w.Validate(); err == nil || !strings.Contains(err.Error(), "hash-partitioned") {
		t.Fatalf("expected hash partition requirement, got %v", err)
	}
}

func TestValidateParallelGroupByNeedsHash(t *testing.T) {
	w := New("pgroup")
	src := w.Source("src", intTable(10))
	g := w.Op(NewGroupBy("g", cost.Python, []string{"v"}, []relation.Aggregate{{Func: relation.Count, As: "n"}}), WithParallelism(2))
	snk := w.Sink("out")
	w.Connect(src, g, 0, RoundRobin())
	w.Connect(g, snk, 0, RoundRobin())
	if err := w.Validate(); err == nil {
		t.Fatal("expected error for round-robin parallel group-by")
	}
}

func TestValidateCycle(t *testing.T) {
	w := New("cycle")
	a := w.Op(NewFilter("a", cost.Python, func(relation.Tuple) bool { return true }))
	b := w.Op(NewFilter("b", cost.Python, func(relation.Tuple) bool { return true }))
	w.Connect(a, b, 0, RoundRobin())
	w.Connect(b, a, 0, RoundRobin())
	if err := w.Validate(); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestBuilderErrorsSticky(t *testing.T) {
	w := New("sticky")
	w.Source("nil-table", nil)
	w.Sink("out")
	if err := w.Validate(); err == nil || !strings.Contains(err.Error(), "nil table") {
		t.Fatalf("expected sticky builder error, got %v", err)
	}
}

func TestDescValidate(t *testing.T) {
	bad := []Desc{
		{Name: "", Ports: 1, BlockingPorts: []bool{false}},
		{Name: "x", Ports: 0, BlockingPorts: nil},
		{Name: "x", Ports: 2, BlockingPorts: []bool{false}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	good := Desc{Name: "x", Ports: 2, BlockingPorts: []bool{true, false}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.FullyBlocking() {
		t.Fatal("mixed ports are not fully blocking")
	}
	full := Desc{Name: "x", Ports: 1, BlockingPorts: []bool{true}}
	if !full.FullyBlocking() {
		t.Fatal("single blocking port should be fully blocking")
	}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		Uninitialized: "uninitialized", Initializing: "initializing",
		Running: "running", Paused: "paused", Completed: "completed", Failed: "failed",
	}
	for s, n := range want {
		if s.String() != n {
			t.Fatalf("State(%d).String() = %q", s, s.String())
		}
	}
	if State(99).String() != "State(99)" {
		t.Fatal("unknown state string wrong")
	}
}

func TestPartitioningStrings(t *testing.T) {
	if RoundRobin().String() != "round-robin" {
		t.Fatal("round robin string")
	}
	if HashPartition("k").String() != "hash(k)" {
		t.Fatal("hash string")
	}
	if Broadcast().String() != "broadcast" {
		t.Fatal("broadcast string")
	}
}

func TestOpError(t *testing.T) {
	inner := &OpError{Op: "f", Worker: 2, Port: 1, Err: errTest}
	if !strings.Contains(inner.Error(), "worker 2") || !strings.Contains(inner.Error(), `"f"`) {
		t.Fatalf("error = %q", inner.Error())
	}
	noWorker := &OpError{Op: "f", Worker: -1, Port: -1, Err: errTest}
	if strings.Contains(noWorker.Error(), "worker") {
		t.Fatalf("error = %q", noWorker.Error())
	}
	if inner.Unwrap() != errTest {
		t.Fatal("unwrap wrong")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "boom" }
