package dataflow

import (
	"context"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/relation"
	"repro/internal/xrand"
)

// The property: any randomly composed chain of builtin operators,
// executed by the pipelined parallel engine, produces exactly the rows
// of the same chain applied directly with the relation package.

type chainStep struct {
	name  string
	apply func(*relation.Table) (*relation.Table, error)
	op    func(r *xrand.Rand) Operator
	// parallelizable marks ops that may run with >1 worker.
	parallelizable bool
}

// randomChain builds a random but always-valid operator chain over the
// intTable schema {id:int, v:int}.
func randomChain(r *xrand.Rand) []chainStep {
	var steps []chainStep
	n := 1 + r.Intn(4)
	for i := 0; i < n; i++ {
		switch r.Intn(4) {
		case 0:
			k := int64(r.Intn(10))
			steps = append(steps, chainStep{
				name: fmt.Sprintf("filter-v<%d", k),
				apply: func(t *relation.Table) (*relation.Table, error) {
					return relation.Filter(t, func(row relation.Tuple) bool { return row.MustInt(1) < k }), nil
				},
				op: func(*xrand.Rand) Operator {
					return NewFilter(fmt.Sprintf("filter%d", i), cost.Python, func(row relation.Tuple) bool {
						return row.MustInt(1) < k
					})
				},
				parallelizable: true,
			})
		case 1:
			steps = append(steps, chainStep{
				name: "project",
				apply: func(t *relation.Table) (*relation.Table, error) {
					return relation.Project(t, "id", "v")
				},
				op: func(*xrand.Rand) Operator {
					return NewProject(fmt.Sprintf("project%d", i), cost.Python, "id", "v")
				},
				parallelizable: true,
			})
		case 2:
			add := int64(1 + r.Intn(5))
			steps = append(steps, chainStep{
				name: fmt.Sprintf("map+%d", add),
				apply: func(t *relation.Table) (*relation.Table, error) {
					return relation.Map(t, t.Schema(), func(row relation.Tuple) (relation.Tuple, error) {
						return relation.Tuple{row.MustInt(0), row.MustInt(1) + add}, nil
					})
				},
				op: func(*xrand.Rand) Operator {
					s := relation.MustSchema(
						relation.Field{Name: "id", Type: relation.Int},
						relation.Field{Name: "v", Type: relation.Int},
					)
					return NewMap(fmt.Sprintf("map%d", i), cost.Python, s, func(row relation.Tuple) ([]relation.Tuple, error) {
						return []relation.Tuple{{row.MustInt(0), row.MustInt(1) + add}}, nil
					})
				},
				parallelizable: true,
			})
		default:
			steps = append(steps, chainStep{
				name: "sort",
				apply: func(t *relation.Table) (*relation.Table, error) {
					c := t.Clone()
					if err := c.SortBy("v", "id"); err != nil {
						return nil, err
					}
					return c, nil
				},
				op: func(*xrand.Rand) Operator {
					return NewSort(fmt.Sprintf("sort%d", i), cost.Python, "v", "id")
				},
				parallelizable: false,
			})
		}
	}
	return steps
}

func TestPropertyRandomChainsMatchDirectEvaluation(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		rows := 1 + r.Intn(400)
		in := intTable(rows)
		steps := randomChain(r)

		// Direct evaluation.
		want := in
		for _, s := range steps {
			var err error
			want, err = s.apply(want)
			if err != nil {
				t.Logf("seed %d: direct eval failed at %s: %v", seed, s.name, err)
				return false
			}
		}

		// Engine evaluation, with random parallelism where legal.
		w := New("property")
		prev := w.Source("src", in)
		for _, s := range steps {
			par := 1
			if s.parallelizable && r.Bool(0.5) {
				par = 1 + r.Intn(4)
			}
			id := w.Op(s.op(r), WithParallelism(par))
			w.Connect(prev, id, 0, RoundRobin())
			prev = id
		}
		snk := w.Sink("out")
		w.Connect(prev, snk, 0, RoundRobin())

		res, err := w.Run(context.Background(), Config{})
		if err != nil {
			t.Logf("seed %d: engine failed: %v", seed, err)
			return false
		}
		if !res.Tables["out"].EqualUnordered(want) {
			t.Logf("seed %d: mismatch (%d engine rows, %d direct rows)", seed, res.Tables["out"].Len(), want.Len())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySimTimePositiveAndDeterministic(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		in := intTable(1 + r.Intn(200))
		steps := randomChain(r)
		build := func() *Workflow {
			w := New("det")
			prev := w.Source("src", in)
			for _, s := range steps {
				id := w.Op(s.op(r))
				w.Connect(prev, id, 0, RoundRobin())
				prev = id
			}
			w.Connect(prev, w.Sink("out"), 0, RoundRobin())
			return w
		}
		r1, err := build().Run(context.Background(), Config{})
		if err != nil {
			return false
		}
		r2, err := build().Run(context.Background(), Config{})
		if err != nil {
			return false
		}
		return r1.SimSeconds > 0 && r1.SimSeconds == r2.SimSeconds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
