package dataflow

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/faults"
	"repro/internal/lineage"
	"repro/internal/relation"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config controls one workflow execution.
type Config struct {
	// Model supplies the cost constants; nil uses cost.Default().
	Model *cost.Model
	// BatchSize overrides the batch size of every source; 0 lets each
	// source auto-tune (the engine-managed batching the paper credits
	// Texera with).
	BatchSize int
	// Cluster, when set, bounds operator parallelism: no single
	// operator may request more workers than the cluster's worker
	// vCPUs (operators multiplex cores between themselves, as Texera's
	// workers do, so the sum is not bounded).
	Cluster *cluster.Cluster
	// Shard selects the cluster tier. The zero topology (or Nodes <= 1)
	// is the legacy single-cluster path; Nodes > 1 datum-shards the run
	// across that many nodes, pricing cross-node exchanges at the NIC
	// rate and larger-than-memory blocking operators through the grace
	// spill path. Only the schedule/cost plane is affected — sink
	// tables stay bit-identical across topologies.
	Shard shard.Topology
	// Telemetry, when set, receives per-operator spans, hot-path
	// metrics and the critical-path breakdown of the execution. Nil
	// (the default) keeps the executor on its uninstrumented fast path.
	Telemetry *telemetry.Recorder
	// Faults, when enabled, arms epoch checkpointing and deterministic
	// fault injection on the simulated schedule. The data path is
	// unaffected: sink tables are bit-identical to a failure-free run,
	// only SimSeconds and the Recovery accounting change.
	Faults faults.Plan
	// Lineage, when set, arms operator-granularity result caching: node
	// outputs are committed to the versioned artifact store and cache
	// hits replay stored tables instead of executing (see lineage.go).
	Lineage *lineage.Store
	// LineageScope names this workflow build in the store; empty uses
	// "workflow:<name>". Runs that share a scope share warm-start
	// accounting; fingerprints alone keep their artifacts apart.
	LineageScope string
	// Progress, when set, receives live per-operator progress events:
	// state transitions as nodes open, run and complete, and cumulative
	// tuple counters per emitted batch. Nil (the default) costs one
	// pointer check per transition and per batch.
	Progress core.ProgressSink
}

// Result is the outcome of a completed workflow execution.
type Result struct {
	// Tables holds each sink's collected output, keyed by sink name.
	Tables map[string]*relation.Table
	// Trace is the cost record of the execution.
	Trace *Trace
	// SimSeconds is the simulated cluster execution time.
	SimSeconds float64
	// Schedule is the full simulator timeline behind SimSeconds.
	Schedule *sim.Result
	// Recovery describes checkpoint and fault-recovery work; nil when
	// the execution ran without a fault plan.
	Recovery *RecoveryInfo
	// Lineage summarizes artifact-store reuse; nil when the execution
	// ran without a lineage store.
	Lineage *lineage.RunReport
}

// AutoBatchSize picks the batch size a source uses when none is
// configured: large enough to amortize per-batch overhead on big
// inputs, small enough to produce many batches for pipelining and
// worker load balancing — tiny inputs stream row by row.
func AutoBatchSize(rows int) int {
	b := rows / 96
	if b < 1 {
		b = 1
	}
	if b > 2048 {
		b = 2048
	}
	return b
}

// edgeStat counts an edge's traffic with atomics: emit is called by
// every producer worker concurrently, and a shared mutex here was one
// of the executor's hottest serialization points.
type edgeStat struct {
	batches atomic.Int64
	tuples  atomic.Int64
	bytes   atomic.Int64
}

// workShard is one worker's private work accumulators. Each worker
// writes only its own shard with plain stores (no locks, no atomics);
// shards are merged once after all workers have stopped, with the
// WaitGroup providing the happens-before edge. The trailing pad keeps
// neighbouring shards off one cache line.
type workShard struct {
	byPort []cost.Work
	end    cost.Work
	open   cost.Work
	_      [48]byte // false-sharing pad
}

type nodeRuntime struct {
	n            *node
	state        atomic.Int32
	inTuples     atomic.Int64
	outTuples    atomic.Int64
	batches      atomic.Int64
	inQ          [][]*queue // [port][worker]
	edgeQ        []*queue   // per outEdge, feeding that edge's router
	edgeStats    []*edgeStat
	inputSchemas []*relation.Schema
	sinkTable    *relation.Table
	sinkMu       sync.Mutex

	shards []workShard // one per worker (sources and sinks use shard 0)
	wall   []wallShard // like shards; allocated only when telemetry is on

	// capture collects each worker's emitted rows for the lineage
	// commit; allocated only for dirty operators under a lineage store.
	capture [][]relation.Tuple

	wg sync.WaitGroup
}

// Phase sentinels for work attribution outside port processing.
const (
	phaseEnd  = -1 // EndPort / Close
	phaseOpen = -2 // Open (per-worker initialization)
)

func (rt *nodeRuntime) setState(s State) { rt.state.Store(int32(s)) }

// setState transitions a node's state and, when a progress sink is
// attached and the state actually changed, publishes the transition.
// Swap makes the publish exactly-once even when several workers race
// into Running.
func (ex *Execution) setState(rt *nodeRuntime, s State) {
	old := rt.state.Swap(int32(s))
	if ex.cfg.Progress != nil && old != int32(s) {
		ex.publishProgress(rt, s.String())
	}
}

// publishProgress sends one progress event for a node. Callers check
// ex.cfg.Progress != nil first; the engine's unobserved fast path pays
// only that nil check.
func (ex *Execution) publishProgress(rt *nodeRuntime, state string) {
	ex.cfg.Progress.Publish(core.ProgressEvent{
		Task:      ex.wf.name,
		Paradigm:  "workflow",
		Op:        rt.n.name,
		Kind:      rt.n.kind.String(),
		State:     state,
		InTuples:  rt.inTuples.Load(),
		OutTuples: rt.outTuples.Load(),
		Workers:   rt.n.parallelism,
	})
}

// addWork charges work on shard 0 to a port bucket, the end bucket
// (phaseEnd) or the open bucket (phaseOpen); single-goroutine node
// kinds (sources) use it directly.
func (rt *nodeRuntime) addWork(port int, w cost.Work) {
	addShardWork(&rt.shards[0], port, w)
}

func addShardWork(sh *workShard, port int, w cost.Work) {
	switch {
	case port == phaseOpen:
		sh.open = sh.open.Add(w)
	case port < 0:
		sh.end = sh.end.Add(w)
	default:
		sh.byPort[port] = sh.byPort[port].Add(w)
	}
}

// mergedWork folds the per-worker shards into port/end/open totals in
// shard order, so the reduction is deterministic. Call only after the
// node's workers have finished.
func (rt *nodeRuntime) mergedWork() (byPort []cost.Work, end, open cost.Work) {
	byPort = make([]cost.Work, len(rt.shards[0].byPort))
	for s := range rt.shards {
		sh := &rt.shards[s]
		for p := range sh.byPort {
			byPort[p] = byPort[p].Add(sh.byPort[p])
		}
		end = end.Add(sh.end)
		open = open.Add(sh.open)
	}
	return byPort, end, open
}

// execCtx is the per-worker ExecCtx implementation.
type execCtx struct {
	rt     *nodeRuntime
	shard  *workShard
	worker int
	phase  int // current port, or -1 during EndPort/Close
}

func (ec *execCtx) AddWork(w cost.Work) { addShardWork(ec.shard, ec.phase, w) }
func (ec *execCtx) Worker() int         { return ec.worker }
func (ec *execCtx) Workers() int        { return ec.rt.n.parallelism }

// Execution is a running (or finished) workflow.
type Execution struct {
	wf     *Workflow
	cfg    Config
	model  *cost.Model
	ctx    context.Context
	cancel context.CancelFunc
	gate   *gate
	rts    []*nodeRuntime
	tel    *execTelemetry // nil = telemetry off
	lin    *lineagePlan   // nil = lineage off
	done   chan struct{}

	errOnce sync.Once
	err     error

	result *Result
}

// Start validates the workflow and launches its execution
// asynchronously. Use Wait for completion, Pause/Resume for control,
// and Progress for live operator states.
func (w *Workflow) Start(ctx context.Context, cfg Config) (*Execution, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	model := cfg.Model
	if model == nil {
		model = cost.Default()
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cluster != nil {
		if err := cfg.Cluster.Validate(); err != nil {
			return nil, err
		}
		limit := cfg.Cluster.TotalWorkerCPUs()
		for _, n := range w.nodes {
			if n.parallelism > limit {
				return nil, fmt.Errorf("dataflow: operator %q requests %d workers, cluster has %d worker vCPUs", n.name, n.parallelism, limit)
			}
		}
	}
	runCtx, cancel := context.WithCancel(ctx)
	ex := &Execution{
		wf:     w,
		cfg:    cfg,
		model:  model,
		ctx:    runCtx,
		cancel: cancel,
		gate:   newGate(),
		tel:    newExecTelemetry(cfg.Telemetry, w.name),
		done:   make(chan struct{}),
	}

	// Build runtimes.
	ex.rts = make([]*nodeRuntime, len(w.nodes))
	for _, n := range w.nodes {
		rt := &nodeRuntime{n: n}
		ports := 0
		switch n.kind {
		case kindOperator:
			ports = n.op.Desc().Ports
		case kindSink:
			ports = 1
		}
		rt.inQ = make([][]*queue, ports)
		for p := range rt.inQ {
			rt.inQ[p] = make([]*queue, n.parallelism)
			for wk := range rt.inQ[p] {
				rt.inQ[p][wk] = newQueue()
			}
		}
		rt.edgeQ = make([]*queue, len(n.outEdges))
		rt.edgeStats = make([]*edgeStat, len(n.outEdges))
		for i := range n.outEdges {
			rt.edgeQ[i] = newQueue()
			rt.edgeStats[i] = &edgeStat{}
		}
		workPorts := ports
		if workPorts == 0 {
			workPorts = 1 // source generation work
		}
		nshards := 1
		if n.kind == kindOperator {
			nshards = n.parallelism
		}
		rt.shards = make([]workShard, nshards)
		for s := range rt.shards {
			rt.shards[s].byPort = make([]cost.Work, workPorts)
		}
		if ex.tel != nil {
			rt.wall = make([]wallShard, nshards)
		}
		rt.inputSchemas = make([]*relation.Schema, ports)
		for _, e := range n.inEdges {
			rt.inputSchemas[e.port] = e.from.schema
		}
		if n.kind == kindSink {
			rt.sinkTable = relation.NewTable(n.schema)
		}
		ex.setState(rt, Initializing)
		ex.rts[n.id] = rt
	}

	// Plan lineage modes (fingerprints, store lookups, replay/skip
	// assignment) before any goroutine starts, then allocate output
	// capture for the nodes whose results will be committed.
	if err := ex.planLineage(); err != nil {
		cancel()
		return nil, err
	}
	if ex.lin != nil {
		for _, n := range w.nodes {
			if ex.lin.mode[n.id] == lmDirty && n.kind == kindOperator {
				ex.rts[n.id].capture = make([][]relation.Tuple, n.parallelism)
			}
		}
	}

	// Launch edge routers.
	var routerWG sync.WaitGroup
	for _, n := range w.nodes {
		rt := ex.rts[n.id]
		for i, e := range n.outEdges {
			routerWG.Add(1)
			go ex.runRouter(&routerWG, e, rt.edgeQ[i])
		}
	}

	// Launch node workers.
	var nodeWG sync.WaitGroup
	for _, n := range w.nodes {
		rt := ex.rts[n.id]
		nodeWG.Add(1)
		go ex.runNode(&nodeWG, rt)
	}

	go func() {
		nodeWG.Wait()
		routerWG.Wait()
		ex.finish()
		close(ex.done)
	}()
	return ex, nil
}

// Run executes the workflow synchronously and returns its result.
func (w *Workflow) Run(ctx context.Context, cfg Config) (*Result, error) {
	ex, err := w.Start(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return ex.Wait()
}

// fail records the first error and cancels the execution.
func (ex *Execution) fail(err error) {
	ex.errOnce.Do(func() {
		ex.err = err
		ex.cancel()
	})
}

// Wait blocks until the execution completes and returns its result or
// the first operator error.
func (ex *Execution) Wait() (*Result, error) {
	<-ex.done
	if ex.err != nil {
		return nil, ex.err
	}
	return ex.result, nil
}

// Pause suspends all workers at the next batch boundary.
func (ex *Execution) Pause() { ex.gate.pause() }

// Resume releases a paused execution.
func (ex *Execution) Resume() { ex.gate.resume() }

// Paused reports whether the execution is paused.
func (ex *Execution) Paused() bool { return ex.gate.paused() }

// Progress returns a snapshot of every node's state and tuple
// counters, in node order.
func (ex *Execution) Progress() []OpProgress {
	paused := ex.gate.paused()
	out := make([]OpProgress, len(ex.rts))
	for i, rt := range ex.rts {
		s := State(rt.state.Load())
		if paused && s == Running {
			s = Paused
		}
		out[i] = OpProgress{
			Name:      rt.n.name,
			Kind:      rt.n.kind.String(),
			State:     s,
			InTuples:  rt.inTuples.Load(),
			OutTuples: rt.outTuples.Load(),
			Workers:   rt.n.parallelism,
		}
	}
	return out
}

// emit forwards rows produced by a node to all its out edges and
// updates trace counters. worker indexes the producing worker's
// lineage-capture shard.
func (ex *Execution) emit(rt *nodeRuntime, worker int, rows []relation.Tuple) {
	if len(rows) == 0 {
		return
	}
	if rt.capture != nil {
		rt.capture[worker] = append(rt.capture[worker], rows...)
	}
	rt.outTuples.Add(int64(len(rows)))
	rt.batches.Add(1)
	var bytes int64
	for _, r := range rows {
		bytes += relation.EncodedSize(r)
	}
	for i := range rt.n.outEdges {
		st := rt.edgeStats[i]
		st.batches.Add(1)
		st.tuples.Add(int64(len(rows)))
		st.bytes.Add(bytes)
		rt.edgeQ[i].push(batchMsg{rows: rows})
	}
	if ex.cfg.Progress != nil {
		ex.publishProgress(rt, "progress")
	}
}

// runRouter moves batches from a producer's edge queue into the
// consumer's per-worker port queues according to the edge's
// partitioning.
func (ex *Execution) runRouter(wg *sync.WaitGroup, e *edge, in *queue) {
	defer wg.Done()
	toRT := ex.rts[e.to.id]
	outs := toRT.inQ[e.port]
	defer func() {
		for _, q := range outs {
			q.close()
		}
	}()
	rr := 0
	for {
		msg, ok, err := in.pop(ex.ctx)
		if err != nil || !ok {
			return
		}
		switch e.part.kind {
		case partBroadcast:
			for _, q := range outs {
				q.push(msg)
			}
		case partHash:
			if len(outs) == 1 {
				outs[0].push(msg)
				break
			}
			buckets := make([][]relation.Tuple, len(outs))
			for _, r := range msg.rows {
				h := fnv32(r.Key(e.keyPos))
				buckets[int(h)%len(outs)] = append(buckets[int(h)%len(outs)], r)
			}
			for wk, b := range buckets {
				if len(b) > 0 {
					outs[wk].push(batchMsg{rows: b})
				}
			}
		default: // round robin
			outs[rr%len(outs)].push(msg)
			rr++
		}
	}
}

// fnv32 hashes a string with FNV-1a.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// runNode executes one node: a generator for sources, a collector for
// sinks, or parallelism workers for operators.
func (ex *Execution) runNode(wg *sync.WaitGroup, rt *nodeRuntime) {
	defer wg.Done()
	defer func() {
		// Whatever happened, close out-edge queues so downstream sees
		// EOF.
		for _, q := range rt.edgeQ {
			q.close()
		}
	}()
	switch ex.lineageMode(rt.n.id) {
	case lmSkip:
		// Elided entirely: the cached artifact stands in for the node.
		ex.setState(rt, Completed)
		return
	case lmReplay:
		ex.runReplay(rt)
		return
	}
	switch rt.n.kind {
	case kindSource:
		ex.runSource(rt)
	case kindSink:
		ex.runSink(rt)
	default:
		rt.wg.Add(rt.n.parallelism)
		for wk := 0; wk < rt.n.parallelism; wk++ {
			go ex.runWorker(rt, wk)
		}
		rt.wg.Wait()
		if State(rt.state.Load()) != Failed {
			ex.setState(rt, Completed)
		}
	}
}

// runSource streams the source table downstream in batches.
func (ex *Execution) runSource(rt *nodeRuntime) {
	ex.setState(rt, Running)
	size := rt.n.batchSize
	if size == 0 {
		size = ex.cfg.BatchSize
	}
	if size == 0 {
		size = AutoBatchSize(rt.n.table.Len())
	}
	tel := ex.tel
	shard := shardIndex(rt.n.id, 0)
	for _, b := range rt.n.table.Batches(size) {
		if err := ex.gate.wait(ex.ctx); err != nil {
			return
		}
		var t0 int64
		if tel != nil {
			t0 = tel.rec.NowNS()
		}
		rt.addWork(0, rt.n.scanWork.Scale(float64(len(b.Rows))))
		ex.emit(rt, 0, b.Rows)
		if tel != nil {
			t1 := tel.rec.NowNS()
			rt.wall[0].note(t0, t1)
			tel.batches.Add(shard, 1)
			tel.tuples.Add(shard, int64(len(b.Rows)))
			tel.batchNS.Observe(shard, t1-t0)
		}
	}
	ex.setState(rt, Completed)
}

// runSink collects rows into the sink table.
func (ex *Execution) runSink(rt *nodeRuntime) {
	ex.setState(rt, Running)
	q := rt.inQ[0][0]
	tel := ex.tel
	shard := shardIndex(rt.n.id, 0)
	for {
		msg, ok, err := q.pop(ex.ctx)
		if err != nil {
			return
		}
		if !ok {
			ex.setState(rt, Completed)
			return
		}
		if err := ex.gate.wait(ex.ctx); err != nil {
			return
		}
		var t0 int64
		if tel != nil {
			t0 = tel.rec.NowNS()
			depth := int64(q.Depth())
			tel.qDepth.Set(shard, depth)
			tel.qHist.Observe(shard, depth)
		}
		rt.inTuples.Add(int64(len(msg.rows)))
		rt.sinkMu.Lock()
		for _, r := range msg.rows {
			rt.sinkTable.AppendUnchecked(r)
		}
		rt.sinkMu.Unlock()
		if tel != nil {
			t1 := tel.rec.NowNS()
			rt.wall[0].note(t0, t1)
			tel.batches.Add(shard, 1)
			tel.tuples.Add(shard, int64(len(msg.rows)))
			tel.batchNS.Observe(shard, t1-t0)
		}
	}
}

// runWorker executes one operator worker: ports in order, batches in
// arrival order.
func (ex *Execution) runWorker(rt *nodeRuntime, worker int) {
	defer rt.wg.Done()
	inst := rt.n.op.NewInstance()
	ec := &execCtx{rt: rt, shard: &rt.shards[worker], worker: worker}
	if sb, ok := inst.(schemaBinder); ok {
		if err := sb.bindSchemas(rt.inputSchemas); err != nil {
			ex.failOp(rt, worker, -1, err)
			return
		}
	}
	ec.phase = phaseOpen
	if err := inst.Open(ec); err != nil {
		ex.failOp(rt, worker, -1, err)
		return
	}
	ex.setState(rt, Running)
	ports := rt.n.op.Desc().Ports
	tel := ex.tel
	shard := shardIndex(rt.n.id, worker)
	for port := 0; port < ports; port++ {
		q := rt.inQ[port][worker]
		for {
			msg, ok, err := q.pop(ex.ctx)
			if err != nil {
				return // canceled
			}
			if !ok {
				break // port exhausted
			}
			if err := ex.gate.wait(ex.ctx); err != nil {
				return
			}
			var t0 int64
			if tel != nil {
				t0 = tel.rec.NowNS()
				depth := int64(q.Depth())
				tel.qDepth.Set(shard, depth)
				tel.qHist.Observe(shard, depth)
			}
			rt.inTuples.Add(int64(len(msg.rows)))
			ec.phase = port
			out, err := inst.Process(ec, port, msg.rows)
			if err != nil {
				ex.failOp(rt, worker, port, err)
				return
			}
			ex.emit(rt, worker, out)
			if tel != nil {
				t1 := tel.rec.NowNS()
				rt.wall[worker].note(t0, t1)
				tel.batches.Add(shard, 1)
				tel.tuples.Add(shard, int64(len(msg.rows)))
				tel.batchNS.Observe(shard, t1-t0)
			}
		}
		ec.phase = phaseEnd
		out, err := inst.EndPort(ec, port)
		if err != nil {
			ex.failOp(rt, worker, port, err)
			return
		}
		ex.emit(rt, worker, out)
	}
	ec.phase = phaseEnd
	if err := inst.Close(ec); err != nil {
		ex.failOp(rt, worker, -1, err)
	}
}

// failOp records an operator-attributed error.
func (ex *Execution) failOp(rt *nodeRuntime, worker, port int, err error) {
	ex.setState(rt, Failed)
	ex.fail(&OpError{Op: rt.n.name, Worker: worker, Port: port, Err: err})
}

// finish assembles the result after all goroutines stopped.
func (ex *Execution) finish() {
	if ex.err != nil {
		return
	}
	ex.commitLineage()
	trace := ex.buildTrace()
	if err := ex.annotateShard(trace); err != nil {
		ex.fail(fmt.Errorf("dataflow: shard annotation failed: %w", err))
		return
	}
	jobs, pools, meta, err := lowerWithMeta(trace, ex.model)
	if err != nil {
		ex.fail(fmt.Errorf("dataflow: lowering failed: %w", err))
		return
	}
	var sched *sim.Result
	var recInfo *RecoveryInfo
	if ex.cfg.Faults.Enabled() {
		sched, recInfo, err = scheduleWithFaults(jobs, pools, meta, trace, ex.model, ex.cfg.Faults, ex.cfg.Shard)
	} else {
		sched, err = sim.Schedule(jobs, pools)
	}
	if err != nil {
		ex.fail(fmt.Errorf("dataflow: scheduling failed: %w", err))
		return
	}
	ex.recordTelemetry(jobs, sched)
	ex.recordRecovery(recInfo)
	tables := make(map[string]*relation.Table)
	for _, rt := range ex.rts {
		if rt.n.kind != kindSink {
			continue
		}
		if ex.lin != nil && ex.lin.mode[rt.n.id] == lmSkip {
			// The sink never ran; its cached artifact is the result.
			tables[rt.n.name] = ex.lin.art[rt.n.id].Table
			continue
		}
		// Downstream consumers digest, re-encode, and join result
		// tables; hand them over columnar-backed.
		tables[rt.n.name] = rt.sinkTable.Columnarize()
	}
	var linReport *lineage.RunReport
	if ex.lin != nil {
		linReport = ex.lin.run.Report()
	}
	ex.result = &Result{
		Tables:     tables,
		Trace:      trace,
		SimSeconds: sched.Makespan,
		Schedule:   sched,
		Recovery:   recInfo,
		Lineage:    linReport,
	}
}

// buildTrace snapshots all runtime counters into a Trace. Under a
// lineage plan the trace reflects what actually happened: skipped
// non-sink nodes are absent, replay nodes and skipped sinks appear as
// source-like cache views whose only cost is the artifact fetch, dirty
// nodes carry their commit tax in EndWork, and only edges that carried
// data (into dirty consumers) remain.
func (ex *Execution) buildTrace() *Trace {
	tr := &Trace{Workflow: ex.wf.name}
	for _, rt := range ex.rts {
		if ex.lin != nil {
			switch ex.lin.mode[rt.n.id] {
			case lmSkip:
				if rt.n.kind != kindSink {
					continue
				}
				art := ex.lin.art[rt.n.id]
				tr.Nodes = append(tr.Nodes, NodeTrace{
					ID:             rt.n.id,
					Name:           rt.n.name,
					Kind:           rt.n.kind.String(),
					Parallelism:    1,
					InTuples:       int64(art.Table.Len()),
					OutTuples:      int64(art.Table.Len()),
					EmittedBatches: 1,
					WorkByPort:     []cost.Work{{Mem: ex.lin.fetchSec[rt.n.id]}},
				})
				continue
			case lmReplay:
				nt := NodeTrace{
					ID:             rt.n.id,
					Name:           rt.n.name,
					Kind:           rt.n.kind.String(),
					Parallelism:    1,
					OutTuples:      rt.outTuples.Load(),
					EmittedBatches: rt.batches.Load(),
					WorkByPort:     []cost.Work{{Mem: ex.lin.fetchSec[rt.n.id]}},
				}
				tr.Nodes = append(tr.Nodes, nt)
				for i, e := range rt.n.outEdges {
					if ex.lin.mode[e.to.id] != lmDirty {
						continue
					}
					st := rt.edgeStats[i]
					tr.Edges = append(tr.Edges, EdgeTrace{
						From:    e.from.id,
						To:      e.to.id,
						Port:    e.port,
						Batches: st.batches.Load(),
						Tuples:  st.tuples.Load(),
						Bytes:   st.bytes.Load(),
					})
				}
				continue
			}
		}
		byPort, end, open := rt.mergedWork()
		if ex.lin != nil {
			// Fold the artifact-commit tax into the node's close work.
			end = end.Add(cost.Work{Mem: ex.lin.commitSec[rt.n.id]})
		}
		nt := NodeTrace{
			ID:             rt.n.id,
			Name:           rt.n.name,
			Kind:           rt.n.kind.String(),
			Parallelism:    rt.n.parallelism,
			InTuples:       rt.inTuples.Load(),
			OutTuples:      rt.outTuples.Load(),
			EmittedBatches: rt.batches.Load(),
			WorkByPort:     byPort,
			EndWork:        end,
			OpenWork:       open,
		}
		if rt.n.kind == kindOperator {
			d := rt.n.op.Desc()
			nt.Language = d.Language
			nt.BlockingPorts = append([]bool(nil), d.BlockingPorts...)
			nt.FullyBlocking = d.FullyBlocking()
			switch rt.n.op.(type) {
			case *SortOp, *LimitOp:
				nt.Parallelizable = false
			default:
				nt.Parallelizable = !nt.FullyBlocking
			}
		}
		tr.Nodes = append(tr.Nodes, nt)
		for i, e := range rt.n.outEdges {
			if ex.lin != nil && ex.lin.mode[e.to.id] != lmDirty {
				continue
			}
			st := rt.edgeStats[i]
			tr.Edges = append(tr.Edges, EdgeTrace{
				From:    e.from.id,
				To:      e.to.id,
				Port:    e.port,
				Batches: st.batches.Load(),
				Tuples:  st.tuples.Load(),
				Bytes:   st.bytes.Load(),
			})
		}
	}
	return tr
}
