package dataflow

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/relation"
)

// UnionOp concatenates two streams with identical schemas. Both ports
// are non-blocking, so rows pass through as they arrive (port 0 is
// drained before port 1 within each worker, but neither gates the
// other's upstream).
type UnionOp struct {
	base
	Work cost.Work // per input tuple
}

// NewUnion returns a two-input union operator.
func NewUnion(name string, lang cost.Language) *UnionOp {
	return &UnionOp{
		base: base{Desc{Name: name, Language: lang, Ports: 2, BlockingPorts: []bool{false, false}, Stateless: true}},
		Work: cost.Work{Interp: 0.8e-6, Mem: 0.2e-6},
	}
}

// OutputSchema requires both inputs to share a schema and passes it
// through.
func (o *UnionOp) OutputSchema(in []*relation.Schema) (*relation.Schema, error) {
	if len(in) != 2 || in[0] == nil || in[1] == nil {
		return nil, fmt.Errorf("dataflow: %s: union needs two inputs", o.desc.Name)
	}
	if !in[0].Equal(in[1]) {
		return nil, fmt.Errorf("dataflow: %s: union schema mismatch: [%s] vs [%s]", o.desc.Name, in[0], in[1])
	}
	return in[0], nil
}

// NewInstance returns a pass-through worker.
func (o *UnionOp) NewInstance() Instance { return &unionInstance{op: o} }

type unionInstance struct{ op *UnionOp }

func (ui *unionInstance) Open(ExecCtx) error { return nil }
func (ui *unionInstance) Process(ec ExecCtx, _ int, rows []relation.Tuple) ([]relation.Tuple, error) {
	ec.AddWork(ui.op.Work.Scale(float64(len(rows))))
	return rows, nil
}
func (ui *unionInstance) EndPort(ExecCtx, int) ([]relation.Tuple, error) { return nil, nil }
func (ui *unionInstance) Close(ExecCtx) error                            { return nil }
