package dataflow

import (
	"repro/internal/core"
	"repro/internal/cost"
)

// Trace is the cost record of one workflow execution: what every node
// really did, in data quantities and charged work. The lowering in
// lower.go converts it into simulator jobs.
type Trace struct {
	Workflow string
	Nodes    []NodeTrace
	Edges    []EdgeTrace
}

// NodeTrace records one node's execution totals.
type NodeTrace struct {
	ID          NodeID
	Name        string
	Kind        string // "source", "operator", "sink"
	Language    cost.Language
	Parallelism int

	// InTuples and OutTuples are the per-operator progress counters the
	// GUI shows (paper Figure 9).
	InTuples  int64
	OutTuples int64

	// EmittedBatches counts the batches this node emitted downstream.
	EmittedBatches int64

	// WorkByPort is the CPU work charged while processing each input
	// port (index 0 for sources' generation work).
	WorkByPort []cost.Work

	// EndWork is the CPU work charged during EndPort/Close — the bulk
	// of a blocking operator's cost (for example sorting).
	EndWork cost.Work

	// OpenWork is the CPU work charged during Open across all workers
	// (for example each worker loading a model or building a lookup
	// table). Workers initialize in parallel, so its wall-clock
	// contribution is OpenWork/Parallelism, gating the operator's
	// first batch.
	OpenWork cost.Work

	// BlockingPorts mirrors the operator descriptor.
	BlockingPorts []bool

	// FullyBlocking marks operators that emit only at the end.
	FullyBlocking bool

	// SpillBytes and SpillSeconds record the sharded tier's
	// larger-than-memory path for this node: bytes its blocking state
	// (join build side, group-by table) wrote to disk partition files,
	// and the extra simulated time the grace build/probe passes cost.
	// Always zero on the legacy single-cluster tier.
	SpillBytes   int64
	SpillSeconds float64

	// Parallelizable marks operators the tuner may scale out: stream
	// operators whose state is either absent or key-partitioned. Sorts,
	// limits and fully blocking operators (which need all input in one
	// place) are excluded.
	Parallelizable bool
}

// TotalWork sums the node's charged work across ports and end phase.
func (n *NodeTrace) TotalWork() cost.Work {
	w := n.EndWork
	for _, p := range n.WorkByPort {
		w = w.Add(p)
	}
	return w
}

// Totals folds the trace into the scalar summary carried on
// core.Result. Nodes and edges are visited in trace order and work in
// port order, so the floating-point sums are deterministic.
func (t *Trace) Totals() core.TraceTotals {
	tt := core.TraceTotals{Nodes: len(t.Nodes), Edges: len(t.Edges)}
	for i := range t.Nodes {
		n := &t.Nodes[i]
		tt.InTuples += n.InTuples
		tt.OutTuples += n.OutTuples
		tt.Batches += n.EmittedBatches
		w := n.TotalWork().Add(n.OpenWork)
		tt.WorkInterp += w.Interp
		tt.WorkMem += w.Mem
		tt.SpillBytes += n.SpillBytes
	}
	for i := range t.Edges {
		e := &t.Edges[i]
		tt.EdgeTuples += e.Tuples
		tt.EdgeBytes += e.Bytes
		tt.ShuffleBytes += e.ShuffleBytes
	}
	return tt
}

// EdgeTrace records the data volume that crossed one edge.
type EdgeTrace struct {
	From, To NodeID
	Port     int
	Batches  int64
	Tuples   int64
	Bytes    int64 // encoded size of all tuples, for serde accounting

	// ShuffleBytes is the cross-node share of Bytes on the sharded
	// tier: what the edge's exchange operator (hash/range scatter,
	// broadcast) pushes over the NIC beyond the node-local transfer.
	// Zero on the legacy tier and for node-local exchanges.
	ShuffleBytes int64
}

// OpProgress is a point-in-time progress snapshot for one node, the
// unit of the engine's progress display.
type OpProgress struct {
	Name      string
	Kind      string
	State     State
	InTuples  int64
	OutTuples int64
	Workers   int
}
